(* The ground-level separations of Section 9.1, as a lab session:

   Proposition 21 (LP ⊊ NLP): symmetry breaking. A deterministic
   constant-round machine cannot tell an odd cycle from its doubled
   even cycle when identifiers are duplicated — but one Eve certificate
   settles 2-colourability.

   Proposition 23 (coLP ≹ NLP): the pigeonhole. Any verifier for
   NOT-ALL-SELECTED that survives on long cycles accepts two
   indistinguishable configurations, which splice into an accepted
   all-selected cycle.

   Run with: dune exec examples/separation_lab.exe *)

open Lph_core

let () =
  print_endline "=== Separation lab (Section 9.1) ===\n";

  print_endline "--- Proposition 21: LP ⊊ NLP ---";
  let n = 15 in
  let decider = Candidates.local_two_col_decider ~radius:2 in
  let out = Separations.prop21 ~decider ~n ~id_period:n in
  Format.printf "Odd cycle C%d (not 2-colourable) vs glued C%d (2-colourable)@." n (2 * n);
  Format.printf "Deterministic 'gather radius 2 and test the ball' decider:@.";
  Format.printf "  verdicts on C%d:  %s@." n (String.concat "" (Array.to_list out.Separations.verdicts_odd));
  Format.printf "  verdicts on C%d: %s@." (2 * n)
    (String.concat "" (Array.to_list out.Separations.verdicts_glued));
  Format.printf "  node-by-node indistinguishable: %b — the decider accepts both,@." out.Separations.indistinguishable;
  Format.printf "  yet only the glued cycle is 2-colourable. No LP machine can win this.@.";
  let t_odd, g_odd, t_glued, g_glued = Separations.two_col_game_separation ~n:5 () in
  Format.printf "With one Eve certificate (NLP), the game gets it right:@.";
  Format.printf "  C5:  truth %-5b game %-5b | glued C10: truth %-5b game %-5b@.@." t_odd g_odd t_glued
    g_glued;

  print_endline "--- Proposition 23: coLP ≹ NLP ---";
  let period = 3 and id_period = 5 and n = 30 in
  let o = Separations.prop23 ~period ~id_period ~n in
  Format.printf "Verifier: distance-to-unselected counter modulo %d; identifiers cyclic mod %d@." period
    id_period;
  Format.printf "Yes-instance: C%d with one unselected node; honest certificates accepted: %b@." n
    o.Separations.yes_accepted;
  let v, v' = o.Separations.view_pair in
  Format.printf "Pigeonhole pair: nodes %d and %d share (label, identifier, certificate) views@." v v';
  Format.printf "Cut-and-splice between them: C%d, every node selected@."
    (Graph.card o.Separations.spliced);
  Format.printf "  spliced instance accepted: %b (UNSOUND: it is all-selected!)@."
    o.Separations.spliced_accepted;
  Format.printf "  verdicts preserved node-by-node: %b@." o.Separations.verdicts_preserved;
  Format.printf
    "  -> a verifier that is complete on long cycles cannot be sound: NOT-ALL-SELECTED ∉ NLP.@.@.";

  print_endline "--- The sound-but-incomplete alternative ---";
  let game cap n =
    let labels = Array.init n (fun i -> if i = 0 then "0" else "1") in
    let g = Generators.cycle ~labels n in
    let a = Arbiter.of_local_algo ~id_radius:2 (Candidates.exact_counter_verifier ~cap) in
    Game.sigma_accepts a g ~ids:(Identifiers.make_global g)
      ~universes:[ Candidates.counter_universe ~bound:(cap + 1) ]
  in
  Format.printf "Exact counter verifier with certificates capped at 3:@.";
  List.iter
    (fun n -> Format.printf "  yes-cycle C%-2d -> %s@." n (if game 3 n then "accepted" else "REJECTED (cap exceeded)"))
    [ 4; 6; 8; 10 ];
  print_endline "Bounded certificates buy soundness at the price of completeness:";
  print_endline "exactly the trade-off the (r,p)-bound of the paper forces."
