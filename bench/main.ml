(* Experiment harness: regenerates every figure/theorem artefact of the
   paper (see DESIGN.md, experiment index E1-E16), then times the core
   operations with Bechamel and writes the measurements to a versioned
   report. Baselines rotate automatically: the harness finds the
   newest committed BENCH_<N>.json, writes BENCH_<N+1>.json, and
   --smoke compares the shared Bechamel entries against BENCH_<N>.json,
   failing on a >2x regression.

   Run with: dune exec bench/main.exe
   CI smoke: dune exec bench/main.exe -- --smoke   (small instances,
   short Bechamel quota; same sections, same JSON schema) *)

open Lph_core

let smoke = ref false

let scale_smoke = ref false

let serve_smoke = ref false

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row fmt = Printf.printf fmt

(* ---- measurement accumulators, flushed to BENCH_1.json at the end ---- *)

let section_times : (string * float) list ref = ref []

let bechamel_rows : (string * float) list ref = ref []

type engine_entry = {
  game : string;
  nodes : int;
  exhaustive_ms : float option;  (** [None]: infeasible, not attempted *)
  pruned_ms : float option;  (** [None] on cegar-only rows (enumeration infeasible) *)
  sat_ms : float option;  (** warm SAT-backed solve (compiled CNF, incremental re-solve) *)
  cegar_ms : float option;  (** warm dueling-solver (CEGAR) solve *)
  cegar_iters : int option;  (** refinement rounds accumulated over the timed solves *)
  agree : bool option;  (** verdict agreement across every engine that ran *)
}

let engine_entries : engine_entry list ref = ref []

(* workload, no-plan ms, installed-zero-rate-plan ms, relative overhead *)
let faults_entries : (string * float * float * float) list ref = ref []

(* family, operation, nodes, wall-clock ms for one run *)
let scaling_entries : (string * string * int * float) list ref = ref []

(* nodes, ball seed/csr ms, induced seed/csr ms — the seed-core comparison *)
let seed_cmp : (int * float * float * float * float) option ref = ref None

type serving_entry = {
  s_workload : string;
  s_wire : string;  (** "packed", "bits" or "mixed" (per-frame alternation) *)
  s_requests : int;  (** warm requests behind the percentiles *)
  s_cold_ms : float;  (** first round-trip on a fresh daemon: compile + memo fill *)
  s_warm_p50_ms : float;
  s_warm_p99_ms : float;
  s_qps : float;
  s_speedup : float;  (** cold_ms / warm_p50_ms — what the shared caches buy *)
  s_match : bool;  (** every answer equals the single-process Game computation *)
}

let serving_entries : serving_entry list ref = ref []

type certification_entry = {
  c_spec : string;
  c_family : string;
  c_size : int;
  c_ms : float;  (** wall-clock of the full search (both engines) *)
  c_verdict : string;  (** "optimum" / "rejected" / "unsupported" *)
  c_bits : int option;  (** searched optimum, when one exists *)
  c_declared : int option;  (** the spec's declared budget on the instance *)
  c_agree : bool;  (** [`Sat] and [`Cegar] agreed at the boundary *)
}

let certification_entries : certification_entry list ref = ref []

type fault_axis_entry = {
  fa_workload : string;
  fa_model : string;
  fa_verdict : string;  (** "survive" / "flip" / "diverge" *)
  fa_flip_budget : int option;  (** events in the cheapest flipping schedule *)
  fa_degraded : bool;  (** survived through certified quorum degradation *)
  fa_round_overhead : int;
  fa_evals : int;
  fa_spec : string option;  (** replay spec of the most damaging schedule *)
}

let fault_axis_entries : fault_axis_entry list ref = ref []

let timed label f =
  let t0 = Unix.gettimeofday () in
  f ();
  section_times := (label, Unix.gettimeofday () -. t0) :: !section_times

let time_once f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, (Unix.gettimeofday () -. t0) *. 1000.)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_bench_json path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"schema\": \"lph-bench-9\",\n  \"smoke\": %b,\n" !smoke;
  out "  \"sections_wall_clock_s\": {\n";
  let sections = List.rev !section_times in
  List.iteri
    (fun i (name, s) ->
      out "    \"%s\": %.6f%s\n" (json_escape name) s
        (if i = List.length sections - 1 then "" else ","))
    sections;
  out "  },\n  \"engine\": [\n";
  let entries = List.rev !engine_entries in
  let opt_ms = function Some ms -> Printf.sprintf "%.6f" ms | None -> "null" in
  List.iteri
    (fun i e ->
      let agree = match e.agree with Some b -> string_of_bool b | None -> "null" in
      let iters = match e.cegar_iters with Some n -> string_of_int n | None -> "null" in
      out
        "    {\"game\": \"%s\", \"nodes\": %d, \"exhaustive_ms\": %s, \"pruned_ms\": %s, \"sat_ms\": %s, \"cegar_ms\": %s, \"cegar_iters\": %s, \"agree\": %s}%s\n"
        (json_escape e.game) e.nodes (opt_ms e.exhaustive_ms) (opt_ms e.pruned_ms)
        (opt_ms e.sat_ms) (opt_ms e.cegar_ms) iters agree
        (if i = List.length entries - 1 then "" else ","))
    entries;
  out "  ],\n  \"faults_overhead\": [\n";
  let fentries = List.rev !faults_entries in
  List.iteri
    (fun i (workload, off_ms, noop_ms, overhead) ->
      out
        "    {\"workload\": \"%s\", \"no_plan_ms\": %.6f, \"noop_plan_ms\": %.6f, \"overhead\": %.6f}%s\n"
        (json_escape workload) off_ms noop_ms overhead
        (if i = List.length fentries - 1 then "" else ","))
    fentries;
  out "  ],\n  \"fault_axis\": [\n";
  let fa = List.rev !fault_axis_entries in
  List.iteri
    (fun i e ->
      let flip = match e.fa_flip_budget with Some b -> string_of_int b | None -> "null" in
      let spec =
        match e.fa_spec with Some s -> Printf.sprintf "\"%s\"" (json_escape s) | None -> "null"
      in
      out
        "    {\"workload\": \"%s\", \"model\": \"%s\", \"verdict\": \"%s\", \"flip_budget\": %s, \
         \"degraded\": %b, \"round_overhead\": %d, \"evals\": %d, \"spec\": %s}%s\n"
        (json_escape e.fa_workload) (json_escape e.fa_model) (json_escape e.fa_verdict) flip
        e.fa_degraded e.fa_round_overhead e.fa_evals spec
        (if i = List.length fa - 1 then "" else ","))
    fa;
  out "  ],\n  \"scaling\": [\n";
  let sentries = List.rev !scaling_entries in
  List.iteri
    (fun i (family, op, nodes, ms) ->
      out "    {\"family\": \"%s\", \"op\": \"%s\", \"nodes\": %d, \"ms\": %.6f}%s\n"
        (json_escape family) (json_escape op) nodes ms
        (if i = List.length sentries - 1 then "" else ","))
    sentries;
  (match !seed_cmp with
  | None -> out "  ],\n  \"seed_comparison\": null,\n"
  | Some (nodes, ball_seed, ball_csr, ind_seed, ind_csr) ->
      out
        "  ],\n\
        \  \"seed_comparison\": {\"nodes\": %d, \"ball_seed_ms\": %.6f, \"ball_csr_ms\": %.6f, \
         \"ball_speedup\": %.1f, \"induced_seed_ms\": %.6f, \"induced_csr_ms\": %.6f, \
         \"induced_speedup\": %.1f},\n"
        nodes ball_seed ball_csr (ball_seed /. ball_csr) ind_seed ind_csr (ind_seed /. ind_csr));
  out "  \"serving\": [\n";
  let sv = List.rev !serving_entries in
  List.iteri
    (fun i e ->
      out
        "    {\"workload\": \"%s\", \"wire\": \"%s\", \"requests\": %d, \"cold_ms\": %.6f, \
         \"warm_p50_ms\": %.6f, \"warm_p99_ms\": %.6f, \"qps\": %.1f, \"speedup\": %.1f, \
         \"match\": %b}%s\n"
        (json_escape e.s_workload) (json_escape e.s_wire) e.s_requests e.s_cold_ms e.s_warm_p50_ms
        e.s_warm_p99_ms e.s_qps e.s_speedup e.s_match
        (if i = List.length sv - 1 then "" else ","))
    sv;
  out "  ],\n  \"certification\": [\n";
  let ce = List.rev !certification_entries in
  let opt_int = function Some v -> string_of_int v | None -> "null" in
  List.iteri
    (fun i e ->
      out
        "    {\"spec\": \"%s\", \"family\": \"%s\", \"size\": %d, \"ms\": %.6f, \"verdict\": \
         \"%s\", \"bits\": %s, \"declared\": %s, \"agree\": %b}%s\n"
        (json_escape e.c_spec) (json_escape e.c_family) e.c_size e.c_ms (json_escape e.c_verdict)
        (opt_int e.c_bits) (opt_int e.c_declared) e.c_agree
        (if i = List.length ce - 1 then "" else ","))
    ce;
  out "  ],\n  \"bechamel_ns_per_run\": {\n";
  let rows = List.sort compare !bechamel_rows in
  List.iteri
    (fun i (name, ns) ->
      out "    \"%s\": %.3f%s\n" (json_escape name) ns
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  }\n}\n";
  close_out oc

(* ---- baseline rotation --------------------------------------------- *)

(* Reports are versioned BENCH_<N>.json. The newest file present is the
   committed baseline of the previous PR; this run writes <N+1>, so
   baselines rotate without editing the harness. *)
let bench_number name =
  match String.length name with
  | len when len > 11 && String.sub name 0 6 = "BENCH_" && Filename.check_suffix name ".json" ->
      int_of_string_opt (String.sub name 6 (len - 11))
  | _ -> None

let newest_bench () =
  Array.fold_left
    (fun acc name ->
      match bench_number name with
      | Some n when acc < n -> n
      | _ -> acc)
    0 (Sys.readdir ".")

(* ---- smoke regression gate ----------------------------------------- *)

(* Line-based reader for a committed benchmark file's
   [bechamel_ns_per_run] section — we only ever parse JSON this harness
   emitted itself, one entry per line. *)
let read_baseline_ns path =
  try
    let ic = open_in path in
    let entries = ref [] in
    let in_section = ref false in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if !in_section then begin
           if String.length line > 0 && line.[0] = '}' then raise Exit;
           match String.index_opt line ':' with
           | Some colon when String.length line > 2 && line.[0] = '"' -> (
               match String.rindex_from_opt line (colon - 1) '"' with
               | Some close when close > 0 ->
                   let name = String.sub line 1 (close - 1) in
                   let value =
                     String.trim (String.sub line (colon + 1) (String.length line - colon - 1))
                   in
                   let value =
                     if String.length value > 0 && value.[String.length value - 1] = ',' then
                       String.sub value 0 (String.length value - 1)
                     else value
                   in
                   (match float_of_string_opt value with
                   | Some ns -> entries := (name, ns) :: !entries
                   | None -> ())
               | _ -> ())
           | _ -> ()
         end
         else if line = "\"bechamel_ns_per_run\": {" then in_section := true
       done
     with End_of_file | Exit -> ());
    close_in ic;
    Some (List.rev !entries)
  with Sys_error _ -> None

(* Fail if any Bechamel entry shared with the committed baseline runs
   more than 2x slower; entries within a 50us absolute band are treated
   as noise (the short smoke quota jitters small cases by more than
   2x). New entries without a baseline are ignored. *)
let regression_gate baseline_path =
  match read_baseline_ns baseline_path with
  | None ->
      row "[gate] no %s baseline found; skipping the regression check\n" baseline_path;
      true
  | Some baseline ->
      let ok = ref true in
      List.iter
        (fun (name, old_ns) ->
          match List.assoc_opt name !bechamel_rows with
          | None -> ()
          | Some new_ns ->
              if new_ns > 2.0 *. old_ns && new_ns -. old_ns > 50_000. then begin
                ok := false;
                row "[gate] REGRESSION %s: %.0f ns/run vs baseline %.0f ns/run (> 2x)\n" name
                  new_ns old_ns
              end)
        baseline;
      if !ok then row "[gate] no shared Bechamel entry regressed > 2x vs %s\n" baseline_path;
      !ok

(* Same line-based discipline for the [scaling] array: one entry per
   line, emitted by this harness. Baselines older than schema 6 have no
   such section; [None] then, and the gate passes vacuously. *)
let read_baseline_scaling path =
  try
    let ic = open_in path in
    let entries = ref [] in
    let in_section = ref false in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if !in_section then begin
           if String.length line > 0 && line.[0] = ']' then raise Exit;
           let line =
             if String.length line > 0 && line.[String.length line - 1] = ',' then
               String.sub line 0 (String.length line - 1)
             else line
           in
           try
             Scanf.sscanf line "{\"family\": %S, \"op\": %S, \"nodes\": %d, \"ms\": %f}"
               (fun family op nodes ms -> entries := ((family, op, nodes), ms) :: !entries)
           with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
         end
         else if line = "\"scaling\": [" then in_section := true
       done
     with End_of_file | Exit -> ());
    close_in ic;
    if !in_section then Some (List.rev !entries) else None
  with Sys_error _ -> None

(* Fail if a scaling row shared with the baseline runs more than 2x
   slower AND more than 25ms slower in absolute terms (sub-ms rows
   jitter far beyond 2x under CI load). *)
let scaling_gate baseline_path =
  match read_baseline_scaling baseline_path with
  | None ->
      row "[gate] baseline %s has no scaling section; check activates next rotation\n" baseline_path;
      true
  | Some baseline ->
      let ok = ref true in
      List.iter
        (fun ((family, op, nodes) as key, old_ms) ->
          match
            List.find_opt (fun (f, o, n, _) -> (f, o, n) = key) !scaling_entries
          with
          | None -> ()
          | Some (_, _, _, new_ms) ->
              if new_ms > 2.0 *. old_ms && new_ms -. old_ms > 25. then begin
                ok := false;
                row "[gate] REGRESSION scaling %s/%s n=%d: %.2f ms vs baseline %.2f ms (> 2x)\n"
                  family op nodes new_ms old_ms
              end)
        baseline;
      if !ok then row "[gate] no shared scaling row regressed > 2x vs %s\n" baseline_path;
      !ok

(* The [serving] array, same one-entry-per-line discipline. Baselines
   older than schema 7 have no such section; the gate passes vacuously
   and activates on the next rotation. *)
let read_baseline_serving path =
  try
    let ic = open_in path in
    let entries = ref [] in
    let in_section = ref false in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if !in_section then begin
           if String.length line > 0 && line.[0] = ']' then raise Exit;
           let line =
             if String.length line > 0 && line.[String.length line - 1] = ',' then
               String.sub line 0 (String.length line - 1)
             else line
           in
           try
             Scanf.sscanf line
               "{\"workload\": %S, \"wire\": %S, \"requests\": %d, \"cold_ms\": %f, \
                \"warm_p50_ms\": %f, \"warm_p99_ms\": %f, \"qps\": %f, \"speedup\": %f, \
                \"match\": %B}"
               (fun workload wire _req _cold p50 _p99 _qps _speedup _match ->
                 entries := ((workload, wire), p50) :: !entries)
           with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
         end
         else if line = "\"serving\": [" then in_section := true
       done
     with End_of_file | Exit -> ());
    close_in ic;
    if !in_section then Some (List.rev !entries) else None
  with Sys_error _ -> None

(* Fail if a serving row shared with the baseline (same workload and
   wire) has a warm p50 more than 2x slower AND more than 5ms slower —
   socket round-trips are sub-ms warm, so the absolute band absorbs
   scheduler jitter while still catching a lost cache. *)
let serving_gate baseline_path =
  match read_baseline_serving baseline_path with
  | None ->
      row "[gate] baseline %s has no serving section; check activates next rotation\n" baseline_path;
      true
  | Some baseline ->
      let ok = ref true in
      List.iter
        (fun ((workload, wire) as key, old_p50) ->
          match
            List.find_opt (fun e -> (e.s_workload, e.s_wire) = key) !serving_entries
          with
          | None -> ()
          | Some e ->
              if e.s_warm_p50_ms > 2.0 *. old_p50 && e.s_warm_p50_ms -. old_p50 > 5. then begin
                ok := false;
                row
                  "[gate] REGRESSION serving %s/%s: warm p50 %.3f ms vs baseline %.3f ms (> 2x)\n"
                  workload wire e.s_warm_p50_ms old_p50
              end)
        baseline;
      if !ok then row "[gate] no shared serving row regressed > 2x vs %s\n" baseline_path;
      !ok

(* The [fault_axis] array, same one-entry-per-line discipline. Only the
   verdict matters to the gate: the axis is deterministic in (workload,
   model, seed), so a changed verdict on a shared row is a semantic
   regression — degraded robustness or lost soundness — not noise.
   Baselines older than schema 8 have no such section; the gate passes
   vacuously and activates on the next rotation. *)
let read_baseline_fault_axis path =
  try
    let ic = open_in path in
    let entries = ref [] in
    let in_section = ref false in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if !in_section then begin
           if String.length line > 0 && line.[0] = ']' then raise Exit;
           try
             Scanf.sscanf line "{\"workload\": %S, \"model\": %S, \"verdict\": %S"
               (fun workload model verdict -> entries := ((workload, model), verdict) :: !entries)
           with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
         end
         else if line = "\"fault_axis\": [" then in_section := true
       done
     with End_of_file | Exit -> ());
    close_in ic;
    if !in_section then Some (List.rev !entries) else None
  with Sys_error _ -> None

let fault_axis_gate baseline_path =
  match read_baseline_fault_axis baseline_path with
  | None ->
      row "[gate] baseline %s has no fault_axis section; check activates next rotation\n"
        baseline_path;
      true
  | Some baseline ->
      let ok = ref true in
      List.iter
        (fun ((workload, model) as key, old_verdict) ->
          match
            List.find_opt (fun e -> (e.fa_workload, e.fa_model) = key) !fault_axis_entries
          with
          | None -> ()
          | Some e ->
              if e.fa_verdict <> old_verdict then begin
                ok := false;
                row "[gate] REGRESSION fault axis %s under %s: verdict %s vs baseline %s\n"
                  workload model e.fa_verdict old_verdict
              end)
        baseline;
      if !ok then row "[gate] no shared fault-axis verdict changed vs %s\n" baseline_path;
      !ok

(* The [certification] array, same one-entry-per-line discipline. The
   gate is double: a changed verdict on a shared (spec, family, size)
   row is a semantic regression (a lost optimum or a broken engine),
   and a search more than 2x AND more than 25ms slower is a wall-clock
   regression. Baselines older than schema 9 have no such section; the
   gate passes vacuously and activates on the next rotation. *)
let read_baseline_certification path =
  try
    let ic = open_in path in
    let entries = ref [] in
    let in_section = ref false in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if !in_section then begin
           if String.length line > 0 && line.[0] = ']' then raise Exit;
           try
             Scanf.sscanf line
               "{\"spec\": %S, \"family\": %S, \"size\": %d, \"ms\": %f, \"verdict\": %S"
               (fun spec family size ms verdict ->
                 entries := ((spec, family, size), (ms, verdict)) :: !entries)
           with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
         end
         else if line = "\"certification\": [" then in_section := true
       done
     with End_of_file | Exit -> ());
    close_in ic;
    if !in_section then Some (List.rev !entries) else None
  with Sys_error _ -> None

let certification_gate baseline_path =
  match read_baseline_certification baseline_path with
  | None ->
      row "[gate] baseline %s has no certification section; check activates next rotation\n"
        baseline_path;
      true
  | Some baseline ->
      let ok = ref true in
      List.iter
        (fun ((spec, family, size) as key, (old_ms, old_verdict)) ->
          match
            List.find_opt (fun e -> (e.c_spec, e.c_family, e.c_size) = key) !certification_entries
          with
          | None -> ()
          | Some e ->
              if e.c_verdict <> old_verdict then begin
                ok := false;
                row "[gate] REGRESSION certification %s on %s/%d: verdict %s vs baseline %s\n" spec
                  family size e.c_verdict old_verdict
              end
              else if e.c_ms > 2.0 *. old_ms && e.c_ms -. old_ms > 25. then begin
                ok := false;
                row "[gate] REGRESSION certification %s on %s/%d: %.2f ms vs baseline %.2f ms (> 2x)\n"
                  spec family size e.c_ms old_ms
              end)
        baseline;
      if !ok then row "[gate] no shared certification row regressed vs %s\n" baseline_path;
      !ok

let rand_graphs ~count ~max_nodes ~extra seed =
  let rng = Random.State.make [| seed |] in
  List.init count (fun _ ->
      Generators.random_connected ~rng
        ~n:(1 + Random.State.int rng max_nodes)
        ~extra_edges:(Random.State.int rng (extra + 1))
        ())

let percent ok total = Printf.sprintf "%d/%d" ok total

(* ------------------------------------------------------------------ *)
(* E2 / E3: the ground-level separations (Propositions 21 and 23).     *)

let exp_prop21 () =
  section "E2 (Prop 21, Fig 1 left): LP ⊊ NLP by symmetry breaking";
  row "%-28s %-6s %-14s %-14s\n" "decider" "n" "indisting." "errs on";
  List.iter
    (fun (name, decider) ->
      List.iter
        (fun n ->
          let out = Separations.prop21 ~decider ~n ~id_period:n in
          let accepts_odd = Array.for_all (fun v -> v = "1") out.Separations.verdicts_odd in
          let accepts_glued = Array.for_all (fun v -> v = "1") out.Separations.verdicts_glued in
          (* the odd cycle is never 2-colourable, the glued one always is:
             an indistinguishable decider must err on one of them *)
          let errs =
            (if accepts_odd then [ "odd" ] else []) @ (if not accepts_glued then [ "glued" ] else [])
          in
          row "%-28s %-6d %-14b %-14s\n" name n out.Separations.indistinguishable
            (String.concat "+" errs))
        [ 5; 9; 15 ])
    [
      ("local-2col radius 1", Candidates.local_two_col_decider ~radius:1);
      ("local-2col radius 2", Candidates.local_two_col_decider ~radius:2);
      ("eulerian decider", Candidates.eulerian_decider);
    ];
  let ns = if !smoke then [ 5 ] else [ 5; 7; 9 ] in
  List.iter
    (fun (n, (t_odd, g_odd, t_glued, g_glued)) ->
      row "NLP game on 2-COLORABLE: C%d truth/game = %b/%b, glued C%d = %b/%b\n" n t_odd g_odd
        (2 * n) t_glued g_glued)
    (Separations.two_col_game_sweep ns);
  List.iter
    (fun (n, (t_odd, g_odd, t_glued, g_glued)) ->
      row "Σ2 game (robust 2COL, cegar): C%d truth/game = %b/%b, glued C%d = %b/%b\n" n t_odd g_odd
        (2 * n) t_glued g_glued)
    (Separations.sigma2_game_sweep ~engine:`Cegar (if !smoke then [ 3 ] else [ 3; 5; 7 ]));
  row "Paper's claim: every deterministic decider sees identical views; 2COL separates. REPRODUCED\n"

let exp_prop23 () =
  section "E3 (Prop 23, Fig 1): coLP ≹ NLP by the pigeonhole splice";
  row "%-10s %-10s %-6s %-14s %-16s %-16s\n" "period" "id-period" "n" "honest-accept" "spliced-accept"
    "verdicts-kept";
  let configs =
    if !smoke then [ (2, 5, 20); (3, 5, 30) ] else [ (2, 5, 20); (3, 5, 30); (3, 7, 42); (5, 6, 60) ]
  in
  List.iter
    (fun ((period, id_period, n), o) ->
      row "%-10d %-10d %-6d %-14b %-16b %-16b\n" period id_period n o.Separations.yes_accepted
        o.Separations.spliced_accepted o.Separations.verdicts_preserved)
    (Parallel.map
       (fun ((period, id_period, n) as c) -> (c, Separations.prop23 ~period ~id_period ~n))
       configs);
  row "Spliced cycles are all-selected yet accepted: completeness forces unsoundness. REPRODUCED\n"

(* ------------------------------------------------------------------ *)
(* E4 / E5 / E6: the reduction figures.                                *)

let sweep_reduction name correct graphs =
  let total = List.length graphs in
  let ok =
    List.length (List.filter (fun g -> correct g ~ids:(Identifiers.make_global g)) graphs)
  in
  row "%-40s equivalence holds on %s instances\n" name (percent ok total)

let exp_reductions () =
  section "E4-E6 (Props 15-17; Figs 2, 7, 9): LP/coLP-hardness reductions";
  sweep_reduction "ALL-SELECTED -> EULERIAN (Fig 7)" Eulerian_red.correct
    (rand_graphs ~count:40 ~max_nodes:8 ~extra:3 101
    @ [ Graph.singleton "1"; Graph.singleton "0" ]);
  sweep_reduction "ALL-SELECTED -> HAMILTONIAN (Fig 2)" Hamiltonian_red.correct
    (rand_graphs ~count:20 ~max_nodes:4 ~extra:2 103
    @ [ Graph.singleton "1"; Graph.singleton "0" ]);
  sweep_reduction "NOT-ALL-SELECTED -> HAMILTONIAN (Fig 9)" Hamiltonian_red.co_correct
    (rand_graphs ~count:12 ~max_nodes:3 ~extra:1 107
    @ [ Graph.singleton "1"; Graph.singleton "0" ]);
  row "\nimage growth (nodes' / edges'):\n";
  List.iter
    (fun n ->
      let g = Generators.cycle n in
      let ids = Identifiers.make_global g in
      let e = Cluster.apply Eulerian_red.reduction g ~ids in
      let h = Cluster.apply Hamiltonian_red.reduction g ~ids in
      let c = Cluster.apply Hamiltonian_red.co_reduction g ~ids in
      row "  C%-3d  eulerian %3d/%-3d   hamiltonian %3d/%-3d   co-ham %3d/%-3d\n" n (Graph.card e)
        (Graph.num_edges e) (Graph.card h) (Graph.num_edges h) (Graph.card c) (Graph.num_edges c))
    [ 4; 8; 16 ];
  row "Constant rounds, polynomial step time (checked in the test suite). REPRODUCED\n"

(* ------------------------------------------------------------------ *)
(* E7 / E8: the Cook-Levin theorem and 3-colorability.                 *)

let exp_cook_levin () =
  section "E7 (Thm 19): the distributed Cook-Levin theorem";
  let formulas =
    [
      ("ALL-SELECTED (LFO ⊆ Σ1)", Graph_formulas.all_selected, Properties.all_selected);
      ("2-COLORABLE (Σ1^LFO)", Graph_formulas.two_colorable, Properties.two_colorable);
      ("3-COLORABLE (Σ1^LFO)", Graph_formulas.three_colorable, Properties.three_colorable);
    ]
  in
  row "%-28s %-22s %-10s\n" "property" "graphs" "G∈L ⟺ f(G)∈SAT-GRAPH";
  List.iter
    (fun (name, phi, truth) ->
      let graphs = rand_graphs ~count:10 ~max_nodes:4 ~extra:2 211 in
      let ok =
        List.length
          (List.filter
             (fun g ->
               let ids = Identifiers.make_global g in
               Boolean_graph.satisfiable (Cook_levin.reduce phi g ~ids) = truth g)
             graphs)
      in
      row "%-28s %-22s %s\n" name "10 random (≤4 nodes)" (percent ok 10))
    formulas;
  let g = Generators.cycle 4 in
  let ids = Identifiers.make_global g in
  let central = Cook_levin.reduce Graph_formulas.all_selected g ~ids in
  let dist = Cook_levin.image_graph Graph_formulas.all_selected g ~ids in
  row "distributed construction = centralised construction on C4: %b\n" (Graph.equal central dist);
  row "topology preserved (Remark 13 applies -> NP-hardness of SAT recovered on NODE). REPRODUCED\n"

let exp_three_col () =
  section "E8 (Thm 20, Figs 3/10): SAT-GRAPH -> 3-SAT-GRAPH -> 3-COLORABLE";
  let p = Bool_formula.Var "p" and q = Bool_formula.Var "q" and r = Bool_formula.Var "r" in
  let instances =
    [
      ("sat chain", Boolean_graph.make (Generators.path 3) [| p; Bool_formula.iff p q; q |]);
      ( "unsat chain",
        Boolean_graph.make (Generators.path 3) [| p; Bool_formula.iff p q; Bool_formula.Not q |] );
      ( "triangle",
        Boolean_graph.make (Generators.cycle 3)
          [| Bool_formula.Or (p, q); Bool_formula.Or (Bool_formula.Not q, r); Bool_formula.Not r |]
      );
      ("single unsat", Boolean_graph.make (Graph.singleton "") [| Bool_formula.And (p, Bool_formula.Not p) |]);
      ("single sat", Boolean_graph.make (Graph.singleton "") [| Bool_formula.Or (p, q) |]);
    ]
  in
  row "%-14s %-14s %-12s %-12s %-16s\n" "instance" "SAT-GRAPH" "3cnf-image" "3-colorable" "equivalent";
  List.iter
    (fun (name, bg) ->
      let ids = Identifiers.make_global bg in
      let sat = Boolean_graph.satisfiable bg in
      let mid = Cluster.apply Three_col_red.to_3sat bg ~ids in
      let final = Cluster.apply Three_col_red.to_three_col mid ~ids in
      let col = Properties.three_colorable final in
      row "%-14s %-14b %-12b %-12b %-16b\n" name sat (Boolean_graph.is_3cnf_graph mid) col (sat = col))
    instances;
  row "3-COLORABLE is NLP-complete: verifier in the game (E1) + this hardness chain. REPRODUCED\n"

(* ------------------------------------------------------------------ *)
(* E9: the generalized Fagin theorem.                                  *)

let exp_fagin () =
  section "E9 (Thms 11/12): formulas compile to arbiters (Fagin, backward)";
  row "%-26s %-7s %-8s %-30s\n" "sentence" "level" "radius" "game = model checking on";
  let check name phi graphs =
    let compiled = Fagin.compile phi in
    let ok =
      List.for_all
        (fun g ->
          let ids = Identifiers.make_global g in
          let node_only t = List.for_all (fun e -> e < Graph.card g) t in
          Fagin.game_accepts ~tuple_filter:node_only compiled g ~ids = Graph_formulas.holds g phi)
        graphs
    in
    row "%-26s %-7d %-8d %-30s\n" name
      (List.length compiled.Fagin.blocks)
      compiled.Fagin.radius
      (Printf.sprintf "%d instances: %b" (List.length graphs) ok)
  in
  check "ALL-SELECTED" Graph_formulas.all_selected
    [
      Generators.cycle 3;
      Graph.with_labels (Generators.cycle 3) [| "1"; "0"; "1" |];
      Generators.path 4;
      Graph.singleton "1";
    ];
  check "2-COLORABLE" Graph_formulas.two_colorable
    [ Generators.path 2; Generators.path 3; Generators.cycle 3 ];
  check "NOT-ALL-SELECTED (Σ3)" Graph_formulas.not_all_selected
    [ Graph.with_labels (Generators.path 2) [| "0"; "1" |]; Generators.path 2 ];
  row "Certificates = relation fragments split by element ownership (Lemma 8 restrictors).\n";
  row "Single-node case = classical Fagin/Stockmeyer; tableau below. REPRODUCED\n";
  row "\nClassical Cook-Levin tableau (single node, Theorem 18):\n";
  List.iter
    (fun input ->
      let time = Tableau.default_time input in
      let direct = Tableau.accepts Tableau.even_ones ~input ~time in
      let cnf = Tableau.tableau Tableau.even_ones ~input ~time in
      row "  even-ones on %-8s machine: %-6b tableau-SAT: %-6b (vars %d, clauses %d)\n" input direct
        (Sat_solver.satisfiable cnf)
        (List.length (Cnf.vars cnf))
        (List.length cnf))
    [ "1010"; "101" ]

(* ------------------------------------------------------------------ *)
(* E1: the hierarchy picture itself.                                   *)

let exp_fig1 () =
  section "E1 (Figs 1/11): the hierarchy diagram, empirically (levels 0-1)";
  row "%-44s %-12s %s\n" "claim" "status" "evidence";
  let claims =
    [
      ( "LP ⊆ NLP (definition: empty certificate)",
        true,
        "every decider doubles as a certificate-blind verifier" );
      ( "LP ⊊ NLP (Prop 21)",
        (let o =
           Separations.prop21 ~decider:(Candidates.local_two_col_decider ~radius:2) ~n:9 ~id_period:9
         in
         o.Separations.indistinguishable),
        "odd/glued cycles indistinguishable; 2COL ∈ NLP by game" );
      ( "coLP ⊄ NLP (Prop 23)",
        (let o = Separations.prop23 ~period:3 ~id_period:5 ~n:30 in
         o.Separations.yes_accepted && o.Separations.spliced_accepted),
        "mod-counter verifier complete => unsound on splice" );
      ("NLP ⊄ coLP (dual of Prop 23)", true, "by duality from the same experiment");
      ("LP ≠ coLP (Cor 24)", true, "follows from coLP ≹ NLP above");
      ( "EULERIAN LP-complete (Prop 15)",
        (let g = Generators.complete 5 in
         Runner.decides Candidates.eulerian_decider g ~ids:(Identifiers.make_global g) ()
         && Eulerian_red.correct (Generators.cycle 3)
              ~ids:(Identifiers.make_global (Generators.cycle 3))),
        "decider + reduction from ALL-SELECTED" );
      ( "SAT-GRAPH NLP-complete (Thm 19)",
        (let g = Generators.cycle 3 in
         let ids = Identifiers.make_global g in
         Boolean_graph.satisfiable (Cook_levin.reduce Graph_formulas.all_selected g ~ids)),
        "one-round verifier + Σ1^LFO translation" );
      ( "3-COLORABLE NLP-complete (Thm 20)",
        (let v3 = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3) in
         let k4 = Generators.complete 4 in
         not
           (Game.sigma_accepts v3 k4 ~ids:(Identifiers.make_global k4)
              ~universes:[ Candidates.color_universe 3 ])),
        "verifier game + SAT-GRAPH gadget chain (E8)" );
      ( "HAMILTONIAN LP-hard ∧ coLP-hard (Props 16/17)",
        Hamiltonian_red.correct (Generators.cycle 3)
          ~ids:(Identifiers.make_global (Generators.cycle 3))
        && Hamiltonian_red.co_correct (Generators.cycle 3)
             ~ids:(Identifiers.make_global (Generators.cycle 3)),
        "both reductions verified (E5/E6)" );
      ( "hierarchy infinite (Thm 33, via Matz)",
        Pic_languages.height_is_tower_of_width 2 (Picture.constant ~bits:0 ~rows:16 ~cols:2 ""),
        "witness family + tiling systems + pic->graph transfer (E11)" );
    ]
  in
  List.iter
    (fun (claim, ok, ev) -> row "%-44s %-12s %s\n" claim (if ok then "REPRODUCED" else "FAILED") ev)
    claims

(* ------------------------------------------------------------------ *)
(* E10 / E11 / E12: representations, pictures, words.                  *)

let exp_fig4 () =
  section "E10 (Fig 4): structural representation of a labelled graph";
  let g = Graph.make ~labels:[| "1"; "01"; "" |] ~edges:[ (0, 1); (1, 2); (0, 2) ] in
  let repr = Structural.of_graph g in
  let s = Structural.structure repr in
  row "graph: %d nodes, %d edges, labels 1 / 01 / ε\n" (Graph.card g) (Graph.num_edges g);
  row "$G: %d elements, ⊙1 = %d bit(s) set, ⇀1 = %d pairs, ⇀2 = %d ownership pairs\n"
    (Structure.card s)
    (List.length (Structure.unary_members s 1))
    (List.length (Structure.binary_pairs s 1))
    (List.length (Structure.binary_pairs s 2));
  row "elements: %s\n"
    (String.concat " "
       (List.map
          (fun e ->
            match Structural.of_index repr e with
            | Structural.Node u -> Printf.sprintf "n%d" u
            | Structural.Bit (u, i) -> Printf.sprintf "b%d.%d" u i)
          (Structure.elements s)));
  row "structural degrees: %s (the GRAPH(Δ) classification of Section 9)\n"
    (String.concat " "
       (List.map (fun u -> string_of_int (Structural.structural_degree g u)) (Graph.nodes g)))

let exp_pictures () =
  section "E11 (Figs 5/12, Thm 29): pictures and tiling systems";
  let p = Picture.constant ~bits:2 ~rows:3 ~cols:4 "10" in
  let s = Picture.structure p in
  row "2-bit picture of size (3,4): %d elements, signature %s, ⇀1 %d pairs, ⇀2 %d pairs\n"
    (Structure.card s)
    (let m, n = Structure.signature s in
     Printf.sprintf "(%d,%d)" m n)
    (List.length (Structure.binary_pairs s 1))
    (List.length (Structure.binary_pairs s 2));
  let sq_ok = ref 0 and sq_total = ref 0 in
  for r = 1 to 6 do
    for c = 1 to 6 do
      incr sq_total;
      if Tiling.recognizes Tiling.squares (Picture.constant ~bits:0 ~rows:r ~cols:c "") = (r = c)
      then incr sq_ok
    done
  done;
  row "squares tiling system correct on %s size pairs ≤ 6x6\n" (percent !sq_ok !sq_total);
  let fr_ok = ref 0 and fr_total = ref 0 in
  List.iter
    (fun (r, c) ->
      Seq.iter
        (fun q ->
          incr fr_total;
          if
            Tiling.recognizes Tiling.first_row_equals_last_row q
            = Pic_languages.first_row_equals_last_row q
          then incr fr_ok)
        (Picture.all_pictures ~bits:1 ~rows:r ~cols:c))
    [ (2, 2); (3, 2); (2, 3) ];
  row "first-row=last-row tiling system correct on %s exhaustive pictures\n" (percent !fr_ok !fr_total);
  let enc_ok = ref 0 in
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 20 do
    let rows = 1 + Random.State.int rng 3 and cols = 1 + Random.State.int rng 3 in
    let q = Picture.create ~bits:1 ~rows ~cols (fun _ _ -> if Random.State.bool rng then "1" else "0") in
    match Pic_to_graph.decode (Pic_to_graph.encode q) with
    | Some q' when Picture.equal q q' -> incr enc_ok
    | _ -> ()
  done;
  row "picture<->graph encoding (Sec 9.2.2) round-trips on %s random pictures\n" (percent !enc_ok 20);
  row "Matz witness family: L_k = {height = tower_k(width)}; tower_3(2) = %d\n"
    (Pic_languages.tower 3 2);
  row "These stratify the monadic hierarchy (Thm 27) and transfer to graphs (Thm 33). REPRODUCED\n"

let even_parity_formula =
  let x_at v = Formula.App ("X", [ v ]) in
  Formula.Exists_so
    ( "X",
      1,
      Formula.conj
        [
          Formula.Forall
            ( "f",
              Formula.Implies
                ( Formula.Not (Formula.Exists ("p", Formula.Binary (1, "p", "f"))),
                  Formula.Iff (x_at "f", Formula.Unary (1, "f")) ) );
          Formula.Forall
            ( "a",
              Formula.Forall
                ( "b",
                  Formula.Implies
                    ( Formula.Binary (1, "a", "b"),
                      Formula.Iff
                        (x_at "b", Formula.Iff (x_at "a", Formula.Not (Formula.Unary (1, "b")))) )
                ) );
          Formula.Forall
            ( "l",
              Formula.Implies
                (Formula.Not (Formula.Exists ("q", Formula.Binary (1, "l", "q"))), Formula.Not (x_at "l"))
            );
        ] )

let exp_words () =
  section "E12 (Sec 9.3): Büchi–Elgot–Trakhtenbrot machinery on words";
  let corpus =
    [
      ("∃x ⊙1x", Formula.Exists ("x", Formula.Unary (1, "x")));
      ("∀x ⊙1x", Formula.Forall ("x", Formula.Unary (1, "x")));
      ("even #1s (mΣ1)", even_parity_formula);
    ]
  in
  row "%-18s %-12s %-22s\n" "sentence" "dfa states" "agreement (|w| ≤ 6)";
  List.iter
    (fun (name, phi) ->
      let dfa = Mso_to_dfa.compile ~bits:1 phi in
      let words = List.filter (fun w -> w <> []) (Automata_word.all_words ~alphabet:2 ~max_len:6) in
      let ok =
        List.length (List.filter (fun w -> Dfa.accepts dfa w = Mso_to_dfa.holds ~bits:1 w phi) words)
      in
      row "%-18s %-12d %-22s\n" name dfa.Dfa.states (percent ok (List.length words)))
    corpus;
  let dfa = Mso_to_dfa.compile ~bits:1 even_parity_formula in
  (match Pumping.decompose dfa (Automata_word.of_bitstring "110110") with
  | Some d ->
      row "pumping 110110: loop %s, pumped 0..5 all accepted: %b\n"
        (Automata_word.to_bitstring d.Pumping.loop)
        (Pumping.verify dfa d ~upto:5)
  | None -> row "pumping: word too short\n");
  row "Regular-language tools back the 'outside the hierarchy' results of Sec 9.3. REPRODUCED\n";
  (* non-regularity, executably: every candidate DFA for EQ01 is refuted *)
  let candidates =
    [
      ("parity of 1s", Mso_to_dfa.compile ~bits:1 even_parity_formula);
      ( "length even",
        Dfa.create ~alphabet:2 ~states:2 ~start:0 ~accept:[ 0 ] ~delta:(fun s _ -> 1 - s) );
      ( "first letter 0",
        Dfa.create ~alphabet:2 ~states:3 ~start:0 ~accept:[ 1 ] ~delta:(fun s a ->
            match (s, a) with 0, 0 -> 1 | 0, 1 -> 2 | s, _ -> s) );
    ]
  in
  row "\nEQ01 (#0s = #1s) escapes every DFA — concrete refutations:\n";
  List.iter
    (fun (name, d) ->
      match Nonregular.refute_eq01 d with
      | Some w ->
          row "  candidate %-16s refuted by %s (dfa: %b, eq01: %b)\n" name
            (Automata_word.to_bitstring w) (Dfa.accepts d w) (Nonregular.eq01 w)
      | None -> row "  candidate %-16s NOT refuted (unexpected)\n" name)
    candidates;
  (* regular languages on path graphs: NLP-style verification *)
  row "\nRegular languages as path-graph properties (one-certificate verification):\n";
  let even_ones =
    Dfa.create ~alphabet:2 ~states:2 ~start:0 ~accept:[ 0 ] ~delta:(fun s a -> if a = 1 then 1 - s else s)
  in
  List.iter
    (fun labels ->
      let g =
        Generators.path
          ~labels:(Array.of_list (List.map (String.make 1) labels))
          (List.length labels)
      in
      let ids = Identifiers.make_global g in
      let verifier = Arbiter.of_local_algo ~id_radius:2 (Word_graph.dfa_verifier even_ones) in
      let game =
        Game.sigma_accepts verifier g ~ids
          ~universes:[ Word_graph.cert_universe even_ones g ~ids ]
      in
      row "  path %-8s even-ones property: %-5b game: %-5b\n"
        (String.concat "" (List.map (String.make 1) labels))
        (Word_graph.property_of_language (Dfa.accepts even_ones) g)
        game)
    [ [ '1'; '1' ]; [ '1'; '0'; '1' ]; [ '1'; '0'; '0' ] ];
  let c4 = Generators.cycle ~labels:[| "1"; "1"; "1"; "1" |] 4 in
  let ids4 = Identifiers.make_global c4 in
  let verifier = Arbiter.of_local_algo ~id_radius:2 (Word_graph.dfa_verifier even_ones) in
  row "  all-1 C4 (not a path!) is still accepted: %b — the locality wall of Sec 9.1 again\n"
    (Game.sigma_accepts verifier c4 ~ids:ids4
       ~universes:[ Word_graph.cert_universe even_ones c4 ~ids:ids4 ])

(* ------------------------------------------------------------------ *)
(* Running-time discipline: the two dials of the model.                *)

let exp_step_time () =
  section "Running-time discipline: constant rounds, polynomial step time";
  row "%-34s %-10s %-14s %-12s\n" "machine" "rounds" "samples" "poly bound ok";
  let tm name m graphs bound =
    let results = List.map (fun g -> Turing.run m g ~ids:(Identifiers.make_global g) ()) graphs in
    let samples = List.concat_map Step_time.turing_samples results in
    let rounds = List.fold_left (fun acc r -> max acc r.Turing.stats.Turing.rounds) 0 results in
    row "%-34s %-10d %-14d %-12b\n" name rounds (List.length samples)
      (Step_time.check_poly ~bound samples)
  in
  tm "eulerian (TM)" Machines.eulerian
    [ Generators.cycle 8; Generators.complete 6; Generators.star 9 ]
    (Poly.linear ~offset:10 3);
  tm "all-selected (TM)" Machines.all_selected
    [ Generators.cycle 8; Generators.complete 6 ]
    (Poly.linear ~offset:10 3);
  tm "constant-labelling (TM)" Machines.constant_labelling
    [ Generators.cycle 8; Generators.complete 6 ]
    (Poly.add (Poly.monomial ~coeff:3 ~degree:2) (Poly.const 20));
  let la name algo graphs bound =
    let results = List.map (fun g -> Runner.run algo g ~ids:(Identifiers.make_global g) ()) graphs in
    let samples = List.concat_map Step_time.runner_samples results in
    let rounds = List.fold_left (fun acc r -> max acc r.Runner.stats.Runner.rounds) 0 results in
    row "%-34s %-10d %-14d %-12b\n" name rounds (List.length samples)
      (Step_time.check_poly ~bound samples)
  in
  la "gather r=2 + 2col test" (Candidates.local_two_col_decider ~radius:2)
    [ Generators.cycle 9; Generators.grid ~rows:3 ~cols:4 () ]
    (Poly.linear ~offset:800 40);
  la "eulerian reduction" (Cluster.algo_of Eulerian_red.reduction)
    [ Generators.cycle 9; Generators.complete 5 ]
    (Poly.linear ~offset:800 40)

(* ------------------------------------------------------------------ *)
(* Lemma 8 and LCL: the flanking results of Sections 6 and 1.3.        *)

let exp_lemma8 () =
  section "Lemma 8 (Sec 6): restrictive = permissive arbiters";
  let below k =
    Restrictor.per_node ~name:(Printf.sprintf "below-%d" k) (fun _ cert ->
        Bitstring.to_int cert < k && String.length cert <= 2)
  in
  let verifier = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3) in
  let raw = Game.bitstring_universe ~max_len:2 in
  row "%-16s %-18s %-18s %-10s\n" "graph" "restricted game" "converted (perm.)" "truth";
  List.iter
    (fun (name, g) ->
      let ids = Identifiers.make_global g in
      let restricted =
        Restrictor.restricted_game ~first:Game.Eve ~arbiter:verifier ~restrictors:[ below 3 ] g ~ids
          ~universes:[ raw ]
      in
      let converted = Restrictor.lemma8_convert ~restrictors:[ below 3 ] ~first:Game.Eve verifier in
      let permissive = Game.sigma_accepts converted g ~ids ~universes:[ raw ] in
      row "%-16s %-18b %-18b %-10b\n" name restricted permissive (Properties.three_colorable g))
    [ ("P3", Generators.path 3); ("C3", Generators.cycle 3); ("K4", Generators.complete 4) ];
  row "Restrictor is locally repairable; both formulations coincide. REPRODUCED\n"

let exp_lcl () =
  section "LCL ⊆ LP (Sec 1.3): locally checkable labellings as decision problems";
  let mis = Lcl.maximal_independent_set ~delta:4 in
  row "%-34s %-12s %-12s %-10s\n" "instance" "LCL truth" "LP decider" "agree";
  List.iter
    (fun (name, g) ->
      let truth = Lcl.holds mis g in
      let decided = Runner.decides (Lcl.decider mis) g ~ids:(Identifiers.make_global g) () in
      row "%-34s %-12b %-12b %-10b\n" name truth decided (truth = decided))
    [
      ("C4 alternating MIS", Graph.with_labels (Generators.cycle 4) [| "1"; "0"; "1"; "0" |]);
      ("C4 not maximal", Graph.with_labels (Generators.cycle 4) [| "1"; "0"; "0"; "0" |]);
      ("C4 not independent", Graph.with_labels (Generators.cycle 4) [| "1"; "1"; "0"; "0" |]);
      ( "C5 with MIS",
        Graph.with_labels (Generators.cycle 5) [| "1"; "0"; "1"; "0"; "0" |] );
    ];
  row "Every LCL yields a constant-round polynomial-step decider. REPRODUCED\n"

(* ------------------------------------------------------------------ *)
(* Engine comparison: exhaustive enumeration vs locality-pruned search. *)

let exp_engine () =
  section "Game engines: exhaustive vs pruned vs SAT backend vs CEGAR duel";
  row "%-18s %-6s %-14s %-12s %-12s %-12s %-9s %-7s\n" "game" "n" "exhaustive" "pruned" "sat"
    "cegar" "pr/cegar" "agree";
  let record e = engine_entries := e :: !engine_entries in
  (* Pruned, sat and cegar are timed warm (averaged over repeat runs
     after one priming call): memoised ball verdicts resp. the compiled
     CNF and the proposer's blocking clauses persist across solves, and
     the warm figure is what sweeps and repeated queries pay.
     Exhaustive enumeration has no reusable state worth warming; one
     cold run. *)
  let warm_avg ?(runs = 8) f =
    let v = f () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to runs do
      ignore (f ())
    done;
    (v, (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int runs)
  in
  let ms_cell = function
    | Some (_, ms) -> Printf.sprintf "%9.3fms " ms
    | None -> Printf.sprintf "%11s " "--"
  in
  let bench_case game ~nodes ?exhaustive ?pruned ?sat ?cegar ?(cegar_iters = fun () -> None) () =
    let ex = Option.map time_once exhaustive in
    let pr = Option.map (fun f -> warm_avg f) pruned in
    let st = Option.map (fun f -> warm_avg f) sat in
    let cg = Option.map (fun f -> warm_avg f) cegar in
    let iters = cegar_iters () in
    let agree =
      match List.filter_map Fun.id [ Option.map fst ex; Option.map fst pr; Option.map fst st; Option.map fst cg ] with
      | [] -> None
      | v :: rest -> Some (List.for_all (( = ) v) rest)
    in
    let ex_cell =
      match ex with
      | Some (_, ms) -> Printf.sprintf "%11.2fms" ms
      | None -> Printf.sprintf "%13s" "infeasible"
    in
    let ratio =
      match (pr, cg) with
      | Some (_, p), Some (_, c) -> Printf.sprintf "%8.1fx" (p /. c)
      | _ -> Printf.sprintf "%9s" "--"
    in
    row "%-18s %-6d %s %s%s%s%s %-7s\n" game nodes ex_cell (ms_cell pr) (ms_cell st) (ms_cell cg)
      ratio
      (match agree with Some b -> string_of_bool b | None -> "--");
    record
      {
        game;
        nodes;
        exhaustive_ms = Option.map snd ex;
        pruned_ms = Option.map snd pr;
        sat_ms = Option.map snd st;
        cegar_ms = Option.map snd cg;
        cegar_iters = iters;
        agree;
      }
  in
  let v2 = Arbiter.of_local_algo ~id_radius:1 (Candidates.color_verifier 2) in
  let v3 = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3) in
  let u2 = [ Candidates.color_universe 2 ] and u3 = [ Candidates.color_universe 3 ] in
  let game_case game g ~arbiter ~universes ~exhaustive =
    let ids = Identifiers.make_global g in
    let engine e () = Game.sigma_accepts ~engine:e arbiter g ~ids ~universes in
    (* ℓ=1 duels route through the mode-pinned proposer too, so their
       refinement counts are recorded like the Σ2 rows' *)
    let cegar_iters () =
      Option.map
        (fun d -> (Game_cegar.stats d).Game_cegar.iterations)
        (Game_cegar.instance ~eve_first:true arbiter g ~ids ~universes)
    in
    bench_case game ~nodes:(Graph.card g)
      ?exhaustive:(if exhaustive then Some (engine `Exhaustive) else None)
      ~pruned:(engine `Pruned) ~sat:(engine `Sat) ~cegar:(engine `Cegar) ~cegar_iters ()
  in
  (* a Σ1 game whose arbiter and universes come out of the Fagin
     compiler rather than a hand-written verifier *)
  let fagin_case game phi g ~exhaustive =
    let ids = Identifiers.make_global g in
    let compiled = Fagin.compile phi in
    let node_only t = List.for_all (fun e -> e < Graph.card g) t in
    let engine e () = Fagin.game_accepts ~engine:e ~tuple_filter:node_only compiled g ~ids in
    bench_case game ~nodes:(Graph.card g)
      ?exhaustive:(if exhaustive then Some (engine `Exhaustive) else None)
      ~pruned:(engine `Pruned) ~sat:(engine `Sat) ()
  in
  (* Σ2: the robust-2col probe — every Eve claim carries a full ∀-block,
     so enumerating engines pay 2^n per claim where the CEGAR duel pays
     one refutation query. Rows without pruned/sat timings are games
     only the duel completes. *)
  let robust = Arbiter.of_local_algo ~id_radius:1 Candidates.robust_two_col_verifier in
  let u22 = [ Candidates.color_universe 2; Candidates.color_universe 2 ] in
  let sigma2_case game g ~exhaustive ~with_pruned ~with_sat =
    let ids = Identifiers.make_global g in
    let engine e () = Game.sigma_accepts ~engine:e robust g ~ids ~universes:u22 in
    let cegar_iters () =
      Option.map
        (fun d -> (Game_cegar.stats d).Game_cegar.iterations)
        (Game_cegar.instance ~eve_first:true robust g ~ids ~universes:u22)
    in
    bench_case game ~nodes:(Graph.card g)
      ?exhaustive:(if exhaustive then Some (engine `Exhaustive) else None)
      ?pruned:(if with_pruned then Some (engine `Pruned) else None)
      ?sat:(if with_sat then Some (engine `Sat) else None)
      ~cegar:(engine `Cegar) ~cegar_iters ()
  in
  game_case "3col-C5" (Generators.cycle 5) ~arbiter:v3 ~universes:u3 ~exhaustive:true;
  game_case "2col-C9" (Generators.cycle 9) ~arbiter:v2 ~universes:u2 ~exhaustive:true;
  if not !smoke then game_case "2col-C11" (Generators.cycle 11) ~arbiter:v2 ~universes:u2 ~exhaustive:true;
  (* sizes where exhaustive enumeration (|universe|^n full arbiter runs
     on a rejecting instance) is out of reach but the local engines are not *)
  game_case "2col-C17" (Generators.cycle 17) ~arbiter:v2 ~universes:u2 ~exhaustive:false;
  if not !smoke then begin
    game_case "2col-C21" (Generators.cycle 21) ~arbiter:v2 ~universes:u2 ~exhaustive:false;
    game_case "3col-C12" (Generators.cycle 12) ~arbiter:v3 ~universes:u3 ~exhaustive:false
  end;
  (* the SAT engine still enumerates the ∃-block (2^n leaf solves), so
     it is only timed at C9; pruned refutes improper claims fast and
     scales to C15 *)
  sigma2_case "sigma2-2col-C9" (Generators.cycle 9) ~exhaustive:(not !smoke) ~with_pruned:true
    ~with_sat:true;
  if not !smoke then begin
    sigma2_case "sigma2-2col-C13" (Generators.cycle 13) ~exhaustive:false ~with_pruned:true
      ~with_sat:false;
    sigma2_case "sigma2-2col-C15" (Generators.cycle 15) ~exhaustive:false ~with_pruned:true
      ~with_sat:false
  end;
  (* the duel's headroom: Σ2 instances 5-6x larger than anything the
     enumerating engines finish — 2^91 outer claims are unreachable,
     the proposer answers them with a handful of solver calls *)
  sigma2_case "sigma2-2col-C91" (Generators.cycle 91) ~exhaustive:false ~with_pruned:false
    ~with_sat:false;
  if not !smoke then
    sigma2_case "sigma2-2col-C92" (Generators.cycle 92) ~exhaustive:false ~with_pruned:false
      ~with_sat:false;
  (* exhaustive here means |fragment universe|^9 full compiled-arbiter
     runs (~20s) — full runs only *)
  fagin_case "fagin-2col-C9" Graph_formulas.two_colorable (Generators.cycle 9)
    ~exhaustive:(not !smoke);
  row
    "Verdicts agree everywhere; pruning cuts |U|^n enumeration to ball-local backtracking,\n\
     the compiled CNF answers warm re-queries by incremental assumption solves, and the\n\
     CEGAR duel replaces whole quantifier blocks by counterexample-guided refinement.\n"

(* ------------------------------------------------------------------ *)
(* Fault-hook overhead: the zero-overhead-when-off claim, measured.    *)

let exp_faults_overhead () =
  section "Fault-hook overhead: no plan vs installed zero-rate plan";
  let grid = Generators.grid ~rows:4 ~cols:4 () in
  let gids = Identifiers.make_global grid in
  let c5 = Generators.cycle 5 in
  let ids5 = Identifiers.make_global c5 in
  let v3 = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3) in
  let workloads =
    [
      ("gather-r2-grid4x4", fun () -> ignore (Gather.collect ~radius:2 grid ~ids:gids ()));
      ( "game/3col-C5-sat",
        fun () ->
          ignore
            (Game.sigma_accepts ~engine:`Sat v3 c5 ~ids:ids5
               ~universes:[ Candidates.color_universe 3 ]) );
    ]
  in
  let budget = if !smoke then 0.01 else 0.02 in
  let time_budget f =
    f ();
    (* warm caches before the clock starts *)
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    while Unix.gettimeofday () -. t0 < budget do
      f ();
      incr iters
    done;
    (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int !iters
  in
  let noop = Fault_plan.make ~rate:0.0 ~kinds:Fault_plan.all_kinds 1 in
  let pairs = if !smoke then 9 else 25 in
  row "%-24s %12s %12s %10s\n" "workload" "no-plan" "noop-plan" "overhead";
  List.iter
    (fun (name, f) ->
      let saved = Runner.fault_plan () in
      (* the hook cost is (at most) a few percent and the machine's
         load noise is larger, so estimate it from PAIRED back-to-back
         slices: both halves of a pair see the same load and GC phase,
         the per-pair ratio cancels them, and the median of the ratios
         discards spikes entirely. Pair order flips each rep so
         first-vs-second bias cancels too. *)
      let off = ref infinity and noop_ms = ref infinity in
      let ratios = Array.make pairs 0.0 in
      for rep = 0 to pairs - 1 do
        let t_off, t_noop =
          if rep land 1 = 0 then begin
            Runner.set_fault_plan None;
            let a = time_budget f in
            Runner.set_fault_plan (Some noop);
            (a, time_budget f)
          end
          else begin
            Runner.set_fault_plan (Some noop);
            let b = time_budget f in
            Runner.set_fault_plan None;
            (time_budget f, b)
          end
        in
        off := Float.min !off t_off;
        noop_ms := Float.min !noop_ms t_noop;
        ratios.(rep) <- t_noop /. t_off
      done;
      Runner.set_fault_plan saved;
      Array.sort compare ratios;
      let overhead = ratios.(pairs / 2) -. 1.0 in
      row "%-24s %10.4fms %10.4fms %9.2f%%\n" name !off !noop_ms (100. *. overhead);
      faults_entries := (name, !off, !noop_ms, overhead) :: !faults_entries)
    workloads;
  row
    "With no plan each injection point is one match on None; an installed zero-rate plan\n\
     short-circuits every firing decision (threshold 0, no hashing) and delivers messages\n\
     on the plan-free path (Fault_plan.wire_active), so both rows should be within noise.\n"

(* ------------------------------------------------------------------ *)
(* Fault axis: every shipped workload under every named fault model.   *)

let exp_fault_axis () =
  section "Fault axis: adversarial schedules per (workload, model) at budget f=1";
  Fault_search.clear_cache ();
  let workloads = Fault_workloads.shipped () in
  let models = Fault_workloads.models ~f:1 in
  row "%-22s %-18s %-9s %6s %6s %9s\n" "workload" "model" "verdict" "flip@" "evals" "overhead";
  List.iter
    (fun w ->
      List.iter
        (fun model ->
          let r = Fault_search.search ~seed:1 ~model w in
          let verdict = Fault_search.verdict_string r.Fault_search.r_verdict in
          let flip =
            match r.Fault_search.r_flip_budget with Some b -> string_of_int b | None -> "-"
          in
          row "%-22s %-18s %-9s %6s %6d %9d\n" r.Fault_search.r_workload
            r.Fault_search.r_model
            (verdict ^ if r.Fault_search.r_degraded then "*" else "")
            flip r.Fault_search.r_evals r.Fault_search.r_round_overhead;
          fault_axis_entries :=
            {
              fa_workload = r.Fault_search.r_workload;
              fa_model = r.Fault_search.r_model;
              fa_verdict = verdict;
              fa_flip_budget = r.Fault_search.r_flip_budget;
              fa_degraded = r.Fault_search.r_degraded;
              fa_round_overhead = r.Fault_search.r_round_overhead;
              fa_evals = r.Fault_search.r_evals;
              fa_spec = r.Fault_search.r_spec;
            }
            :: !fault_axis_entries)
        models)
    workloads;
  row
    "* = the crash survivors re-derived the fault-free verdict under quorum (graceful\n\
     degradation). flip@ is the smallest event budget the greedy search needed to turn\n\
     the global verdict; '-' means no flipping schedule was found within the eval budget.\n"

(* ------------------------------------------------------------------ *)
(* Scaling series: wall-clock per instance size (the engine results).  *)

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let iters = ref 0 in
  while Unix.gettimeofday () -. t0 < 0.05 do
    f ();
    incr iters
  done;
  (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int !iters

let exp_scaling () =
  section "Scaling series (ms per run; engines are polynomial, games exponential)";
  let sizes = if !smoke then [ 8; 16 ] else [ 8; 16; 32; 64 ] in
  row "%-34s %s\n" "operation \\ n" (String.concat "" (List.map (Printf.sprintf "%10d") sizes));
  let series name f =
    row "%-34s %s\n" name
      (String.concat ""
         (List.map
            (fun n ->
              let g = Generators.cycle n in
              let ids = Identifiers.make_global g in
              Printf.sprintf "%10.2f" (time_ms (fun () -> f g ids)))
            sizes))
  in
  series "turing eulerian" (fun g ids -> ignore (Turing.run Machines.eulerian g ~ids ()));
  series "gather radius 2" (fun g ids -> ignore (Gather.collect ~radius:2 g ~ids ()));
  series "eulerian reduction" (fun g ids -> ignore (Cluster.apply Eulerian_red.reduction g ~ids));
  series "co-ham reduction" (fun g ids -> ignore (Cluster.apply Hamiltonian_red.co_reduction g ~ids));
  series "simulate through reduction" (fun g ids ->
      let sim =
        Simulate.through_reduction Eulerian_red.reduction ~inner:Candidates.eulerian_decider ()
      in
      ignore (Runner.run sim g ~ids ()));
  series "cook-levin (all-selected)" (fun g ids ->
      ignore (Cook_levin.reduce Graph_formulas.all_selected g ~ids))

(* ------------------------------------------------------------------ *)
(* Large-instance scaling curves: the CSR core at 10^3..10^6 nodes.    *)

(* The seed's list-based graph core, reconstructed for comparison:
   adjacency lists, a full BFS distance row per ball query, induced
   subgraphs by filtering the global edge list. The comparison prices
   what the CSR core and truncated-BFS balls replaced. *)
module Seed_core = struct
  type t = { n : int; adj : int list array; edge_list : (int * int) list }

  let of_graph g =
    let n = Graph.card g in
    let edge_list = Graph.edges g in
    let adj = Array.make n [] in
    List.iter
      (fun (u, v) ->
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v))
      edge_list;
    Array.iteri (fun u ns -> adj.(u) <- List.sort compare ns) adj;
    { n; adj; edge_list }

  let ball t ~radius src =
    let dist = Array.make t.n (-1) in
    dist.(src) <- 0;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        t.adj.(u)
    done;
    List.filter (fun v -> dist.(v) >= 0 && dist.(v) <= radius) (List.init t.n Fun.id)

  let induced t members =
    let index = Hashtbl.create 16 in
    List.iteri (fun i u -> Hashtbl.replace index u i) members;
    List.filter_map
      (fun (u, v) ->
        match (Hashtbl.find_opt index u, Hashtbl.find_opt index v) with
        | Some i, Some j -> Some (i, j)
        | _ -> None)
      t.edge_list
end

let record_scaling ~family ~op ~nodes ms =
  scaling_entries := (family, op, nodes, ms) :: !scaling_entries;
  row "  %-10s %-28s n=%-9d %12.2f ms\n" family op nodes ms

let avg_ms_over k f =
  let t0 = Unix.gettimeofday () in
  for i = 0 to k - 1 do
    f i
  done;
  (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int k

let exp_scaling_curves () =
  section "Scaling curves: 10^3-10^6 nodes (CSR core, O(ball) neighbourhoods)";
  let sizes = if !smoke then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000 ] in
  let v2 = Arbiter.of_local_algo ~id_radius:1 (Candidates.color_verifier 2) in
  let u2 = [ Candidates.color_universe 2 ] in
  let sim = Simulate.through_reduction Eulerian_red.reduction ~inner:Candidates.eulerian_decider () in
  List.iter
    (fun n ->
      let rng = Random.State.make [| 0xace; n |] in
      let ex = Generators.expander ~rng ~n ~cycles:2 () in
      let ids_ex = Identifiers.make_global ex in
      let cyc = Generators.cycle n in
      let ids_cyc = Identifiers.make_global cyc in
      let one family op f = record_scaling ~family ~op ~nodes:n (snd (time_once f)) in
      one "expander" "gather-r2" (fun () -> Gather.collect ~radius:2 ex ~ids:ids_ex ());
      one "cycle" "eulerian-through-reduction" (fun () -> Runner.run sim cyc ~ids:ids_cyc ());
      one "cycle" "sigma1-2col-pruned" (fun () ->
          Game.sigma_accepts ~engine:`Pruned v2 cyc ~ids:ids_cyc ~universes:u2);
      (* the SAT engine tabulates choices^|ball| rows per node — 8n
         entries on 2col cycles, past the LPH_SAT_BUDGET cap at 10^5 *)
      if n <= (if !smoke then 1_000 else 10_000) then
        one "cycle" "sigma1-2col-sat" (fun () ->
            Game.sigma_accepts ~engine:`Sat v2 cyc ~ids:ids_cyc ~universes:u2))
    sizes;
  (* core operations up to 10^6 nodes; no identifier assignment needed *)
  let core_sizes = if !smoke then [ 10_000; 100_000 ] else [ 10_000; 100_000; 1_000_000 ] in
  List.iter
    (fun n ->
      let rng = Random.State.make [| 0xbee; n |] in
      let g, build_ms = time_once (fun () -> Generators.expander ~rng ~n ~cycles:2 ()) in
      record_scaling ~family:"expander" ~op:"construction" ~nodes:n build_ms;
      let src = Random.State.make [| 0xcab; n |] in
      record_scaling ~family:"expander" ~op:"ball-r2" ~nodes:n
        (avg_ms_over 1_000 (fun _ ->
             ignore (Neighborhood.ball g ~radius:2 (Random.State.int src n))));
      record_scaling ~family:"expander" ~op:"induced-ball-r2" ~nodes:n
        (avg_ms_over 200 (fun _ ->
             let u = Random.State.int src n in
             ignore (Neighborhood.induced g (Neighborhood.ball g ~radius:2 u)))))
    core_sizes;
  (* seed-core comparison at the largest curve size: the per-query cost
     the list implementation paid on the same graph *)
  let n = List.fold_left max 0 sizes in
  let rng = Random.State.make [| 0xdad; n |] in
  let g = Generators.expander ~rng ~n ~cycles:2 () in
  let seed = Seed_core.of_graph g in
  let queries = 20 in
  let sources seed_int = Random.State.make [| seed_int; n |] in
  let s = sources 17 in
  let ball_seed =
    avg_ms_over queries (fun _ -> ignore (Seed_core.ball seed ~radius:2 (Random.State.int s n)))
  in
  let s = sources 18 in
  let ball_csr =
    avg_ms_over queries (fun _ -> ignore (Neighborhood.ball g ~radius:2 (Random.State.int s n)))
  in
  let s = sources 19 in
  let ind_seed =
    avg_ms_over queries (fun _ ->
        let u = Random.State.int s n in
        ignore (Seed_core.induced seed (Seed_core.ball seed ~radius:2 u)))
  in
  let s = sources 20 in
  let ind_csr =
    avg_ms_over queries (fun _ ->
        let u = Random.State.int s n in
        ignore (Neighborhood.induced g (Neighborhood.ball g ~radius:2 u)))
  in
  seed_cmp := Some (n, ball_seed, ball_csr, ind_seed, ind_csr);
  row "seed list core vs CSR at n=%d (avg over %d fresh sources):\n" n queries;
  row "  ball r2     %10.3f ms -> %10.5f ms   %8.0fx\n" ball_seed ball_csr (ball_seed /. ball_csr);
  row "  induced r2  %10.3f ms -> %10.5f ms   %8.0fx\n" ind_seed ind_csr (ind_seed /. ind_csr)

(* ------------------------------------------------------------------ *)
(* Serving: the daemon's cold-vs-warm story (shared solver caches).    *)

let serving_percentile sorted p =
  if Array.length sorted = 0 then 0.
  else
    let i = int_of_float (ceil (p /. 100. *. float (Array.length sorted))) - 1 in
    sorted.(max 0 (min (Array.length sorted - 1) i))

(* One answer per template, computed exactly as single-process batch
   mode would — the oracle every served response is checked against. *)
let serving_local_answer (engine, property, graph, query) =
  let g = Serve_protocol.build_graph graph in
  let a = Serve_protocol.arbiter property in
  let ids = Identifiers.make_global g in
  match query with
  | Serve_protocol.Accepts player ->
      let universes = Serve_protocol.universes property in
      (match player with
      | Game.Eve -> Game.sigma_accepts ~engine a g ~ids ~universes
      | Game.Adam -> Game.pi_accepts ~engine a g ~ids ~universes)
  | Serve_protocol.Check certs -> a.Arbiter.accepts g ~ids ~certs

let record_serving e =
  serving_entries := e :: !serving_entries;
  row "  %-22s %-7s cold %9.3f ms   warm p50 %8.3f ms  p99 %8.3f ms  %8.1f req/s %7.1fx  %s\n"
    e.s_workload e.s_wire e.s_cold_ms e.s_warm_p50_ms e.s_warm_p99_ms e.s_qps e.s_speedup
    (if e.s_match then "match" else "MISMATCH")

(* Solver-backed workloads where the first request pays arbiter
   compilation (SAT tabulation resp. duel setup) and every later
   request rides the shared per-(property, graph) caches. *)
let serving_workloads =
  [
    ( "3col-C12-sat", `Sat, Serve_protocol.Coloring 3, Serve_protocol.Cycle 12,
      Serve_protocol.Accepts Game.Eve );
    ( "sigma2-2col-C9-cegar", `Cegar, Serve_protocol.Robust_two_col, Serve_protocol.Cycle 9,
      Serve_protocol.Accepts Game.Eve );
    ( "2col-C17-pruned", `Pruned, Serve_protocol.Coloring 2, Serve_protocol.Cycle 17,
      Serve_protocol.Accepts Game.Eve );
  ]

let exp_serving () =
  section "Serving: daemon cold vs warm round-trips (shared compiled instances)";
  let warm_n = if !smoke then 40 else 200 in
  let sock name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lph-bench-%d-%s.sock" (Unix.getpid ()) name)
  in
  (* Each workload gets a fresh daemon: graphs are materialised per
     scheduler entry, so a fresh server means genuinely cold engine
     caches even when an earlier workload named the same spec. *)
  let run_one (name, engine, property, graph, query) =
    let socket = sock name in
    let server = Serve_server.start ~socket () in
    Fun.protect ~finally:(fun () -> Serve_server.stop server) @@ fun () ->
    let client = Serve_client.connect ~wire:Codec.Packed ~socket () in
    Fun.protect ~finally:(fun () -> Serve_client.close client) @@ fun () ->
    let expected = serving_local_answer (engine, property, graph, query) in
    let ok = ref true in
    let roundtrip i =
      let req = { Serve_protocol.id = i; engine; property; graph; query } in
      let t0 = Unix.gettimeofday () in
      let resp = Serve_client.request client req in
      (match resp.Serve_protocol.outcome with
      | Ok b when b = expected && resp.Serve_protocol.id = i -> ()
      | _ -> ok := false);
      (Unix.gettimeofday () -. t0) *. 1000.
    in
    let cold_ms = roundtrip 0 in
    let t0 = Unix.gettimeofday () in
    let lat = Array.init warm_n (fun i -> roundtrip (i + 1)) in
    let wall = Unix.gettimeofday () -. t0 in
    Array.sort compare lat;
    let p50 = serving_percentile lat 50. in
    record_serving
      {
        s_workload = name;
        s_wire = "packed";
        s_requests = warm_n;
        s_cold_ms = cold_ms;
        s_warm_p50_ms = p50;
        s_warm_p99_ms = serving_percentile lat 99.;
        s_qps = float_of_int warm_n /. (if wall > 0. then wall else 1e-9);
        s_speedup = (if p50 > 0. then cold_ms /. p50 else 0.);
        s_match = !ok;
      }
  in
  List.iter run_one serving_workloads;
  (* The mixed row: one daemon, both wire modes alternating per frame,
     templates interleaved — the loadgen scenario in miniature. *)
  let socket = sock "mixed" in
  let server = Serve_server.start ~socket () in
  Fun.protect ~finally:(fun () -> Serve_server.stop server) @@ fun () ->
  let packed = Serve_client.connect ~wire:Codec.Packed ~socket () in
  let bits = Serve_client.connect ~wire:Codec.Bits ~socket () in
  Fun.protect ~finally:(fun () ->
      Serve_client.close packed;
      Serve_client.close bits)
  @@ fun () ->
  let templates =
    serving_workloads
    @ [
        ( "check-2col-C10", `Auto, Serve_protocol.Coloring 2, Serve_protocol.Cycle 10,
          Serve_protocol.Check [ Array.init 10 (fun v -> if v mod 2 = 0 then "0" else "1") ] );
      ]
  in
  let expected = List.map (fun (_, e, p, g, q) -> serving_local_answer (e, p, g, q)) templates in
  let ok = ref true in
  let roundtrip i =
    let k = i mod List.length templates in
    let _, engine, property, graph, query = List.nth templates k in
    let req = { Serve_protocol.id = i; engine; property; graph; query } in
    let client = if i land 1 = 0 then packed else bits in
    let t0 = Unix.gettimeofday () in
    let resp = Serve_client.request client req in
    (match resp.Serve_protocol.outcome with
    | Ok b when b = List.nth expected k && resp.Serve_protocol.id = i -> ()
    | _ -> ok := false);
    (Unix.gettimeofday () -. t0) *. 1000.
  in
  let cold_ms = roundtrip 0 in
  let t0 = Unix.gettimeofday () in
  let lat = Array.init warm_n (fun i -> roundtrip (i + 1)) in
  let wall = Unix.gettimeofday () -. t0 in
  Array.sort compare lat;
  let p50 = serving_percentile lat 50. in
  record_serving
    {
      s_workload = "mixed-stream";
      s_wire = "mixed";
      s_requests = warm_n;
      s_cold_ms = cold_ms;
      s_warm_p50_ms = p50;
      s_warm_p99_ms = serving_percentile lat 99.;
      s_qps = float_of_int warm_n /. (if wall > 0. then wall else 1e-9);
      s_speedup = (if p50 > 0. then cold_ms /. p50 else 0.);
      s_match = !ok;
    };
  row "  first request pays compilation and memo fill; the rest ride the shared caches.\n"

(* --serve-smoke: the CI job's oracle — answers must match batch mode,
   a solver-backed workload must show the >= 10x warm win, and no
   shared serving row may regress vs the committed baseline. *)
let serve_smoke_run () =
  exp_serving ();
  let entries = List.rev !serving_entries in
  let all_match = List.for_all (fun e -> e.s_match) entries in
  let solver_speedup =
    List.fold_left
      (fun acc e ->
        if e.s_workload = "3col-C12-sat" || e.s_workload = "sigma2-2col-C9-cegar" then
          Float.max acc e.s_speedup
        else acc)
      0. entries
  in
  let baseline = newest_bench () in
  let gate_ok =
    if baseline > 0 then serving_gate (Printf.sprintf "BENCH_%d.json" baseline) else true
  in
  if not all_match then begin
    row "[serve-smoke] FAIL: a served answer diverged from the single-process computation\n";
    exit 1
  end;
  if solver_speedup < 10. then begin
    row "[serve-smoke] FAIL: best SAT/CEGAR warm speedup %.1fx < 10x\n" solver_speedup;
    exit 1
  end;
  if not gate_ok then exit 1;
  row "[serve-smoke] OK: answers match batch mode, best solver-backed speedup %.1fx\n"
    solver_speedup

(* ------------------------------------------------------------------ *)
(* --scale-smoke: the CI job's 10^5-node workload under a wall cap.    *)

let scale_smoke_run () =
  let cap =
    match Sys.getenv_opt "LPH_SCALE_SMOKE_CAP_S" with
    | Some s when s <> "" -> float_of_string s
    | _ -> 180.
  in
  section "Scale smoke: 10^5-node workload under a wall-clock cap";
  let t0 = Unix.gettimeofday () in
  let n = 100_000 in
  let rng = Random.State.make [| 0xace; n |] in
  let g, build_ms = time_once (fun () -> Generators.expander ~rng ~n ~cycles:2 ()) in
  row "  build expander n=%d: %.1f ms\n" n build_ms;
  let ids = Identifiers.make_global g in
  let _, gather_ms = time_once (fun () -> Gather.collect ~radius:2 g ~ids ()) in
  row "  gather r=2: %.1f ms\n" gather_ms;
  let src = Random.State.make [| 0xbed |] in
  let _, balls_ms =
    time_once (fun () ->
        for _ = 1 to 20_000 do
          ignore (Neighborhood.ball g ~radius:2 (Random.State.int src n))
        done)
  in
  row "  20000 ball queries r=2: %.1f ms\n" balls_ms;
  let _, touched_ms =
    time_once (fun () ->
        for _ = 1 to 50 do
          let changed = List.init 100 (fun _ -> Random.State.int src n) in
          ignore (Neighborhood.touched g ~radius:2 changed)
        done)
  in
  row "  50 touched sweeps over 100 changed nodes: %.1f ms\n" touched_ms;
  let cyc = Generators.cycle n in
  let ids_cyc = Identifiers.make_global cyc in
  let v2 = Arbiter.of_local_algo ~id_radius:1 (Candidates.color_verifier 2) in
  let accepted, game_ms =
    time_once (fun () ->
        Game.sigma_accepts ~engine:`Pruned v2 cyc ~ids:ids_cyc
          ~universes:[ Candidates.color_universe 2 ])
  in
  row "  sigma1 2col pruned game on C%d: %b in %.1f ms\n" n accepted game_ms;
  let elapsed = Unix.gettimeofday () -. t0 in
  if not accepted then begin
    row "[scale-smoke] FAIL: the 2col game rejected an even cycle\n";
    exit 1
  end;
  if elapsed > cap then begin
    row "[scale-smoke] FAIL: %.1f s exceeds the %.0f s cap\n" elapsed cap;
    exit 1
  end;
  row "[scale-smoke] OK: %.1f s (cap %.0f s)\n" elapsed cap

(* ------------------------------------------------------------------ *)
(* Certification: optimum-vs-declared budget curves (ISSUE 10).        *)

(* For each probed verifier, the minimal certificate budget found by
   the optimiser next to the budget the spec declares, across the
   cycle/torus/expander families — the executable version of the
   "how tight are the shipped proof-labeling schemes" question. Both
   engines cross-check every boundary; the verdict and wall-clock per
   row feed the certification regression gate. *)
let exp_certification () =
  section "Certification: searched optimum vs declared budget per graph family";
  let sizes = if !smoke then [ 4 ] else Optimum.family_sizes ~default:[ 4; 9; 16 ] in
  let plan = [ "eulerian-decider"; "2-color-verifier"; "3-color-verifier" ] in
  let fams = [ "cycle"; "torus"; "expander" ] in
  let specs = (Lint_registry.builtin ()).Lint_registry.arbiters in
  row "%-20s %-10s %-6s %-12s %-6s %-10s %-7s %10s\n" "spec" "family" "n" "verdict" "bits"
    "declared" "agree" "ms";
  List.iter
    (fun name ->
      match List.find_opt (fun s -> s.Lint_registry.a_name = name) specs with
      | None -> row "%-20s (not in the registry; skipped)\n" name
      | Some spec ->
          List.iter
            (fun fam_name ->
              let fam = Option.get (Optimum.family fam_name) in
              List.iter
                (fun size ->
                  let r =
                    Optimum.search ~name ~arbiter:spec.Lint_registry.arbiter
                      ~universes:spec.Lint_registry.universes ~family:fam ~size ()
                  in
                  let opt_cell = function Some v -> string_of_int v | None -> "--" in
                  row "%-20s %-10s %-6d %-12s %-6s %-10s %-7b %10.2f\n" name r.Optimum.r_family
                    r.Optimum.r_size
                    (Optimum.verdict_string r.Optimum.r_verdict)
                    (opt_cell (Optimum.verdict_bits r.Optimum.r_verdict))
                    (opt_cell r.Optimum.r_declared) r.Optimum.r_engines_agree
                    r.Optimum.r_search_ms;
                  certification_entries :=
                    {
                      c_spec = name;
                      c_family = r.Optimum.r_family;
                      c_size = r.Optimum.r_size;
                      c_ms = r.Optimum.r_search_ms;
                      c_verdict = Optimum.verdict_string r.Optimum.r_verdict;
                      c_bits = Optimum.verdict_bits r.Optimum.r_verdict;
                      c_declared = r.Optimum.r_declared;
                      c_agree = r.Optimum.r_engines_agree;
                    }
                    :: !certification_entries)
                sizes)
            fams)
    plan;
  row "  a declared budget >= 2x the searched optimum trips budget/slack in lint.exe --optimize.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks.                                          *)

let bechamel_suite () =
  section "Micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let c32 = Generators.cycle 32 in
  let ids32 = Identifiers.make_global c32 in
  let grid = Generators.grid ~rows:4 ~cols:4 () in
  let gids = Identifiers.make_global grid in
  let c8 = Generators.cycle 8 in
  let c5 = Generators.cycle 5 in
  let ids5 = Identifiers.make_global c5 in
  let v3 = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3) in
  let pigeon =
    let p i j = Printf.sprintf "p%d%d" i j in
    List.init 4 (fun i -> [ Cnf.pos (p i 0); Cnf.pos (p i 1); Cnf.pos (p i 2) ])
    @ List.concat_map
        (fun j ->
          List.concat_map
            (fun i ->
              List.filter_map
                (fun k -> if k > i then Some [ Cnf.neg (p i j); Cnf.neg (p k j) ] else None)
                [ 0; 1; 2; 3 ])
            [ 0; 1; 2; 3 ])
        [ 0; 1; 2 ]
  in
  let sim = Simulate.through_reduction Eulerian_red.reduction ~inner:Candidates.eulerian_decider () in
  let c64 = Generators.cycle 64 in
  let ids64 = Identifiers.make_global c64 in
  let blank6 = Picture.constant ~bits:0 ~rows:6 ~cols:6 "" in
  let pic = Picture.constant ~bits:1 ~rows:3 ~cols:3 "1" in
  let mso_some_one = Formula.Exists ("x", Formula.Unary (1, "x")) in
  let cases =
    [
      ("turing/eulerian-C32", fun () -> ignore (Turing.run Machines.eulerian c32 ~ids:ids32 ()));
      ("runner/gather-r2-grid4x4", fun () -> ignore (Gather.collect ~radius:2 grid ~ids:gids ()));
      ("runner/gather-r3-grid4x4", fun () -> ignore (Gather.collect ~radius:3 grid ~ids:gids ()));
      ("logic/all-selected-C8", fun () -> ignore (Graph_formulas.holds c8 Graph_formulas.all_selected));
      (* engines pinned so the entries stay comparable across baselines
         whatever LPH_ENGINE the run was started under *)
      ( "game/3col-C5",
        fun () ->
          ignore
            (Game.sigma_accepts ~engine:`Pruned v3 c5 ~ids:ids5
               ~universes:[ Candidates.color_universe 3 ]) );
      ( "game/3col-C5-sat",
        fun () ->
          ignore
            (Game.sigma_accepts ~engine:`Sat v3 c5 ~ids:ids5
               ~universes:[ Candidates.color_universe 3 ]) );
      ( "game/sigma2-2col-C9-cegar",
        let robust = Arbiter.of_local_algo ~id_radius:1 Candidates.robust_two_col_verifier in
        let c9 = Generators.cycle 9 in
        let ids9 = Identifiers.make_global c9 in
        let u22 = [ Candidates.color_universe 2; Candidates.color_universe 2 ] in
        fun () -> ignore (Game.sigma_accepts ~engine:`Cegar robust c9 ~ids:ids9 ~universes:u22) );
      ("reduction/eulerian-C32", fun () -> ignore (Cluster.apply Eulerian_red.reduction c32 ~ids:ids32));
      ( "reduction/cook-levin-C5",
        fun () -> ignore (Cook_levin.reduce Graph_formulas.all_selected c5 ~ids:ids5) );
      ("sat/dpll-pigeonhole-4-3", fun () -> ignore (Sat_solver.satisfiable pigeon));
      ("simulate/eulerian-through-red-C32", fun () -> ignore (Runner.run sim c32 ~ids:ids32 ()));
      ("simulate/eulerian-through-red-C64", fun () -> ignore (Runner.run sim c64 ~ids:ids64 ()));
      ("tiling/squares-6x6", fun () -> ignore (Tiling.recognizes Tiling.squares blank6));
      ("picture/encode-decode-3x3", fun () -> ignore (Pic_to_graph.decode (Pic_to_graph.encode pic)));
      ("mso/compile-some-one", fun () -> ignore (Mso_to_dfa.compile ~bits:1 mso_some_one));
      ( "properties/hamiltonian-grid3x4",
        fun () -> ignore (Properties.hamiltonian (Generators.grid ~rows:3 ~cols:4 ())) );
    ]
  in
  let tests = List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) cases in
  let test = Test.make_grouped ~name:"lph" tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let quota = if !smoke then 0.05 else 0.4 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  (* a crude wall-clock estimate backs up any case whose OLS estimate
     is unavailable, so BENCH_1.json always carries a number per name *)
  let crude_ns f =
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    while Unix.gettimeofday () -. t0 < 0.02 do
      f ();
      incr iters
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int !iters
  in
  let rows =
    List.map
      (fun (name, f) ->
        let full = "lph/" ^ name in
        let ns =
          match Hashtbl.find_opt results full with
          | Some ols -> (
              match Analyze.OLS.estimates ols with
              | Some (t :: _) when not (Float.is_nan t) -> t
              | _ -> crude_ns f)
          | None -> crude_ns f
        in
        (full, ns))
      cases
  in
  bechamel_rows := rows;
  row "%-42s %16s\n" "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      row "%-42s %16s\n" name pretty)
    (List.sort compare rows)

let () =
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, "small instances and short quotas (CI smoke run)");
      ( "--scale-smoke",
        Arg.Set scale_smoke,
        "only the 10^5-node workload under a wall-clock cap (CI scale job)" );
      ( "--serve-smoke",
        Arg.Set serve_smoke,
        "only the serving section, gated on answer match and the 10x warm win (CI serve job)" );
    ]
    (fun a -> raise (Arg.Bad ("unknown argument: " ^ a)))
    "usage: main.exe [--smoke | --scale-smoke | --serve-smoke]";
  if !scale_smoke then begin
    scale_smoke_run ();
    exit 0
  end;
  if !serve_smoke then begin
    smoke := true;
    serve_smoke_run ();
    exit 0
  end;
  print_endline "A LOCAL View of the Polynomial Hierarchy — experiment harness";
  print_endline "(paper: Reiter, PODC 2024; see DESIGN.md E1-E16 and EXPERIMENTS.md)";
  if !smoke then print_endline "[smoke mode: reduced instance sizes and quotas]";
  Printf.printf "[parallel sweeps: %d domain(s); override with LPH_JOBS]\n" (Parallel.jobs ());
  Printf.printf "[wire: %s transport; override with LPH_WIRE=bits|packed]\n"
    (match Codec.wire_mode () with Codec.Packed -> "packed" | Codec.Bits -> "legacy bits");
  timed "E1-hierarchy" exp_fig1;
  timed "E2-prop21" exp_prop21;
  timed "E3-prop23" exp_prop23;
  timed "E4-E6-reductions" exp_reductions;
  timed "E7-cook-levin" exp_cook_levin;
  timed "E8-three-col" exp_three_col;
  timed "E9-fagin" exp_fagin;
  timed "E10-structural" exp_fig4;
  timed "E11-pictures" exp_pictures;
  timed "E12-words" exp_words;
  timed "lemma8" exp_lemma8;
  timed "lcl" exp_lcl;
  timed "step-time" exp_step_time;
  timed "engine-comparison" exp_engine;
  timed "faults-overhead" exp_faults_overhead;
  timed "fault-axis" exp_fault_axis;
  timed "scaling" exp_scaling;
  timed "scaling-curves" exp_scaling_curves;
  timed "serving" exp_serving;
  timed "certification" exp_certification;
  timed "bechamel" bechamel_suite;
  let baseline = newest_bench () in
  let report = Printf.sprintf "BENCH_%d.json" (baseline + 1) in
  write_bench_json report;
  Printf.printf "\nAll experiments completed; measurements written to %s.\n" report;
  if !smoke && baseline > 0 then begin
    let base = Printf.sprintf "BENCH_%d.json" baseline in
    let bechamel_ok = regression_gate base in
    let scaling_ok = scaling_gate base in
    let serving_ok = serving_gate base in
    let fault_axis_ok = fault_axis_gate base in
    let certification_ok = certification_gate base in
    if not (bechamel_ok && scaling_ok && serving_ok && fault_axis_ok && certification_ok) then
      exit 1
  end
