(* Component profiler for the wire layer: crude wall-clock timings of
   the pieces behind the Bechamel cases, for quick A/B while optimising
   (run with: dune exec bench/profile.exe, optionally under LPH_WIRE /
   LPH_JOBS / LPH_PAR_MIN). Not part of the recorded benchmarks. *)

open Lph_core

let time name f =
  (* warmup *)
  for _ = 1 to 20 do
    f ()
  done;
  let t0 = Unix.gettimeofday () in
  let iters = ref 0 in
  while Unix.gettimeofday () -. t0 < 0.3 do
    f ();
    incr iters
  done;
  Printf.printf "%-50s %10.1f us/run (%d iters)\n" name
    ((Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int !iters)
    !iters

let () =
  let grid = Generators.grid ~rows:4 ~cols:4 () in
  let gids = Identifiers.make_global grid in
  let c32 = Generators.cycle 32 in
  let ids32 = Identifiers.make_global c32 in
  Printf.printf "[LPH_JOBS=%d LPH_PAR_MIN=%s LPH_WIRE=%s]\n" (Parallel.jobs ())
    (match Sys.getenv_opt "LPH_PAR_MIN" with Some v -> v | None -> "default")
    (match Codec.wire_mode () with Codec.Packed -> "packed" | Codec.Bits -> "bits");
  let noop rounds_total =
    Local_algo.Packed
      {
        Local_algo.name = "noop";
        levels = 0;
        radius = None;
        init = (fun _ -> ());
        round =
          (fun ctx round () ~inbox:_ ->
            ( (),
              List.init ctx.Local_algo.degree (fun _ -> Local_algo.no_msg),
              round >= rounds_total ));
        output = (fun () -> "");
      }
  in
  time "runner floor C32 (3 no-op rounds)" (fun () ->
      ignore (Runner.run (noop 3) c32 ~ids:ids32 ()));
  time "gather r1 C32 (collect)" (fun () -> ignore (Gather.collect ~radius:1 c32 ~ids:ids32 ()));
  time "gather r2 grid4x4 (collect)" (fun () -> ignore (Gather.collect ~radius:2 grid ~ids:gids ()));
  let empty_map = Gather.map_algo ~name:"const" ~radius:1 ~levels:0 ~f:(fun _ _ -> "") in
  time "gather r1 C32 machinery (map_algo const)" (fun () ->
      ignore (Runner.run empty_map c32 ~ids:ids32 ()));
  time "eulerian reduction C32 (apply)" (fun () ->
      ignore (Cluster.apply Eulerian_red.reduction c32 ~ids:ids32));
  time "eulerian reduction C32 (run only)" (fun () ->
      ignore (Runner.run (Cluster.algo_of Eulerian_red.reduction) c32 ~ids:ids32 ()));
  let r = Runner.run (Cluster.algo_of Eulerian_red.reduction) c32 ~ids:ids32 () in
  let clusters =
    Array.init (Graph.card c32) (fun u -> Cluster.decode_label (Graph.label r.Runner.output u))
  in
  time "eulerian reduction C32 (decode labels)" (fun () ->
      ignore
        (Array.init (Graph.card c32) (fun u ->
             Cluster.decode_label (Graph.label r.Runner.output u))));
  time "eulerian reduction C32 (assemble only)" (fun () ->
      ignore (Cluster.assemble c32 ~ids:ids32 clusters));
  (* raw bit-expansion throughput on a ~300-byte payload *)
  let payload = List.init 30 (fun i -> String.make 8 (Char.chr (48 + (i mod 2)))) in
  let codec = Codec.list Codec.string in
  let bits = Codec.encode_bits codec payload in
  Printf.printf "payload bits length: %d\n" (String.length bits);
  time "encode_bits ~300B x16" (fun () ->
      for _ = 1 to 16 do
        ignore (Codec.encode_bits codec payload)
      done);
  time "decode_bits ~300B x16" (fun () ->
      for _ = 1 to 16 do
        ignore (Codec.decode_bits codec bits)
      done);
  (* CDCL counters behind the game engines: one cold Σ2 CEGAR duel on
     the robust-2col probe, with both solvers' statistics *)
  let c21 = Generators.cycle 21 in
  let ids21 = Identifiers.make_global c21 in
  let robust = Arbiter.of_local_algo ~id_radius:1 Candidates.robust_two_col_verifier in
  let universes = [ Candidates.color_universe 2; Candidates.color_universe 2 ] in
  time "sigma2 robust-2col C21 (cegar, warm)" (fun () ->
      ignore (Game.sigma_accepts ~engine:`Cegar robust c21 ~ids:ids21 ~universes));
  (match Game_cegar.instance ~eve_first:true robust c21 ~ids:ids21 ~universes with
  | None -> Printf.printf "cegar instance: not built (over budget?)\n"
  | Some d ->
      let s = Game_cegar.stats d in
      Printf.printf
        "cegar C21: iterations %d, proposals %d, refutations %d, cubes %d, generalised %d\n"
        s.Game_cegar.iterations s.Game_cegar.proposals s.Game_cegar.refutations s.Game_cegar.cubes
        s.Game_cegar.generalised;
      let solver name (st : Sat_solver.stats) =
        Printf.printf
          "%-10s decisions %-8d propagations %-10d conflicts %-7d learned %-7d restarts %d\n" name
          st.Sat_solver.decisions st.Sat_solver.propagations st.Sat_solver.conflicts
          st.Sat_solver.learned st.Sat_solver.restarts
      in
      solver "proposer" (Game_cegar.proposer_stats d);
      solver "refuter" (Game_cegar.shared_stats d))
