(** Seeded violations: deliberately broken specs proving the analyzer
    catches what it claims to catch. [bin/lint.exe --fixtures] must
    exit 1 on {!violations}, and the test suite checks each fixture
    trips exactly the rule named in {!expectations}. The fixtures
    reuse {e correct} machines with wrong declarations wherever
    possible ([Local_algo.with_radius]), so the finding is about the
    claim, not about broken behaviour. *)

val violations : unit -> Registry.t
(** - an under-declared arbiter (a radius-1 machine claiming radius 0:
      pruning with it would be unsound);
    - an arbiter declaring no radius at all (Opaque locality);
    - an over-declared arbiter (radius 2 claimed for a radius-1
      machine: sound, but flagged as loose);
    - a Σ3 sentence claimed at level Σ1;
    - a sentence whose matrix uses an unbounded existential
      first-order quantifier (not LFO);
    - a reduction whose id_radius is below its gather radius + 1;
    - and, for [Lint.run ~optimize:true]: a correct 2-colour verifier
      declaring a 4-bit budget where 1 bit suffices (slack), a
      certification reduction whose transfer function claims budget 0
      (inconsistent with direct search), and a stored optimiser result
      whose UNSAT core was emptied (fails replay). *)

val expectations : (string * Diagnostic.rule * Diagnostic.severity) list
(** For each fixture spec name, the rule it must trip and the expected
    severity (under the default [Lint.run]). *)

val opt_expectations : (string * Diagnostic.rule * Diagnostic.severity) list
(** The fixtures only [Lint.run ~optimize:true] can see: the expected
    [budget/*] rule and severity for each. *)
