(** The analyzer's catalogue: every built-in spec of the project's
    three embedded languages — arbiters / local algorithms, LFO/MSO
    sentences, and cluster reductions — paired with the metadata the
    lint rules need (probe graphs, certificate universes, expected
    radii, cost polynomials). [bin/lint.exe] runs {!Lint} over
    {!builtin}; the seeded violation fixtures live in {!Fixtures} and
    reuse the same spec types. *)

(** How the analyzer determines a spec's exact verification radius:

    - [Probed]: full empirical inference ({!Probe.infer}) — the
      declared radius must survive probing {e and} no smaller radius
      may (hand-written arbiters, whose locality is a claim about
      code);
    - [Static r]: the radius is derived from quantifier structure
      (Fagin-compiled arbiters: visibility radius of the matrix + 1;
      reduction compositions: gather radius + inner radius). The
      declared radius must equal [r], and probing checks soundness of
      the declaration only — the structural bound is intentionally
      conservative, so a smaller empirical radius is not a finding. *)
type radius_expectation = Probed | Static of int

type arbiter_spec = {
  a_name : string;
  arbiter : Lph_hierarchy.Arbiter.t;
  algo : Lph_machine.Local_algo.packed option;
      (** the underlying machine, when there is one (message-size
          accounting needs runner statistics) *)
  probes : Lph_graph.Labeled_graph.t list;
  universes :
    (Lph_graph.Labeled_graph.t ->
    Lph_graph.Identifiers.t ->
    Lph_hierarchy.Game.universe list)
    option;
  extra_samples : Probe.sample list;
      (** hand-picked accepting runs (honest certificates), so outside
          perturbations have accepting verdicts to flip *)
  expectation : radius_expectation;
  msg_bound : Lph_util.Poly.t option;
      (** per-round per-node message cost as a polynomial of the
          declared-radius ball information; [None] skips the rule *)
  max_radius : int;  (** probe cap for {!Probe.infer} *)
  opt_probes : (string * int list) list;
      (** certificate-budget probe plan: ({!Optimum.family} name,
          sizes) pairs the optimiser searches in [--optimize] mode and
          the certification bench sweeps; [[]] skips the spec *)
}

val arbiter_spec :
  ?algo:Lph_machine.Local_algo.packed ->
  ?universes:
    (Lph_graph.Labeled_graph.t ->
    Lph_graph.Identifiers.t ->
    Lph_hierarchy.Game.universe list) ->
  ?extra_samples:Probe.sample list ->
  ?expectation:radius_expectation ->
  ?msg_bound:Lph_util.Poly.t ->
  ?max_radius:int ->
  ?opt_probes:(string * int list) list ->
  name:string ->
  probes:Lph_graph.Labeled_graph.t list ->
  Lph_hierarchy.Arbiter.t ->
  arbiter_spec
(** Defaults: [Probed], no universes, no extras, [max_radius] 3, no
    optimiser probes, and (when [algo] is given) the message bound
    [64 * info^2]. *)

val of_algo :
  ?universes:
    (Lph_graph.Labeled_graph.t ->
    Lph_graph.Identifiers.t ->
    Lph_hierarchy.Game.universe list) ->
  ?extra_samples:Probe.sample list ->
  ?expectation:radius_expectation ->
  ?msg_bound:Lph_util.Poly.t ->
  ?max_radius:int ->
  ?opt_probes:(string * int list) list ->
  ?id_radius:int ->
  probes:Lph_graph.Labeled_graph.t list ->
  Lph_machine.Local_algo.packed ->
  arbiter_spec
(** Wrap a local algorithm as {!arbiter_spec} via
    [Arbiter.of_local_algo] (default [id_radius] 2), keeping the
    machine for message accounting and naming the spec after it. *)

type polarity = Sigma | Pi

type formula_spec = {
  f_name : string;
  formula : Lph_logic.Formula.t;
  claimed_level : int;  (** 0 = plain LFO, no second-order prefix *)
  claimed_polarity : polarity;  (** ignored at level 0 *)
  budget_probes : Lph_graph.Labeled_graph.t list;
      (** graphs on which every compiled fragment certificate must fit
          the (r,p) bound; keep them tiny — universes are exponential *)
}

type reduction_spec = {
  r_name : string;
  reduction : Lph_reductions.Cluster.reduction;
  r_probes : Lph_graph.Labeled_graph.t list;
  output_bound : Lph_util.Poly.t;
      (** per-node encoded cluster size as a polynomial of the node's
          gather-radius ball information *)
}

type codec_spec =
  | Codec_spec : {
      c_name : string;
      codec : 'a Lph_util.Codec.t;
      values : 'a list;
    }
      -> codec_spec
      (** a codec and representative values for cost-accounting checks *)

(** Which grammar a fault fixture must satisfy: the plan spec grammar
    ({!Lph_faults.Fault_plan.parse}) or the model spec grammar
    ({!Lph_faults.Fault_model.of_string}). *)
type fault_lang = Plan_spec | Model_spec

type fault_fixture = {
  fx_name : string;
  fx_lang : fault_lang;
  fx_spec : string;
      (** a spec string the project depends on staying parseable (CI
          fuzz matrix cells, documented examples, replay-line shapes) *)
}

type t = {
  arbiters : arbiter_spec list;
  formulas : formula_spec list;
  reductions : reduction_spec list;
  codecs : codec_spec list;
  faults : fault_fixture list;
  cert_reductions : Cert_reduction.t list;
      (** certification reductions the [budget/reduction-consistency]
          rule cross-checks in [--optimize] mode *)
  opt_stored : Optimum.result list;
      (** precomputed optimiser results whose lower-bound witnesses the
          [budget/lower-bound-replay] rule re-validates ([[]] for the
          builtin registry — the fixtures seed corrupted entries) *)
}

val builtin : unit -> t
(** Every shipped arbiter, sentence, reduction and wire codec, plus
    the certification reductions ({!Cert_reduction.builtin}). Built on
    demand — compiling the Fagin entries is not free, and binaries that
    merely link the library should not pay for it. *)
