(** Typed findings of the spec analyzer ({!Lint}).

    Every side condition the paper attaches to a class definition —
    constant verification radius, alternation depth, polynomial
    certificate budgets, constant-radius clusters — becomes a {e rule};
    a diagnostic records one spec's violation of (or conformance note
    about) one rule, together with the theorem the rule mechanises.
    Diagnostics are plain data with a JSON round-trip so [bin/lint.exe]
    can feed CI and editors. *)

type severity = Error | Warning | Info

(** Stable rule identifiers. Each constructor is one statically checked
    side condition; {!rule_doc} maps it to its explanation and theorem
    reference (also listed in DESIGN.md, "Static guarantees"). *)
type rule =
  | Radius_declared  (** arbiter must declare a verification radius *)
  | Radius_sound  (** declared radius survives outside-ball probing *)
  | Radius_tight  (** no strictly smaller radius also survives *)
  | Radius_expected  (** declared radius equals the quantifier bound *)
  | Stratification  (** alternation blocks match the claimed level *)
  | Bounded_quantifiers  (** matrix is LFO: bounded FO quantifiers *)
  | Certificate_budget  (** fragment certificates fit the (r,p) bound *)
  | Message_size  (** per-round message cost fits the declared poly *)
  | Cost_accounting  (** encoded_length/bits_length agree with encode *)
  | Cluster_radius  (** reduction id_radius covers its gather radius *)
  | Output_poly  (** per-node reduction output fits the declared poly *)
  | Fault_spec  (** registered fault fixtures parse and round-trip *)
  | Budget_slack  (** declared budget at least twice the searched optimum *)
  | Reduction_consistency  (** budget transfers dominate direct search *)
  | Lower_bound_replay  (** UNSAT-core witnesses replay in a fresh solver *)

val all_rules : rule list
(** Every rule, in declaration order — the [--rules] catalogue. *)

val rule_id : rule -> string
(** Stable string form, e.g. ["arbiter/radius-sound"]. *)

val rule_of_id : string -> rule option

val rule_severity : rule -> severity
(** The severity a violation of the rule is reported at. *)

val rule_doc : rule -> string * string
(** [(explanation, theorem)] — e.g.
    [("declared verification radius …", "Theorems 11/12")]. *)

type t = {
  spec : string;  (** name of the analysed spec *)
  rule : rule;
  severity : severity;
  message : string;  (** instance-specific explanation *)
}

val make : spec:string -> rule:rule -> severity:severity -> string -> t

val severity_to_string : severity -> string

val is_error : t -> bool

val pp : Format.formatter -> t -> unit
(** One line: [severity spec [rule-id] message (theorem)]. *)

val to_json : t -> Json.t

val of_json : Json.t -> t
(** Inverse of {!to_json}; raises
    [Lph_util.Error.Error (Decode_error _)] on unknown rules or
    severities and missing fields. *)
