(** A minimal JSON value type with a printer and a parser, used by the
    spec analyzer to emit machine-readable diagnostic reports
    ({!Diagnostic.to_json}, [bin/lint.exe --json]) and to round-trip
    them in tests. Only what diagnostics need: no floats, no unicode
    escapes beyond [\uXXXX] pass-through, integers fit in [int]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering with full string escaping. *)

val pretty : t -> string
(** Two-space indented rendering (what [lint.exe --json] prints). *)

val of_string : string -> t
(** Parse a JSON document (the inverse of {!to_string} / {!pretty} on
    values this module produces). Raises
    [Lph_util.Error.Error (Decode_error _)] on malformed input —
    reports cross tool boundaries, so parsing failures are typed like
    every other decode failure in the runtime. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing fields or non-objects. *)

val to_list : t -> t list
(** The elements of a [List]; raises [Error (Decode_error _)] otherwise. *)

val get_string : t -> string
val get_int : t -> int
val get_bool : t -> bool
