(** Certification-to-certification reductions between the shipped
    properties (Section 8 read through the Feuilloley–Paul–Paz lens):
    each local reduction [source ≤ target] is paired with a {e budget
    transfer} function — an upper bound on the source's minimal
    certificate budget in terms of the target's on the reduction
    image. Every entry is cross-checked against direct search
    ({!Optimum.search_graph}) on both sides of its probe instances:

    - source [Optimum s] and image [Optimum t] must satisfy
      [s <= transfer t];
    - a certifiable source whose image is rejected at every budget (or
      the converse) breaks the YES/NO equivalence the reduction claims;
    - an instance either search cannot decide (no universes, CNF over
      [LPH_SAT_BUDGET]) is skipped, never silently passed off as
      verified — the detail string says so.

    The [budget/reduction-consistency] lint rule is exactly
    {!check} over {!builtin} with inconsistencies raised as errors. *)

(** One side of a reduction: a named arbiter plus its certificate
    universes (as in {!Registry.arbiter_spec}; [None] for level-0
    deciders). *)
type spec = {
  cs_name : string;
  cs_arbiter : Lph_hierarchy.Arbiter.t;
  cs_universes :
    (Lph_graph.Labeled_graph.t ->
    Lph_graph.Identifiers.t ->
    Lph_hierarchy.Game.universe list)
    option;
}

type t = {
  cr_name : string;  (** "source<=target" *)
  cr_source : spec;
  cr_target : spec;
  cr_via : Lph_reductions.Cluster.reduction;
  cr_transfer : int -> int;
      (** target budget on the image -> claimed source budget bound *)
  cr_transfer_doc : string;  (** why the transfer is an upper bound *)
  cr_instances : (string * Lph_graph.Labeled_graph.t) list;
      (** named probe instances, YES and NO *)
}

(** The outcome of cross-checking one reduction on one instance. *)
type check = {
  ck_reduction : string;
  ck_instance : string;
  ck_source_bits : int option;  (** direct optimum on the instance *)
  ck_target_bits : int option;  (** direct optimum on the image *)
  ck_transferred : int option;  (** [transfer target_bits] *)
  ck_consistent : bool;
  ck_detail : string;
}

val check : ?engine:Lph_hierarchy.Game.engine -> t -> check list
(** Apply the reduction to every probe instance, search both sides,
    and compare against the transfer function. Results are memoised
    through {!Optimum}'s cache, so repeated checks are cheap. *)

val builtin : unit -> t list
(** The shipped reductions, budget transfers attached:
    ALL-SELECTED ≤ EULERIAN ({!Lph_reductions.Eulerian_red}),
    EULERIAN ≤ ALL-SELECTED ({!Lph_reductions.To_all_selected}),
    SAT-GRAPH ≤ 3SAT-GRAPH and 3SAT-GRAPH ≤ 3-COLORABLE
    ({!Lph_reductions.Three_col_red}), and
    ALL-SELECTED ≤ HAMILTONIAN ({!Lph_reductions.Hamiltonian_red},
    certified on the 2-FACTOR side). *)
