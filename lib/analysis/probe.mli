(** Empirical verification-radius inference for arbiters.

    An arbiter declaring [Ball r] locality claims that every node's
    verdict is a function of the induced radius-[r] neighbourhood (with
    its labels, identifiers and certificates) and the node's own
    degree — the side condition of Theorems 11/12 that makes locality
    pruning ({!Lph_hierarchy.Game.solve_pruned}) sound. This module
    checks the claim from the outside, treating the arbiter as a black
    box over its per-node verdict function:

    - {e ball restriction}: node [u]'s verdict recomputed on the
      induced subgraph [N_{max r 1}(u)] (certificates outside [N_r(u)]
      canonicalised to [""]) must equal the whole-graph verdict — the
      exact equation pruned search relies on;
    - {e outside perturbation}: flipping the labels, rewriting the
      certificates, or adding an edge between nodes at distance [> r]
      from [u] must leave [u]'s whole-graph verdict unchanged (a new
      edge between outside nodes never enters [N_r(u)]: any path
      through it reaches [u] in more than [r] hops).

    A candidate radius is {e consistent} when every node of every probe
    sample passes both checks. The inferred radius is the least
    consistent candidate; declaring less is unsound (pruning can cut a
    live branch), declaring more is sound but lies about the spec's
    locality. The check is empirical — as strong as the probe set — so
    the registry pairs every arbiter with probes rich enough to expose
    its true dependencies (accepting runs, mixed labels, odd cycles),
    and qcheck cross-validates that verdicts are stable under further
    perturbations outside the ball. *)

type sample = {
  graph : Lph_graph.Labeled_graph.t;
  certs : Lph_graph.Certificates.t list;
      (** one assignment per arbiter level (empty for deciders) *)
}

val samples_for :
  ?seed:int ->
  ?random_per_probe:int ->
  Lph_hierarchy.Arbiter.t ->
  universes:
    (Lph_graph.Labeled_graph.t -> Lph_graph.Identifiers.t -> Lph_hierarchy.Game.universe list)
    option ->
  Lph_graph.Labeled_graph.t list ->
  sample list
(** Build probe samples for the given graphs: for each graph, the
    all-empty certificate assignment, the per-node {e longest} universe
    candidate (the richest certificates, most likely to carry
    long-range references), and [random_per_probe] (default 2) seeded
    random draws. Without [universes], random bit strings of length at
    most 3 stand in. Deciders (level 0) get a single certificate-free
    sample per graph. *)

type violation = { node : int; graph_index : int; detail : string }
(** The first probe failure found for a candidate radius: which node of
    which sample (index into the sample list) changed its verdict, and
    how. *)

type outcome = {
  declared : int option;  (** the arbiter's declared [Ball] radius *)
  tested_max : int;
  results : (int * violation option) list;
      (** per candidate radius [0..tested_max]: [None] = consistent *)
  inferred : int option;
      (** least consistent candidate, if any is consistent *)
}

val consistent_at :
  radius:int -> Lph_hierarchy.Arbiter.t -> sample list -> violation option
(** Check one candidate radius against every sample ([None] =
    consistent). Requires the arbiter to expose per-node verdicts;
    raises [Invalid_argument] otherwise (callers gate on
    {!has_verdicts}). *)

val has_verdicts : Lph_hierarchy.Arbiter.t -> bool

val infer : ?max_radius:int -> Lph_hierarchy.Arbiter.t -> sample list -> outcome
(** Probe every candidate radius from 0 to [max ?max_radius declared]
    (default cap 3). *)
