(** The spec analyzer: runs every lint rule over a {!Registry.t} and
    collects typed {!Diagnostic.t}s. The rules mechanise the side
    conditions the paper attaches to its definitions:

    - radius rules (Theorems 11/12): every arbiter declares a
      verification radius; the declaration survives outside-ball
      probing; no smaller radius does (hand-written arbiters); the
      declaration equals the quantifier-derived bound (compiled ones);
    - stratification rules (Theorems 11/12): the second-order prefix
      has the claimed alternation depth and polarity, the matrix is
      LFO, and every compiled fragment certificate fits the declared
      (r, p) budget;
    - cost rules (Section 4): per-round message volume fits the
      declared polynomial of the ball information, and codec length
      accounting agrees with materialised encodings;
    - reduction rules (Theorems 19/20): constant cluster radius with
      the gather layer's identifier precondition, and per-node output
      polynomial in the gathered ball;
    - fault-fixture rules (the fault axis): every registered fault
      spec string — plan or model grammar — parses under the typed
      parsers and survives a spec round-trip, so recorded campaigns
      (CI matrices, faultlab replay lines) stay replayable;
    - certificate-budget rules ([--optimize] only, Section 6 read as a
      proof-labeling programme): the optimiser searches each probed
      spec's minimal certificate budget ({!Optimum}), warns when the
      declared budget is at least twice the optimum ([budget/slack]),
      re-validates every UNSAT-core lower bound in a fresh solver
      ([budget/lower-bound-replay]), and cross-checks the certification
      reductions' budget transfers against direct search
      ([budget/reduction-consistency]).

    The analyzer is empirical where it must be (probing opaque code)
    and symbolic where it can be (quantifier structure, codec
    arithmetic); each diagnostic says which. *)

type report = {
  arbiters : int;
  formulas : int;
  reductions : int;
  codecs : int;
  faults : int;  (** how many specs of each kind were analysed *)
  diagnostics : Diagnostic.t list;  (** in registry order *)
  optima : Optimum.result list;
      (** optimiser searches: probed specs first, then the registry's
          stored results; empty unless [run ~optimize:true] *)
  reduction_checks : Cert_reduction.check list;
      (** certification-reduction cross-checks; empty unless
          [run ~optimize:true] *)
}

val analyze_arbiter : Registry.arbiter_spec -> Diagnostic.t list
val analyze_formula : Registry.formula_spec -> Diagnostic.t list
val analyze_reduction : Registry.reduction_spec -> Diagnostic.t list
val analyze_codec : Registry.codec_spec -> Diagnostic.t list
val analyze_fault : Registry.fault_fixture -> Diagnostic.t list

val analyze_arbiter_optimum :
  Registry.arbiter_spec -> Optimum.result list * Diagnostic.t list
(** Search the spec's [opt_probes] and validate every verdict:
    engine agreement, proof replay, budget slack. *)

val analyze_cert_reduction :
  Cert_reduction.t -> Cert_reduction.check list * Diagnostic.t list

val analyze_stored : Optimum.result -> Diagnostic.t list
(** Re-validate a precomputed result's lower-bound witness. *)

val run : ?optimize:bool -> Registry.t -> report
(** [optimize] (default [false]) additionally runs the
    certificate-budget rules; the default run never searches, so lint
    stays fast and deterministic for the radius/cost rules alone. *)

val has_errors : report -> bool

val errors : report -> Diagnostic.t list
val warnings : report -> Diagnostic.t list

val report_to_json : report -> Json.t
(** Schema ["lph-lint-2"]: spec counts, error/warning totals, the
    diagnostic list ({!Diagnostic.to_json}), and the optimiser's
    [optima] and [reduction_checks] arrays (empty outside
    [--optimize]). *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable: one line per diagnostic plus a summary line. *)
