(** The spec analyzer: runs every lint rule over a {!Registry.t} and
    collects typed {!Diagnostic.t}s. The rules mechanise the side
    conditions the paper attaches to its definitions:

    - radius rules (Theorems 11/12): every arbiter declares a
      verification radius; the declaration survives outside-ball
      probing; no smaller radius does (hand-written arbiters); the
      declaration equals the quantifier-derived bound (compiled ones);
    - stratification rules (Theorems 11/12): the second-order prefix
      has the claimed alternation depth and polarity, the matrix is
      LFO, and every compiled fragment certificate fits the declared
      (r, p) budget;
    - cost rules (Section 4): per-round message volume fits the
      declared polynomial of the ball information, and codec length
      accounting agrees with materialised encodings;
    - reduction rules (Theorems 19/20): constant cluster radius with
      the gather layer's identifier precondition, and per-node output
      polynomial in the gathered ball;
    - fault-fixture rules (the fault axis): every registered fault
      spec string — plan or model grammar — parses under the typed
      parsers and survives a spec round-trip, so recorded campaigns
      (CI matrices, faultlab replay lines) stay replayable.

    The analyzer is empirical where it must be (probing opaque code)
    and symbolic where it can be (quantifier structure, codec
    arithmetic); each diagnostic says which. *)

type report = {
  arbiters : int;
  formulas : int;
  reductions : int;
  codecs : int;
  faults : int;  (** how many specs of each kind were analysed *)
  diagnostics : Diagnostic.t list;  (** in registry order *)
}

val analyze_arbiter : Registry.arbiter_spec -> Diagnostic.t list
val analyze_formula : Registry.formula_spec -> Diagnostic.t list
val analyze_reduction : Registry.reduction_spec -> Diagnostic.t list
val analyze_codec : Registry.codec_spec -> Diagnostic.t list
val analyze_fault : Registry.fault_fixture -> Diagnostic.t list

val run : Registry.t -> report

val has_errors : report -> bool

val errors : report -> Diagnostic.t list
val warnings : report -> Diagnostic.t list

val report_to_json : report -> Json.t
(** Schema ["lph-lint-1"]: spec counts, error/warning totals, and the
    diagnostic list ({!Diagnostic.to_json}). *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable: one line per diagnostic plus a summary line. *)
