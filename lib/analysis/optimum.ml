module G = Lph_graph.Labeled_graph
module Gen = Lph_graph.Generators
module Ids = Lph_graph.Identifiers
module Certs = Lph_graph.Certificates
module Cnf = Lph_boolean.Cnf
module Solver = Lph_boolean.Solver
module Arbiter = Lph_hierarchy.Arbiter
module Game = Lph_hierarchy.Game
module Game_sat = Lph_hierarchy.Game_sat

(* ---- graph families ------------------------------------------------ *)

type family = { fam_name : string; build : int -> G.t }

let even_size n = if n mod 2 = 0 then max 4 n else max 4 (n + 1)

let odd_size n =
  let n = max 5 n in
  if n mod 2 = 1 then n else n + 1

let marked_cycle n =
  let n = max 3 n in
  G.with_labels (Gen.cycle n) (Array.init n (fun i -> if i = 0 then "0" else "1"))

let families =
  [
    { fam_name = "cycle"; build = (fun n -> Gen.cycle (max 3 n)) };
    { fam_name = "even-cycle"; build = (fun n -> Gen.cycle (even_size n)) };
    { fam_name = "odd-cycle"; build = (fun n -> Gen.cycle (odd_size n)) };
    { fam_name = "marked-cycle"; build = marked_cycle };
    {
      fam_name = "torus";
      build =
        (fun n ->
          let k = max 3 (int_of_float (Float.round (sqrt (float_of_int (max 9 n))))) in
          Gen.torus ~rows:k ~cols:k ());
    };
    {
      fam_name = "expander";
      build =
        (fun n ->
          let n = max 3 n in
          (* deterministic per size: the memo and the bench baselines
             must see the same graph every run *)
          let rng = Random.State.make [| 0x5eed; n |] in
          Gen.expander ~rng ~n ~cycles:2 ());
    };
  ]

let family name = List.find_opt (fun f -> f.fam_name = name) families

let family_sizes ~default =
  match Sys.getenv_opt "LPH_OPT_FAMILY_SIZES" with
  | None | Some "" -> default
  | Some s -> (
      let parts = List.map String.trim (String.split_on_char ',' s) in
      match List.map int_of_string_opt parts with
      | sizes when List.for_all (function Some k -> k > 0 | None -> false) sizes ->
          List.filter_map Fun.id sizes
      | _ ->
          invalid_arg
            "Optimum: LPH_OPT_FAMILY_SIZES must be a comma-separated list of positive integers")

let budget_cap ~natural =
  match Sys.getenv_opt "LPH_OPT_BUDGET_MAX" with
  | None | Some "" -> natural
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some b when b >= 0 -> min natural b
      | _ -> invalid_arg "Optimum: LPH_OPT_BUDGET_MAX must be a non-negative integer")

(* ---- proof objects ------------------------------------------------- *)

type core_proof = {
  p_budget : int;
  core : Cnf.clause;
  p_assumptions : Cnf.clause;
  p_cnf : Cnf.t;
}

type proof = Core of core_proof | Refuted_by_game of int | Floor

let replay p =
  let s = Solver.create () in
  List.iter (Solver.add_clause s) p.p_cnf;
  Option.is_none (Solver.solve_with ~assumptions:p.core s)

let core_subset p = List.for_all (fun l -> List.mem l p.p_assumptions) p.core

let proof_size = function Core p -> Some (List.length p.core) | Refuted_by_game _ | Floor -> None

(* ---- search -------------------------------------------------------- *)

type verdict =
  | Optimum of { bits : int; proof : proof }
  | Rejected of { max_budget : int; proof : proof }
  | Unsupported of string

type result = {
  r_spec : string;
  r_family : string;
  r_size : int;
  r_verdict : verdict;
  r_declared : int option;
  r_engines_agree : bool;
  r_search_ms : float;
  r_probes : int;
}

let verdict_bits = function Optimum { bits; _ } -> Some bits | Rejected _ | Unsupported _ -> None

let verdict_string = function
  | Optimum _ -> "optimum"
  | Rejected _ -> "rejected"
  | Unsupported _ -> "unsupported"

(* Only Eve's levels are budget-restricted: shrinking Adam's universes
   would HELP Eve, destroying the monotonicity the binary search rests
   on. Games are Eve-first, so her levels are the even indices. *)
let eve_levels levels = List.filter (fun l -> l mod 2 = 0) (List.init levels Fun.id)

let restrict_universes ~budget ~eve universes =
  List.mapi
    (fun l (u : Game.universe) : Game.universe ->
      if List.mem l eve then fun v -> List.filter (fun c -> String.length c <= budget) (u v)
      else u)
    universes

(* A node whose Eve slot has no candidate within the budget: the game
   rejects outright (Eve cannot even move there) — short-circuited so
   no engine is handed an empty universe. *)
let eve_slot_empty g ~budget ~eve universes =
  List.exists
    (fun l ->
      let u = List.nth universes l in
      G.fold_nodes g ~init:false ~f:(fun acc v ->
          acc || List.for_all (fun c -> String.length c > budget) (u v)))
    eve

(* The lower-bound witness for "rejected at [budget]": the compiled
   game CNF is UNSAT under the over-budget selector bans with every
   level existential (mode = all accept). Relaxing Adam only weakens
   the statement being refuted, so UNSAT here implies the true game
   also rejects — and at one level the relaxation is the game itself.
   A SAT answer at two or more levels means no core-style witness
   exists; the cross-engine agreement is then the only evidence. *)
let lower_bound_proof arbiter g ~ids ~universes ~eve ~budget =
  match Game_sat.compile_explain arbiter g ~ids ~universes with
  | Error e -> Error (Lph_util.Error.to_string e)
  | Ok inst -> (
      let bans = Game_sat.budget_assumptions inst ~budget ~levels:eve in
      match Game_sat.solve_constrained inst ~assumptions:bans ~eve:true with
      | `Model _ -> Ok (Refuted_by_game budget)
      | `Unsat (core, assumed) ->
          Ok (Core { p_budget = budget; core; p_assumptions = assumed; p_cnf = Game_sat.cnf inst }))

let engine_pair engine =
  match Game.resolve engine with
  | `Cegar -> (`Cegar, `Sat)
  | `Sat | `Auto | `Exhaustive | `Pruned -> (`Sat, `Cegar)

let engine_tag = function
  | `Sat -> "sat"
  | `Cegar -> "cegar"
  | `Pruned -> "pruned"
  | `Exhaustive -> "exhaustive"
  | `Auto -> "auto"

let memo : (string * string * int * string, result) Hashtbl.t = Hashtbl.create 64

let memo_lock = Mutex.create ()

let run ~primary ~other ~name ~flabel ~arbiter ~universes g =
  let t0 = Sys.time () in
  let ids = Ids.make_global g in
  let levels = arbiter.Arbiter.levels in
  let probes = ref 0 in
  let finish ?(agree = true) ?declared verdict =
    {
      r_spec = name;
      r_family = flabel;
      r_size = G.card g;
      r_verdict = verdict;
      r_declared = declared;
      r_engines_agree = agree;
      r_search_ms = (Sys.time () -. t0) *. 1000.;
      r_probes = !probes;
    }
  in
  if levels = 0 then begin
    incr probes;
    if Arbiter.decider_accepts arbiter g ~ids then finish (Optimum { bits = 0; proof = Floor })
    else finish (Rejected { max_budget = 0; proof = Floor })
  end
  else
    match universes with
    | None -> finish (Unsupported "no certificate universes declared")
    | Some mk -> (
        let universes = mk g ids in
        if List.length universes <> levels then
          finish (Unsupported "universe count differs from the arbiter's levels")
        else
          let eve = eve_levels levels in
          let natural =
            List.fold_left
              (fun acc l ->
                let u = List.nth universes l in
                G.fold_nodes g ~init:acc ~f:(fun acc v ->
                    List.fold_left (fun acc c -> max acc (String.length c)) acc (u v)))
              0 eve
          in
          let cap = budget_cap ~natural in
          let declared =
            match arbiter.Arbiter.cert_bound with
            | Some b -> Certs.declared_cap g ~ids b
            | None -> natural
          in
          let decide engine budget =
            if engine == primary then incr probes;
            (not (eve_slot_empty g ~budget ~eve universes))
            && Game.sigma_accepts ~engine arbiter g ~ids
                 ~universes:(restrict_universes ~budget ~eve universes)
          in
          let proof_at budget =
            lower_bound_proof arbiter g ~ids ~universes ~eve ~budget
          in
          if not (decide primary cap) then (
            let agree = decide other cap = false in
            match proof_at cap with
            | Error detail -> finish ~agree (Unsupported detail)
            | Ok proof -> finish ~agree ~declared (Rejected { max_budget = cap; proof }))
          else begin
            (* cap accepts: binary search for the lowest accepting budget *)
            let lo = ref 0 and hi = ref cap in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if decide primary mid then hi := mid else lo := mid + 1
            done;
            let optimum = !lo in
            let agree =
              decide other optimum && (optimum = 0 || decide other (optimum - 1) = false)
            in
            if optimum = 0 then finish ~agree ~declared (Optimum { bits = 0; proof = Floor })
            else
              match proof_at (optimum - 1) with
              | Error detail -> finish ~agree (Unsupported detail)
              | Ok proof -> finish ~agree ~declared (Optimum { bits = optimum; proof })
          end)

let memoised key compute =
  match Mutex.protect memo_lock (fun () -> Hashtbl.find_opt memo key) with
  | Some r -> r
  | None ->
      let r = compute () in
      Mutex.protect memo_lock (fun () ->
          if Hashtbl.length memo > 512 then Hashtbl.reset memo;
          Hashtbl.replace memo key r);
      r

let search ?(engine = `Auto) ~name ~arbiter ~universes ~family ~size () =
  let primary, other = engine_pair engine in
  memoised (name, family.fam_name, size, engine_tag primary) (fun () ->
      run ~primary ~other ~name ~flabel:family.fam_name ~arbiter ~universes (family.build size))

let search_graph ?(engine = `Auto) ~name ~arbiter ~universes ~label g =
  let primary, other = engine_pair engine in
  memoised (name, label, G.card g, engine_tag primary) (fun () ->
      run ~primary ~other ~name ~flabel:label ~arbiter ~universes g)
