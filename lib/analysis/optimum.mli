(** The certificate-budget optimiser: per-(arbiter, graph-family)
    minimal-certificate search, the Feuilloley–Paul–Paz programme run
    on the shipped specs. A Σℓ certificate game is monotone in the
    budget of Eve's levels — restricting her universes to certificates
    of at most [b] characters only shrinks her strategy space — so the
    minimum budget at which the game still accepts is found by binary
    search, each candidate budget decided by the [`Sat]/[`Cegar]
    engines on the budget-restricted universes.

    Lower bounds are {e machine-checkable}: rejection at budget [b] is
    witnessed by an UNSAT answer of the compiled game CNF under the
    selector assumptions banning over-budget candidates (with Adam's
    levels relaxed to existential, which only weakens the claim being
    refuted — sound for lower bounds, and exact at one level). The
    failed-assumption core ({!Lph_boolean.Solver.unsat_core}) plus the
    compiled clauses form a proof object that {!replay} re-validates
    in a fresh solver, independent of the searching instance. *)

(** {1 Graph families} *)

type family = {
  fam_name : string;
  build : int -> Lph_graph.Labeled_graph.t;
      (** size parameter -> instance (sizes are clamped to the family's
          minimum; parity families round to the right parity) *)
}

val families : family list
(** [cycle], [even-cycle], [odd-cycle], [marked-cycle] (node 0
    labelled "0", the rest "1" — the counter verifiers' domain),
    [torus] (√n × √n), [expander] (seeded, 2 Hamiltonian cycles). *)

val family : string -> family option

val family_sizes : default:int list -> int list
(** The size sweep: [LPH_OPT_FAMILY_SIZES] (comma-separated positive
    integers) when set, [default] otherwise. Raises [Invalid_argument]
    on a malformed value. *)

val budget_cap : natural:int -> int
(** The search's upper budget: the longest candidate certificate on
    Eve's levels ([natural]), lowered by [LPH_OPT_BUDGET_MAX] when the
    environment sets it. *)

(** {1 Proof objects} *)

type core_proof = {
  p_budget : int;  (** the refuted budget *)
  core : Lph_boolean.Cnf.clause;  (** failed-assumption subset *)
  p_assumptions : Lph_boolean.Cnf.clause;  (** what the search assumed *)
  p_cnf : Lph_boolean.Cnf.t;  (** the compiled game clauses *)
}

type proof =
  | Core of core_proof
      (** UNSAT core at the refuted budget, replayable via {!replay} *)
  | Refuted_by_game of int
      (** a multi-level game rejected the budget but the all-existential
          relaxation was satisfiable: no core exists, the engines'
          agreement is the only witness *)
  | Floor
      (** nothing below to refute: the optimum is 0 (or the arbiter has
          no certificate levels at all) *)

val replay : core_proof -> bool
(** Load [p_cnf] into a fresh solver and solve under [core] alone:
    [true] iff the answer is UNSAT again — the proof stands on the
    clauses, not on the searching solver's learned state. *)

val core_subset : core_proof -> bool
(** Is every core literal among the recorded assumptions? *)

val proof_size : proof -> int option
(** Number of core literals, for [Core] proofs. *)

(** {1 Search} *)

type verdict =
  | Optimum of { bits : int; proof : proof }
      (** accepted at [bits], refuted at [bits - 1] (witness in
          [proof]) *)
  | Rejected of { max_budget : int; proof : proof }
      (** rejected at every budget up to [max_budget] *)
  | Unsupported of string
      (** no certificate universes declared, or compilation refused
          (over [LPH_SAT_BUDGET], opaque arbiter) *)

type result = {
  r_spec : string;
  r_family : string;
  r_size : int;
  r_verdict : verdict;
  r_declared : int option;
      (** the spec's declared budget on this instance: the (r,p)-bound
          when the arbiter carries one, else the longest candidate in
          its universes; [None] for level-0 deciders *)
  r_engines_agree : bool;
      (** the [`Sat] and [`Cegar] engines answered identically at the
          optimum and at the refuted budget below it *)
  r_search_ms : float;  (** CPU time spent by this search *)
  r_probes : int;  (** budget decisions made by the primary engine *)
}

val verdict_bits : verdict -> int option
(** [Some bits] for [Optimum], [None] otherwise. *)

val verdict_string : verdict -> string
(** ["optimum"], ["rejected"] or ["unsupported"]. *)

val search :
  ?engine:Lph_hierarchy.Game.engine ->
  name:string ->
  arbiter:Lph_hierarchy.Arbiter.t ->
  universes:
    (Lph_graph.Labeled_graph.t ->
    Lph_graph.Identifiers.t ->
    Lph_hierarchy.Game.universe list)
    option ->
  family:family ->
  size:int ->
  unit ->
  result
(** Minimal-certificate search for one spec on one family instance
    (identifiers: {!Lph_graph.Identifiers.make_global}). The primary
    engine is [engine] resolved against [LPH_ENGINE] when it is [`Sat]
    or [`Cegar], else [`Sat]; the other of the two cross-checks every
    reported boundary. Results are memoised per (spec, family, size,
    engine) — the second call is free. *)

val search_graph :
  ?engine:Lph_hierarchy.Game.engine ->
  name:string ->
  arbiter:Lph_hierarchy.Arbiter.t ->
  universes:
    (Lph_graph.Labeled_graph.t ->
    Lph_graph.Identifiers.t ->
    Lph_hierarchy.Game.universe list)
    option ->
  label:string ->
  Lph_graph.Labeled_graph.t ->
  result
(** Like {!search} on an explicit instance ([label] stands in for the
    family name in the result and the memo key) — what the
    certification reductions use on reduction images. *)
