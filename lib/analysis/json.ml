module E = Lph_util.Error

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec print ~indent ~level buf v =
  let nl pad =
    match indent with
    | None -> ()
    | Some step ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (step * pad) ' ')
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | String s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          print ~indent ~level:(level + 1) buf item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          escape_to buf k;
          Buffer.add_char buf ':';
          if indent <> None then Buffer.add_char buf ' ';
          print ~indent ~level:(level + 1) buf item)
        fields;
      nl level;
      Buffer.add_char buf '}'

let render indent v =
  let buf = Buffer.create 256 in
  print ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render None v

let pretty v = render (Some 2) v

(* ------------------------------------------------------------------ *)
(* parsing *)

let fail fmt = E.decode_error ~what:"Json" fmt

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c at offset %d, found %c" c !pos c'
    | None -> fail "expected %c at offset %d, found end of input" c !pos
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string at offset %d" !pos
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | Some 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape at offset %d" !pos;
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "bad \\u escape %S at offset %d" hex !pos
              in
              (* diagnostics only ever escape control characters, which
                 fit in one byte; reject the rest instead of guessing an
                 encoding *)
              if code > 0xff then fail "unsupported \\u escape %S at offset %d" hex !pos;
              Buffer.add_char buf (Char.chr code);
              pos := !pos + 4
          | Some c -> fail "bad escape \\%c at offset %d" c !pos
          | None -> fail "truncated escape at offset %d" !pos);
          advance ();
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
          advance ();
          digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start then fail "expected a number at offset %d" start;
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number at offset %d" start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input at offset %d" !pos
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] at offset %d" !pos
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected , or } at offset %d" !pos
          in
          Obj (fields [])
        end
    | Some ('-' | '0' .. '9') -> Int (parse_int ())
    | Some c -> fail "unexpected character %c at offset %d" c !pos
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage at offset %d" !pos;
  v

(* ------------------------------------------------------------------ *)
(* accessors *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_list = function List items -> items | _ -> fail "expected a list"

let get_string = function String s -> s | _ -> fail "expected a string"

let get_int = function Int n -> n | _ -> fail "expected an integer"

let get_bool = function Bool b -> b | _ -> fail "expected a boolean"
