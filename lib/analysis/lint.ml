module G = Lph_graph.Labeled_graph
module N = Lph_graph.Neighborhood
module Ids = Lph_graph.Identifiers
module Certs = Lph_graph.Certificates
module C = Lph_util.Codec
module Poly = Lph_util.Poly
module Arbiter = Lph_hierarchy.Arbiter
module Syntax = Lph_logic.Syntax
module Compile = Lph_fagin.Compile
module Cluster = Lph_reductions.Cluster
module Runner = Lph_machine.Runner
module D = Diagnostic

type report = {
  arbiters : int;
  formulas : int;
  reductions : int;
  codecs : int;
  faults : int;
  diagnostics : D.t list;
  optima : Optimum.result list;
  reduction_checks : Cert_reduction.check list;
}

let collector spec =
  let diags = ref [] in
  let add rule severity message = diags := D.make ~spec ~rule ~severity message :: !diags in
  (diags, add)

(* printf-style front end; a top-level function so each call site gets
   its own format instantiation *)
let addf add rule severity fmt = Printf.ksprintf (add rule severity) fmt

let pp_violation (v : Probe.violation) =
  Printf.sprintf "node %d of probe sample %d: %s" v.Probe.node v.Probe.graph_index
    v.Probe.detail

(* ------------------------------------------------------------------ *)
(* arbiters: radius declaration, soundness, tightness / static bound,
   message accounting *)

let analyze_radius add (spec : Registry.arbiter_spec) samples =
  let a = spec.Registry.arbiter in
  match a.Arbiter.locality with
  | Arbiter.Opaque -> begin
      addf add D.Radius_declared D.Error
        "arbiter declares no verification radius (Opaque locality): locality pruning is \
         disabled and the constant-radius side condition is unchecked";
      (* still probe, to tell the author what to declare *)
      match (Probe.infer ~max_radius:spec.Registry.max_radius a samples).Probe.inferred with
      | Some r -> addf add D.Radius_declared D.Info "probing suggests declaring radius %d" r
      | None -> ()
    end
  | Arbiter.Ball declared -> begin
      match spec.Registry.expectation with
      | Registry.Static expected -> begin
          if declared <> expected then
            addf add D.Radius_expected D.Error
              "declared radius %d differs from the quantifier-derived bound %d" declared
              expected;
          match Probe.consistent_at ~radius:declared a samples with
          | None -> ()
          | Some v ->
              addf add D.Radius_sound D.Error "declared radius %d is unsound: %s" declared
                (pp_violation v)
        end
      | Registry.Probed -> begin
          let outcome = Probe.infer ~max_radius:spec.Registry.max_radius a samples in
          (match List.assoc_opt declared outcome.Probe.results with
          | Some (Some v) ->
              addf add D.Radius_sound D.Error "declared radius %d is unsound: %s" declared
                (pp_violation v)
          | Some None | None -> ());
          match outcome.Probe.inferred with
          | Some r when r < declared ->
              addf add D.Radius_tight D.Warning
                "radius %d survives the same probes: the declaration %d over-approximates \
                 the spec's locality (sound, but prunes less)"
                r declared
          | _ -> ()
        end
    end

let analyze_messages add (spec : Registry.arbiter_spec) samples =
  match (spec.Registry.algo, spec.Registry.msg_bound) with
  | Some packed, Some bound ->
      let radius =
        match spec.Registry.arbiter.Arbiter.locality with
        | Arbiter.Ball r -> max r 1
        | Arbiter.Opaque -> 1
      in
      let bad = ref None in
      List.iter
        (fun (s : Probe.sample) ->
          if !bad = None then begin
            let g = s.Probe.graph in
            let ids = Ids.make_global g in
            let cert_list =
              match s.Probe.certs with [] -> None | cs -> Some (Certs.list_assignment cs)
            in
            let result = Runner.run packed g ~ids ?cert_list () in
            let stats = result.Runner.stats in
            Array.iteri
              (fun round per_node ->
                Array.iteri
                  (fun u cost ->
                    if !bad = None then begin
                      let info = N.ball_information g ~ids ~radius u in
                      if not (Poly.fits ~bound [ (info, cost) ]) then
                        bad := Some (round + 1, u, cost, info)
                    end)
                  per_node)
              stats.Runner.message_bytes
          end)
        samples;
      (match !bad with
      | Some (round, u, cost, info) ->
          addf add D.Message_size D.Error
            "round %d message cost %d at node %d exceeds the declared polynomial of its \
             %d-ball information (%d): p(%d) = %d"
            round cost u radius info info (Poly.eval bound info)
      | None -> ())
  | _ -> ()

let analyze_arbiter (spec : Registry.arbiter_spec) =
  let diags, add = collector spec.Registry.a_name in
  let a = spec.Registry.arbiter in
  if Probe.has_verdicts a then begin
    let samples =
      Probe.samples_for a ~universes:spec.Registry.universes spec.Registry.probes
      @ spec.Registry.extra_samples
    in
    analyze_radius add spec samples;
    analyze_messages add spec samples
  end
  else
    addf add D.Radius_sound D.Warning
      "arbiter exposes no per-node verdict function: the radius declaration cannot be probed";
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* formulas: stratification, LFO matrix, certificate budget *)

let polarity_name = function Registry.Sigma -> "Σ" | Registry.Pi -> "Π"

let in_claimed_class (spec : Registry.formula_spec) =
  match (spec.Registry.claimed_level, spec.Registry.claimed_polarity) with
  | 0, _ -> Syntax.in_sigma_lfo 0 spec.Registry.formula
  | l, Registry.Sigma -> Syntax.in_sigma_lfo l spec.Registry.formula
  | l, Registry.Pi -> Syntax.in_pi_lfo l spec.Registry.formula

let analyze_stratification add (spec : Registry.formula_spec) =
  let f = spec.Registry.formula in
  let claimed = spec.Registry.claimed_level in
  let level, first = Syntax.level f in
  let _, matrix = Syntax.so_prefix f in
  if not (Syntax.is_lfo matrix) then
    addf add D.Bounded_quantifiers D.Error
      "the matrix below the second-order prefix is not LFO: first-order quantifiers must \
       be bounded (one outer unbounded universal excepted)"
  else if not (in_claimed_class spec) then
    addf add D.Stratification D.Error
      "sentence is not in the claimed %s%d^LFO: the prefix has %d alternating block(s)%s"
      (polarity_name spec.Registry.claimed_polarity)
      claimed level
      (match first with
      | Some Syntax.Ex -> " starting existentially"
      | Some Syntax.All -> " starting universally"
      | None -> "")
  else if level < claimed then
    addf add D.Stratification D.Warning
      "claimed level %d is loose: the prefix has only %d alternating block(s)" claimed level

let analyze_budget add (spec : Registry.formula_spec) =
  if in_claimed_class spec then begin
    let compiled = Compile.compile spec.Registry.formula in
    match compiled.Compile.arbiter.Arbiter.cert_bound with
    | None ->
        addf add D.Certificate_budget D.Error
          "compiled arbiter declares no certificate bound: the game quantifies over \
           unbounded certificates"
    | Some bound ->
        let bad = ref None in
        List.iter
          (fun g ->
            if !bad = None then begin
              let ids = Ids.make_global g in
              let universes = Compile.fragment_universes compiled g ~ids in
              List.iteri
                (fun lvl universe ->
                  List.iter
                    (fun u ->
                      let cap = Certs.max_length g ~ids bound u in
                      List.iter
                        (fun cert ->
                          if !bad = None && String.length cert > cap then
                            bad := Some (lvl, u, String.length cert, cap))
                        (universe u))
                    (G.nodes g))
                universes
            end)
          spec.Registry.budget_probes;
        (match !bad with
        | Some (lvl, u, len, cap) ->
            addf add D.Certificate_budget D.Error
              "level-%d fragment certificate of length %d at node %d exceeds the declared \
               (r,p) budget (%d)"
              (lvl + 1) len u cap
        | None -> ())
  end

let analyze_formula (spec : Registry.formula_spec) =
  let diags, add = collector spec.Registry.f_name in
  analyze_stratification add spec;
  (try analyze_budget add spec
   with Lph_util.Error.Error e ->
     addf add D.Certificate_budget D.Error "compilation failed: %s"
       (Format.asprintf "%a" Lph_util.Error.pp e));
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* reductions: constant cluster radius, polynomial per-node output *)

let analyze_reduction (spec : Registry.reduction_spec) =
  let diags, add = collector spec.Registry.r_name in
  let red = spec.Registry.reduction in
  let gr = red.Cluster.gather_radius in
  if gr < 0 then addf add D.Cluster_radius D.Error "negative gather radius %d" gr;
  if red.Cluster.id_radius < gr + 1 then
    addf add D.Cluster_radius D.Error
      "id_radius %d is below the gather layer's precondition: gathering radius %d needs \
       identifiers unique at radius %d"
      red.Cluster.id_radius gr (gr + 1);
  let bad = ref None in
  (try
     List.iter
       (fun g ->
         if !bad = None then begin
           let ids = Ids.make_global g in
           (* the assemble protocol itself re-checks ownership and
              boundary agreement; a raise here is a finding, not a
              crash *)
           ignore (Cluster.apply red g ~ids);
           let result = Runner.run (Cluster.algo_of red) g ~ids () in
           List.iter
             (fun u ->
               if !bad = None then begin
                 let len = String.length (G.label result.Runner.output u) in
                 let info = N.ball_information g ~ids ~radius:gr u in
                 if not (Poly.fits ~bound:spec.Registry.output_bound [ (info, len) ]) then
                   bad := Some (u, len, info)
               end)
             (G.nodes g)
         end)
       spec.Registry.r_probes;
     match !bad with
     | Some (u, len, info) ->
         addf add D.Output_poly D.Error
           "encoded cluster of %d bytes at node %d exceeds the declared polynomial of its \
            %d-ball information (%d): p(%d) = %d"
           len u gr info info
           (Poly.eval spec.Registry.output_bound info)
     | None -> ()
   with Lph_util.Error.Error e ->
     addf add D.Cluster_radius D.Error "reduction failed on a probe graph: %s"
       (Format.asprintf "%a" Lph_util.Error.pp e));
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* codecs: length accounting vs materialised encodings, both modes *)

let analyze_codec (Registry.Codec_spec { c_name; codec; values }) =
  let diags, add = collector c_name in
  List.iteri
    (fun i v ->
      let packed = C.encode codec v and bits = C.encode_bits codec v in
      let plen = C.encoded_length codec v and blen = C.bits_length codec v in
      if String.length packed <> plen then
        addf add D.Cost_accounting D.Error
          "value #%d: encoded_length %d but the packed encoding is %d bytes" i plen
          (String.length packed);
      if String.length bits <> blen then
        addf add D.Cost_accounting D.Error
          "value #%d: bits_length %d but the bit-string encoding is %d characters" i blen
          (String.length bits);
      if blen <> 8 * plen then
        addf add D.Cost_accounting D.Error
          "value #%d: bits_length %d is not 8 * encoded_length (%d): the two wire modes \
           charge different costs"
          i blen plen;
      (try
         if C.decode codec packed <> v then
           addf add D.Cost_accounting D.Error "value #%d: packed round-trip changed the value" i;
         if C.decode_bits codec bits <> v then
           addf add D.Cost_accounting D.Error "value #%d: bit-string round-trip changed the value" i
       with Lph_util.Error.Error e ->
         addf add D.Cost_accounting D.Error "value #%d: round-trip decode failed: %s" i
           (Format.asprintf "%a" Lph_util.Error.pp e)))
    values;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* fault fixtures: the spec strings recorded campaigns replay through
   must parse under the typed grammar and survive a spec round-trip *)

let analyze_fault (fx : Registry.fault_fixture) =
  let diags, add = collector fx.Registry.fx_name in
  let lang_name =
    match fx.Registry.fx_lang with
    | Registry.Plan_spec -> "fault-plan"
    | Registry.Model_spec -> "fault-model"
  in
  (match fx.Registry.fx_lang with
  | Registry.Plan_spec -> (
      match Lph_faults.Fault_plan.parse fx.Registry.fx_spec with
      | plan -> (
          let spec' = Lph_faults.Fault_plan.to_spec plan in
          match Lph_faults.Fault_plan.parse spec' with
          | _ -> ()
          | exception Lph_util.Error.Error e ->
              addf add D.Fault_spec D.Error
                "plan spec %S round-trips to %S, which no longer parses: %s" fx.Registry.fx_spec
                spec'
                (Format.asprintf "%a" Lph_util.Error.pp e))
      | exception Lph_util.Error.Error e ->
          addf add D.Fault_spec D.Error "%s spec %S does not parse: %s" lang_name
            fx.Registry.fx_spec
            (Format.asprintf "%a" Lph_util.Error.pp e))
  | Registry.Model_spec -> (
      match Lph_faults.Fault_model.of_string fx.Registry.fx_spec with
      | model -> (
          let spec' = Lph_faults.Fault_model.to_string model in
          match Lph_faults.Fault_model.of_string spec' with
          | _ -> ()
          | exception Lph_util.Error.Error e ->
              addf add D.Fault_spec D.Error
                "model spec %S round-trips to %S, which no longer parses: %s"
                fx.Registry.fx_spec spec'
                (Format.asprintf "%a" Lph_util.Error.pp e))
      | exception Lph_util.Error.Error e ->
          addf add D.Fault_spec D.Error "%s spec %S does not parse: %s" lang_name
            fx.Registry.fx_spec
            (Format.asprintf "%a" Lph_util.Error.pp e)));
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* the certificate-budget optimiser rules (--optimize): minimal-budget
   search over each spec's probe families, replay validation of every
   lower-bound witness, and the reduction consistency cross-checks *)

let verify_proof add ~where (proof : Optimum.proof) =
  match proof with
  | Optimum.Core p ->
      if not (Optimum.core_subset p) then
        addf add D.Lower_bound_replay D.Error
          "%s: the UNSAT core names a literal outside the recorded assumptions" where
      else if not (Optimum.replay p) then
        addf add D.Lower_bound_replay D.Error
          "%s: the UNSAT core (budget %d, %d literal(s)) fails to replay in a fresh solver"
          where p.Optimum.p_budget
          (List.length p.Optimum.core)
  | Optimum.Refuted_by_game _ | Optimum.Floor -> ()

let verify_result add (r : Optimum.result) =
  let where = Printf.sprintf "%s/%d" r.Optimum.r_family r.Optimum.r_size in
  if not r.Optimum.r_engines_agree then
    addf add D.Lower_bound_replay D.Error
      "%s: the SAT and CEGAR engines disagree at the reported budget boundary" where;
  match r.Optimum.r_verdict with
  | Optimum.Optimum { bits; proof } ->
      verify_proof add ~where proof;
      (match r.Optimum.r_declared with
      | Some declared when declared > bits && declared >= 2 * bits ->
          addf add D.Budget_slack D.Warning
            "%s: declared budget %d is at least twice the searched optimum %d%s" where declared
            bits
            (match Optimum.proof_size proof with
            | Some n -> Printf.sprintf " (lower bound certified by a %d-literal UNSAT core)" n
            | None -> "")
      | Some _ | None -> ())
  | Optimum.Rejected { proof; _ } -> verify_proof add ~where proof
  | Optimum.Unsupported _ -> ()

let analyze_arbiter_optimum (spec : Registry.arbiter_spec) =
  let diags, add = collector spec.Registry.a_name in
  let results =
    List.concat_map
      (fun (fname, sizes) ->
        match Optimum.family fname with
        | None ->
            addf add D.Reduction_consistency D.Error
              "optimiser probe names unknown graph family %S" fname;
            []
        | Some family ->
            List.map
              (fun size ->
                Optimum.search ~name:spec.Registry.a_name ~arbiter:spec.Registry.arbiter
                  ~universes:spec.Registry.universes ~family ~size ())
              (Optimum.family_sizes ~default:sizes))
      spec.Registry.opt_probes
  in
  List.iter (verify_result add) results;
  (results, List.rev !diags)

let analyze_cert_reduction (red : Cert_reduction.t) =
  let diags, add = collector red.Cert_reduction.cr_name in
  let checks = Cert_reduction.check red in
  List.iter
    (fun (ck : Cert_reduction.check) ->
      if not ck.Cert_reduction.ck_consistent then
        addf add D.Reduction_consistency D.Error "instance %s: %s"
          ck.Cert_reduction.ck_instance ck.Cert_reduction.ck_detail)
    checks;
  (checks, List.rev !diags)

let analyze_stored (r : Optimum.result) =
  let diags, add = collector r.Optimum.r_spec in
  verify_result add r;
  List.rev !diags

(* ------------------------------------------------------------------ *)

let run ?(optimize = false) (registry : Registry.t) =
  let base_diagnostics =
    List.concat_map analyze_arbiter registry.Registry.arbiters
    @ List.concat_map analyze_formula registry.Registry.formulas
    @ List.concat_map analyze_reduction registry.Registry.reductions
    @ List.concat_map analyze_codec registry.Registry.codecs
    @ List.concat_map analyze_fault registry.Registry.faults
  in
  let optima, reduction_checks, opt_diagnostics =
    if not optimize then ([], [], [])
    else begin
      let searched = List.map analyze_arbiter_optimum registry.Registry.arbiters in
      let checked = List.map analyze_cert_reduction registry.Registry.cert_reductions in
      let stored_diags = List.concat_map analyze_stored registry.Registry.opt_stored in
      ( List.concat_map fst searched @ registry.Registry.opt_stored,
        List.concat_map fst checked,
        List.concat_map snd searched @ List.concat_map snd checked @ stored_diags )
    end
  in
  {
    arbiters = List.length registry.Registry.arbiters;
    formulas = List.length registry.Registry.formulas;
    reductions = List.length registry.Registry.reductions;
    codecs = List.length registry.Registry.codecs;
    faults = List.length registry.Registry.faults;
    diagnostics = base_diagnostics @ opt_diagnostics;
    optima;
    reduction_checks;
  }

let errors r = List.filter D.is_error r.diagnostics
let warnings r = List.filter (fun (d : D.t) -> d.D.severity = D.Warning) r.diagnostics
let has_errors r = errors r <> []

let json_of_int_opt = function Some n -> Json.Int n | None -> Json.Null

let optimum_to_json (r : Optimum.result) =
  Json.Obj
    [
      ("spec", Json.String r.Optimum.r_spec);
      ("family", Json.String r.Optimum.r_family);
      ("size", Json.Int r.Optimum.r_size);
      ("verdict", Json.String (Optimum.verdict_string r.Optimum.r_verdict));
      ("bits", json_of_int_opt (Optimum.verdict_bits r.Optimum.r_verdict));
      ("declared", json_of_int_opt r.Optimum.r_declared);
      ( "proof_size",
        json_of_int_opt
          (match r.Optimum.r_verdict with
          | Optimum.Optimum { proof; _ } | Optimum.Rejected { proof; _ } ->
              Optimum.proof_size proof
          | Optimum.Unsupported _ -> None) );
      ("engines_agree", Json.Bool r.Optimum.r_engines_agree);
      ("probes", Json.Int r.Optimum.r_probes);
      ("search_ms", Json.Int (int_of_float (Float.round r.Optimum.r_search_ms)));
    ]

let check_to_json (ck : Cert_reduction.check) =
  Json.Obj
    [
      ("reduction", Json.String ck.Cert_reduction.ck_reduction);
      ("instance", Json.String ck.Cert_reduction.ck_instance);
      ("source_bits", json_of_int_opt ck.Cert_reduction.ck_source_bits);
      ("target_bits", json_of_int_opt ck.Cert_reduction.ck_target_bits);
      ("transferred", json_of_int_opt ck.Cert_reduction.ck_transferred);
      ("consistent", Json.Bool ck.Cert_reduction.ck_consistent);
      ("detail", Json.String ck.Cert_reduction.ck_detail);
    ]

let report_to_json r =
  Json.Obj
    [
      ("schema", Json.String "lph-lint-2");
      ( "specs",
        Json.Obj
          [
            ("arbiters", Json.Int r.arbiters);
            ("formulas", Json.Int r.formulas);
            ("reductions", Json.Int r.reductions);
            ("codecs", Json.Int r.codecs);
            ("faults", Json.Int r.faults);
          ] );
      ("errors", Json.Int (List.length (errors r)));
      ("warnings", Json.Int (List.length (warnings r)));
      ("diagnostics", Json.List (List.map D.to_json r.diagnostics));
      ("optima", Json.List (List.map optimum_to_json r.optima));
      ("reduction_checks", Json.List (List.map check_to_json r.reduction_checks));
    ]

let pp_report fmt r =
  List.iter (fun d -> Format.fprintf fmt "%a@." D.pp d) r.diagnostics;
  List.iter
    (fun (o : Optimum.result) ->
      Format.fprintf fmt "optimum %s on %s/%d: %s%s%s@." o.Optimum.r_spec o.Optimum.r_family
        o.Optimum.r_size
        (Optimum.verdict_string o.Optimum.r_verdict)
        (match Optimum.verdict_bits o.Optimum.r_verdict with
        | Some b -> Printf.sprintf " at %d bit(s)" b
        | None -> "")
        (match o.Optimum.r_declared with
        | Some d -> Printf.sprintf " (declared %d)" d
        | None -> ""))
    r.optima;
  Format.fprintf fmt "%d spec(s) analysed (%d arbiters, %d formulas, %d reductions, %d \
                      codecs, %d fault fixtures): %d error(s), %d warning(s)@."
    (r.arbiters + r.formulas + r.reductions + r.codecs + r.faults)
    r.arbiters r.formulas r.reductions r.codecs r.faults
    (List.length (errors r))
    (List.length (warnings r));
  if r.optima <> [] || r.reduction_checks <> [] then
    Format.fprintf fmt "certificate-budget optimiser: %d search(es), %d reduction check(s)@."
      (List.length r.optima)
      (List.length r.reduction_checks)
