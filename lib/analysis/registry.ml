module G = Lph_graph.Labeled_graph
module Gen = Lph_graph.Generators
module B = Lph_util.Bitstring
module Poly = Lph_util.Poly
module C = Lph_util.Codec
module LA = Lph_machine.Local_algo
module Machines = Lph_machine.Machines
module Arbiter = Lph_hierarchy.Arbiter
module Candidates = Lph_hierarchy.Candidates
module GF = Lph_logic.Graph_formulas
module Syntax = Lph_logic.Syntax
module Compile = Lph_fagin.Compile
module Cluster = Lph_reductions.Cluster
module BG = Lph_boolean.Boolean_graph
module BF = Lph_boolean.Bool_formula

type radius_expectation = Probed | Static of int

type arbiter_spec = {
  a_name : string;
  arbiter : Arbiter.t;
  algo : LA.packed option;
  probes : G.t list;
  universes : (G.t -> Lph_graph.Identifiers.t -> Lph_hierarchy.Game.universe list) option;
  extra_samples : Probe.sample list;
  expectation : radius_expectation;
  msg_bound : Poly.t option;
  max_radius : int;
  opt_probes : (string * int list) list;
}

(* The gather layer re-broadcasts its whole table every round, and the
   table's entries are labels + identifiers + certificates of the
   ball — so per-round cost is at worst quadratic in the ball
   information content, with a constant absorbing the codec framing
   and the bits-per-byte factor. *)
let default_msg_bound = Poly.monomial ~coeff:64 ~degree:2

let arbiter_spec ?algo ?universes ?(extra_samples = []) ?(expectation = Probed) ?msg_bound
    ?(max_radius = 3) ?(opt_probes = []) ~name ~probes arbiter =
  let msg_bound =
    match (msg_bound, algo) with
    | (Some _ as b), _ -> b
    | None, Some _ -> Some default_msg_bound
    | None, None -> None
  in
  {
    a_name = name;
    arbiter;
    algo;
    probes;
    universes;
    extra_samples;
    expectation;
    msg_bound;
    max_radius;
    opt_probes;
  }

let of_algo ?universes ?extra_samples ?expectation ?msg_bound ?max_radius ?opt_probes
    ?(id_radius = 2) ~probes packed =
  arbiter_spec ~algo:packed ?universes ?extra_samples ?expectation ?msg_bound ?max_radius
    ?opt_probes ~name:(LA.name packed) ~probes
    (Arbiter.of_local_algo ~id_radius packed)

type polarity = Sigma | Pi

type formula_spec = {
  f_name : string;
  formula : Lph_logic.Formula.t;
  claimed_level : int;
  claimed_polarity : polarity;
  budget_probes : G.t list;
}

type reduction_spec = {
  r_name : string;
  reduction : Cluster.reduction;
  r_probes : G.t list;
  output_bound : Poly.t;
}

type codec_spec =
  | Codec_spec : { c_name : string; codec : 'a C.t; values : 'a list } -> codec_spec

type fault_lang = Plan_spec | Model_spec

type fault_fixture = { fx_name : string; fx_lang : fault_lang; fx_spec : string }

type t = {
  arbiters : arbiter_spec list;
  formulas : formula_spec list;
  reductions : reduction_spec list;
  codecs : codec_spec list;
  faults : fault_fixture list;
  cert_reductions : Cert_reduction.t list;
  opt_stored : Optimum.result list;
}

(* ------------------------------------------------------------------ *)
(* probe graphs: small but chosen to separate candidate radii — mixed
   labels (label-reading arbiters), odd cycles and boundary triangles
   (structure-reading ones), honest certificate assignments (so
   outside perturbations have accepting verdicts to flip) *)

let path_mixed () = Gen.path ~labels:[| "1"; "0"; "1" |] 3
let nearly_ones () = Gen.path ~labels:[| "1"; "1"; "0" |] 3

let compiled_spec ~name ~probes ?(tuple_cap = 4) formula =
  let c = Compile.compile formula in
  (* derived independently of [Compile]'s own bookkeeping: the matrix's
     visibility radius (unbounded quantifiers contribute nothing) plus
     one gathering step for the boundary neighbourhoods its deepest
     bounded quantifier ranges over *)
  let expected = Syntax.visibility_radius formula + 1 in
  let universes g ids =
    Compile.fragment_universes
      ~tuple_filter:(fun tup -> List.for_all (fun i -> i < tuple_cap) tup)
      c g ~ids
  in
  arbiter_spec ~name ~probes ~universes ~expectation:(Static expected) c.Compile.arbiter

let turing_spec ~verify_radius ~probes m =
  let arbiter = Arbiter.of_turing ~levels:0 ~id_radius:1 ~verify_radius m in
  arbiter_spec ~name:arbiter.Arbiter.name ~probes arbiter

let sat_probe () =
  BG.make (Gen.path 2) [| BF.Var "x"; BF.disj [ BF.Var "x"; BF.Var "y" ] |]

let sat_probe_mixed () =
  BG.make (Gen.path 3) [| BF.Var "x"; BF.Not (BF.Var "x"); BF.Var "y" |]

let builtin_arbiters () =
  [
    (* hand-written machines: full probe-based radius inference *)
    of_algo Candidates.all_selected_decider ~probes:[ path_mixed (); Gen.cycle 4 ];
    of_algo Candidates.eulerian_decider
      ~probes:[ Gen.cycle 4; Gen.star 4; Gen.path 3 ]
      ~opt_probes:[ ("cycle", [ 4; 8 ]) ];
    of_algo Candidates.constant_label_decider ~probes:[ Gen.cycle 4; nearly_ones () ];
    of_algo
      (Candidates.local_two_col_decider ~radius:1)
      ~probes:[ Gen.path 4; Gen.complete 3; Gen.cycle 5 ]
      ~opt_probes:[ ("even-cycle", [ 6 ]) ];
    of_algo
      (Candidates.local_two_col_decider ~radius:2)
      ~probes:[ Gen.path 4; Gen.complete 3; Gen.cycle 5 ];
    of_algo (Candidates.color_verifier 2)
      ~universes:(fun _g _ids -> [ Candidates.color_universe 2 ])
      ~extra_samples:
        [ { Probe.graph = Gen.cycle 4; certs = [ [| "0"; "1"; "0"; "1" |] ] } ]
      ~probes:[ Gen.cycle 4; Gen.path 3 ]
      ~opt_probes:[ ("even-cycle", [ 4; 6 ]); ("odd-cycle", [ 5; 7 ]) ];
    (* the CEGAR engine's scaling probe: two alternation levels, so the
       honest sample carries one certificate array per level *)
    of_algo Candidates.robust_two_col_verifier
      ~universes:(fun _g _ids ->
        [ Candidates.color_universe 2; Candidates.color_universe 2 ])
      ~extra_samples:
        [
          {
            Probe.graph = Gen.cycle 4;
            certs = [ [| "0"; "1"; "0"; "1" |]; [| "1"; "0"; "1"; "0" |] ];
          };
        ]
      ~probes:[ Gen.cycle 4; Gen.path 3 ]
      ~opt_probes:[ ("even-cycle", [ 4 ]) ];
    of_algo (Candidates.color_verifier 3)
      ~universes:(fun _g _ids -> [ Candidates.color_universe 3 ])
      ~extra_samples:
        [ { Probe.graph = Gen.cycle 4; certs = [ [| "0"; "1"; "10"; "1" |] ] } ]
      ~probes:[ Gen.cycle 4; Gen.path 3 ]
      (* the shipped slack example: 3-COL's natural universe pays two
         bits per node but even cycles are 2-colourable, so one bit is
         enough — declared 2 >= 2 * optimum 1 *)
      ~opt_probes:[ ("even-cycle", [ 4; 6 ]) ];
    of_algo
      (Candidates.exact_counter_verifier ~cap:4)
      ~universes:(fun _g _ids -> [ Candidates.counter_universe ~bound:5 ])
      ~extra_samples:
        [
          {
            Probe.graph = Gen.cycle ~labels:[| "0"; "1"; "1"; "1" |] 4;
            certs = [ [| B.of_int 0; B.of_int 1; B.of_int 2; B.of_int 1 |] ];
          };
        ]
      ~probes:[ Gen.cycle ~labels:[| "0"; "1"; "1"; "1" |] 4; Gen.cycle 4 ]
      ~opt_probes:[ ("marked-cycle", [ 6 ]) ];
    of_algo
      (Candidates.mod_counter_verifier ~period:3)
      ~universes:(fun _g _ids -> [ Candidates.counter_universe ~bound:3 ])
      ~extra_samples:
        [
          {
            Probe.graph = Gen.cycle ~labels:[| "0"; "1"; "1"; "1"; "1"; "1" |] 6;
            certs = [ Candidates.honest_mod_certs ~period:3 ~n:6 ];
          };
        ]
      ~probes:[ Gen.cycle ~labels:[| "0"; "1"; "1"; "1"; "1"; "1" |] 6 ]
      ~opt_probes:[ ("marked-cycle", [ 6 ]) ];
    of_algo Candidates.sat_graph_verifier
      ~universes:(fun g _ids -> [ Candidates.sat_graph_universe g ])
      ~extra_samples:[ { Probe.graph = sat_probe (); certs = [ [| "1"; "10" |] ] } ]
      ~probes:[ sat_probe (); sat_probe_mixed () ];
    (* raw Turing tables: verify_radius is a claim of ours, probed like
       any other declaration *)
    turing_spec Machines.all_selected ~verify_radius:0 ~probes:[ path_mixed (); Gen.cycle 4 ];
    turing_spec Machines.eulerian ~verify_radius:0 ~probes:[ Gen.cycle 4; Gen.star 4 ];
    turing_spec Machines.even_label_ones ~verify_radius:0
      ~probes:[ Gen.path ~labels:[| "11"; "1"; "101" |] 3 ];
    turing_spec Machines.constant_labelling ~verify_radius:1
      ~probes:[ Gen.cycle 4; nearly_ones () ];
    (* Fagin-compiled arbiters: the radius comes from quantifier
       bounds (Theorem 12), so the declaration is checked against the
       static derivation and probed for soundness only *)
    compiled_spec ~name:"compiled:all-selected" GF.all_selected
      ~probes:[ path_mixed (); Gen.cycle 4 ];
    compiled_spec ~name:"compiled:2-colorable" GF.two_colorable
      ~probes:[ Gen.path 5; Gen.cycle 4 ];
    compiled_spec ~name:"compiled:3-colorable" GF.three_colorable
      ~probes:[ Gen.cycle 4; Gen.path 4 ];
    compiled_spec ~name:"compiled:not-all-selected" GF.not_all_selected
      ~probes:[ Gen.path ~labels:[| "1"; "1"; "0"; "1" |] 4 ];
  ]

let builtin_formulas () =
  let tiny = [ Gen.path ~labels:[| ""; "" |] 2; Gen.cycle ~labels:[| ""; ""; "" |] 3 ] in
  let spec ?(probes = tiny) name formula claimed_level claimed_polarity =
    { f_name = name; formula; claimed_level; claimed_polarity; budget_probes = probes }
  in
  [
    spec "all-selected" GF.all_selected 0 Sigma;
    spec "2-colorable" GF.two_colorable 1 Sigma;
    spec "3-colorable" GF.three_colorable 1 Sigma;
    spec "not-all-selected" GF.not_all_selected 3 Sigma;
    spec "non-3-colorable" GF.non_3_colorable 4 Pi;
    spec "hamiltonian" GF.hamiltonian 5 Sigma;
    spec "non-hamiltonian" GF.non_hamiltonian 4 Pi;
  ]

(* Encoded clusters carry the node's whole gathered ball re-expressed
   as gadget nodes and ports, so their size is at worst quadratic in
   the ball information; the constant absorbs gadget fan-out (the
   Hamiltonian gadgets triple each node) and codec framing. *)
let default_output_bound = Poly.monomial ~coeff:2048 ~degree:2

let builtin_reductions () =
  let spec ?(output_bound = default_output_bound) name reduction probes =
    { r_name = name; reduction; r_probes = probes; output_bound }
  in
  [
    spec "eulerian-red" Lph_reductions.Eulerian_red.reduction
      [ Gen.cycle 4; nearly_ones () ];
    spec "hamiltonian-red" Lph_reductions.Hamiltonian_red.reduction
      [ Gen.cycle 4; path_mixed () ];
    spec "co-hamiltonian-red" Lph_reductions.Hamiltonian_red.co_reduction
      [ Gen.cycle 4; path_mixed () ];
    spec "cook-levin:2-colorable"
      (Lph_reductions.Cook_levin.reduction GF.two_colorable)
      [ Gen.cycle 4; Gen.path 3 ];
    spec "3sat-red" Lph_reductions.Three_col_red.to_3sat [ sat_probe (); sat_probe_mixed () ];
    spec "to-all-selected:eulerian"
      (Lph_reductions.To_all_selected.reduction ~name:"eulerian-to-all-selected" ~radius:0
         ~decide:(fun ctx _ball -> ctx.LA.degree mod 2 = 0))
      [ Gen.cycle 4; Gen.star 4 ];
  ]

let builtin_codecs () =
  [
    Codec_spec { c_name = "int"; codec = C.int; values = [ 0; 1; 7; 127; 128; 65536 ] };
    Codec_spec { c_name = "string"; codec = C.string; values = [ ""; "1"; "#"; String.make 40 'x' ] };
    Codec_spec { c_name = "bool"; codec = C.bool; values = [ true; false ] };
    Codec_spec
      { c_name = "pair-int-string"; codec = C.pair C.int C.string; values = [ (0, ""); (300, "ab") ] };
    Codec_spec
      {
        c_name = "triple";
        codec = C.triple C.string C.int C.bool;
        values = [ ("", 0, false); ("node", 12, true) ];
      };
    Codec_spec
      { c_name = "list-int"; codec = C.list C.int; values = [ []; [ 1 ]; [ 1; 2; 3; 400 ] ] };
    Codec_spec
      { c_name = "option-string"; codec = C.option C.string; values = [ None; Some ""; Some "x" ] };
    Codec_spec
      {
        c_name = "cluster";
        codec = Cluster.codec;
        values =
          (* real cluster values, as produced by a shipped reduction *)
          (let g = Gen.cycle 4 in
           let ids = Lph_graph.Identifiers.make_global g in
           let result =
             Lph_machine.Runner.run
               (Cluster.algo_of Lph_reductions.Eulerian_red.reduction)
               g ~ids ()
           in
           List.map
             (fun u -> Cluster.decode_label (G.label result.Lph_machine.Runner.output u))
             [ 0; 1 ]);
      };
  ]

(* The fault spec strings the project depends on staying parseable:
   the CI fuzz matrix cells, the documented grammar examples, the
   replay-line shapes faultlab prints, and one model spec per named
   fault model. A grammar change that silently invalidates any of
   these breaks replayability of recorded campaigns. *)
let builtin_faults () =
  let plan name spec = { fx_name = name; fx_lang = Plan_spec; fx_spec = spec } in
  let model name spec = { fx_name = name; fx_lang = Model_spec; fx_spec = spec } in
  [
    plan "ci:fuzz-all-0.3" "all@0.3:1";
    plan "ci:fuzz-all-0.5" "all@0.5:77";
    plan "ci:fuzz-cert-attacks" "cert-flip,cert-forge@0.9:13";
    plan "doc:targets-budget" "corrupt,drop@0.5!0,3^2:9";
    plan "replay:crash-event" "crash=crash/2/0:7";
    plan "replay:pre-round-cert" "cert-flip=cert-flip/-1/0:1";
    plan "replay:multi-event" "corrupt,drop=corrupt/1/0+drop/3/1:42";
    model "model:crash-stop" "crash-stop/f1";
    model "model:omission" "omission/f2@0.25";
    model "model:byzantine-corrupt" "byzantine-corrupt/f1@0.9^2";
    model "model:byzantine-forge" "byzantine-forge/f3";
  ]

let builtin () =
  {
    arbiters = builtin_arbiters ();
    formulas = builtin_formulas ();
    reductions = builtin_reductions ();
    codecs = builtin_codecs ();
    faults = builtin_faults ();
    cert_reductions = Cert_reduction.builtin ();
    opt_stored = [];
  }
