module G = Lph_graph.Labeled_graph
module Gen = Lph_graph.Generators
module Ids = Lph_graph.Identifiers
module Arbiter = Lph_hierarchy.Arbiter
module Candidates = Lph_hierarchy.Candidates
module Cluster = Lph_reductions.Cluster
module LA = Lph_machine.Local_algo
module BG = Lph_boolean.Boolean_graph
module BF = Lph_boolean.Bool_formula

type spec = {
  cs_name : string;
  cs_arbiter : Arbiter.t;
  cs_universes : (G.t -> Ids.t -> Lph_hierarchy.Game.universe list) option;
}

type t = {
  cr_name : string;
  cr_source : spec;
  cr_target : spec;
  cr_via : Cluster.reduction;
  cr_transfer : int -> int;
  cr_transfer_doc : string;
  cr_instances : (string * G.t) list;
}

type check = {
  ck_reduction : string;
  ck_instance : string;
  ck_source_bits : int option;
  ck_target_bits : int option;
  ck_transferred : int option;
  ck_consistent : bool;
  ck_detail : string;
}

(* ---- cross-checking ------------------------------------------------ *)

let check_instance ?engine red (iname, g) =
  let side spec label g =
    Optimum.search_graph ?engine ~name:spec.cs_name ~arbiter:spec.cs_arbiter
      ~universes:spec.cs_universes ~label g
  in
  let src = side red.cr_source (red.cr_name ^ ":" ^ iname) g in
  let image =
    try Ok (Cluster.apply red.cr_via g ~ids:(Ids.make_global g))
    with Lph_util.Error.Error e -> Error (Lph_util.Error.to_string e)
  in
  let finish ?source ?target ?transferred consistent detail =
    {
      ck_reduction = red.cr_name;
      ck_instance = iname;
      ck_source_bits = source;
      ck_target_bits = target;
      ck_transferred = transferred;
      ck_consistent = consistent;
      ck_detail = detail;
    }
  in
  match image with
  | Error why -> finish false ("reduction failed to apply: " ^ why)
  | Ok img -> (
      let tgt = side red.cr_target (red.cr_name ^ ":img:" ^ iname) img in
      match (src.Optimum.r_verdict, tgt.Optimum.r_verdict) with
      | Optimum.Unsupported why, _ ->
          finish true ("skipped: source search unsupported (" ^ why ^ ")")
      | _, Optimum.Unsupported why ->
          finish true ("skipped: image search unsupported (" ^ why ^ ")")
      | Optimum.Optimum { bits = s; _ }, Optimum.Optimum { bits = t; _ } ->
          let tr = red.cr_transfer t in
          finish ~source:s ~target:t ~transferred:tr (s <= tr)
            (Printf.sprintf "source optimum %d %s transfer(image optimum %d) = %d" s
               (if s <= tr then "<=" else ">")
               t tr)
      | Optimum.Optimum { bits = s; _ }, Optimum.Rejected _ ->
          finish ~source:s false "source is certifiable but the image is rejected at every budget"
      | Optimum.Rejected _, Optimum.Optimum { bits = t; _ } ->
          finish ~target:t false "source is rejected at every budget but the image is certifiable"
      | Optimum.Rejected _, Optimum.Rejected _ ->
          finish true "both sides rejected: the reduction preserves the NO answer")

let check ?engine red = List.map (check_instance ?engine red) red.cr_instances

(* ---- the shipped reductions ---------------------------------------- *)

let arb packed = Arbiter.of_local_algo ~id_radius:2 packed

let all_selected_spec =
  lazy
    {
      cs_name = "all-selected-decider";
      cs_arbiter = arb Candidates.all_selected_decider;
      cs_universes = None;
    }

let eulerian_spec =
  lazy
    {
      cs_name = "eulerian-decider";
      cs_arbiter = arb Candidates.eulerian_decider;
      cs_universes = None;
    }

let sat_graph_spec =
  lazy
    {
      cs_name = "sat-graph-verifier";
      cs_arbiter = arb Candidates.sat_graph_verifier;
      cs_universes = Some (fun g _ids -> [ Candidates.sat_graph_universe g ]);
    }

let three_col_spec =
  lazy
    {
      cs_name = "3-color-verifier";
      cs_arbiter = arb (Candidates.color_verifier 3);
      cs_universes = Some (fun _g _ids -> [ Candidates.color_universe 3 ]);
    }

let two_factor_spec =
  lazy
    {
      cs_name = "2-factor-verifier";
      cs_arbiter = arb Candidates.two_factor_verifier;
      cs_universes = Some (fun g ids -> [ Candidates.two_factor_universe g ids ]);
    }

let cycle_one_unselected n =
  G.with_labels (Gen.cycle n) (Array.init n (fun i -> if i = 0 then "0" else "1"))

(* SAT-GRAPH probe instances: a satisfiable pair and a pair forced into
   contradiction through the shared variable *)
let sat_path () = BG.make (Gen.path 2) [| BF.Var "x"; BF.disj [ BF.Var "x"; BF.Var "y" ] |]
let unsat_path () = BG.make (Gen.path 2) [| BF.Var "x"; BF.Not (BF.Var "x") |]

(* the 3SAT-GRAPH probe is itself a reduction image: Tseytin of a
   one-node SAT-GRAPH (kept single-node so the colouring gadget's ball
   tables stay inside LPH_SAT_BUDGET) *)
let three_sat_single () =
  let g = BG.make (Gen.path 1) [| BF.Var "x" |] in
  Cluster.apply Lph_reductions.Three_col_red.to_3sat g ~ids:(Ids.make_global g)

let builtin_reductions =
  lazy
    [
      {
        cr_name = "all-selected<=eulerian";
        cr_source = Lazy.force all_selected_spec;
        cr_target = Lazy.force eulerian_spec;
        cr_via = Lph_reductions.Eulerian_red.reduction;
        cr_transfer = Fun.id;
        cr_transfer_doc =
          "both sides are level-0 deciders: no certificates on either side, budgets transfer \
           unchanged";
        cr_instances =
          [ ("C4-selected", Gen.cycle 4); ("C4-unselected", cycle_one_unselected 4) ];
      };
      {
        cr_name = "eulerian<=all-selected";
        cr_source = Lazy.force eulerian_spec;
        cr_target = Lazy.force all_selected_spec;
        cr_via =
          Lph_reductions.To_all_selected.reduction ~name:"eulerian-to-all-selected" ~radius:1
            ~decide:(fun ctx _ball -> ctx.LA.degree mod 2 = 0);
        cr_transfer = Fun.id;
        cr_transfer_doc =
          "Remark 14 relabelling: the image carries the verdict in its labels, certificates stay \
           empty on both sides";
        cr_instances = [ ("C4", Gen.cycle 4); ("S4", Gen.star 4) ];
      };
      {
        cr_name = "sat-graph<=3sat-graph";
        cr_source = Lazy.force sat_graph_spec;
        cr_target = Lazy.force sat_graph_spec;
        cr_via = Lph_reductions.Three_col_red.to_3sat;
        cr_transfer = Fun.id;
        cr_transfer_doc =
          "per-node Tseytin keeps every source variable in the same node's clause set, so the \
           image's per-node valuation width dominates the source's";
        cr_instances = [ ("P2-sat", sat_path ()); ("P2-unsat", unsat_path ()) ];
      };
      {
        cr_name = "3sat-graph<=3-colorable";
        cr_source = Lazy.force sat_graph_spec;
        cr_target = Lazy.force three_col_spec;
        cr_via = Lph_reductions.Three_col_red.to_three_col;
        cr_transfer = (fun b -> 16 * (b + 1));
        cr_transfer_doc =
          "a node's valuation is read off the colours of its literal triangles: at most 16 \
           palette-relative colour certificates of at most b+1 bits each reconstruct one node's \
           assignment";
        cr_instances = [ ("3sat(x)", three_sat_single ()) ];
      };
      {
        cr_name = "all-selected<=hamiltonian";
        cr_source = Lazy.force all_selected_spec;
        cr_target = Lazy.force two_factor_spec;
        cr_via = Lph_reductions.Hamiltonian_red.reduction;
        cr_transfer = (fun b -> 8 * (b + 1));
        cr_transfer_doc =
          "a 2-factor certificate names two neighbour identifiers per image node; the source is a \
           level-0 decider, so any non-negative transfer is an upper bound — 8(b+1) also covers \
           re-certifying the source's selection bit from the port gadget's cycle structure";
        cr_instances =
          [ ("C3-selected", Gen.cycle 3); ("C3-unselected", cycle_one_unselected 3) ];
      };
    ]

let builtin () = Lazy.force builtin_reductions
