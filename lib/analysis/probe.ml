module G = Lph_graph.Labeled_graph
module N = Lph_graph.Neighborhood
module Ids = Lph_graph.Identifiers
module Certs = Lph_graph.Certificates
module Arbiter = Lph_hierarchy.Arbiter

type sample = { graph : G.t; certs : Certs.t list }

let has_verdicts (a : Arbiter.t) = a.Arbiter.verdicts <> None

let verdicts_of (a : Arbiter.t) =
  match a.Arbiter.verdicts with
  | Some f -> f
  | None -> invalid_arg "Probe: arbiter exposes no per-node verdict function"

(* ------------------------------------------------------------------ *)
(* sample construction *)

let longest choices =
  List.fold_left (fun acc c -> if String.length c > String.length acc then c else acc) "" choices

let random_choice rng choices =
  match choices with
  | [] -> ""
  | _ -> List.nth choices (Random.State.int rng (List.length choices))

let samples_for ?(seed = 0x5eed) ?(random_per_probe = 2) (a : Arbiter.t) ~universes probes =
  let levels = a.Arbiter.levels in
  List.concat_map
    (fun g ->
      if levels = 0 then [ { graph = g; certs = [] } ]
      else begin
        let n = G.card g in
        let ids = Ids.make_global g in
        let unis =
          match universes with
          | Some f -> f g ids
          | None ->
              List.init levels (fun _ _u ->
                  List.concat_map Lph_util.Bitstring.all_of_length [ 0; 1; 2; 3 ])
        in
        let unis = if List.length unis = levels then unis else List.init levels (fun _ _ -> [ "" ]) in
        let empty = { graph = g; certs = List.map (fun _ -> Array.make n "") unis } in
        let rich =
          { graph = g; certs = List.map (fun u -> Array.init n (fun v -> longest (u v))) unis }
        in
        let rng = Random.State.make [| seed; G.uid g |] in
        let randoms =
          List.init random_per_probe (fun _ ->
              {
                graph = g;
                certs = List.map (fun u -> Array.init n (fun v -> random_choice rng (u v))) unis;
              })
        in
        (empty :: rich :: randoms)
      end)
    probes

(* ------------------------------------------------------------------ *)
(* consistency checks *)

type violation = { node : int; graph_index : int; detail : string }

type outcome = {
  declared : int option;
  tested_max : int;
  results : (int * violation option) list;
  inferred : int option;
}

let flip_label l = if l = "1" then "0" else "1"

(* Rewriting a certificate to a fixed non-empty bit string is the
   perturbation most likely to be noticed: it is malformed for
   structured certificate formats and a different value for numeric
   ones. *)
let forged_cert = "101"

(* Cap on structure perturbations per node: each one re-runs the
   arbiter on a fresh graph, and distance-2 pairs grow quadratically
   on dense probes. *)
let max_extra_edges = 6

let check_sample ~radius (a : Arbiter.t) ~graph_index { graph = g; certs } =
  let f = verdicts_of a in
  let n = G.card g in
  let ids = Ids.make_global g in
  let whole = f g ~ids ~certs in
  let violation = ref None in
  let record node detail = if !violation = None then violation := Some { node; graph_index; detail } in
  let eval_radius = max radius 1 in
  let u = ref 0 in
  while !violation = None && !u < n do
    let node = !u in
    let drow = N.distances g node in
    (* ball restriction: the verdict recomputed on the induced
       neighbourhood, outside-ball certificates canonicalised — the
       equation Arbiter.ball_checker (and hence pruned search) uses *)
    let ind = N.r_neighbourhood g ~radius:eval_radius node in
    let m = G.card ind.N.subgraph in
    let sub_ids = Array.init m (fun i -> ids.(ind.N.of_sub i)) in
    let sub_certs =
      List.map
        (fun (c : Certs.t) ->
          Array.init m (fun i ->
              let orig = ind.N.of_sub i in
              if drow.(orig) <= radius then c.(orig) else ""))
        certs
    in
    let centre = match ind.N.to_sub node with Some c -> c | None -> assert false in
    let ball_verdict = (f ind.N.subgraph ~ids:sub_ids ~certs:sub_certs).(centre) in
    if ball_verdict <> whole.(node) then
      record node
        (Printf.sprintf
           "verdict on the induced %d-ball (%b) differs from the whole-graph verdict (%b)"
           radius ball_verdict whole.(node));
    (* outside perturbations: labels and certificates beyond N_radius *)
    let outside = List.filter (fun v -> drow.(v) > radius) (G.nodes g) in
    if !violation = None && outside <> [] then begin
      let outside_set = Array.make n false in
      List.iter (fun v -> outside_set.(v) <- true) outside;
      let flipped =
        G.with_labels g (Array.init n (fun v -> if outside_set.(v) then flip_label (G.label g v) else G.label g v))
      in
      if (f flipped ~ids ~certs).(node) <> whole.(node) then
        record node
          (Printf.sprintf "flipping labels outside the %d-ball changed the verdict" radius);
      if !violation = None && certs <> [] then
        List.iter
          (fun replacement ->
            if !violation = None then begin
              let certs' =
                List.map
                  (fun (c : Certs.t) ->
                    Array.init n (fun v -> if outside_set.(v) then replacement else c.(v)))
                  certs
              in
              if (f g ~ids ~certs:certs').(node) <> whole.(node) then
                record node
                  (Printf.sprintf
                     "rewriting certificates outside the %d-ball to %S changed the verdict"
                     radius replacement)
            end)
          [ ""; forged_cert ];
      (* structure perturbation: a new edge between two outside nodes
         leaves N_radius(u) untouched (every path through it reaches u
         in > radius hops) but extends the induced subgraphs of larger
         balls — the only probe that catches arbiters reading
         structure, not labels, beyond the candidate radius. Pairs at
         mutual distance 2 are the sharpest instances (they close
         triangles through the ball boundary). *)
      if !violation = None then begin
        let pairs = ref [] and budget = ref max_extra_edges in
        List.iter
          (fun v ->
            let dv = N.distances g v in
            List.iter
              (fun w ->
                if w > v && dv.(w) = 2 && !budget > 0 then begin
                  pairs := (v, w) :: !pairs;
                  decr budget
                end)
              outside)
          outside;
        List.iter
          (fun (v, w) ->
            if !violation = None then begin
              let extended =
                let m = G.num_edges g in
                let packed = Array.make (m + 1) (v, w) in
                let k = ref 0 in
                G.iter_edges g (fun a b ->
                    packed.(!k) <- (a, b);
                    incr k);
                G.of_edge_array ~labels:(Array.init n (G.label g)) ~edges:packed
              in
              if (f extended ~ids ~certs).(node) <> whole.(node) then
                record node
                  (Printf.sprintf
                     "adding an edge between nodes %d and %d outside the %d-ball changed the \
                      verdict"
                     v w radius)
            end)
          !pairs
      end
    end;
    incr u
  done;
  !violation

let consistent_at ~radius a samples =
  let rec go i = function
    | [] -> None
    | s :: rest -> begin
        match check_sample ~radius a ~graph_index:i s with
        | Some v -> Some v
        | None -> go (i + 1) rest
      end
  in
  go 0 samples

let infer ?(max_radius = 3) (a : Arbiter.t) samples =
  let declared = match a.Arbiter.locality with Arbiter.Ball r -> Some r | Arbiter.Opaque -> None in
  let tested_max = max max_radius (match declared with Some r -> r | None -> 0) in
  let results =
    List.init (tested_max + 1) (fun r -> (r, consistent_at ~radius:r a samples))
  in
  let inferred =
    List.fold_left
      (fun acc (r, v) -> match (acc, v) with None, None -> Some r | _ -> acc)
      None results
  in
  { declared; tested_max; results; inferred }
