module E = Lph_util.Error

type severity = Error | Warning | Info

type rule =
  | Radius_declared
  | Radius_sound
  | Radius_tight
  | Radius_expected
  | Stratification
  | Bounded_quantifiers
  | Certificate_budget
  | Message_size
  | Cost_accounting
  | Cluster_radius
  | Output_poly
  | Fault_spec
  | Budget_slack
  | Reduction_consistency
  | Lower_bound_replay

let all_rules =
  [
    Radius_declared;
    Radius_sound;
    Radius_tight;
    Radius_expected;
    Stratification;
    Bounded_quantifiers;
    Certificate_budget;
    Message_size;
    Cost_accounting;
    Cluster_radius;
    Output_poly;
    Fault_spec;
    Budget_slack;
    Reduction_consistency;
    Lower_bound_replay;
  ]

let rule_id = function
  | Radius_declared -> "arbiter/radius-declared"
  | Radius_sound -> "arbiter/radius-sound"
  | Radius_tight -> "arbiter/radius-tight"
  | Radius_expected -> "arbiter/radius-expected"
  | Stratification -> "formula/stratification"
  | Bounded_quantifiers -> "formula/bounded-quantifiers"
  | Certificate_budget -> "formula/certificate-budget"
  | Message_size -> "arbiter/message-size"
  | Cost_accounting -> "codec/cost-accounting"
  | Cluster_radius -> "reduction/cluster-radius"
  | Output_poly -> "reduction/output-poly"
  | Fault_spec -> "faults/spec-parse"
  | Budget_slack -> "budget/slack"
  | Reduction_consistency -> "budget/reduction-consistency"
  | Lower_bound_replay -> "budget/lower-bound-replay"

let rule_of_id id = List.find_opt (fun r -> rule_id r = id) all_rules

(* the severity a violation of the rule is reported at (--rules) *)
let rule_severity = function
  | Radius_tight | Budget_slack -> Warning
  | Radius_declared | Radius_sound | Radius_expected | Stratification | Bounded_quantifiers
  | Certificate_budget | Message_size | Cost_accounting | Cluster_radius | Output_poly
  | Fault_spec | Reduction_consistency | Lower_bound_replay ->
      Error

let rule_doc = function
  | Radius_declared ->
      ( "every shipped arbiter must declare a constant verification radius; opaque arbiters \
         disable locality pruning and leave the constant-radius side condition unchecked",
        "Theorems 11/12" )
  | Radius_sound ->
      ( "the declared radius must survive probing: perturbing labels and certificates outside \
         a node's declared ball, or restricting the run to the ball, must not change the \
         node's verdict",
        "Theorems 11/12" )
  | Radius_tight ->
      ( "no strictly smaller radius survives the same probes: an over-declared radius is sound \
         but weakens locality pruning and misstates the spec's locality",
        "Theorems 11/12" )
  | Radius_expected ->
      ( "for arbiters compiled from sentences, the declared radius must equal the bound \
         derived from the quantifier structure (visibility radius of the matrix + 1)",
        "Theorem 12" )
  | Stratification ->
      ( "the second-order prefix must consist of exactly the claimed number of alternating \
         blocks with the claimed initial polarity",
        "Theorems 11/12" )
  | Bounded_quantifiers ->
      ( "below the second-order prefix the sentence must be LFO: one unbounded universal \
         first-order quantifier over a bounded-fragment formula",
        "Theorems 11/12 (Section 5.1)" )
  | Certificate_budget ->
      ( "every certificate the compiled game quantifies over must fit the declared (r,p) \
         bound: second-order choices stay polynomial in the local view",
        "Theorem 12" )
  | Message_size ->
      ( "per-round per-node message cost must fit the declared polynomial of the node's \
         r-ball information content",
        "Section 4 (polynomial step time)" )
  | Cost_accounting ->
      ( "encoded_length and bits_length must agree with the materialised encodings in both \
         wire modes (bits_length = 8 * encoded_length = |encode_bits|)",
        "Section 4 (bit-string accounting)" )
  | Cluster_radius ->
      ( "a reduction must gather a constant radius and require identifier uniqueness at \
         least gather_radius + 1 (the gather layer's precondition)",
        "Theorems 19/20 (Section 8)" )
  | Output_poly ->
      ( "each node's encoded cluster output must fit the declared polynomial of its \
         gather-radius ball information",
        "Theorems 19/20 (Props 15-17)" )
  | Fault_spec ->
      ( "every registered fault fixture — plan spec or model spec — must parse under the \
         typed grammar and survive a spec round-trip: replayability of faulted campaigns \
         (CI matrices, faultlab replay lines) depends on these strings staying valid",
        "fault-axis experiments (CC-PH robustness)" )
  | Budget_slack ->
      ( "a spec's declared certificate budget should not be at least twice the searched \
         optimum on its probe families: over-declared budgets inflate every game the spec \
         appears in and misstate the property's certification complexity",
        "Section 6 (proof-labeling budgets)" )
  | Reduction_consistency ->
      ( "each certification reduction's budget-transfer function must dominate direct search: \
         a source optimum above the transferred image optimum (or a YES/NO mismatch between a \
         source and its image, or the two engines disagreeing on an optimum) falsifies the \
         reduction's certification claim",
        "Theorems 19/20 (Section 8)" )
  | Lower_bound_replay ->
      ( "every reported optimum's lower-bound witness must stand on its own: the UNSAT core \
         must be a subset of the recorded assumptions and must replay to UNSAT in a fresh \
         solver loaded with only the compiled game clauses",
        "Section 6 (machine-checkable lower bounds)" )

type t = { spec : string; rule : rule; severity : severity; message : string }

let make ~spec ~rule ~severity message = { spec; rule; severity; message }

let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_of_string = function
  | "error" -> Error
  | "warning" -> Warning
  | "info" -> Info
  | s -> E.decode_error ~what:"Diagnostic" "unknown severity %S" s

let is_error d = d.severity = Error

let pp fmt d =
  let _, theorem = rule_doc d.rule in
  Format.fprintf fmt "%-7s %s [%s] %s (%s)"
    (severity_to_string d.severity)
    d.spec (rule_id d.rule) d.message theorem

let to_json d =
  let _, theorem = rule_doc d.rule in
  Json.Obj
    [
      ("spec", Json.String d.spec);
      ("rule", Json.String (rule_id d.rule));
      ("severity", Json.String (severity_to_string d.severity));
      ("message", Json.String d.message);
      ("theorem", Json.String theorem);
    ]

let of_json j =
  let field name =
    match Json.member name j with
    | Some v -> v
    | None -> E.decode_error ~what:"Diagnostic" "missing field %S" name
  in
  let rule =
    let id = Json.get_string (field "rule") in
    match rule_of_id id with
    | Some r -> r
    | None -> E.decode_error ~what:"Diagnostic" "unknown rule %S" id
  in
  {
    spec = Json.get_string (field "spec");
    rule;
    severity = severity_of_string (Json.get_string (field "severity"));
    message = Json.get_string (field "message");
  }
