module Gen = Lph_graph.Generators
module LA = Lph_machine.Local_algo
module Arbiter = Lph_hierarchy.Arbiter
module Candidates = Lph_hierarchy.Candidates
module GF = Lph_logic.Graph_formulas
module F = Lph_logic.Formula
module Cluster = Lph_reductions.Cluster
module Poly = Lph_util.Poly

(* A correct radius-1 machine re-declared at radius 0: probing must
   find the label flip at distance 1 that changes the verdict. *)
let under_declared () =
  Registry.of_algo
    (LA.with_radius (Some 0) Candidates.constant_label_decider)
    ~probes:[ Gen.cycle 4; Gen.path ~labels:[| "1"; "1"; "0" |] 3 ]

let opaque () =
  Registry.of_algo
    (LA.with_radius None Candidates.constant_label_decider)
    ~probes:[ Gen.cycle 4 ]

let over_declared () =
  Registry.of_algo
    (LA.with_radius (Some 2) Candidates.constant_label_decider)
    ~probes:[ Gen.cycle 5; Gen.path ~labels:[| "1"; "1"; "0" |] 3 ]

(* ∃R ∀x ∃y R(y): the inner ∃y is an unbounded first-order quantifier,
   so the matrix is not LFO — locality is lost however low the level
   claim. *)
let unbounded_matrix = F.Exists_so ("R", 1, F.Forall ("x", F.Exists ("y", F.App ("R", [ "y" ]))))

(* The CEGAR engine's Σ2 game shape mis-declared one level down: an
   ∃C̄ ∀D prefix has two alternating blocks, so claiming Σ1 must trip
   the stratification rule (the matrix is the LFO colouring check, so
   no other formula rule can fire instead). *)
let misdeclared_sigma2 =
  let colors = [ "C0"; "C1" ] in
  F.exists_so_many
    (List.map (fun c -> (c, 1)) colors)
    (F.Forall_so ("D", 1, GF.forall_node "x" (GF.well_colored ~colors "x")))

let bad_reduction () =
  { Lph_reductions.Eulerian_red.reduction with Cluster.name = "fixture:bad-reduction"; id_radius = 1 }

(* A correct 2-colour verifier declaring a constant budget of 4 bits:
   one bit is enough on even cycles, so the declaration carries >= 2x
   slack and the optimiser must warn. *)
let slack_budget () =
  Registry.arbiter_spec ~name:"fixture:slack-budget"
    ~algo:(Candidates.color_verifier 2)
    ~universes:(fun _g _ids -> [ Candidates.color_universe 2 ])
    ~extra_samples:[ { Probe.graph = Gen.cycle 4; certs = [ [| "0"; "1"; "0"; "1" |] ] } ]
    ~probes:[ Gen.cycle 4; Gen.path 3 ]
    ~opt_probes:[ ("even-cycle", [ 4 ]) ]
    (Arbiter.of_local_algo ~id_radius:2
       ~cert_bound:{ Lph_graph.Certificates.radius = 1; poly = Poly.const 4 }
       (Candidates.color_verifier 2))

(* A correct relabelling reduction paired with a transfer function that
   claims certificates vanish: direct search finds a 1-bit source
   optimum, falsifying the transferred bound of 0. *)
let inconsistent_reduction () =
  let two_col =
    {
      Cert_reduction.cs_name = "fixture:2col";
      cs_arbiter = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 2);
      cs_universes = Some (fun _g _ids -> [ Candidates.color_universe 2 ]);
    }
  in
  {
    Cert_reduction.cr_name = "fixture:inconsistent-reduction";
    cr_source = two_col;
    cr_target = two_col;
    cr_via =
      Lph_reductions.To_all_selected.reduction ~name:"fixture:relabel" ~radius:1
        ~decide:(fun _ctx _ball -> true);
    cr_transfer = (fun _ -> 0);
    cr_transfer_doc = "falsely claims the image needs no certificates at all";
    cr_instances = [ ("C4", Gen.cycle 4) ];
  }

(* A genuine search result whose recorded UNSAT core is emptied out:
   replaying the empty assumption set leaves the game satisfiable, so
   the stored lower bound no longer stands. *)
let bad_replay_result () =
  let family =
    match Optimum.family "even-cycle" with Some f -> f | None -> assert false
  in
  let r =
    Optimum.search ~name:"fixture:bad-replay"
      ~arbiter:(Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 2))
      ~universes:(Some (fun _g _ids -> [ Candidates.color_universe 2 ]))
      ~family ~size:4 ()
  in
  match r.Optimum.r_verdict with
  | Optimum.Optimum { bits; proof = Optimum.Core p } ->
      {
        r with
        Optimum.r_verdict =
          Optimum.Optimum { bits; proof = Optimum.Core { p with Optimum.core = [] } };
      }
  | _ -> r

let rename name (spec : Registry.arbiter_spec) = { spec with Registry.a_name = name }

let violations () =
  {
    Registry.arbiters =
      [
        rename "fixture:under-declared" (under_declared ());
        rename "fixture:opaque" (opaque ());
        rename "fixture:over-declared" (over_declared ());
        slack_budget ();
      ];
    formulas =
      [
        {
          Registry.f_name = "fixture:over-deep-formula";
          formula = GF.not_all_selected;
          claimed_level = 1;
          claimed_polarity = Registry.Sigma;
          budget_probes = [];
        };
        {
          Registry.f_name = "fixture:unbounded-formula";
          formula = unbounded_matrix;
          claimed_level = 1;
          claimed_polarity = Registry.Sigma;
          budget_probes = [];
        };
        {
          Registry.f_name = "fixture:misdeclared-sigma2";
          formula = misdeclared_sigma2;
          claimed_level = 1;
          claimed_polarity = Registry.Sigma;
          budget_probes = [];
        };
      ];
    reductions =
      [
        {
          Registry.r_name = "fixture:bad-reduction";
          reduction = bad_reduction ();
          r_probes = [ Gen.cycle 4 ];
          output_bound = Lph_util.Poly.monomial ~coeff:2048 ~degree:2;
        };
      ];
    codecs = [];
    faults =
      [
        (* unknown kind, rate out of [0,1], missing seed, unknown model
           name: one fixture per failure shape of the typed parsers *)
        { Registry.fx_name = "fixture:unknown-kind"; fx_lang = Registry.Plan_spec; fx_spec = "warp:1" };
        { Registry.fx_name = "fixture:rate-out-of-range"; fx_lang = Registry.Plan_spec; fx_spec = "all@1.5:1" };
        { Registry.fx_name = "fixture:missing-seed"; fx_lang = Registry.Plan_spec; fx_spec = "all@0.3" };
        { Registry.fx_name = "fixture:unknown-model"; fx_lang = Registry.Model_spec; fx_spec = "heisenberg/f1" };
      ];
    cert_reductions = [ inconsistent_reduction () ];
    opt_stored = [ bad_replay_result () ];
  }

let expectations =
  [
    ("fixture:under-declared", Diagnostic.Radius_sound, Diagnostic.Error);
    ("fixture:opaque", Diagnostic.Radius_declared, Diagnostic.Error);
    ("fixture:over-declared", Diagnostic.Radius_tight, Diagnostic.Warning);
    ("fixture:over-deep-formula", Diagnostic.Stratification, Diagnostic.Error);
    ("fixture:unbounded-formula", Diagnostic.Bounded_quantifiers, Diagnostic.Error);
    ("fixture:misdeclared-sigma2", Diagnostic.Stratification, Diagnostic.Error);
    ("fixture:bad-reduction", Diagnostic.Cluster_radius, Diagnostic.Error);
    ("fixture:unknown-kind", Diagnostic.Fault_spec, Diagnostic.Error);
    ("fixture:rate-out-of-range", Diagnostic.Fault_spec, Diagnostic.Error);
    ("fixture:missing-seed", Diagnostic.Fault_spec, Diagnostic.Error);
    ("fixture:unknown-model", Diagnostic.Fault_spec, Diagnostic.Error);
  ]

(* tripped only under Lint.run ~optimize:true *)
let opt_expectations =
  [
    ("fixture:slack-budget", Diagnostic.Budget_slack, Diagnostic.Warning);
    ("fixture:inconsistent-reduction", Diagnostic.Reduction_consistency, Diagnostic.Error);
    ("fixture:bad-replay", Diagnostic.Lower_bound_replay, Diagnostic.Error);
  ]
