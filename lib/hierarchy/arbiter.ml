module G = Lph_graph.Labeled_graph
module N = Lph_graph.Neighborhood
module Certs = Lph_graph.Certificates

type locality = Opaque | Ball of int

type t = {
  name : string;
  levels : int;
  id_radius : int;
  cert_bound : Certs.bound option;
  locality : locality;
  verdicts :
    (G.t -> ids:Lph_graph.Identifiers.t -> certs:Certs.t list -> bool array) option;
  checker :
    G.t -> ids:Lph_graph.Identifiers.t -> (int -> certs:Certs.t list -> bool) option;
  accepts : G.t -> ids:Lph_graph.Identifiers.t -> certs:Certs.t list -> bool;
}

let join_certs g certs =
  match certs with [] -> Certs.trivial g | _ -> Certs.list_assignment certs

let opaque_checker _g ~ids:_ = None

(* The ball checker evaluates the arbiter on the induced neighbourhood
   [N_{max r 1}(u)] rather than the whole graph. Radius [max r 1] (not
   [r]) so that a radius-0 verifier still sees the centre's true degree;
   its verdict only reads the centre's own label/identifier/certificates,
   which the induced subgraph preserves. Certificates of nodes beyond
   distance [r] from the centre cannot influence the verdict of a
   radius-[r] verifier, so they are canonicalised to [""] — this is what
   lets the solver treat two partial assignments that agree on the ball
   as equivalent.

   The checker closure carries a cache shared by every solve against
   this arbiter: neighbourhood extractions are reused across calls on
   the same (graph, identifier assignment), and ball verdicts are
   memoised on the ball's certificate contents, so repeated game solves
   (sweeps, benchmarks) pay for each distinct ball configuration once. *)

type hood = {
  ind : N.induced;
  sub_ids : string array;
  keep : bool array;  (** subgraph node within distance r of the centre *)
  members : int list;  (** ball(u, r), original node indices *)
  centre : int;
}

type checker_state = {
  hoods : hood option array;
  memo : (int * string, bool) Hashtbl.t;  (** (centre, ball certificate signature) *)
}

let make_checker ~locality ~verdicts =
  match (locality, verdicts) with
  | Opaque, _ | _, None -> opaque_checker
  | Ball r, Some verdicts ->
      let eval_radius = max r 1 in
      let lock = Mutex.create () in
      let states : (int * string array, checker_state) Hashtbl.t = Hashtbl.create 8 in
      fun g ~ids ->
        let n = G.card g in
        let state =
          Mutex.protect lock (fun () ->
              let key = (G.uid g, ids) in
              match Hashtbl.find_opt states key with
              | Some st -> st
              | None ->
                  if Hashtbl.length states > 64 then Hashtbl.reset states;
                  let st = { hoods = Array.make n None; memo = Hashtbl.create 256 } in
                  Hashtbl.add states key st;
                  st)
        in
        (* lazily built per node; racing domains recompute identical
           values and an option write is a single pointer store, so
           sharing the array without a lock is benign *)
        let hood u =
          match state.hoods.(u) with
          | Some h -> h
          | None ->
              let ind = N.r_neighbourhood g ~radius:eval_radius u in
              let m = G.card ind.N.subgraph in
              let sub_ids = Array.init m (fun i -> ids.(ind.N.of_sub i)) in
              (* distances from the truncated BFS, not a full row: the
                 whole hood must stay O(ball) or solvers iterating it
                 over every node degrade to O(n^2) *)
              let dist_tbl = Hashtbl.create 16 in
              List.iter
                (fun (v, d) -> Hashtbl.replace dist_tbl v d)
                (N.ball_distances g ~radius:eval_radius u);
              let within i =
                match Hashtbl.find_opt dist_tbl (ind.N.of_sub i) with
                | Some d -> d <= r
                | None -> false
              in
              let keep = Array.init m within in
              let members = N.ball g ~radius:r u in
              let centre =
                match ind.N.to_sub u with Some c -> c | None -> assert false
              in
              let h = { ind; sub_ids; keep; members; centre } in
              state.hoods.(u) <- Some h;
              h
        in
        Some
          (fun u ~certs ->
            let h = hood u in
            let signature =
              String.concat "\x02"
                (List.map
                   (fun (c : Certs.t) ->
                     String.concat "\x01" (List.map (fun v -> c.(v)) h.members))
                   certs)
            in
            let key = (u, signature) in
            let cached = Mutex.protect lock (fun () -> Hashtbl.find_opt state.memo key) in
            match cached with
            | Some b -> b
            | None ->
                let m = Array.length h.keep in
                let sub_certs =
                  List.map
                    (fun (c : Certs.t) ->
                      Array.init m (fun i -> if h.keep.(i) then c.(h.ind.N.of_sub i) else ""))
                    certs
                in
                let b = (verdicts h.ind.N.subgraph ~ids:h.sub_ids ~certs:sub_certs).(h.centre) in
                Mutex.protect lock (fun () ->
                    if Hashtbl.length state.memo > 200_000 then Hashtbl.reset state.memo;
                    Hashtbl.replace state.memo key b);
                b)

let of_local_algo ~id_radius ?cert_bound packed =
  let locality =
    match Lph_machine.Local_algo.radius packed with
    | Some r -> Ball r
    | None -> Opaque
  in
  let verdicts g ~ids ~certs =
    let result = Lph_machine.Runner.run packed g ~ids ~cert_list:(join_certs g certs) () in
    Array.init (G.card g) (fun u -> Lph_machine.Runner.verdict result u = "1")
  in
  {
    name = Lph_machine.Local_algo.name packed;
    levels = Lph_machine.Local_algo.levels packed;
    id_radius;
    cert_bound;
    locality;
    verdicts = Some verdicts;
    checker = make_checker ~locality ~verdicts:(Some verdicts);
    accepts =
      (fun g ~ids ~certs ->
        Lph_machine.Runner.decides packed g ~ids ~cert_list:(join_certs g certs) ());
  }

let of_turing ~levels ~id_radius ?cert_bound ?verify_radius (m : Lph_machine.Turing.t) =
  let locality = match verify_radius with Some r -> Ball r | None -> Opaque in
  let verdicts g ~ids ~certs =
    let result = Lph_machine.Turing.run m g ~ids ~certs:(join_certs g certs) () in
    Array.init (G.card g) (fun u -> Lph_machine.Turing.verdict result u = "1")
  in
  {
    name = m.Lph_machine.Turing.name;
    levels;
    id_radius;
    cert_bound;
    locality;
    verdicts = Some verdicts;
    checker = make_checker ~locality ~verdicts:(Some verdicts);
    accepts =
      (fun g ~ids ~certs ->
        Lph_machine.Turing.accepts
          (Lph_machine.Turing.run m g ~ids ~certs:(join_certs g certs) ()));
  }

let decider_accepts t g ~ids =
  if t.levels <> 0 then invalid_arg "Arbiter.decider_accepts: arbiter expects certificates";
  t.accepts g ~ids ~certs:[]

let ball_checker t g ~ids = t.checker g ~ids
