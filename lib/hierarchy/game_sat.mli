(** The SAT-backed certificate-game engine: the constructive face of
    the paper's distributed Cook–Levin theorem (Theorem 19). The
    innermost existential block of a certificate game over explicit
    finite universes is compiled to one CNF per (arbiter, graph,
    identifiers, universes) — selector variables with exactly-one
    constraints encode the per-node candidate choices, per-node
    acceptance variables are Tseytin-bound to the tabulated radius-r
    ball verdicts, and a mode variable switches the same instance
    between "every verifier accepts" (Eve's last move) and "some
    verifier rejects" (Adam's). The enumeration engine walks the outer
    quantifier levels and fixes each chosen outer certificate through
    {e assumption literals}, so every leaf of the game tree is an
    incremental {!Lph_boolean.Solver.solve_with} call on the same
    solver: the CNF is built once, and clauses learned under one outer
    prefix keep pruning under all later ones. *)

type t
(** A compiled game instance: one incremental SAT solver plus the
    materialised choice tables. Safe to share across domains — solver
    calls are serialised internally. *)

val compile :
  Arbiter.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:(int -> string list) list ->
  t option
(** Compile the full game (all [universes] levels) to CNF. [None] when
    the arbiter is [Opaque], exposes no per-node verdicts, or the total
    ball-table size exceeds the compile budget (default 200000 verifier
    runs; override with [LPH_SAT_BUDGET]) — callers fall back to pruned
    search. Instances are cached on (arbiter name, graph, identifiers,
    materialised universes), so repeated solves and parallel sweeps
    over the same graph reuse both the CNF and its learned clauses. *)

val compile_explain :
  Arbiter.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:(int -> string list) list ->
  (t, Lph_util.Error.t) result
(** Like {!compile} but the refusal carries its typed reason:
    [Resource_exhausted] with the effective [LPH_SAT_BUDGET] limit when
    the ball tables are over budget, [Protocol_error] when the arbiter
    is opaque or exposes no per-node verdicts. *)

val eve_leaf : t -> prefix:Lph_graph.Certificates.t list -> Lph_graph.Certificates.t option
(** A last-level certificate assignment under which every node accepts,
    given the outer levels fixed to [prefix] (in move order, one entry
    per level except the last) — or [None] if none exists. Raises
    [Invalid_argument] if a prefix certificate is outside its level's
    universe. *)

val adam_rejects : t -> prefix:Lph_graph.Certificates.t list -> bool
(** Is there a last-level assignment under which some node rejects?
    [false] means every last-level choice is accepted — i.e. Adam has
    no winning move at this leaf. *)

val table_entries : t -> int
(** Total number of tabulated ball configurations (the one-off compile
    cost, in verifier runs). *)

(** {1 Cache handles}

    The compile cache normally manages itself (reset past 64 entries);
    these hooks exist for cache-bounded long-lived processes
    ({!Lph_serve.Scheduler}) that evict by graph when their own LRU
    budget says so. *)

val cached_instances : unit -> int
(** Number of (arbiter, graph, ids, universes) entries currently in the
    compile cache, including entries whose compilation failed or is
    still in flight. *)

val evict_graph : uid:int -> int
(** Drop every cached compile for the graph with this
    {!Lph_graph.Labeled_graph.uid}; returns how many entries went.
    In-flight solves on an evicted instance finish normally — they hold
    their own reference — but later compiles start cold. *)

val graph_table_entries : uid:int -> int
(** Sum of {!table_entries} over the successfully compiled cache
    entries of one graph: the scheduler's per-graph cost estimate. *)

(** {1 CEGAR access}

    The [`Cegar] engine ({!Game_cegar}) drives the same compiled CNF
    from outside: it forks the clause database into a private proposer
    solver, decodes whole levels out of refutation models, and maps
    rejecting nodes back to ball-restricted blocking cubes. *)

val levels : t -> int
(** Number of quantifier levels compiled into the instance. *)

val radius : t -> int
(** The arbiter's declared [Ball r] locality radius — the
    generalisation radius for CEGAR blocking cubes. *)

val candidates : t -> level:int -> node:int -> string list
(** The materialised certificate universe of one (level, node) slot, in
    selector-index order. *)

val selector : t -> level:int -> node:int -> string -> Lph_boolean.Cnf.literal
(** The positive selector literal of a (level, node, certificate)
    choice. Raises [Invalid_argument] when the certificate is not in
    that slot's universe. *)

val solve_model :
  t ->
  prefix:Lph_graph.Certificates.t list ->
  eve:bool ->
  (Lph_boolean.Bool_formula.var -> bool) option
(** The raw model behind {!eve_leaf}/{!adam_rejects}: a last-level
    assignment (under the outer [prefix]) making every node accept
    ([eve:true]) or some node reject ([eve:false]), as a full valuation
    of the instance's variables. *)

val model_level : t -> (Lph_boolean.Bool_formula.var -> bool) -> level:int -> Lph_graph.Certificates.t
(** Decode the certificate assignment a model selects at one level. *)

val rejecting_nodes : t -> (Lph_boolean.Bool_formula.var -> bool) -> int list
(** The nodes whose acceptance variable is false in a model — under
    [eve:false] the witnesses Adam's refutation rests on. *)

val fork_solver : t -> eve:bool -> Lph_boolean.Solver.t
(** A private copy of the instance's solver (clause database, learned
    clauses, phases) with the mode variable permanently fixed: [eve:true]
    keeps only assignments every verifier accepts, [eve:false] only
    those some verifier rejects. The copy is independent — clauses
    added to it never reach the shared instance — and, like any
    {!Lph_boolean.Solver.t}, not domain-safe without external locking. *)

val solver_stats : t -> Lph_boolean.Solver.stats
(** Counters of the underlying solver, cumulative over every leaf
    solved on this instance. *)

(** {1 Budget-restricted solving}

    The certificate-budget optimiser ({!Lph_analysis}) decides "does
    the game still accept when every level-[l] certificate is at most
    [b] bits?" without recompiling: the budget is a set of negative
    selector assumptions, and an UNSAT answer yields the
    failed-assumption core that is the machine-checkable lower-bound
    proof. *)

val cnf : t -> Lph_boolean.Cnf.t
(** Every clause the compilation added, in insertion order: acceptance
    definitions, exactly-one constraints and mode clauses. Replaying an
    assumption core against these clauses in a fresh solver is how
    lower-bound proofs are validated independently of this instance's
    learned clauses. *)

val budget_assumptions : t -> budget:int -> levels:int list -> Lph_boolean.Cnf.clause
(** Negative selector literals banning every candidate certificate
    longer than [budget] characters at each of the given levels — the
    assumption form of restricting those universes to the budget.
    Raises [Invalid_argument] on a level outside the instance. *)

val solve_constrained :
  t ->
  assumptions:Lph_boolean.Cnf.clause ->
  eve:bool ->
  [ `Model of Lph_boolean.Bool_formula.var -> bool
  | `Unsat of Lph_boolean.Cnf.clause * Lph_boolean.Cnf.clause ]
(** Solve the instance under the mode literal ([eve:true] = every node
    accepts, [eve:false] = some node rejects) plus arbitrary extra
    assumptions — typically {!budget_assumptions}. [`Unsat (core, assumed)]
    carries the failed-assumption core ({!Lph_boolean.Solver.unsat_core})
    and the full assumption list actually passed (mode literal
    included), captured before the lock is released. *)
