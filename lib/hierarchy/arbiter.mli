(** Arbiters (Section 4): the machines that determine the winner of the
    Eve/Adam certificate game. An arbiter is any machine that, given a
    graph, an identifier assignment and a list of certificate
    assignments (one per quantifier level), reaches a unanimous
    verdict. Local algorithms and distributed Turing machines both
    provide arbiters.

    Arbiters additionally expose their {e dependency structure}: a
    {!locality} of [Ball r] declares that every node's verdict depends
    only on the radius-[r] view around it, which lets the game solver
    ({!Game.solve_pruned}) reject partial certificate assignments as
    soon as one fully-assigned ball rejects. [Opaque] arbiters fall
    back to exhaustive search. *)

type locality =
  | Opaque  (** verdicts may depend on the whole graph: never prune *)
  | Ball of int
      (** [Ball r]: node [u]'s verdict is a function of the induced
          subgraph [N_r(u)] with its labels, identifiers, certificates
          and [u]'s own degree *)

type t = {
  name : string;
  levels : int;  (** ℓ: number of certificate assignments expected *)
  id_radius : int;  (** r_id: required local uniqueness of identifiers *)
  cert_bound : Lph_graph.Certificates.bound option;
      (** the (r, p) bound the arbiter's quantifiers range over, when
          one is declared *)
  locality : locality;
  verdicts :
    (Lph_graph.Labeled_graph.t ->
    ids:Lph_graph.Identifiers.t ->
    certs:Lph_graph.Certificates.t list ->
    bool array)
    option;
      (** per-node verdicts (acceptance is their conjunction); required
          by {!ball_checker}, optional for hand-rolled arbiters *)
  checker :
    Lph_graph.Labeled_graph.t ->
    ids:Lph_graph.Identifiers.t ->
    (int -> certs:Lph_graph.Certificates.t list -> bool) option;
      (** the locality checker behind {!ball_checker}; hand-rolled
          arbiters should use {!opaque_checker} *)
  accepts :
    Lph_graph.Labeled_graph.t ->
    ids:Lph_graph.Identifiers.t ->
    certs:Lph_graph.Certificates.t list ->
    bool;
}

val of_local_algo :
  id_radius:int -> ?cert_bound:Lph_graph.Certificates.bound -> Lph_machine.Local_algo.packed -> t
(** Wrap a local algorithm; [levels] is taken from the algorithm, and
    [locality] from its declared radius ({!Lph_machine.Local_algo.radius}).
    The certificate assignments are joined into a certificate-list
    assignment before running, as in the paper. *)

val of_turing :
  levels:int ->
  id_radius:int ->
  ?cert_bound:Lph_graph.Certificates.bound ->
  ?verify_radius:int ->
  Lph_machine.Turing.t ->
  t
(** [verify_radius] declares the machine's verification locality (the
    caller's responsibility to get right — an under-declared radius
    makes pruning unsound). Omitted means [Opaque]. *)

val decider_accepts : t -> Lph_graph.Labeled_graph.t -> ids:Lph_graph.Identifiers.t -> bool
(** Run a 0-level arbiter (an LP-decider candidate). *)

val opaque_checker :
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  (int -> certs:Lph_graph.Certificates.t list -> bool) option
(** Always [None]: the [checker] of an arbiter that cannot prune. *)

val ball_checker :
  t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  (int -> certs:Lph_graph.Certificates.t list -> bool) option
(** [ball_checker t g ~ids] is [Some check] when [t] declares [Ball r]
    locality and per-node verdicts; [check u ~certs] then evaluates
    node [u]'s verdict on the induced neighbourhood [N_{max r 1}(u)]
    alone (radius at least 1 so the centre keeps its true degree),
    with certificates outside [N_r(u)] canonicalised to [""].
    For a radius-[r] verifier this equals the verdict of [u] in the
    whole-graph run, for any extension of the certificates — the
    soundness basis of pruned search (see DESIGN.md).

    Neighbourhood extractions and ball verdicts are cached inside the
    arbiter (per graph and identifier assignment, memoised on ball
    certificate contents), so repeated solves against the same arbiter
    reuse each distinct ball configuration. The closure is safe to call
    from parallel domains. *)
