module G = Lph_graph.Labeled_graph

let all_selected = G.all_labels_one

let not_all_selected g = not (all_selected g)

let constant_labelling g =
  let l0 = G.label g 0 in
  G.fold_nodes g ~init:true ~f:(fun acc u -> acc && G.label g u = l0)

let eulerian g = G.fold_nodes g ~init:true ~f:(fun acc u -> acc && G.degree g u mod 2 = 0)

let find_hamiltonian_cycle g =
  let n = G.card g in
  if n < 3 then None
  else begin
    let visited = Array.make n false in
    visited.(0) <- true;
    (* path grows from node 0; a Hamiltonian cycle exists iff some
       permutation starting at 0 closes back to 0 *)
    let rec extend path len last =
      if len = n then if G.has_edge g last 0 then Some (List.rev path) else None
      else
        let rec try_next = function
          | [] -> None
          | v :: rest ->
              if visited.(v) then try_next rest
              else begin
                visited.(v) <- true;
                match extend (v :: path) (len + 1) v with
                | Some cycle -> Some cycle
                | None ->
                    visited.(v) <- false;
                    try_next rest
              end
        in
        try_next (G.neighbours g last)
    in
    extend [ 0 ] 1 0
  end

let hamiltonian g = Option.is_some (find_hamiltonian_cycle g)

let find_k_coloring k g =
  if k < 1 then None
  else begin
    let n = G.card g in
    let colors = Array.make n (-1) in
    let rec assign u =
      if u = n then true
      else begin
        (* symmetry breaking: node u may only use colours 0..min(u,k-1) *)
        let limit = min (u + 1) k in
        let rec try_color c =
          if c >= limit then false
          else if
            List.exists (fun v -> v < u && colors.(v) = c) (G.neighbours g u)
          then try_color (c + 1)
          else begin
            colors.(u) <- c;
            if assign (u + 1) then true
            else begin
              colors.(u) <- -1;
              try_color (c + 1)
            end
          end
        in
        try_color 0
      end
    in
    if assign 0 then Some colors else None
  end

let k_colorable k g = Option.is_some (find_k_coloring k g)

let two_colorable g =
  (* flat int-array queue + row iteration: bipartiteness on 10^5+ node
     instances without per-node list allocation *)
  let n = G.card g in
  let color = Array.make n (-1) in
  let queue = Array.make n 0 in
  color.(0) <- 0;
  let head = ref 0 and tail = ref 1 in
  let ok = ref true in
  while !ok && !head < !tail do
    let u = queue.(!head) in
    incr head;
    G.neighbours_iter g u (fun v ->
        if color.(v) < 0 then begin
          color.(v) <- 1 - color.(u);
          queue.(!tail) <- v;
          incr tail
        end
        else if color.(v) = color.(u) then ok := false)
  done;
  !ok

let three_colorable = k_colorable 3
