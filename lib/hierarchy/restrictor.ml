module G = Lph_graph.Labeled_graph
module Certs = Lph_graph.Certificates

type t = {
  name : string;
  verdicts :
    G.t ->
    ids:Lph_graph.Identifiers.t ->
    prefix:Certs.t list ->
    candidate:Certs.t ->
    bool array;
}

let trivial =
  { name = "trivial"; verdicts = (fun g ~ids:_ ~prefix:_ ~candidate:_ -> Array.make (G.card g) true) }

let per_node ~name check =
  {
    name;
    verdicts =
      (fun g ~ids ~prefix:_ ~candidate ->
        Array.init (G.card g) (fun u ->
            let ctx =
              {
                Lph_machine.Local_algo.label = G.label g u;
                ident = ids.(u);
                certs = [ candidate.(u) ];
                cert_list = candidate.(u);
                degree = G.degree g u;
                charge = (fun _ -> ());
              }
            in
            check ctx candidate.(u)));
  }

let accepts_all t g ~ids ~prefix ~candidate =
  Array.for_all Fun.id (t.verdicts g ~ids ~prefix ~candidate)

let locally_repairable t g ~ids ~prefix_universe ~universe =
  let n = G.card g in
  let candidates = List.of_seq (Game.assignments ~n universe) in
  List.for_all
    (fun prefix ->
      List.for_all
        (fun candidate ->
          let verdicts = t.verdicts g ~ids ~prefix ~candidate in
          List.for_all
            (fun u ->
              verdicts.(u)
              ||
              (* a rejecting node must be able to fix its own certificate
                 without disturbing anyone else's verdict *)
              List.exists
                (fun replacement ->
                  let patched = Array.copy candidate in
                  patched.(u) <- replacement;
                  let verdicts' = t.verdicts g ~ids ~prefix ~candidate:patched in
                  verdicts'.(u)
                  && List.for_all
                       (fun v -> v = u || verdicts'.(v) = verdicts.(v))
                       (G.nodes g))
                (universe u))
            (G.nodes g))
        candidates)
    prefix_universe

let restricted_game ~first ~arbiter ~restrictors g ~ids ~universes =
  if List.length restrictors <> List.length universes then
    invalid_arg "Restrictor.restricted_game: one restrictor per level";
  let n = G.card g in
  let rec go player levels chosen =
    match levels with
    | [] -> arbiter.Arbiter.accepts g ~ids ~certs:(List.rev chosen)
    | (universe, restrictor) :: rest ->
        let admissible =
          Seq.filter
            (fun candidate ->
              accepts_all restrictor g ~ids ~prefix:(List.rev chosen) ~candidate)
            (Game.assignments ~n universe)
        in
        let continue k = go (Game.opponent player) rest (k :: chosen) in
        begin
          match player with
          | Game.Eve -> Seq.exists continue admissible
          | Game.Adam -> Seq.for_all continue admissible
        end
  in
  go first (List.combine universes restrictors) []

let lemma8_convert ~restrictors ~first (arbiter : Arbiter.t) =
  let levels = List.length restrictors in
  if levels <> arbiter.Arbiter.levels then
    invalid_arg "Restrictor.lemma8_convert: one restrictor per arbiter level";
  let accepts g ~ids ~certs =
    if List.length certs <> levels then
      invalid_arg "Restrictor.lemma8_convert: wrong number of certificate assignments";
    (* find the first violated level; its quantifier polarity decides *)
    let rec scan i player prefix = function
      | [] -> arbiter.Arbiter.accepts g ~ids ~certs
      | candidate :: rest ->
          let restrictor = List.nth restrictors i in
          if accepts_all restrictor g ~ids ~prefix:(List.rev prefix) ~candidate then
            scan (i + 1) (Game.opponent player) (candidate :: prefix) rest
          else begin
            (* an invalid existential certificate loses for Eve; an
               invalid universal certificate loses for Adam *)
            match player with Game.Eve -> false | Game.Adam -> true
          end
    in
    scan 0 first [] certs
  in
  {
    Arbiter.name = arbiter.Arbiter.name ^ "+lemma8";
    levels;
    id_radius = arbiter.Arbiter.id_radius;
    cert_bound = arbiter.Arbiter.cert_bound;
    (* the restrictor wrapper reads whole-prefix validity, which is not
       a ball-local property, so the converted arbiter cannot prune *)
    locality = Arbiter.Opaque;
    verdicts = None;
    checker = Arbiter.opaque_checker;
    accepts;
  }
