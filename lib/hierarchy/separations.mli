(** The ground-level separation experiments of Section 9.1, mechanised.

    Proposition 21 (LP ⊊ NLP): a deterministic constant-round machine
    cannot distinguish an odd cycle from the even cycle obtained by
    gluing two copies of it, because under the duplicated identifier
    assignment every node has exactly the same view. We reproduce the
    construction and verify the indistinguishability — node by node,
    for any candidate decider — while 2-COLORABLE separates the two
    graphs and is verified by a one-certificate game.

    Proposition 23 (coLP ≹ NLP): any NLP verifier for NOT-ALL-SELECTED
    that stays complete on long labelled cycles must, by the pigeonhole
    principle, accept two indistinguishable configurations that can be
    cut and spliced into an accepted all-selected cycle. We reproduce
    this with the modulo counter verifier: honest acceptance on the
    yes-cycle, explicit view-equal pair, splice, and unsound acceptance
    of the resulting no-instance. *)

type prop21_outcome = {
  odd_cycle : Lph_graph.Labeled_graph.t;  (** G: odd cycle, not 2-colourable *)
  glued : Lph_graph.Labeled_graph.t;  (** G': even cycle, 2-colourable *)
  ids : Lph_graph.Identifiers.t;
  ids_glued : Lph_graph.Identifiers.t;  (** the duplicated assignment *)
  verdicts_odd : string array;
  verdicts_glued : string array;
  indistinguishable : bool;
      (** verdict(u_i in G) = verdict(u_i in G') = verdict(u'_i in G') for
          all i — forced for every decider, fatal for a 2-COLORABLE one *)
}

val prop21 : decider:Lph_machine.Local_algo.packed -> n:int -> id_period:int -> prop21_outcome
(** [n] odd, [id_period] an odd divisor of [n] (≥ 5 keeps the cyclic
    identifiers 1-locally unique for radius-1 algorithms). *)

type prop23_outcome = {
  yes_cycle : Lph_graph.Labeled_graph.t;  (** one unselected node *)
  yes_accepted : bool;  (** honest certificates accepted? *)
  view_pair : int * int;  (** the pigeonhole pair v, v' *)
  spliced : Lph_graph.Labeled_graph.t;  (** all-selected cycle *)
  spliced_accepted : bool;  (** the unsound acceptance *)
  verdicts_preserved : bool;
      (** every node of the spliced cycle reaches the same verdict as
          its counterpart in the yes-cycle *)
}

val prop23 : period:int -> id_period:int -> n:int -> prop23_outcome
(** Run the pigeonhole experiment with {!Candidates.mod_counter_verifier}.
    Requirements: [id_period >= 5], [lcm period id_period < n - 1], and
    both periods dividing [n] so that views repeat. *)

val two_col_game_separation :
  ?engine:Game.engine -> n:int -> unit -> bool * bool * bool * bool
(** The NLP side of Proposition 21 on the two cycles: returns
    (odd ∈ 2COL ground truth, odd accepted by the certificate game,
     glued ∈ 2COL ground truth, glued accepted by the game) using
    {!Candidates.color_verifier} 2 — expected (false, false, true, true).
    [engine] selects the game engine (default [`Auto]: [LPH_ENGINE]). *)

val sigma2_game_separation :
  ?engine:Game.engine -> n:int -> unit -> bool * bool * bool * bool
(** The same separation one alternation level up: the Σ2 game of
    {!Candidates.robust_two_col_verifier} (value: 2-COLORABLE, but with
    a full universal challenge block behind every Eve claim) on the odd
    cycle and its glued even double — expected
    (false, false, true, true). Enumerating engines pay [2^n]
    challenges per claim here, the [`Cegar] engine one refutation
    query; this family is the [`Cegar] scaling probe. *)

val prop21_sweep :
  decider:Lph_machine.Local_algo.packed ->
  id_period:int ->
  int list ->
  (int * prop21_outcome) list
(** Run {!prop21} for each [n], fanned out over domains
    ({!Lph_util.Parallel.map}); results in input order. Every [n] must
    satisfy {!prop21}'s preconditions. *)

val prop23_sweep :
  period:int -> id_period:int -> int list -> (int * prop23_outcome) list

val two_col_game_sweep :
  ?engine:Game.engine -> int list -> (int * (bool * bool * bool * bool)) list
(** {!two_col_game_separation} per instance size, in parallel; the game
    solves inside each task run sequentially (nested pools do not
    oversubscribe). [`Auto] is resolved against [LPH_ENGINE] once,
    before the fan-out. *)

val sigma2_game_sweep :
  ?engine:Game.engine -> int list -> (int * (bool * bool * bool * bool)) list
(** {!sigma2_game_separation} per instance size, in parallel, with the
    same engine-resolution and pool discipline as
    {!two_col_game_sweep}. *)
