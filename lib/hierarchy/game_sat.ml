(* The SAT-backed certificate-game engine.

   The paper's distributed Cook–Levin theorem (Theorem 19) says every
   Σ1^LFO property reduces locally to SAT-GRAPH: the innermost
   existential certificate search of a game IS a satisfiability
   question. This module makes that constructive. For an arbiter with
   declared [Ball r] locality, a graph and explicit per-level
   certificate universes, it builds ONE CNF whose models are exactly
   the full certificate assignments under which every node's radius-r
   verifier accepts:

   - a selector variable [s<level>_<node>_<i>] per (level, node,
     candidate certificate), under an exactly-one constraint per
     (level, node) — the direct encoding of the finite universes;
   - an acceptance variable [a<node>] Tseytin-bound to the node's
     ball-local verdict, tabulated by enumerating the (memoised)
     {!Arbiter.ball_checker} over every combination of selections
     inside the ball — the per-node-ball tableau of the Cook–Levin
     construction, with {!Lph_boolean.Tseytin} supplying the clause
     form (the polarity with the smaller table is encoded);
   - a mode variable [m] with clauses [m -> a_u] for every node and
     [~m -> some a_u false], so the SAME solver instance answers both
     leaf questions of the game: assuming [m] asks for an assignment
     every verifier accepts (Eve's move at the last level), assuming
     [~m] for one that some verifier rejects (Adam's move).

   Outer quantifier levels are not re-encoded: the enumeration engine
   walks them and fixes each outer certificate through ASSUMPTION
   literals (the positive selector of the chosen candidate), so the
   CNF is built once per (arbiter, graph, ids, universes) and every
   leaf of the game tree is an incremental [Solver.solve_with] call —
   unit propagation instantiates the outer bits, and clauses learned
   under one prefix are reused under every later prefix. *)

module G = Lph_graph.Labeled_graph
module N = Lph_graph.Neighborhood
module Certs = Lph_graph.Certificates
module BF = Lph_boolean.Bool_formula
module Cnf = Lph_boolean.Cnf
module Tseytin = Lph_boolean.Tseytin
module Solver = Lph_boolean.Solver

type t = {
  solver : Solver.t;
  lock : Mutex.t;  (** the solver is single-threaded; sweeps are not *)
  levels : int;
  radius : int;  (** the arbiter's declared ball radius *)
  choices : string list array array;  (** level -> node -> candidates *)
  table_entries : int;  (** total tabulated ball configurations *)
  cnf : Cnf.t;  (** every clause the compilation added, in order *)
}

let sel l u i = Printf.sprintf "s%d_%d_%d" l u i

let acc u = Printf.sprintf "a%d" u

let mode = "m"

(* Tabulating a ball costs [prod over (level, member) of |choices|]
   verifier runs; balls beyond the budget would also produce huge
   tables, so the caller falls back to pruned search instead. *)
let default_budget = 200_000

let budget () =
  match Sys.getenv_opt "LPH_SAT_BUDGET" with
  | None | Some "" -> default_budget
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some b when b > 0 -> b
      | _ -> invalid_arg "Game_sat: LPH_SAT_BUDGET must be a positive integer")

let exactly_one lits =
  let rec pairs acc = function
    | [] -> acc
    | l :: rest -> pairs (List.fold_left (fun acc l' -> [ Cnf.negate l; Cnf.negate l' ] :: acc) acc rest) rest
  in
  lits :: pairs [] lits

(* The ball-local acceptance table of one node: every combination of
   candidate selections inside ball(u, r), split by verdict. *)
let tabulate ~check ~choices ~levels ~n members u =
  let slots =
    List.concat_map
      (fun l -> List.map (fun v -> (l, v)) members)
      (List.init levels Fun.id)
  in
  let per_slot =
    List.map (fun (l, v) -> List.mapi (fun i c -> (l, v, i, c)) choices.(l).(v)) slots
  in
  let bufs = Array.init levels (fun _ -> Array.make n "") in
  let certs = Array.to_list bufs in
  let accepting = ref [] and rejecting = ref [] in
  Seq.iter
    (fun combo ->
      List.iter (fun (l, v, _, c) -> bufs.(l).(v) <- c) combo;
      let selectors = List.map (fun (l, v, i, _) -> BF.Var (sel l v i)) combo in
      if check u ~certs then accepting := selectors :: !accepting
      else rejecting := selectors :: !rejecting)
    (Lph_util.Combinat.product per_slot);
  (List.rev !accepting, List.rev !rejecting)

let compile_uncached (a : Arbiter.t) g ~ids ~universes =
  match (a.Arbiter.locality, Arbiter.ball_checker a g ~ids) with
  | Arbiter.Opaque, _ | _, None ->
      Result.Error
        (Lph_util.Error.Protocol_error
           {
             what = "Game_sat";
             detail = "arbiter " ^ a.Arbiter.name ^ " is opaque or exposes no per-node verdicts";
             round = None;
             node = None;
           })
  | Arbiter.Ball r, Some check ->
      let n = G.card g in
      let levels = List.length universes in
      let choices =
        Array.of_list (List.map (fun universe -> Array.init n universe) universes)
      in
      let balls = Array.init n (fun u -> N.ball g ~radius:r u) in
      let table_size u =
        List.fold_left
          (fun acc v ->
            List.fold_left (fun acc l -> acc * List.length choices.(l).(v)) acc (List.init levels Fun.id))
          1 balls.(u)
      in
      let total = Array.fold_left (fun acc u -> acc + table_size u) 0 (Array.init n Fun.id) in
      let limit = budget () in
      if total > limit then
        Result.Error
          (Lph_util.Error.Resource_exhausted
             {
               what = "Game_sat";
               limit;
               detail =
                 Printf.sprintf "ball-table size %d exceeds the LPH_SAT_BUDGET tabulation cap" total;
             })
      else begin
        let solver = Solver.create () in
        (* the compiled clauses double as the instance's exportable CNF:
           lower-bound proofs replay assumption cores against it in a
           fresh solver, so it must be exactly what the solver saw *)
        let recorded = ref [] in
        let add_clause solver c =
          recorded := c :: !recorded;
          Solver.add_clause solver c
        in
        (* acceptance definitions: a_u <-> (ball of u accepts) *)
        let defs =
          List.init n (fun u ->
              let accepting, rejecting =
                tabulate ~check ~choices ~levels ~n balls.(u) u
              in
              let table rows = BF.disj (List.map BF.conj rows) in
              let accept_formula =
                if List.length accepting <= List.length rejecting then table accepting
                else BF.Not (table rejecting)
              in
              BF.iff (BF.Var (acc u)) accept_formula)
        in
        List.iter (add_clause solver) (Tseytin.transform ~fresh_prefix:"x" (BF.conj defs));
        (* the finite universes: exactly one candidate per level and node *)
        Array.iteri
          (fun l per_node ->
            Array.iteri
              (fun u cands ->
                List.iter (add_clause solver)
                  (exactly_one (List.mapi (fun i _ -> Cnf.pos (sel l u i)) cands)))
              per_node)
          choices;
        (* mode selection: m forces all-accept, ~m forces a rejection *)
        List.iter
          (fun u -> add_clause solver [ Cnf.neg mode; Cnf.pos (acc u) ])
          (List.init n Fun.id);
        add_clause solver (Cnf.pos mode :: List.init n (fun u -> Cnf.neg (acc u)));
        Result.Ok
          {
            solver;
            lock = Mutex.create ();
            levels;
            radius = r;
            choices;
            table_entries = total;
            cnf = List.rev !recorded;
          }
      end

(* Compiled instances are reused across game solves (sweeps and
   benchmarks re-solve the same graph under many prefixes), keyed on
   the arbiter's name, the graph and the materialised universes —
   arbiter names encode their parameters throughout this codebase.

   Synchronisation is PER ENTRY: the global lock only guards the
   find-or-insert of an entry record, while the (possibly expensive)
   compilation runs under that entry's own lock. [LPH_JOBS>1] sweeps
   over independent (arbiter, graph) pairs therefore compile and solve
   concurrently; only two domains racing for the SAME instance
   serialise, and each key is compiled exactly once. *)

type entry = { e_lock : Mutex.t; mutable compiled : (t, Lph_util.Error.t) result option }

let cache : (string * int * string array * string list array array, entry) Hashtbl.t =
  Hashtbl.create 16

let cache_lock = Mutex.create ()

let compile_explain (a : Arbiter.t) g ~ids ~universes =
  let choices_key =
    Array.of_list (List.map (fun universe -> Array.init (G.card g) universe) universes)
  in
  let key = (a.Arbiter.name, G.uid g, ids, choices_key) in
  let entry =
    Mutex.protect cache_lock (fun () ->
        match Hashtbl.find_opt cache key with
        | Some e -> e
        | None ->
            if Hashtbl.length cache > 64 then Hashtbl.reset cache;
            let e = { e_lock = Mutex.create (); compiled = None } in
            Hashtbl.add cache key e;
            e)
  in
  Mutex.protect entry.e_lock (fun () ->
      match entry.compiled with
      | Some inst -> inst
      | None ->
          let inst = compile_uncached a g ~ids ~universes in
          entry.compiled <- Some inst;
          inst)

let compile a g ~ids ~universes = Result.to_option (compile_explain a g ~ids ~universes)

let cached_instances () = Mutex.protect cache_lock (fun () -> Hashtbl.length cache)

let evict_graph ~uid =
  Mutex.protect cache_lock (fun () ->
      let removed = ref 0 in
      Hashtbl.filter_map_inplace
        (fun (_, guid, _, _) e ->
          if guid = uid then begin
            incr removed;
            None
          end
          else Some e)
        cache;
      !removed)

(* [e.compiled] is read without the entry lock: once set it is never
   mutated again, and a stale [None] only under-reports a compile still
   in flight — fine for an accounting estimate, and it keeps a slow
   compile from stalling everyone behind [cache_lock]. *)
let graph_table_entries ~uid =
  Mutex.protect cache_lock (fun () ->
      Hashtbl.fold
        (fun (_, guid, _, _) e acc ->
          match e.compiled with
          | Some (Result.Ok t) when guid = uid -> acc + t.table_entries
          | _ -> acc)
        cache 0)

let find_index x xs =
  let rec go i = function
    | [] -> None
    | y :: rest -> if y = x then Some i else go (i + 1) rest
  in
  go 0 xs

(* Assumption literals pinning the outer levels to the certificates the
   enumeration engine chose: the positive selector of each choice (the
   exactly-one constraints propagate the negative ones). *)
let prefix_assumptions t ~prefix =
  List.concat
    (List.mapi
       (fun l (k : Certs.t) ->
         Array.to_list
           (Array.mapi
              (fun u c ->
                match find_index c t.choices.(l).(u) with
                | Some i -> Cnf.pos (sel l u i)
                | None ->
                    invalid_arg
                      (Printf.sprintf
                         "Game_sat: outer certificate %S at node %d is not in level %d's universe" c
                         u l))
              k))
       prefix)

let solve_mode t ~prefix ~eve =
  let mode_lit = if eve then Cnf.pos mode else Cnf.neg mode in
  Mutex.protect t.lock (fun () ->
      Solver.solve_with ~assumptions:(mode_lit :: prefix_assumptions t ~prefix) t.solver)

let solve_model = solve_mode

let model_level t model ~level =
  Array.mapi
    (fun u cands ->
      let rec pick i = function
        | [] -> Lph_util.Error.protocol_error ~what:"Game_sat" "model selects no candidate"
        | c :: rest -> if model (sel level u i) then c else pick (i + 1) rest
      in
      pick 0 cands)
    t.choices.(level)

let eve_leaf t ~prefix =
  match solve_mode t ~prefix ~eve:true with
  | None -> None
  | Some model -> Some (model_level t model ~level:(t.levels - 1))

let adam_rejects t ~prefix = Option.is_some (solve_mode t ~prefix ~eve:false)

let rejecting_nodes t model =
  List.filter (fun u -> not (model (acc u))) (List.init (Array.length t.choices.(0)) Fun.id)

let levels t = t.levels

let radius t = t.radius

let candidates t ~level ~node = t.choices.(level).(node)

let selector t ~level ~node cert =
  match find_index cert t.choices.(level).(node) with
  | Some i -> Cnf.pos (sel level node i)
  | None ->
      invalid_arg
        (Printf.sprintf "Game_sat: certificate %S at node %d is not in level %d's universe" cert
           node level)

(* The clause database is forked under the instance lock: a concurrent
   solve would leave the trail mid-descent. [solve_with] always rewinds
   to level 0 before returning, so the fork starts at the root. *)
let fork_solver t ~eve =
  Mutex.protect t.lock (fun () ->
      let s = Solver.copy t.solver in
      Solver.add_clause s [ (if eve then Cnf.pos mode else Cnf.neg mode) ];
      s)

let table_entries t = t.table_entries

let solver_stats t = Solver.stats t.solver

let cnf t = t.cnf

(* Negative selector assumptions banning every candidate certificate
   longer than [budget] at the given levels: together with the
   exactly-one constraints this is the budget-restricted universe,
   expressed without recompiling — so a binary search over budgets is
   a sequence of incremental solves on one instance, and an UNSAT
   answer carries a failed-assumption core naming the bans (and the
   mode literal) that the refutation actually used. *)
let budget_assumptions t ~budget ~levels =
  List.concat_map
    (fun l ->
      if l < 0 || l >= t.levels then
        invalid_arg (Printf.sprintf "Game_sat.budget_assumptions: level %d out of range" l);
      List.concat
        (Array.to_list
           (Array.mapi
              (fun u cands ->
                List.concat
                  (List.mapi
                     (fun i c -> if String.length c > budget then [ Cnf.neg (sel l u i) ] else [])
                     cands))
              t.choices.(l))))
    levels

let solve_constrained t ~assumptions ~eve =
  let mode_lit = if eve then Cnf.pos mode else Cnf.neg mode in
  let assumptions = mode_lit :: assumptions in
  Mutex.protect t.lock (fun () ->
      match Solver.solve_with ~assumptions t.solver with
      | Some model -> `Model model
      | None -> `Unsat (Solver.unsat_core t.solver, assumptions))
