module G = Lph_graph.Labeled_graph
module N = Lph_graph.Neighborhood
module Certs = Lph_graph.Certificates
module Parallel = Lph_util.Parallel

type player = Eve | Adam

let opponent = function Eve -> Adam | Adam -> Eve

type universe = int -> string list

let bitstring_universe ~max_len _u = Lph_util.Bitstring.all_up_to_length max_len

let bounded_universe g ~ids bound ~cap u =
  Lph_util.Bitstring.all_up_to_length (min cap (Certs.max_length g ~ids bound u))

let of_choices choices _u = choices

let assignments ~n universe =
  let choices = List.init n universe in
  Seq.map Array.of_list (Lph_util.Combinat.product choices)

let solve ~first ~n ~universes ~arbiter =
  let rec go player universes chosen =
    match universes with
    | [] -> arbiter (List.rev chosen)
    | universe :: rest ->
        let options = assignments ~n universe in
        let continue k = go (opponent player) rest (k :: chosen) in
        begin
          match player with
          | Eve -> Seq.exists continue options
          | Adam -> Seq.for_all continue options
        end
  in
  go first universes []

type engine = [ `Auto | `Exhaustive | `Pruned | `Sat | `Cegar ]

(* [`Auto] defers to the environment (like [Parallel.jobs] and
   [LPH_JOBS]) so experiment binaries and CI legs can switch engines
   without threading an argument through every call site. *)
let engine_of_env () : engine =
  match Sys.getenv_opt "LPH_ENGINE" with
  | None | Some "" -> `Pruned
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "exhaustive" -> `Exhaustive
      | "pruned" -> `Pruned
      | "sat" -> `Sat
      | "cegar" -> `Cegar
      | other ->
          invalid_arg
            (Printf.sprintf
               "Game: LPH_ENGINE must be \"exhaustive\", \"pruned\", \"sat\" or \"cegar\" (got %S)"
               other))

let resolve : engine -> engine = function `Auto -> engine_of_env () | e -> e

(* Incremental re-verification for the exhaustive engine. Enumeration
   orders ({!Lph_util.Combinat.product}) vary the trailing nodes
   fastest, so consecutive certificate-list assignments differ at few
   nodes; a [Ball r] arbiter's verdict at [u] can only change when the
   mutation meets [ball(u, r)] ({!N.touched}), so only that dirty set
   is re-run — through the memoised ball checker, which also
   deduplicates recurring ball configurations. Opaque arbiters get no
   oracle and keep running their full [accepts]. *)
let incremental_accepts (a : Arbiter.t) g ~ids =
  match (a.Arbiter.locality, Arbiter.ball_checker a g ~ids) with
  | Arbiter.Ball r, Some check ->
      let n = G.card g in
      let verdicts = Array.make n true in
      let prev = ref None in
      Some
        (fun (certs : Certs.t list) ->
          let rerun = List.iter (fun u -> verdicts.(u) <- check u ~certs) in
          (match !prev with
          | Some old when List.length old = List.length certs ->
              let changed =
                List.filter
                  (fun u -> List.exists2 (fun (k : Certs.t) (k' : Certs.t) -> k.(u) <> k'.(u)) old certs)
                  (G.nodes g)
              in
              rerun (N.touched g ~radius:r changed)
          | _ -> rerun (G.nodes g));
          prev := Some (List.map Array.copy certs);
          Array.for_all Fun.id verdicts)
  | _ -> None

let solve_exhaustive ~first (a : Arbiter.t) g ~ids ~universes =
  let arbiter =
    match incremental_accepts a g ~ids with
    | Some oracle -> oracle
    | None -> fun certs -> a.Arbiter.accepts g ~ids ~certs
  in
  solve ~first ~n:(G.card g) ~universes ~arbiter

(* Pruned last-level search. The solver assigns the final quantifier
   level's certificates node by node, in BFS order from node 0, so that
   radius-r balls become fully assigned as early as possible. Once
   [ball(u,r)] is fully assigned, node [u]'s verdict is fixed whatever
   the remaining nodes receive (the arbiter is ball-local), so:

   - searching for an {e accepting} assignment (last mover Eve), a
     rejecting completed ball prunes the entire subtree;
   - searching for a {e rejecting} assignment (last mover Adam), a
     rejecting completed ball is an immediate witness — any completion
     of the assignment keeps that node rejecting.

   Ball verdicts are memoised on the ball's certificate contents, so
   re-assignments of nodes outside a ball never re-run the arbiter.
   Earlier quantifier levels stay exhaustive: their certificates flow
   into every ball, so no partial-assignment argument applies. *)

let pruned_last_level (a : Arbiter.t) g ~ids =
  match (a.Arbiter.locality, Arbiter.ball_checker a g ~ids) with
  | Arbiter.Ball r, Some check ->
      let n = G.card g in
      let dist0 = N.distances g 0 in
      let order = Array.init n Fun.id in
      Array.sort (fun u v -> compare (dist0.(u), u) (dist0.(v), v)) order;
      let posidx = Array.make n 0 in
      Array.iteri (fun k v -> posidx.(v) <- k) order;
      let balls = Array.init n (fun u -> N.ball g ~radius:r u) in
      let complete_at = Array.make n [] in
      Array.iteri
        (fun u ball ->
          let k = List.fold_left (fun acc v -> max acc posidx.(v)) 0 ball in
          complete_at.(k) <- u :: complete_at.(k))
        balls;
      let search ~mode ~prefix ~universe =
        let choices = Array.init n universe in
        if Array.exists (fun l -> l = []) choices then
          (* no assignment exists at all: neither an accepting nor a
             rejecting one, matching exhaustive enumeration semantics *)
          None
        else begin
          let check_ball memo (current : string array) u =
            let s = String.concat "\x01" (List.map (fun v -> current.(v)) balls.(u)) in
            match Hashtbl.find_opt memo (u, s) with
            | Some b -> b
            | None ->
                let b = check u ~certs:(prefix @ [ current ]) in
                Hashtbl.add memo (u, s) b;
                b
          in
          let rec assign memo current k =
            if k = n then
              match mode with
              | `Accepting -> Some (Array.copy current) (* every ball verified on the way *)
              | `Rejecting -> None (* all balls accept: not a rejection witness *)
            else List.find_map (try_choice memo current k) choices.(order.(k))
          and try_choice memo current k c =
            current.(order.(k)) <- c;
            let fresh = complete_at.(k) in
            match mode with
            | `Accepting ->
                if List.for_all (check_ball memo current) fresh then
                  assign memo current (k + 1)
                else None
            | `Rejecting ->
                if List.exists (fun u -> not (check_ball memo current u)) fresh then begin
                  for j = k + 1 to n - 1 do
                    current.(order.(j)) <- List.hd choices.(order.(j))
                  done;
                  Some (Array.copy current)
                end
                else assign memo current (k + 1)
          in
          let head = choices.(order.(0)) in
          (* fan the top-level branching out over domains; small
             instances stay sequential (domain spawns cost more than
             the whole search) *)
          if n >= 8 && List.length head > 1 && Parallel.jobs () > 1 then
            Parallel.find_map_first
              (fun c ->
                let memo = Hashtbl.create 256 and current = Array.make n "" in
                try_choice memo current 0 c)
              head
          else begin
            let memo = Hashtbl.create 256 and current = Array.make n "" in
            assign memo current 0
          end
        end
      in
      Some search
  | _ -> None

let solve_pruned ~first (a : Arbiter.t) g ~ids ~universes =
  let exhaustive () =
    solve ~first ~n:(G.card g) ~universes
      ~arbiter:(fun certs -> a.Arbiter.accepts g ~ids ~certs)
  in
  match (universes, pruned_last_level a g ~ids) with
  | [], _ | _, None -> exhaustive ()
  | _, Some search ->
      let n = G.card g in
      let rec go player universes prefix =
        match universes with
        | [] -> assert false
        | [ last ] -> (
            match player with
            | Eve -> Option.is_some (search ~mode:`Accepting ~prefix ~universe:last)
            | Adam -> Option.is_none (search ~mode:`Rejecting ~prefix ~universe:last))
        | universe :: rest ->
            let options = assignments ~n universe in
            let continue k = go (opponent player) rest (prefix @ [ k ]) in
            begin
              match player with
              | Eve -> Seq.exists continue options
              | Adam -> Seq.for_all continue options
            end
      in
      go first universes []

(* SAT-backed game value. The innermost block is answered by the
   compiled CNF ({!Game_sat}); outer levels are enumerated here exactly
   as in [solve_pruned], each chosen outer assignment reaching the
   solver as assumption literals. Falls back to pruned search when the
   game cannot be compiled (opaque arbiter, no verdicts, or the ball
   tables exceed the compile budget). *)
let solve_sat ~first (a : Arbiter.t) g ~ids ~universes =
  match (universes, Game_sat.compile a g ~ids ~universes) with
  | [], _ | _, None -> solve_pruned ~first a g ~ids ~universes
  | _, Some inst ->
      let n = G.card g in
      let rec go player universes rev_prefix =
        match universes with
        | [] -> assert false
        | [ _last ] -> (
            let prefix = List.rev rev_prefix in
            match player with
            | Eve -> Option.is_some (Game_sat.eve_leaf inst ~prefix)
            | Adam -> not (Game_sat.adam_rejects inst ~prefix))
        | universe :: rest ->
            let options = assignments ~n universe in
            let continue k = go (opponent player) rest (k :: rev_prefix) in
            begin
              match player with
              | Eve -> Seq.exists continue options
              | Adam -> Seq.for_all continue options
            end
      in
      go first universes []

(* CEGAR game value: the whole game handed to the dueling-solver loop
   of {!Game_cegar}. The fallback ladder degrades gracefully — when
   CEGAR cannot decide the game (opaque arbiter, over-budget compile,
   an empty candidate slot, or an [LPH_CEGAR_MAX_ITERS] overrun) the
   SAT engine takes over, which itself falls back to pruned search
   when even the leaf cannot be compiled. *)
let solve_cegar ~first (a : Arbiter.t) g ~ids ~universes =
  match universes with
  | [] -> solve_pruned ~first a g ~ids ~universes
  | _ -> (
      match Game_cegar.solve ~eve_first:(first = Eve) a g ~ids ~universes with
      | Some value -> value
      | None -> solve_sat ~first a g ~ids ~universes)

let check_levels (a : Arbiter.t) universes =
  if List.length universes <> a.Arbiter.levels then
    invalid_arg
      (Printf.sprintf "Game: arbiter %s expects %d levels, got %d universes" a.Arbiter.name
         a.Arbiter.levels (List.length universes))

let solve_first ~first engine a g ~ids ~universes =
  match resolve engine with
  | `Exhaustive -> solve_exhaustive ~first a g ~ids ~universes
  | `Sat -> solve_sat ~first a g ~ids ~universes
  | `Cegar -> solve_cegar ~first a g ~ids ~universes
  | `Auto | `Pruned -> solve_pruned ~first a g ~ids ~universes

let sigma_accepts ?(engine = `Auto) a g ~ids ~universes =
  check_levels a universes;
  solve_first ~first:Eve engine a g ~ids ~universes

let pi_accepts ?(engine = `Auto) a g ~ids ~universes =
  check_levels a universes;
  solve_first ~first:Adam engine a g ~ids ~universes

let eve_witness ?(engine = `Auto) a g ~ids ~universes =
  check_levels a universes;
  match universes with
  | [ universe ] -> (
      let exhaustive () =
        let accepts =
          match incremental_accepts a g ~ids with
          | Some oracle -> fun k -> oracle [ k ]
          | None -> fun k -> a.Arbiter.accepts g ~ids ~certs:[ k ]
        in
        Seq.find accepts (assignments ~n:(G.card g) universe)
      in
      let pruned () =
        match pruned_last_level a g ~ids with
        | Some search -> search ~mode:`Accepting ~prefix:[] ~universe
        | None -> exhaustive ()
      in
      match resolve engine with
      | `Exhaustive -> exhaustive ()
      | `Sat | `Cegar -> (
          (* a one-level game has no outer block to refine: CEGAR and
             SAT coincide on the shared compiled instance *)
          match Game_sat.compile a g ~ids ~universes with
          | Some inst -> Game_sat.eve_leaf inst ~prefix:[]
          | None -> pruned ())
      | `Auto | `Pruned -> pruned ())
  | _ -> invalid_arg "Game.eve_witness: arbiter must have exactly one level"
