(** Concrete candidate machines for the lowest hierarchy levels:
    correct LP-deciders, correct NLP-verifiers, and the deliberately
    doomed candidates that the separation experiments of Section 9.1
    dissect. All are local algorithms with polynomial step charges. *)

(** {1 LP deciders (level 0)} *)

val all_selected_decider : Lph_machine.Local_algo.packed
(** Accepts iff the node's own label is "1" (decides ALL-SELECTED). *)

val eulerian_decider : Lph_machine.Local_algo.packed
(** Accepts iff the node's degree is even (decides EULERIAN,
    Proposition 15). *)

val constant_label_decider : Lph_machine.Local_algo.packed
(** Accepts iff all neighbours carry the node's label (decides
    CONSTANT-LABELLING in 3 rounds). *)

val local_two_col_decider : radius:int -> Lph_machine.Local_algo.packed
(** The natural-but-doomed LP candidate for 2-COLORABLE: gather the
    r-ball and accept iff it is 2-colourable. Proposition 21 shows
    every such candidate fails: it cannot distinguish an odd cycle from
    its doubled even cycle. *)

(** {1 NLP verifiers (level 1)} *)

val color_verifier : int -> Lph_machine.Local_algo.packed
(** Verifier for k-COLORABLE: the certificate encodes the node's colour
    in binary; accept iff it is a valid colour differing from all
    neighbours' colours. Correct (sound and complete) — k-COLORABLE is
    in NLP. *)

val color_universe : int -> Game.universe
(** The matching restrictive certificate universe: the binary encodings
    of 0 .. k-1. *)

val exact_counter_verifier : cap:int -> Lph_machine.Local_algo.packed
(** Candidate verifier for NOT-ALL-SELECTED with certificates bounded
    by [cap]: the certificate claims the distance to an unselected
    node. Sound on every graph, but incomplete on cycles longer than
    about [2 * cap] — the bounded-certificate wall that Proposition 23
    erects. *)

val mod_counter_verifier : period:int -> Lph_machine.Local_algo.packed
(** Candidate verifier for NOT-ALL-SELECTED that stays complete on
    arbitrarily long cycles by counting modulo [period] — and is
    therefore unsound, exactly as the pigeonhole argument of
    Proposition 23 predicts: it accepts all-selected cycles whose
    length is a multiple of [period]. *)

(** {1 Σ2 verifiers (level 2)} *)

val robust_two_col_verifier : Lph_machine.Local_algo.packed
(** A two-level arbiter whose Σ2 game value is 2-COLORABLE: Eve claims
    a 2-colouring, Adam challenges with a second one, and a node
    accepts iff Eve's colouring is proper at it and Adam's challenge is
    either improper there or a local flip of Eve's. The universal block
    is semantically inert (two colourings proper at a node agree up to
    flipping), which is the point: engines that enumerate Adam's block
    pay 2^n per Eve claim, the CEGAR engine one UNSAT call — the
    scaling probe behind the `sigma2-2col` benchmarks and the
    [`Cegar]-engine separation sweep
    ({!Separations.sigma2_game_separation}). Certificate universe:
    {!color_universe}[ 2] at both levels. *)

val counter_universe : bound:int -> Game.universe
(** Binary encodings of 0 .. bound-1 (certificate candidates for the
    counter verifiers). *)

val honest_mod_certs : period:int -> n:int -> Lph_graph.Certificates.t
(** The honest prover's certificates for {!mod_counter_verifier} on the
    cycle of length [n] whose unselected node is node 0:
    node i gets [i mod period]. *)

val sat_graph_verifier : Lph_machine.Local_algo.packed
(** Verifier for SAT-GRAPH (Theorem 19) on Boolean graphs
    ({!Lph_boolean.Boolean_graph}): the certificate claims a valuation
    of the node's own formula variables, one bit per variable in sorted
    variable order; accept iff the formula is satisfied and every
    neighbour's claimed valuation agrees on shared variables. Malformed
    labels and forged certificates reject — they never raise, so
    soundness survives arbitrary certificate tampering. *)

val sat_graph_universe : Lph_boolean.Boolean_graph.t -> Game.universe
(** The matching certificate universe: all bit strings with one bit per
    variable of the node's formula ([ [""] ] for malformed labels). *)

val two_factor_verifier : Lph_machine.Local_algo.packed
(** Verifier for 2-FACTOR (a spanning 2-regular subgraph, i.e. a
    disjoint cycle cover): the certificate concatenates the equal-width
    identifiers of two distinct neighbours, and a node accepts iff both
    are genuine neighbours whose own certificates name it back. The
    certificate side of the HAMILTONIAN reduction targets — a
    Hamiltonian cycle is a 2-factor, and the reduction's pendant
    gadgets kill every 2-factor on NO instances. Completeness requires
    equal-width identifiers ({!Lph_graph.Identifiers.make_global}). *)

val two_factor_universe : Lph_graph.Labeled_graph.t -> Lph_graph.Identifiers.t -> Game.universe
(** The matching universe: one candidate per unordered pair of distinct
    neighbour identifiers (a rejected dummy for nodes of degree < 2). *)
