module G = Lph_graph.Labeled_graph
module LA = Lph_machine.Local_algo
module Gather = Lph_machine.Gather
module B = Lph_util.Bitstring

let all_selected_decider =
  LA.pure_decider ~name:"all-selected-decider" ~levels:0 (fun ctx -> ctx.LA.label = "1")

let eulerian_decider =
  LA.pure_decider ~name:"eulerian-decider" ~levels:0 (fun ctx -> ctx.LA.degree mod 2 = 0)

let ball_neighbours ball =
  List.filter (fun e -> e.Gather.dist = 1) ball.Gather.entries

let ball_self ball =
  match List.find_opt (fun e -> e.Gather.dist = 0) ball.Gather.entries with
  | Some e -> e
  | None -> Lph_util.Error.protocol_error ~what:"Candidates" "ball without centre entry"

let constant_label_decider =
  Gather.algo ~name:"constant-label-decider" ~radius:1 ~levels:0 ~decide:(fun ctx ball ->
      ctx.LA.charge (List.length ball.Gather.entries);
      List.for_all (fun e -> e.Gather.label = ctx.LA.label) (ball_neighbours ball))

let local_two_col_decider ~radius =
  Gather.algo ~name:(Printf.sprintf "local-2col-decider-r%d" radius) ~radius ~levels:0
    ~decide:(fun ctx ball ->
      let sub, _, _, _ = Gather.reconstruct ball in
      ctx.LA.charge (G.card sub + G.num_edges sub);
      Properties.two_colorable sub)

(* Certificates are bit strings; an empty or overly long certificate
   decodes to a value the verifier then range-checks. *)
let cert_value e = B.to_int (List.hd (Lph_util.Bitstring.split_hash e.Gather.cert))

let color_verifier k =
  Gather.algo ~name:(Printf.sprintf "%d-color-verifier" k) ~radius:1 ~levels:1
    ~decide:(fun ctx ball ->
      ctx.LA.charge (List.length ball.Gather.entries * k);
      let mine = cert_value (ball_self ball) in
      mine < k
      && List.for_all (fun e -> cert_value e <> mine && cert_value e < k) (ball_neighbours ball))

let encodings bound = List.init bound B.of_int

let color_universe k _u = encodings k

let counter_universe ~bound _u = encodings bound

let exact_counter_verifier ~cap =
  Gather.algo ~name:(Printf.sprintf "exact-counter-verifier-%d" cap) ~radius:1 ~levels:1
    ~decide:(fun ctx ball ->
      ctx.LA.charge (List.length ball.Gather.entries);
      let mine = cert_value (ball_self ball) in
      mine <= cap
      &&
      if ctx.LA.label <> "1" then mine = 0
      else mine > 0 && List.exists (fun e -> cert_value e = mine - 1) (ball_neighbours ball))

let mod_counter_verifier ~period =
  Gather.algo ~name:(Printf.sprintf "mod-counter-verifier-%d" period) ~radius:1 ~levels:1
    ~decide:(fun ctx ball ->
      ctx.LA.charge (List.length ball.Gather.entries);
      let mine = cert_value (ball_self ball) in
      mine < period
      &&
      if ctx.LA.label <> "1" then mine = 0
      else
        List.exists
          (fun e ->
            let v = cert_value e in
            v < period && (v + 1) mod period = mine)
          (ball_neighbours ball))

let honest_mod_certs ~period ~n = Array.init n (fun i -> B.of_int (i mod period))

(* ------------------------------------------------------------------ *)
(* A genuinely two-level colouring game: Eve claims a 2-colouring k1,
   Adam challenges with an arbitrary k2, and node u accepts iff k1 is
   proper at u AND (k2 is improper at u OR k2 is a local relabelling
   of k1, i.e. k1 xor k2 is constant on u's ball). With two colours,
   any two colourings proper at the same node already agree up to a
   flip there, so the Σ2 value coincides with 2-COLORABLE — Adam's
   block does no semantic work, but an enumerating engine must still
   sweep all 2^n challenges behind every claim, while the CEGAR engine
   answers the whole ∀-block with one UNSAT call. That asymmetry makes
   this family the scaling probe for the dueling-solver engine. *)

let robust_two_col_verifier =
  Gather.algo ~name:"robust-2col-verifier" ~radius:1 ~levels:2 ~decide:(fun ctx ball ->
      ctx.LA.charge (2 * List.length ball.Gather.entries);
      let self = ball_self ball in
      let nbrs = ball_neighbours ball in
      let value level e =
        match List.nth (Lph_graph.Certificates.split_list ~levels:2 e.Gather.cert) level with
        | "0" -> Some 0
        | "1" -> Some 1
        | _ -> None (* out of range or malformed: never a proper colour *)
      in
      let proper level =
        match value level self with
        | None -> false
        | Some mine ->
            List.for_all
              (fun e -> match value level e with Some v -> v <> mine | None -> false)
              nbrs
      in
      let aligned () =
        match (value 0 self, value 1 self) with
        | Some c1, Some c2 ->
            List.for_all
              (fun e ->
                match (value 0 e, value 1 e) with
                | Some c1', Some c2' -> c1 lxor c2 = c1' lxor c2'
                | _ -> false)
              nbrs
        | _ -> false
      in
      proper 0 && ((not (proper 1)) || aligned ()))

(* ------------------------------------------------------------------ *)
(* SAT-GRAPH (Theorem 19): labels encode Boolean formulas, the level-1
   certificate claims a valuation of the node's own variables — one bit
   per variable, in sorted variable order. The verifier re-checks what
   {!Lph_boolean.Boolean_graph.checkable_locally} states globally:
   every formula satisfied, adjacent valuations agreeing on shared
   variables. Malformed labels and forged certificates must REJECT,
   never crash — the soundness fuzzer attacks exactly this path. *)

module BF = Lph_boolean.Bool_formula

let sat_graph_formula label =
  match BF.of_label label with
  | f -> Some (f, BF.vars f)
  | exception Lph_util.Error.Error _ -> None

(* The valuation claimed by a certificate: exactly one '0'/'1' per
   variable, or [None] if the certificate is malformed. *)
let sat_graph_valuation vars cert =
  let cert = match Lph_util.Bitstring.split_hash cert with c :: _ -> c | [] -> "" in
  if String.length cert <> List.length vars || not (String.for_all (fun c -> c = '0' || c = '1') cert)
  then None
  else begin
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i v -> Hashtbl.replace tbl v (cert.[i] = '1')) vars;
    Some tbl
  end

let sat_graph_verifier =
  Gather.algo ~name:"sat-graph-verifier" ~radius:1 ~levels:1 ~decide:(fun ctx ball ->
      let self = ball_self ball in
      ctx.LA.charge (String.length self.Gather.label + String.length self.Gather.cert);
      match sat_graph_formula self.Gather.label with
      | None -> false
      | Some (f, vs) -> (
          match sat_graph_valuation vs self.Gather.cert with
          | None -> false
          | Some mine ->
              BF.eval (Hashtbl.find mine) f
              && List.for_all
                   (fun e ->
                     ctx.LA.charge (String.length e.Gather.label + String.length e.Gather.cert);
                     match sat_graph_formula e.Gather.label with
                     | None -> false
                     | Some (_, nvs) -> (
                         match sat_graph_valuation nvs e.Gather.cert with
                         | None -> false
                         | Some theirs ->
                             List.for_all
                               (fun v ->
                                 match Hashtbl.find_opt theirs v with
                                 | None -> true
                                 | Some b -> Hashtbl.find mine v = b)
                               vs))
                   (ball_neighbours ball)))

(* ------------------------------------------------------------------ *)
(* 2-FACTOR (spanning disjoint union of cycles): the level-1
   certificate at u names two distinct neighbours of u by identifier,
   as the concatenation of their two equal-width identifiers (lower
   one first). u accepts iff both halves are identifiers of genuine
   neighbours and each named neighbour's certificate names u back —
   symmetric selection of exactly two incident edges per node is a
   2-regular spanning subgraph. This is the certificate side of the
   HAMILTONIAN reduction targets: a Hamiltonian cycle is a 2-factor,
   and the pendant gadgets the reduction attaches to unselected nodes
   kill every 2-factor. Completeness needs equal-width identifiers
   (e.g. {!Lph_graph.Identifiers.make_global}); under ragged ones the
   fixed-midpoint parse only ever fails closed. *)

let two_factor_pair cert =
  let n = String.length cert in
  if n = 0 || n mod 2 = 1 then None
  else
    let a = String.sub cert 0 (n / 2) and b = String.sub cert (n / 2) (n / 2) in
    if a = b then None else Some (a, b)

let two_factor_verifier =
  Gather.algo ~name:"two-factor-verifier" ~radius:1 ~levels:1 ~decide:(fun ctx ball ->
      ctx.LA.charge (List.length ball.Gather.entries);
      let first_level c =
        match Lph_util.Bitstring.split_hash c with c :: _ -> c | [] -> ""
      in
      match two_factor_pair (first_level (ball_self ball).Gather.cert) with
      | None -> false
      | Some (a, b) ->
          let nbrs = ball_neighbours ball in
          let named id = List.find_opt (fun e -> e.Gather.ident = id) nbrs in
          let names_me e =
            match two_factor_pair (first_level e.Gather.cert) with
            | Some (a', b') -> a' = ctx.LA.ident || b' = ctx.LA.ident
            | None -> false
          in
          (match (named a, named b) with
          | Some ea, Some eb -> names_me ea && names_me eb
          | _ -> false))

let two_factor_universe g (ids : Lph_graph.Identifiers.t) u =
  let rec pairs = function
    | [] -> []
    | v :: rest -> List.map (fun w -> (v, w)) rest @ pairs rest
  in
  match pairs (List.sort_uniq compare (List.map (Array.get ids) (G.neighbours g u))) with
  | [] -> [ "0" ] (* degree < 2: no valid selection; a cert the verifier rejects *)
  | ps -> List.map (fun (a, b) -> a ^ b) ps

let sat_graph_universe g u =
  match sat_graph_formula (G.label g u) with
  | None -> [ "" ]
  | Some (_, vs) ->
      let k = List.length vs in
      List.init (1 lsl k) (fun v -> B.of_int_width ~width:k v)
