(** The Eve/Adam certificate game (Section 4). Eve (existential) and
    Adam (universal) alternately choose certificate assignments; after
    ℓ moves the arbiter decides. A graph has the Σℓ-property arbitrated
    by M iff Eve wins the game in which she moves first; Πℓ when Adam
    moves first.

    The solver is exact over explicit finite certificate universes:
    either all (r,p)-bounded bit strings up to a cap, or a semantic
    per-node universe (the restrictive-arbiter view of Lemma 8, which
    licenses restricting quantifiers as long as the restrictors are
    locally repairable — the responsibility of the caller).

    Two engines compute the game value. The exhaustive engine
    ({!solve}) enumerates whole certificate assignments; its cost is
    [Π_u |universe u|] per level. The pruned engine
    ({!solve_pruned}) exploits arbiter {e locality}
    ({!Arbiter.locality}): the final quantifier level is assigned node
    by node in BFS order and a subtree is cut (or, for Adam, a
    rejecting witness returned) as soon as one fully-assigned radius-r
    ball rejects, with ball verdicts memoised on ball contents and the
    top-level branching fanned out over domains ({!Lph_util.Parallel}).
    Both engines agree on every input; the pruned one silently falls
    back to exhaustive search for [Opaque] arbiters. *)

type player = Eve | Adam

val opponent : player -> player

type universe = int -> string list
(** Per-node certificate candidates (node index -> choices). *)

val bitstring_universe : max_len:int -> universe
(** All bit strings of length at most [max_len], for every node. *)

val bounded_universe :
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  Lph_graph.Certificates.bound ->
  cap:int ->
  universe
(** All (r,p)-bounded bit strings per node, additionally capped at
    length [cap]. *)

val of_choices : string list -> universe
(** The same candidate list for every node. *)

val assignments : n:int -> universe -> Lph_graph.Certificates.t Seq.t
(** All certificate assignments over [n] nodes. *)

val solve :
  first:player ->
  n:int ->
  universes:universe list ->
  arbiter:(Lph_graph.Certificates.t list -> bool) ->
  bool
(** Exact game value by exhaustive enumeration: [universes] has one
    entry per level, in move order. With [first = Eve] this computes
    ∃k1 ∀k2 ... : arbiter [k1; k2; ...]. *)

type engine = [ `Auto | `Exhaustive | `Pruned | `Sat | `Cegar ]
(** [`Auto] (the default everywhere) defers to the [LPH_ENGINE]
    environment variable — ["exhaustive"], ["pruned"], ["sat"] or
    ["cegar"], anything else raises [Invalid_argument], unset means
    pruned — read at each call like [LPH_JOBS]. [`Exhaustive] forces
    enumeration (with incremental dirty-set re-verification when the
    arbiter is ball-local: only verifiers whose r-ball meets the
    certificate bits changed since the previous candidate are re-run,
    via {!Lph_graph.Neighborhood.touched}). [`Pruned] requests
    locality-pruned search but still falls back to exhaustive on opaque
    arbiters. [`Sat] compiles the innermost block to CNF ({!Game_sat})
    and answers every game-tree leaf with an incremental
    assumption-based solver call, falling back to pruned search when
    compilation is unavailable or over budget. [`Cegar] hands the whole
    game — every quantifier block — to the abstraction-refinement duel
    of {!Game_cegar}, falling back down the ladder ([`Sat], then
    [`Pruned]) when it cannot decide the game. *)

val resolve : engine -> engine
(** Resolve [`Auto] against the [LPH_ENGINE] environment variable (see
    {!type:engine}); concrete engines pass through unchanged. Useful to
    pin the engine once before fanning work out over domains. *)

val solve_pruned :
  first:player ->
  Arbiter.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:universe list ->
  bool
(** Locality-pruned game value; agrees with {!solve} on the same
    arbiter for every input. Earlier levels are enumerated
    exhaustively; the last level is a backtracking search over nodes in
    BFS order that stops descending as soon as a fully-assigned ball's
    verdict is decisive. Falls back to {!solve} when the arbiter is
    [Opaque] or carries no per-node verdict function. *)

val solve_sat :
  first:player ->
  Arbiter.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:universe list ->
  bool
(** SAT-backed game value; agrees with {!solve} and {!solve_pruned} on
    every input. The innermost quantifier block is compiled once to CNF
    ({!Game_sat.compile}) and each leaf of the outer enumeration is an
    incremental solve under assumption literals fixing that leaf's
    outer certificates. Falls back to {!solve_pruned} when the game
    cannot be compiled. *)

val solve_cegar :
  first:player ->
  Arbiter.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:universe list ->
  bool
(** CEGAR game value; agrees with every other engine on every input.
    The whole game is run as {!Game_cegar}'s propose/refute/generalise
    loop between two incremental solver instances; when that engine
    reports [None] (opaque arbiter, over-budget compile, empty
    candidate slot, iteration cap) the value comes from {!solve_sat}
    instead, which has its own pruned fallback. *)

val sigma_accepts :
  ?engine:engine ->
  Arbiter.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:universe list ->
  bool
(** Does the graph satisfy the Σℓ-condition of the given arbiter
    (ℓ = [Arbiter.levels], Eve first)? *)

val pi_accepts :
  ?engine:engine ->
  Arbiter.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:universe list ->
  bool

val eve_witness :
  ?engine:engine ->
  Arbiter.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:universe list ->
  Lph_graph.Certificates.t option
(** For a 1-level arbiter: a certificate assignment making it accept,
    if one exists (the NLP witness). The pruned engine may return a
    different — still valid — witness than exhaustive lexicographic
    enumeration. *)
