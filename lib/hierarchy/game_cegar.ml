(* The CEGAR certificate-game engine: the whole Σℓ/Πℓ game as a duel
   between incremental CDCL instances.

   [`Sat] ({!Game_sat}) already answers the innermost block with a
   solver but still ENUMERATES every outer block — Σ2 on n nodes costs
   |U|^n leaf solves however fast each leaf is. This module removes
   that wall with counterexample-guided abstraction refinement, the
   2QBF playbook (RAReQS-style) instantiated on the game's ball-local
   structure:

   - the PROPOSER is a fork of the compiled game CNF whose mode
     variable is fixed to its player's optimism — an Eve proposer only
     models certificate assignments with at least one all-accepting
     completion, an Adam proposer only those with at least one
     rejecting completion. Candidates that cannot possibly win are
     never proposed, and an UNSAT proposer means its player has no
     unrefuted move left: it loses.
   - the REFUTER is the SHARED {!Game_sat} instance: the opponent's
     best reply at the innermost level is one assumption-based solve
     under the proposed prefix, so clauses it learns keep working for
     every later refutation (and for the plain [`Sat] engine).
   - every refutation is GENERALISED through ball locality before it
     is returned to the proposer: if the refuting model rejects at
     node [w], the rejection only read the proposal inside
     [ball(w, r)] ({!Arbiter.locality}), so the blocking clause drops
     every selector outside that ball and kills the whole cube of
     proposals agreeing on it — convergence by clause learning, not
     enumeration.

   Alternation depth ℓ > 2 recurses: the opponent of a non-innermost
   proposal runs its own CEGAR duel one level in (a fresh fork with the
   prefix pinned by unit clauses). Mid-level refutations carry no
   single rejecting node, so they block the full proposal cube;
   ball generalisation applies where the leaf solver answers directly.

   Soundness of the optimism: with every per-node candidate list
   non-empty (checked at instance build), a proposal outside the
   proposer's mode has NO completion its player could win with, so
   skipping it never changes the game value; and a blocked cube
   contains only proposals the recorded refutation already defeats.
   Termination: each refinement round adds a blocking clause falsified
   by the current proposal, so proposals never repeat and the loop is
   bounded by the (finite) number of level assignments —
   [LPH_CEGAR_MAX_ITERS] is a belt on top, and overrunning it reports
   "don't know" so the caller can fall back to an enumerating engine. *)

module G = Lph_graph.Labeled_graph
module N = Lph_graph.Neighborhood
module Certs = Lph_graph.Certificates
module Cnf = Lph_boolean.Cnf
module Solver = Lph_boolean.Solver

type stats = {
  iterations : int;  (** outermost propose/refute rounds *)
  proposals : int;  (** proposals examined, all levels *)
  refutations : int;  (** proposals defeated *)
  cubes : int;  (** blocking clauses learned by refinement *)
  generalised : int;  (** selector slots dropped from cubes by ball locality *)
}

type t = {
  inst : Game_sat.t;
  eve_first : bool;
  n : int;
  balls : int list array;  (** node -> ball(node, r) *)
  lock : Mutex.t;
  proposer : Solver.t;  (** the persistent outermost proposer *)
  mutable cubes_log : (int * (int * string) list) list;
  mutable winner : Certs.t option;
  mutable s_iterations : int;
  mutable s_proposals : int;
  mutable s_refutations : int;
  mutable s_cubes : int;
  mutable s_generalised : int;
}

let default_max_iters = 100_000

let max_iters () =
  match Sys.getenv_opt "LPH_CEGAR_MAX_ITERS" with
  | None | Some "" -> default_max_iters
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some b when b > 0 -> b
      | _ -> invalid_arg "Game_cegar: LPH_CEGAR_MAX_ITERS must be a positive integer")

exception Out_of_iterations

(* ---- refinement ---------------------------------------------------- *)

(* Learn [not (cube of k restricted to nodes)] on [proposer]. *)
let block d ~proposer ~level ~k nodes =
  let nodes = List.sort_uniq compare nodes in
  let cube = List.map (fun u -> (u, k.(u))) nodes in
  d.cubes_log <- (level, cube) :: d.cubes_log;
  d.s_cubes <- d.s_cubes + 1;
  d.s_generalised <- d.s_generalised + (d.n - List.length nodes);
  Solver.add_clause proposer
    (List.map (fun (u, c) -> Cnf.negate (Game_sat.selector d.inst ~level ~node:u c)) cube)

let all_nodes d = List.init d.n Fun.id

(* Can the opponent defeat proposal [k] at the innermost boundary?
   The opponent's reply is one leaf solve on the shared instance; a
   defeat is generalised into blocking cubes on [proposer]. *)
let leaf_refute d ~proposer ~eve ~level ~prefix k =
  match Game_sat.solve_model d.inst ~prefix:(prefix @ [ k ]) ~eve:(not eve) with
  | None -> false
  | Some reply ->
      (if eve then
         (* the reply rejects at some nodes; each rejection read only
            its own ball of the proposal *)
         List.iter (fun w -> block d ~proposer ~level ~k d.balls.(w)) (Game_sat.rejecting_nodes d.inst reply)
       else
         (* an all-accepting reply reads every ball: no generalisation *)
         block d ~proposer ~level ~k (all_nodes d));
      true

(* The propose/refute loop for the player moving at [level], whose
   moves come out of [proposer] (mode fixed to this player's optimism,
   [prefix] pinned). Returns whether that player wins the subgame. *)
let rec wins d ~proposer ~eve ~level ~prefix ~iters =
  let remaining = Game_sat.levels d.inst - level in
  let rec loop () =
    if !iters <= 0 then raise Out_of_iterations;
    decr iters;
    if level = 0 then d.s_iterations <- d.s_iterations + 1;
    match Solver.solve_with proposer with
    | None -> false (* every move is blocked or hopeless: player loses *)
    | Some model ->
        d.s_proposals <- d.s_proposals + 1;
        let k = Game_sat.model_level d.inst model ~level in
        let defeated =
          (* at the innermost level the proposal IS the completion: the
             mode-pinned proposer only models assignments its player
             already wins with, so a SAT proposal stands unrefuted *)
          if remaining <= 1 then false
          else if remaining = 2 then leaf_refute d ~proposer ~eve ~level ~prefix k
          else nested_refute d ~proposer ~eve ~level ~prefix ~iters k
        in
        if defeated then begin
          d.s_refutations <- d.s_refutations + 1;
          loop ()
        end
        else begin
          if level = 0 then d.winner <- Some k;
          true
        end
  in
  loop ()

(* Deeper alternation: the opponent answers proposal [k] with its own
   CEGAR duel one level in, on a fresh fork with the prefix pinned by
   unit clauses. A defeat deep in the tree names no single rejecting
   node, so the blocking cube cannot be generalised. *)
and nested_refute d ~proposer ~eve ~level ~prefix ~iters k =
  let prefix = prefix @ [ k ] in
  let sub = Game_sat.fork_solver d.inst ~eve:(not eve) in
  List.iteri
    (fun l kl ->
      Array.iteri
        (fun u c -> Solver.add_clause sub [ Game_sat.selector d.inst ~level:l ~node:u c ])
        kl)
    prefix;
  let defeated = wins d ~proposer:sub ~eve:(not eve) ~level:(level + 1) ~prefix ~iters in
  if defeated then block d ~proposer ~level ~k (all_nodes d);
  defeated

(* ---- instances ----------------------------------------------------- *)

(* Keyed like the {!Game_sat} cache plus the first player (the two
   proposers differ in their pinned mode), with the same per-entry
   locking discipline: the global lock only finds-or-inserts the
   entry, each instance is built once under its own lock, and solves
   on distinct instances never serialise each other. *)
type entry = { e_lock : Mutex.t; mutable built : t option option }

let cache : (string * int * string array * string list array array * bool, entry) Hashtbl.t =
  Hashtbl.create 16

let cache_lock = Mutex.create ()

let build ~eve_first (a : Arbiter.t) g ~ids ~universes =
  match Game_sat.compile a g ~ids ~universes with
  | None -> None
  | Some inst ->
      let n = G.card g in
      let levels = Game_sat.levels inst in
      let empty_slot =
        List.exists
          (fun l -> List.exists (fun u -> Game_sat.candidates inst ~level:l ~node:u = []) (List.init n Fun.id))
          (List.init levels Fun.id)
      in
      (* an empty slot makes a quantifier level trivially winnable for
         Adam (and unloseable for him) before the arbiter ever runs —
         enumeration semantics the optimistic proposer cannot see *)
      if empty_slot then None
      else
        Some
          {
            inst;
            eve_first;
            n;
            balls = Array.init n (fun u -> N.ball g ~radius:(Game_sat.radius inst) u);
            lock = Mutex.create ();
            proposer = Game_sat.fork_solver inst ~eve:eve_first;
            cubes_log = [];
            winner = None;
            s_iterations = 0;
            s_proposals = 0;
            s_refutations = 0;
            s_cubes = 0;
            s_generalised = 0;
          }

let instance ~eve_first (a : Arbiter.t) g ~ids ~universes =
  let choices_key =
    Array.of_list (List.map (fun universe -> Array.init (G.card g) universe) universes)
  in
  let key = (a.Arbiter.name, G.uid g, ids, choices_key, eve_first) in
  let entry =
    Mutex.protect cache_lock (fun () ->
        match Hashtbl.find_opt cache key with
        | Some e -> e
        | None ->
            if Hashtbl.length cache > 64 then Hashtbl.reset cache;
            let e = { e_lock = Mutex.create (); built = None } in
            Hashtbl.add cache key e;
            e)
  in
  Mutex.protect entry.e_lock (fun () ->
      match entry.built with
      | Some inst -> inst
      | None ->
          let inst = build ~eve_first a g ~ids ~universes in
          entry.built <- Some inst;
          inst)

let cached_instances () = Mutex.protect cache_lock (fun () -> Hashtbl.length cache)

let evict_graph ~uid =
  Mutex.protect cache_lock (fun () ->
      let removed = ref 0 in
      Hashtbl.filter_map_inplace
        (fun (_, guid, _, _, _) e ->
          if guid = uid then begin
            incr removed;
            None
          end
          else Some e)
        cache;
      !removed)

(* ---- solving ------------------------------------------------------- *)

(* The duel decides whether the FIRST player wins; the engine contract
   is the game value from Eve's side, so an Adam-first (Π) result is
   negated: Adam winning means the game is rejected. *)
let value d =
  Mutex.protect d.lock (fun () ->
      d.winner <- None;
      let iters = ref (max_iters ()) in
      match wins d ~proposer:d.proposer ~eve:d.eve_first ~level:0 ~prefix:[] ~iters with
      | first_wins -> Some (if d.eve_first then first_wins else not first_wins)
      | exception Out_of_iterations -> None)

let solve ~eve_first (a : Arbiter.t) g ~ids ~universes =
  match universes with
  | [] -> None
  | [ _ ] -> (
      (* one block: the duel degenerates to a single proposal — one
         solve on the mode-pinned proposer — but running it through
         [instance] keeps the refinement counters live (so ℓ=1 rows
         report iterations like everyone else) and the warm instance
         shared. An empty candidate slot refuses [instance] while
         {!Game_sat} still compiles: answer those directly on the
         shared instance, exactly like the [`Sat] engine. *)
      match instance ~eve_first a g ~ids ~universes with
      | Some d -> value d
      | None -> (
          match Game_sat.compile a g ~ids ~universes with
          | None -> None
          | Some inst ->
              Some
                (if eve_first then Option.is_some (Game_sat.eve_leaf inst ~prefix:[])
                 else not (Game_sat.adam_rejects inst ~prefix:[]))))
  | _ -> (
      match instance ~eve_first a g ~ids ~universes with
      | None -> None
      | Some d -> value d)

(* ---- observation --------------------------------------------------- *)

let stats d =
  Mutex.protect d.lock (fun () ->
      {
        iterations = d.s_iterations;
        proposals = d.s_proposals;
        refutations = d.s_refutations;
        cubes = d.s_cubes;
        generalised = d.s_generalised;
      })

let cubes d = Mutex.protect d.lock (fun () -> List.rev d.cubes_log)

let winning_move d = Mutex.protect d.lock (fun () -> d.winner)

let proposer_stats d = Mutex.protect d.lock (fun () -> Solver.stats d.proposer)

let shared_stats d = Game_sat.solver_stats d.inst

let table_entries d = Game_sat.table_entries d.inst
