type polarity = Sigma | Pi

type t = { level : int; polarity : polarity; complement : bool }

let sigma level =
  if level < 0 then invalid_arg "Classes.sigma: negative level";
  { level; polarity = Sigma; complement = false }

let pi level =
  if level < 0 then invalid_arg "Classes.pi: negative level";
  { level; polarity = Pi; complement = false }

let co c = { c with complement = not c.complement }

let lp = sigma 0

let nlp = sigma 1

let colp = co lp

let conlp = co nlp

let name c =
  let base =
    match (c.level, c.polarity) with
    | 0, _ -> "LP"
    | 1, Sigma -> "NLP"
    | l, Sigma -> Printf.sprintf "Σ%d^LP" l
    | l, Pi -> Printf.sprintf "Π%d^LP" l
  in
  if c.complement then "co" ^ base else base

let first_player c =
  if c.level = 0 then None
  else Some (match c.polarity with Sigma -> Game.Eve | Pi -> Game.Adam)

let move_order c =
  match first_player c with
  | None -> []
  | Some first ->
      let rec go player k = if k = 0 then [] else player :: go (Game.opponent player) (k - 1) in
      go first c.level

(* An alternating quantifier prefix of length k starting with player p
   embeds into one of length l starting with p' iff k <= l and, when
   k = l, p = p' — the same padding rule as for formulas. *)
let prefix_embeds ~inner:(k, p) ~outer:(l, p') = k < l || (k = l && (k = 0 || p = p'))

let includes c d =
  c.complement = d.complement
  && prefix_embeds
       ~inner:(d.level, match d.polarity with Sigma -> Game.Eve | Pi -> Game.Adam)
       ~outer:(c.level, match c.polarity with Sigma -> Game.Eve | Pi -> Game.Adam)

let accepts ?(engine = `Auto) c (arbiter : Arbiter.t) g ~ids ~universes =
  let value =
    match first_player c with
    | None ->
        if universes <> [] then invalid_arg "Classes.accepts: level 0 takes no universes";
        arbiter.Arbiter.accepts g ~ids ~certs:[]
    | Some Game.Eve -> Game.sigma_accepts ~engine arbiter g ~ids ~universes
    | Some Game.Adam -> Game.pi_accepts ~engine arbiter g ~ids ~universes
  in
  if c.complement then not value else value

let figure_one_levels max_level =
  List.concat_map
    (fun level ->
      let base = if level = 0 then [ sigma 0 ] else [ sigma level; pi level ] in
      base @ List.map co base)
    (List.init (max_level + 1) Fun.id)
