module G = Lph_graph.Labeled_graph
module Gen = Lph_graph.Generators
module Ids = Lph_graph.Identifiers
module Runner = Lph_machine.Runner

type prop21_outcome = {
  odd_cycle : G.t;
  glued : G.t;
  ids : Ids.t;
  ids_glued : Ids.t;
  verdicts_odd : string array;
  verdicts_glued : string array;
  indistinguishable : bool;
}

let verdicts result g = Array.of_list (List.map (Runner.verdict result) (G.nodes g))

let prop21 ~decider ~n ~id_period =
  if n < 3 || n mod 2 = 0 then invalid_arg "Separations.prop21: n must be odd and >= 3";
  if n mod id_period <> 0 then invalid_arg "Separations.prop21: id_period must divide n";
  let odd_cycle, glued = Gen.glued_even_cycle n in
  let ids = Ids.cyclic odd_cycle ~period:id_period in
  let ids_glued = Ids.duplicate ids in
  let r = Runner.run decider odd_cycle ~ids () in
  let r' = Runner.run decider glued ~ids:ids_glued () in
  let verdicts_odd = verdicts r odd_cycle in
  let verdicts_glued = verdicts r' glued in
  let indistinguishable =
    List.for_all
      (fun i -> verdicts_odd.(i) = verdicts_glued.(i) && verdicts_odd.(i) = verdicts_glued.(n + i))
      (List.init n Fun.id)
  in
  { odd_cycle; glued; ids; ids_glued; verdicts_odd; verdicts_glued; indistinguishable }

type prop23_outcome = {
  yes_cycle : G.t;
  yes_accepted : bool;
  view_pair : int * int;
  spliced : G.t;
  spliced_accepted : bool;
  verdicts_preserved : bool;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm a b = a / gcd a b * b

let prop23 ~period ~id_period ~n =
  if id_period < 5 then invalid_arg "Separations.prop23: id_period must be >= 5";
  if n mod period <> 0 || n mod id_period <> 0 then
    invalid_arg "Separations.prop23: period and id_period must divide n";
  let l = lcm period id_period in
  if l + 2 > n - 1 then invalid_arg "Separations.prop23: lcm of periods too large for n";
  let labels = Array.init n (fun i -> if i = 0 then "0" else "1") in
  let yes_cycle = Gen.cycle ~labels n in
  let ids = Ids.cyclic yes_cycle ~period:id_period in
  let verifier = Candidates.mod_counter_verifier ~period in
  let certs = Candidates.honest_mod_certs ~period ~n in
  let yes_run = Runner.run verifier yes_cycle ~ids ~cert_list:certs () in
  let yes_accepted = Runner.accepts yes_run in
  (* Views repeat with period lcm(period, id_period): nodes v and v + l
     (both at distance >= 2 from the unselected node 0, so that even
     their windows avoid it) agree on label, identifier and
     certificate, and so do their whole windows. *)
  let v = 2 in
  let v' = v + l in
  (* splice: keep indices v .. v' - 1 and close the cycle *)
  let m = v' - v in
  let labels' = Array.init m (fun j -> labels.(v + j)) in
  let spliced = Gen.cycle ~labels:labels' m in
  let ids' = Array.init m (fun j -> ids.(v + j)) in
  let certs' = Array.init m (fun j -> certs.(v + j)) in
  let spliced_run = Runner.run verifier spliced ~ids:ids' ~cert_list:certs' () in
  let spliced_accepted = Runner.accepts spliced_run in
  let verdicts_preserved =
    List.for_all
      (fun j -> Runner.verdict spliced_run j = Runner.verdict yes_run (v + j))
      (List.init m Fun.id)
  in
  { yes_cycle; yes_accepted; view_pair = (v, v'); spliced; spliced_accepted; verdicts_preserved }

let two_col_game_separation ?(engine = `Auto) ~n () =
  if n < 3 || n mod 2 = 0 then invalid_arg "Separations.two_col_game_separation: n must be odd";
  let odd_cycle, glued = Gen.glued_even_cycle n in
  let verifier = Arbiter.of_local_algo ~id_radius:1 (Candidates.color_verifier 2) in
  let universes = [ Candidates.color_universe 2 ] in
  let ids = Ids.make_global odd_cycle in
  let ids' = Ids.make_global glued in
  ( Properties.two_colorable odd_cycle,
    Game.sigma_accepts ~engine verifier odd_cycle ~ids ~universes,
    Properties.two_colorable glued,
    Game.sigma_accepts ~engine verifier glued ~ids:ids' ~universes )

(* The same separation one alternation level up: the Σ2 game of
   {!Candidates.robust_two_col_verifier} has 2-COLORABLE as its value,
   so the odd cycle must lose it and the glued even double must win it
   — but now every Eve claim carries a full universal block, which an
   enumerating engine sweeps (2^n challenges per claim) and the CEGAR
   engine discharges with a single UNSAT refutation query. This is the
   scaling family for the [`Cegar] bench rows. *)
let sigma2_game_separation ?(engine = `Auto) ~n () =
  if n < 3 || n mod 2 = 0 then invalid_arg "Separations.sigma2_game_separation: n must be odd";
  let odd_cycle, glued = Gen.glued_even_cycle n in
  let verifier = Arbiter.of_local_algo ~id_radius:1 Candidates.robust_two_col_verifier in
  let universes = [ Candidates.color_universe 2; Candidates.color_universe 2 ] in
  let ids = Ids.make_global odd_cycle in
  let ids' = Ids.make_global glued in
  ( Properties.two_colorable odd_cycle,
    Game.sigma_accepts ~engine verifier odd_cycle ~ids ~universes,
    Properties.two_colorable glued,
    Game.sigma_accepts ~engine verifier glued ~ids:ids' ~universes )

(* Parallel sweeps: the per-instance experiments above are independent
   across instance sizes, so fan them out over domains. Results come
   back in input order ([Parallel.map] is deterministic). *)

let prop21_sweep ~decider ~id_period ns =
  Lph_util.Parallel.map (fun n -> (n, prop21 ~decider ~n ~id_period)) ns

let prop23_sweep ~period ~id_period ns =
  Lph_util.Parallel.map (fun n -> (n, prop23 ~period ~id_period ~n)) ns

let two_col_game_sweep ?(engine = `Auto) ns =
  (* resolve once: each domain would otherwise consult the environment *)
  let engine = Game.resolve engine in
  Lph_util.Parallel.map (fun n -> (n, two_col_game_separation ~engine ~n ())) ns

let sigma2_game_sweep ?(engine = `Auto) ns =
  let engine = Game.resolve engine in
  Lph_util.Parallel.map (fun n -> (n, sigma2_game_separation ~engine ~n ())) ns
