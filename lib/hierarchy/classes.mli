(** Descriptors for the classes of the local-polynomial hierarchy and
    its complement hierarchy (Figures 1 and 11): naming, quantifier
    structure, and the inclusions that hold by definition (padding with
    empty quantifier blocks). The separations are experimental matters
    (see {!Separations}); this module only encodes the syntactic
    skeleton of the diagram. *)

type polarity = Sigma | Pi

type t = { level : int; polarity : polarity; complement : bool }

val sigma : int -> t
val pi : int -> t
val co : t -> t

val lp : t  (** Σ0^LP *)

val nlp : t  (** Σ1^LP *)

val colp : t
val conlp : t

val name : t -> string
(** "Σ2^LP", "coΠ3^LP", with the conventional aliases LP, NLP, coLP,
    coNLP at the bottom levels. *)

val first_player : t -> Game.player option
(** Who moves first in the defining game ([None] at level 0). For
    complement classes this is the game of the underlying class — the
    complement is taken of the resulting property, not of the game. *)

val move_order : t -> Game.player list
(** The alternation sequence of the defining game. *)

val includes : t -> t -> bool
(** [includes c d]: the inclusion d ⊆ c holds {e by definition}
    (padding a shorter alternating prefix into a longer one; complement
    classes compare through their underlying classes). Separations and
    cross-hierarchy inclusions are not decided here. *)

val accepts :
  ?engine:Game.engine ->
  t ->
  Arbiter.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:Game.universe list ->
  bool
(** Membership condition of a graph for the property arbitrated by the
    given machine with respect to this class: the Σ/Π game value,
    negated for complement classes. [engine] selects the game engine
    (default [`Auto], i.e. the [LPH_ENGINE] environment variable). *)

val figure_one_levels : int -> t list
(** All classes of both hierarchies up to the given level, in display
    order — the nodes of Figure 1/11. *)
