(** The CEGAR certificate-game engine behind [`Cegar]: the entire
    Σℓ/Πℓ game compiled into a counterexample-guided
    abstraction-refinement duel between incremental CDCL instances,
    instead of enumerating the outer quantifier blocks.

    A {e proposer} — a fork of the {!Game_sat} CNF with the mode
    variable pinned to its player's optimism — proposes an
    outermost-block certificate assignment; the {e refuter} (the shared
    {!Game_sat} instance) searches the remaining blocks for a reply
    that defeats it; each defeat is generalised through the arbiter's
    [Ball r] locality (selectors outside the rejecting node's ball are
    dropped) into a blocking clause on the proposer. Proposals never
    repeat, so the loop terminates; an UNSAT proposer has no unrefuted
    move and loses. Alternation depth ℓ > 2 recurses with fresh forks,
    one level per duel.

    Instances are cached per (arbiter, graph, identifiers, universes,
    first player) with per-entry locks, so sweeps re-solve warm
    proposers — including all blocking clauses learned so far — and
    parallel solves of distinct instances never serialise each other. *)

type t
(** A cached duel: the shared compiled instance plus this first
    player's persistent outermost proposer, learned blocking cubes and
    refinement counters. Safe to share across domains. *)

val solve :
  eve_first:bool ->
  Arbiter.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:(int -> string list) list ->
  bool option
(** The game value with Eve ([eve_first]) or Adam moving first —
    or [None] when this engine cannot (or refuses to) decide the game
    and the caller should fall back: the arbiter is opaque or over the
    [LPH_SAT_BUDGET] compile budget, some (level, node) slot has an
    empty candidate list (enumeration semantics decide such games
    before the arbiter runs), the universe list is empty, or the
    refinement loop overran [LPH_CEGAR_MAX_ITERS]. One-level games run
    the degenerate duel — a single unrefutable proposal on the
    mode-pinned proposer — so their refinement counters ({!stats},
    [iterations] in particular) are recorded like every deeper game's;
    only the empty-slot case falls back to a direct answer on the
    shared {!Game_sat} instance. *)

val instance :
  eve_first:bool ->
  Arbiter.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:(int -> string list) list ->
  t option
(** The cached duel instance for a (≥ 1)-level game, building it on
    first use; [None] under the same conditions as {!solve} (except the
    iteration cap, which only strikes during {!value}). *)

val value : t -> bool option
(** Run (or re-run, warm) the refinement loop to the game value — from
    Eve's side, like every engine: an Eve-first game is accepted iff
    Eve wins the duel, an Adam-first game iff Adam {e loses} it.
    [None] if the loop overruns [LPH_CEGAR_MAX_ITERS] — blocking
    clauses learned so far are kept, so a retry with a higher cap
    resumes rather than restarts. *)

type stats = {
  iterations : int;  (** outermost propose/refute rounds *)
  proposals : int;  (** proposals examined, all levels *)
  refutations : int;  (** proposals defeated *)
  cubes : int;  (** blocking clauses learned by refinement *)
  generalised : int;  (** selector slots dropped from cubes by ball locality *)
}

val stats : t -> stats
(** Cumulative refinement counters over the instance's lifetime. *)

val cubes : t -> (int * (int * string) list) list
(** Every blocking cube learned so far, oldest first: the proposal
    level and the (node, certificate) assignments the clause forbids
    re-proposing together. No assignment extending a cube can win the
    blocked player the subgame below it — the property the soundness
    tests check. *)

val winning_move : t -> Lph_graph.Certificates.t option
(** After the first player won the last duel ({!value} = [Some true]
    when [eve_first], [Some false] otherwise): the unrefuted first move
    they ended on — Eve's Σ-witness, or Adam's winning challenge.
    [None] after a first-player loss or an aborted run. *)

val proposer_stats : t -> Lph_boolean.Solver.stats
(** CDCL counters of the outermost proposer fork. *)

val shared_stats : t -> Lph_boolean.Solver.stats
(** CDCL counters of the shared {!Game_sat} instance (the refuter). *)

val table_entries : t -> int
(** Tabulated ball configurations of the underlying compiled CNF. *)

val cached_instances : unit -> int
(** Number of duel instances currently cached (see
    {!Game_sat.cached_instances}; this cache is keyed the same way plus
    the first player). *)

val evict_graph : uid:int -> int
(** Drop every cached duel for the graph with this
    {!Lph_graph.Labeled_graph.uid}; returns how many entries went. The
    scheduler's eviction hook, paired with {!Game_sat.evict_graph}. *)
