module G = Lph_graph.Labeled_graph
module LA = Lph_machine.Local_algo
module Gather = Lph_machine.Gather

type t = {
  name : string;
  max_degree : int;
  max_label_len : int;
  allowed : centre:string -> neighbours:string list -> bool;
}

let node_in_domain t g u =
  G.degree g u <= t.max_degree && String.length (G.label g u) <= t.max_label_len

let in_domain t g = G.fold_nodes g ~init:true ~f:(fun acc u -> acc && node_in_domain t g u)

let holds t g =
  in_domain t g
  && G.fold_nodes g ~init:true ~f:(fun acc u ->
         acc
         && t.allowed ~centre:(G.label g u)
              ~neighbours:
                (List.sort compare
                   (G.fold_neighbours g u ~init:[] ~f:(fun ls v -> G.label g v :: ls))))

let decider t =
  Gather.algo ~name:("lcl-" ^ t.name) ~radius:1 ~levels:0 ~decide:(fun ctx ball ->
      ctx.LA.charge (List.length ball.Gather.entries);
      let neighbours =
        List.sort compare
          (List.filter_map
             (fun e -> if e.Gather.dist = 1 then Some e.Gather.label else None)
             ball.Gather.entries)
      in
      ctx.LA.degree <= t.max_degree
      && String.length ctx.LA.label <= t.max_label_len
      && t.allowed ~centre:ctx.LA.label ~neighbours)

let decode_color label = Lph_util.Bitstring.to_int label

let proper_coloring ~delta ~colors =
  if colors < 1 then invalid_arg "Lcl.proper_coloring: need at least one colour";
  let width = max 1 (String.length (Lph_util.Bitstring.of_int (colors - 1))) in
  {
    name = Printf.sprintf "proper-%d-coloring" colors;
    max_degree = delta;
    max_label_len = width;
    allowed =
      (fun ~centre ~neighbours ->
        (* labels are fixed-width colour encodings *)
        let ok l = String.length l = width && decode_color l < colors in
        ok centre
        && List.for_all (fun l -> ok l && decode_color l <> decode_color centre) neighbours);
  }

let maximal_independent_set ~delta =
  {
    name = "maximal-independent-set";
    max_degree = delta;
    max_label_len = 1;
    allowed =
      (fun ~centre ~neighbours ->
        match centre with
        | "1" -> not (List.mem "1" neighbours)
        | "0" -> List.mem "1" neighbours
        | _ -> false);
  }

let at_most_one_selected_locally ~delta =
  {
    name = "independent-set";
    max_degree = delta;
    max_label_len = 1;
    allowed =
      (fun ~centre ~neighbours ->
        match centre with
        | "1" -> not (List.mem "1" neighbours)
        | "0" -> true
        | _ -> false);
  }
