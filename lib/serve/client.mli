(** Blocking client for the serve daemon: connect to its Unix-domain
    socket, frame requests in a chosen wire mode, read responses.
    Pipelining is [send] n times then [recv] n times on one connection
    (responses arrive in completion order — match on
    {!Protocol.response.id}); {!request} is the synchronous round
    trip. Not thread-safe: one [t] per thread. *)

type t

val connect : ?wire:Lph_util.Codec.wire -> ?retries:int -> ?seed:int -> socket:string -> unit -> t
(** Connect to a daemon. [wire] (default: the process's
    {!Lph_util.Codec.wire_mode}) picks the frame representation; the
    server answers each frame in the mode it arrived in, so clients in
    different modes can share a daemon. A refused or absent socket is
    retried up to [retries] times (default 0) with {!backoff_ms}
    delays under [seed]; raises [Unix.Unix_error] when the attempts
    are exhausted. *)

val wire : t -> Lph_util.Codec.wire

val send : t -> Protocol.request -> unit

val recv : t -> Protocol.response
(** Next response off the wire. Raises [Error.Error (Protocol_error _)]
    on clean server EOF, [Error.Error (Decode_error _)] on a garbled
    stream. *)

val request : ?retries:int -> ?seed:int -> t -> Protocol.request -> Protocol.response
(** [send] then [recv]: the synchronous round trip. A typed
    [Overloaded] outcome is retried up to [retries] times (default 0)
    with {!backoff_ms} delays under [seed] before being returned;
    every other outcome — including other errors — comes back on the
    first attempt. *)

val backoff_ms : ?base_ms:int -> ?cap_ms:int -> seed:int -> int -> int
(** [backoff_ms ~seed attempt] is the capped exponential backoff delay
    with deterministic seeded jitter:
    [min cap_ms (base_ms * 2^attempt)] (base 5 ms, cap 1000 ms)
    stretched by up to 50% from a pure hash of (seed, attempt). Equal
    inputs give equal delays — retry schedules are reproducible — and
    different seeds decorrelate, so a fleet of retrying clients does
    not stampede. Raises [Invalid_argument] unless
    [1 <= base_ms <= cap_ms]. *)

val close : t -> unit
