(** Blocking client for the serve daemon: connect to its Unix-domain
    socket, frame requests in a chosen wire mode, read responses.
    Pipelining is [send] n times then [recv] n times on one connection
    (responses arrive in completion order — match on
    {!Protocol.response.id}); {!request} is the synchronous round
    trip. Not thread-safe: one [t] per thread. *)

type t

val connect : ?wire:Lph_util.Codec.wire -> socket:string -> unit -> t
(** Connect to a daemon. [wire] (default: the process's
    {!Lph_util.Codec.wire_mode}) picks the frame representation; the
    server answers each frame in the mode it arrived in, so clients in
    different modes can share a daemon. Raises [Unix.Unix_error] when
    nothing listens on [socket]. *)

val wire : t -> Lph_util.Codec.wire

val send : t -> Protocol.request -> unit

val recv : t -> Protocol.response
(** Next response off the wire. Raises [Error.Error (Protocol_error _)]
    on clean server EOF, [Error.Error (Decode_error _)] on a garbled
    stream. *)

val request : t -> Protocol.request -> Protocol.response
(** [send] then [recv]: the synchronous round trip. *)

val close : t -> unit
