(* Blocking client over the Unix-domain socket: one frame out, one
   frame in. Pipelining is [send]*n then [recv]*n on one connection —
   responses come back in completion order, matched on [id]; for
   strictly synchronous use, [request] does one round trip.

   Resilience: [connect] retries refused sockets and [request] retries
   typed [Overloaded] responses, both with capped exponential backoff
   plus deterministic seeded jitter — retry storms from a fleet of
   clients decorrelate, yet a given (seed, attempt) always waits the
   same time, which is what the backoff tests pin down. *)

module P = Protocol
module Codec = Lph_util.Codec
module Error = Lph_util.Error

type t = { fd : Unix.file_descr; wire : Codec.wire }

let what = "Serve_client"

(* ---- seeded backoff -------------------------------------------------

   delay(attempt) = min(cap, base * 2^attempt) * (1 + jitter/2) with
   jitter in [0,1) from a splitmix-style hash of (seed, attempt): pure,
   so schedules are reproducible and testable without sleeping. *)

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let jitter ~seed attempt =
  let h = mix64 (Int64.add (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L) (Int64.of_int attempt)) in
  float_of_int (Int64.to_int (Int64.logand h 0xfffffL)) /. float_of_int 0x100000

let default_base_ms = 5

let default_cap_ms = 1000

let backoff_ms ?(base_ms = default_base_ms) ?(cap_ms = default_cap_ms) ~seed attempt =
  if base_ms < 1 || cap_ms < base_ms then invalid_arg "Client.backoff_ms: bad base/cap";
  let attempt = max 0 attempt in
  let raw =
    if attempt >= 30 then cap_ms
    else min cap_ms (base_ms * (1 lsl attempt))
  in
  let ms = float_of_int raw *. (1. +. (jitter ~seed attempt /. 2.)) in
  int_of_float (Float.round ms)

let sleep_ms ms = if ms > 0 then Thread.delay (float_of_int ms /. 1000.)

let connect ?wire ?(retries = 0) ?(seed = 0) ~socket () =
  let wire = match wire with Some w -> w | None -> Codec.wire_mode () in
  let rec attempt k =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> { fd; wire }
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (match e with
        | Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN), _, _)
          when k < retries ->
            sleep_ms (backoff_ms ~seed k);
            attempt (k + 1)
        | e -> raise e)
  in
  attempt 0

let wire t = t.wire

let send t req = P.write_frame t.fd ~wire:t.wire P.request_codec req

let recv t =
  match P.read_frame t.fd with
  | None -> Error.protocol_error ~what "server closed the connection"
  | Some (wire, payload) -> P.parse ~wire P.response_codec payload

let request ?(retries = 0) ?(seed = 0) t req =
  let rec attempt k =
    send t req;
    let resp = recv t in
    match resp.P.outcome with
    | Result.Error (Error.Overloaded _) when k < retries ->
        sleep_ms (backoff_ms ~seed k);
        attempt (k + 1)
    | _ -> resp
  in
  attempt 0

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
