(* Blocking client over the Unix-domain socket: one frame out, one
   frame in. Pipelining is [send]*n then [recv]*n on one connection —
   responses come back in completion order, matched on [id]; for
   strictly synchronous use, [request] does one round trip. *)

module P = Protocol
module Codec = Lph_util.Codec
module Error = Lph_util.Error

type t = { fd : Unix.file_descr; wire : Codec.wire }

let what = "Serve_client"

let connect ?wire ~socket () =
  let wire = match wire with Some w -> w | None -> Codec.wire_mode () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; wire }

let wire t = t.wire

let send t req = P.write_frame t.fd ~wire:t.wire P.request_codec req

let recv t =
  match P.read_frame t.fd with
  | None -> Error.protocol_error ~what "server closed the connection"
  | Some (wire, payload) -> P.parse ~wire P.response_codec payload

let request t req =
  send t req;
  recv t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
