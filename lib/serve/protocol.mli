(** The hierarchy-as-a-service wire protocol: request/response codecs
    on the {!Lph_util.Codec} layer plus the frame format the daemon and
    its clients speak.

    Requests name properties and instances from a {e closed catalog}
    (graph families by parameters, properties by arbiter) rather than
    shipping code; the server materialises both, so two clients naming
    the same (property, graph) share one compiled {!Lph_hierarchy.Game_sat}
    /{!Lph_hierarchy.Game_cegar} instance and one set of
    {!Lph_graph.Neighborhood} memos.

    A frame is one mode byte ([{'P'}] packed, [{'B'}] bits — per frame,
    so one connection can mix wire modes), a 4-byte big-endian payload
    length (capped at {!max_frame}), and the payload encoded in that
    mode. Malformed frames and payloads surface as
    [Error.Error (Decode_error _)]; servable-range violations (a
    2-node cycle, a 100-coloring) as [Protocol_error] — both typed, so
    a daemon can answer them instead of dying. *)

type graph_spec =
  | Cycle of int
  | Path of int
  | Complete of int
  | Star of int
  | Grid of int * int  (** rows, cols *)
  | Torus of int * int  (** rows, cols; both at least 3 *)
  | Expander of { n : int; cycles : int; seed : int }
      (** {!Lph_graph.Generators.expander} seeded deterministically:
          the same spec names the same graph on every server *)

type property =
  | Coloring of int  (** Σ1: {!Lph_hierarchy.Candidates.color_verifier} *)
  | Robust_two_col
      (** Σ2: {!Lph_hierarchy.Candidates.robust_two_col_verifier} *)
  | Raising_probe
      (** diagnostic: a 0-level arbiter that raises an untyped
          exception on every evaluation — the target of the
          scheduler-hardening regression tests, which require its
          failure to come back as a typed error response for that
          request only *)

type query =
  | Accepts of Lph_hierarchy.Game.player
      (** game value: [Eve] first asks the Σℓ question
          ({!Lph_hierarchy.Game.sigma_accepts}), [Adam] first the Πℓ one *)
  | Check of Lph_graph.Certificates.t list
      (** run the arbiter on explicit certificates, one assignment per
          level — the certified-answer path fault campaigns attack *)

type request = {
  id : int;  (** echoed in the response; non-negative *)
  engine : Lph_hierarchy.Game.engine;
  property : property;
  graph : graph_spec;
  query : query;
}

type response = {
  id : int;  (** the request's id, or 0 for undecodable requests *)
  outcome : (bool, Lph_util.Error.t) result;
  cache_hit : bool;  (** the (property, graph) entry was already warm *)
  micros : int;  (** server-side answer time, microseconds *)
}

(** {1 Catalog materialisation} *)

val build_graph : graph_spec -> Lph_graph.Labeled_graph.t
(** Build the named graph (all labels ["1"], except expanders' seeded
    random labels). Raises [Error.Error (Protocol_error _)] for specs
    outside the servable range ([max_request_nodes] nodes, degenerate
    parameters). *)

val arbiter : property -> Lph_hierarchy.Arbiter.t
(** The property's arbiter; its [levels] field is the expected length
    of a [Check] certificate list. Raises [Protocol_error] for
    colorings outside arity 1..8. *)

val universes : property -> Lph_hierarchy.Game.universe list
(** The property's per-level certificate universes, in move order. *)

val property_name : property -> string
val spec_to_string : graph_spec -> string

val key : request -> string
(** The scheduler's batching key: property and graph spec, canonically
    rendered — requests with equal keys share compiled instances. *)

(** {1 Codecs and framing} *)

val request_codec : request Lph_util.Codec.t
val response_codec : response Lph_util.Codec.t

val max_frame : int
(** Payload byte cap (16 MiB); longer frames are refused on both ends. *)

val mode_char : Lph_util.Codec.wire -> char

val frame : wire:Lph_util.Codec.wire -> 'a Lph_util.Codec.t -> 'a -> string
(** A complete frame: mode byte, length, payload in [wire]'s
    representation. *)

val unframe : 'a Lph_util.Codec.t -> string -> 'a * Lph_util.Codec.wire
(** Decode one complete frame, requiring exact consumption. Raises
    [Error.Error (Decode_error _)] on malformed input. *)

val parse : wire:Lph_util.Codec.wire -> 'a Lph_util.Codec.t -> string -> 'a
(** Decode a bare payload in the given wire mode. *)

(** {1 File-descriptor framing}

    EINTR-safe exact reads and writes; what the server's connection
    threads and the blocking client run on. *)

val write_frame : Unix.file_descr -> wire:Lph_util.Codec.wire -> 'a Lph_util.Codec.t -> 'a -> unit

val read_frame : Unix.file_descr -> (Lph_util.Codec.wire * string) option
(** One frame off the descriptor: its wire mode and undecoded payload
    ([None] at clean EOF on a frame boundary). Raises
    [Error.Error (Decode_error _)] on a bad mode byte, an over-cap
    length, or truncation inside a frame. *)
