(* The hierarchy-as-a-service wire protocol.

   A request names a property and an instance from a CLOSED CATALOG
   (graph families by parameters, properties by arbiter) instead of
   shipping code: the server materialises both, which is what makes the
   per-(arbiter, graph) compile caches shareable across requests — two
   clients asking about [Coloring 3] on [Cycle 12] hit the same
   {!Game_sat} instance because they named it the same way.

   Framing: one mode byte ('P' packed / 'B' bits, per frame so a
   connection can mix wire modes), a 4-byte big-endian payload length,
   then the payload in that mode's {!Lph_util.Codec} representation.
   Every decoder failure is a typed {!Lph_util.Error.t} — malformed
   bytes can reject a request but never kill the daemon. *)

module Codec = Lph_util.Codec
module Error = Lph_util.Error
module G = Lph_graph.Labeled_graph
module Gen = Lph_graph.Generators
module Game = Lph_hierarchy.Game
module Arbiter = Lph_hierarchy.Arbiter
module Candidates = Lph_hierarchy.Candidates

type graph_spec =
  | Cycle of int
  | Path of int
  | Complete of int
  | Star of int
  | Grid of int * int
  | Torus of int * int
  | Expander of { n : int; cycles : int; seed : int }

type property = Coloring of int | Robust_two_col | Raising_probe

type query = Accepts of Game.player | Check of Lph_graph.Certificates.t list

type request = {
  id : int;
  engine : Game.engine;
  property : property;
  graph : graph_spec;
  query : query;
}

type response = {
  id : int;
  outcome : (bool, Error.t) result;
  cache_hit : bool;
  micros : int;
}

(* ---- catalog ------------------------------------------------------- *)

let what = "Serve_protocol"

(* A daemon builds graphs on demand, so reject sizes a request could
   use to exhaust the process — far above anything the SAT/CEGAR
   engines could answer anyway. *)
let max_request_nodes = 1 lsl 20

let spec_to_string = function
  | Cycle n -> Printf.sprintf "cycle-%d" n
  | Path n -> Printf.sprintf "path-%d" n
  | Complete n -> Printf.sprintf "complete-%d" n
  | Star n -> Printf.sprintf "star-%d" n
  | Grid (r, c) -> Printf.sprintf "grid-%dx%d" r c
  | Torus (r, c) -> Printf.sprintf "torus-%dx%d" r c
  | Expander { n; cycles; seed } -> Printf.sprintf "expander-%d-c%d-s%d" n cycles seed

let guard spec ok =
  if not ok then
    Error.protocol_error ~what "graph spec %s is out of the servable range" (spec_to_string spec)

let build_graph spec =
  (match spec with
  | Cycle n -> guard spec (n >= 3 && n <= max_request_nodes)
  | Path n | Complete n | Star n -> guard spec (n >= 1 && n <= max_request_nodes)
  | Grid (r, c) | Torus (r, c) ->
      guard spec (r >= 1 && c >= 1 && r * c <= max_request_nodes);
      (match spec with Torus _ -> guard spec (r >= 3 && c >= 3) | _ -> ())
  | Expander { n; cycles; seed = _ } ->
      guard spec (n >= 3 && n <= max_request_nodes && cycles >= 1 && cycles <= 8));
  try
    match spec with
    | Cycle n -> Gen.cycle n
    | Path n -> Gen.path n
    | Complete n -> Gen.complete n
    | Star n -> Gen.star n
    | Grid (r, c) -> Gen.grid ~rows:r ~cols:c ()
    | Torus (r, c) -> Gen.torus ~rows:r ~cols:c ()
    | Expander { n; cycles; seed } ->
        Gen.expander ~rng:(Random.State.make [| seed |]) ~n ~cycles ()
  with G.Invalid d | Invalid_argument d ->
    Error.protocol_error ~what "graph spec %s is not constructible: %s" (spec_to_string spec) d

let property_name = function
  | Coloring k -> Printf.sprintf "%d-coloring" k
  | Robust_two_col -> "robust-2-coloring"
  | Raising_probe -> "raising-probe"

let arbiter = function
  | Coloring k ->
      if k < 1 || k > 8 then
        Error.protocol_error ~what "coloring arity %d is out of the servable range" k;
      Arbiter.of_local_algo ~id_radius:(if k = 2 then 1 else 2) (Candidates.color_verifier k)
  | Robust_two_col -> Arbiter.of_local_algo ~id_radius:1 Candidates.robust_two_col_verifier
  | Raising_probe ->
      (* A diagnostic arbiter that raises an untyped exception on every
         evaluation: the catalog entry the scheduler-hardening
         regression tests aim at a live daemon. Its failure must come
         back as a typed error response for that request alone. *)
      {
        Arbiter.name = "raising-probe";
        levels = 0;
        id_radius = 0;
        cert_bound = None;
        locality = Arbiter.Opaque;
        verdicts = None;
        checker = Arbiter.opaque_checker;
        accepts = (fun _ ~ids:_ ~certs:_ -> failwith "raising-probe: deliberate arbiter failure");
      }

let universes = function
  | Coloring k -> [ Candidates.color_universe k ]
  | Robust_two_col -> [ Candidates.color_universe 2; Candidates.color_universe 2 ]
  | Raising_probe -> []

let key req = property_name req.property ^ "@" ^ spec_to_string req.graph

(* ---- codecs --------------------------------------------------------- *)

let enc_int b n = Codec.enc Codec.int b n
let dec_int s p = Codec.dec Codec.int s p
let enc_str b v = Codec.enc Codec.string b v
let dec_str s p = Codec.dec Codec.string s p
let enc_bool b v = Codec.enc Codec.bool b v
let dec_bool s p = Codec.dec Codec.bool s p

let bad_tag field tag = Error.decode_error ~what "unknown %s tag %d" field tag

let graph_spec_codec =
  Codec.custom
    ~enc:(fun b spec ->
      match spec with
      | Cycle n -> enc_int b 0; enc_int b n
      | Path n -> enc_int b 1; enc_int b n
      | Complete n -> enc_int b 2; enc_int b n
      | Star n -> enc_int b 3; enc_int b n
      | Grid (r, c) -> enc_int b 4; enc_int b r; enc_int b c
      | Torus (r, c) -> enc_int b 5; enc_int b r; enc_int b c
      | Expander { n; cycles; seed } ->
          enc_int b 6; enc_int b n; enc_int b cycles; enc_int b seed)
    ~dec:(fun s p ->
      let tag, p = dec_int s p in
      match tag with
      | 0 -> let n, p = dec_int s p in (Cycle n, p)
      | 1 -> let n, p = dec_int s p in (Path n, p)
      | 2 -> let n, p = dec_int s p in (Complete n, p)
      | 3 -> let n, p = dec_int s p in (Star n, p)
      | 4 ->
          let r, p = dec_int s p in
          let c, p = dec_int s p in
          (Grid (r, c), p)
      | 5 ->
          let r, p = dec_int s p in
          let c, p = dec_int s p in
          (Torus (r, c), p)
      | 6 ->
          let n, p = dec_int s p in
          let cycles, p = dec_int s p in
          let seed, p = dec_int s p in
          (Expander { n; cycles; seed }, p)
      | t -> bad_tag "graph spec" t)

let property_codec =
  Codec.custom
    ~enc:(fun b prop ->
      match prop with
      | Coloring k -> enc_int b 0; enc_int b k
      | Robust_two_col -> enc_int b 1
      | Raising_probe -> enc_int b 2)
    ~dec:(fun s p ->
      let tag, p = dec_int s p in
      match tag with
      | 0 -> let k, p = dec_int s p in (Coloring k, p)
      | 1 -> (Robust_two_col, p)
      | 2 -> (Raising_probe, p)
      | t -> bad_tag "property" t)

let engine_tag : Game.engine -> int = function
  | `Auto -> 0
  | `Exhaustive -> 1
  | `Pruned -> 2
  | `Sat -> 3
  | `Cegar -> 4

let engine_codec =
  Codec.custom
    ~enc:(fun b e -> enc_int b (engine_tag e))
    ~dec:(fun s p ->
      let tag, p = dec_int s p in
      match tag with
      | 0 -> (`Auto, p)
      | 1 -> (`Exhaustive, p)
      | 2 -> (`Pruned, p)
      | 3 -> (`Sat, p)
      | 4 -> (`Cegar, p)
      | t -> bad_tag "engine" t)

let certs_codec = Codec.list (Codec.map Array.of_list Array.to_list (Codec.list Codec.string))

let query_codec =
  Codec.custom
    ~enc:(fun b q ->
      match q with
      | Accepts Game.Eve -> enc_int b 0
      | Accepts Game.Adam -> enc_int b 1
      | Check certs -> enc_int b 2; Codec.enc certs_codec b certs)
    ~dec:(fun s p ->
      let tag, p = dec_int s p in
      match tag with
      | 0 -> (Accepts Game.Eve, p)
      | 1 -> (Accepts Game.Adam, p)
      | 2 ->
          let certs, p = Codec.dec certs_codec s p in
          (Check certs, p)
      | t -> bad_tag "query" t)

let request_codec =
  Codec.custom
    ~enc:(fun b (r : request) ->
      enc_int b r.id;
      Codec.enc engine_codec b r.engine;
      Codec.enc property_codec b r.property;
      Codec.enc graph_spec_codec b r.graph;
      Codec.enc query_codec b r.query)
    ~dec:(fun s p ->
      let id, p = dec_int s p in
      let engine, p = Codec.dec engine_codec s p in
      let property, p = Codec.dec property_codec s p in
      let graph, p = Codec.dec graph_spec_codec s p in
      let query, p = Codec.dec query_codec s p in
      ({ id; engine; property; graph; query }, p))

(* Protocol_error round/node contexts are node/round indices, never
   negative in practice; a negative one is dropped rather than let
   [Codec.int] (non-negative) refuse to encode a response. *)
let enc_opt_nat b = function
  | Some n when n >= 0 -> enc_bool b true; enc_int b n
  | _ -> enc_bool b false

let dec_opt_nat s p =
  let present, p = dec_bool s p in
  if present then
    let n, p = dec_int s p in
    (Some n, p)
  else (None, p)

let error_codec =
  Codec.custom
    ~enc:(fun b (e : Error.t) ->
      match e with
      | Error.Decode_error { what; detail } -> enc_int b 0; enc_str b what; enc_str b detail
      | Error.Protocol_error { what; detail; round; node } ->
          enc_int b 1; enc_str b what; enc_str b detail; enc_opt_nat b round; enc_opt_nat b node
      | Error.Resource_exhausted { what; limit; detail } ->
          enc_int b 2; enc_str b what; enc_int b (max 0 limit); enc_str b detail
      | Error.Overloaded { what; detail } -> enc_int b 3; enc_str b what; enc_str b detail
      | Error.Deadline_exceeded { what; deadline_ms; detail } ->
          enc_int b 4; enc_str b what; enc_int b (max 0 deadline_ms); enc_str b detail)
    ~dec:(fun s p ->
      let tag, p = dec_int s p in
      match tag with
      | 0 ->
          let what, p = dec_str s p in
          let detail, p = dec_str s p in
          (Error.Decode_error { what; detail }, p)
      | 1 ->
          let what, p = dec_str s p in
          let detail, p = dec_str s p in
          let round, p = dec_opt_nat s p in
          let node, p = dec_opt_nat s p in
          (Error.Protocol_error { what; detail; round; node }, p)
      | 2 ->
          let what, p = dec_str s p in
          let limit, p = dec_int s p in
          let detail, p = dec_str s p in
          (Error.Resource_exhausted { what; limit; detail }, p)
      | 3 ->
          let what, p = dec_str s p in
          let detail, p = dec_str s p in
          (Error.Overloaded { what; detail }, p)
      | 4 ->
          let what, p = dec_str s p in
          let deadline_ms, p = dec_int s p in
          let detail, p = dec_str s p in
          (Error.Deadline_exceeded { what; deadline_ms; detail }, p)
      | t -> bad_tag "error" t)

let response_codec =
  Codec.custom
    ~enc:(fun b (r : response) ->
      enc_int b r.id;
      (match r.outcome with
      | Result.Ok v -> enc_int b 0; enc_bool b v
      | Result.Error e -> enc_int b 1; Codec.enc error_codec b e);
      enc_bool b r.cache_hit;
      enc_int b r.micros)
    ~dec:(fun s p ->
      let id, p = dec_int s p in
      let tag, p = dec_int s p in
      let outcome, p =
        match tag with
        | 0 ->
            let v, p = dec_bool s p in
            (Result.Ok v, p)
        | 1 ->
            let e, p = Codec.dec error_codec s p in
            (Result.Error e, p)
        | t -> bad_tag "outcome" t
      in
      let cache_hit, p = dec_bool s p in
      let micros, p = dec_int s p in
      ({ id; outcome; cache_hit; micros }, p))

(* ---- framing -------------------------------------------------------- *)

let max_frame = 1 lsl 24

let mode_char = function Codec.Packed -> 'P' | Codec.Bits -> 'B'

let mode_of_char = function
  | 'P' -> Codec.Packed
  | 'B' -> Codec.Bits
  | c -> Error.decode_error ~what "unknown frame mode byte %C" c

let payload ~wire codec v =
  match wire with Codec.Packed -> Codec.encode codec v | Codec.Bits -> Codec.encode_bits codec v

let parse ~wire codec s =
  match wire with Codec.Packed -> Codec.decode codec s | Codec.Bits -> Codec.decode_bits codec s

let frame ~wire codec v =
  let body = payload ~wire codec v in
  let len = String.length body in
  if len > max_frame then
    Error.resource_exhausted ~what ~limit:max_frame "frame payload of %d bytes over the cap" len;
  let b = Buffer.create (len + 5) in
  Buffer.add_char b (mode_char wire);
  Buffer.add_uint8 b ((len lsr 24) land 0xff);
  Buffer.add_uint8 b ((len lsr 16) land 0xff);
  Buffer.add_uint8 b ((len lsr 8) land 0xff);
  Buffer.add_uint8 b (len land 0xff);
  Buffer.add_string b body;
  Buffer.contents b

let unframe codec s =
  if String.length s < 5 then Error.decode_error ~what "truncated frame header (%d bytes)" (String.length s);
  let wire = mode_of_char s.[0] in
  let len =
    (Char.code s.[1] lsl 24) lor (Char.code s.[2] lsl 16) lor (Char.code s.[3] lsl 8)
    lor Char.code s.[4]
  in
  if len > max_frame then Error.decode_error ~what "frame length %d over the %d cap" len max_frame;
  if String.length s <> 5 + len then
    Error.decode_error ~what "frame length %d does not match payload of %d bytes" len
      (String.length s - 5);
  (parse ~wire codec (String.sub s 5 len), wire)

(* ---- fd-level framing (EINTR-safe exact reads/writes) --------------- *)

let rec write_all fd s pos len =
  if len > 0 then begin
    let n = try Unix.write_substring fd s pos len with Unix.Unix_error (Unix.EINTR, _, _) -> 0 in
    write_all fd s (pos + n) (len - n)
  end

let write_frame fd ~wire codec v =
  let f = frame ~wire codec v in
  write_all fd f 0 (String.length f)

(* [None] on clean EOF at a frame boundary; truncation inside a frame
   is a decode error — the peer died mid-message. *)
let read_exact fd buf pos len =
  let rec go pos len =
    if len = 0 then true
    else
      let n = try Unix.read fd buf pos len with Unix.Unix_error (Unix.EINTR, _, _) -> -1 in
      if n = 0 then
        if pos = 0 then false
        else Error.decode_error ~what "connection closed mid-frame (%d bytes short)" len
      else go (pos + max 0 n) (len - max 0 n)
  in
  go pos len

let read_frame fd =
  let header = Bytes.create 5 in
  if not (read_exact fd header 0 5) then None
  else begin
    let wire = mode_of_char (Bytes.get header 0) in
    let len =
      (Char.code (Bytes.get header 1) lsl 24)
      lor (Char.code (Bytes.get header 2) lsl 16)
      lor (Char.code (Bytes.get header 3) lsl 8)
      lor Char.code (Bytes.get header 4)
    in
    if len > max_frame then
      Error.decode_error ~what "frame length %d over the %d cap" len max_frame;
    let body = Bytes.create len in
    if len > 0 && not (read_exact fd body 0 len) then
      Error.decode_error ~what "connection closed mid-frame (%d bytes short)" len;
    Some (wire, Bytes.unsafe_to_string body)
  end
