(* The accept loop: a Unix-domain-socket front end over {!Scheduler}.

   One listener thread accepts; each connection gets a reader thread
   that parses frames and submits requests, replies are written back by
   whichever scheduler worker finished the job (a per-connection write
   mutex keeps frames whole). A connection's requests are answered in
   completion order, not arrival order — clients match on [id].

   Failure discipline: a payload that does not decode gets a typed
   error RESPONSE (the frame boundary is intact, the connection keeps
   going); a broken frame — bad mode byte, over-cap length, truncation
   — gets a best-effort error response and the connection is closed,
   because stream synchronisation is gone. Nothing a client sends
   reaches an exception the daemon does not catch. *)

module P = Protocol
module Codec = Lph_util.Codec
module Error = Lph_util.Error

type conn = {
  fd : Unix.file_descr;
  write_mutex : Mutex.t;
  mutable thread : Thread.t option;
  mutable last_active : float;  (** last frame read off this connection *)
}

type t = {
  sched : Scheduler.t;
  listen_fd : Unix.file_descr;
  path : string;
  conns : (int, conn) Hashtbl.t;
  conns_mutex : Mutex.t;
  mutable next_conn : int;
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
  mutable reaper_thread : Thread.t option;
}

(* Idle-connection reaping: unset or empty means connections live until
   they close themselves. *)
let idle_ms_env () =
  match Sys.getenv_opt "LPH_SERVE_IDLE_MS" with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> Some v
      | _ -> invalid_arg "Server: LPH_SERVE_IDLE_MS must be a positive integer")

let send conn ~wire resp =
  Mutex.lock conn.write_mutex;
  (try P.write_frame conn.fd ~wire P.response_codec resp
   with Unix.Unix_error _ | Error.Error _ -> () (* peer gone; reply dropped *));
  Mutex.unlock conn.write_mutex

let conn_loop t id conn () =
  let rec loop () =
    match P.read_frame conn.fd with
    | None -> () (* clean EOF *)
    | Some (wire, payload) ->
        conn.last_active <- Unix.gettimeofday ();
        (match P.parse ~wire P.request_codec payload with
        | req -> Scheduler.submit t.sched req ~reply:(fun resp -> send conn ~wire resp)
        | exception Error.Error err ->
            send conn ~wire
              { P.id = 0; outcome = Result.Error err; cache_hit = false; micros = 0 });
        loop ()
    | exception Error.Error err ->
        (* framing broken: answer once, then drop the connection *)
        send conn ~wire:Codec.Packed
          { P.id = 0; outcome = Result.Error err; cache_hit = false; micros = 0 }
    | exception Unix.Unix_error _ -> () (* connection torn down *)
  in
  loop ();
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.lock t.conns_mutex;
  Hashtbl.remove t.conns id;
  Mutex.unlock t.conns_mutex

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        let conn =
          { fd; write_mutex = Mutex.create (); thread = None; last_active = Unix.gettimeofday () }
        in
        Mutex.lock t.conns_mutex;
        let id = t.next_conn in
        t.next_conn <- id + 1;
        if t.stopping then begin
          Mutex.unlock t.conns_mutex;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else begin
          Hashtbl.replace t.conns id conn;
          conn.thread <- Some (Thread.create (conn_loop t id conn) ());
          Mutex.unlock t.conns_mutex
        end;
        loop ()
    | exception Unix.Unix_error _ -> () (* listener closed: stop *)
  in
  loop ()

(* Sweep connections whose last frame is older than the idle bound and
   shut their read side down; the reader thread sees EOF and runs its
   normal teardown (in-flight replies drain first). Short sleeps keep
   [stop] responsive. *)
let reaper_loop t idle_ms () =
  let idle_s = float_of_int idle_ms /. 1000. in
  while not t.stopping do
    Thread.delay (min 0.05 (idle_s /. 2.));
    let now = Unix.gettimeofday () in
    Mutex.lock t.conns_mutex;
    Hashtbl.iter
      (fun _ conn ->
        if now -. conn.last_active > idle_s then
          try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      t.conns;
    Mutex.unlock t.conns_mutex
  done

let start ?cache_mb ?queue_cap ?idle_ms ~socket () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists socket then Unix.unlink socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX socket);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let idle_ms = match idle_ms with Some _ as v -> v | None -> idle_ms_env () in
  (match idle_ms with
  | Some v when v < 1 -> invalid_arg "Server.start: idle_ms must be positive"
  | _ -> ());
  let t =
    {
      sched = Scheduler.create ?cache_mb ?queue_cap ();
      listen_fd;
      path = socket;
      conns = Hashtbl.create 8;
      conns_mutex = Mutex.create ();
      next_conn = 0;
      stopping = false;
      accept_thread = None;
      reaper_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  (match idle_ms with
  | Some ms -> t.reaper_thread <- Some (Thread.create (reaper_loop t ms) ())
  | None -> ());
  t

let socket_path t = t.path

let stats t = Scheduler.stats t.sched

let scheduler t = t.sched

(* shutdown-then-close wakes threads blocked in read/accept (close
   alone does not interrupt a blocked read on Linux) *)
let nudge fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    nudge t.listen_fd;
    (match t.accept_thread with
    | Some th ->
        t.accept_thread <- None;
        Thread.join th
    | None -> ());
    (match t.reaper_thread with
    | Some th ->
        t.reaper_thread <- None;
        Thread.join th
    | None -> ());
    let threads =
      Mutex.protect t.conns_mutex (fun () ->
          Hashtbl.fold
            (fun _ conn acc ->
              (try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ());
              match conn.thread with Some th -> th :: acc | None -> acc)
            t.conns [])
    in
    (* readers see EOF, drain their in-flight replies, close, exit *)
    List.iter Thread.join threads;
    Scheduler.shutdown t.sched;
    if Sys.file_exists t.path then try Unix.unlink t.path with Unix.Unix_error _ | Sys_error _ -> ()
  end
