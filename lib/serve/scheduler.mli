(** The daemon's batching scheduler. Connection threads {!submit}
    requests; one dispatcher thread drains them in batches, groups each
    batch by {!Protocol.key} (same property, same graph spec) and runs
    the groups in parallel over the shared {!Lph_util.Parallel} domain
    pool — requests within a group sequentially, against one
    materialised (graph, identifiers, arbiter) entry, so the
    per-(arbiter, graph) {!Lph_hierarchy.Game_sat} /
    {!Lph_hierarchy.Game_cegar} compile caches and the
    {!Lph_graph.Neighborhood} memos are shared across requests and
    connections by construction.

    Entries are LRU-bounded by estimated resident bytes
    ([LPH_SERVE_CACHE_MB], default 256): after every batch the touched
    entries are re-costed (graph size plus compiled ball tables) and
    least-recently-used entries are evicted — through
    {!Lph_hierarchy.Game_sat.evict_graph},
    {!Lph_hierarchy.Game_cegar.evict_graph} and
    {!Lph_graph.Neighborhood.evict}, and by dropping the graph
    reference — until the estimate is back under the bound (the
    most-recent entry is always kept, so a single oversized instance
    cannot thrash). *)

type t

val create : ?cache_mb:int -> ?queue_cap:int -> unit -> t
(** Start a scheduler (spawns the dispatcher thread, prewarms the
    shared domain pool). [cache_mb] overrides [LPH_SERVE_CACHE_MB];
    [queue_cap] overrides [LPH_SERVE_QUEUE_CAP] (default: unbounded)
    and bounds how many jobs may wait in the queue — submissions beyond
    it are refused with a typed [Overloaded] response. Raises
    [Invalid_argument] when any is non-positive. *)

val submit : ?deadline_ms:int -> t -> Protocol.request -> reply:(Protocol.response -> unit) -> unit
(** Enqueue a request. [reply] is invoked exactly once, from a
    dispatcher-pool thread; it must not block for long and must not
    raise. After {!shutdown}, replies immediately with a
    [Protocol_error] outcome.

    [deadline_ms] (default: the ambient [LPH_SERVE_TIMEOUT_MS], unset
    meaning none) is the request's time budget from submission: a job
    whose deadline has passed when a worker picks it up is answered
    with a typed [Deadline_exceeded] response instead of being run.
    [0] expires immediately — the deterministic handle for tests. A
    full queue never blocks: beyond [queue_cap] the reply is a typed
    [Overloaded] response, so the serve path stays live under load it
    cannot absorb. *)

val shutdown : t -> unit
(** Stop accepting work, finish the batches already queued (every
    submitted request is still answered), and join the dispatcher. *)

type stats = {
  requests : int;
  batches : int;
  cache_hits : int;  (** requests served from a warm (property, graph) entry *)
  cache_misses : int;  (** requests that had to materialise their entry *)
  evictions : int;  (** entries dropped by the LRU bound *)
  entries : int;  (** entries currently resident *)
  overloads : int;  (** submissions refused by the queue cap *)
  expired : int;  (** jobs answered [Deadline_exceeded] unrun *)
}

val stats : t -> stats

val cap_bytes : t -> int
(** The configured LRU bound, in bytes. *)
