(* The batching scheduler: the part of the daemon that turns a stream
   of independent queries into cache-friendly work.

   Requests are collected into a queue by connection threads and
   drained by ONE dispatcher thread, which groups the drained batch by
   {!Protocol.key} — same property, same graph spec — and dispatches
   the groups over the shared {!Lph_util.Parallel} pool. Grouping is
   what makes the caches pay: every request in a group runs against the
   same materialised graph, identifier assignment and arbiter, so the
   per-(arbiter, graph) {!Game_sat}/{!Game_cegar} compile caches and
   the {!Neighborhood} memos are hit by construction, across requests
   and across connections. Requests within a group run sequentially
   (the compiled instance's solver serialises them anyway); distinct
   groups run in parallel.

   The entry cache is LRU-BOUNDED by an estimated byte cost
   ([LPH_SERVE_CACHE_MB], default 256): after each batch, entries are
   re-costed from their graph size plus the compiled ball tables
   ({!Game_sat.graph_table_entries}), and least-recently-used entries
   are evicted — dropping the graph reference (which lets the weakly
   keyed {!Neighborhood} memos die) and calling the typed eviction
   hooks on both engine caches — until the estimate is back under the
   bound. A long-lived daemon therefore converges on the working set
   the traffic actually names. *)

module P = Protocol
module Error = Lph_util.Error
module Parallel = Lph_util.Parallel
module G = Lph_graph.Labeled_graph
module N = Lph_graph.Neighborhood
module Identifiers = Lph_graph.Identifiers
module Game = Lph_hierarchy.Game
module Game_sat = Lph_hierarchy.Game_sat
module Game_cegar = Lph_hierarchy.Game_cegar
module Arbiter = Lph_hierarchy.Arbiter

let what = "Serve_scheduler"

type entry = {
  graph : G.t;
  ids : Identifiers.t;
  arbiter : Arbiter.t;
  universes : Game.universe list;
  mutable last_used : int;  (** batch tick of the last request served *)
  mutable cost : int;  (** estimated resident bytes, re-costed per batch *)
}

type job = {
  req : P.request;
  reply : P.response -> unit;
  deadline : (float * int) option;  (** absolute expiry (epoch seconds) and the ms budget *)
}

type stats = {
  requests : int;
  batches : int;
  cache_hits : int;
  cache_misses : int;
  evictions : int;
  entries : int;
  overloads : int;
  expired : int;
}

type t = {
  mutex : Mutex.t;
  wake : Condition.t;
  mutable queue : job list;  (** reversed arrival order *)
  mutable stop : bool;
  cache : (string, entry) Hashtbl.t;
  cap_bytes : int;
  queue_cap : int option;  (** submissions beyond this many queued jobs are refused *)
  mutable s_overloads : int;
  mutable s_expired : int;
  mutable tick : int;
  mutable s_requests : int;
  mutable s_batches : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  mutable dispatcher : Thread.t option;
}

let default_cache_mb = 256

let cache_mb_env () =
  match Sys.getenv_opt "LPH_SERVE_CACHE_MB" with
  | None | Some "" -> default_cache_mb
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some m when m >= 1 -> m
      | _ -> invalid_arg "Scheduler: LPH_SERVE_CACHE_MB must be a positive integer")

(* The ambient per-request deadline: unset or empty means none, [0] is
   a deadline that is already expired at submission (the deterministic
   handle the timeout tests grip). *)
let timeout_ms_env () =
  match Sys.getenv_opt "LPH_SERVE_TIMEOUT_MS" with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 0 -> Some v
      | _ -> invalid_arg "Scheduler: LPH_SERVE_TIMEOUT_MS must be a non-negative integer")

let queue_cap_env () =
  match Sys.getenv_opt "LPH_SERVE_QUEUE_CAP" with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> Some v
      | _ -> invalid_arg "Scheduler: LPH_SERVE_QUEUE_CAP must be a positive integer")

(* ---- cost model ----------------------------------------------------

   An estimate, not an audit: CSR rows and id strings for the graph,
   plus the compiled ball tables on both engine caches at ~128 bytes
   per tabulated configuration (clause + selector footprint). Wrong by
   a constant factor at worst, monotone in reality — which is all an
   LRU bound needs. *)

let graph_bytes g =
  let ids_overhead = 32 * G.card g in
  (16 * G.card g) + (16 * G.num_edges g) + ids_overhead

let entry_cost e =
  graph_bytes e.graph + (128 * Game_sat.graph_table_entries ~uid:(G.uid e.graph))

let evict_entry t key e =
  let uid = G.uid e.graph in
  ignore (Game_sat.evict_graph ~uid);
  ignore (Game_cegar.evict_graph ~uid);
  N.evict e.graph;
  Hashtbl.remove t.cache key;
  t.s_evictions <- t.s_evictions + 1

(* Called with [t.mutex] held, after a batch re-costed its entries.
   Evicts in last-used order until under the bound; entries touched by
   the current tick go last but are not exempt — the bound is a bound. *)
let enforce_cap t =
  let total () = Hashtbl.fold (fun _ e acc -> acc + e.cost) t.cache 0 in
  while total () > t.cap_bytes && Hashtbl.length t.cache > 1 do
    let oldest =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, prev) when prev.last_used <= e.last_used -> acc
          | _ -> Some (key, e))
        t.cache None
    in
    match oldest with Some (key, e) -> evict_entry t key e | None -> ()
  done

(* ---- answering ------------------------------------------------------ *)

let resolve_entry t (req : P.request) =
  let key = P.key req in
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.cache key with
  | Some e ->
      e.last_used <- t.tick;
      t.s_hits <- t.s_hits + 1;
      Mutex.unlock t.mutex;
      Result.Ok (e, true)
  | None -> (
      t.s_misses <- t.s_misses + 1;
      Mutex.unlock t.mutex;
      (* materialise outside the lock: graph construction is real work *)
      match
        let graph = P.build_graph req.graph in
        let arbiter = P.arbiter req.property in
        { graph; ids = Identifiers.make_global graph; arbiter;
          universes = P.universes req.property; last_used = 0; cost = 0 }
      with
      | e ->
          e.cost <- graph_bytes e.graph;
          Mutex.lock t.mutex;
          e.last_used <- t.tick;
          (* a racing dispatcher cannot exist (there is one), but be
             idempotent anyway *)
          let e = match Hashtbl.find_opt t.cache key with Some e' -> e' | None -> Hashtbl.replace t.cache key e; e in
          Mutex.unlock t.mutex;
          Result.Ok (e, false)
      | exception Error.Error err -> Result.Error err)

let answer entry (req : P.request) =
  match req.P.query with
  | P.Accepts player ->
      let value =
        match player with
        | Game.Eve ->
            Game.sigma_accepts ~engine:req.engine entry.arbiter entry.graph ~ids:entry.ids
              ~universes:entry.universes
        | Game.Adam ->
            Game.pi_accepts ~engine:req.engine entry.arbiter entry.graph ~ids:entry.ids
              ~universes:entry.universes
      in
      Result.Ok value
  | P.Check certs ->
      let n = G.card entry.graph in
      let levels = entry.arbiter.Arbiter.levels in
      if List.length certs <> levels then
        Error.protocol_error ~what "check carries %d certificate levels, arbiter %s expects %d"
          (List.length certs) entry.arbiter.Arbiter.name levels;
      List.iteri
        (fun l k ->
          if Array.length k <> n then
            Error.protocol_error ~what
              "level %d certificate assignment covers %d nodes, graph has %d" l (Array.length k) n)
        certs;
      Result.Ok (entry.arbiter.Arbiter.accepts entry.graph ~ids:entry.ids ~certs)

let expired job now =
  match job.deadline with Some (at, _) -> now >= at | None -> false

let run_job t entry hit ({ req; reply; _ } as job) =
  let t0 = Unix.gettimeofday () in
  if expired job t0 then begin
    let ms = match job.deadline with Some (_, ms) -> ms | None -> 0 in
    Mutex.lock t.mutex;
    t.s_expired <- t.s_expired + 1;
    Mutex.unlock t.mutex;
    reply
      {
        P.id = req.P.id;
        outcome =
          Result.Error
            (Error.Deadline_exceeded
               { what; deadline_ms = ms; detail = "request expired before execution" });
        cache_hit = false;
        micros = 0;
      }
  end
  else begin
    let outcome =
      match answer entry req with
      | r -> r
      | exception Error.Error e -> Result.Error e
      | exception e ->
          Result.Error
            (Error.Protocol_error
               { what; detail = "engine failure: " ^ Printexc.to_string e; round = None; node = None })
    in
    let micros = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
    reply { P.id = req.P.id; outcome; cache_hit = hit; micros = max 0 micros }
  end

let fail_job err { req; reply; _ } =
  reply { P.id = req.P.id; outcome = Result.Error err; cache_hit = false; micros = 0 }

(* One drained batch: group by key (arrival order kept inside groups),
   resolve each group's entry, fan the groups out over the domain pool. *)
let process t batch =
  let order = ref [] in
  let groups : (string, job list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun job ->
      let key = P.key job.req in
      match Hashtbl.find_opt groups key with
      | Some jobs -> jobs := job :: !jobs
      | None ->
          Hashtbl.add groups key (ref [ job ]);
          order := key :: !order)
    batch;
  let grouped =
    List.rev_map (fun key -> List.rev !(Hashtbl.find groups key)) !order
  in
  ignore
    (Parallel.map
       (fun jobs ->
         (* One group's failure — typed or not — must stay that group's:
            every job still gets a typed response and the dispatcher
            keeps draining the other groups. *)
         try
           match jobs with
           | [] -> ()
           | first :: _ -> (
               match resolve_entry t first.req with
               | Result.Ok (entry, hit) ->
                   List.iteri (fun i job -> run_job t entry (hit || i > 0) job) jobs
               | Result.Error err -> List.iter (fail_job err) jobs)
         with e ->
           let err =
             match e with
             | Error.Error err -> err
             | e ->
                 Error.Protocol_error
                   {
                     what;
                     detail = "group failure: " ^ Printexc.to_string e;
                     round = None;
                     node = None;
                   }
           in
           List.iter (fun job -> try fail_job err job with _ -> ()) jobs)
       grouped);
  (* re-cost what this batch touched, then enforce the bound *)
  Mutex.lock t.mutex;
  Hashtbl.iter (fun _ e -> if e.last_used = t.tick then e.cost <- entry_cost e) t.cache;
  enforce_cap t;
  Mutex.unlock t.mutex

let dispatch_loop t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while t.queue = [] && not t.stop do
      Condition.wait t.wake t.mutex
    done;
    if t.queue = [] then Mutex.unlock t.mutex (* stopped and drained *)
    else begin
      let batch = List.rev t.queue in
      t.queue <- [];
      t.tick <- t.tick + 1;
      t.s_batches <- t.s_batches + 1;
      t.s_requests <- t.s_requests + List.length batch;
      Mutex.unlock t.mutex;
      (* last-ditch: the per-group handler already answers every job,
         so anything reaching here is re-costing noise — never let it
         kill the dispatcher *)
      (try process t batch with _ -> ());
      loop ()
    end
  in
  loop ()

let create ?cache_mb ?queue_cap () =
  let mb = match cache_mb with Some m -> m | None -> cache_mb_env () in
  if mb < 1 then invalid_arg "Scheduler.create: cache_mb must be positive";
  let queue_cap = match queue_cap with Some _ as c -> c | None -> queue_cap_env () in
  (match queue_cap with
  | Some c when c < 1 -> invalid_arg "Scheduler.create: queue_cap must be positive"
  | _ -> ());
  Parallel.prewarm ();
  let t =
    {
      mutex = Mutex.create ();
      wake = Condition.create ();
      queue = [];
      stop = false;
      cache = Hashtbl.create 16;
      cap_bytes = mb * 1024 * 1024;
      queue_cap;
      s_overloads = 0;
      s_expired = 0;
      tick = 0;
      s_requests = 0;
      s_batches = 0;
      s_hits = 0;
      s_misses = 0;
      s_evictions = 0;
      dispatcher = None;
    }
  in
  t.dispatcher <- Some (Thread.create (dispatch_loop t) ());
  t

let submit ?deadline_ms t req ~reply =
  let deadline_ms = match deadline_ms with Some _ as d -> d | None -> timeout_ms_env () in
  let deadline =
    match deadline_ms with
    | Some ms -> Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.), ms)
    | None -> None
  in
  let job = { req; reply; deadline } in
  Mutex.lock t.mutex;
  if t.stop then begin
    Mutex.unlock t.mutex;
    fail_job
      (Error.Protocol_error { what; detail = "scheduler is shut down"; round = None; node = None })
      job
  end
  else
    match t.queue_cap with
    | Some cap when List.length t.queue >= cap ->
        t.s_overloads <- t.s_overloads + 1;
        Mutex.unlock t.mutex;
        fail_job (Error.Overloaded { what; detail = Printf.sprintf "queue is at its cap of %d" cap })
          job
    | _ ->
        t.queue <- job :: t.queue;
        Condition.signal t.wake;
        Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  match t.dispatcher with
  | Some th ->
      t.dispatcher <- None;
      Thread.join th
  | None -> ()

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      requests = t.s_requests;
      batches = t.s_batches;
      cache_hits = t.s_hits;
      cache_misses = t.s_misses;
      evictions = t.s_evictions;
      entries = Hashtbl.length t.cache;
      overloads = t.s_overloads;
      expired = t.s_expired;
    }
  in
  Mutex.unlock t.mutex;
  s

let cap_bytes t = t.cap_bytes
