(** The daemon front end: a Unix-domain-socket accept loop over
    {!Scheduler}. One listener thread; one reader thread per
    connection; replies written by scheduler workers under a
    per-connection write mutex, in completion order (clients match on
    {!Protocol.response.id}).

    Client-proof by construction: an undecodable payload is answered
    with a typed error response (id 0) and the connection continues; a
    broken frame (bad mode byte, over-cap length, truncation) is
    answered best-effort and the connection dropped — stream
    synchronisation is gone. No client bytes can raise an exception the
    daemon does not catch. *)

type t

val start : ?cache_mb:int -> ?queue_cap:int -> ?idle_ms:int -> socket:string -> unit -> t
(** Bind and listen on a Unix-domain socket path (an existing file at
    that path is unlinked first), start the scheduler and the accept
    thread, and return immediately. [cache_mb] and [queue_cap] as in
    {!Scheduler.create}. [idle_ms] (default: the ambient
    [LPH_SERVE_IDLE_MS], unset meaning never) starts a reaper thread
    that shuts down the read side of connections whose last frame is
    older than the bound — the reader drains its in-flight replies and
    tears down as on a client close, so an abandoned connection cannot
    hold its thread and descriptor forever. SIGPIPE is set to ignore —
    writes to dead peers must surface as catchable [EPIPE], not kill
    the daemon. *)

val stop : t -> unit
(** Stop accepting, wake and join every connection reader, drain the
    scheduler (queued requests are still answered, though replies to
    already-closed connections are dropped), and remove the socket
    file. Idempotent. *)

val socket_path : t -> string

val stats : t -> Scheduler.stats

val scheduler : t -> Scheduler.t
(** The underlying scheduler — for in-process callers that want to
    bypass the socket (the bench harness's serve smoke). *)
