module F = Lph_logic.Formula
module Syntax = Lph_logic.Syntax
module Eval = Lph_logic.Eval
module Str = Lph_graph.Structural
module G = Lph_graph.Labeled_graph
module Gather = Lph_machine.Gather
module LA = Lph_machine.Local_algo
module Game = Lph_hierarchy.Game
module C = Lph_util.Codec

type block = Syntax.quantifier * (F.so_var * int) list

type t = {
  sentence : F.t;
  blocks : block list;
  first : Game.player option;
  radius : int;
  arbiter : Lph_hierarchy.Arbiter.t;
}

(* certificate wire format: one relation fragment per second-order
   variable of the level's block; a fragment is a list of tuples of
   element references (identifier, bit index option) *)
let ref_codec = C.pair C.string (C.option C.int)

let frag_codec = C.list (C.list (C.list ref_codec))

let group_blocks prefix =
  let rec go = function
    | [] -> []
    | (q, r, k) :: rest -> begin
        match go rest with
        | (q', vars) :: blocks when q' = q -> (q, (r, k) :: vars) :: blocks
        | blocks -> (q, [ (r, k) ]) :: blocks
      end
  in
  go prefix

let matrix_of sentence =
  let prefix, matrix = Syntax.so_prefix sentence in
  match matrix with
  | F.Forall (x, psi) when Syntax.is_bf psi -> (group_blocks prefix, x, psi)
  | _ -> invalid_arg "Fagin.Compile: sentence is not in the local second-order hierarchy"

let element_ref repr ids e =
  match Str.of_index repr e with
  | Str.Node v -> (ids.(v), None)
  | Str.Bit (v, i) -> (ids.(v), Some i)

let resolve_ref repr sub ident_to_node (ident, bit) =
  match Hashtbl.find_opt ident_to_node ident with
  | None -> None
  | Some v -> begin
      match bit with
      | None -> Some (Str.to_index repr (Str.Node v))
      | Some i ->
          if i >= 1 && i <= String.length (G.label sub v) then
            Some (Str.to_index repr (Str.Bit (v, i)))
          else None
    end

let decide ~blocks ~x ~psi ~levels (ctx : LA.ctx) ball =
  let sub, ball_ids, ball_certs, centre = Gather.reconstruct ball in
  let repr = Str.of_graph sub in
  ctx.LA.charge (Str.card sub);
  let ident_to_node = Hashtbl.create 16 in
  Array.iteri (fun v ident -> Hashtbl.replace ident_to_node ident v) ball_ids;
  (* collect each level's fragments from every ball member *)
  let all_vars = List.concat_map snd blocks in
  let relations = Hashtbl.create 8 in
  List.iter (fun (r, _) -> Hashtbl.replace relations r Lph_logic.Relation.empty) all_vars;
  List.iteri
    (fun level (_, vars) ->
      List.iter
        (fun j ->
          let parts = Lph_graph.Certificates.split_list ~levels ball_certs.(j) in
          let cert = List.nth parts level in
          match C.decode_bits frag_codec cert with
          | fragments ->
              List.iteri
                (fun vi tuples ->
                  match List.nth_opt vars vi with
                  | None -> ()
                  | Some (r, arity) ->
                      List.iter
                        (fun refs ->
                          if List.length refs = arity then begin
                            let resolved =
                              List.map (resolve_ref repr sub ident_to_node) refs
                            in
                            if List.for_all Option.is_some resolved then begin
                              let tuple = List.map Option.get resolved in
                              ctx.LA.charge arity;
                              Hashtbl.replace relations r
                                (Lph_logic.Relation.add tuple (Hashtbl.find relations r))
                            end
                          end)
                        tuples)
                fragments
          | exception Lph_util.Error.Error (Lph_util.Error.Decode_error _) -> ())
        (G.nodes sub))
    blocks;
  let env =
    Hashtbl.fold (fun r rel env -> Eval.bind_so env r rel) relations Eval.empty_env
  in
  let s = Str.structure repr in
  List.for_all
    (fun a ->
      ctx.LA.charge (Str.card sub);
      Eval.eval s (Eval.bind_fo env x a) psi)
    (Str.node_elements repr centre)

let compile sentence =
  if not (Syntax.is_sentence sentence) then invalid_arg "Fagin.Compile: not a sentence";
  let blocks, x, psi = matrix_of sentence in
  let radius = Syntax.visibility_radius psi in
  let levels = List.length blocks in
  let algo =
    Gather.algo
      ~name:(Printf.sprintf "fagin-arbiter-l%d-r%d" levels radius)
      ~radius:(radius + 1) ~levels
      ~decide:(decide ~blocks ~x ~psi ~levels)
  in
  (* A declared (r,p)-bound for the fragment certificates: a fragment
     holds at most |own elements| * |2r-ball elements|^(k-1) tuples per
     variable, each encoded in O(k * max identifier/index size) bits;
     info^(k+1) with a generous constant dominates this for every block. *)
  let max_arity =
    List.fold_left (fun acc (_, vars) -> List.fold_left (fun a (_, k) -> max a k) acc vars) 1 blocks
  in
  let vars_per_block =
    List.fold_left (fun acc (_, vars) -> max acc (List.length vars)) 1 blocks
  in
  let cert_bound =
    {
      Lph_graph.Certificates.radius = (2 * radius) + 1;
      poly = Lph_util.Poly.monomial ~coeff:(64 * vars_per_block * (max_arity + 1)) ~degree:(max_arity + 1);
    }
  in
  let arbiter = Lph_hierarchy.Arbiter.of_local_algo ~id_radius:(radius + 2) ~cert_bound algo in
  let first =
    match blocks with
    | [] -> None
    | (Syntax.Ex, _) :: _ -> Some Game.Eve
    | (Syntax.All, _) :: _ -> Some Game.Adam
  in
  { sentence; blocks; first; radius; arbiter }

let fragment_universes ?(tuple_filter = fun _ -> true) compiled g ~ids =
  let repr = Str.of_graph g in
  let elements_of_nodes nodes = List.concat_map (Str.node_elements repr) nodes in
  let universe_for_block vars : Game.universe =
   fun u ->
    let own = Str.node_elements repr u in
    let nearby =
      elements_of_nodes (Lph_graph.Neighborhood.ball g ~radius:(2 * compiled.radius) u)
    in
    let tuples_for arity =
      List.filter tuple_filter
        (List.concat_map
           (fun head ->
             List.of_seq
               (Seq.map (fun tail -> head :: tail) (Lph_util.Combinat.tuples nearby (arity - 1))))
           own)
    in
    let fragment_choices (_, arity) =
      List.of_seq (Lph_util.Combinat.subsets (tuples_for arity))
    in
    let combos = Lph_util.Combinat.product (List.map fragment_choices vars) in
    List.of_seq
      (Seq.map
         (fun fragments ->
           C.encode_bits frag_codec
             (List.map (List.map (List.map (element_ref repr ids))) fragments))
         combos)
  in
  List.map (fun (_, vars) -> universe_for_block vars) compiled.blocks

let game_accepts ?(engine = `Auto) ?tuple_filter compiled g ~ids =
  let universes = fragment_universes ?tuple_filter compiled g ~ids in
  match compiled.first with
  | None -> compiled.arbiter.Lph_hierarchy.Arbiter.accepts g ~ids ~certs:[]
  | Some Game.Eve -> Game.sigma_accepts ~engine compiled.arbiter g ~ids ~universes
  | Some Game.Adam -> Game.pi_accepts ~engine compiled.arbiter g ~ids ~universes
