(** The backward direction of the generalized Fagin theorem
    (Theorems 11/12): every Σℓ^LFO / Πℓ^LFO sentence compiles to a
    restrictive arbiter whose certificate game realises exactly the
    property the sentence defines.

    Certificates encode interpretations of the second-order variables,
    split across the nodes by ownership of a tuple's first element;
    elements are referenced as (identifier, bit index option). The
    arbiter gathers its (r+1)-ball (r = the matrix's visibility
    radius), decodes and unions the relation fragments, and evaluates
    the BF matrix at its own elements — in polynomial step time, since
    BF evaluation is exhaustive search over a constant-radius ball.

    The accompanying certificate {e universes} quantify only over valid
    fragment encodings with all tuple components within distance 2r of
    the owner — the restrictive-arbiter discipline of Lemma 8, whose
    restrictors are locally repairable by construction. *)

type block = Lph_logic.Syntax.quantifier * (Lph_logic.Formula.so_var * int) list

type t = {
  sentence : Lph_logic.Formula.t;
  blocks : block list;  (** alternating second-order quantifier blocks *)
  first : Lph_hierarchy.Game.player option;
      (** who moves first ([None] for level 0) *)
  radius : int;  (** visibility radius of the matrix *)
  arbiter : Lph_hierarchy.Arbiter.t;
}

val compile : Lph_logic.Formula.t -> t
(** Requires a sentence of the local second-order hierarchy (a prefix
    of second-order quantifiers over an LFO formula). *)

val fragment_universes :
  ?tuple_filter:(int list -> bool) ->
  t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  Lph_hierarchy.Game.universe list
(** The per-level certificate universes: all encodings of local
    relation fragments. [tuple_filter] (on element-index tuples of the
    graph's structural representation) can prune the enumeration when a
    semantic restriction is justified; the default keeps every local
    tuple. Beware: the universe size is exponential in the local tuple
    count. *)

val game_accepts :
  ?engine:Lph_hierarchy.Game.engine ->
  ?tuple_filter:(int list -> bool) ->
  t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  bool
(** The certificate game value under {!fragment_universes} — by
    Theorem 12 equal to the sentence's truth value on the graph.
    [engine] selects the game engine (default [`Auto]: [LPH_ENGINE]). *)
