(** Named fault models with budgets: the experimental axis.

    A model is a point in the damage lattice

    {v Crash_stop < Omission < Byzantine_corrupt < Byzantine_forge v}

    together with a budget — at most [f] faulty nodes, and for the
    message-level models an optional per-round cap on tampered outgoing
    messages per node. {!compile} lowers a model to a deterministic
    {!Fault_plan}: the f faulty nodes are chosen by the plan layer's own
    seeded hash, so a (model, n, seed) triple names one reproducible
    adversary and all the PR 4 machinery (zero-rate fast path, spec
    round-tripping, typed errors) applies unchanged. {!schedule} builds
    the explicit-event plan the adversarial search ({!Fault_search})
    optimises, validating the schedule against the model's kind set and
    node budget. *)

type name =
  | Crash_stop  (** faulty nodes fall silent at a seeded round *)
  | Omission  (** faulty nodes lose outgoing messages *)
  | Byzantine_corrupt
      (** faulty nodes garble what they send and claim: corrupted or
          truncated wires, flipped certificate bits *)
  | Byzantine_forge
      (** additionally fabricates certificates and identities from
          whole cloth *)

type t

val all_names : name list

val name_string : name -> string

val name_of_string_opt : string -> name option

val kinds_of : name -> Fault_plan.kind list
(** The plan kinds a model's faulty nodes may exercise. *)

val make : ?rate:float -> ?wire_budget:int -> f:int -> name -> t
(** [make ~f name] is the model with at most [f] faulty nodes. [rate]
    (default 0.5) is the per-event firing probability of compiled rate
    plans; [wire_budget] caps tampered messages per (round, node).
    Invalid budgets raise the typed [Error.Error (Protocol_error _)]. *)

val name : t -> name

val f : t -> int

val rate : t -> float

val wire_budget : t -> int option

val to_string : t -> string
(** [<name>/f<f>[@rate][^budget]], e.g. ["crash-stop/f2"],
    ["byzantine-corrupt/f1@0.9^2"]. Round-trips through
    {!of_string}. *)

val of_string : string -> t
(** Parse {!to_string}'s format; malformed specs raise the typed
    [Error.Error (Protocol_error _)] naming the offending token. *)

val faulty_nodes : t -> n:int -> seed:int -> int list
(** The model's faulty-node set for an [n]-node instance under [seed]:
    [min f n] distinct nodes, sorted, chosen by seeded hash ranking. *)

val compile : t -> n:int -> seed:int -> Fault_plan.t
(** The deterministic rate plan realising this model on an [n]-node
    instance: kinds from {!kinds_of}, targets from {!faulty_nodes},
    the model's rate and wire budget. [f = 0] compiles to the
    zero-rate plan (provably inert). *)

val schedule : t -> n:int -> seed:int -> Fault_plan.event list -> Fault_plan.t
(** An explicit-event plan under this model's budget. Raises the typed
    [Error.Error (Protocol_error _)] if an event's kind is outside the
    model or the schedule touches more than [f] distinct nodes. *)
