(* Named fault models: the experimental axis the paper's robustness
   question runs over. A model is a point in the lattice

       Crash_stop  <  Omission  <  Byzantine_corrupt  <  Byzantine_forge

   (each later model can simulate the earlier ones' damage), plus a
   budget: at most [f] faulty nodes and, for message-level models, a
   per-round cap on tampered messages per node. [compile] lowers a
   model to a {!Fault_plan}: the f faulty nodes are chosen by the same
   seeded coordinate hash the plan layer uses, so a (model, n, seed)
   triple names one reproducible adversary. *)

module Error = Lph_util.Error

type name = Crash_stop | Omission | Byzantine_corrupt | Byzantine_forge

let all_names = [ Crash_stop; Omission; Byzantine_corrupt; Byzantine_forge ]

let name_string = function
  | Crash_stop -> "crash-stop"
  | Omission -> "omission"
  | Byzantine_corrupt -> "byzantine-corrupt"
  | Byzantine_forge -> "byzantine-forge"

let name_of_string_opt = function
  | "crash-stop" -> Some Crash_stop
  | "omission" -> Some Omission
  | "byzantine-corrupt" -> Some Byzantine_corrupt
  | "byzantine-forge" -> Some Byzantine_forge
  | _ -> None

(* Which plan kinds a model's faulty nodes may exercise. Crash-stop
   nodes fall silent; omission nodes lose messages; Byzantine-corrupt
   nodes garble what they send and claim (certificates included);
   Byzantine-forge nodes additionally fabricate certificates and
   identities from whole cloth. *)
let kinds_of = function
  | Crash_stop -> [ Fault_plan.Crash ]
  | Omission -> [ Fault_plan.Drop ]
  | Byzantine_corrupt -> [ Fault_plan.Corrupt; Fault_plan.Truncate; Fault_plan.Cert_flip ]
  | Byzantine_forge ->
      [ Fault_plan.Corrupt; Fault_plan.Cert_flip; Fault_plan.Cert_forge; Fault_plan.Dup_id ]

type t = { name : name; f : int; rate : float; wire_budget : int option }

let what = "Fault_model"

let make ?(rate = 0.5) ?wire_budget ~f name =
  if f < 0 then Error.protocol_error ~what "faulty-node budget f=%d is negative" f;
  if not (rate >= 0.0 && rate <= 1.0) then
    Error.protocol_error ~what "rate %g is out of [0,1]" rate;
  (match wire_budget with
  | Some b when b < 0 -> Error.protocol_error ~what "wire budget %d is negative" b
  | _ -> ());
  { name; f; rate; wire_budget }

let name t = t.name

let f t = t.f

let rate t = t.rate

let wire_budget t = t.wire_budget

let to_string t =
  Printf.sprintf "%s/f%d%s%s" (name_string t.name) t.f
    (if t.rate = 0.5 then "" else Printf.sprintf "@%g" t.rate)
    (match t.wire_budget with None -> "" | Some b -> Printf.sprintf "^%d" b)

let of_string spec =
  let fail fmt = Error.protocol_error ~what fmt in
  let head, budget =
    match String.index_opt spec '^' with
    | None -> (spec, None)
    | Some i -> (
        let b = String.sub spec (i + 1) (String.length spec - i - 1) in
        match int_of_string_opt (String.trim b) with
        | Some v when v >= 0 -> (String.sub spec 0 i, Some v)
        | _ -> fail "model spec %S: budget token %S is not a non-negative integer" spec b)
  in
  let head, rate =
    match String.index_opt head '@' with
    | None -> (head, 0.5)
    | Some i -> (
        let r = String.sub head (i + 1) (String.length head - i - 1) in
        match float_of_string_opt (String.trim r) with
        | Some v when v >= 0.0 && v <= 1.0 -> (String.sub head 0 i, v)
        | _ -> fail "model spec %S: rate token %S is not a probability" spec r)
  in
  match String.index_opt head '/' with
  | None -> fail "model spec %S has no /f<budget> segment" spec
  | Some i -> (
      let mname = String.sub head 0 i in
      let ftok = String.sub head (i + 1) (String.length head - i - 1) in
      match name_of_string_opt (String.trim mname) with
      | None -> fail "model spec %S: unknown model %S" spec mname
      | Some nm ->
          if String.length ftok < 2 || ftok.[0] <> 'f' then
            fail "model spec %S: budget token %S is not f<n>" spec ftok;
          (match int_of_string_opt (String.sub ftok 1 (String.length ftok - 1)) with
          | Some fv when fv >= 0 -> make ~rate ?wire_budget:budget ~f:fv nm
          | _ -> fail "model spec %S: budget token %S is not f<n>" spec ftok))

(* The f faulty nodes for an n-node instance: rank every node by the
   seeded hash and take the f smallest ranks. Deterministic in (model,
   n, seed), independent of everything else. *)
let faulty_nodes t ~n ~seed =
  if t.f = 0 || n = 0 then []
  else if t.f >= n then List.init n Fun.id
  else begin
    let ranked =
      List.init n (fun u -> (Fault_plan.hash_seeded ~seed (240 + t.f) [ n; u ], u))
    in
    let sorted = List.sort compare ranked in
    let rec take k = function
      | (_, u) :: rest when k > 0 -> u :: take (k - 1) rest
      | _ -> []
    in
    List.sort compare (take t.f sorted)
  end

let compile t ~n ~seed =
  let targets = faulty_nodes t ~n ~seed in
  match targets with
  | [] ->
      (* an empty target set must never fire: the zero-rate plan is the
         plan layer's canonical always-inert plan *)
      Fault_plan.make ~rate:0.0 ~kinds:(kinds_of t.name) seed
  | _ ->
      Fault_plan.make ~rate:t.rate ~targets ?wire_budget:t.wire_budget ~kinds:(kinds_of t.name)
        seed

let schedule t ~n ~seed events =
  let allowed = kinds_of t.name in
  let targets = List.sort_uniq compare (List.map (fun (_, _, u) -> u) events) in
  List.iter
    (fun (k, _, _) ->
      if not (List.mem k allowed) then
        Error.protocol_error ~what "event kind %s is outside model %s" (Fault_plan.kind_name k)
          (name_string t.name))
    events;
  if List.length targets > t.f then
    Error.protocol_error ~what "schedule touches %d nodes, model budget is f=%d"
      (List.length targets) t.f;
  ignore n;
  Fault_plan.make ?wire_budget:t.wire_budget ~events ~kinds:allowed seed
