(** Deterministic, seeded fault plans for the distributed runtime.

    A plan decides, purely from its seed and the coordinates of an event
    (round, node, message endpoints), whether to inject a fault there
    and what the fault looks like. Decisions are stateless hashes, so a
    plan is reproducible from its spec string alone and independent of
    evaluation order — the same spec and seed fault the same messages
    whether the runner iterates nodes forwards, backwards or in
    parallel. The runner threads a plan through its transport layer (see
    [Runner.run_outcome]); the spec grammar is also accepted from the
    [LPH_FAULTS] environment variable. With no plan installed the hook
    is a single match on [None] — zero overhead.

    On top of the seeded rate core a plan can carry budgets and explicit
    schedules, still pure:

    - a {e target set} ([!0,3] in the grammar) restricts which nodes can
      be faulty at all — the fault-model "at most f faulty nodes" side
      condition ({!Fault_model});
    - a {e wire budget} ([^2]) caps how many of a node's outgoing
      messages can be tampered per round, decided by seeded slot
      choices;
    - an {e event list} ([=crash/2/0+drop/3/1]) replaces the hash-based
      "whether" decisions with a literal (kind, round, node) schedule —
      the representation the adversarial fault search optimises over.
      Pre-round faults (certificates, identifiers) use round [-1].
      Positional choices (which byte, which bit) still come from the
      seeded hashes.

    Spec grammar: [<kinds>[@<rate>][!<targets>][^<budget>][=<events>]:<seed>]
    where [<kinds>] is [all] or a comma-separated subset of [corrupt],
    [truncate], [drop], [cert-flip], [cert-forge], [dup-id], [crash],
    [overcharge]; [<rate>] is a per-event firing probability in [0,1]
    (default 0.05). Examples: ["all:7"], ["corrupt,drop:42"],
    ["cert-forge@0.5:3"], ["crash@1!0,3:9"], ["=crash/2/0:7"]. *)

type kind =
  | Corrupt  (** flip one byte (or one bit character) of a message *)
  | Truncate  (** cut a message short *)
  | Drop  (** suppress a message entirely *)
  | Cert_flip  (** flip one character of a node's certificate list *)
  | Cert_forge  (** replace a node's certificate list with seeded noise *)
  | Dup_id  (** copy one node's identifier onto another *)
  | Crash  (** crash-stop a node at a seeded round *)
  | Overcharge  (** inflate a node's per-round charge *)

type event = kind * int * int
(** One scheduled fault: (kind, round, node). Round [-1] means the
    pre-round phase (certificate and identifier tampering); wire events
    name the {e sending} node and fire for each of its messages that
    round (the wire budget still applies). *)

type t

val all_kinds : kind list

val kind_name : kind -> string

val kind_of_name_opt : string -> kind option

val make :
  ?rate:float ->
  ?targets:int list ->
  ?wire_budget:int ->
  ?events:event list ->
  kinds:kind list ->
  int ->
  t
(** [make ~kinds seed] builds a plan. [rate] is the per-event firing
    probability (default 0.05); raises [Invalid_argument] outside
    [0,1]. [rate = 0.0] is a valid plan that never fires — used to
    measure hook overhead. [targets] restricts faults to the listed
    nodes (deduplicated, sorted); [wire_budget] caps tampered outgoing
    messages per (round, node). A non-empty [events] list makes the
    plan an explicit schedule: only the listed (kind, round, node)
    events fire, and the plan's kind set becomes exactly the kinds the
    events name. *)

val parse : string -> t
(** Parse a spec string (grammar above). Malformed specs raise the
    typed [Error.Error (Protocol_error _)] naming the offending token —
    configuration from [LPH_FAULTS] is untrusted input like any other
    wire. *)

val of_env : unit -> t option
(** The plan requested by [LPH_FAULTS], if any. Unset, [""] and ["off"]
    all mean no plan. *)

val to_spec : t -> string
(** A spec string that re-creates this plan — print it next to any
    failure so the scenario can be replayed. *)

val seed : t -> int

val rate : t -> float

val kinds : t -> kind list

val has : t -> kind -> bool

val targets : t -> int array option
(** The sorted target set, if the plan is node-budgeted. *)

val wire_budget : t -> int option

val events : t -> event list
(** The explicit schedule; [[]] for hash-driven plans. *)

val hash_seeded : seed:int -> int -> int list -> int
(** The plan layer's 30-bit coordinate hash, exposed so fault models
    can make the same style of deterministic seeded choices (e.g.
    picking which f nodes are faulty) without a second hash family. *)

val wire_active : t -> bool
(** Whether any transport fault ({!Corrupt}, {!Truncate}, {!Drop}) can
    ever fire under this plan. The runner hoists this check out of its
    per-message delivery loop, so an installed plan that cannot touch
    wires (a zero-rate plan, or cert/crash-only kinds) delivers
    messages on exactly the plan-free path. *)

(** {1 Injection points}

    Each tamper function returns the possibly-modified value plus fault
    metadata when a fault actually fired ([None] means the value is
    returned unchanged). A fired fault always changes its target, so
    "no fault metadata" and "no behavioural difference" coincide. *)

val tamper_wire :
  ?slot:int ->
  ?degree:int ->
  t ->
  round:int ->
  src:int ->
  dst:int ->
  string ->
  string option * Lph_util.Error.fault option
(** Transport hook for one message. Returns [None] for a dropped
    message, [Some wire] otherwise. Empty wires are never tampered
    (dropping or corrupting nothing is a no-op). [slot]/[degree] locate
    the message among the sender's outgoing edges; the wire budget is
    enforced against them (callers that omit them bypass the budget
    unless it is zero). *)

val tamper_cert : t -> node:int -> string -> string * Lph_util.Error.fault option
(** Certificate-list hook: bit flips and wholesale forgeries. *)

val tamper_ids : t -> string array -> string array * Lph_util.Error.fault option
(** Identifier-assignment hook: may duplicate one identifier onto
    another node (the input array is not mutated). Under a target set
    the overwritten node must be a target; under an event schedule the
    [Dup_id] event names it. *)

val crash_round : t -> node:int -> int option
(** [Some r] if the plan crash-stops [node] at round [r] (1-based). *)

val crash_fault : t -> round:int -> node:int -> Lph_util.Error.fault
(** The metadata to record when a scheduled crash takes effect. *)

val overcharge : t -> round:int -> node:int -> (int * Lph_util.Error.fault) option
(** Extra bits to add to a node's charge this round, if the plan says
    so. *)
