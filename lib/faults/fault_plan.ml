(* Deterministic, seeded fault plans. A plan is a pure function from
   coordinates (round, node, message endpoints) to injection decisions:
   the same spec and seed always produce the same faults, regardless of
   evaluation order, so every failure a fuzz campaign finds is
   reproducible from its spec string alone. No mutable state, no RNG
   stream — each decision hashes (seed, kind, coordinates).

   Two refinements sit on top of the seeded core, both still pure:

   - budgets: an optional TARGET set restricts which nodes can be
     faulty at all (the fault-model "at most f Byzantine nodes"
     side condition) and an optional WIRE BUDGET caps how many of a
     node's outgoing messages can be tampered per round;
   - explicit EVENTS: a plan may carry a literal (kind, round, node)
     schedule instead of hash decisions — the representation the
     adversarial fault search (Fault_search) optimises over. Where a
     fault lands within its target (which byte, which bit, which
     round a crash picks) still comes from the seeded hashes, so an
     event plan is exactly as reproducible as a rate plan. *)

module Error = Lph_util.Error

type kind = Corrupt | Truncate | Drop | Cert_flip | Cert_forge | Dup_id | Crash | Overcharge

let all_kinds = [ Corrupt; Truncate; Drop; Cert_flip; Cert_forge; Dup_id; Crash; Overcharge ]

let kind_name = function
  | Corrupt -> "corrupt"
  | Truncate -> "truncate"
  | Drop -> "drop"
  | Cert_flip -> "cert-flip"
  | Cert_forge -> "cert-forge"
  | Dup_id -> "dup-id"
  | Crash -> "crash"
  | Overcharge -> "overcharge"

let kind_of_name_opt = function
  | "corrupt" -> Some Corrupt
  | "truncate" -> Some Truncate
  | "drop" -> Some Drop
  | "cert-flip" -> Some Cert_flip
  | "cert-forge" -> Some Cert_forge
  | "dup-id" -> Some Dup_id
  | "crash" -> Some Crash
  | "overcharge" -> Some Overcharge
  | _ -> None

let kind_index = function
  | Corrupt -> 0
  | Truncate -> 1
  | Drop -> 2
  | Cert_flip -> 3
  | Cert_forge -> 4
  | Dup_id -> 5
  | Crash -> 6
  | Overcharge -> 7

type event = kind * int * int

type t = {
  seed : int;
  rate : float;
  threshold : int; (* [rate] scaled to the 30-bit hash range *)
  kinds : kind list;
  have : bool array; (* indexed by kind_index *)
  targets : int array option; (* sorted distinct node indices; [None] = any node *)
  wire_budget : int option; (* per-(round, src) cap on tampered outgoing messages *)
  events : event list; (* explicit schedule; [] = hash-driven decisions *)
}

let seed t = t.seed

let rate t = t.rate

let kinds t = t.kinds

let has t k = t.have.(kind_index k)

let targets t = t.targets

let wire_budget t = t.wire_budget

let events t = t.events

let make ?(rate = 0.05) ?targets ?wire_budget ?(events = []) ~kinds seed =
  if not (rate >= 0.0 && rate <= 1.0) then invalid_arg "Fault_plan.make: rate must be in [0,1]";
  (match wire_budget with
  | Some b when b < 0 -> invalid_arg "Fault_plan.make: wire budget must be non-negative"
  | _ -> ());
  let targets =
    match targets with
    | None -> None
    | Some l ->
        List.iter
          (fun u -> if u < 0 then invalid_arg "Fault_plan.make: target nodes must be non-negative")
          l;
        Some (Array.of_list (List.sort_uniq compare l))
  in
  let kinds =
    if events = [] then kinds
    else
      (* an event plan's kind set is exactly the kinds its events name *)
      List.filter (fun k -> List.exists (fun (k', _, _) -> k' = k) events) all_kinds
  in
  let have = Array.make 8 false in
  List.iter (fun k -> have.(kind_index k) <- true) kinds;
  { seed; rate; threshold = int_of_float (rate *. 1073741824.0); kinds; have; targets;
    wire_budget; events }

(* ---- spec grammar ---------------------------------------------------

   <kinds>[@<rate>][!<targets>][^<budget>][=<events>]:<seed>

   e.g. "all:7", "corrupt,drop@0.25:42", "crash!0,3@1:9" is rejected
   (segments are ordered), "crash@1!0,3:9", "drop^2:5",
   "=crash/2/0+drop/3/1:7". *)

let to_spec t =
  let names =
    if List.length t.kinds = List.length all_kinds then "all"
    else String.concat "," (List.map kind_name t.kinds)
  in
  let rate = if t.rate = 0.05 then "" else Printf.sprintf "@%g" t.rate in
  let targets =
    match t.targets with
    | None -> ""
    | Some a -> "!" ^ String.concat "," (List.map string_of_int (Array.to_list a))
  in
  let budget = match t.wire_budget with None -> "" | Some b -> Printf.sprintf "^%d" b in
  let events =
    match t.events with
    | [] -> ""
    | evs ->
        "="
        ^ String.concat "+"
            (List.map (fun (k, r, u) -> Printf.sprintf "%s/%d/%d" (kind_name k) r u) evs)
  in
  Printf.sprintf "%s%s%s%s%s:%d" names rate targets budget events t.seed

let what = "Fault_plan.parse"

let parse spec =
  let fail fmt = Error.protocol_error ~what fmt in
  let split_at c s =
    match String.index_opt s c with
    | None -> (s, None)
    | Some i -> (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  in
  match String.rindex_opt spec ':' with
  | None -> fail "spec %S has no seed: expected <kinds>[@rate][!targets][^budget][=events]:<seed>" spec
  | Some i ->
      let head = String.sub spec 0 i in
      let tail = String.sub spec (i + 1) (String.length spec - i - 1) in
      let seed =
        match int_of_string_opt (String.trim tail) with
        | Some s -> s
        | None -> fail "spec %S: seed token %S is not an integer" spec tail
      in
      let head, events_s = split_at '=' head in
      let head, budget_s = split_at '^' head in
      let head, targets_s = split_at '!' head in
      let head, rate_s = split_at '@' head in
      let rate =
        match rate_s with
        | None -> 0.05
        | Some r -> (
            match float_of_string_opt (String.trim r) with
            | Some v when v >= 0.0 && v <= 1.0 -> v
            | Some _ -> fail "spec %S: rate token %S is out of [0,1]" spec r
            | None -> fail "spec %S: rate token %S is not a number" spec r)
      in
      let targets =
        match targets_s with
        | None -> None
        | Some "" -> fail "spec %S: empty target list after '!'" spec
        | Some ts ->
            Some
              (List.map
                 (fun tok ->
                   match int_of_string_opt (String.trim tok) with
                   | Some u when u >= 0 -> u
                   | _ -> fail "spec %S: target token %S is not a node index" spec tok)
                 (String.split_on_char ',' ts))
      in
      let wire_budget =
        match budget_s with
        | None -> None
        | Some b -> (
            match int_of_string_opt (String.trim b) with
            | Some v when v >= 0 -> Some v
            | _ -> fail "spec %S: budget token %S is not a non-negative integer" spec b)
      in
      let events =
        match events_s with
        | None -> []
        | Some "" -> fail "spec %S: empty event list after '='" spec
        | Some es ->
            List.map
              (fun tok ->
                match String.split_on_char '/' tok with
                | [ kn; rn; un ] -> (
                    match
                      ( kind_of_name_opt (String.trim kn),
                        int_of_string_opt (String.trim rn),
                        int_of_string_opt (String.trim un) )
                    with
                    | Some k, Some r, Some u when u >= 0 -> (k, r, u)
                    | None, _, _ -> fail "spec %S: unknown fault kind %S in event %S" spec kn tok
                    | _ -> fail "spec %S: event token %S is not <kind>/<round>/<node>" spec tok)
                | _ -> fail "spec %S: event token %S is not <kind>/<round>/<node>" spec tok)
              (String.split_on_char '+' es)
      in
      let kinds =
        match String.trim head with
        | "all" -> all_kinds
        | "" when events <> [] -> [] (* event plans may omit the kind list *)
        | "" -> fail "spec %S has no fault kinds before ':'" spec
        | names ->
            List.map
              (fun n ->
                let n = String.trim n in
                match kind_of_name_opt n with
                | Some k -> k
                | None -> fail "spec %S: unknown fault kind %S" spec n)
              (String.split_on_char ',' names)
      in
      make ~rate ?targets ?wire_budget ~events ~kinds seed

let of_env () =
  match Sys.getenv_opt "LPH_FAULTS" with
  | None | Some "" | Some "off" -> None
  | Some spec -> Some (parse spec)

(* Boost-style hash combining on the native int, finished with a
   xorshift-multiply avalanche and masked to 30 bits. Not cryptographic;
   only needs to decorrelate nearby coordinates. *)
let mix h k = (h lxor (k + 0x9E3779B9 + (h lsl 6) + (h lsr 2))) land max_int

let finish h =
  let h = h lxor (h lsr 30) in
  let h = h * 0x4F6CDD1D land max_int in
  let h = h lxor (h lsr 27) in
  let h = h * 0x2545F491 land max_int in
  (h lxor (h lsr 31)) land 0x3FFFFFFF

let hash_seeded ~seed tag xs = finish (List.fold_left mix (mix (mix 0x6c7068 seed) tag) xs)

let hash30 t tag xs = hash_seeded ~seed:t.seed tag xs

let targeted t node =
  match t.targets with
  | None -> true
  | Some a ->
      (* sorted, tiny in practice: binary search *)
      let rec go lo hi =
        lo < hi
        &&
        let mid = (lo + hi) / 2 in
        if a.(mid) = node then true else if a.(mid) < node then go (mid + 1) hi else go lo mid
      in
      go 0 (Array.length a)

let scheduled t k ~round ~node =
  List.exists (fun (k', r, u) -> k' = k && r = round && u = node) t.events

(* [threshold = 0] (a zero-rate plan, the overhead probe) decides
   without hashing — the decision is constant. [round]/[node] are the
   event coordinates (the faulty node, and -1 for pre-round faults);
   [xs] feeds the hash, which may use finer coordinates. *)
let fires t k ~round ~node xs =
  if t.events <> [] then scheduled t k ~round ~node
  else
    t.have.(kind_index k) && t.threshold > 0 && targeted t node
    && hash30 t (kind_index k) xs < t.threshold

(* wire faults share one guard the runner can hoist out of its
   per-message delivery loop: when no transport kind can ever fire the
   plan-installed path collapses to the plan-free one *)
let wire_active t =
  let wire_kind k = k = Drop || k = Truncate || k = Corrupt in
  if t.events <> [] then List.exists (fun (k, _, _) -> wire_kind k) t.events
  else
    t.threshold > 0
    && (t.have.(kind_index Drop) || t.have.(kind_index Truncate) || t.have.(kind_index Corrupt))

(* positional choices use a disjoint tag space so "whether" and "where"
   are independent *)
let pick t k xs bound = hash30 t (64 + kind_index k) xs mod bound

let pick2 t k xs bound = hash30 t (128 + kind_index k) xs mod bound

(* the per-(round, src) wire budget: message slot [i] of [degree] is
   tamperable iff one of the budget's seeded slot choices lands on it —
   at most [budget] slots per (round, src), decided statelessly *)
let budget_allows t ~round ~src ~slot ~degree =
  match (t.wire_budget, slot, degree) with
  | None, _, _ -> true
  | Some b, Some i, Some d when d > 0 ->
      let b = min b d in
      let rec go j = j < b && (hash30 t 192 [ round; src; j ] mod d = i || go (j + 1))
      in
      go 0
  | Some b, _, _ -> b > 0 (* no slot information: only a zero budget can refuse *)

let fault t k ~round ~node detail =
  { Error.fault_kind = kind_name k; seed = t.seed; round; node; detail }

let tamper_wire ?slot ?degree t ~round ~src ~dst wire =
  let len = String.length wire in
  if len = 0 then (Some wire, None)
  else if not (budget_allows t ~round ~src ~slot ~degree) then (Some wire, None)
  else
    let xs = [ round; src; dst ] in
    let fires k = fires t k ~round ~node:src xs in
    if fires Drop then
      (None, Some (fault t Drop ~round ~node:src (Printf.sprintf "message to node %d dropped" dst)))
    else if fires Truncate then begin
      let keep = pick t Truncate xs len in
      ( Some (String.sub wire 0 keep),
        Some
          (fault t Truncate ~round ~node:src
             (Printf.sprintf "message to node %d truncated %d -> %d bytes" dst len keep)) )
    end
    else if fires Corrupt then begin
      let i = pick t Corrupt xs len in
      let c =
        match wire.[i] with
        | '0' -> '1'
        | '1' -> '0'
        | c -> Char.chr (Char.code c lxor (1 + pick2 t Corrupt xs 255))
      in
      let b = Bytes.of_string wire in
      Bytes.set b i c;
      ( Some (Bytes.unsafe_to_string b),
        Some
          (fault t Corrupt ~round ~node:src
             (Printf.sprintf "message to node %d corrupted at byte %d" dst i)) )
    end
    else (Some wire, None)

let tamper_cert t ~node cert =
  if fires t Cert_forge ~round:(-1) ~node [ node ] then begin
    let len = 1 + pick t Cert_forge [ node ] (max 8 (String.length cert)) in
    let forged = String.init len (fun i -> if hash30 t 200 [ node; i ] land 1 = 1 then '1' else '0') in
    (forged, Some (fault t Cert_forge ~round:(-1) ~node (Printf.sprintf "forged %d-bit certificate" len)))
  end
  else if String.length cert > 0 && fires t Cert_flip ~round:(-1) ~node [ node ] then begin
    let i = pick t Cert_flip [ node ] (String.length cert) in
    let c = match cert.[i] with '0' -> '1' | '1' -> '0' | _ -> '0' in
    let b = Bytes.of_string cert in
    Bytes.set b i c;
    ( Bytes.unsafe_to_string b,
      Some (fault t Cert_flip ~round:(-1) ~node (Printf.sprintf "certificate bit %d flipped" i)) )
  end
  else (cert, None)

let dup_onto t ids a b =
  let ids' = Array.copy ids in
  ids'.(b) <- ids.(a);
  ( ids',
    Some
      (fault t Dup_id ~round:(-1) ~node:b
         (Printf.sprintf "identifier of node %d duplicated onto node %d" a b)) )

let tamper_ids t ids =
  let n = Array.length ids in
  if n < 2 then (ids, None)
  else if t.events <> [] then
    (* the event names the node whose identifier is overwritten *)
    match
      List.find_opt (fun (k, r, u) -> k = Dup_id && r = -1 && u >= 0 && u < n) t.events
    with
    | Some (_, _, b) ->
        let a = pick t Dup_id [ 0; n; b ] (n - 1) in
        let a = if a >= b then a + 1 else a in
        dup_onto t ids a b
    | None -> (ids, None)
  else if t.have.(kind_index Dup_id) && t.threshold > 0 && hash30 t (kind_index Dup_id) [ n ] < t.threshold
  then begin
    let a = pick t Dup_id [ 0; n ] n in
    let b = pick t Dup_id [ 1; n ] (n - 1) in
    let b = if b >= a then b + 1 else b in
    (* the faulty node is the one claiming a duplicated identifier *)
    if targeted t b then dup_onto t ids a b else (ids, None)
  end
  else (ids, None)

let crash_round t ~node =
  if t.events <> [] then
    List.fold_left
      (fun acc (k, r, u) ->
        if k = Crash && u = node && r >= 1 then
          match acc with Some r' when r' <= r -> acc | _ -> Some r
        else acc)
      None t.events
  else if fires t Crash ~round:(-1) ~node [ node ] then Some (1 + pick t Crash [ node ] 8)
  else None

let crash_fault t ~round ~node = fault t Crash ~round ~node "crash-stop"

let overcharge t ~round ~node =
  if fires t Overcharge ~round ~node [ round; node ] then
    let k = 1 + pick t Overcharge [ round; node ] 1024 in
    Some (k, fault t Overcharge ~round ~node (Printf.sprintf "+%d bits charged" k))
  else None
