(* Deterministic, seeded fault plans. A plan is a pure function from
   coordinates (round, node, message endpoints) to injection decisions:
   the same spec and seed always produce the same faults, regardless of
   evaluation order, so every failure a fuzz campaign finds is
   reproducible from its spec string alone. No mutable state, no RNG
   stream — each decision hashes (seed, kind, coordinates). *)

module Error = Lph_util.Error

type kind = Corrupt | Truncate | Drop | Cert_flip | Cert_forge | Dup_id | Crash | Overcharge

let all_kinds = [ Corrupt; Truncate; Drop; Cert_flip; Cert_forge; Dup_id; Crash; Overcharge ]

let kind_name = function
  | Corrupt -> "corrupt"
  | Truncate -> "truncate"
  | Drop -> "drop"
  | Cert_flip -> "cert-flip"
  | Cert_forge -> "cert-forge"
  | Dup_id -> "dup-id"
  | Crash -> "crash"
  | Overcharge -> "overcharge"

let kind_of_name = function
  | "corrupt" -> Corrupt
  | "truncate" -> Truncate
  | "drop" -> Drop
  | "cert-flip" -> Cert_flip
  | "cert-forge" -> Cert_forge
  | "dup-id" -> Dup_id
  | "crash" -> Crash
  | "overcharge" -> Overcharge
  | s -> invalid_arg ("Fault_plan: unknown fault kind " ^ s)

let kind_index = function
  | Corrupt -> 0
  | Truncate -> 1
  | Drop -> 2
  | Cert_flip -> 3
  | Cert_forge -> 4
  | Dup_id -> 5
  | Crash -> 6
  | Overcharge -> 7

type t = {
  seed : int;
  rate : float;
  threshold : int; (* [rate] scaled to the 30-bit hash range *)
  kinds : kind list;
  have : bool array; (* indexed by kind_index *)
}

let seed t = t.seed

let rate t = t.rate

let kinds t = t.kinds

let has t k = t.have.(kind_index k)

let make ?(rate = 0.05) ~kinds seed =
  if not (rate >= 0.0 && rate <= 1.0) then invalid_arg "Fault_plan.make: rate must be in [0,1]";
  let have = Array.make 8 false in
  List.iter (fun k -> have.(kind_index k) <- true) kinds;
  { seed; rate; threshold = int_of_float (rate *. 1073741824.0); kinds; have }

let to_spec t =
  let names =
    if List.length t.kinds = List.length all_kinds then "all"
    else String.concat "," (List.map kind_name t.kinds)
  in
  if t.rate = 0.05 then Printf.sprintf "%s:%d" names t.seed
  else Printf.sprintf "%s@%g:%d" names t.rate t.seed

let parse spec =
  let bad () =
    invalid_arg
      (Printf.sprintf "Fault_plan.parse: %S, expected <kinds>[@<rate>]:<seed> (e.g. \"all:7\")" spec)
  in
  match String.rindex_opt spec ':' with
  | None -> bad ()
  | Some i -> (
      let head = String.sub spec 0 i in
      let tail = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt (String.trim tail) with
      | None -> bad ()
      | Some seed ->
          let head, rate =
            match String.index_opt head '@' with
            | None -> (head, 0.05)
            | Some j -> (
                let r = String.sub head (j + 1) (String.length head - j - 1) in
                match float_of_string_opt (String.trim r) with
                | Some r when r >= 0.0 && r <= 1.0 -> (String.sub head 0 j, r)
                | _ -> bad ())
          in
          let kinds =
            match String.trim head with
            | "all" | "" -> all_kinds
            | names -> List.map (fun n -> kind_of_name (String.trim n)) (String.split_on_char ',' names)
          in
          make ~rate ~kinds seed)

let of_env () =
  match Sys.getenv_opt "LPH_FAULTS" with
  | None | Some "" | Some "off" -> None
  | Some spec -> Some (parse spec)

(* Boost-style hash combining on the native int, finished with a
   xorshift-multiply avalanche and masked to 30 bits. Not cryptographic;
   only needs to decorrelate nearby coordinates. *)
let mix h k = (h lxor (k + 0x9E3779B9 + (h lsl 6) + (h lsr 2))) land max_int

let finish h =
  let h = h lxor (h lsr 30) in
  let h = h * 0x4F6CDD1D land max_int in
  let h = h lxor (h lsr 27) in
  let h = h * 0x2545F491 land max_int in
  (h lxor (h lsr 31)) land 0x3FFFFFFF

let hash30 t tag xs = finish (List.fold_left mix (mix (mix 0x6c7068 t.seed) tag) xs)

(* [threshold = 0] (a zero-rate plan, the overhead probe) decides
   without hashing — the decision is constant *)
let fires t k xs =
  t.have.(kind_index k) && t.threshold > 0 && hash30 t (kind_index k) xs < t.threshold

(* wire faults share one guard the runner can hoist out of its
   per-message delivery loop: when no transport kind can ever fire the
   plan-installed path collapses to the plan-free one *)
let wire_active t =
  t.threshold > 0
  && (t.have.(kind_index Drop) || t.have.(kind_index Truncate) || t.have.(kind_index Corrupt))

(* positional choices use a disjoint tag space so "whether" and "where"
   are independent *)
let pick t k xs bound = hash30 t (64 + kind_index k) xs mod bound

let pick2 t k xs bound = hash30 t (128 + kind_index k) xs mod bound

let fault t k ~round ~node detail =
  { Error.fault_kind = kind_name k; seed = t.seed; round; node; detail }

let tamper_wire t ~round ~src ~dst wire =
  let len = String.length wire in
  if len = 0 then (Some wire, None)
  else
    let xs = [ round; src; dst ] in
    if fires t Drop xs then
      (None, Some (fault t Drop ~round ~node:src (Printf.sprintf "message to node %d dropped" dst)))
    else if fires t Truncate xs then begin
      let keep = pick t Truncate xs len in
      ( Some (String.sub wire 0 keep),
        Some
          (fault t Truncate ~round ~node:src
             (Printf.sprintf "message to node %d truncated %d -> %d bytes" dst len keep)) )
    end
    else if fires t Corrupt xs then begin
      let i = pick t Corrupt xs len in
      let c =
        match wire.[i] with
        | '0' -> '1'
        | '1' -> '0'
        | c -> Char.chr (Char.code c lxor (1 + pick2 t Corrupt xs 255))
      in
      let b = Bytes.of_string wire in
      Bytes.set b i c;
      ( Some (Bytes.unsafe_to_string b),
        Some
          (fault t Corrupt ~round ~node:src
             (Printf.sprintf "message to node %d corrupted at byte %d" dst i)) )
    end
    else (Some wire, None)

let tamper_cert t ~node cert =
  if fires t Cert_forge [ node ] then begin
    let len = 1 + pick t Cert_forge [ node ] (max 8 (String.length cert)) in
    let forged = String.init len (fun i -> if hash30 t 200 [ node; i ] land 1 = 1 then '1' else '0') in
    (forged, Some (fault t Cert_forge ~round:(-1) ~node (Printf.sprintf "forged %d-bit certificate" len)))
  end
  else if String.length cert > 0 && fires t Cert_flip [ node ] then begin
    let i = pick t Cert_flip [ node ] (String.length cert) in
    let c = match cert.[i] with '0' -> '1' | '1' -> '0' | _ -> '0' in
    let b = Bytes.of_string cert in
    Bytes.set b i c;
    ( Bytes.unsafe_to_string b,
      Some (fault t Cert_flip ~round:(-1) ~node (Printf.sprintf "certificate bit %d flipped" i)) )
  end
  else (cert, None)

let tamper_ids t ids =
  let n = Array.length ids in
  if n >= 2 && fires t Dup_id [ n ] then begin
    let a = pick t Dup_id [ 0; n ] n in
    let b = pick t Dup_id [ 1; n ] (n - 1) in
    let b = if b >= a then b + 1 else b in
    let ids' = Array.copy ids in
    ids'.(b) <- ids.(a);
    ( ids',
      Some
        (fault t Dup_id ~round:(-1) ~node:b
           (Printf.sprintf "identifier of node %d duplicated onto node %d" a b)) )
  end
  else (ids, None)

let crash_round t ~node = if fires t Crash [ node ] then Some (1 + pick t Crash [ node ] 8) else None

let crash_fault t ~round ~node = fault t Crash ~round ~node "crash-stop"

let overcharge t ~round ~node =
  if fires t Overcharge [ round; node ] then
    let k = 1 + pick t Overcharge [ round; node ] 1024 in
    Some (k, fault t Overcharge ~round ~node (Printf.sprintf "+%d bits charged" k))
  else None
