(** A small Domain work-pool (OCaml 5 stdlib only, no dependencies).

    All combinators take tasks as list elements, run them on at most
    [jobs] domains, and are {e deterministic}: the result is identical
    for every job count, including [jobs:1] (which degenerates to the
    [List] sequential equivalent and spawns nothing). The job count
    defaults to [min 4 (Domain.recommended_domain_count ())] and can be
    overridden with the [LPH_JOBS] environment variable (read on every
    call, so tests can toggle it). Nested calls run sequentially in the
    inner layer rather than oversubscribing the machine.

    Helper domains persist across calls: the first parallel call spawns
    a shared worker team that every later combinator and {!with_team}
    call re-dispatches onto (two condition-variable broadcasts per
    batch instead of fresh domain spawns), sized to the effective job
    count and resized when [LPH_JOBS] changes. The team is leased with
    a try-lock — a second thread calling in while the team is busy
    falls back to spawning throwaway domains for that one call, so
    results never depend on who got the lease. Helpers are joined
    [at_exit].

    Tasks must not rely on shared mutable state for their results; an
    exception raised by any task is re-raised in the caller. *)

val jobs : unit -> int
(** The effective default job count ([LPH_JOBS] override included).
    Raises [Invalid_argument] if [LPH_JOBS] is set but not a positive
    integer. *)

val prewarm : ?jobs:int -> unit -> unit
(** Spawn (or resize) the shared worker team now, so the first real
    batch doesn't pay the domain-spawn latency — the serve daemon calls
    this at startup. A no-op when the effective job count is 1 or the
    team is already warm at that width. *)

val domains_spawned : unit -> int
(** Total domains this module has ever spawned (shared team plus
    throwaway fallbacks) — an observability counter for asserting pool
    reuse: a warmed pool serves any number of batches without it
    moving. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map]; results in input order. *)

val exists : ?jobs:int -> ('a -> bool) -> 'a list -> bool
(** Parallel [List.exists]; stops all workers at the first witness. *)

val for_all : ?jobs:int -> ('a -> bool) -> 'a list -> bool
(** Parallel [List.for_all]; stops all workers at the first
    counterexample. *)

val find_map_first : ?jobs:int -> ('a -> 'b option) -> 'a list -> 'b option
(** Parallel [List.find_map] returning the hit with the {e lowest input
    index} — the same witness sequential evaluation finds — not merely
    the first one any domain happens to produce. *)

(** {1 Persistent worker team}

    For round-structured workloads (the synchronous {!Lph_machine.Runner})
    that dispatch many small batches: domains are spawned once and
    reused across batches, so a batch costs two condition-variable
    broadcasts instead of fresh domain spawns. Determinism contract as
    above: tasks must write only to their own slots; results are
    independent of the job count. *)

type team

val with_team : ?jobs:int -> (team -> 'a) -> 'a
(** [with_team f] runs [f] with a worker team of [jobs - 1] helper
    domains (none when the effective job count is 1, including inside a
    nested pool). The shared process-wide team is leased when free —
    the common case, costing no spawns at all — otherwise a private
    team is spawned and joined around [f], also on exceptions. *)

val team_iter : team -> int -> (int -> unit) -> unit
(** [team_iter t n task] runs [task 0 .. task (n-1)] across the team
    (the calling domain participates) and returns when all are done.
    The first exception raised by any task ends the batch early and is
    re-raised in the caller. *)

val team_jobs : team -> int
(** The team's effective job count. *)
