let rec subsets = function
  | [] -> Seq.return []
  | x :: rest ->
      fun () ->
        let tails = subsets rest in
        Seq.append tails (Seq.map (fun s -> x :: s) tails) ()

(* In both [tuples] and [product], the suffix enumeration is hoisted out
   of the per-head closure: building it once shares the whole suffix
   closure chain across head elements instead of reconstructing it from
   scratch for every head (a quadratic pile of rebuilds at each nesting
   level). Traversal stays lazy and re-entrant. *)
let rec tuples xs k =
  if k < 0 then invalid_arg "Combinat.tuples: negative arity"
  else if k = 0 then Seq.return []
  else
    let tails = tuples xs (k - 1) in
    Seq.concat_map (fun x -> Seq.map (fun t -> x :: t) tails) (List.to_seq xs)

let rec product = function
  | [] -> Seq.return []
  | xs :: rest ->
      let tails = product rest in
      Seq.concat_map (fun x -> Seq.map (fun t -> x :: t) tails) (List.to_seq xs)

let rec permutations = function
  | [] -> Seq.return []
  | xs ->
      (* pick each element as head, permute the rest *)
      let rec picks pre = function
        | [] -> Seq.empty
        | x :: post ->
            fun () ->
              Seq.Cons
                ( (x, List.rev_append pre post),
                  picks (x :: pre) post )
      in
      Seq.concat_map
        (fun (x, rest) -> Seq.map (fun p -> x :: p) (permutations rest))
        (picks [] xs)

let rec choose xs k =
  if k = 0 then Seq.return []
  else
    match xs with
    | [] -> Seq.empty
    | x :: rest ->
        fun () ->
          Seq.append (Seq.map (fun c -> x :: c) (choose rest (k - 1))) (choose rest k) ()

let exists_seq p s = Seq.exists p s

let for_all_seq p s = Seq.for_all p s

let find_seq p s = Seq.find p s
