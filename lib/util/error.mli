(** Typed error taxonomy shared by every runtime layer.

    The wire codecs, the synchronous runner, the gather layer and the
    SAT engine all report failures through {!exception-Error} carrying a
    structured {!t}, so callers can distinguish malformed input
    ([Decode_error]) from protocol violations ([Protocol_error]) and
    resource refusals ([Resource_exhausted]) without matching on
    exception message strings. Library code never lets a raw
    [Failure _] escape from a wire-reachable path. *)

(** Metadata describing one injected fault (see [Lph_faults.Fault_plan]):
    which kind fired, under which plan seed, and where. [round]/[node]
    are [-1] when the fault is not tied to a round or node. *)
type fault = {
  fault_kind : string;
  seed : int;
  round : int;
  node : int;
  detail : string;
}

type t =
  | Decode_error of { what : string; detail : string }
      (** Malformed bytes reached a decoder: truncated, over-long,
          non-bit characters, bad tags, trailing garbage. [what] names
          the decoder (e.g. ["Codec.int"]). *)
  | Protocol_error of { what : string; detail : string; round : int option; node : int option }
      (** A structurally well-formed value violated a protocol
          invariant: duplicate identifiers, outbox overflow, a boundary
          edge to a non-neighbour. Carries round/node context when the
          violation is localised. *)
  | Resource_exhausted of { what : string; limit : int; detail : string }
      (** A configured budget refused the work (e.g. the SAT compiler's
          [LPH_SAT_BUDGET] tabulation cap). *)
  | Overloaded of { what : string; detail : string }
      (** A component refused new work because its queue or capacity is
          full (e.g. the serve scheduler's request queue); the caller
          should back off and retry. *)
  | Deadline_exceeded of { what : string; deadline_ms : int; detail : string }
      (** Work was abandoned because its per-request deadline
          ([deadline_ms], e.g. [LPH_SERVE_TIMEOUT_MS]) expired before
          it ran to completion. *)

exception Error of t

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val fault_to_string : fault -> string

(** [decode_error ~what fmt ...] raises [Error (Decode_error _)] with a
    formatted detail string. *)
val decode_error : what:string -> ('a, unit, string, 'b) format4 -> 'a

val protocol_error :
  what:string -> ?round:int -> ?node:int -> ('a, unit, string, 'b) format4 -> 'a

val resource_exhausted : what:string -> limit:int -> ('a, unit, string, 'b) format4 -> 'a

val overloaded : what:string -> ('a, unit, string, 'b) format4 -> 'a

val deadline_exceeded : what:string -> deadline_ms:int -> ('a, unit, string, 'b) format4 -> 'a
