(* The shared typed error taxonomy for the runtime. Every malformed-wire,
   protocol-violation and resource-refusal path in the library raises
   [Error of t] instead of a stringly [Failure _] / [Invalid_argument _],
   so callers (and the fault fuzzer) can react to the *kind* of failure
   without parsing messages. *)

type fault = {
  fault_kind : string;  (* "corrupt", "drop", "crash", ... *)
  seed : int;           (* fault-plan seed, for reproduction *)
  round : int;          (* round in which the fault fired; -1 if n/a *)
  node : int;           (* node it hit; -1 if n/a *)
  detail : string;
}

type t =
  | Decode_error of { what : string; detail : string }
  | Protocol_error of { what : string; detail : string; round : int option; node : int option }
  | Resource_exhausted of { what : string; limit : int; detail : string }
  | Overloaded of { what : string; detail : string }
  | Deadline_exceeded of { what : string; deadline_ms : int; detail : string }

exception Error of t

let to_string = function
  | Decode_error { what; detail } -> Printf.sprintf "%s: decode error: %s" what detail
  | Protocol_error { what; detail; round; node } ->
      let ctx =
        match (round, node) with
        | None, None -> ""
        | Some r, None -> Printf.sprintf " (round %d)" r
        | None, Some v -> Printf.sprintf " (node %d)" v
        | Some r, Some v -> Printf.sprintf " (round %d, node %d)" r v
      in
      Printf.sprintf "%s: protocol error%s: %s" what ctx detail
  | Resource_exhausted { what; limit; detail } ->
      Printf.sprintf "%s: resource exhausted (limit %d): %s" what limit detail
  | Overloaded { what; detail } -> Printf.sprintf "%s: overloaded: %s" what detail
  | Deadline_exceeded { what; deadline_ms; detail } ->
      Printf.sprintf "%s: deadline exceeded (%d ms): %s" what deadline_ms detail

let pp fmt e = Format.pp_print_string fmt (to_string e)

let fault_to_string f =
  Printf.sprintf "%s@seed=%d,round=%d,node=%d%s" f.fault_kind f.seed f.round f.node
    (if f.detail = "" then "" else ": " ^ f.detail)

let decode_error ~what fmt =
  Printf.ksprintf (fun detail -> raise (Error (Decode_error { what; detail }))) fmt

let protocol_error ~what ?round ?node fmt =
  Printf.ksprintf (fun detail -> raise (Error (Protocol_error { what; detail; round; node }))) fmt

let resource_exhausted ~what ~limit fmt =
  Printf.ksprintf (fun detail -> raise (Error (Resource_exhausted { what; limit; detail }))) fmt

let overloaded ~what fmt =
  Printf.ksprintf (fun detail -> raise (Error (Overloaded { what; detail }))) fmt

let deadline_exceeded ~what ~deadline_ms fmt =
  Printf.ksprintf (fun detail -> raise (Error (Deadline_exceeded { what; deadline_ms; detail }))) fmt

(* Register a printer so uncaught errors (and OCAMLRUNPARAM=b backtraces
   in CI) show the structured message instead of an opaque constructor. *)
let () =
  Printexc.register_printer (function
    | Error e -> Some ("Lph_util.Error.Error: " ^ to_string e)
    | _ -> None)
