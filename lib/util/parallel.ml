(* A small work-pool on OCaml 5 domains (stdlib only).

   Tasks are list elements; workers pull indices from an atomic counter
   and write results into a slot array, so results always come back in
   input order regardless of which domain ran what. Early-exit
   combinators ([exists], [for_all], [find_map_first]) share a stop
   flag; [find_map_first] additionally tracks the lowest hit index so
   the returned witness is the one sequential evaluation would find.

   Nested calls (a parallel sweep whose tasks themselves call a parallel
   solver) run sequentially in the inner layer instead of spawning
   domains quadratically.

   Helper domains are PERSISTENT: the first parallel call spawns a
   shared worker team which later calls (combinators and [with_team]
   alike) re-dispatch onto through a condition-variable barrier, so a
   long-lived process — the serve daemon dispatching thousands of
   batches — pays the domain-spawn cost once, not per call. The shared
   team is leased with a try-lock: a second thread arriving while the
   team is busy falls back to spawning its own throwaway workers
   ([drive]), preserving the determinism contract under concurrency. *)

let default_cap = 4

let jobs () =
  match Sys.getenv_opt "LPH_JOBS" with
  | None | Some "" -> min default_cap (Domain.recommended_domain_count ())
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ -> invalid_arg "Parallel: LPH_JOBS must be a positive integer")

let inside_pool = Domain.DLS.new_key (fun () -> false)

(* Every domain spawn in this module goes through [spawn] so tests can
   assert reuse: a warmed pool serves any number of calls without the
   counter moving. *)
let total_spawned = Atomic.make 0

let spawn f =
  Atomic.incr total_spawned;
  Domain.spawn f

let domains_spawned () = Atomic.get total_spawned

(* Run [task i] for every index, at most [jobs] at a time. [task] must
   itself decide what to record; [should_stop ()] lets it end the run
   early. Exceptions from any worker are re-raised in the caller. The
   throwaway-domain path, used only when the shared team is busy. *)
let drive ~jobs:j ~n ~stop task =
  let next = Atomic.make 0 in
  let failure = Atomic.make None in
  let worker () =
    Domain.DLS.set inside_pool true;
    let rec loop () =
      if (not (Atomic.get stop)) && Atomic.get failure = None then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (try task i
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set failure None (Some (e, bt)));
             Atomic.set stop true);
          loop ()
        end
      end
    in
    loop ()
  in
  let helpers = List.init (min (j - 1) (max 0 (n - 1))) (fun _ -> spawn worker) in
  worker ();
  List.iter Domain.join helpers;
  Domain.DLS.set inside_pool false;
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let effective_jobs j =
  if Domain.DLS.get inside_pool then 1 else match j with Some j -> j | None -> jobs ()

(* A persistent worker team for batch-structured workloads: domains are
   spawned once and re-dispatched every batch through a
   condition-variable barrier, so a batch costs two broadcasts instead
   of [jobs - 1] domain spawns. *)

type team = {
  jobs : int;
  mutex : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable epoch : int; (* bumped once per team_iter batch *)
  mutable shutdown : bool;
  mutable n : int;
  mutable task : int -> unit;
  next : int Atomic.t;
  mutable active : int; (* helpers still working on the current epoch *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable helpers : unit Domain.t list;
}

let team_jobs t = t.jobs

let make_team j =
  {
    jobs = j;
    mutex = Mutex.create ();
    start = Condition.create ();
    finished = Condition.create ();
    epoch = 0;
    shutdown = false;
    n = 0;
    task = ignore;
    next = Atomic.make 0;
    active = 0;
    failure = None;
    helpers = [];
  }

(* Pull indices until exhausted; the first failure is recorded and ends
   the batch early (the counter is pushed past [n]). *)
let team_pull t =
  let rec go () =
    let i = Atomic.fetch_and_add t.next 1 in
    if i < t.n then begin
      (try t.task i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.mutex;
         if t.failure = None then t.failure <- Some (e, bt);
         Mutex.unlock t.mutex;
         Atomic.set t.next t.n);
      go ()
    end
  in
  go ()

let team_helper t () =
  Domain.DLS.set inside_pool true;
  Mutex.lock t.mutex;
  let seen = ref 0 in
  let rec loop () =
    while (not t.shutdown) && t.epoch = !seen do
      Condition.wait t.start t.mutex
    done;
    if not t.shutdown then begin
      seen := t.epoch;
      Mutex.unlock t.mutex;
      team_pull t;
      Mutex.lock t.mutex;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.finished;
      loop ()
    end
  in
  loop ();
  Mutex.unlock t.mutex

let spawn_helpers t = t.helpers <- List.init (t.jobs - 1) (fun _ -> spawn (team_helper t))

let teardown t =
  Mutex.lock t.mutex;
  t.shutdown <- true;
  Condition.broadcast t.start;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.helpers;
  t.helpers <- []

let team_iter t n task =
  if t.jobs <= 1 then
    for i = 0 to n - 1 do
      task i
    done
  else begin
    Mutex.lock t.mutex;
    t.n <- n;
    t.task <- task;
    t.failure <- None;
    Atomic.set t.next 0;
    t.active <- t.jobs - 1;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    (* the calling domain participates; its tasks count as inside the
       pool so nested combinators degrade to sequential *)
    let was_inside = Domain.DLS.get inside_pool in
    Domain.DLS.set inside_pool true;
    team_pull t;
    Domain.DLS.set inside_pool was_inside;
    Mutex.lock t.mutex;
    while t.active > 0 do
      Condition.wait t.finished t.mutex
    done;
    let failure = t.failure in
    Mutex.unlock t.mutex;
    match failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

(* ---- the shared team ------------------------------------------------

   [shared_busy] is the lease: held from [acquire] to [release], so at
   most one caller dispatches on the shared helpers at a time.
   [shared_state] only guards the ref itself. A caller that cannot get
   the lease (another thread is mid-batch) gets [None] and uses
   throwaway domains instead — never blocks, never deadlocks, same
   results. Changing [LPH_JOBS] between calls retires the old team
   (helpers are joined under the lease, when no batch is in flight) and
   spawns a fresh one at the new width. *)

let shared_busy = Mutex.create ()

let shared_state = Mutex.create ()

let shared : team option ref = ref None

let shutdown_registered = ref false

(* Joined at exit so helper domains never outlive main. If some thread
   still holds the lease at exit, skip: the runtime tears the process
   down regardless, and joining would hang. *)
let shutdown_shared () =
  if Mutex.try_lock shared_busy then begin
    Mutex.lock shared_state;
    (match !shared with Some t -> teardown t | None -> ());
    shared := None;
    Mutex.unlock shared_state;
    Mutex.unlock shared_busy
  end

let acquire j =
  if j <= 1 then None
  else if Mutex.try_lock shared_busy then
    let t =
      Mutex.protect shared_state (fun () ->
          match !shared with
          | Some t when t.jobs = j -> t
          | prev ->
              (match prev with Some t -> teardown t | None -> ());
              let t = make_team j in
              spawn_helpers t;
              shared := Some t;
              if not !shutdown_registered then begin
                shutdown_registered := true;
                at_exit shutdown_shared
              end;
              t)
    in
    Some t
  else None

let release () = Mutex.unlock shared_busy

let prewarm ?jobs:j () =
  match acquire (effective_jobs j) with Some _ -> release () | None -> ()

(* Dispatch one batch: on the shared team when the lease is free, on
   throwaway domains otherwise. *)
let run_batch ~jobs:j ~n ~stop task =
  match acquire j with
  | Some t ->
      Fun.protect ~finally:release (fun () ->
          team_iter t n (fun i -> if not (Atomic.get stop) then task i))
  | None -> drive ~jobs:j ~n ~stop task

let map ?jobs:j f xs =
  let j = effective_jobs j in
  if j <= 1 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let out = Array.make n None in
    run_batch ~jobs:j ~n ~stop:(Atomic.make false) (fun i -> out.(i) <- Some (f arr.(i)));
    List.init n (fun i -> match out.(i) with Some y -> y | None -> assert false)
  end

let find_map_first ?jobs:j f xs =
  let j = effective_jobs j in
  if j <= 1 then List.find_map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let out = Array.make n None in
    let best = Atomic.make max_int in
    let stop = Atomic.make false in
    run_batch ~jobs:j ~n ~stop (fun i ->
        (* indices beyond an already-found witness cannot win; earlier
           ones are still pulled in order, so the minimum is exact *)
        if i <= Atomic.get best then
          match f arr.(i) with
          | Some _ as hit ->
              out.(i) <- hit;
              let rec lower () =
                let b = Atomic.get best in
                if i < b && not (Atomic.compare_and_set best b i) then lower ()
              in
              lower ();
              if Atomic.get best = 0 then Atomic.set stop true
          | None -> ());
    let rec first i = if i >= n then None else match out.(i) with Some _ as r -> r | None -> first (i + 1) in
    first 0
  end

let exists ?jobs:j p xs =
  let j = effective_jobs j in
  if j <= 1 then List.exists p xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let stop = Atomic.make false in
    let found = Atomic.make false in
    run_batch ~jobs:j ~n ~stop (fun i ->
        if p arr.(i) then begin
          Atomic.set found true;
          Atomic.set stop true
        end);
    Atomic.get found
  end

let for_all ?jobs p xs = not (exists ?jobs (fun x -> not (p x)) xs)

let with_team ?jobs:j f =
  let j = effective_jobs j in
  if j <= 1 then f (make_team j)
  else
    match acquire j with
    | Some t -> Fun.protect ~finally:release (fun () -> f t)
    | None ->
        let t = make_team j in
        spawn_helpers t;
        Fun.protect ~finally:(fun () -> teardown t) (fun () -> f t)
