(* Values are serialized into a Buffer; decoding threads an explicit cursor
   through the input string. All formats are self-delimiting. *)

type 'a t = {
  enc : Buffer.t -> 'a -> unit;
  dec : string -> int -> 'a * int; (* returns value and next cursor *)
}

let encode c v =
  let buf = Buffer.create 64 in
  c.enc buf v;
  Buffer.contents buf

let decode c s =
  let v, pos = c.dec s 0 in
  if pos <> String.length s then
    Error.decode_error ~what:"Codec.decode" "trailing garbage (%d of %d bytes consumed)" pos
      (String.length s);
  v

let encoded_length c v =
  let buf = Buffer.create 64 in
  c.enc buf v;
  Buffer.length buf

let bits_length c v = 8 * encoded_length c v

type wire = Packed | Bits

let mode =
  ref
    (match Sys.getenv_opt "LPH_WIRE" with
    | None | Some "packed" -> Packed
    | Some ("bits" | "legacy") -> Bits
    | Some other -> invalid_arg ("Codec: LPH_WIRE must be \"packed\" or \"bits\", got " ^ other))

let wire_mode () = !mode

let set_wire_mode m = mode := m

(* the 8-character '0'/'1' expansion of each byte value, pre-packed as a
   little-endian int64 so expansion is one 8-byte store per input byte *)
let byte_bits =
  lazy
    (Array.init 256 (fun b ->
         let s = String.init 8 (fun i -> if (b lsr (7 - i)) land 1 = 1 then '1' else '0') in
         String.get_int64_le s 0))

let encode_bits c v =
  let raw = encode c v in
  let tbl = Lazy.force byte_bits in
  let n = String.length raw in
  let out = Bytes.create (8 * n) in
  for i = 0 to n - 1 do
    Bytes.set_int64_le out (8 * i) (Array.unsafe_get tbl (Char.code (String.unsafe_get raw i)))
  done;
  Bytes.unsafe_to_string out

let decode_bits c s =
  let len = String.length s in
  if len mod 8 <> 0 then
    Error.decode_error ~what:"Codec.decode_bits" "length %d not a multiple of 8" len;
  let nb = len / 8 in
  let raw = Bytes.create nb in
  (* accumulate validity instead of branching per character: any byte
     that is not '0'/'1' leaves bits above bit 0 in [bad] *)
  let bad = ref 0 in
  for i = 0 to nb - 1 do
    let base = 8 * i in
    let c0 = Char.code (String.unsafe_get s base) - 48 in
    let c1 = Char.code (String.unsafe_get s (base + 1)) - 48 in
    let c2 = Char.code (String.unsafe_get s (base + 2)) - 48 in
    let c3 = Char.code (String.unsafe_get s (base + 3)) - 48 in
    let c4 = Char.code (String.unsafe_get s (base + 4)) - 48 in
    let c5 = Char.code (String.unsafe_get s (base + 5)) - 48 in
    let c6 = Char.code (String.unsafe_get s (base + 6)) - 48 in
    let c7 = Char.code (String.unsafe_get s (base + 7)) - 48 in
    bad := !bad lor c0 lor c1 lor c2 lor c3 lor c4 lor c5 lor c6 lor c7;
    let b =
      (c0 lsl 7) lor (c1 lsl 6) lor (c2 lsl 5) lor (c3 lsl 4) lor (c4 lsl 3) lor (c5 lsl 2)
      lor (c6 lsl 1) lor c7
    in
    Bytes.unsafe_set raw i (Char.unsafe_chr (b land 255))
  done;
  if !bad lsr 1 <> 0 then Error.decode_error ~what:"Codec.decode_bits" "non-bit character";
  decode c (Bytes.unsafe_to_string raw)

(* The transport format follows the global wire mode: [Packed] ships the
   raw serialized bytes, [Bits] the paper-literal '0'/'1' expansion. Cost
   accounting is mode-independent: a packed byte stands for 8 bits. *)

let encode_wire c v = match !mode with Packed -> encode c v | Bits -> encode_bits c v

let decode_wire c s = match !mode with Packed -> decode c s | Bits -> decode_bits c s

let wire_bits s = match !mode with Packed -> 8 * String.length s | Bits -> String.length s

(* Integers are encoded in base 128 with a continuation bit (LEB128-style),
   so small values cost one byte. *)
let int =
  let enc buf n =
    if n < 0 then invalid_arg "Codec.int: negative";
    let rec go n =
      if n < 128 then Buffer.add_char buf (Char.chr n)
      else begin
        Buffer.add_char buf (Char.chr (128 lor (n land 127)));
        go (n lsr 7)
      end
    in
    go n
  in
  let dec s pos =
    (* the continuation-bit shift is bounded: OCaml ints hold 62 value
       bits, so any chunk that would spill past bit 62 (including into
       the sign bit) is rejected instead of silently wrapping *)
    let rec go pos shift acc =
      if pos >= String.length s then Error.decode_error ~what:"Codec.int" "truncated";
      let b = Char.code s.[pos] in
      let chunk = b land 127 in
      if shift > 62 || (chunk <> 0 && chunk > max_int lsr shift) then
        Error.decode_error ~what:"Codec.int" "overflow";
      let acc = acc lor (chunk lsl shift) in
      if b land 128 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
    in
    go pos 0 0
  in
  { enc; dec }

let int_length n =
  if n < 0 then invalid_arg "Codec.int_length: negative";
  let rec go n acc = if n < 128 then acc else go (n lsr 7) (acc + 1) in
  go n 1

let string =
  let enc buf s =
    int.enc buf (String.length s);
    Buffer.add_string buf s
  in
  let dec s pos =
    let len, pos = int.dec s pos in
    if pos + len > String.length s then Error.decode_error ~what:"Codec.string" "truncated";
    (String.sub s pos len, pos + len)
  in
  { enc; dec }

let bool =
  let enc buf b = Buffer.add_char buf (if b then '\001' else '\000') in
  let dec s pos =
    if pos >= String.length s then Error.decode_error ~what:"Codec.bool" "truncated";
    (s.[pos] <> '\000', pos + 1)
  in
  { enc; dec }

let pair ca cb =
  let enc buf (a, b) =
    ca.enc buf a;
    cb.enc buf b
  in
  let dec s pos =
    let a, pos = ca.dec s pos in
    let b, pos = cb.dec s pos in
    ((a, b), pos)
  in
  { enc; dec }

let triple ca cb cc =
  let enc buf (a, b, c) =
    ca.enc buf a;
    cb.enc buf b;
    cc.enc buf c
  in
  let dec s pos =
    let a, pos = ca.dec s pos in
    let b, pos = cb.dec s pos in
    let c, pos = cc.dec s pos in
    ((a, b, c), pos)
  in
  { enc; dec }

let list c =
  let enc buf xs =
    int.enc buf (List.length xs);
    List.iter (c.enc buf) xs
  in
  let dec s pos =
    let n, pos = int.dec s pos in
    let rec go n pos acc =
      if n = 0 then (List.rev acc, pos)
      else
        let x, pos = c.dec s pos in
        go (n - 1) pos (x :: acc)
    in
    go n pos []
  in
  { enc; dec }

let option c =
  let enc buf = function
    | None -> bool.enc buf false
    | Some x ->
        bool.enc buf true;
        c.enc buf x
  in
  let dec s pos =
    let b, pos = bool.dec s pos in
    if b then
      let x, pos = c.dec s pos in
      (Some x, pos)
    else (None, pos)
  in
  { enc; dec }

let map of_wire to_wire c =
  let enc buf v = c.enc buf (to_wire v) in
  let dec s pos =
    let v, pos = c.dec s pos in
    (of_wire v, pos)
  in
  { enc; dec }

let enc c = c.enc

let dec c = c.dec

let custom ~enc ~dec = { enc; dec }
