(** Length-prefixed binary codecs.

    Messages exchanged by distributed machines are strings, so anything a
    node sends (neighbourhood tables, relation encodings, cluster
    descriptions) must round-trip through an explicit wire format. This
    module provides small composable encoders/decoders; all formats are
    self-delimiting so values can be concatenated. *)

type 'a t
(** A codec for values of type ['a]. *)

val encode : 'a t -> 'a -> string
val decode : 'a t -> string -> 'a
(** [decode c s] decodes a value and requires that [s] is consumed
    exactly. Raises [Error.Error (Decode_error _)] on malformed input —
    truncation, overflow, trailing garbage. No decoder in this module
    lets a raw [Failure _] escape. *)

val encode_bits : 'a t -> 'a -> string
(** Like {!encode} but the result is a genuine bit string (characters
    '0'/'1', 8 per byte): the paper's messages, labels and certificates
    are bit strings, so anything that travels as one goes through
    this. *)

val decode_bits : 'a t -> string -> 'a

val encoded_length : 'a t -> 'a -> int
(** Byte length of [encode c v], computed without materializing the
    string. [8 * encoded_length c v] is exactly the length of
    [encode_bits c v] — the charging shim the runtime uses to keep the
    paper's bit accounting while shipping packed bytes. *)

val bits_length : 'a t -> 'a -> int
(** [8 * encoded_length c v]: the length of the bit string the paper's
    protocol would put on the wire for [v]. *)

val int_length : int -> int
(** Byte length of the {!int} encoding of a non-negative integer
    (equals [encoded_length int n]); raises [Invalid_argument] on
    negatives. *)

(** {1 Wire mode}

    The runtime transports messages and transformation labels either as
    raw serialized bytes ({!Packed}, the default) or as the paper's
    literal '0'/'1' expansions ({!Bits}, the pre-optimisation seed
    behaviour, kept as the reference for equivalence tests and A/B
    benchmarks). The mode only affects the transport representation;
    all charges and {!Runner.stats}-style accounting are stated in bits
    and identical in both modes. Initialised from [LPH_WIRE]
    ("packed" | "bits"); raises [Invalid_argument] on other values. *)

type wire = Packed | Bits

val wire_mode : unit -> wire

val set_wire_mode : wire -> unit
(** For tests and A/B benchmarks. Do not flip it while a run is in
    flight: messages encoded in one mode must be decoded in the same
    mode. *)

val encode_wire : 'a t -> 'a -> string
(** [encode] or [encode_bits] according to the current mode. *)

val decode_wire : 'a t -> string -> 'a

val wire_bits : string -> int
(** The bit-accounted length of an {!encode_wire} result: [8 * length]
    in packed mode, [length] in bits mode. *)

(** {1 Primitives} *)

val int : int t
(** Non-negative integers (variable-length). *)

val string : string t
(** Arbitrary strings, length-prefixed. *)

val bool : bool t

(** {1 Combinators} *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val list : 'a t -> 'a list t
val option : 'a t -> 'a option t
val map : ('a -> 'b) -> ('b -> 'a) -> 'a t -> 'b t
(** [map of_wire to_wire c] transports a codec along an isomorphism. *)

(** {1 Cursor access}

    Escape hatch for hot paths: a hand-written codec over the same
    primitives avoids the intermediate tuples the generic combinators
    build. The custom functions must produce/consume exactly the bytes
    of the combinator layout they replace (pairs and triples are plain
    concatenation), or cross-mode equivalence breaks. *)

val enc : 'a t -> Buffer.t -> 'a -> unit
(** Append the encoding of a value to a buffer. *)

val dec : 'a t -> string -> int -> 'a * int
(** Decode a value at a cursor; returns the value and the next cursor.
    Raises [Error.Error (Decode_error _)] on malformed input. *)

val custom : enc:(Buffer.t -> 'a -> unit) -> dec:(string -> int -> 'a * int) -> 'a t
(** Build a codec from explicit cursor functions. *)
