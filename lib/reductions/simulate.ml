module LA = Lph_machine.Local_algo
module Gather = Lph_machine.Gather
module C = Lph_util.Codec

let hosted_certs_codec : (string * string) list C.t = C.list (C.pair C.string C.string)

let hosted_identifier ~owner ~local = C.encode_bits (C.pair C.string C.string) (owner, local)

(* wire format of one real message during simulation: the payloads of
   all simulated messages crossing that original edge.

   The paper's protocol ships, per crossing, (source local name,
   destination local name, payload bit string). Under the packed wire
   mode the payload's bit-accounting length travels alongside its
   (shorter) packed bytes so the receiver can reconstruct the simulated
   message's cost; the real message itself is costed at the bit-string
   length of the paper's format, computed arithmetically below. *)
let crossing_codec = C.list (C.triple C.string C.string C.string)
(* (source local name in the sender's cluster,
    destination local name in the receiver's cluster,
    payload) *)

let packed_crossing_codec : ((string * string) * (int * string)) list C.t =
  C.list (C.pair (C.pair C.string C.string) (C.pair C.int C.string))
(* ((source local, destination local), (payload cost, payload wire)) *)

(* Bit-string length of [crossing_codec] applied to payloads of the
   given costs: 8x the packed byte length, field by field
   (list = count + items, string = length prefix + bytes). *)
let crossing_cost crossings =
  let slen s = C.int_length (String.length s) + String.length s in
  8
  * List.fold_left
      (fun acc (src, dst, (m : LA.msg)) ->
        acc + slen src + slen dst + C.int_length m.LA.cost + m.LA.cost)
      (C.int_length (List.length crossings))
      crossings

type nbr_kind = Internal of int | Remote of int * string
(* Internal i: the i-th hosted node of the same cluster.
   Remote (vi, rlocal): node [rlocal] in the cluster of the vi-th real
   neighbour (identifier order). *)

type hosted = {
  local : string;
  nbrs : (string * nbr_kind) array; (* (gid, kind), sorted by gid *)
  mutable islots : int array;
      (* for [Internal j] neighbours: our slot in the outbox of hosted
         node [j] (precomputed at build time); -1 elsewhere *)
  run : int -> LA.msg list -> LA.msg list * bool;
  output : unit -> string;
  mutable finished : bool;
  mutable out : LA.msg array; (* outbox of the previous simulated round *)
}

type sim = {
  hosted : hosted array;
  real_neighbours : string array; (* identifiers, sorted *)
  start_round : int; (* first simulated round = start_round + 1 *)
  mutable verdict : string option;
}

type phase = Gathering of Gather.gather_state | Simulating of sim | Finished of string

type state = { mutable phase : phase }

let make_runner (LA.Packed inner) ctx_inner =
  let st = ref (inner.LA.init ctx_inner) in
  let run round inbox =
    let s, out, fin = inner.LA.round ctx_inner round !st ~inbox in
    st := s;
    (out, fin)
  in
  let output () = inner.LA.output !st in
  (run, output)

let build_sim reduction ~inner ~(ctx : LA.ctx) ~round ball =
  let cluster = reduction.Cluster.compute ctx ball in
  let real_neighbours =
    Array.of_list
      (List.sort Lph_graph.Identifiers.compare_id
         (List.filter_map
            (fun e -> if e.Gather.dist = 1 then Some e.Gather.ident else None)
            ball.Gather.entries))
  in
  let real_index_tbl = Hashtbl.create 16 in
  Array.iteri (fun i w -> Hashtbl.replace real_index_tbl w i) real_neighbours;
  let real_index ident =
    match Hashtbl.find_opt real_index_tbl ident with
    | Some i -> i
    | None -> Lph_util.Error.protocol_error ~what:"Simulate" "boundary edge to a non-neighbour"
  in
  let index_of_local = Hashtbl.create 16 in
  List.iteri (fun i (local, _) -> Hashtbl.replace index_of_local local i) cluster.Cluster.nodes;
  (* adjacency of each hosted node in the transformed graph *)
  let adjacency = Array.make (List.length cluster.Cluster.nodes) [] in
  let add i entry = adjacency.(i) <- entry :: adjacency.(i) in
  List.iter
    (fun (a, b) ->
      let ia = Hashtbl.find index_of_local a and ib = Hashtbl.find index_of_local b in
      add ia (hosted_identifier ~owner:ctx.LA.ident ~local:b, Internal ib);
      add ib (hosted_identifier ~owner:ctx.LA.ident ~local:a, Internal ia))
    cluster.Cluster.internal_edges;
  List.iter
    (fun (a, w, rlocal) ->
      let ia = Hashtbl.find index_of_local a in
      add ia (hosted_identifier ~owner:w ~local:rlocal, Remote (real_index w, rlocal)))
    cluster.Cluster.boundary_edges;
  (* hosted certificates, one (local name -> certificate) table per
     level; first binding wins, matching [List.assoc_opt] *)
  let cert_tables =
    List.map
      (fun cert ->
        let tbl = Hashtbl.create 16 in
        (try
           List.iter
             (fun (local, c) -> if not (Hashtbl.mem tbl local) then Hashtbl.add tbl local c)
             (C.decode_bits hosted_certs_codec cert)
         with Lph_util.Error.Error (Lph_util.Error.Decode_error _) -> ());
        tbl)
      ctx.LA.certs
  in
  let hosted =
    Array.of_list
      (List.mapi
         (fun i (local, label) ->
           let nbrs =
             Array.of_list
               (List.sort (fun (g1, _) (g2, _) -> compare g1 g2) adjacency.(i))
           in
           let certs =
             List.map
               (fun tbl -> match Hashtbl.find_opt tbl local with Some c -> c | None -> "")
               cert_tables
           in
           let ctx_inner =
             {
               LA.label;
               ident = hosted_identifier ~owner:ctx.LA.ident ~local;
               certs;
               cert_list = Lph_util.Bitstring.join_hash certs;
               degree = Array.length nbrs;
               charge = ctx.LA.charge;
             }
           in
           let run, output = make_runner inner ctx_inner in
           { local; nbrs; islots = [||]; run; output; finished = false; out = [||] })
         cluster.Cluster.nodes)
  in
  (* second pass: resolve, once, the slot each internal message is read
     from — the position of this node's gid in the sender's neighbour
     ordering — instead of scanning the sender's neighbours every round *)
  let slot_tables =
    Array.map
      (fun h ->
        let tbl = Hashtbl.create (Array.length h.nbrs) in
        Array.iteri (fun s (gid, _) -> if not (Hashtbl.mem tbl gid) then Hashtbl.add tbl gid s) h.nbrs;
        tbl)
      hosted
  in
  Array.iter
    (fun h ->
      let gid = hosted_identifier ~owner:ctx.LA.ident ~local:h.local in
      h.islots <-
        Array.map
          (fun (_, kind) ->
            match kind with
            | Remote _ -> -1
            | Internal j -> (
                match Hashtbl.find_opt slot_tables.(j) gid with Some s -> s | None -> -1))
          h.nbrs)
    hosted;
  { hosted; real_neighbours; start_round = round; verdict = None }

let sim_round sim ~(ctx : LA.ctx) ~round ~inbox ~sim_rounds =
  let s = round - sim.start_round in
  (* incoming simulated messages, keyed by (real neighbour index,
     source local, destination local) *)
  let deliveries = Hashtbl.create 32 in
  List.iteri
    (fun vi (msg : LA.msg) ->
      if msg.LA.wire <> "" then begin
        ctx.LA.charge msg.LA.cost;
        match C.wire_mode () with
        | C.Bits -> (
            match C.decode_bits crossing_codec msg.LA.wire with
            | crossings ->
                List.iter
                  (fun (src, dst, payload) ->
                    Hashtbl.replace deliveries (vi, src, dst)
                      { LA.wire = payload; cost = String.length payload })
                  crossings
            | exception Lph_util.Error.Error (Lph_util.Error.Decode_error _) -> ())
        | C.Packed -> (
            match C.decode packed_crossing_codec msg.LA.wire with
            | crossings ->
                List.iter
                  (fun ((src, dst), (cost, wire)) ->
                    Hashtbl.replace deliveries (vi, src, dst) { LA.wire; cost })
                  crossings
            | exception Lph_util.Error.Error (Lph_util.Error.Decode_error _) -> ())
      end)
    inbox;
  (* run one simulated round at each hosted node; internal messages are
     read from a snapshot of the previous round's outboxes *)
  let prev_out = Array.map (fun h -> h.out) sim.hosted in
  let msg_at out slot = if slot >= 0 && slot < Array.length out then out.(slot) else LA.no_msg in
  Array.iter
    (fun h ->
      if not h.finished then begin
        let inbox_h =
          List.init (Array.length h.nbrs) (fun i ->
              match snd h.nbrs.(i) with
              | Internal j -> msg_at prev_out.(j) h.islots.(i)
              | Remote (vi, rlocal) -> (
                  match Hashtbl.find_opt deliveries (vi, rlocal, h.local) with
                  | Some p -> p
                  | None -> LA.no_msg))
        in
        let out, fin = h.run s inbox_h in
        let d = Array.length h.nbrs in
        if List.length out > d then
          invalid_arg
            (Printf.sprintf "Simulate: inner algorithm emits %d messages at hosted node %s of degree %d"
               (List.length out) h.local d);
        let out_arr = Array.make d LA.no_msg in
        List.iteri (fun i m -> out_arr.(i) <- m) out;
        h.out <- out_arr;
        h.finished <- fin
      end
      else h.out <- [||])
    sim.hosted;
  (* Internal delivery happens next round by reading [out]; build the
     real messages for the remote crossings now. *)
  let per_real = Array.make (Array.length sim.real_neighbours) [] in
  Array.iter
    (fun h ->
      Array.iteri
        (fun i (_, kind) ->
          match kind with
          | Internal _ -> ()
          | Remote (vi, rlocal) ->
              let payload = msg_at h.out i in
              per_real.(vi) <- (h.local, rlocal, payload) :: per_real.(vi))
        h.nbrs)
    sim.hosted;
  let out =
    Array.to_list
      (Array.map
         (fun crossings ->
           if crossings = [] then LA.no_msg
           else begin
             let crossings = List.rev crossings in
             let cost = crossing_cost crossings in
             let wire =
               match C.wire_mode () with
               | C.Bits ->
                   C.encode_bits crossing_codec
                     (List.map (fun (src, dst, (m : LA.msg)) -> (src, dst, m.LA.wire)) crossings)
               | C.Packed ->
                   C.encode packed_crossing_codec
                     (List.map
                        (fun (src, dst, (m : LA.msg)) -> ((src, dst), (m.LA.cost, m.LA.wire)))
                        crossings)
             in
             { LA.wire; cost }
           end)
         per_real)
  in
  List.iter (fun (m : LA.msg) -> ctx.LA.charge m.LA.cost) out;
  let done_ = Array.for_all (fun h -> h.finished) sim.hosted || s >= sim_rounds in
  if done_ then begin
    let verdict = if Array.for_all (fun h -> h.output () = "1") sim.hosted then "1" else "0" in
    sim.verdict <- Some verdict
  end;
  (out, done_)

let through_reduction reduction ~inner ?(sim_rounds = 64) () =
  let name = Printf.sprintf "%s>>%s" reduction.Cluster.name (LA.name inner) in
  LA.Packed
    {
      LA.name;
      levels = LA.levels inner;
      (* A hosted node's radius-r view of the transformed graph maps
         back to source owners within distance r (every transformed
         edge crosses at most one source edge), and each owner's
         cluster is a function of its gather-radius ball — so the
         composition verifies within gather_radius + r of the source
         graph. Conservative: the semantic radius can be smaller
         (e.g. a verdict that ignores most of the cluster). *)
      radius =
        Option.map
          (fun r -> reduction.Cluster.gather_radius + r)
          (LA.radius inner);
      init = (fun ctx -> { phase = Gathering (Gather.init_gather ctx) });
      round =
        (fun ctx round st ~inbox ->
          match st.phase with
          | Gathering gs ->
              let out, ball_done =
                Gather.step_gather ~radius:reduction.Cluster.gather_radius ctx round gs ~inbox
              in
              if ball_done then begin
                let sim =
                  build_sim reduction ~inner ~ctx ~round (Gather.completed_ball gs)
                in
                st.phase <- Simulating sim
              end;
              (st, out, false)
          | Simulating sim ->
              let out, done_ = sim_round sim ~ctx ~round ~inbox ~sim_rounds in
              if done_ then
                st.phase <- Finished (match sim.verdict with Some v -> v | None -> "0");
              (st, out, done_)
          | Finished _ -> (st, [], true));
      output =
        (fun st -> match st.phase with Finished v -> v | Gathering _ | Simulating _ -> "0");
    }

let lift_cert_assignment ~owners ~card ~levels certs' =
  (* group the transformed-graph nodes by owner once, splitting each
     certificate list a single time, instead of rescanning [owners] for
     every (original node, level) pair *)
  let by_owner = Array.make card [] in
  Array.iteri
    (fun j (owner, local) ->
      if owner >= 0 && owner < card then
        let parts = Array.of_list (Lph_graph.Certificates.split_list ~levels certs'.(j)) in
        by_owner.(owner) <- (local, parts) :: by_owner.(owner))
    owners;
  let by_owner = Array.map List.rev by_owner in
  Array.init card (fun u ->
      let table level =
        C.encode_bits hosted_certs_codec
          (List.map (fun (local, parts) -> (local, parts.(level))) by_owner.(u))
      in
      Lph_util.Bitstring.join_hash (List.init levels table))
