module LA = Lph_machine.Local_algo
module Gather = Lph_machine.Gather
module C = Lph_util.Codec

let hosted_certs_codec : (string * string) list C.t = C.list (C.pair C.string C.string)

let hosted_identifier ~owner ~local = C.encode_bits (C.pair C.string C.string) (owner, local)

(* wire format of one real message during simulation: the payloads of
   all simulated messages crossing that original edge *)
let crossing_codec = C.list (C.triple C.string C.string C.string)
(* (source local name in the sender's cluster,
    destination local name in the receiver's cluster,
    payload) *)

type nbr_kind = Internal of int | Remote of int * string
(* Internal i: the i-th hosted node of the same cluster.
   Remote (vi, rlocal): node [rlocal] in the cluster of the vi-th real
   neighbour (identifier order). *)

type hosted = {
  local : string;
  nbrs : (string * nbr_kind) array; (* (gid, kind), sorted by gid *)
  run : int -> string list -> string list * bool;
  output : unit -> string;
  mutable finished : bool;
  mutable out : string list; (* outbox of the previous simulated round *)
}

type sim = {
  hosted : hosted array;
  index_of_local : (string, int) Hashtbl.t;
  real_neighbours : string array; (* identifiers, sorted *)
  start_round : int; (* first simulated round = start_round + 1 *)
  mutable verdict : string option;
}

type phase = Gathering of Gather.gather_state | Simulating of sim | Finished of string

type state = { mutable phase : phase }

let make_runner (LA.Packed inner) ctx_inner =
  let st = ref (inner.LA.init ctx_inner) in
  let run round inbox =
    let s, out, fin = inner.LA.round ctx_inner round !st ~inbox in
    st := s;
    (out, fin)
  in
  let output () = inner.LA.output !st in
  (run, output)

let build_sim reduction ~inner ~(ctx : LA.ctx) ~round ball =
  let cluster = reduction.Cluster.compute ctx ball in
  let real_neighbours =
    Array.of_list
      (List.sort Lph_graph.Identifiers.compare_id
         (List.filter_map
            (fun e -> if e.Gather.dist = 1 then Some e.Gather.ident else None)
            ball.Gather.entries))
  in
  let real_index ident =
    let found = ref (-1) in
    Array.iteri (fun i w -> if w = ident then found := i) real_neighbours;
    if !found < 0 then failwith "Simulate: boundary edge to a non-neighbour";
    !found
  in
  let index_of_local = Hashtbl.create 16 in
  List.iteri (fun i (local, _) -> Hashtbl.replace index_of_local local i) cluster.Cluster.nodes;
  (* adjacency of each hosted node in the transformed graph *)
  let adjacency = Array.make (List.length cluster.Cluster.nodes) [] in
  let add i entry = adjacency.(i) <- entry :: adjacency.(i) in
  List.iter
    (fun (a, b) ->
      let ia = Hashtbl.find index_of_local a and ib = Hashtbl.find index_of_local b in
      add ia (hosted_identifier ~owner:ctx.LA.ident ~local:b, Internal ib);
      add ib (hosted_identifier ~owner:ctx.LA.ident ~local:a, Internal ia))
    cluster.Cluster.internal_edges;
  List.iter
    (fun (a, w, rlocal) ->
      let ia = Hashtbl.find index_of_local a in
      add ia (hosted_identifier ~owner:w ~local:rlocal, Remote (real_index w, rlocal)))
    cluster.Cluster.boundary_edges;
  (* hosted certificates, one table per level *)
  let cert_tables =
    List.map
      (fun cert -> try C.decode_bits hosted_certs_codec cert with Failure _ -> [])
      ctx.LA.certs
  in
  let hosted =
    Array.of_list
      (List.mapi
         (fun i (local, label) ->
           let nbrs =
             Array.of_list
               (List.sort (fun (g1, _) (g2, _) -> compare g1 g2) adjacency.(i))
           in
           let certs =
             List.map (fun table -> match List.assoc_opt local table with Some c -> c | None -> "") cert_tables
           in
           let ctx_inner =
             {
               LA.label;
               ident = hosted_identifier ~owner:ctx.LA.ident ~local;
               certs;
               cert_list = Lph_util.Bitstring.join_hash certs;
               degree = Array.length nbrs;
               charge = ctx.LA.charge;
             }
           in
           let run, output = make_runner inner ctx_inner in
           { local; nbrs; run; output; finished = false; out = [] })
         cluster.Cluster.nodes)
  in
  { hosted; index_of_local; real_neighbours; start_round = round; verdict = None }

let nth_or_empty l i = match List.nth_opt l i with Some s -> s | None -> ""

(* position of hosted node [target] in the neighbour list of hosted [h] *)
let slot_of h target_gid =
  let s = ref (-1) in
  Array.iteri (fun i (g, _) -> if g = target_gid then s := i) h.nbrs;
  !s

let sim_round sim ~(ctx : LA.ctx) ~round ~inbox ~sim_rounds =
  let s = round - sim.start_round in
  (* incoming simulated messages, keyed by (real neighbour index,
     source local, destination local) *)
  let deliveries = Hashtbl.create 32 in
  List.iteri
    (fun vi msg ->
      if msg <> "" then begin
        ctx.LA.charge (String.length msg);
        match C.decode_bits crossing_codec msg with
        | crossings ->
            List.iter
              (fun (src, dst, payload) -> Hashtbl.replace deliveries (vi, src, dst) payload)
              crossings
        | exception Failure _ -> ()
      end)
    inbox;
  (* run one simulated round at each hosted node; internal messages are
     read from a snapshot of the previous round's outboxes *)
  let gid_of h = hosted_identifier ~owner:ctx.LA.ident ~local:h.local in
  let prev_out = Array.map (fun h -> h.out) sim.hosted in
  Array.iter
    (fun h ->
      if not h.finished then begin
        let inbox_h =
          Array.to_list
            (Array.map
               (fun (_, kind) ->
                 match kind with
                 | Internal j ->
                     let sender = sim.hosted.(j) in
                     let slot = slot_of sender (gid_of h) in
                     if slot < 0 then "" else nth_or_empty prev_out.(j) slot
                 | Remote (vi, rlocal) -> (
                     match Hashtbl.find_opt deliveries (vi, rlocal, h.local) with
                     | Some p -> p
                     | None -> ""))
               h.nbrs)
        in
        let out, fin = h.run s inbox_h in
        h.out <- out;
        h.finished <- fin
      end
      else h.out <- [])
    sim.hosted;
  (* Internal delivery happens next round by reading [out]; build the
     real messages for the remote crossings now. *)
  let per_real = Array.make (Array.length sim.real_neighbours) [] in
  Array.iter
    (fun h ->
      Array.iteri
        (fun i (_, kind) ->
          match kind with
          | Internal _ -> ()
          | Remote (vi, rlocal) ->
              let payload = nth_or_empty h.out i in
              per_real.(vi) <- (h.local, rlocal, payload) :: per_real.(vi))
        h.nbrs)
    sim.hosted;
  let out =
    Array.to_list
      (Array.map
         (fun crossings ->
           if crossings = [] then "" else C.encode_bits crossing_codec (List.rev crossings))
         per_real)
  in
  List.iter (fun m -> ctx.LA.charge (String.length m)) out;
  let done_ = Array.for_all (fun h -> h.finished) sim.hosted || s >= sim_rounds in
  if done_ then begin
    let verdict = if Array.for_all (fun h -> h.output () = "1") sim.hosted then "1" else "0" in
    sim.verdict <- Some verdict
  end;
  (out, done_)

let through_reduction reduction ~inner ?(sim_rounds = 64) () =
  let name = Printf.sprintf "%s>>%s" reduction.Cluster.name (LA.name inner) in
  LA.Packed
    {
      LA.name;
      levels = LA.levels inner;
      radius = None;
      init = (fun ctx -> { phase = Gathering (Gather.init_gather ctx) });
      round =
        (fun ctx round st ~inbox ->
          match st.phase with
          | Gathering gs ->
              let out, ball_done =
                Gather.step_gather ~radius:reduction.Cluster.gather_radius ctx round gs ~inbox
              in
              if ball_done then begin
                let sim =
                  build_sim reduction ~inner ~ctx ~round (Gather.completed_ball gs)
                in
                st.phase <- Simulating sim
              end;
              (st, out, false)
          | Simulating sim ->
              let out, done_ = sim_round sim ~ctx ~round ~inbox ~sim_rounds in
              if done_ then
                st.phase <- Finished (match sim.verdict with Some v -> v | None -> "0");
              (st, out, done_)
          | Finished _ -> (st, [], true));
      output =
        (fun st -> match st.phase with Finished v -> v | Gathering _ | Simulating _ -> "0");
    }

let lift_cert_assignment ~owners ~card ~levels certs' =
  Array.init card (fun u ->
      let table level =
        let entries = ref [] in
        Array.iteri
          (fun j (owner, local) ->
            if owner = u then begin
              let parts = Lph_graph.Certificates.split_list ~levels certs'.(j) in
              entries := (local, List.nth parts level) :: !entries
            end)
          owners;
        C.encode_bits hosted_certs_codec (List.rev !entries)
      in
      Lph_util.Bitstring.join_hash (List.init levels table))
