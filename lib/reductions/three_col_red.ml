module LA = Lph_machine.Local_algo
module Gather = Lph_machine.Gather
module BF = Lph_boolean.Bool_formula
module Cnf = Lph_boolean.Cnf
module Bgraph = Lph_boolean.Boolean_graph

let neighbour_entries ball = List.filter (fun e -> e.Gather.dist = 1) ball.Gather.entries

(* ------------------------------------------------------------------ *)
(* SAT-GRAPH -> 3-SAT-GRAPH: per-node Tseytin transformation with      *)
(* identifier-derived fresh names.                                     *)

let to_3sat_compute (ctx : LA.ctx) ball =
  let formula = BF.of_label ctx.LA.label in
  ctx.LA.charge (BF.size formula);
  let cnf = Lph_boolean.Tseytin.transform ~fresh_prefix:("ts" ^ ctx.LA.ident) formula in
  let label = BF.to_label (Cnf.to_formula cnf) in
  {
    Cluster.nodes = [ ("0", label) ];
    internal_edges = [];
    boundary_edges = List.map (fun e -> ("0", e.Gather.ident, "0")) (neighbour_entries ball);
  }

let to_3sat =
  { Cluster.name = "sat-graph-to-3sat-graph"; id_radius = 2; gather_radius = 1; compute = to_3sat_compute }

let to_3sat_correct g ~ids =
  let image = Cluster.apply to_3sat g ~ids in
  Bgraph.is_3cnf_graph image && Bgraph.satisfiable g = Bgraph.satisfiable image

(* ------------------------------------------------------------------ *)
(* 3-SAT-GRAPH -> 3-COLORABLE.                                         *)

let clauses_of_label label =
  match Cnf.of_formula (BF.of_label label) with
  | Some cnf when Cnf.is_3cnf cnf -> cnf
  | Some _ | None -> Lph_util.Error.decode_error ~what:"three_col_red" "label is not a 3-CNF formula"

let lit_node (l : Cnf.literal) = (if l.Cnf.positive then "P+" else "N+") ^ l.Cnf.var

(* Equality connector between my node [a] and the remote node [a'] of
   neighbour [w]. The side with the smaller identifier owns the two
   connector nodes; names are deterministic on both sides. *)
let connector ~mine ~w ~kind a a' =
  let owner_names other = ("X1+" ^ other ^ "+" ^ kind, "X2+" ^ other ^ "+" ^ kind) in
  if Lph_graph.Identifiers.compare_id mine w < 0 then begin
    let c1, c2 = owner_names w in
    ([ c1; c2 ], [ (a, c1); (a, c2); (c1, c2) ], [ (c1, w, a'); (c2, w, a') ])
  end
  else begin
    let c1, c2 = owner_names mine in
    ([], [], [ (a, w, c1); (a, w, c2) ])
  end

let to_three_col_compute (ctx : LA.ctx) ball =
  let cnf = clauses_of_label ctx.LA.label in
  ctx.LA.charge (List.length cnf * 4);
  let vars = Cnf.vars cnf in
  (* palette and literal triangles *)
  let base_nodes = [ "T"; "F"; "B" ] @ List.concat_map (fun v -> [ "P+" ^ v; "N+" ^ v ]) vars in
  let base_edges =
    [ ("T", "F"); ("T", "B"); ("F", "B") ]
    @ List.concat_map
        (fun v -> [ ("P+" ^ v, "N+" ^ v); ("P+" ^ v, "B"); ("N+" ^ v, "B") ])
        vars
  in
  (* one OR gadget: fresh internal nodes i, j and output w *)
  let or_gadget ~tag a b out =
    ( [ "G1" ^ tag; "G2" ^ tag; out ],
      [
        (a, "G1" ^ tag);
        (b, "G2" ^ tag);
        ("G1" ^ tag, "G2" ^ tag);
        ("G1" ^ tag, out);
        ("G2" ^ tag, out);
      ] )
  in
  let clause_gadget i clause =
    let tag k = Printf.sprintf "_%d_%d" i k in
    match clause with
    | [] ->
        (* the empty clause is unsatisfiable: a node adjacent to the whole
           palette cannot be coloured *)
        ([ "E" ^ string_of_int i ], [ ("E" ^ string_of_int i, "T"); ("E" ^ string_of_int i, "F"); ("E" ^ string_of_int i, "B") ])
    | [ l ] -> ([], [ (lit_node l, "F") ])
    | [ l1; l2 ] ->
        let nodes, edges = or_gadget ~tag:(tag 0) (lit_node l1) (lit_node l2) ("O" ^ string_of_int i) in
        (nodes, edges @ [ ("O" ^ string_of_int i, "F"); ("O" ^ string_of_int i, "B") ])
    | [ l1; l2; l3 ] ->
        let m = "M" ^ string_of_int i in
        let nodes1, edges1 = or_gadget ~tag:(tag 0) (lit_node l1) (lit_node l2) m in
        let nodes2, edges2 = or_gadget ~tag:(tag 1) m (lit_node l3) ("O" ^ string_of_int i) in
        (nodes1 @ nodes2, edges1 @ edges2 @ [ ("O" ^ string_of_int i, "F"); ("O" ^ string_of_int i, "B") ])
    | _ -> Lph_util.Error.decode_error ~what:"three_col_red" "clause with more than 3 literals"
  in
  let clause_nodes, clause_edges =
    let parts = List.mapi clause_gadget cnf in
    (List.concat_map fst parts, List.concat_map snd parts)
  in
  (* connectors towards each neighbour: palette (F, B) and shared vars *)
  let mine = ctx.LA.ident in
  let connectors =
    List.concat_map
      (fun e ->
        let w = e.Gather.ident in
        let their_vars = Cnf.vars (clauses_of_label e.Gather.label) in
        let shared = List.filter (fun v -> List.mem v their_vars) vars in
        let links =
          [ ("F", "F", "F"); ("B", "B", "B") ]
          @ List.map (fun v -> ("V" ^ v, "P+" ^ v, "P+" ^ v)) shared
        in
        List.map (fun (kind, a, a') -> connector ~mine ~w ~kind a a') links)
      (neighbour_entries ball)
  in
  let conn_nodes = List.concat_map (fun (n, _, _) -> n) connectors in
  let conn_internal = List.concat_map (fun (_, e, _) -> e) connectors in
  let conn_boundary = List.concat_map (fun (_, _, b) -> b) connectors in
  {
    Cluster.nodes = List.map (fun n -> (n, "")) (base_nodes @ clause_nodes @ conn_nodes);
    internal_edges = base_edges @ clause_edges @ conn_internal;
    boundary_edges = conn_boundary;
  }

let to_three_col =
  {
    Cluster.name = "3sat-graph-to-3colorable";
    id_radius = 2;
    gather_radius = 1;
    compute = to_three_col_compute;
  }

let to_three_col_correct g ~ids =
  let image = Cluster.apply to_three_col g ~ids in
  Bgraph.satisfiable g = Lph_hierarchy.Properties.three_colorable image

let full_chain g ~ids =
  let mid = Cluster.apply to_3sat g ~ids in
  Cluster.apply to_three_col mid ~ids
