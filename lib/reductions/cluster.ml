module G = Lph_graph.Labeled_graph
module C = Lph_util.Codec

type t = {
  nodes : (string * string) list;
  internal_edges : (string * string) list;
  boundary_edges : (string * string * string) list;
}

(* Boundary edges are serialized with consecutive triples sharing a
   neighbour identifier grouped under one copy of the identifier —
   reductions emit several boundary edges per neighbour back-to-back, so
   this shrinks cluster labels considerably. Consecutive grouping is
   lossless: ungrouping restores the exact original list. *)
let group_boundary triples =
  let rec go = function
    | [] -> []
    | (local, ident, remote) :: rest -> (
        match go rest with
        | (ident', pairs) :: tl when String.equal ident' ident ->
            (ident, (local, remote) :: pairs) :: tl
        | grouped -> (ident, [ (local, remote) ]) :: grouped)
  in
  go triples

let ungroup_boundary grouped =
  List.concat_map (fun (ident, pairs) -> List.map (fun (l, r) -> (l, ident, r)) pairs) grouped

let codec : t C.t =
  C.map
    (fun (nodes, (internal_edges, grouped)) ->
      { nodes; internal_edges; boundary_edges = ungroup_boundary grouped })
    (fun c -> (c.nodes, (c.internal_edges, group_boundary c.boundary_edges)))
    (C.pair
       (C.list (C.pair C.string C.string))
       (C.pair
          (C.list (C.pair C.string C.string))
          (C.list (C.pair C.string (C.list (C.pair C.string C.string))))))

let assemble g ~ids clusters =
  let n = G.card g in
  if Array.length clusters <> n then
    Lph_util.Error.protocol_error ~what:"Cluster.assemble" "wrong number of clusters";
  (* clusters receive consecutive global indices: node [i] of cluster
     [u] is global [base.(u) + i]. Local names resolve by scanning the
     cluster's (small) name array; large clusters fall back to a
     hashtable. *)
  let base = Array.make n 0 in
  let names = Array.make n [||] in
  let next = ref 0 in
  Array.iteri
    (fun u cluster ->
      if cluster.nodes = [] then Lph_util.Error.protocol_error ~what:"Cluster.assemble" "empty cluster";
      base.(u) <- !next;
      let arr = Array.of_list (List.map fst cluster.nodes) in
      names.(u) <- arr;
      next := !next + Array.length arr)
    clusters;
  let total = !next in
  let dup local u =
    Lph_util.Error.protocol_error ~what:"Cluster.assemble" ~node:u "duplicate local name %s in cluster %d"
      local u
  in
  let lookup =
    Array.init n (fun u ->
        let arr = names.(u) in
        let k = Array.length arr in
        if k <= 32 then begin
          Array.iteri
            (fun i nm ->
              for j = 0 to i - 1 do
                if String.equal arr.(j) nm then dup nm u
              done)
            arr;
          fun name ->
            let rec go i =
              if i >= k then None
              else if String.equal (Array.unsafe_get arr i) name then Some (base.(u) + i)
              else go (i + 1)
            in
            go 0
        end
        else begin
          let t = Hashtbl.create k in
          Array.iteri
            (fun i nm ->
              if Hashtbl.mem t nm then dup nm u;
              Hashtbl.replace t nm (base.(u) + i))
            arr;
          fun name -> Hashtbl.find_opt t name
        end)
  in
  let owners = Array.make total (0, "") in
  let labels = Array.make total "" in
  Array.iteri
    (fun u cluster ->
      List.iteri
        (fun i (local, label) ->
          let gi = base.(u) + i in
          owners.(gi) <- (u, local);
          labels.(gi) <- label)
        cluster.nodes)
    clusters;
  (* map identifiers back to node indices: one global table, with the
     neighbour requirement checked against the (short) adjacency list *)
  let ident_tbl = Hashtbl.create (2 * n) in
  for v = 0 to n - 1 do
    Hashtbl.replace ident_tbl ids.(v) v
  done;
  let node_of_ident u neighbours ident =
    match Hashtbl.find_opt ident_tbl ident with
    | Some v when List.mem v neighbours -> v
    | _ ->
        Lph_util.Error.protocol_error ~what:"Cluster.assemble" ~node:u
          "cluster %d references identifier %s of a non-neighbour" u ident
  in
  let find_exn u name = match lookup.(u) name with Some i -> i | None -> raise Not_found in
  let internal =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun u cluster ->
              List.map
                (fun (a, b) ->
                  let ia = find_exn u a and ib = find_exn u b in
                  (min ia ib, max ia ib))
                cluster.internal_edges)
            clusters))
  in
  (* boundary edges must be declared symmetrically; keyed by the
     endpoint pair packed into one int for cheap hashing *)
  let declared = Hashtbl.create 64 in
  Array.iteri
    (fun u cluster ->
      let neighbours = G.neighbours g u in
      (* consecutive boundary triples usually target the same neighbour;
         a one-slot memo skips most identifier lookups *)
      let memo_ident = ref "" and memo_v = ref (-1) in
      List.iter
        (fun (local, ident, remote) ->
          let v =
            if !memo_v >= 0 && String.equal ident !memo_ident then !memo_v
            else begin
              let v = node_of_ident u neighbours ident in
              memo_ident := ident;
              memo_v := v;
              v
            end
          in
          let ia =
            match lookup.(u) local with
            | Some i -> i
            | None ->
                Lph_util.Error.protocol_error ~what:"Cluster.assemble" ~node:u
                  "unknown local name %s in cluster %d" local u
          in
          let ib =
            match lookup.(v) remote with
            | Some i -> i
            | None ->
                Lph_util.Error.protocol_error ~what:"Cluster.assemble" ~node:u
                  "cluster %d references unknown node %s of cluster %d" u remote v
          in
          Hashtbl.replace declared ((ia * total) + ib) ())
        cluster.boundary_edges)
    clusters;
  let boundary =
    Hashtbl.fold
      (fun key () acc ->
        let ia = key / total and ib = key mod total in
        if not (Hashtbl.mem declared ((ib * total) + ia)) then
          Lph_util.Error.protocol_error ~what:"Cluster.assemble"
            "inter-cluster edge declared by only one side";
        if ia < ib then (ia, ib) :: acc else acc)
      declared []
  in
  let edges = List.sort_uniq compare (internal @ boundary) in
  let graph =
    try G.make ~labels ~edges
    with G.Invalid msg ->
      Lph_util.Error.protocol_error ~what:"Cluster.assemble" "invalid result graph: %s" msg
  in
  (graph, owners)

type reduction = {
  name : string;
  id_radius : int;
  gather_radius : int;
  compute : Lph_machine.Local_algo.ctx -> Lph_machine.Gather.ball -> t;
}

(* Output labels are part of the graph model and must be bit strings
   ([Labeled_graph] enforces it); the packed wire format applies to
   messages only. *)
let encode_label c = C.encode_bits codec c

let decode_label s = C.decode_bits codec s

let algo_of reduction =
  Lph_machine.Gather.map_algo ~name:reduction.name ~radius:reduction.gather_radius ~levels:0
    ~f:(fun ctx ball -> encode_label (reduction.compute ctx ball))

let run_reduction reduction g ~ids =
  Lph_machine.Runner.run (algo_of reduction) g ~ids ()

let apply reduction g ~ids =
  let result = run_reduction reduction g ~ids in
  let clusters =
    Array.init (G.card g) (fun u -> decode_label (G.label result.Lph_machine.Runner.output u))
  in
  fst (assemble g ~ids clusters)

let stats reduction g ~ids = (run_reduction reduction g ~ids).Lph_machine.Runner.stats
