(** Simulation of a machine on the transformed graph (Section 8): the
    mechanism that makes local-polynomial reductions transfer hardness.
    If f is a reduction implemented by clusters and M' decides L', then
    the original network can decide f⁻¹(L') itself: each node computes
    its cluster, hosts one simulated copy of M' per cluster node, and
    forwards inter-cluster messages over the original edges. A node
    accepts iff all its hosted nodes accept — so the whole graph
    accepts iff M' accepts the transformed graph.

    Hosted nodes receive identifiers derived from (owner identifier,
    local name), preserving local uniqueness; hosted certificates are
    carried inside the real certificates as encoded
    (local name, certificate) tables, one per level. *)

val hosted_certs_codec : (string * string) list Lph_util.Codec.t

val through_reduction :
  Cluster.reduction ->
  inner:Lph_machine.Local_algo.packed ->
  ?sim_rounds:int ->
  unit ->
  Lph_machine.Local_algo.packed
(** The simulating machine: gathers the reduction's ball, computes the
    cluster, then runs [inner] on the hosted nodes for at most
    [sim_rounds] (default 64) simulated rounds (stopping early once all
    hosted nodes halt). Its levels equal [inner]'s levels; when [inner]
    declares verification radius [r], the composition declares
    [gather_radius + r] — a sound (possibly loose) bound, since a
    hosted node's radius-[r] transformed view unfolds to source
    clusters computed within that distance. *)

val hosted_identifier : owner:string -> local:string -> string
(** The identifier a hosted node runs under. *)

val lift_cert_assignment :
  owners:(int * string) array ->
  card:int ->
  levels:int ->
  Lph_graph.Certificates.t ->
  Lph_graph.Certificates.t
(** Translate a certificate-list assignment on the transformed graph
    (indexed as produced by {!Cluster.assemble}, [owners] giving each
    new node's (owner, local name)) into the corresponding assignment
    on the original graph ([card] nodes): each original node's level-i
    certificate is the encoded table of its hosted nodes' level-i
    certificates. *)
