(** Clusters and local-polynomial reductions (Section 8).

    A distributed machine implements a graph transformation by having
    each node output an encoding of its {e cluster}: a set of fresh
    nodes with labels, the edges among them, and the edges towards the
    clusters of adjacent original nodes (referenced by the neighbour's
    identifier and the remote node's local name). Clusters of different
    nodes never overlap, and inter-cluster edges only connect clusters
    of adjacent nodes — which is exactly the cluster-map condition that
    lets the original network simulate any machine running on the
    transformed graph. *)

type t = {
  nodes : (string * string) list;  (** (local name, label) — at least one *)
  internal_edges : (string * string) list;
  boundary_edges : (string * string * string) list;
      (** (my local name, neighbour identifier, remote local name);
          each inter-cluster edge must be declared by both sides *)
}

val codec : t Lph_util.Codec.t

val encode_label : t -> string
(** Encode a cluster as an output label. Output labels are part of the
    graph model and are always bit strings, whatever the wire mode. *)

val decode_label : string -> t
(** Decode an output label of the reduction machine (the inverse of
    {!encode_label}). Raises [Error.Error (Decode_error _)] on
    malformed labels. *)

val assemble :
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  t array ->
  Lph_graph.Labeled_graph.t * (int * string) array
(** Glue the clusters computed at the nodes of the original graph into
    the transformed graph. Checks the cluster-map conditions: local
    names unique per cluster, boundary references point to identifiers
    of adjacent nodes, and both endpoints declare each inter-cluster
    edge. Returns the new graph and, for each new node, its
    (owner, local name). Raises [Error.Error (Protocol_error _)] on
    violations (including a disconnected result). *)

type reduction = {
  name : string;
  id_radius : int;  (** required local uniqueness of identifiers *)
  gather_radius : int;  (** how far the transformation machine looks *)
  compute : Lph_machine.Local_algo.ctx -> Lph_machine.Gather.ball -> t;
      (** each node's cluster, computed from its gathered ball *)
}

val algo_of : reduction -> Lph_machine.Local_algo.packed
(** The transformation as a distributed machine whose output labels are
    encoded clusters. *)

val apply :
  reduction ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  Lph_graph.Labeled_graph.t
(** Run the reduction machine and assemble its clusters. *)

val stats :
  reduction ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  Lph_machine.Runner.stats
(** Execution statistics of the reduction machine (to check the
    constant-round / polynomial-step claims). *)
