module LA = Lph_machine.Local_algo
module Gather = Lph_machine.Gather

let reduction ~name ~radius ~decide =
  let compute (ctx : LA.ctx) ball =
    let verdict = if decide ctx ball then "1" else "0" in
    {
      Cluster.nodes = [ ("0", verdict) ];
      internal_edges = [];
      boundary_edges =
        List.filter_map
          (fun e -> if e.Gather.dist = 1 then Some ("0", e.Gather.ident, "0") else None)
          ball.Gather.entries;
    }
  in
  (* boundary edges name distance-1 identifiers, so the gather radius
     is at least 1 whatever [radius]; identifier uniqueness must cover
     the gather layer's precondition (gather radius + 1), not the
     nominal decision radius *)
  let gather_radius = max 1 radius in
  { Cluster.name; id_radius = gather_radius + 1; gather_radius; compute }

let correct reduction ~decider g ~ids =
  let image = Cluster.apply reduction g ~ids in
  Lph_graph.Labeled_graph.all_labels_one image = Lph_machine.Runner.decides decider g ~ids ()
