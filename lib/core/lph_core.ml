(** Umbrella module: one import for the whole reproduction.

    The paper's primary contribution — the local-polynomial hierarchy,
    its game semantics, arbiters and reductions — lives in
    {!Hierarchy}, {!Fagin} and {!Reductions}; everything else is the
    substrate those results stand on. See DESIGN.md for the map from
    paper sections to modules. *)

let version = "1.0.0"

(** {1 Substrates} *)

module Bitstring = Lph_util.Bitstring
module Codec = Lph_util.Codec
module Error = Lph_util.Error
module Poly = Lph_util.Poly
module Combinat = Lph_util.Combinat
module Parallel = Lph_util.Parallel
module Structure = Lph_structure.Structure

module Graph = Lph_graph.Labeled_graph
module Generators = Lph_graph.Generators
module Neighborhood = Lph_graph.Neighborhood
module Identifiers = Lph_graph.Identifiers
module Certificates = Lph_graph.Certificates
module Structural = Lph_graph.Structural
module Isomorphism = Lph_graph.Isomorphism

(** {1 Logic (Section 5)} *)

module Formula = Lph_logic.Formula
module Logic_syntax = Lph_logic.Syntax
module Logic_eval = Lph_logic.Eval
module Graph_formulas = Lph_logic.Graph_formulas
module Relation = Lph_logic.Relation

(** {1 Machines (Section 4)} *)

module Fault_plan = Lph_faults.Fault_plan
module Fault_model = Lph_faults.Fault_model
module Fault_search = Lph_faultlab.Fault_search
module Fault_workloads = Lph_faultlab.Workloads
module Turing = Lph_machine.Turing
module Machines = Lph_machine.Machines
module Local_algo = Lph_machine.Local_algo
module Runner = Lph_machine.Runner
module Gather = Lph_machine.Gather
module Step_time = Lph_machine.Step_time

(** {1 The local-polynomial hierarchy (Sections 4, 6, 9.1)} *)

module Arbiter = Lph_hierarchy.Arbiter
module Classes = Lph_hierarchy.Classes
module Restrictor = Lph_hierarchy.Restrictor
module Lcl = Lph_hierarchy.Lcl
module Game = Lph_hierarchy.Game
module Game_sat = Lph_hierarchy.Game_sat
module Game_cegar = Lph_hierarchy.Game_cegar
module Properties = Lph_hierarchy.Properties
module Candidates = Lph_hierarchy.Candidates
module Separations = Lph_hierarchy.Separations

(** {1 Hierarchy as a service} *)

module Serve_protocol = Lph_serve.Protocol
module Serve_scheduler = Lph_serve.Scheduler
module Serve_server = Lph_serve.Server
module Serve_client = Lph_serve.Client

(** {1 Boolean substrate and SAT-GRAPH (Section 8)} *)

module Bool_formula = Lph_boolean.Bool_formula
module Cnf = Lph_boolean.Cnf
module Tseytin = Lph_boolean.Tseytin
module Sat_solver = Lph_boolean.Solver
module Boolean_graph = Lph_boolean.Boolean_graph

(** {1 Reductions (Section 8)} *)

module Cluster = Lph_reductions.Cluster
module Eulerian_red = Lph_reductions.Eulerian_red
module Hamiltonian_red = Lph_reductions.Hamiltonian_red
module Cook_levin = Lph_reductions.Cook_levin
module Three_col_red = Lph_reductions.Three_col_red
module Simulate = Lph_reductions.Simulate
module To_all_selected = Lph_reductions.To_all_selected

(** {1 Descriptive complexity (Section 7)} *)

module Fagin = Lph_fagin.Compile
module Tableau = Lph_fagin.Tableau

(** {1 Spec analyzer (static side-condition checking)} *)

module Json = Lph_analysis.Json
module Diagnostic = Lph_analysis.Diagnostic
module Radius_probe = Lph_analysis.Probe
module Lint = Lph_analysis.Lint
module Lint_registry = Lph_analysis.Registry
module Lint_fixtures = Lph_analysis.Fixtures
module Optimum = Lph_analysis.Optimum
module Cert_reduction = Lph_analysis.Cert_reduction

(** {1 Pictures and tiling systems (Section 9.2)} *)

module Picture = Lph_picture.Picture
module Tiling = Lph_picture.Tiling
module Pic_languages = Lph_picture.Pic_languages
module Pic_to_graph = Lph_picture.Pic_to_graph
module Pic_local = Lph_picture.Pic_local

(** {1 Words and automata (Section 9.3)} *)

module Dfa = Lph_automata.Dfa
module Nfa = Lph_automata.Nfa
module Automata_word = Lph_automata.Word
module Mso_to_dfa = Lph_automata.Mso_to_dfa
module Pumping = Lph_automata.Pumping
module Nonregular = Lph_automata.Nonregular
module Word_graph = Lph_automata.Word_graph
