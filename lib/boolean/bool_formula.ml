type var = string

type t =
  | Const of bool
  | Var of var
  | Not of t
  | And of t * t
  | Or of t * t

let conj = function [] -> Const true | f :: fs -> List.fold_left (fun a b -> And (a, b)) f fs

let disj = function [] -> Const false | f :: fs -> List.fold_left (fun a b -> Or (a, b)) f fs

let implies f g = Or (Not f, g)

let iff f g = And (implies f g, implies g f)

module Sset = Set.Make (String)

let vars f =
  let rec go acc = function
    | Const _ -> acc
    | Var v -> Sset.add v acc
    | Not f -> go acc f
    | And (f, g) | Or (f, g) -> go (go acc f) g
  in
  Sset.elements (go Sset.empty f)

let rec eval env = function
  | Const b -> b
  | Var v -> env v
  | Not f -> not (eval env f)
  | And (f, g) -> eval env f && eval env g
  | Or (f, g) -> eval env f || eval env g

let rec size = function
  | Const _ | Var _ -> 1
  | Not f -> 1 + size f
  | And (f, g) | Or (f, g) -> 1 + size f + size g

let rec rename r = function
  | Const b -> Const b
  | Var v -> Var (r v)
  | Not f -> Not (rename r f)
  | And (f, g) -> And (rename r f, rename r g)
  | Or (f, g) -> Or (rename r f, rename r g)

let satisfiable f =
  let vs = vars f in
  Lph_util.Combinat.exists_seq
    (fun chosen ->
      let set = Sset.of_list chosen in
      eval (fun v -> Sset.mem v set) f)
    (Lph_util.Combinat.subsets vs)

(* Wire format: a tagged prefix encoding, then bit-encoded so the result
   is a genuine bit string. *)

let rec write buf = function
  | Const true -> Buffer.add_char buf 'T'
  | Const false -> Buffer.add_char buf 'F'
  | Var v ->
      Buffer.add_char buf 'V';
      Buffer.add_string buf (Lph_util.Codec.encode Lph_util.Codec.string v)
  | Not f ->
      Buffer.add_char buf '!';
      write buf f
  | And (f, g) ->
      Buffer.add_char buf '&';
      write buf f;
      write buf g
  | Or (f, g) ->
      Buffer.add_char buf '|';
      write buf f;
      write buf g

let read s =
  let rec go pos =
    if pos >= String.length s then Lph_util.Error.decode_error ~what:"Bool_formula.of_label" "truncated";
    match s.[pos] with
    | 'T' -> (Const true, pos + 1)
    | 'F' -> (Const false, pos + 1)
    | 'V' ->
        (* decode a length-prefixed string starting at pos + 1 *)
        let rec varint p shift acc =
          if p >= String.length s then Lph_util.Error.decode_error ~what:"Bool_formula.of_label" "truncated var";
          let b = Char.code s.[p] in
          let acc = acc lor ((b land 127) lsl shift) in
          if b land 128 = 0 then (acc, p + 1) else varint (p + 1) (shift + 7) acc
        in
        let len, p = varint (pos + 1) 0 0 in
        if p + len > String.length s then
          Lph_util.Error.decode_error ~what:"Bool_formula.of_label" "truncated var body";
        (Var (String.sub s p len), p + len)
    | '!' ->
        let f, p = go (pos + 1) in
        (Not f, p)
    | '&' ->
        let f, p = go (pos + 1) in
        let g, p = go p in
        (And (f, g), p)
    | '|' ->
        let f, p = go (pos + 1) in
        let g, p = go p in
        (Or (f, g), p)
    | c -> Lph_util.Error.decode_error ~what:"Bool_formula.of_label" "bad tag %c" c
  in
  let f, pos = go 0 in
  if pos <> String.length s then Lph_util.Error.decode_error ~what:"Bool_formula.of_label" "trailing garbage";
  f

let to_label f =
  let buf = Buffer.create 64 in
  write buf f;
  Lph_util.Codec.encode_bits Lph_util.Codec.string (Buffer.contents buf)

let of_label label = read (Lph_util.Codec.decode_bits Lph_util.Codec.string label)

let rec pp fmt = function
  | Const true -> Format.pp_print_string fmt "⊤"
  | Const false -> Format.pp_print_string fmt "⊥"
  | Var v -> Format.pp_print_string fmt v
  | Not f -> Format.fprintf fmt "¬%a" pp_atom f
  | And (f, g) -> Format.fprintf fmt "(%a ∧ %a)" pp f pp g
  | Or (f, g) -> Format.fprintf fmt "(%a ∨ %a)" pp f pp g

and pp_atom fmt f =
  match f with
  | Const _ | Var _ | Not _ -> pp fmt f
  | _ -> Format.fprintf fmt "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f
