(** A watched-literal CDCL SAT solver (Chaff-style) with an incremental
    interface: clauses can be added between solves, learned clauses and
    saved phases persist, and [solve_with ~assumptions] decides
    satisfiability under a temporary set of forced literals without
    touching the clause database. This is the satisfiability backend
    for SAT-GRAPH, the Cook–Levin cross-checks, and the [`Sat] game
    engine ({!Lph_hierarchy} compiles certificate games to CNF and
    re-solves them under assumptions selecting the outer players'
    certificate bits).

    The solver's mutable state — watch lists, trail, activities — is
    deliberately not exported; a solver value is only usable through
    the functions below and is NOT safe to share across domains
    without external locking. *)

type t
(** An incremental solver instance. *)

val create : unit -> t

val copy : t -> t
(** An independent deep copy: same interned variables, clause database
    (including clauses learned so far), saved phases and activities —
    but clauses added or learned on either side afterwards are
    invisible to the other. This is what lets the CEGAR game engine
    fork a compiled game CNF into a private proposer solver and keep
    feeding it blocking clauses without polluting the shared instance.
    Statistics counters start from zero in the copy. *)

val add_clause : t -> Cnf.clause -> unit
(** Add a clause permanently. Tautologies are discarded, duplicate
    literals merged, and literals already decided at the root level
    simplified away; adding the empty clause (or a clause whose
    literals are all root-false) makes the instance permanently
    unsatisfiable. May run unit propagation. *)

val solve_with : ?assumptions:Cnf.clause -> t -> (Bool_formula.var -> bool) option
(** [solve_with ~assumptions s] is a satisfying valuation of every
    clause added so far with all [assumptions] literals forced true, or
    [None] if none exists. The valuation is total: variables the solver
    never saw map to [false]. Assumptions are released afterwards —
    only clauses learned from genuine conflicts are kept, so repeated
    calls with different assumptions are cheap (phase saving steers the
    search back to the previous model). *)

val unsat_core : t -> Cnf.clause
(** After a {!solve_with} that returned [None]: a subset of the
    assumptions passed to that call whose conjunction with the clause
    database is already unsatisfiable (MiniSat's final-conflict
    analysis over the assumption decisions). The empty list means the
    clause database alone is unsatisfiable. Replaying the core as the
    only assumptions in a fresh solver holding the same clauses must
    answer UNSAT again — the certificate-budget optimiser's
    lower-bound proofs are validated exactly this way. Raises
    [Invalid_argument] if the last solve produced a model or no solve
    has run yet. *)

val root_value : t -> Bool_formula.var -> bool option
(** The variable's value if it is fixed at decision level 0 — i.e.
    forced by unit propagation alone, independent of any assumptions —
    and [None] otherwise. *)

type stats = {
  decisions : int;
  propagations : int;  (** literals enqueued by unit propagation *)
  conflicts : int;
  learned : int;  (** clauses learned at first-UIP cuts *)
  max_backjump : int;  (** largest number of levels jumped at once *)
  restarts : int;
      (** geometric restarts taken (decision stack abandoned, learned
          clauses and phases kept) *)
}

val stats : t -> stats
(** Cumulative counters since [create]. *)

(** {1 One-shot API} *)

val solve : Cnf.t -> (Bool_formula.var -> bool) option
(** A satisfying valuation (total on the CNF's variables), or [None]. *)

val satisfiable : Cnf.t -> bool
