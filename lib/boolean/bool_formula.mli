(** Boolean formulas: the labels of Boolean graphs (Section 8). A
    formula must round-trip through a bit-string encoding, since it
    travels as a node label. *)

type var = string

type t =
  | Const of bool
  | Var of var
  | Not of t
  | And of t * t
  | Or of t * t

val conj : t list -> t
val disj : t list -> t
val implies : t -> t -> t
val iff : t -> t -> t

val vars : t -> var list
(** Sorted, without duplicates. *)

val eval : (var -> bool) -> t -> bool
val size : t -> int
val rename : (var -> var) -> t -> t

val satisfiable : t -> bool
(** Brute force over {!vars} (small formulas only); the reference
    answer for the CNF/DPLL pipeline. *)

val to_label : t -> string
(** Bit-string encoding (for use as a graph label). *)

val of_label : string -> t
(** Raises [Error.Error (Decode_error _)] on malformed encodings. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
