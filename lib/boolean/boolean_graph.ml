module G = Lph_graph.Labeled_graph

type t = G.t

let make g formulas =
  if Array.length formulas <> G.card g then invalid_arg "Boolean_graph.make: wrong arity";
  G.with_labels g (Array.map Bool_formula.to_label formulas)

let formula_of_node g u = Bool_formula.of_label (G.label g u)

(* ------------------------------------------------------------------ *)
(* Variable instances and their merging along edges.                   *)

module Union_find = struct
  type t = { parent : int array; rank : int array }

  let create n = { parent = Array.init n Fun.id; rank = Array.make n 0 }

  let rec find uf x = if uf.parent.(x) = x then x else begin
    let root = find uf uf.parent.(x) in
    uf.parent.(x) <- root;
    root
  end

  let union uf x y =
    let rx = find uf x and ry = find uf y in
    if rx <> ry then
      if uf.rank.(rx) < uf.rank.(ry) then uf.parent.(rx) <- ry
      else if uf.rank.(rx) > uf.rank.(ry) then uf.parent.(ry) <- rx
      else begin
        uf.parent.(ry) <- rx;
        uf.rank.(rx) <- uf.rank.(rx) + 1
      end
end

type instances = {
  formulas : Bool_formula.t array;
  class_of : int -> Bool_formula.var -> string;  (** instance (node, var) -> class name *)
}

let instances g =
  let formulas = Array.init (G.card g) (formula_of_node g) in
  let index = Hashtbl.create 64 in
  let next = ref 0 in
  Array.iteri
    (fun u f ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem index (u, v)) then begin
            Hashtbl.replace index (u, v) !next;
            incr next
          end)
        (Bool_formula.vars f))
    formulas;
  let uf = Union_find.create !next in
  List.iter
    (fun (u, v) ->
      let shared =
        List.filter (fun x -> Hashtbl.mem index (v, x)) (Bool_formula.vars formulas.(u))
      in
      List.iter
        (fun x -> Union_find.union uf (Hashtbl.find index (u, x)) (Hashtbl.find index (v, x)))
        shared)
    (G.edges g);
  let class_of u v =
    match Hashtbl.find_opt index (u, v) with
    | Some i -> Printf.sprintf "cls%d" (Union_find.find uf i)
    | None -> invalid_arg "Boolean_graph: unknown variable instance"
  in
  { formulas; class_of }

let satisfiable g =
  let inst = instances g in
  let clauses =
    List.concat
      (List.mapi
         (fun u f ->
           let renamed = Bool_formula.rename (inst.class_of u) f in
           Tseytin.transform ~fresh_prefix:(Printf.sprintf "aux%d" u) renamed)
         (Array.to_list inst.formulas))
  in
  Solver.satisfiable clauses

let satisfiable_brute g =
  let inst = instances g in
  let conjunction =
    Bool_formula.conj
      (List.mapi (fun u f -> Bool_formula.rename (inst.class_of u) f) (Array.to_list inst.formulas))
  in
  Bool_formula.satisfiable conjunction

(* A 3-CNF-shaped formula: a conjunction tree whose leaves are clauses,
   each a disjunction tree of at most three literals. *)
let is_3cnf_formula f =
  let open Bool_formula in
  let rec literal_count = function
    | Var _ | Not (Var _) -> Some 1
    | Const _ -> Some 0
    | Or (a, b) -> begin
        match (literal_count a, literal_count b) with
        | Some x, Some y -> Some (x + y)
        | _ -> None
      end
    | Not _ | And _ -> None
  in
  let rec clauses = function
    | And (a, b) -> clauses a && clauses b
    | f -> ( match literal_count f with Some k -> k <= 3 | None -> false)
  in
  clauses f

let is_3cnf_graph g =
  List.for_all
    (fun u ->
      match formula_of_node g u with
      | f -> is_3cnf_formula f
      | exception Lph_util.Error.Error (Lph_util.Error.Decode_error _) -> false)
    (G.nodes g)

let sat f = make (G.singleton "") [| f |]

let checkable_locally g ~valuations =
  let formulas = Array.init (G.card g) (formula_of_node g) in
  let locally_satisfied =
    List.for_all (fun u -> Bool_formula.eval (valuations u) formulas.(u)) (G.nodes g)
  in
  let consistent =
    List.for_all
      (fun (u, v) ->
        let shared =
          List.filter
            (fun x -> List.mem x (Bool_formula.vars formulas.(v)))
            (Bool_formula.vars formulas.(u))
        in
        List.for_all (fun x -> valuations u x = valuations v x) shared)
      (G.edges g)
  in
  locally_satisfied && consistent
