(* A watched-literal CDCL solver (Chaff-style: Moskewicz et al., DAC
   2001), replacing the earlier map-based DPLL. The design is the
   MiniSat core reduced to what the game backend needs:

   - two watched literals per clause, so only clauses watching a
     literal that just became false are visited during propagation;
   - conflict analysis to the first unique implication point, with the
     learned clause driving a non-chronological backjump;
   - VSIDS-style branching: per-variable activities bumped on conflict
     participation and decayed geometrically, broken by a linear scan
     (instance sizes here are hundreds of variables, not millions);
   - phase saving, so consecutive [solve_with] calls under different
     assumptions revisit similar assignments cheaply;
   - an incremental interface: clauses can be added between solves and
     learned clauses are kept, which is what makes assumption-based
     re-solving of the game CNF fast.

   Variables are interned: the external (string) names of {!Cnf} map to
   dense integers, and a literal is [2*var + (0 if positive else 1)].
   All mutable state (watch lists, trail, activities) stays private to
   this module; the interface only exposes solving and statistics. *)

type cls = { lits : int array }

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  learned : int;
  max_backjump : int;
  restarts : int;
}

type t = {
  mutable names : string array;  (* var -> external name *)
  ids : (string, int) Hashtbl.t;  (* external name -> var *)
  mutable nvars : int;
  (* per-variable state, capacity [Array.length assign] *)
  mutable assign : int array;  (* -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : cls option array;
  mutable activity : float array;
  mutable polarity : bool array;  (* saved phase *)
  mutable seen : bool array;  (* conflict-analysis scratch *)
  mutable watches : cls list array;  (* literal -> watching clauses *)
  mutable trail : int array;
  mutable trail_n : int;
  mutable trail_lim : int array;  (* decision level -> trail mark *)
  mutable dlevel : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable root_conflict : bool;
  mutable last_core : int list option;
      (* failed-assumption subset of the last UNSAT [solve_with];
         [None] after a SAT answer (or before any solve) *)
  mutable s_decisions : int;
  mutable s_propagations : int;
  mutable s_conflicts : int;
  mutable s_learned : int;
  mutable s_max_backjump : int;
  mutable s_restarts : int;
}

let create () =
  {
    names = Array.make 16 "";
    ids = Hashtbl.create 64;
    nvars = 0;
    assign = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 None;
    activity = Array.make 16 0.;
    polarity = Array.make 16 false;
    seen = Array.make 16 false;
    watches = Array.make 32 [];
    trail = Array.make 16 0;
    trail_n = 0;
    trail_lim = Array.make 16 0;
    dlevel = 0;
    qhead = 0;
    var_inc = 1.0;
    root_conflict = false;
    last_core = None;
    s_decisions = 0;
    s_propagations = 0;
    s_conflicts = 0;
    s_learned = 0;
    s_max_backjump = 0;
    s_restarts = 0;
  }

let stats s =
  {
    decisions = s.s_decisions;
    propagations = s.s_propagations;
    conflicts = s.s_conflicts;
    learned = s.s_learned;
    max_backjump = s.s_max_backjump;
    restarts = s.s_restarts;
  }

(* ---- cloning ------------------------------------------------------- *)

(* Clause values are mutable and each lives in exactly two watch lists
   (and possibly in [reason] slots), so the copy must preserve clause
   IDENTITY: one fresh clause per original, reused wherever the
   original appeared. Keyed on physical equality — [Hashtbl.hash] is
   depth-bounded, so structurally similar clauses only cost a few
   [==] probes. *)
module Cls_tbl = Hashtbl.Make (struct
  type t = cls

  let equal = ( == )

  let hash c = Hashtbl.hash c.lits
end)

let copy s =
  let tbl = Cls_tbl.create 256 in
  let dup c =
    match Cls_tbl.find_opt tbl c with
    | Some c' -> c'
    | None ->
        let c' = { lits = Array.copy c.lits } in
        Cls_tbl.add tbl c c';
        c'
  in
  {
    names = Array.copy s.names;
    ids = Hashtbl.copy s.ids;
    nvars = s.nvars;
    assign = Array.copy s.assign;
    level = Array.copy s.level;
    reason = Array.map (Option.map dup) s.reason;
    activity = Array.copy s.activity;
    polarity = Array.copy s.polarity;
    seen = Array.copy s.seen;
    watches = Array.map (List.map dup) s.watches;
    trail = Array.copy s.trail;
    trail_n = s.trail_n;
    trail_lim = Array.copy s.trail_lim;
    dlevel = s.dlevel;
    qhead = s.qhead;
    var_inc = s.var_inc;
    root_conflict = s.root_conflict;
    last_core = s.last_core;
    s_decisions = 0;
    s_propagations = 0;
    s_conflicts = 0;
    s_learned = 0;
    s_max_backjump = 0;
    s_restarts = 0;
  }

(* ---- literals ----------------------------------------------------- *)

let var_of l = l lsr 1

let neg_lit l = l lxor 1

let lit_of_var v ~positive = if positive then 2 * v else (2 * v) + 1

let lit_of_cnf s_var (l : Cnf.literal) = lit_of_var (s_var l.Cnf.var) ~positive:l.Cnf.positive

(* -1 unassigned, 0 false, 1 true — of the literal, not the variable *)
let value s l =
  let a = s.assign.(var_of l) in
  if a < 0 then -1 else a lxor (l land 1)

let grow arr len fill =
  let a = Array.make (max len (2 * Array.length arr)) fill in
  Array.blit arr 0 a 0 (Array.length arr);
  a

let intern s name =
  match Hashtbl.find_opt s.ids name with
  | Some v -> v
  | None ->
      let v = s.nvars in
      s.nvars <- v + 1;
      if v >= Array.length s.assign then begin
        s.names <- grow s.names (v + 1) "";
        s.assign <- grow s.assign (v + 1) (-1);
        s.level <- grow s.level (v + 1) 0;
        s.reason <- grow s.reason (v + 1) None;
        s.activity <- grow s.activity (v + 1) 0.;
        s.polarity <- grow s.polarity (v + 1) false;
        s.seen <- grow s.seen (v + 1) false;
        s.trail <- grow s.trail (v + 1) 0
      end;
      if 2 * v + 1 >= Array.length s.watches then s.watches <- grow s.watches (2 * v + 2) [];
      s.names.(v) <- name;
      Hashtbl.replace s.ids name v;
      v

(* ---- trail -------------------------------------------------------- *)

let enqueue s l reason =
  match value s l with
  | 1 -> true
  | 0 -> false
  | _ ->
      let v = var_of l in
      s.assign.(v) <- 1 - (l land 1);
      s.level.(v) <- s.dlevel;
      s.reason.(v) <- reason;
      if reason <> None then s.s_propagations <- s.s_propagations + 1;
      s.trail.(s.trail_n) <- l;
      s.trail_n <- s.trail_n + 1;
      true

let new_decision_level s =
  if s.dlevel >= Array.length s.trail_lim then s.trail_lim <- grow s.trail_lim (s.dlevel + 1) 0;
  s.trail_lim.(s.dlevel) <- s.trail_n;
  s.dlevel <- s.dlevel + 1

let backtrack s target =
  if s.dlevel > target then begin
    let mark = s.trail_lim.(target) in
    for i = s.trail_n - 1 downto mark do
      let v = var_of s.trail.(i) in
      s.polarity.(v) <- s.assign.(v) = 1;
      s.assign.(v) <- -1;
      s.reason.(v) <- None
    done;
    s.trail_n <- mark;
    s.qhead <- mark;
    s.dlevel <- target
  end

(* ---- propagation -------------------------------------------------- *)

(* Process the watch list of each newly falsified literal: a clause
   either finds a replacement watch, is satisfied, propagates its other
   watch, or is the conflict. *)
let propagate s =
  let conflict = ref None in
  while !conflict = None && s.qhead < s.trail_n do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    let false_lit = neg_lit p in
    let ws = s.watches.(false_lit) in
    s.watches.(false_lit) <- [];
    let rec go = function
      | [] -> ()
      | c :: rest -> (
          let lits = c.lits in
          (* normalise: the falsified watch sits at index 1 *)
          if lits.(0) = false_lit then begin
            lits.(0) <- lits.(1);
            lits.(1) <- false_lit
          end;
          if value s lits.(0) = 1 then begin
            (* satisfied by the other watch: keep watching *)
            s.watches.(false_lit) <- c :: s.watches.(false_lit);
            go rest
          end
          else
            let n = Array.length lits in
            let rec find k = if k >= n then -1 else if value s lits.(k) <> 0 then k else find (k + 1) in
            match find 2 with
            | k when k >= 0 ->
                (* new watch found: move the clause to its list *)
                lits.(1) <- lits.(k);
                lits.(k) <- false_lit;
                s.watches.(lits.(1)) <- c :: s.watches.(lits.(1));
                go rest
            | _ ->
                s.watches.(false_lit) <- c :: s.watches.(false_lit);
                if value s lits.(0) = 0 then begin
                  (* all literals false: conflict; keep the rest watched *)
                  conflict := Some c;
                  List.iter
                    (fun c' -> s.watches.(false_lit) <- c' :: s.watches.(false_lit))
                    rest
                end
                else begin
                  ignore (enqueue s lits.(0) (Some c));
                  go rest
                end)
    in
    go ws
  done;
  !conflict

(* ---- VSIDS -------------------------------------------------------- *)

let rescale s =
  for v = 0 to s.nvars - 1 do
    s.activity.(v) <- s.activity.(v) *. 1e-100
  done;
  s.var_inc <- s.var_inc *. 1e-100

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then rescale s

let decay s = s.var_inc <- s.var_inc /. 0.95

let pick_branch_var s =
  let best = ref (-1) and best_act = ref neg_infinity in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) < 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

(* ---- conflict analysis -------------------------------------------- *)

(* First-UIP resolution along the trail. Returns the learned clause
   (asserting literal first) and the backjump level. *)
let analyze s confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let c = ref confl in
  let idx = ref (s.trail_n - 1) in
  let continue = ref true in
  while !continue do
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = var_of q in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            bump s v;
            if s.level.(v) = s.dlevel then incr counter else learnt := q :: !learnt
          end
        end)
      !c.lits;
    while not s.seen.(var_of s.trail.(!idx)) do
      decr idx
    done;
    p := s.trail.(!idx);
    s.seen.(var_of !p) <- false;
    decr counter;
    if !counter = 0 then continue := false
    else
      c :=
        (match s.reason.(var_of !p) with
        | Some r -> r
        | None -> assert false (* only the UIP can lack a reason *))
  done;
  List.iter (fun q -> s.seen.(var_of q) <- false) !learnt;
  let bj = List.fold_left (fun acc q -> max acc s.level.(var_of q)) 0 !learnt in
  (neg_lit !p :: !learnt, bj)

let attach s c =
  s.watches.(c.lits.(0)) <- c :: s.watches.(c.lits.(0));
  s.watches.(c.lits.(1)) <- c :: s.watches.(c.lits.(1))

(* Install a learned clause after backjumping: the asserting literal is
   watched together with a literal from the backjump level. *)
let learn s lits_list bj =
  s.s_learned <- s.s_learned + 1;
  match lits_list with
  | [] -> s.root_conflict <- true
  | [ l ] -> if not (enqueue s l None) then s.root_conflict <- true
  | first :: _ ->
      let lits = Array.of_list lits_list in
      let k = ref 1 in
      Array.iteri (fun i q -> if i >= 1 && s.level.(var_of q) = bj then k := i) lits;
      let tmp = lits.(1) in
      lits.(1) <- lits.(!k);
      lits.(!k) <- tmp;
      let c = { lits } in
      attach s c;
      ignore (enqueue s first (Some c))

(* ---- clause addition ---------------------------------------------- *)

exception Found_true

(* Clauses are added at decision level 0 (every [solve_with] returns
   with the trail rewound), so literals already assigned are assigned
   permanently: true literals discharge the clause, false ones are
   dropped. *)
let add_clause s (clause : Cnf.clause) =
  backtrack s 0;
  if not s.root_conflict then begin
    let seen_lits = Hashtbl.create 8 in
    match
      List.fold_left
        (fun acc cl ->
          let l = lit_of_cnf (intern s) cl in
          if Hashtbl.mem seen_lits (neg_lit l) then raise Found_true (* tautology *)
          else if Hashtbl.mem seen_lits l then acc
          else begin
            Hashtbl.replace seen_lits l ();
            match value s l with
            | 1 -> raise Found_true (* satisfied at root *)
            | 0 -> acc (* permanently false: drop *)
            | _ -> l :: acc
          end)
        [] clause
    with
    | [] -> s.root_conflict <- true
    | [ l ] ->
        if not (enqueue s l None) then s.root_conflict <- true
        else if propagate s <> None then s.root_conflict <- true
    | lits -> attach s { lits = Array.of_list (List.rev lits) }
    | exception Found_true -> ()
  end

(* ---- search ------------------------------------------------------- *)

(* MiniSat's analyzeFinal: called when the next assumption [p] is
   already false under the assumptions asserted so far. Walk the trail
   top-down from the seen-marked falsifying assignment, expanding
   reasons; every reason-less literal above level 0 met on the way is
   an earlier assumption decision that [~p] depends on. Together with
   [p] itself they form a subset of the assumptions whose conjunction
   with the clause database is unsatisfiable. Root-level literals are
   assumption-free and stay out of the core. *)
let analyze_final s p =
  let core = ref [ p ] in
  if s.dlevel > 0 then begin
    s.seen.(var_of p) <- true;
    for i = s.trail_n - 1 downto s.trail_lim.(0) do
      let v = var_of s.trail.(i) in
      if s.seen.(v) then begin
        (match s.reason.(v) with
        | None -> if s.level.(v) > 0 then core := s.trail.(i) :: !core
        | Some c ->
            Array.iter (fun q -> if s.level.(var_of q) > 0 then s.seen.(var_of q) <- true) c.lits);
        s.seen.(v) <- false
      end
    done;
    s.seen.(var_of p) <- false
  end;
  !core

let extract_model s =
  let model = Array.sub s.assign 0 s.nvars in
  let ids = Hashtbl.copy s.ids in
  fun name ->
    match Hashtbl.find_opt ids name with Some v -> model.(v) = 1 | None -> false

let solve_with ?(assumptions : Cnf.clause = []) s =
  if s.root_conflict then begin
    (* the clause database alone is unsatisfiable: the empty core *)
    s.last_core <- Some [];
    None
  end
  else begin
    backtrack s 0;
    let assumptions = Array.of_list (List.map (lit_of_cnf (intern s)) assumptions) in
    let n_assumed = Array.length assumptions in
    (* pessimistic default: every UNSAT exit other than a failed
       assumption is a root conflict, where the empty core is right *)
    s.last_core <- Some [];
    let result = ref None and running = ref true in
    (* geometric restarts: every learned clause is kept, so a restart
       only abandons the current decision stack and lets VSIDS +
       phase saving re-descend along fresher activities *)
    let restart_limit = ref 100 and restart_conflicts = ref 0 in
    while !running do
      match propagate s with
      | Some confl ->
          s.s_conflicts <- s.s_conflicts + 1;
          if s.dlevel = 0 then begin
            s.root_conflict <- true;
            running := false
          end
          else begin
            let learned, bj = analyze s confl in
            s.s_max_backjump <- max s.s_max_backjump (s.dlevel - bj);
            backtrack s bj;
            learn s learned bj;
            decay s;
            if s.root_conflict then running := false
            else begin
              incr restart_conflicts;
              if !restart_conflicts >= !restart_limit && s.dlevel > n_assumed then begin
                (* the solve loop re-asserts the assumptions as fresh
                   decisions after the rewind *)
                backtrack s 0;
                s.s_restarts <- s.s_restarts + 1;
                restart_conflicts := 0;
                restart_limit := (!restart_limit * 3 / 2) + 1
              end
            end
          end
      | None ->
          if s.dlevel < n_assumed then begin
            (* re-assert the next assumption as a decision *)
            let p = assumptions.(s.dlevel) in
            match value s p with
            | 1 -> new_decision_level s (* already holds: dummy level *)
            | 0 ->
                (* UNSAT under the assumptions; the failed-assumption
                   core must be read off before the trail is rewound *)
                s.last_core <- Some (analyze_final s p);
                running := false
            | _ ->
                s.s_decisions <- s.s_decisions + 1;
                new_decision_level s;
                ignore (enqueue s p None)
          end
          else begin
            match pick_branch_var s with
            | -1 ->
                (* every variable assigned without conflict: a model *)
                result := Some (extract_model s);
                running := false
            | v ->
                s.s_decisions <- s.s_decisions + 1;
                new_decision_level s;
                ignore (enqueue s (lit_of_var v ~positive:s.polarity.(v)) None)
          end
    done;
    backtrack s 0;
    if !result <> None then s.last_core <- None;
    !result
  end

let unsat_core s =
  match s.last_core with
  | None -> invalid_arg "Solver.unsat_core: last solve was satisfiable (or no solve has run)"
  | Some core ->
      List.rev_map
        (fun l ->
          let name = s.names.(var_of l) in
          if l land 1 = 0 then Cnf.pos name else Cnf.neg name)
        core

let root_value s name =
  match Hashtbl.find_opt s.ids name with
  | None -> None
  | Some v -> if s.assign.(v) < 0 || s.level.(v) > 0 then None else Some (s.assign.(v) = 1)

(* ---- one-shot compatibility API ----------------------------------- *)

let solve cnf =
  let s = create () in
  List.iter (add_clause s) cnf;
  solve_with s

let satisfiable cnf = Option.is_some (solve cnf)
