(** Adversarial fault scheduling: find the explicit (kind, round, node)
    fault schedule that does the most damage to a workload under a
    {!Fault_model}'s budget.

    The search is greedy over the candidate grid (model kinds × rounds
    × nodes), growing the schedule one event at a time while the damage
    objective improves, capped at [LPH_FAULT_SEARCH_BUDGET] objective
    evaluations (default 2000). The objective is lexicographic: flipping
    the workload's verdict ≫ typed errors / divergence ≫ survivor-label
    damage ≫ round overhead; a crash-stop the quorum absorbs
    ({!Lph_machine.Runner.Degraded}) scores barely above zero. Results
    are deterministic in (workload, model, seed) — candidate order is
    fixed, faulted runs are forced sequential, positional choices are
    seeded hashes — and memoised per (workload, model, seed). *)

type workload = {
  w_name : string;
  w_graph : Lph_graph.Labeled_graph.t;
  w_ids : Lph_graph.Identifiers.t;
  w_algo : Lph_machine.Local_algo.packed option;
      (** runner probe: the algorithm the faults attack *)
  w_cert_list : string array option;
      (** the honest certificate-list assignment for the runner probe *)
  w_arbiter : Lph_hierarchy.Arbiter.t option;
      (** game probe: certificate attacks against the honest witness *)
  w_universes : Lph_hierarchy.Game.universe list;
}

val workload :
  ?algo:Lph_machine.Local_algo.packed ->
  ?cert_list:string array ->
  ?arbiter:Lph_hierarchy.Arbiter.t ->
  ?universes:Lph_hierarchy.Game.universe list ->
  name:string ->
  ids:Lph_graph.Identifiers.t ->
  Lph_graph.Labeled_graph.t ->
  workload

type verdict =
  | Survive  (** no in-budget schedule changed the verdict or outputs *)
  | Flip  (** some schedule flips the workload's verdict *)
  | Diverge
      (** no flip found, but some schedule breaks the run: typed
          error, divergence past the round limit, or label damage *)

val verdict_string : verdict -> string

type report = {
  r_workload : string;
  r_model : string;  (** {!Fault_model.to_string} *)
  r_verdict : verdict;
  r_flip_budget : int option;
      (** events in the cheapest verdict-flipping schedule found *)
  r_events : Lph_faults.Fault_plan.event list;  (** most damaging schedule *)
  r_spec : string option;  (** replay spec of that schedule's plan *)
  r_evals : int;  (** objective evaluations spent *)
  r_round_overhead : int;
      (** rounds of the most damaging run minus the fault-free run's *)
  r_degraded : bool;
      (** the most damaging outcome was graceful degradation *)
  r_base_accepts : bool;
}

val search_budget : unit -> int
(** The evaluation cap from [LPH_FAULT_SEARCH_BUDGET] (default 2000);
    malformed values raise the typed [Error.Error (Protocol_error _)]. *)

val search : ?seed:int -> model:Lph_faults.Fault_model.t -> workload -> report
(** Run the greedy schedule search. Memoised on (workload name, model,
    seed) — call {!clear_cache} between runs that reuse names for
    different workloads. *)

val clear_cache : unit -> unit

val engines : (string * Lph_hierarchy.Game.engine) list
(** The four concrete engines, in canonical order. *)

val cert_soundness :
  ?engines:(string * Lph_hierarchy.Game.engine) list ->
  model:Lph_faults.Fault_model.t ->
  seeds:int list ->
  Lph_hierarchy.Arbiter.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:Lph_hierarchy.Game.universe list ->
  string list
(** Soundness probe on a {e no}-instance: every engine must reject the
    fault-free game, and for every seed the model's compiled plan,
    applied to seeded base certificates drawn from the universes, must
    not make the arbiter accept. Returns human-readable violation
    descriptions ([[]] = sound). *)
