(* The shipped fault-axis workloads: the same instances the benchmark
   and the paper's experiments exercise, packaged as {!Fault_search}
   workloads with honest certificates. Yes-instances probe verdict
   flips and graceful degradation; the no-instance fixtures probe
   soundness (no in-budget adversary may manufacture an accept). *)

module G = Lph_graph.Labeled_graph
module Generators = Lph_graph.Generators
module Identifiers = Lph_graph.Identifiers
module B = Lph_util.Bitstring
module Arbiter = Lph_hierarchy.Arbiter
module Candidates = Lph_hierarchy.Candidates
module Simulate = Lph_reductions.Simulate
module Eulerian_red = Lph_reductions.Eulerian_red
module Fagin = Lph_fagin.Compile
module Graph_formulas = Lph_logic.Graph_formulas

let colour_certs colours = Array.map B.of_int colours

let shipped () =
  let two_col =
    (* C4 with the honest 2-colouring 0101: the smallest yes-instance
       on which every fault kind has a wire to bite. *)
    let g = Generators.cycle 4 in
    let ids = Identifiers.make_global g in
    Fault_search.workload ~name:"2col-game"
      ~algo:(Candidates.color_verifier 2)
      ~cert_list:(colour_certs [| 0; 1; 0; 1 |])
      ~arbiter:(Arbiter.of_local_algo ~id_radius:1 (Candidates.color_verifier 2))
      ~universes:[ Candidates.color_universe 2 ]
      ~ids g
  in
  let three_col =
    (* C5 is 3-chromatic; honest colouring 0,1,0,1,2. *)
    let g = Generators.cycle 5 in
    let ids = Identifiers.make_global g in
    Fault_search.workload ~name:"3col-game"
      ~algo:(Candidates.color_verifier 3)
      ~cert_list:(colour_certs [| 0; 1; 0; 1; 2 |])
      ~arbiter:(Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3))
      ~universes:[ Candidates.color_universe 3 ]
      ~ids g
  in
  let eulerian =
    (* EULERIAN through the cluster reduction: the simulating machine
       hosts the inner decider, so wire faults hit the forwarded
       inter-cluster traffic. C6 is Eulerian. *)
    let g = Generators.cycle 6 in
    let ids = Identifiers.make_global g in
    Fault_search.workload ~name:"eulerian-reduction"
      ~algo:(Simulate.through_reduction Eulerian_red.reduction ~inner:Candidates.eulerian_decider ())
      ~ids g
  in
  let fagin =
    (* 2-COLORABLE compiled from its LFO sentence (Theorem 12): the
       adversary attacks the relation-fragment certificates of the
       honest Fagin witness. *)
    let g = Generators.path 3 in
    let ids = Identifiers.make_global g in
    let compiled = Fagin.compile Graph_formulas.two_colorable in
    Fault_search.workload ~name:"fagin-2col" ~arbiter:compiled.Fagin.arbiter
      ~universes:(Fagin.fragment_universes compiled g ~ids)
      ~ids g
  in
  let sigma2 =
    (* The Σ2 robust-2col verifier on C4: Eve's colouring joined with
       Adam's flipped challenge is the honest two-level certificate. *)
    let g = Generators.cycle 4 in
    let ids = Identifiers.make_global g in
    let certs = Array.init 4 (fun u -> Printf.sprintf "%d#%d" (u mod 2) (1 - (u mod 2))) in
    Fault_search.workload ~name:"sigma2-robust-2col" ~algo:Candidates.robust_two_col_verifier
      ~cert_list:certs ~ids g
  in
  [ two_col; three_col; eulerian; fagin; sigma2 ]

type fixture = {
  f_name : string;
  f_arbiter : Arbiter.t;
  f_graph : G.t;
  f_ids : Identifiers.t;
  f_universes : Lph_hierarchy.Game.universe list;
}

let soundness_fixtures () =
  let odd_cycle =
    let g = Generators.cycle 5 in
    {
      f_name = "2col-on-C5";
      f_arbiter = Arbiter.of_local_algo ~id_radius:1 (Candidates.color_verifier 2);
      f_graph = g;
      f_ids = Identifiers.make_global g;
      f_universes = [ Candidates.color_universe 2 ];
    }
  in
  let k4 =
    let g = Generators.complete 4 in
    {
      f_name = "3col-on-K4";
      f_arbiter = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3);
      f_graph = g;
      f_ids = Identifiers.make_global g;
      f_universes = [ Candidates.color_universe 3 ];
    }
  in
  [ odd_cycle; k4 ]

let models ~f =
  List.map (fun name -> Lph_faults.Fault_model.make ~f name) Lph_faults.Fault_model.all_names
