(* Adversarial fault scheduling: search over explicit (kind, round,
   node) fault schedules for the one that does the most damage to a
   workload under a model's budget. The search is greedy — grow the
   schedule one event at a time, keeping the extension that raises the
   damage objective the most — over the candidate grid kinds × rounds ×
   nodes, with a hard cap on objective evaluations from
   [LPH_FAULT_SEARCH_BUDGET]. Everything is deterministic: candidates
   are scanned in a fixed order, schedules are evaluated through
   {!Runner.run_outcome} (which forces the compute phase sequential
   under a plan), and positional choices inside an event come from the
   plan layer's seeded hashes. The same (workload, model, seed) triple
   therefore always returns the same report, for any [LPH_JOBS].

   The damage objective is lexicographic, encoded as a single score:
   flipping the workload's verdict dominates everything, then typed
   errors and divergence, then survivor-label damage, then round
   overhead. Graceful degradation (a {!Runner.Degraded} outcome under
   quorum f) scores barely above zero — a crash the quorum absorbs is
   the adversary wasting its budget. *)

module G = Lph_graph.Labeled_graph
module Identifiers = Lph_graph.Identifiers
module LA = Lph_machine.Local_algo
module Runner = Lph_machine.Runner
module Fault_plan = Lph_faults.Fault_plan
module Fault_model = Lph_faults.Fault_model
module Arbiter = Lph_hierarchy.Arbiter
module Game = Lph_hierarchy.Game
module Error = Lph_util.Error

let what = "Fault_search"

type workload = {
  w_name : string;
  w_graph : G.t;
  w_ids : Identifiers.t;
  w_algo : LA.packed option;
  w_cert_list : string array option;
  w_arbiter : Arbiter.t option;
  w_universes : Game.universe list;
}

let workload ?algo ?cert_list ?arbiter ?(universes = []) ~name ~ids graph =
  {
    w_name = name;
    w_graph = graph;
    w_ids = ids;
    w_algo = algo;
    w_cert_list = cert_list;
    w_arbiter = arbiter;
    w_universes = universes;
  }

type verdict = Survive | Flip | Diverge

let verdict_string = function Survive -> "survive" | Flip -> "flip" | Diverge -> "diverge"

type report = {
  r_workload : string;
  r_model : string;
  r_verdict : verdict;
  r_flip_budget : int option;
  r_events : Fault_plan.event list;
  r_spec : string option;
  r_evals : int;
  r_round_overhead : int;
  r_degraded : bool;
  r_base_accepts : bool;
}

let default_budget = 2000

let search_budget () =
  match Sys.getenv_opt "LPH_FAULT_SEARCH_BUDGET" with
  | None | Some "" -> default_budget
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> v
      | _ ->
          Error.protocol_error ~what "LPH_FAULT_SEARCH_BUDGET %S is not a positive integer" s)

(* ------------------------------------------------------------------ *)
(* Damage objective.                                                   *)

let score_flip = 1_000_000

let score_diverged = 20_000

let score_error = 10_000

let score_label = 100

let score_degraded = 5

type eval = {
  e_score : int;
  e_flip : bool;
  e_broken : bool;  (** typed error, divergence or label damage *)
  e_degraded : bool;
  e_rounds : int option;
}

let neutral = { e_score = 0; e_flip = false; e_broken = false; e_degraded = false; e_rounds = None }

let label_damage base_labels output =
  let d = ref 0 in
  Array.iteri (fun u l -> if l <> G.label output u then incr d) base_labels;
  !d

(* Runner probe: run the workload's algorithm under the explicit
   schedule (quorum = the model's own f, so crash-stop damage the
   survivors absorb is scored as survival) and compare against the
   fault-free twin. *)
let eval_runner ~model ~plan ~base w =
  match (w.w_algo, base) with
  | Some algo, Some (base_accepts, base_labels, base_rounds) ->
      let quorum = if Fault_model.f model > 0 then Some (Fault_model.f model) else None in
      let outcome =
        Runner.run_outcome ~round_limit:256 ~faults:plan ?quorum algo w.w_graph ~ids:w.w_ids
          ?cert_list:w.w_cert_list ()
      in
      (match outcome with
      | Runner.Completed _ -> neutral
      | Runner.Degraded d ->
          let rounds = d.Runner.deg_result.Runner.stats.Runner.rounds in
          {
            e_score = score_degraded + abs (rounds - base_rounds);
            e_flip = false;
            e_broken = false;
            e_degraded = true;
            e_rounds = Some rounds;
          }
      | Runner.Faulted fr -> (
          match fr.Runner.partial with
          | Some r ->
              let rounds = r.Runner.stats.Runner.rounds in
              let overhead = abs (rounds - base_rounds) in
              if Runner.accepts r <> base_accepts then
                {
                  e_score = score_flip + label_damage base_labels r.Runner.output;
                  e_flip = true;
                  e_broken = true;
                  e_degraded = false;
                  e_rounds = Some rounds;
                }
              else
                let damage = label_damage base_labels r.Runner.output in
                {
                  e_score = (score_label * damage) + overhead;
                  e_flip = false;
                  e_broken = damage > 0;
                  e_degraded = false;
                  e_rounds = Some rounds;
                }
          | None ->
              let s = if fr.Runner.diverged <> None then score_diverged else score_error in
              { e_score = s; e_flip = false; e_broken = true; e_degraded = false; e_rounds = None }))
  | _ -> neutral

(* Game probe: tamper the honest Eve witness with the schedule's
   certificate events and re-ask the arbiter. Invalidating a witness
   the engines certified is a completeness flip — the served verdict on
   a yes-instance turns into reject. *)
let eval_game ~plan w witness =
  match (w.w_arbiter, witness) with
  | Some arb, Some certs ->
      let tampered =
        Array.mapi (fun u c -> fst (Fault_plan.tamper_cert plan ~node:u c)) certs
      in
      if tampered = certs then neutral
      else if arb.Arbiter.accepts w.w_graph ~ids:w.w_ids ~certs:[ tampered ] then neutral
      else
        { e_score = score_flip; e_flip = true; e_broken = true; e_degraded = false; e_rounds = None }
  | _ -> neutral

let join a b =
  {
    e_score = max a.e_score b.e_score;
    e_flip = a.e_flip || b.e_flip;
    e_broken = a.e_broken || b.e_broken;
    e_degraded = a.e_degraded || b.e_degraded;
    e_rounds = (match a.e_rounds with Some _ -> a.e_rounds | None -> b.e_rounds);
  }

(* ------------------------------------------------------------------ *)
(* Candidate grid and greedy growth.                                   *)

let pre_round = function
  | Fault_plan.Cert_flip | Fault_plan.Cert_forge | Fault_plan.Dup_id -> true
  | Fault_plan.Corrupt | Fault_plan.Truncate | Fault_plan.Drop | Fault_plan.Crash
  | Fault_plan.Overcharge ->
      false

let candidate_events ~model ~n ~base_rounds =
  let rounds = List.init (max 1 (min base_rounds 4)) (fun i -> i + 1) in
  List.concat_map
    (fun k ->
      let rs = if pre_round k then [ -1 ] else rounds in
      List.concat_map (fun r -> List.init n (fun u -> (k, r, u))) rs)
    (Fault_model.kinds_of (Fault_model.name model))

let distinct_nodes events =
  List.length (List.sort_uniq compare (List.map (fun (_, _, u) -> u) events))

let cache : (string * string * int, report) Hashtbl.t = Hashtbl.create 32

let cache_mutex = Mutex.create ()

let clear_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex

let search ?(seed = 0) ~model w =
  let key = (w.w_name, Fault_model.to_string model, seed) in
  let cached =
    Mutex.lock cache_mutex;
    let r = Hashtbl.find_opt cache key in
    Mutex.unlock cache_mutex;
    r
  in
  match cached with
  | Some r -> r
  | None ->
      let n = G.card w.w_graph in
      let base =
        match w.w_algo with
        | None -> None
        | Some algo ->
            let r = Runner.run algo w.w_graph ~ids:w.w_ids ?cert_list:w.w_cert_list () in
            Some (Runner.accepts r, G.labels r.Runner.output, r.Runner.stats.Runner.rounds)
      in
      (* The honest witness the certificate attack tries to invalidate,
         certified by the game engine acting as the adversary's oracle.
         Exhaustive enumeration keeps the witness identical across
         engines and job counts. *)
      let witness =
        match w.w_arbiter with
        | Some arb when arb.Arbiter.levels = 1 && w.w_universes <> [] ->
            Game.eve_witness ~engine:`Exhaustive arb w.w_graph ~ids:w.w_ids
              ~universes:w.w_universes
        | _ -> None
      in
      let base_accepts =
        match base with Some (a, _, _) -> a | None -> witness <> None
      in
      let base_rounds = match base with Some (_, _, r) -> r | None -> 1 in
      let candidates = candidate_events ~model ~n ~base_rounds in
      let budget = search_budget () in
      let evals = ref 0 in
      let evaluate events =
        incr evals;
        let plan = Fault_model.schedule model ~n ~seed events in
        join (eval_runner ~model ~plan ~base w) (eval_game ~plan w witness)
      in
      let best = ref neutral and best_events = ref [] and flip_budget = ref None in
      let f = Fault_model.f model in
      let rec grow schedule current =
        if current.e_flip || !evals >= budget then ()
        else
          let step =
            List.fold_left
              (fun acc ev ->
                if !evals >= budget then acc
                else if List.mem ev schedule then acc
                else if distinct_nodes (ev :: schedule) > f then acc
                else
                  let events = schedule @ [ ev ] in
                  let e = evaluate events in
                  let beats =
                    match acc with
                    | Some (_, prev) -> e.e_score > prev.e_score
                    | None -> e.e_score > current.e_score
                  in
                  if beats then Some (events, e) else acc)
              None candidates
          in
          match step with
          | None -> ()
          | Some (events, e) ->
              if e.e_score > !best.e_score then begin
                best := e;
                best_events := events
              end;
              if e.e_flip then flip_budget := Some (List.length events) else grow events e
      in
      grow [] neutral;
      let e = !best in
      let report =
        {
          r_workload = w.w_name;
          r_model = Fault_model.to_string model;
          r_verdict = (if e.e_flip then Flip else if e.e_broken then Diverge else Survive);
          r_flip_budget = !flip_budget;
          r_events = !best_events;
          r_spec =
            (if !best_events = [] then None
             else Some (Fault_plan.to_spec (Fault_model.schedule model ~n ~seed !best_events)));
          r_evals = !evals;
          r_round_overhead =
            (match e.e_rounds with Some r -> r - base_rounds | None -> 0);
          r_degraded = e.e_degraded;
          r_base_accepts = base_accepts;
        }
      in
      Mutex.lock cache_mutex;
      Hashtbl.replace cache key report;
      Mutex.unlock cache_mutex;
      report

(* ------------------------------------------------------------------ *)
(* Soundness: no in-budget plan may flip reject into accept.           *)

let engines = [ ("exhaustive", `Exhaustive); ("pruned", `Pruned); ("sat", `Sat); ("cegar", `Cegar) ]

let cert_soundness ?(engines = engines) ~model ~seeds arbiter g ~ids ~universes =
  let n = G.card g in
  let violations = ref [] in
  let complain fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  List.iter
    (fun (ename, engine) ->
      if Game.sigma_accepts ~engine arbiter g ~ids ~universes then
        complain "engine %s accepts the no-instance fault-free" ename)
    engines;
  let levels = arbiter.Arbiter.levels in
  let universe_at lvl =
    match List.nth_opt universes lvl with
    | Some u -> u
    | None -> List.nth universes (List.length universes - 1)
  in
  List.iter
    (fun seed ->
      let plan = Fault_model.compile model ~n ~seed in
      let base_certs =
        List.init levels (fun lvl ->
            Array.init n (fun u ->
                match universe_at lvl u with
                | [] -> ""
                | cs ->
                    List.nth cs (Fault_plan.hash_seeded ~seed (8 + lvl) [ n; u ] mod List.length cs)))
      in
      let tampered =
        List.map
          (fun certs -> Array.mapi (fun u c -> fst (Fault_plan.tamper_cert plan ~node:u c)) certs)
          base_certs
      in
      if arbiter.Arbiter.accepts g ~ids ~certs:tampered then
        complain "model %s seed %d (plan %s) flips reject into accept"
          (Fault_model.to_string model) seed (Fault_plan.to_spec plan))
    seeds;
  List.rev !violations
