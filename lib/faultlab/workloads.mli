(** The shipped fault-axis workloads and soundness fixtures: the same
    instances the benchmark and the paper's experiments exercise,
    packaged for {!Fault_search}. *)

val shipped : unit -> Fault_search.workload list
(** The five yes-instance workloads the fault axis reruns under every
    model: the 2-COL and 3-COL certificate games, EULERIAN through the
    cluster reduction, 2-COLORABLE compiled via Fagin, and the Σ2
    robust-2col verifier. *)

type fixture = {
  f_name : string;
  f_arbiter : Lph_hierarchy.Arbiter.t;
  f_graph : Lph_graph.Labeled_graph.t;
  f_ids : Lph_graph.Identifiers.t;
  f_universes : Lph_hierarchy.Game.universe list;
}

val soundness_fixtures : unit -> fixture list
(** No-instances for {!Fault_search.cert_soundness}: an odd cycle
    against the 2-colouring game and K4 against the 3-colouring game. *)

val models : f:int -> Lph_faults.Fault_model.t list
(** One model per {!Lph_faults.Fault_model.name}, all with node budget
    [f] and default rate. *)
