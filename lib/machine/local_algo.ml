module C = Lph_util.Codec

type msg = { wire : string; cost : int }

let no_msg = { wire = ""; cost = 0 }

let raw_msg s = { wire = s; cost = String.length s }

let encode_msg c v = let wire = C.encode_wire c v in { wire; cost = C.wire_bits wire }

let decode_msg c (m : msg) = C.decode_wire c m.wire

type ctx = {
  label : string;
  ident : string;
  certs : string list;
  cert_list : string;
  degree : int;
  charge : int -> unit;
}

type 'st t = {
  name : string;
  levels : int;
  radius : int option;
  init : ctx -> 'st;
  round : ctx -> int -> 'st -> inbox:msg list -> 'st * msg list * bool;
  output : 'st -> string;
}

type packed = Packed : 'st t -> packed

let name (Packed a) = a.name

let levels (Packed a) = a.levels

let radius (Packed a) = a.radius

let pure_decider ~name ~levels verdict =
  Packed
    {
      name;
      levels;
      radius = Some 0;
      init =
        (fun ctx ->
          ctx.charge
            (String.length ctx.label + String.length ctx.ident
            + List.fold_left (fun acc c -> acc + String.length c) 0 ctx.certs);
          verdict ctx);
      round = (fun _ctx _round accepted ~inbox:_ -> (accepted, [], true));
      output = (fun accepted -> if accepted then "1" else "0");
    }

let map_output f (Packed a) = Packed { a with output = (fun st -> f (a.output st)) }

let with_radius radius (Packed a) = Packed { a with radius }
