(** Synchronous execution of {!Local_algo} programs on labelled graphs:
    the same scheduling discipline as {!Turing.run} (rounds of
    receive / compute / send, neighbours ordered by identifier,
    stopped nodes emit empty messages), with per-node, per-round
    charge and input-size accounting.

    All statistics are computed from message {e costs}
    ({!Local_algo.msg}), i.e. the paper's bit-string lengths — they are
    independent of the transport wire mode
    ({!Lph_util.Codec.wire_mode}).

    The per-round compute phase runs on a persistent
    {!Lph_util.Parallel} domain team when the effective job count
    ([LPH_JOBS]) exceeds 1 and the graph has at least [LPH_PAR_MIN]
    nodes (default 32); message delivery is sequential and
    identifier-ordered either way, so results and statistics are
    bit-identical for every job count. *)

type stats = {
  rounds : int;
  charges : int array array;  (** charges.(round - 1).(node) *)
  input_sizes : int array array;
      (** per round, per node: total length of the node's local input
          (inbox plus label/identifier/certificates in round 1, inbox
          plus a carried-state estimate afterwards) *)
  message_bytes : int array array;  (** outgoing message volume *)
}

type result = { output : Lph_graph.Labeled_graph.t; stats : stats }

exception Diverged of string

val run :
  ?round_limit:int ->
  Local_algo.packed ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  ?cert_list:string array ->
  unit ->
  result
(** [cert_list] is the certificate-list assignment (strings over
    {0,1,#}); each node's entry is decoded into [levels] certificates.
    Raises [Invalid_argument] if identifiers are not distinct among any
    node's neighbourhood (the 1-local uniqueness precondition), or if
    the algorithm emits more messages than a node's degree. *)

val accepts : result -> bool
val verdict : result -> int -> string

val decides :
  Local_algo.packed ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  ?cert_list:string array ->
  unit ->
  bool
(** [run] followed by {!accepts}. *)
