(** Synchronous execution of {!Local_algo} programs on labelled graphs:
    the same scheduling discipline as {!Turing.run} (rounds of
    receive / compute / send, neighbours ordered by identifier,
    stopped nodes emit empty messages), with per-node, per-round
    charge and input-size accounting.

    All statistics are computed from message {e costs}
    ({!Local_algo.msg}), i.e. the paper's bit-string lengths — they are
    independent of the transport wire mode
    ({!Lph_util.Codec.wire_mode}).

    The per-round compute phase runs on a persistent
    {!Lph_util.Parallel} domain team when the effective job count
    ([LPH_JOBS]) exceeds 1 and the graph has at least [LPH_PAR_MIN]
    nodes (default 32); message delivery is sequential and
    identifier-ordered either way, so results and statistics are
    bit-identical for every job count.

    {b Fault injection.} An optional {!Lph_faults.Fault_plan} tampers
    with the run at its trust boundaries: identifiers and certificates
    before round 1, each message wire during delivery, crash-stops and
    charge inflation per round. The plan comes from the [?faults]
    argument or, failing that, the ambient plan installed from
    [LPH_FAULTS] at start-up ({!fault_plan} / {!set_fault_plan}). With
    no plan the hook is one [match] on [None] per injection point —
    the default costs nothing. With a plan active the compute phase is
    forced sequential so the injected schedule is exactly the one the
    seed describes and fault recording needs no lock. *)

type stats = {
  rounds : int;
  charges : int array array;  (** charges.(round - 1).(node) *)
  input_sizes : int array array;
      (** per round, per node: total length of the node's local input
          (inbox plus label/identifier/certificates in round 1, inbox
          plus a carried-state estimate afterwards) *)
  message_bytes : int array array;  (** outgoing message volume *)
}

type result = { output : Lph_graph.Labeled_graph.t; stats : stats }

type divergence = { algo : string; rounds : int; reason : string }
(** Context for a run that failed to converge: which algorithm, after
    how many rounds, and why. *)

exception Diverged of divergence

type fault_report = {
  faults : Lph_util.Error.fault list;
      (** injected faults that actually fired, in firing order *)
  error : Lph_util.Error.t option;
      (** the typed error that aborted the run, if one did *)
  diverged : divergence option;  (** set when the run hit its round limit *)
  partial : result option;
      (** the tainted result, when the run still ran to completion *)
}

type degraded_report = {
  survivors : int;  (** nodes that did not crash *)
  crashed : int list;  (** crash-stopped nodes, sorted *)
  deg_result : result;  (** the degraded run; survivor labels are sound *)
  deg_faults : Lph_util.Error.fault list;  (** the crash faults that fired *)
}

type outcome =
  | Completed of result
      (** No injected fault fired: the result is bit-identical to the
          fault-free run. *)
  | Degraded of degraded_report
      (** Quorum mode only: every fired fault was a crash-stop, at most
          [quorum] nodes crashed, and every surviving node's output
          label equals the fault-free run's — the survivors' verdict is
          sound even though the run was faulted. *)
  | Faulted of fault_report
      (** At least one fault fired (or the faulted run raised a typed
          error / diverged): never trust [partial] as a verdict. *)

val fault_plan : unit -> Lph_faults.Fault_plan.t option
(** The ambient fault plan, initialised from [LPH_FAULTS]. *)

val set_fault_plan : Lph_faults.Fault_plan.t option -> unit
(** Install or clear the ambient plan (tests and the fuzzer harness;
    the fuzzer clears the ambient plan and passes per-scenario plans
    explicitly so engine-internal runs stay fault-free). *)

val run :
  ?round_limit:int ->
  ?faults:Lph_faults.Fault_plan.t ->
  Local_algo.packed ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  ?cert_list:string array ->
  unit ->
  result
(** [cert_list] is the certificate-list assignment (strings over
    {0,1,#}); each node's entry is decoded into [levels] certificates.
    Raises [Error.Error (Protocol_error _)] if identifiers are not
    distinct among any node's neighbourhood (the 1-local uniqueness
    precondition) or if the algorithm emits more messages than a node's
    degree, and {!Diverged} past [round_limit] (default 1000). Under an
    active fault plan the result may additionally be tainted and decode
    errors ([Error.Error (Decode_error _)]) may surface from message
    handlers; use {!run_outcome} to observe faults explicitly. *)

val run_outcome :
  ?round_limit:int ->
  ?faults:Lph_faults.Fault_plan.t ->
  ?quorum:int ->
  Local_algo.packed ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  ?cert_list:string array ->
  unit ->
  outcome
(** Like {!run} but faults degrade to an explicit {!Faulted} outcome
    instead of tainted results or escaping exceptions: typed errors and
    divergence raised by the faulted run are captured in the report
    together with every fault that fired. [Completed r] is a guarantee
    that no injected fault fired, so [r] equals the fault-free run's
    result. Without an active plan this is exactly [run] (errors
    propagate as exceptions).

    [quorum] opts into graceful degradation for crash-stop faults: when
    the only faults that fired are crash-stops of at most [quorum]
    nodes and every survivor's output label matches the fault-free twin
    run (verified by actually running it), the outcome is {!Degraded}
    instead of {!Faulted} — the surviving verdict is certified sound.
    Any non-crash fault, or more than [quorum] crashed nodes, or a
    survivor label divergence falls back to {!Faulted}. *)

val accepts : result -> bool
val verdict : result -> int -> string

val decides :
  Local_algo.packed ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  ?cert_list:string array ->
  unit ->
  bool
(** [run] followed by {!accepts}. *)
