(** Local algorithms: a structured, higher-level counterpart to raw
    distributed Turing machines (see DESIGN.md for the substitution
    rationale). A local algorithm keeps an abstract per-node state
    instead of tapes, but runs under exactly the same synchronous
    semantics as {!Turing}: identifier-ordered message delivery,
    acceptance by unanimity, and per-round step accounting via an
    explicit [charge] counter that implementations bump in proportion
    to the work they do. The {!Runner} records charges and local input
    sizes so that polynomial step time can be verified empirically
    ({!Step_time}). *)

type ctx = {
  label : string;
  ident : string;
  certs : string list;  (** the decoded certificate list k1, ..., kl *)
  cert_list : string;  (** the raw certificate-list string k1#...#kl *)
  degree : int;
  charge : int -> unit;  (** account for computation steps *)
}

type 'st t = {
  name : string;
  levels : int;  (** how many certificates the algorithm expects *)
  radius : int option;
      (** declared verification radius: when [Some r], every node's
          verdict is a function of its radius-[r] view alone — the
          induced [N_r] subgraph with labels, identifiers, certificates
          and the node's own degree. [None] means the verdict may depend
          on the whole graph; solvers then cannot prune. *)
  init : ctx -> 'st;
  round : ctx -> int -> 'st -> inbox:string list -> 'st * string list * bool;
      (** [round ctx k st ~inbox] processes the messages received at the
          beginning of round [k] (sender-sorted by identifier; all empty
          in round 1) and returns the new state, the outgoing messages
          (i-th message to the i-th neighbour in identifier order,
          missing ones default to ""), and whether the node stops. *)
  output : 'st -> string;  (** the final label; "1" means accept *)
}

type packed = Packed : 'st t -> packed
(** Existential wrapper so algorithms with different state types can be
    stored together (e.g. as arbiters). *)

val name : packed -> string
val levels : packed -> int

val radius : packed -> int option
(** The declared verification radius, if any (see {!type:t}). *)

val pure_decider : name:string -> levels:int -> (ctx -> bool) -> packed
(** A one-round algorithm whose verdict depends only on the node's own
    label, identifier and certificates (declared radius 0). [charge] is
    bumped once per input character. *)

val map_output : (string -> string) -> packed -> packed
