(** Local algorithms: a structured, higher-level counterpart to raw
    distributed Turing machines (see DESIGN.md for the substitution
    rationale). A local algorithm keeps an abstract per-node state
    instead of tapes, but runs under exactly the same synchronous
    semantics as {!Turing}: identifier-ordered message delivery,
    acceptance by unanimity, and per-round step accounting via an
    explicit [charge] counter that implementations bump in proportion
    to the work they do. The {!Runner} records charges and local input
    sizes so that polynomial step time can be verified empirically
    ({!Step_time}). *)

type msg = { wire : string; cost : int }
(** One message on the wire. [wire] is the transport representation
    (mode-dependent, see {!Lph_util.Codec.wire_mode}); [cost] is the
    message's length in the paper's bit-string accounting — the value
    every charge, input size and message-volume statistic is computed
    from. For plainly transported messages [cost] is the length of the
    bit string the seed runtime would have shipped
    ([Codec.wire_bits wire]); delta-flooded {!Gather} messages carry the
    cost of the full table the paper's protocol broadcasts, which their
    (smaller) wire only summarises. *)

val no_msg : msg
(** The empty message (["" ], cost 0) — what stopped or silent
    neighbours deliver. *)

val raw_msg : string -> msg
(** A message charged at face value (cost = byte length): for verdicts,
    labels and other strings that are already bit strings. *)

val encode_msg : 'a Lph_util.Codec.t -> 'a -> msg
(** Encode a value for transport in the current wire mode, costed at
    its bit-string length (8x the packed byte length). *)

val decode_msg : 'a Lph_util.Codec.t -> msg -> 'a
(** Decode a message produced by {!encode_msg} under the same mode.
    Raises [Error.Error (Decode_error _)] on malformed input — wire
    bytes are a trust boundary; no raw [Failure _] ever escapes the
    decode path. *)

type ctx = {
  label : string;
  ident : string;
  certs : string list;  (** the decoded certificate list k1, ..., kl *)
  cert_list : string;  (** the raw certificate-list string k1#...#kl *)
  degree : int;
  charge : int -> unit;  (** account for computation steps *)
}

type 'st t = {
  name : string;
  levels : int;  (** how many certificates the algorithm expects *)
  radius : int option;
      (** declared verification radius: when [Some r], every node's
          verdict is a function of its radius-[r] view alone — the
          induced [N_r] subgraph with labels, identifiers, certificates
          and the node's own degree. [None] means the verdict may depend
          on the whole graph; solvers then cannot prune. *)
  init : ctx -> 'st;
  round : ctx -> int -> 'st -> inbox:msg list -> 'st * msg list * bool;
      (** [round ctx k st ~inbox] processes the messages received at the
          beginning of round [k] (sender-sorted by identifier; all
          {!no_msg} in round 1) and returns the new state, the outgoing
          messages (i-th message to the i-th neighbour in identifier
          order, missing ones default to {!no_msg}; emitting more
          messages than the node's degree is an error the runner
          rejects), and whether the node stops. *)
  output : 'st -> string;  (** the final label; "1" means accept *)
}

type packed = Packed : 'st t -> packed
(** Existential wrapper so algorithms with different state types can be
    stored together (e.g. as arbiters). *)

val name : packed -> string
val levels : packed -> int

val radius : packed -> int option
(** The declared verification radius, if any (see {!type:t}). *)

val pure_decider : name:string -> levels:int -> (ctx -> bool) -> packed
(** A one-round algorithm whose verdict depends only on the node's own
    label, identifier and certificates (declared radius 0). [charge] is
    bumped once per input character. *)

val map_output : (string -> string) -> packed -> packed

val with_radius : int option -> packed -> packed
(** Override the declared verification radius: the machine's behaviour
    is untouched, only the locality {e claim} changes. This exists for
    the analyzer's fixtures (deliberately under-, over- and
    un-declared variants of a correct machine) — shipping code should
    declare its radius at construction. *)
