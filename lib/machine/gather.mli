(** The canonical building block of constant-round algorithms: gather
    the full r-neighbourhood. After [radius + 2] rounds of flooding,
    every node knows the induced subgraph N_r(u) together with all
    labels, identifiers and certificate lists therein — exactly the
    information the compiled arbiters of Theorem 12 evaluate their BF
    matrix against.

    Requires the identifier assignment to be [radius + 1]-locally
    unique: adjacency lists of ball-boundary nodes mention identifiers
    of nodes at distance [radius + 1], which must not collide with the
    identifier of any ball member (two such nodes can lie at distance
    [2 * radius + 1], beyond what [radius]-local uniqueness covers).
    Like every machine in the paper, the algorithm simply presupposes
    an [r_id] of its own choosing; under weaker assignments boundary
    aliasing can produce phantom edges in the reconstructed ball. All
    knowledge travels through explicit wire-encoded messages
    ({!Lph_util.Codec}); charges are proportional to the bytes
    processed, which keeps the step time of gathering polynomial in the
    local input size. *)

type entry = {
  ident : string;
  label : string;
  cert : string;  (** the raw certificate-list string of that node *)
  adj : string list option;  (** identifiers of its neighbours, once known *)
  dist : int;  (** distance from the gathering node *)
}

type ball = { centre : string; radius : int; entries : entry list }

val rounds_needed : int -> int
(** [radius + 2]. *)

val reconstruct :
  ball ->
  Lph_graph.Labeled_graph.t * Lph_graph.Identifiers.t * string array * int
(** Rebuild [N_r(centre)] as a labelled graph from a completed ball:
    returns the subgraph, the identifier assignment, the raw
    certificate-list strings, and the index of the centre node. Entries
    with unknown adjacency contribute only the edges reported by their
    neighbours. Raises [Error.Error (Protocol_error _)] on inconsistent
    balls (duplicate identifiers, centre missing). *)

val algo :
  name:string ->
  radius:int ->
  levels:int ->
  decide:(Local_algo.ctx -> ball -> bool) ->
  Local_algo.packed
(** A local algorithm that gathers the [radius]-ball and then applies
    [decide] to reach its verdict. *)

val map_algo :
  name:string ->
  radius:int ->
  levels:int ->
  f:(Local_algo.ctx -> ball -> string) ->
  Local_algo.packed
(** Like {!algo} but with an arbitrary output label (must be a bit
    string): the shape of graph-transformation machines, whose output
    labels encode clusters (Section 8). *)

(** {1 Re-usable gathering phase}

    For machines that gather a ball and then enter further phases
    (e.g. the cluster simulation of Section 8), the flooding rounds are
    exposed directly. *)

type gather_state

val init_gather : Local_algo.ctx -> gather_state

val step_gather :
  radius:int ->
  Local_algo.ctx ->
  int ->
  gather_state ->
  inbox:Local_algo.msg list ->
  Local_algo.msg list * bool
(** One round of flooding ([int] is the global round number, starting
    at 1); returns the outbox and whether the ball is complete. Under
    the packed wire mode ({!Lph_util.Codec.wire_mode}) each round ships
    only the {e delta} — entries learned or completed while processing
    this round's inbox — but every message is costed at the bit-string
    length of the full-table broadcast of the paper's protocol, so all
    {!Runner} statistics are mode-independent. *)

val completed_ball : gather_state -> ball
(** The gathered ball; raises [Error.Error (Protocol_error _)] before
    completion. *)

val collect :
  radius:int ->
  ?faults:Lph_faults.Fault_plan.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  ?cert_list:string array ->
  unit ->
  ball array
(** Convenience: run the gathering algorithm and return every node's
    completed ball (used by tests to compare against direct BFS).
    [faults] threads a fault plan into the underlying {!Runner.run} —
    the transport hook then tampers with the flooding messages. *)
