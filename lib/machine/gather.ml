module G = Lph_graph.Labeled_graph
module C = Lph_util.Codec

type entry = {
  ident : string;
  label : string;
  cert : string;
  adj : string list option;
  dist : int;
}

type ball = { centre : string; radius : int; entries : entry list }

let entry_codec : entry C.t =
  C.map
    (fun ((ident, label, cert), (adj, dist)) -> { ident; label; cert; adj; dist })
    (fun e -> ((e.ident, e.label, e.cert), (e.adj, e.dist)))
    (C.pair (C.triple C.string C.string C.string) (C.pair (C.option (C.list C.string)) C.int))

let table_codec = C.list entry_codec

let ball_codec : ball C.t =
  C.map
    (fun ((centre, radius), entries) -> { centre; radius; entries })
    (fun b -> ((b.centre, b.radius), b.entries))
    (C.pair (C.pair C.string C.int) table_codec)

let rounds_needed radius = radius + 2

type state = {
  table : (string, entry) Hashtbl.t;
  mutable ball : ball option;
  mutable verdict : string option;
}

let self_entry (ctx : Local_algo.ctx) =
  {
    ident = ctx.Local_algo.ident;
    label = ctx.Local_algo.label;
    cert = ctx.Local_algo.cert_list;
    adj = None;
    dist = 0;
  }

let merge_entry table e =
  match Hashtbl.find_opt table e.ident with
  | None -> Hashtbl.replace table e.ident e
  | Some old ->
      let adj = match old.adj with Some _ -> old.adj | None -> e.adj in
      Hashtbl.replace table e.ident { old with adj; dist = min old.dist e.dist }

let finish_ball ~radius (ctx : Local_algo.ctx) st =
  let entries =
    Hashtbl.fold (fun _ e acc -> if e.dist <= radius then e :: acc else acc) st.table []
  in
  let entries = List.sort (fun a b -> compare a.ident b.ident) entries in
  st.ball <- Some { centre = ctx.Local_algo.ident; radius; entries }

let init_state ctx =
  let table = Hashtbl.create 16 in
  let self = self_entry ctx in
  Hashtbl.replace table self.ident self;
  { table; ball = None; verdict = None }

(* One round of flooding; returns the outbox and whether gathering is
   complete (in which case st.ball is set). *)
let gather_round ~radius (ctx : Local_algo.ctx) round st ~inbox =
  let charge_msgs msgs = List.iter (fun m -> ctx.Local_algo.charge (String.length m + 1)) msgs in
  charge_msgs inbox;
  let broadcast entries =
    let msg = C.encode_bits table_codec entries in
    let out = List.init ctx.Local_algo.degree (fun _ -> msg) in
    charge_msgs out;
    out
  in
  if round = 1 then (broadcast [ self_entry ctx ], false)
  else begin
    let tables = List.map (C.decode_bits table_codec) inbox in
    List.iter
      (fun entries ->
        List.iter
          (fun e -> if e.dist + 1 <= radius then merge_entry st.table { e with dist = e.dist + 1 })
          entries)
      tables;
    if round = 2 then begin
      (* the round-2 inbox consists of the neighbours' self-entries: they
         reveal our own adjacency list *)
      let adj =
        List.sort compare
          (List.concat_map (fun entries -> List.map (fun e -> e.ident) entries) tables)
      in
      let self = Hashtbl.find st.table ctx.Local_algo.ident in
      Hashtbl.replace st.table ctx.Local_algo.ident { self with adj = Some adj }
    end;
    if round >= rounds_needed radius then begin
      finish_ball ~radius ctx st;
      ([], true)
    end
    else begin
      let entries =
        Hashtbl.fold (fun _ e acc -> if e.dist <= radius - 1 then e :: acc else acc) st.table []
      in
      let entries = List.sort (fun a b -> compare a.ident b.ident) entries in
      (broadcast entries, false)
    end
  end

let the_ball st =
  match st.ball with Some b -> b | None -> failwith "Gather: ball not completed"

let algo ~name ~radius ~levels ~decide =
  Local_algo.Packed
    {
      Local_algo.name;
      levels;
      radius = Some radius;
      init = init_state;
      round =
        (fun ctx round st ~inbox ->
          let out, finished = gather_round ~radius ctx round st ~inbox in
          if finished then st.verdict <- Some (if decide ctx (the_ball st) then "1" else "0");
          (st, out, finished));
      output = (fun st -> match st.verdict with Some v -> v | None -> "0");
    }

let map_algo ~name ~radius ~levels ~f =
  Local_algo.Packed
    {
      Local_algo.name;
      levels;
      radius = Some radius;
      init = init_state;
      round =
        (fun ctx round st ~inbox ->
          let out, finished = gather_round ~radius ctx round st ~inbox in
          if finished then st.verdict <- Some (f ctx (the_ball st));
          (st, out, finished));
      output = (fun st -> match st.verdict with Some v -> v | None -> "");
    }

let ball_output_algo ~radius ~levels =
  Local_algo.Packed
    {
      Local_algo.name = "gather-ball";
      levels;
      radius = Some radius;
      init = init_state;
      round =
        (fun ctx round st ~inbox ->
          let out, finished = gather_round ~radius ctx round st ~inbox in
          (st, out, finished));
      output = (fun st -> C.encode_bits ball_codec (the_ball st));
    }

let reconstruct ball =
  let entries = ball.entries in
  let index = Hashtbl.create 16 in
  List.iteri (fun i e -> Hashtbl.replace index e.ident i) entries;
  if Hashtbl.length index <> List.length entries then
    failwith "Gather.reconstruct: duplicate identifiers";
  let labels = Array.of_list (List.map (fun e -> e.label) entries) in
  let ids = Array.of_list (List.map (fun e -> e.ident) entries) in
  let certs = Array.of_list (List.map (fun e -> e.cert) entries) in
  let edges =
    List.concat_map
      (fun e ->
        match e.adj with
        | None -> []
        | Some neigh ->
            let i = Hashtbl.find index e.ident in
            List.filter_map
              (fun ident ->
                match Hashtbl.find_opt index ident with
                | Some j when j <> i -> Some (min i j, max i j)
                | _ -> None)
              neigh)
      entries
  in
  let edges = List.sort_uniq compare edges in
  let g = G.make ~labels ~edges in
  let centre =
    match Hashtbl.find_opt index ball.centre with
    | Some i -> i
    | None -> failwith "Gather.reconstruct: centre not in ball"
  in
  (g, ids, certs, centre)

type gather_state = state

let init_gather = init_state

let step_gather = gather_round

let completed_ball = the_ball

let collect ~radius g ~ids ?cert_list () =
  let result = Runner.run (ball_output_algo ~radius ~levels:1) g ~ids ?cert_list () in
  Array.init (G.card g) (fun u -> C.decode_bits ball_codec (G.label result.Runner.output u))
