module G = Lph_graph.Labeled_graph
module C = Lph_util.Codec

type entry = {
  ident : string;
  label : string;
  cert : string;
  adj : string list option;
  dist : int;
}

type ball = { centre : string; radius : int; entries : entry list }

(* Hand-written cursor codec for the flooding hot path; byte-identical
   to [pair (triple string string string) (pair (option (list string))
   int)] (pairs and triples are plain concatenation) but without the
   intermediate tuples. *)
let adj_codec = C.option (C.list C.string)

let entry_codec : entry C.t =
  C.custom
    ~enc:(fun buf e ->
      C.enc C.string buf e.ident;
      C.enc C.string buf e.label;
      C.enc C.string buf e.cert;
      C.enc adj_codec buf e.adj;
      C.enc C.int buf e.dist)
    ~dec:(fun s pos ->
      let ident, pos = C.dec C.string s pos in
      let label, pos = C.dec C.string s pos in
      let cert, pos = C.dec C.string s pos in
      let adj, pos = C.dec adj_codec s pos in
      let dist, pos = C.dec C.int s pos in
      ({ ident; label; cert; adj; dist }, pos))

let table_codec = C.list entry_codec

let ball_codec : ball C.t =
  C.map
    (fun ((centre, radius), entries) -> { centre; radius; entries })
    (fun b -> ((b.centre, b.radius), b.entries))
    (C.pair (C.pair C.string C.int) table_codec)

let rounds_needed radius = radius + 2

type state = {
  table : (string, entry) Hashtbl.t;
  (* incremental accounting for the full-table broadcast the paper's
     protocol ships each round: the number of entries at distance
     <= radius - 1 and the sum of their packed encoded lengths.
     Maintained by [merge], so broadcast costs are O(1) per round
     instead of re-serializing the whole table. *)
  mutable flood_count : int;
  mutable flood_len : int;
  mutable ball : ball option;
  mutable verdict : string option;
}

let self_entry (ctx : Local_algo.ctx) =
  {
    ident = ctx.Local_algo.ident;
    label = ctx.Local_algo.label;
    cert = ctx.Local_algo.cert_list;
    adj = None;
    dist = 0;
  }

(* packed encoded length of an entry, computed arithmetically from the
   codec layout (string = length prefix + bytes, option = one flag byte,
   list = count prefix + items) — called on every merge, so it must not
   serialize. The wire-equivalence tests cross-check it against the
   actual encoder via the mode-independent stats. *)
let slen s = C.int_length (String.length s) + String.length s

let entry_len e =
  slen e.ident + slen e.label + slen e.cert
  + (match e.adj with
    | None -> 1
    | Some l -> 1 + C.int_length (List.length l) + List.fold_left (fun acc s -> acc + slen s) 0 l)
  + C.int_length e.dist

(* Returns whether the table changed: a new entry, a shorter distance,
   or an adjacency list newly attached. Unchanged merges need no
   re-broadcast — every neighbour already holds the information. Keeps
   [flood_count]/[flood_len] in sync with the entries at distance
   <= radius - 1. *)
let merge st ~radius e =
  match Hashtbl.find_opt st.table e.ident with
  | None ->
      Hashtbl.replace st.table e.ident e;
      if e.dist <= radius - 1 then begin
        st.flood_count <- st.flood_count + 1;
        st.flood_len <- st.flood_len + entry_len e
      end;
      true
  | Some old ->
      let adj = match old.adj with Some _ -> old.adj | None -> e.adj in
      let dist = min old.dist e.dist in
      if dist = old.dist && (old.adj <> None || adj = None) then false
      else begin
        let updated = { old with adj; dist } in
        Hashtbl.replace st.table e.ident updated;
        let was_flooded = old.dist <= radius - 1 in
        if was_flooded then st.flood_len <- st.flood_len - entry_len old
        else if dist <= radius - 1 then st.flood_count <- st.flood_count + 1;
        if dist <= radius - 1 then st.flood_len <- st.flood_len + entry_len updated;
        true
      end

(* A broadcast is one shared wire delivered to every neighbour, so each
   wire would otherwise be decoded deg(sender) times across its
   receivers. Decoding is pure and entries are immutable, so the decoded
   table can be shared; the cache is per-domain (safe under the parallel
   runner) and reset once it grows past a small bound. *)
let decode_cache : (string, entry list) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let decode_table (m : Local_algo.msg) =
  if m.Local_algo.wire = "" then []
    (* [Local_algo.no_msg]: a stopped (or crash-faulted) neighbour.
       Silence carries no entries — it is not a decode error, and no
       non-empty table encodes to the empty wire. *)
  else
  let cache = Domain.DLS.get decode_cache in
  let wire = m.Local_algo.wire in
  match Hashtbl.find_opt cache wire with
  | Some entries -> entries
  | None ->
      let entries = Local_algo.decode_msg table_codec m in
      if Hashtbl.length cache > 512 then Hashtbl.reset cache;
      Hashtbl.replace cache wire entries;
      entries

let finish_ball ~radius (ctx : Local_algo.ctx) st =
  let entries =
    Hashtbl.fold (fun _ e acc -> if e.dist <= radius then e :: acc else acc) st.table []
  in
  let entries = List.sort (fun a b -> compare a.ident b.ident) entries in
  st.ball <- Some { centre = ctx.Local_algo.ident; radius; entries }

let init_state ctx =
  let table = Hashtbl.create 16 in
  let self = self_entry ctx in
  Hashtbl.replace table self.ident self;
  (* flood fields are set at round 1, when the radius is in scope *)
  { table; flood_count = 0; flood_len = 0; ball = None; verdict = None }

(* One round of flooding; returns the outbox and whether gathering is
   complete (in which case st.ball is set).

   The paper's protocol re-broadcasts the whole known table (entries at
   distance <= radius - 1) every round. Because first arrivals travel
   along shortest paths, re-broadcasts of unchanged entries never
   change any receiver's table: an entry at distance d is merged (with
   its correct distance) at round d + 1 and its adjacency list at round
   d + 2, in the full-flood and the delta-flood protocol alike — the
   two keep bit-identical tables at every round. So under the packed
   wire mode we ship only the entries that changed while processing
   this round's inbox, while charging every message at the bit-string
   length of the full table the paper's protocol broadcasts. Under the
   legacy Bits mode the wire is the seed's full-table broadcast
   itself. *)
let gather_round ~radius (ctx : Local_algo.ctx) round st ~inbox =
  let charge_msgs msgs =
    List.iter (fun (m : Local_algo.msg) -> ctx.Local_algo.charge (m.Local_algo.cost + 1)) msgs
  in
  charge_msgs inbox;
  let broadcast ~cost ~delta =
    (* [cost] is the bit-string length of the full-table broadcast,
       maintained incrementally (encoded length is order-independent).
       Only the legacy Bits wire re-serializes the full table. *)
    let wire =
      match C.wire_mode () with
      | C.Packed -> C.encode table_codec delta
      | C.Bits ->
          let full =
            Hashtbl.fold
              (fun _ e acc -> if e.dist <= radius - 1 then e :: acc else acc)
              st.table []
          in
          C.encode_bits table_codec (List.sort (fun a b -> compare a.ident b.ident) full)
    in
    let msg = { Local_algo.wire; cost } in
    let out = List.init ctx.Local_algo.degree (fun _ -> msg) in
    charge_msgs out;
    out
  in
  if round = 1 then begin
    (* the self-entry goes out unconditionally, whatever the radius:
       round 2 derives adjacency lists from it *)
    let self = self_entry ctx in
    if radius >= 1 then begin
      st.flood_count <- 1;
      st.flood_len <- entry_len self
    end;
    let cost = 8 * (C.int_length 1 + entry_len self) in
    let wire =
      match C.wire_mode () with
      | C.Packed -> C.encode table_codec [ self ]
      | C.Bits -> C.encode_bits table_codec [ self ]
    in
    let msg = { Local_algo.wire; cost } in
    let out = List.init ctx.Local_algo.degree (fun _ -> msg) in
    charge_msgs out;
    (out, false)
  end
  else begin
    let tables = List.map decode_table inbox in
    let fresh = ref [] in
    List.iter
      (fun entries ->
        List.iter
          (fun e ->
            if e.dist + 1 <= radius then
              if merge st ~radius { e with dist = e.dist + 1 } then fresh := e.ident :: !fresh)
          entries)
      tables;
    if round = 2 then begin
      (* the round-2 inbox consists of the neighbours' self-entries: they
         reveal our own adjacency list *)
      let adj =
        List.sort compare
          (List.concat_map (fun entries -> List.map (fun e -> e.ident) entries) tables)
      in
      let self = Hashtbl.find st.table ctx.Local_algo.ident in
      let updated = { self with adj = Some adj } in
      Hashtbl.replace st.table ctx.Local_algo.ident updated;
      if self.dist <= radius - 1 then
        st.flood_len <- st.flood_len - entry_len self + entry_len updated;
      fresh := ctx.Local_algo.ident :: !fresh
    end;
    if round >= rounds_needed radius then begin
      finish_ball ~radius ctx st;
      ([], true)
    end
    else begin
      let delta =
        List.filter_map
          (fun ident ->
            match Hashtbl.find_opt st.table ident with
            | Some e when e.dist <= radius - 1 -> Some e
            | _ -> None)
          (List.sort_uniq compare !fresh)
      in
      let cost = 8 * (C.int_length st.flood_count + st.flood_len) in
      (broadcast ~cost ~delta, false)
    end
  end

let the_ball st =
  match st.ball with
  | Some b -> b
  | None -> Lph_util.Error.protocol_error ~what:"Gather" "ball not completed"

let algo ~name ~radius ~levels ~decide =
  Local_algo.Packed
    {
      Local_algo.name;
      levels;
      radius = Some radius;
      init = init_state;
      round =
        (fun ctx round st ~inbox ->
          let out, finished = gather_round ~radius ctx round st ~inbox in
          if finished then st.verdict <- Some (if decide ctx (the_ball st) then "1" else "0");
          (st, out, finished));
      output = (fun st -> match st.verdict with Some v -> v | None -> "0");
    }

let map_algo ~name ~radius ~levels ~f =
  Local_algo.Packed
    {
      Local_algo.name;
      levels;
      radius = Some radius;
      init = init_state;
      round =
        (fun ctx round st ~inbox ->
          let out, finished = gather_round ~radius ctx round st ~inbox in
          if finished then st.verdict <- Some (f ctx (the_ball st));
          (st, out, finished));
      output = (fun st -> match st.verdict with Some v -> v | None -> "");
    }

let ball_output_algo ~radius ~levels =
  Local_algo.Packed
    {
      Local_algo.name = "gather-ball";
      levels;
      radius = Some radius;
      init = init_state;
      round =
        (fun ctx round st ~inbox ->
          let out, finished = gather_round ~radius ctx round st ~inbox in
          (st, out, finished));
      (* output labels are part of the graph model and must stay bit
         strings ([Labeled_graph] enforces it); only messages are
         transported in the packed wire format *)
      output = (fun st -> C.encode_bits ball_codec (the_ball st));
    }

let reconstruct ball =
  let entries = ball.entries in
  let index = Hashtbl.create 16 in
  List.iteri (fun i e -> Hashtbl.replace index e.ident i) entries;
  if Hashtbl.length index <> List.length entries then
    Lph_util.Error.protocol_error ~what:"Gather.reconstruct" "duplicate identifiers";
  let labels = Array.of_list (List.map (fun e -> e.label) entries) in
  let ids = Array.of_list (List.map (fun e -> e.ident) entries) in
  let certs = Array.of_list (List.map (fun e -> e.cert) entries) in
  let edges =
    List.concat_map
      (fun e ->
        match e.adj with
        | None -> []
        | Some neigh ->
            let i = Hashtbl.find index e.ident in
            List.filter_map
              (fun ident ->
                match Hashtbl.find_opt index ident with
                | Some j when j <> i -> Some (min i j, max i j)
                | _ -> None)
              neigh)
      entries
  in
  let edges = List.sort_uniq compare edges in
  let g = G.make ~labels ~edges in
  let centre =
    match Hashtbl.find_opt index ball.centre with
    | Some i -> i
    | None -> Lph_util.Error.protocol_error ~what:"Gather.reconstruct" "centre not in ball"
  in
  (g, ids, certs, centre)

type gather_state = state

let init_gather = init_state

let step_gather = gather_round

let completed_ball = the_ball

let collect ~radius ?faults g ~ids ?cert_list () =
  let result = Runner.run ?faults (ball_output_algo ~radius ~levels:1) g ~ids ?cert_list () in
  Array.init (G.card g) (fun u -> C.decode_bits ball_codec (G.label result.Runner.output u))
