module G = Lph_graph.Labeled_graph
module Parallel = Lph_util.Parallel
module Error = Lph_util.Error
module Fault_plan = Lph_faults.Fault_plan

type stats = {
  rounds : int;
  charges : int array array;
  input_sizes : int array array;
  message_bytes : int array array;
}

type result = { output : G.t; stats : stats }

type divergence = { algo : string; rounds : int; reason : string }

exception Diverged of divergence

let () =
  Printexc.register_printer (function
    | Diverged d ->
        Some (Printf.sprintf "Runner.Diverged(%s after %d rounds: %s)" d.algo d.rounds d.reason)
    | _ -> None)

type fault_report = {
  faults : Error.fault list;
  error : Error.t option;
  diverged : divergence option;
  partial : result option;
}

type degraded_report = {
  survivors : int;
  crashed : int list;
  deg_result : result;
  deg_faults : Error.fault list;
}

type outcome = Completed of result | Degraded of degraded_report | Faulted of fault_report

(* The ambient plan is read from LPH_FAULTS once at start-up; with no
   plan installed the fault hook below is a single [match] on [None]
   per injection point — the "provably zero overhead" default. *)
let ambient_plan = ref (Fault_plan.of_env ())

let fault_plan () = !ambient_plan

let set_fault_plan p = ambient_plan := p

type 'st node_exec = {
  mutable state : 'st;
  mutable finished : bool;
  ctx : Local_algo.ctx;
  neighbours : int array; (* sorted by identifier *)
  charge_cell : int ref;
}

(* The per-round compute phase runs on the domain team only once the
   instance is big enough to amortize the barrier; below the threshold
   (or under LPH_JOBS=1) execution is plain sequential iteration. *)
let parallel_threshold () =
  match Sys.getenv_opt "LPH_PAR_MIN" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> v
      | _ -> invalid_arg "Runner: LPH_PAR_MIN must be a positive integer")
  | None -> 32

let run_core ?(round_limit = 1000) ~plan ~record (Local_algo.Packed algo) g ~ids ?cert_list () =
  let n = G.card g in
  let ids =
    match plan with
    | None -> ids
    | Some p ->
        let ids', f = Fault_plan.tamper_ids p ids in
        Option.iter record f;
        ids'
  in
  let cert_list = match cert_list with Some c -> c | None -> Array.make n "" in
  let cert_list =
    match plan with
    | None -> cert_list
    | Some p ->
        Array.mapi
          (fun u c ->
            let c', f = Fault_plan.tamper_cert p ~node:u c in
            Option.iter record f;
            c')
          cert_list
  in
  let crash_at =
    match plan with
    | None -> [||]
    | Some p -> Array.init n (fun u -> Fault_plan.crash_round p ~node:u)
  in
  let sorted_neighbours u =
    let ns =
      List.sort (fun a b -> Lph_graph.Identifiers.compare_id ids.(a) ids.(b)) (G.neighbours g u)
    in
    let rec check = function
      | a :: (b :: _ as rest) ->
          if ids.(a) = ids.(b) then
            Error.protocol_error ~what:"Runner.run" ~node:u
              "neighbours of node %d share identifier %s" u ids.(a);
          check rest
      | _ -> ()
    in
    check ns;
    Array.of_list ns
  in
  let nodes =
    Array.init n (fun u ->
        let charge_cell = ref 0 in
        let ctx =
          {
            Local_algo.label = G.label g u;
            ident = ids.(u);
            certs = Lph_graph.Certificates.split_list ~levels:algo.levels cert_list.(u);
            cert_list = cert_list.(u);
            degree = G.degree g u;
            charge = (fun k -> charge_cell := !charge_cell + max 0 k);
          }
        in
        { state = algo.init ctx; finished = false; ctx; neighbours = sorted_neighbours u; charge_cell })
  in
  let pending = Array.init n (fun u -> Array.make (Array.length nodes.(u).neighbours) Local_algo.no_msg) in
  let slot_of = Array.init n (fun u ->
      (* slot_of.(u).(i): position of u in the neighbour ordering of its
         i-th neighbour *)
      Array.map
        (fun v ->
          let s = ref (-1) in
          Array.iteri (fun j w -> if w = u then s := j) nodes.(v).neighbours;
          assert (!s >= 0);
          !s)
        nodes.(u).neighbours)
  in
  let charges_log = ref [] and input_log = ref [] and msg_log = ref [] in
  let round = ref 0 in
  let run_rounds iter =
    while not (Array.for_all (fun ne -> ne.finished) nodes) do
      incr round;
      if !round > round_limit then
        raise (Diverged { algo = algo.name; rounds = round_limit; reason = "round limit exceeded" });
      let charges_r = Array.make n 0 and input_r = Array.make n 0 and msg_r = Array.make n 0 in
      let outgoing = Array.make n [||] in
      (* crash-stop scheduled by the fault plan: the node goes silent
         before this round's compute phase and never finishes on its
         own. Decided (and recorded) here, outside [iter] — with a plan
         active execution is sequential, so [record] needs no lock. *)
      (match plan with
      | None -> ()
      | Some p ->
          for u = 0 to n - 1 do
            match crash_at.(u) with
            | Some r when r <= !round && not nodes.(u).finished ->
                nodes.(u).finished <- true;
                record (Fault_plan.crash_fault p ~round:!round ~node:u)
            | _ -> ()
          done);
      (* compute: embarrassingly parallel — every write below lands in
         node [u]'s own cells *)
      iter n (fun u ->
          let ne = nodes.(u) in
          let d = Array.length ne.neighbours in
          if ne.finished then outgoing.(u) <- Array.make d Local_algo.no_msg
          else begin
            let inbox = Array.to_list pending.(u) in
            input_r.(u) <-
              List.fold_left (fun acc (m : Local_algo.msg) -> acc + m.Local_algo.cost + 1) 0 inbox
              + String.length ne.ctx.Local_algo.label
              + String.length ne.ctx.Local_algo.ident
              + (if !round = 1 then String.length cert_list.(u) else 0);
            (* round 1 keeps the charges accumulated by [init] *)
            if !round > 1 then ne.charge_cell := 0;
            let state, outbox, finished = algo.round ne.ctx !round ne.state ~inbox in
            ne.state <- state;
            ne.finished <- finished;
            charges_r.(u) <- !(ne.charge_cell);
            let k = List.length outbox in
            if k > d then
              Error.protocol_error ~what:"Runner.run" ~round:!round ~node:u
                "algorithm %s emits %d messages at node %d of degree %d" algo.name k u d;
            let out = Array.make d Local_algo.no_msg in
            List.iteri (fun i msg -> out.(i) <- msg) outbox;
            Array.iter
              (fun (m : Local_algo.msg) -> msg_r.(u) <- msg_r.(u) + m.Local_algo.cost)
              out;
            outgoing.(u) <- out
          end);
      (* over-budget charges injected after the compute phase, so the
         inflation is visible in this round's stats row *)
      (match plan with
      | None -> ()
      | Some p ->
          for u = 0 to n - 1 do
            match Fault_plan.overcharge p ~round:!round ~node:u with
            | Some (k, f) ->
                record f;
                charges_r.(u) <- charges_r.(u) + k
            | None -> ()
          done);
      (* deliver — the transport hook tampers each non-empty wire on its
         way into the receiver's slot. The hook is hoisted: a plan that
         cannot fire any wire fault delivers on the plan-free path, so
         the per-message cost of an installed-but-inert plan is one
         pattern match, same as no plan at all *)
      let wire_plan =
        match plan with Some p when Fault_plan.wire_active p -> Some p | _ -> None
      in
      Array.iteri
        (fun u ne ->
          Array.iteri
            (fun i v ->
              let m = outgoing.(u).(i) in
              let m =
                match wire_plan with
                | None -> m
                | Some p -> (
                    match
                      Fault_plan.tamper_wire ~slot:i ~degree:(Array.length ne.neighbours) p
                        ~round:!round ~src:u ~dst:v m.Local_algo.wire
                    with
                    | Some _, None -> m
                    | Some w, Some f ->
                        record f;
                        { Local_algo.wire = w; cost = Lph_util.Codec.wire_bits w }
                    | None, Some f ->
                        record f;
                        Local_algo.no_msg
                    | None, None -> assert false)
              in
              pending.(v).(slot_of.(u).(i)) <- m)
            ne.neighbours)
        nodes;
      charges_log := charges_r :: !charges_log;
      input_log := input_r :: !input_log;
      msg_log := msg_r :: !msg_log
    done
  in
  let jobs = min (Parallel.jobs ()) n in
  (* with a fault plan active execution is forced sequential: fault
     recording stays lock-free and the injected schedule is the one the
     seed describes, independent of LPH_JOBS *)
  if plan = None && jobs > 1 && n >= parallel_threshold () then
    Parallel.with_team ~jobs (fun team -> run_rounds (Parallel.team_iter team))
  else
    run_rounds (fun n f ->
        for u = 0 to n - 1 do
          f u
        done);
  let output = G.with_labels g (Array.map (fun ne -> algo.output ne.state) nodes) in
  let rev l = Array.of_list (List.rev l) in
  {
    output;
    stats =
      {
        rounds = !round;
        charges = rev !charges_log;
        input_sizes = rev !input_log;
        message_bytes = rev !msg_log;
      };
  }

let ignore_fault (_ : Error.fault) = ()

let run ?round_limit ?faults algo g ~ids ?cert_list () =
  let plan = match faults with Some _ as p -> p | None -> !ambient_plan in
  run_core ?round_limit ~plan ~record:ignore_fault algo g ~ids ?cert_list ()

(* Quorum mode: a faulted run whose only fired faults are crash-stops
   of at most [quorum] nodes, and whose surviving nodes still computed
   exactly the labels of the fault-free twin run, degrades to
   [Degraded] — the survivors' verdict is sound. Costs one extra
   fault-free run, paid only when the crash pattern qualifies. *)
let degrade ?round_limit ~quorum algo g ~ids ?cert_list faults result =
  let crashed =
    List.sort_uniq compare
      (List.filter_map
         (fun (f : Error.fault) -> if f.Error.fault_kind = "crash" then Some f.Error.node else None)
         faults)
  in
  if crashed = [] || List.length crashed > quorum then None
  else if List.exists (fun (f : Error.fault) -> f.Error.fault_kind <> "crash") faults then None
  else
    let clean = run_core ?round_limit ~plan:None ~record:ignore_fault algo g ~ids ?cert_list () in
    let n = G.card result.output in
    let survives u = not (List.mem u crashed) in
    let agree = ref true in
    for u = 0 to n - 1 do
      if survives u && G.label result.output u <> G.label clean.output u then agree := false
    done;
    if !agree then
      Some
        {
          survivors = n - List.length crashed;
          crashed;
          deg_result = result;
          deg_faults = faults;
        }
    else None

let run_outcome ?round_limit ?faults ?quorum algo g ~ids ?cert_list () =
  let plan = match faults with Some _ as p -> p | None -> !ambient_plan in
  match plan with
  | None -> Completed (run_core ?round_limit ~plan:None ~record:ignore_fault algo g ~ids ?cert_list ())
  | Some _ -> (
      let log = ref [] in
      let record f = log := f :: !log in
      match run_core ?round_limit ~plan ~record algo g ~ids ?cert_list () with
      | result -> (
          if !log = [] then Completed result
          else
            let faults = List.rev !log in
            match quorum with
            | Some q when q > 0 -> (
                match degrade ?round_limit ~quorum:q algo g ~ids ?cert_list faults result with
                | Some d -> Degraded d
                | None -> Faulted { faults; error = None; diverged = None; partial = Some result })
            | _ -> Faulted { faults; error = None; diverged = None; partial = Some result })
      | exception Error.Error e ->
          Faulted { faults = List.rev !log; error = Some e; diverged = None; partial = None }
      | exception Diverged d ->
          Faulted { faults = List.rev !log; error = None; diverged = Some d; partial = None })

let accepts result = G.all_labels_one result.output

let verdict result u = G.label result.output u

let decides algo g ~ids ?cert_list () = accepts (run algo g ~ids ?cert_list ())
