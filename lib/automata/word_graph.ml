module G = Lph_graph.Labeled_graph
module LA = Lph_machine.Local_algo
module Gather = Lph_machine.Gather
module C = Lph_util.Codec

let letter_of_label = function "0" -> Some 0 | "1" -> Some 1 | _ -> None

let path_word g =
  let n = G.card g in
  let letters = List.map (fun u -> letter_of_label (G.label g u)) (G.nodes g) in
  if List.exists Option.is_none letters then None
  else begin
    let letter u = Option.get (letter_of_label (G.label g u)) in
    if n = 1 then Some [ letter 0 ]
    else begin
      let endpoints = List.filter (fun u -> G.degree g u = 1) (G.nodes g) in
      let interior_ok = List.for_all (fun u -> G.degree g u <= 2) (G.nodes g) in
      match (endpoints, interior_ok) with
      | [ e1; _ ], true ->
          (* connected + max degree 2 + two endpoints = a path *)
          let rec walk prev u acc =
            let acc = letter u :: acc in
            match List.filter (fun v -> Some v <> prev) (G.neighbours g u) with
            | [ v ] -> walk (Some u) v acc
            | [] -> List.rev acc
            | _ -> List.rev acc
          in
          let w = walk None e1 [] in
          Some (min w (List.rev w))
      | _ -> None
    end
  end

let property_of_language lang g =
  match path_word g with Some w -> lang w || lang (List.rev w) | None -> false

(* ------------------------------------------------------------------ *)

let cert_codec : (string option * int) C.t = C.pair (C.option C.string) C.int

let decode_cert cert = try Some (C.decode_bits cert_codec cert) with Lph_util.Error.Error _ -> None

let encode_cert pred state = C.encode_bits cert_codec (pred, state)

let dfa_verifier (d : Dfa.t) =
  Gather.algo ~name:"dfa-path-verifier" ~radius:1 ~levels:1 ~decide:(fun ctx ball ->
      ctx.LA.charge (List.length ball.Gather.entries * d.Dfa.states);
      let entries = ball.Gather.entries in
      let neighbours = List.filter (fun e -> e.Gather.dist = 1) entries in
      let self = List.find (fun e -> e.Gather.dist = 0) entries in
      let cert_of e = decode_cert (List.hd (Lph_util.Bitstring.split_hash e.Gather.cert)) in
      match (letter_of_label ctx.LA.label, cert_of self) with
      | None, _ | _, None -> false
      | Some letter, Some (pred, state) ->
          let ok_shape = ctx.LA.degree <= 2 && state >= 0 && state < d.Dfa.states in
          (* how many neighbours name me as their predecessor *)
          let succ_count =
            List.length
              (List.filter
                 (fun e ->
                   match cert_of e with
                   | Some (Some p, _) -> p = ctx.LA.ident
                   | _ -> false)
                 neighbours)
          in
          let chain_ok =
            match pred with
            | None ->
                (* the start of the word: an endpoint in the initial state,
                   feeding every remaining neighbour *)
                ctx.LA.degree <= 1 && state = d.Dfa.start && succ_count = ctx.LA.degree
            | Some p -> begin
                match List.find_opt (fun e -> e.Gather.ident = p) neighbours with
                | None -> false
                | Some pe -> begin
                    match (cert_of pe, letter_of_label pe.Gather.label) with
                    | Some (_, ps), Some pa ->
                        Dfa.step d ps pa = state && succ_count = ctx.LA.degree - 1
                    | _ -> false
                  end
              end
          in
          let end_ok =
            (* a node with no successor is the last letter: its post-state
               must accept *)
            succ_count > 0 || d.Dfa.accept.(Dfa.step d state letter)
          in
          ok_shape && chain_ok && end_ok)

let orient_states d order letters =
  let rec go state = function
    | [] -> Some []
    | a :: rest -> begin
        match go (Dfa.step d state a) rest with
        | Some states -> Some (state :: states)
        | None -> None
      end
  in
  match go d.Dfa.start letters with
  | Some states when Dfa.accepts d letters -> Some (List.combine order states)
  | _ -> None

let dfa_certificates d g ~ids =
  let n = G.card g in
  let letter u = letter_of_label (G.label g u) in
  if List.exists (fun u -> letter u = None) (G.nodes g) then None
  else begin
    let orders =
      if n = 1 then [ [ 0 ] ]
      else begin
        let endpoints = List.filter (fun u -> G.degree g u = 1) (G.nodes g) in
        let interior_ok = List.for_all (fun u -> G.degree g u <= 2) (G.nodes g) in
        if List.length endpoints <> 2 || not interior_ok then []
        else
          List.map
            (fun e ->
              let rec walk prev u acc =
                let acc = u :: acc in
                match List.filter (fun v -> Some v <> prev) (G.neighbours g u) with
                | [ v ] -> walk (Some u) v acc
                | _ -> List.rev acc
              in
              walk None e [])
            endpoints
      end
    in
    let try_order order =
      let letters = List.map (fun u -> Option.get (letter u)) order in
      match orient_states d order letters with
      | None -> None
      | Some pairs ->
          let certs = Array.make n "" in
          List.iteri
            (fun i (u, state) ->
              let pred = if i = 0 then None else Some ids.(List.nth order (i - 1)) in
              certs.(u) <- encode_cert pred state)
            pairs;
          Some certs
    in
    List.find_map try_order orders
  end

let cert_universe (d : Dfa.t) g ~ids u =
  let preds = None :: List.map (fun v -> Some ids.(v)) (G.neighbours g u) in
  List.concat_map
    (fun pred -> List.init d.Dfa.states (fun s -> encode_cert pred s))
    preds
