module G = Labeled_graph

(* ------------------------------------------------------------------ *)
(* Per-graph memoisation.

   Graphs are immutable after [Labeled_graph.make], so BFS results can
   be cached for the lifetime of the graph. The cache is keyed on the
   graph's uid through a weak (ephemeron) table: entries die with their
   graph, so sweeps that generate thousands of short-lived instances do
   not leak. All table operations are guarded by a single mutex so the
   Domain-parallel sweeps in the hierarchy layer can share the cache;
   the BFS itself runs outside the lock (a lost race recomputes an
   identical array, which is harmless). *)

type cache = {
  dist_rows : int array option array; (* per-source BFS distance rows *)
  balls : (int * int, int list) Hashtbl.t; (* (radius, source) -> ball *)
}

module Graph_key = struct
  type t = G.t

  let equal = ( == )
  let hash = G.uid
end

module Cache_table = Ephemeron.K1.Make (Graph_key)

let caches : cache Cache_table.t = Cache_table.create 64
let lock = Mutex.create ()

let cache_of g =
  Mutex.protect lock (fun () ->
      match Cache_table.find_opt caches g with
      | Some c -> c
      | None ->
          let c = { dist_rows = Array.make (G.card g) None; balls = Hashtbl.create 16 } in
          Cache_table.replace caches g c;
          c)

let bfs g src ~stop_at =
  let n = G.card g in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  let finished = ref (stop_at = Some src) in
  while (not !finished) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          if stop_at = Some v then finished := true;
          Queue.add v queue
        end)
      (G.neighbours g u)
  done;
  dist

let distances g src =
  let cache = cache_of g in
  match cache.dist_rows.(src) with
  | Some dist -> dist
  | None ->
      let dist = bfs g src ~stop_at:None in
      (* races write identical rows; an option-pointer store is atomic *)
      cache.dist_rows.(src) <- Some dist;
      dist

let distance g u v =
  let cache = cache_of g in
  match cache.dist_rows.(u) with
  | Some dist -> dist.(v)
  | None -> (
      match cache.dist_rows.(v) with
      | Some dist -> dist.(u)
      | None ->
          (* an early-exit BFS is not a full row, so it is not cached *)
          (bfs g u ~stop_at:(Some v)).(v))

let ball g ~radius u =
  let cache = cache_of g in
  let key = (radius, u) in
  match Mutex.protect lock (fun () -> Hashtbl.find_opt cache.balls key) with
  | Some b -> b
  | None ->
      let dist = distances g u in
      let b = List.filter (fun v -> dist.(v) >= 0 && dist.(v) <= radius) (G.nodes g) in
      Mutex.protect lock (fun () -> Hashtbl.replace cache.balls key b);
      b

(* Dirty-set computation for incremental re-verification: a radius-r
   verifier at [u] must be re-run after a certificate mutation iff
   ball(u, r) meets the changed nodes — by symmetry of the distance,
   iff [u] lies in some changed node's r-ball. *)
let touched g ~radius changed =
  let mark = Array.make (G.card g) false in
  List.iter (fun v -> List.iter (fun u -> mark.(u) <- true) (ball g ~radius v)) changed;
  List.filter (fun u -> mark.(u)) (G.nodes g)

let eccentricity g u = Array.fold_left max 0 (distances g u)

let diameter g =
  List.fold_left (fun acc u -> max acc (eccentricity g u)) 0 (G.nodes g)

type induced = {
  subgraph : G.t;
  to_sub : int -> int option;
  of_sub : int -> int;
}

let induced g nodes =
  let nodes = List.sort_uniq compare nodes in
  let index = Hashtbl.create 16 in
  List.iteri (fun i u -> Hashtbl.replace index u i) nodes;
  let arr = Array.of_list nodes in
  let labels = Array.map (G.label g) arr in
  let edges =
    List.filter_map
      (fun (u, v) ->
        match (Hashtbl.find_opt index u, Hashtbl.find_opt index v) with
        | Some i, Some j -> Some (i, j)
        | _ -> None)
      (G.edges g)
  in
  let subgraph = G.make ~labels ~edges in
  { subgraph; to_sub = Hashtbl.find_opt index; of_sub = (fun i -> arr.(i)) }

let r_neighbourhood g ~radius u = induced g (ball g ~radius u)

let ball_information g ~ids ~radius u =
  List.fold_left
    (fun acc v -> acc + 1 + String.length (G.label g v) + String.length ids.(v))
    0 (ball g ~radius u)
