module G = Labeled_graph

(* ------------------------------------------------------------------ *)
(* Per-graph memoisation.

   Graphs are immutable after construction, so BFS results can be
   cached for the lifetime of the graph. The cache is keyed on the
   graph's uid through a weak (ephemeron) table: entries die with their
   graph, so sweeps that generate thousands of short-lived instances do
   not leak.

   Two regimes, split by [full_row_threshold]:

   - small graphs keep the original design: one full BFS distance row
     per source, cached in a flat option array (O(n^2) ints in the
     worst case — fine below the threshold, where repeated
     whole-row queries dominate);
   - large graphs never materialise per-source rows (an O(n) array per
     source would be O(n^2) memory and O(n) work per ball). Balls come
     from truncated BFS that explores only the r-ball, and the results
     are cached in shard tables keyed by the source's graph segment
     (source index range), each shard behind its own mutex so parallel
     domains touching different regions of the graph never contend. A
     small bounded row memo serves the few whole-row callers (BFS
     orderings, eccentricity) without accumulating rows.

   Table lookups are guarded by locks; the BFS itself runs outside (a
   lost race recomputes an identical result, which is harmless). *)

let default_full_row_threshold = 8192

let full_row_threshold =
  match Sys.getenv_opt "LPH_FULL_ROW_MAX" with
  | None -> default_full_row_threshold
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 0 -> v
      | _ -> invalid_arg "Neighborhood: LPH_FULL_ROW_MAX must be a non-negative integer")

let shard_count = 16

(* ball_distances arrays, (radius, source) -> sorted (node, dist) *)
type shard = { lock : Mutex.t; balls : (int * int, (int * int) array) Hashtbl.t }

type cache = {
  dist_rows : int array option array option;
      (* [Some rows] iff card <= full_row_threshold: per-source BFS rows *)
  row_memo : (int, int array) Hashtbl.t;
      (* large graphs: a few hot whole rows (bounded), e.g. the BFS
         ordering root of the pruned game engine *)
  row_lock : Mutex.t;
  shards : shard array;
}

module Graph_key = struct
  type t = G.t

  let equal = ( == )
  let hash = G.uid
end

module Cache_table = Ephemeron.K1.Make (Graph_key)

let caches : cache Cache_table.t = Cache_table.create 64
let lock = Mutex.create ()

let cache_of g =
  Mutex.protect lock (fun () ->
      match Cache_table.find_opt caches g with
      | Some c -> c
      | None ->
          let n = G.card g in
          let c =
            {
              dist_rows = (if n <= full_row_threshold then Some (Array.make n None) else None);
              row_memo = Hashtbl.create 4;
              row_lock = Mutex.create ();
              shards =
                Array.init shard_count (fun _ ->
                    { lock = Mutex.create (); balls = Hashtbl.create 16 });
            }
          in
          Cache_table.replace caches g c;
          c)

(* The table is weakly keyed, so dropping every reference to a graph
   already reclaims its memos at the next GC; eager eviction is for
   cache-bounded servers that want the space back deterministically. *)
let evict g = Mutex.protect lock (fun () -> Cache_table.remove caches g)

(* shards are keyed by graph segment: shard s owns the sources with
   index in [s*n/16, (s+1)*n/16) *)
let shard_of c g u =
  let n = G.card g in
  c.shards.(min (shard_count - 1) (u * shard_count / n))

(* ------------------------------------------------------------------ *)
(* BFS primitives. *)

(* full distance row, flat int-array queue (no per-node allocation) *)
let bfs_row g src =
  let n = G.card g in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  dist.(src) <- 0;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(u) in
    G.neighbours_iter g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- du + 1;
          queue.(!tail) <- v;
          incr tail
        end)
  done;
  dist

(* early-exit BFS for single-pair distances on large graphs: visited
   set on a hash table, so the cost is O(explored), not O(n) setup *)
let bfs_pair g src dst =
  if src = dst then 0
  else begin
    let dist = Hashtbl.create 64 in
    Hashtbl.replace dist src 0;
    let queue = Queue.create () in
    Queue.add src queue;
    let answer = ref (-1) in
    while !answer < 0 && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let du = Hashtbl.find dist u in
      G.neighbours_iter g u (fun v ->
          if !answer < 0 && not (Hashtbl.mem dist v) then begin
            Hashtbl.replace dist v (du + 1);
            if v = dst then answer := du + 1 else Queue.add v queue
          end)
    done;
    !answer
  end

(* truncated BFS: explores the r-ball only — O(sum of ball degrees)
   whatever the size of the ambient graph. Returns (node, dist) sorted
   by node index. *)
let ball_bfs g ~radius src =
  let dist = Hashtbl.create 32 in
  Hashtbl.replace dist src 0;
  let queue = Queue.create () in
  Queue.add src queue;
  let acc = ref [ (src, 0) ] and count = ref 1 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = Hashtbl.find dist u in
    if du < radius then
      G.neighbours_iter g u (fun v ->
          if not (Hashtbl.mem dist v) then begin
            Hashtbl.replace dist v (du + 1);
            acc := (v, du + 1) :: !acc;
            incr count;
            Queue.add v queue
          end)
  done;
  let arr = Array.make !count (0, 0) in
  List.iteri (fun i nd -> arr.(i) <- nd) !acc;
  Array.sort (fun (a, _) (b, _) -> compare (a : int) b) arr;
  arr

(* ------------------------------------------------------------------ *)
(* Distances. *)

let row_memo_bound = 8

let distances g src =
  let cache = cache_of g in
  match cache.dist_rows with
  | Some rows -> (
      match rows.(src) with
      | Some dist -> dist
      | None ->
          let dist = bfs_row g src in
          (* races write identical rows; an option-pointer store is atomic *)
          rows.(src) <- Some dist;
          dist)
  | None -> (
      match Mutex.protect cache.row_lock (fun () -> Hashtbl.find_opt cache.row_memo src) with
      | Some dist -> dist
      | None ->
          let dist = bfs_row g src in
          Mutex.protect cache.row_lock (fun () ->
              if Hashtbl.length cache.row_memo >= row_memo_bound then
                Hashtbl.reset cache.row_memo;
              Hashtbl.replace cache.row_memo src dist);
          dist)

let cached_row cache src =
  match cache.dist_rows with
  | Some rows -> rows.(src)
  | None -> Mutex.protect cache.row_lock (fun () -> Hashtbl.find_opt cache.row_memo src)

let distance g u v =
  let cache = cache_of g in
  match cached_row cache u with
  | Some dist -> dist.(v)
  | None -> (
      match cached_row cache v with
      | Some dist -> dist.(u)
      | None ->
          if G.card g <= full_row_threshold then (distances g u).(v)
          else (* an early-exit BFS is not a full row, so it is not cached *)
            bfs_pair g u v)

(* ------------------------------------------------------------------ *)
(* Balls. *)

let ball_array g ~radius u =
  let cache = cache_of g in
  let shard = shard_of cache g u in
  let key = (radius, u) in
  match Mutex.protect shard.lock (fun () -> Hashtbl.find_opt shard.balls key) with
  | Some b -> b
  | None ->
      let b = ball_bfs g ~radius u in
      Mutex.protect shard.lock (fun () -> Hashtbl.replace shard.balls key b);
      b

let ball g ~radius u = List.map fst (Array.to_list (ball_array g ~radius u))

let ball_distances g ~radius u = Array.to_list (ball_array g ~radius u)

(* Dirty-set computation for incremental re-verification: a radius-r
   verifier at [u] must be re-run after a certificate mutation iff
   ball(u, r) meets the changed nodes — by symmetry of the distance,
   iff [u] lies in some changed node's r-ball. The union is accumulated
   directly (a hash set over the changed nodes' balls), so the cost is
   O(sum of |ball|) — never a full O(n) sweep of the graph. *)
let touched g ~radius changed =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun v ->
      Array.iter (fun (u, _) -> Hashtbl.replace seen u ()) (ball_array g ~radius v))
    changed;
  List.sort compare (Hashtbl.fold (fun u () acc -> u :: acc) seen [])

let eccentricity g u = Array.fold_left max 0 (distances g u)

let diameter g = G.fold_nodes g ~init:0 ~f:(fun acc u -> max acc (eccentricity g u))

type induced = {
  subgraph : G.t;
  to_sub : int -> int option;
  of_sub : int -> int;
}

(* Induced subgraphs are assembled from ball-local adjacency: each
   member's CSR row is scanned once and filtered against the member
   index, so the cost is O(sum of member degrees) — the global edge
   list is never consulted. *)
let induced g nodes =
  let nodes = List.sort_uniq compare nodes in
  let arr = Array.of_list nodes in
  let index = Hashtbl.create (Array.length arr) in
  Array.iteri (fun i u -> Hashtbl.replace index u i) arr;
  let labels = Array.map (G.label g) arr in
  let edges = ref [] and count = ref 0 in
  Array.iteri
    (fun i u ->
      G.neighbours_iter g u (fun v ->
          if v > u then
            match Hashtbl.find_opt index v with
            | Some j ->
                edges := (i, j) :: !edges;
                incr count
            | None -> ()))
    arr;
  let packed = Array.make !count (0, 0) in
  List.iteri (fun k e -> packed.(k) <- e) !edges;
  let subgraph = G.of_edge_array ~labels ~edges:packed in
  { subgraph; to_sub = Hashtbl.find_opt index; of_sub = (fun i -> arr.(i)) }

let r_neighbourhood g ~radius u = induced g (ball g ~radius u)

let ball_information g ~ids ~radius u =
  Array.fold_left
    (fun acc (v, _) -> acc + 1 + String.length (G.label g v) + String.length ids.(v))
    0 (ball_array g ~radius u)
