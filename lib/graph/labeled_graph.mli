(** Labelled graphs as defined in Section 3: finite, simple, undirected,
    connected, with a labelling function assigning a bit string to each
    node. Nodes are integers [0 .. card - 1]. *)

type t

exception Invalid of string
(** Raised by {!make} when the input is not a valid labelled graph
    (disconnected, self-loop, out-of-range node, non-bit label...). *)

val make : labels:string array -> edges:(int * int) list -> t
(** [make ~labels ~edges] builds the graph on [Array.length labels]
    nodes. Edges are unordered; duplicates and reversed duplicates are
    rejected. Requires at least one node, connectivity, no self-loops,
    and every label to be a bit string. *)

val singleton : string -> t
(** The single-node graph carrying the given label: the paper's
    representation of a string as a graph (the class NODE). *)

val uid : t -> int
(** A session-unique identity assigned by {!make}. Graphs are immutable
    after construction, so the uid is a sound key for memo tables
    (distances, balls, certificate-length bounds). Structurally equal
    graphs built by separate [make] calls have distinct uids. *)

val card : t -> int
val nodes : t -> int list
val edges : t -> (int * int) list
(** Each undirected edge reported once, as [(u, v)] with [u < v]. *)

val num_edges : t -> int
val has_edge : t -> int -> int -> bool
val neighbours : t -> int -> int list
(** Sorted by node index. *)

val degree : t -> int -> int
val label : t -> int -> string
val labels : t -> string array
(** A fresh copy of the labelling. *)

val with_labels : t -> string array -> t
(** Same topology, new labelling (checked). *)

val map_labels : (int -> string -> string) -> t -> t

val is_node_graph : t -> bool
(** Membership in NODE: exactly one node. *)

val all_labels_one : t -> bool
(** The property ALL-SELECTED: every node labelled with the string "1". *)

val max_degree : t -> int
val equal : t -> t -> bool
(** Same node set, edges and labels (not isomorphism). *)

val pp : Format.formatter -> t -> unit

val union_disjoint : t -> t -> bridge:(int * int) list -> t
(** [union_disjoint g h ~bridge] places [h] after [g] (nodes of [h]
    shifted by [card g]) and adds the [bridge] edges, given as pairs
    [(u_in_g, v_in_h)] with original indices. The result must be
    connected ([bridge] must be non-empty). *)
