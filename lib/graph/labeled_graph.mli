(** Labelled graphs as defined in Section 3: finite, simple, undirected,
    connected, with a labelling function assigning a bit string to each
    node. Nodes are integers [0 .. card - 1].

    The adjacency is stored in CSR (compressed sparse row) form — packed
    int arrays of row offsets and sorted targets — so [degree] and
    [num_edges] are O(1), [has_edge] is a binary search,
    [neighbours_iter]/[fold_neighbours] scan a row without allocating,
    and instances scale to 10^5–10^6 nodes. The canonical edge list is
    derived lazily; hot paths should prefer {!iter_edges}. *)

type t

exception Invalid of string
(** Raised by {!make} when the input is not a valid labelled graph
    (disconnected, self-loop, out-of-range node, non-bit label...). *)

val make : labels:string array -> edges:(int * int) list -> t
(** [make ~labels ~edges] builds the graph on [Array.length labels]
    nodes. Edges are unordered; duplicates and reversed duplicates are
    rejected. Requires at least one node, connectivity, no self-loops,
    and every label to be a bit string. *)

val of_edge_array : labels:string array -> edges:(int * int) array -> t
(** Same contract as {!make} on a packed edge array: the construction
    path for generators at 10^5+ nodes (no intermediate list). The
    array is not retained. *)

val singleton : string -> t
(** The single-node graph carrying the given label: the paper's
    representation of a string as a graph (the class NODE). *)

val uid : t -> int
(** A session-unique identity assigned per construction. Graphs are
    immutable after construction, so the uid is a sound key for memo
    tables (distances, balls, certificate-length bounds). Structurally
    equal graphs built by separate [make] calls have distinct uids. *)

val card : t -> int
val nodes : t -> int list
(** [0 .. card - 1] as a list; O(n) allocation — iterate with
    {!iter_nodes}/{!fold_nodes} on large instances. *)

val iter_nodes : t -> (int -> unit) -> unit
val fold_nodes : t -> init:'a -> f:('a -> int -> 'a) -> 'a

val edges : t -> (int * int) list
(** Each undirected edge reported once, as [(u, v)] with [u < v],
    sorted. Derived lazily from the CSR rows and cached on first use. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** [iter_edges g f] calls [f u v] once per undirected edge ([u < v],
    ascending), straight off the packed rows — no list allocation. *)

val num_edges : t -> int
val has_edge : t -> int -> int -> bool
(** Binary search in the sorted CSR row: O(log deg). *)

val neighbours : t -> int -> int list
(** Sorted by node index. Allocates a fresh list; hot paths should use
    {!neighbours_iter} or {!fold_neighbours}. *)

val neighbours_iter : t -> int -> (int -> unit) -> unit
(** Apply a function to each neighbour in ascending order, allocation
    free. *)

val fold_neighbours : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val degree : t -> int -> int
(** O(1): the CSR row length. *)

val label : t -> int -> string
val labels : t -> string array
(** A fresh copy of the labelling. *)

val with_labels : t -> string array -> t
(** Same topology, new labelling (checked). The packed adjacency is
    shared with the original graph — O(n), never O(m log m). *)

val map_labels : (int -> string -> string) -> t -> t

val is_node_graph : t -> bool
(** Membership in NODE: exactly one node. *)

val all_labels_one : t -> bool
(** The property ALL-SELECTED: every node labelled with the string "1". *)

val max_degree : t -> int
val equal : t -> t -> bool
(** Same node set, edges and labels (not isomorphism). *)

val pp : Format.formatter -> t -> unit

val union_disjoint : t -> t -> bridge:(int * int) list -> t
(** [union_disjoint g h ~bridge] places [h] after [g] (nodes of [h]
    shifted by [card g]) and adds the [bridge] edges, given as pairs
    [(u_in_g, v_in_h)] with original indices. The result must be
    connected ([bridge] must be non-empty). *)
