module G = Labeled_graph

type t = string array

type bound = { radius : int; poly : Lph_util.Poly.t }

let trivial g = Array.make (G.card g) ""

(* (r,p)-bound rows are requested for every node of a graph by the game
   solver's universes, once per enumerated assignment; memoise the whole
   row per (graph, ids, bound). The table is small and bounded: it is
   flushed wholesale if it ever grows past a few hundred entries. *)
let max_length_memo : (int * string array * bound, int array) Hashtbl.t = Hashtbl.create 64
let max_length_lock = Mutex.create ()

let max_length_row g ~ids b =
  let key = (G.uid g, ids, b) in
  match Mutex.protect max_length_lock (fun () -> Hashtbl.find_opt max_length_memo key) with
  | Some row -> row
  | None ->
      let row =
        Array.init (G.card g) (fun u ->
            Lph_util.Poly.eval b.poly (Neighborhood.ball_information g ~ids ~radius:b.radius u))
      in
      Mutex.protect max_length_lock (fun () ->
          if Hashtbl.length max_length_memo > 512 then Hashtbl.reset max_length_memo;
          Hashtbl.replace max_length_memo key row);
      row

let max_length g ~ids b u = (max_length_row g ~ids b).(u)

let declared_cap g ~ids b =
  Array.fold_left max 0 (max_length_row g ~ids b)

let is_bounded g ~ids b certs =
  let row = max_length_row g ~ids b in
  G.fold_nodes g ~init:true ~f:(fun acc u -> acc && String.length certs.(u) <= row.(u))

let list_assignment = function
  | [] -> invalid_arg "Certificates.list_assignment: empty list"
  | first :: _ as assignments ->
      let n = Array.length first in
      Array.init n (fun u ->
          Lph_util.Bitstring.join_hash (List.map (fun k -> k.(u)) assignments))

let split_list ~levels s =
  let parts = Lph_util.Bitstring.split_hash s in
  let rec take n = function
    | _ when n = 0 -> []
    | [] -> "" :: take (n - 1) []
    | p :: rest -> p :: take (n - 1) rest
  in
  take levels parts

let per_node_choices max_len = Lph_util.Bitstring.all_up_to_length max_len

let all_assignments g ~max_len =
  let n = G.card g in
  let choices = List.init n (fun _ -> per_node_choices max_len) in
  Seq.map Array.of_list (Lph_util.Combinat.product choices)

let all_assignments_bounded g ~ids b ~cap =
  let n = G.card g in
  let choices =
    List.init n (fun u -> per_node_choices (min cap (max_length g ~ids b u)))
  in
  Seq.map Array.of_list (Lph_util.Combinat.product choices)
