module G = Labeled_graph

let default_labels n = function
  | Some labels ->
      if Array.length labels <> n then raise (G.Invalid "generators: wrong number of labels");
      labels
  | None -> Array.make n "1"

let path ?labels n =
  let labels = default_labels n labels in
  G.of_edge_array ~labels ~edges:(Array.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle ?labels n =
  if n < 3 then raise (G.Invalid "generators: cycle needs at least 3 nodes");
  let labels = default_labels n labels in
  G.of_edge_array ~labels ~edges:(Array.init n (fun i -> (i, (i + 1) mod n)))

let complete ?labels n =
  let labels = default_labels n labels in
  let edges = Array.make (n * (n - 1) / 2) (0, 0) in
  let k = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges.(!k) <- (u, v);
      incr k
    done
  done;
  G.of_edge_array ~labels ~edges

let star ?labels n =
  let labels = default_labels n labels in
  G.of_edge_array ~labels ~edges:(Array.init (n - 1) (fun i -> (0, i + 1)))

let grid ?(label = "1") ~rows ~cols () =
  if rows < 1 || cols < 1 then raise (G.Invalid "generators: empty grid");
  let labels = Array.make (rows * cols) label in
  let idx i j = (i * cols) + j in
  let edges = Array.make ((rows * (cols - 1)) + ((rows - 1) * cols)) (0, 0) in
  let k = ref 0 in
  let push e =
    edges.(!k) <- e;
    incr k
  in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if j + 1 < cols then push (idx i j, idx i (j + 1));
      if i + 1 < rows then push (idx i j, idx (i + 1) j)
    done
  done;
  G.of_edge_array ~labels ~edges

let torus ?(label = "1") ~rows ~cols () =
  (* wraparound in a dimension of size 2 would duplicate the grid edge,
     and size 1 would be a self-loop: both dimensions need >= 3 *)
  if rows < 3 || cols < 3 then raise (G.Invalid "generators: torus needs rows, cols >= 3");
  let labels = Array.make (rows * cols) label in
  let idx i j = (i * cols) + j in
  (* every node owns its right and down edge: exactly 2*rows*cols edges,
     4-regular *)
  let edges = Array.make (2 * rows * cols) (0, 0) in
  let k = ref 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      edges.(!k) <- (idx i j, idx i ((j + 1) mod cols));
      edges.(!k + 1) <- (idx i j, idx ((i + 1) mod rows) j);
      k := !k + 2
    done
  done;
  G.of_edge_array ~labels ~edges

let balanced_binary_tree ?(label = "1") ~depth () =
  if depth < 0 then raise (G.Invalid "generators: negative depth");
  let n = (1 lsl (depth + 1)) - 1 in
  let labels = Array.make n label in
  G.of_edge_array ~labels ~edges:(Array.init (n - 1) (fun i -> ((i + 1 - 1) / 2, i + 1)))

let random_bitstring rng bits = String.init bits (fun _ -> if Random.State.bool rng then '1' else '0')

(* A canonical-pair set on a Hashtbl: the duplicate check generators
   need while accumulating random edges. Keys are packed as u * n + v
   with u < v, so membership is O(1) — the seed's [List.mem] over the
   accumulated edge list made every random family O(E^2). *)
module Edge_set = struct
  type t = { n : int; tbl : (int, unit) Hashtbl.t; mutable edges : (int * int) list; mutable count : int }

  let create ~n ~hint = { n; tbl = Hashtbl.create hint; edges = []; count = 0 }

  let key t u v = if u < v then (u * t.n) + v else (v * t.n) + u

  (* returns whether the edge was new *)
  let add t u v =
    let k = key t u v in
    if u = v || Hashtbl.mem t.tbl k then false
    else begin
      Hashtbl.replace t.tbl k ();
      t.edges <- (min u v, max u v) :: t.edges;
      t.count <- t.count + 1;
      true
    end

  let to_array t =
    let arr = Array.make t.count (0, 0) in
    List.iteri (fun i e -> arr.(i) <- e) t.edges;
    arr
end

let random_connected ~rng ~n ~extra_edges ?(label_bits = 1) () =
  if n < 1 then raise (G.Invalid "generators: empty graph");
  let es = Edge_set.create ~n ~hint:(n + extra_edges) in
  (* random spanning tree: attach each node to a random earlier node *)
  for u = 1 to n - 1 do
    ignore (Edge_set.add es (Random.State.int rng u) u)
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra_edges && !attempts < 50 * (extra_edges + 1) do
    incr attempts;
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if Edge_set.add es u v then incr added
  done;
  let labels = Array.init n (fun _ -> random_bitstring rng label_bits) in
  G.of_edge_array ~labels ~edges:(Edge_set.to_array es)

(* Erdős–Rényi G(n, p), kept connected by rewiring: edges are sampled
   with geometric gap-skipping over the lexicographic pair order (O(m)
   work, never O(n^2)), then every non-root component is stitched to an
   already-connected node — one bridge per missing component, the
   standard "connected rewiring" repair that perturbs the degree
   distribution by at most 1 per component. *)
let erdos_renyi ~rng ~n ~p ?(label_bits = 1) () =
  if n < 1 then raise (G.Invalid "generators: empty graph");
  if not (p >= 0. && p <= 1.) then raise (G.Invalid "generators: p must be in [0, 1]");
  let total = n * (n - 1) / 2 in
  let expected = int_of_float (p *. float_of_int total) in
  let es = Edge_set.create ~n ~hint:(expected + n) in
  (* pair index k in [0, total) -> (u, v) in lexicographic order; the
     indices visited are strictly increasing, so the row cursor
     advances monotonically — O(m + n) for the whole sweep *)
  if p > 0. then begin
    let log1mp = log (1. -. p) in
    let k = ref (-1) in
    let u = ref 0 in
    let off = ref 0 in
    (try
       while true do
         let r = Random.State.float rng 1.0 in
         let skip =
           if p >= 1. then 1
           else 1 + int_of_float (floor (log (1. -. r) /. log1mp))
         in
         k := !k + skip;
         if !k >= total then raise Exit;
         while !off + (n - 1 - !u) <= !k do
           off := !off + (n - 1 - !u);
           incr u
         done;
         ignore (Edge_set.add es !u (!u + 1 + (!k - !off)))
       done
     with Exit -> ())
  end;
  (* connected rewiring: BFS from 0 over the sampled adjacency; every
     node found unreachable is bridged to a uniformly random reached
     node the moment it is discovered *)
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    es.Edge_set.edges;
  let seen = Array.make n false in
  let reached = Array.make n 0 in
  let reached_count = ref 0 in
  let queue = Queue.create () in
  let visit_from root =
    seen.(root) <- true;
    Queue.add root queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      reached.(!reached_count) <- u;
      incr reached_count;
      List.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            Queue.add v queue
          end)
        adj.(u)
    done
  in
  visit_from 0;
  for u = 1 to n - 1 do
    if not seen.(u) then begin
      let anchor = reached.(Random.State.int rng !reached_count) in
      ignore (Edge_set.add es anchor u);
      adj.(u) <- anchor :: adj.(u);
      visit_from u
    end
  done;
  let labels = Array.init n (fun _ -> random_bitstring rng label_bits) in
  G.of_edge_array ~labels ~edges:(Edge_set.to_array es)

(* Power-law family by preferential attachment (Barabási–Albert): each
   new node attaches [attach] distinct edges to existing nodes sampled
   proportionally to degree, via the repeated-endpoint array (each edge
   endpoint appears once per incident edge, so a uniform draw from the
   array is a degree-proportional draw). Connected by construction. *)
let preferential_attachment ~rng ~n ~attach ?(label_bits = 1) () =
  if n < 1 then raise (G.Invalid "generators: empty graph");
  if attach < 1 then raise (G.Invalid "generators: attach must be >= 1");
  let m0 = min n (attach + 1) in
  let es = Edge_set.create ~n ~hint:(n * attach) in
  (* seed: a path on the first m0 nodes (connected, minimal bias) *)
  for u = 1 to m0 - 1 do
    ignore (Edge_set.add es (u - 1) u)
  done;
  let endpoints = ref (Array.make (max 16 (4 * n * attach / 2)) 0) in
  let ep_count = ref 0 in
  let push_endpoint u =
    if !ep_count >= Array.length !endpoints then begin
      let bigger = Array.make (2 * Array.length !endpoints) 0 in
      Array.blit !endpoints 0 bigger 0 !ep_count;
      endpoints := bigger
    end;
    !endpoints.(!ep_count) <- u;
    incr ep_count
  in
  List.iter
    (fun (u, v) ->
      push_endpoint u;
      push_endpoint v)
    es.Edge_set.edges;
  for u = m0 to n - 1 do
    let wanted = min attach u in
    let got = ref 0 in
    let guard = ref 0 in
    while !got < wanted && !guard < 50 * (wanted + 1) do
      incr guard;
      let v = !endpoints.(Random.State.int rng !ep_count) in
      if Edge_set.add es u v then begin
        push_endpoint u;
        push_endpoint v;
        incr got
      end
    done;
    (* pathological rejection streak (tiny graphs): fall back to the
       lowest-index nodes not yet adjacent *)
    let v = ref 0 in
    while !got < wanted && !v < u do
      if Edge_set.add es u !v then begin
        push_endpoint u;
        push_endpoint !v;
        incr got
      end;
      incr v
    done
  done;
  let labels = Array.init n (fun _ -> random_bitstring rng label_bits) in
  G.of_edge_array ~labels ~edges:(Edge_set.to_array es)

(* Bounded-degree expander: the union of [cycles] independent random
   Hamiltonian cycles (a random permutation each). Max degree 2*cycles;
   connectivity is guaranteed by any single cycle; random
   permutation-cycle unions are expanders with high probability
   (the standard configuration-style construction). *)
let expander ~rng ~n ~cycles ?(label_bits = 1) () =
  if n < 3 then raise (G.Invalid "generators: expander needs at least 3 nodes");
  if cycles < 1 then raise (G.Invalid "generators: cycles must be >= 1");
  let es = Edge_set.create ~n ~hint:(n * cycles) in
  let perm = Array.init n Fun.id in
  for c = 0 to cycles - 1 do
    if c = 0 then
      (* the identity cycle guarantees connectivity deterministically *)
      for i = 0 to n - 1 do
        ignore (Edge_set.add es i ((i + 1) mod n))
      done
    else begin
      (* Fisher–Yates, then the cycle through the shuffled order;
         collisions with earlier cycles are skipped (degree only
         drops below 2*cycles, never above) *)
      for i = n - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t
      done;
      for i = 0 to n - 1 do
        ignore (Edge_set.add es perm.(i) perm.((i + 1) mod n))
      done
    end
  done;
  let labels = Array.init n (fun _ -> random_bitstring rng label_bits) in
  G.of_edge_array ~labels ~edges:(Edge_set.to_array es)

let random_labels ~rng ~bits g =
  G.map_labels (fun _ _ -> random_bitstring rng bits) g

let glued_even_cycle n =
  if n < 3 || n mod 2 = 0 then raise (G.Invalid "glued_even_cycle: n must be odd and >= 3");
  let g = cycle ~labels:(Array.make n "") n in
  let g' = cycle ~labels:(Array.make (2 * n) "") (2 * n) in
  (g, g')
