module G = Labeled_graph

type t = string array

(* On bit strings, byte-wise comparison realises "proper prefix first,
   then first differing bit". *)
let compare_id = String.compare

let ceil_log2 n =
  if n <= 1 then 0
  else begin
    let rec go k acc = if acc >= n then k else go (k + 1) (acc * 2) in
    go 0 1
  end

let conflict_pairs g ~radius =
  (* nodes within distance 2*radius of each other: each node's
     2r-ball from truncated BFS, so the sweep is O(sum of |ball|),
     never O(n^2) full distance rows *)
  let pairs = ref [] in
  G.iter_nodes g (fun u ->
      List.iter
        (fun (v, _) -> if v > u then pairs := (u, v) :: !pairs)
        (Neighborhood.ball_distances g ~radius:(2 * radius) u));
  !pairs

let is_locally_unique g ~radius ids =
  List.for_all (fun (u, v) -> ids.(u) <> ids.(v)) (conflict_pairs g ~radius)

let is_globally_unique g ids =
  let sorted = List.sort compare (Array.to_list ids) in
  let rec distinct = function
    | a :: (b :: _ as rest) -> a <> b && distinct rest
    | _ -> true
  in
  ignore g;
  distinct sorted

let is_small g ~radius ids =
  List.for_all
    (fun u ->
      let ball = Neighborhood.ball g ~radius:(2 * radius) u in
      String.length ids.(u) <= ceil_log2 (List.length ball))
    (G.nodes g)

let make_global g =
  let n = G.card g in
  let width = ceil_log2 n in
  Array.init n (fun u -> Lph_util.Bitstring.of_int_width ~width u)

let make_small g ~radius =
  let n = G.card g in
  let conflicts = Array.make n [] in
  List.iter
    (fun (u, v) ->
      conflicts.(u) <- v :: conflicts.(u);
      conflicts.(v) <- u :: conflicts.(v))
    (conflict_pairs g ~radius);
  (* greedy colouring: node u gets the smallest value unused among
     already-coloured conflicting nodes *)
  let value = Array.make n (-1) in
  for u = 0 to n - 1 do
    let used = List.filter_map (fun v -> if value.(v) >= 0 then Some value.(v) else None) conflicts.(u) in
    let rec smallest k = if List.mem k used then smallest (k + 1) else k in
    value.(u) <- smallest 0
  done;
  (* Encode each value with exactly the width required by its own
     2*radius-ball, as Remark 1 allows. Greedy colouring uses at most
     deg+1 <= card(ball) values, but widths differ per node; identifiers
     of different lengths are automatically distinct unless one is a
     prefix of the other, so we must double-check and fall back to a
     common width when the per-node widths collide. *)
  let width_of u =
    let ball = Neighborhood.ball g ~radius:(2 * radius) u in
    ceil_log2 (List.length ball)
  in
  let ids = Array.init n (fun u -> Lph_util.Bitstring.of_int_width ~width:(width_of u) value.(u)) in
  if is_locally_unique g ~radius ids then ids
  else begin
    let width = max 1 (List.fold_left (fun acc u -> max acc (width_of u)) 0 (G.nodes g)) in
    Array.init n (fun u -> Lph_util.Bitstring.of_int_width ~width value.(u))
  end

let cyclic g ~period =
  if period < 1 then invalid_arg "Identifiers.cyclic: period must be positive";
  let width = max 1 (ceil_log2 period) in
  Array.init (G.card g) (fun u -> Lph_util.Bitstring.of_int_width ~width (u mod period))

let duplicate ids = Array.append ids (Array.copy ids)
