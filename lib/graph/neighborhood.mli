(** Distances and r-neighbourhoods (Section 3). [N_r(u)] is the subgraph
    induced by all nodes at distance at most [r] from [u]; it is the unit
    of "locally available information" throughout the paper.

    Distance rows and balls are memoised per graph (graphs are immutable
    after {!Labeled_graph.make}); the memo is weakly keyed, safe to use
    from parallel domains, and transparent to callers.

    Two regimes, split at [LPH_FULL_ROW_MAX] (default 8192) nodes: small
    graphs cache one full BFS distance row per source; large graphs
    never materialise O(n) rows — balls come from truncated BFS that
    explores only the r-ball (O(sum of ball degrees) per query), cached
    in shard tables keyed by the source's graph segment, each shard
    behind its own mutex. *)

val distances : Labeled_graph.t -> int -> int array
(** BFS distances from a node; unreachable is impossible (graphs are
    connected). The row is computed once per (graph, source) and cached;
    callers must not mutate the returned array. *)

val distance : Labeled_graph.t -> int -> int -> int
(** Single-pair distance. Served from the cached row when one endpoint
    already has one; otherwise runs a BFS that stops as soon as the
    target is reached instead of exploring the whole graph. *)

val ball : Labeled_graph.t -> radius:int -> int -> int list
(** Nodes at distance [<= radius], sorted by node index. Costs
    O(ball) via truncated BFS, never a full-graph sweep. *)

val ball_distances : Labeled_graph.t -> radius:int -> int -> (int * int) list
(** The ball with each member's distance from the source:
    [(v, dist(u, v))] sorted by node index. Same truncated-BFS cost as
    {!ball}; use it when the caller would otherwise re-derive distances
    from a full row. *)

val touched : Labeled_graph.t -> radius:int -> int list -> int list
(** [touched g ~radius changed]: the nodes whose radius-[radius] ball
    intersects [changed] — exactly the verifiers a radius-[radius]
    arbiter must re-run after the certificates of [changed] mutate
    (the incremental-evaluation dirty set). Sorted by node index. *)

val evict : Labeled_graph.t -> unit
(** Drop the graph's memoised rows and ball shards now instead of
    waiting for the weakly-keyed table to notice the graph died — the
    eviction hook of cache-bounded long-lived processes
    ({!Lph_serve.Scheduler}). Safe concurrently with queries: an
    in-flight query at worst re-memoises into a fresh cache. *)

val eccentricity : Labeled_graph.t -> int -> int
val diameter : Labeled_graph.t -> int

type induced = {
  subgraph : Labeled_graph.t;
  to_sub : int -> int option;  (** original node -> subgraph node *)
  of_sub : int -> int;  (** subgraph node -> original node *)
}

val induced : Labeled_graph.t -> int list -> induced
(** Induced subgraph on a set of nodes (must be non-empty and induce a
    connected subgraph). *)

val r_neighbourhood : Labeled_graph.t -> radius:int -> int -> induced
(** [N_r(u)] with its node correspondence. The ball around a node always
    induces a connected subgraph. *)

val ball_information : Labeled_graph.t -> ids:string array -> radius:int -> int -> int
(** The quantity the paper's (r,p)-bounds are measured against:
    [sum over v in N_r(u) of 1 + len(label v) + len(id v)]. *)
