module G = Labeled_graph
module S = Lph_structure.Structure

type element = Node of int | Bit of int * int

type repr = {
  g : G.t;
  s : S.t;
  bit_offset : int array; (* bit_offset.(u) = index of Bit (u, 1) *)
  elems : element array;
}

let of_graph g =
  let n = G.card g in
  let bit_offset = Array.make n 0 in
  let next = ref n in
  for u = 0 to n - 1 do
    bit_offset.(u) <- !next;
    next := !next + String.length (G.label g u)
  done;
  let total = !next in
  let elems = Array.make total (Node 0) in
  for u = 0 to n - 1 do
    elems.(u) <- Node u;
    String.iteri (fun i _ -> elems.(bit_offset.(u) + i) <- Bit (u, i + 1)) (G.label g u)
  done;
  let ones = ref [] in
  let succ_edges = ref [] in
  let owner_edges = ref [] in
  for u = 0 to n - 1 do
    let l = G.label g u in
    String.iteri
      (fun i c ->
        let e = bit_offset.(u) + i in
        if c = '1' then ones := e :: !ones;
        if i + 1 < String.length l then succ_edges := (e, e + 1) :: !succ_edges;
        owner_edges := (u, e) :: !owner_edges)
      l
  done;
  let edge_rel =
    List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) (G.edges g)
  in
  let s =
    S.create ~card:total
      ~unary:[| !ones |]
      ~binary:[| edge_rel @ !succ_edges; !owner_edges |]
  in
  { g; s; bit_offset; elems }

let structure r = r.s

let graph r = r.g

let to_index r = function
  | Node u ->
      if u < 0 || u >= G.card r.g then raise Not_found;
      u
  | Bit (u, i) ->
      if u < 0 || u >= G.card r.g || i < 1 || i > String.length (G.label r.g u) then raise Not_found;
      r.bit_offset.(u) + i - 1

let of_index r i = r.elems.(i)

let node_elements r u =
  let len = String.length (G.label r.g u) in
  u :: List.init len (fun i -> r.bit_offset.(u) + i)

let card g =
  G.fold_nodes g ~init:(G.card g) ~f:(fun acc u -> acc + String.length (G.label g u))

let structural_degree g u = G.degree g u + String.length (G.label g u)

let max_structural_degree g =
  G.fold_nodes g ~init:0 ~f:(fun acc u -> max acc (structural_degree g u))

let in_graph_delta g delta =
  G.fold_nodes g ~init:true ~f:(fun acc u -> acc && structural_degree g u <= delta)
