(* CSR (compressed sparse row) graph core. The adjacency is two packed
   int arrays — [off] (length n+1) and [tgt] (length 2m, row-sorted) —
   so neighbourhood scans are cache-local, [degree]/[num_edges] are
   O(1), [has_edge] is a binary search, and none of the hot accessors
   allocate. The canonical edge list the original list-based core kept
   eagerly is now derived lazily (and cached) for the few cold callers
   that still want it. *)

type t = {
  uid : int; (* unique per construction; keys the per-graph memo tables *)
  labels : string array;
  off : int array; (* off.(u) .. off.(u+1) - 1 indexes u's row in tgt *)
  tgt : int array; (* neighbour targets, sorted within each row *)
  mutable edge_list : (int * int) list option;
      (* lazily derived canonical (u < v, sorted) list; idempotent, so a
         racing duplicate computation is harmless *)
}

let uid_counter = Atomic.make 0

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

(* BFS over the CSR rows with a flat int-array queue: no per-node
   allocation, so the connectivity check stays cheap at 10^6 nodes. *)
let check_connected n off tgt =
  if n > 0 then begin
    let seen = Bytes.make n '\000' in
    let queue = Array.make n 0 in
    Bytes.set seen 0 '\001';
    let head = ref 0 and tail = ref 1 in
    let count = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      for i = off.(u) to off.(u + 1) - 1 do
        let v = tgt.(i) in
        if Bytes.get seen v = '\000' then begin
          Bytes.set seen v '\001';
          incr count;
          queue.(!tail) <- v;
          incr tail
        end
      done
    done;
    if !count <> n then invalid "graph is not connected (%d of %d nodes reachable)" !count n
  end

(* In-place sort of tgt.(lo .. lo+len-1). Rows are usually tiny
   (bounded-degree instances), so insertion sort; hubs (stars,
   preferential-attachment centres) fall through to a scratch-buffer
   Array.sort. *)
let sort_row tgt lo len =
  if len > 1 then begin
    if len <= 16 then
      for i = lo + 1 to lo + len - 1 do
        let x = tgt.(i) in
        let j = ref (i - 1) in
        while !j >= lo && tgt.(!j) > x do
          tgt.(!j + 1) <- tgt.(!j);
          decr j
        done;
        tgt.(!j + 1) <- x
      done
    else begin
      let scratch = Array.sub tgt lo len in
      Array.sort (fun (a : int) b -> compare a b) scratch;
      Array.blit scratch 0 tgt lo len
    end
  end

let build ~labels ~(edges : (int * int) array) =
  let n = Array.length labels in
  if n = 0 then invalid "graph must have at least one node";
  Array.iteri
    (fun u l ->
      if not (Lph_util.Bitstring.is_bitstring l) then invalid "label of node %d is not a bit string" u)
    labels;
  let m = Array.length edges in
  let off = Array.make (n + 1) 0 in
  for i = 0 to m - 1 do
    let u, v = edges.(i) in
    if u < 0 || u >= n || v < 0 || v >= n then invalid "edge (%d,%d) out of range" u v;
    if u = v then invalid "self-loop at node %d" u;
    off.(u + 1) <- off.(u + 1) + 1;
    off.(v + 1) <- off.(v + 1) + 1
  done;
  for i = 1 to n do
    off.(i) <- off.(i) + off.(i - 1)
  done;
  let tgt = Array.make (2 * m) 0 in
  let cursor = Array.sub off 0 n in
  for i = 0 to m - 1 do
    let u, v = edges.(i) in
    tgt.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1;
    tgt.(cursor.(v)) <- u;
    cursor.(v) <- cursor.(v) + 1
  done;
  for u = 0 to n - 1 do
    sort_row tgt off.(u) (off.(u + 1) - off.(u))
  done;
  (* a duplicate (or reversed-duplicate) input edge shows up as equal
     adjacent targets in some sorted row *)
  for u = 0 to n - 1 do
    for i = off.(u) + 1 to off.(u + 1) - 1 do
      if tgt.(i) = tgt.(i - 1) then invalid "duplicate edge"
    done
  done;
  check_connected n off tgt;
  {
    uid = Atomic.fetch_and_add uid_counter 1;
    labels = Array.copy labels;
    off;
    tgt;
    edge_list = None;
  }

let of_edge_array ~labels ~edges = build ~labels ~edges

let make ~labels ~edges = build ~labels ~edges:(Array.of_list edges)

let singleton label = make ~labels:[| label |] ~edges:[]

let uid g = g.uid

let card g = Array.length g.labels

let nodes g = List.init (card g) Fun.id

let iter_nodes g f =
  for u = 0 to card g - 1 do
    f u
  done

let fold_nodes g ~init ~f =
  let acc = ref init in
  for u = 0 to card g - 1 do
    acc := f !acc u
  done;
  !acc

let num_edges g = Array.length g.tgt / 2

let degree g u = g.off.(u + 1) - g.off.(u)

let neighbours g u =
  let lo = g.off.(u) in
  List.init (g.off.(u + 1) - lo) (fun i -> g.tgt.(lo + i))

let neighbours_iter g u f =
  for i = g.off.(u) to g.off.(u + 1) - 1 do
    f g.tgt.(i)
  done

let fold_neighbours g u ~init ~f =
  let acc = ref init in
  for i = g.off.(u) to g.off.(u + 1) - 1 do
    acc := f !acc g.tgt.(i)
  done;
  !acc

(* binary search in u's sorted row *)
let has_edge g u v =
  let lo = ref g.off.(u) and hi = ref (g.off.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.tgt.(mid) in
    if w = v then found := true else if w < v then lo := mid + 1 else hi := mid - 1
  done;
  !found

let iter_edges g f =
  for u = 0 to card g - 1 do
    for i = g.off.(u) to g.off.(u + 1) - 1 do
      let v = g.tgt.(i) in
      if v > u then f u v
    done
  done

let edges g =
  match g.edge_list with
  | Some e -> e
  | None ->
      let acc = ref [] in
      for u = card g - 1 downto 0 do
        for i = g.off.(u + 1) - 1 downto g.off.(u) do
          let v = g.tgt.(i) in
          if v > u then acc := (u, v) :: !acc
        done
      done;
      g.edge_list <- Some !acc;
      !acc

let label g u = g.labels.(u)

let labels g = Array.copy g.labels

(* Same topology, new labelling: the packed rows are immutable, so they
   are shared instead of rebuilt — this is what keeps Runner.run's
   output-graph construction O(n) instead of O(m log m) per run. *)
let with_labels g labels =
  if Array.length labels <> card g then invalid "with_labels: wrong number of labels";
  Array.iteri
    (fun u l ->
      if not (Lph_util.Bitstring.is_bitstring l) then invalid "label of node %d is not a bit string" u)
    labels;
  {
    uid = Atomic.fetch_and_add uid_counter 1;
    labels = Array.copy labels;
    off = g.off;
    tgt = g.tgt;
    edge_list = g.edge_list;
  }

let map_labels f g = with_labels g (Array.mapi f g.labels)

let is_node_graph g = card g = 1

let all_labels_one g = Array.for_all (fun l -> l = "1") g.labels

let max_degree g =
  let acc = ref 0 in
  for u = 0 to card g - 1 do
    acc := max !acc (degree g u)
  done;
  !acc

let equal g h = g.labels = h.labels && g.off = h.off && g.tgt = h.tgt

let pp fmt g =
  Format.fprintf fmt "@[<v>graph: %d nodes, %d edges" (card g) (num_edges g);
  iter_nodes g (fun u ->
      Format.fprintf fmt "@,  %d [%s] -- %s" u g.labels.(u)
        (String.concat " " (List.map string_of_int (neighbours g u))));
  Format.fprintf fmt "@]"

let union_disjoint g h ~bridge =
  let ng = card g in
  let labels = Array.append g.labels h.labels in
  let out = Array.make (num_edges g + num_edges h + List.length bridge) (0, 0) in
  let k = ref 0 in
  let push e =
    out.(!k) <- e;
    incr k
  in
  iter_edges g (fun u v -> push (u, v));
  iter_edges h (fun u v -> push (u + ng, v + ng));
  List.iter (fun (u, v) -> push (u, v + ng)) bridge;
  of_edge_array ~labels ~edges:out
