type t = {
  uid : int; (* unique per [make]; keys the per-graph memo tables *)
  labels : string array;
  adj : int list array; (* sorted neighbour lists *)
  edge_list : (int * int) list; (* canonical (u < v), sorted *)
}

let uid_counter = Atomic.make 0

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let check_connected n adj =
  if n > 0 then begin
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(0) <- true;
    Queue.add 0 queue;
    let count = ref 1 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            incr count;
            Queue.add v queue
          end)
        adj.(u)
    done;
    if !count <> n then invalid "graph is not connected (%d of %d nodes reachable)" !count n
  end

let make ~labels ~edges =
  let n = Array.length labels in
  if n = 0 then invalid "graph must have at least one node";
  Array.iteri
    (fun u l ->
      if not (Lph_util.Bitstring.is_bitstring l) then invalid "label of node %d is not a bit string" u)
    labels;
  let canon (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then invalid "edge (%d,%d) out of range" u v;
    if u = v then invalid "self-loop at node %d" u;
    if u < v then (u, v) else (v, u)
  in
  let edge_list = List.sort_uniq compare (List.map canon edges) in
  if List.length edge_list <> List.length edges then invalid "duplicate edge";
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edge_list;
  Array.iteri (fun u ns -> adj.(u) <- List.sort compare ns) adj;
  check_connected n adj;
  { uid = Atomic.fetch_and_add uid_counter 1; labels = Array.copy labels; adj; edge_list }

let singleton label = make ~labels:[| label |] ~edges:[]

let uid g = g.uid

let card g = Array.length g.labels

let nodes g = List.init (card g) Fun.id

let edges g = g.edge_list

let num_edges g = List.length g.edge_list

let neighbours g u = g.adj.(u)

let has_edge g u v = List.mem v g.adj.(u)

let degree g u = List.length g.adj.(u)

let label g u = g.labels.(u)

let labels g = Array.copy g.labels

let with_labels g labels =
  if Array.length labels <> card g then invalid "with_labels: wrong number of labels";
  make ~labels ~edges:g.edge_list

let map_labels f g = with_labels g (Array.mapi f g.labels)

let is_node_graph g = card g = 1

let all_labels_one g = Array.for_all (fun l -> l = "1") g.labels

let max_degree g =
  List.fold_left (fun acc u -> max acc (degree g u)) 0 (nodes g)

let equal g h = g.labels = h.labels && g.edge_list = h.edge_list

let pp fmt g =
  Format.fprintf fmt "@[<v>graph: %d nodes, %d edges" (card g) (num_edges g);
  List.iter
    (fun u ->
      Format.fprintf fmt "@,  %d [%s] -- %s" u g.labels.(u)
        (String.concat " " (List.map string_of_int g.adj.(u))))
    (nodes g);
  Format.fprintf fmt "@]"

let union_disjoint g h ~bridge =
  let ng = card g in
  let labels = Array.append g.labels h.labels in
  let shifted = List.map (fun (u, v) -> (u + ng, v + ng)) h.edge_list in
  let bridge = List.map (fun (u, v) -> (u, v + ng)) bridge in
  make ~labels ~edges:(g.edge_list @ shifted @ bridge)
