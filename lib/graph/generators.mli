(** Graph families used by tests, examples and experiments. Unless noted,
    all nodes carry the label ["1"] (so the graphs are ALL-SELECTED
    instances by default); use {!Labeled_graph.map_labels} or the
    [labels] arguments to change that. *)

val path : ?labels:string array -> int -> Labeled_graph.t
(** Path on [n >= 1] nodes. *)

val cycle : ?labels:string array -> int -> Labeled_graph.t
(** Cycle on [n >= 3] nodes. *)

val complete : ?labels:string array -> int -> Labeled_graph.t
val star : ?labels:string array -> int -> Labeled_graph.t
(** [star n]: one centre (node 0) and [n - 1] leaves. *)

val grid : ?label:string -> rows:int -> cols:int -> unit -> Labeled_graph.t
(** [rows × cols] grid; node [(i, j)] has index [i * cols + j]. *)

val torus : ?label:string -> rows:int -> cols:int -> unit -> Labeled_graph.t
(** The [rows × cols] grid with wraparound in both dimensions: 4-regular,
    diameter [(rows + cols) / 2]. Requires [rows, cols >= 3] (smaller
    wraparounds degenerate into duplicate edges or self-loops). *)

val balanced_binary_tree : ?label:string -> depth:int -> unit -> Labeled_graph.t

val random_connected :
  rng:Random.State.t -> n:int -> extra_edges:int -> ?label_bits:int -> unit -> Labeled_graph.t
(** A random spanning tree plus [extra_edges] random additional edges;
    labels are uniform random bit strings of length [label_bits]
    (default 1). *)

val erdos_renyi :
  rng:Random.State.t -> n:int -> p:float -> ?label_bits:int -> unit -> Labeled_graph.t
(** G(n, p) with connected rewiring: each pair is an edge independently
    with probability [p] (sampled by geometric gap-skipping, O(m) not
    O(n^2)), then every component left disconnected is bridged to a
    uniformly random already-reached node — at most one extra edge per
    component. *)

val preferential_attachment :
  rng:Random.State.t -> n:int -> attach:int -> ?label_bits:int -> unit -> Labeled_graph.t
(** Power-law (Barabási–Albert) family: nodes arrive one at a time and
    attach [attach] distinct edges to existing nodes with probability
    proportional to degree. Connected by construction; degree
    distribution has a heavy tail (hubs), exercising the CSR core's
    non-uniform rows. *)

val expander :
  rng:Random.State.t -> n:int -> cycles:int -> ?label_bits:int -> unit -> Labeled_graph.t
(** Bounded-degree expander: the union of [cycles] Hamiltonian cycles
    (the identity cycle, then [cycles - 1] uniformly random ones). Max
    degree [2 * cycles]; connected deterministically; an expander with
    high probability for [cycles >= 2]. Requires [n >= 3]. *)

val random_labels : rng:Random.State.t -> bits:int -> Labeled_graph.t -> Labeled_graph.t
(** Replace each label with a fresh uniform bit string of the given
    length. *)

val glued_even_cycle : int -> Labeled_graph.t * Labeled_graph.t
(** The Proposition 21 construction: for odd [n], returns the odd cycle
    [G] on nodes [u_1 .. u_n] and the even cycle [G'] on
    [u_1 .. u_n, u'_1 .. u'_n] obtained by gluing two copies of [G]
    (node [u'_i] has index [n + i - 1]). All labels empty. *)
