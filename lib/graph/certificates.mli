(** Certificate assignments and the (r,p)-boundedness condition
    (Section 3). A certificate assignment gives each node a bit string;
    an assignment is (r,p)-bounded when every node's certificate length
    is at most [p] applied to the information content of its
    r-neighbourhood (node count + label lengths + identifier lengths).

    Several assignments are combined into a certificate-list assignment
    by joining the per-node certificates with ['#']. *)

type t = string array
(** [t.(u)] is the certificate of node [u]. *)

type bound = { radius : int; poly : Lph_util.Poly.t }
(** The pair (r, p). *)

val trivial : Labeled_graph.t -> t
(** The empty certificate for every node. *)

val max_length : Labeled_graph.t -> ids:Identifiers.t -> bound -> int -> int
(** [max_length g ~ids b u]: the largest certificate length allowed at
    node [u] under bound [b]. *)

val declared_cap : Labeled_graph.t -> ids:Identifiers.t -> bound -> int
(** The graph-wide declared certificate budget: the largest
    {!max_length} over all nodes. The certificate-budget optimiser
    compares this declaration against the empirical optimum it finds. *)

val is_bounded : Labeled_graph.t -> ids:Identifiers.t -> bound -> t -> bool

val list_assignment : t list -> t
(** [list_assignment [k1; ...; kl]] is the certificate-list assignment
    [u -> k1(u)#...#kl(u)]; the empty list yields empty strings
    (requires at least one assignment to determine the node count
    otherwise). Raises [Invalid_argument] on the empty list. *)

val split_list : levels:int -> string -> string list
(** Decode one node's certificate list back into [levels] certificates.
    Missing components decode as empty strings; surplus components are
    dropped (the paper's machines simply ignore malformed suffixes). *)

val all_assignments : Labeled_graph.t -> max_len:int -> t Seq.t
(** Exhaustive enumeration of certificate assignments where every
    node's certificate has length [<= max_len]. Exponential; intended
    for the exact game solver on small instances. *)

val all_assignments_bounded :
  Labeled_graph.t -> ids:Identifiers.t -> bound -> cap:int -> t Seq.t
(** Like {!all_assignments} but per-node lengths are additionally capped
    by the (r,p)-bound (and globally by [cap], to keep enumeration
    finite in practice). *)
