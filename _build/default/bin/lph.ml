(* Command-line interface to the library: build graphs from compact
   specifications, run deciders and verification games, apply
   reductions, and evaluate the §5.2 formulas.

     lph decide  --machine eulerian --graph cycle:6
     lph verify  --colors 3 --graph complete:4
     lph logic   --formula hamiltonian --graph cycle:5
     lph reduce  --reduction co-hamiltonian --graph path:3 --labels 101
     lph classes --max-level 3                                          *)

open Lph_core
open Cmdliner

(* ------------------------------------------------------------------ *)
(* graph specifications: family:params, with optional label string     *)

let parse_graph spec labels =
  let fail msg = `Error (false, msg) in
  let base =
    match String.split_on_char ':' spec with
    | [ "cycle"; n ] -> Ok (Generators.cycle (int_of_string n))
    | [ "path"; n ] -> Ok (Generators.path (int_of_string n))
    | [ "complete"; n ] -> Ok (Generators.complete (int_of_string n))
    | [ "star"; n ] -> Ok (Generators.star (int_of_string n))
    | [ "grid"; dims ] -> begin
        match String.split_on_char 'x' dims with
        | [ r; c ] -> Ok (Generators.grid ~rows:(int_of_string r) ~cols:(int_of_string c) ())
        | _ -> Error "grid spec must be grid:RxC"
      end
    | [ "tree"; d ] -> Ok (Generators.balanced_binary_tree ~depth:(int_of_string d) ())
    | [ "node"; label ] -> Ok (Graph.singleton label)
    | [ "node" ] -> Ok (Graph.singleton "")
    | _ -> Error "unknown graph spec (cycle:N path:N complete:N star:N grid:RxC tree:D node[:LABEL])"
  in
  match base with
  | Error e -> fail e
  | Ok g -> begin
      match labels with
      | None -> `Ok g
      | Some s ->
          if String.length s <> Graph.card g then
            fail
              (Printf.sprintf "label string has %d characters but the graph has %d nodes"
                 (String.length s) (Graph.card g))
          else begin
            try `Ok (Graph.with_labels g (Array.init (Graph.card g) (fun u -> String.make 1 s.[u])))
            with Graph.Invalid m -> fail m
          end
    end

let graph_term =
  let spec =
    Arg.(
      required
      & opt (some string) None
      & info [ "g"; "graph" ] ~docv:"SPEC" ~doc:"Graph family, e.g. cycle:6, grid:3x4, node:101.")
  in
  let labels =
    Arg.(
      value
      & opt (some string) None
      & info [ "l"; "labels" ] ~docv:"BITS" ~doc:"One label character (0/1) per node.")
  in
  Term.(ret (const parse_graph $ spec $ labels))

(* ------------------------------------------------------------------ *)

let decide_cmd =
  let machine_arg =
    Arg.(
      value
      & opt string "eulerian"
      & info [ "m"; "machine" ] ~docv:"NAME"
          ~doc:"One of: eulerian, all-selected, constant-label, even-label-ones.")
  in
  let run machine g =
    let m =
      match machine with
      | "eulerian" -> Some Machines.eulerian
      | "all-selected" -> Some Machines.all_selected
      | "constant-label" -> Some Machines.constant_labelling
      | "even-label-ones" -> Some Machines.even_label_ones
      | _ -> None
    in
    match m with
    | None -> `Error (false, "unknown machine " ^ machine)
    | Some m ->
        let ids = Identifiers.make_global g in
        let r = Turing.run m g ~ids () in
        Format.printf "%a@." Graph.pp g;
        Format.printf "machine %s: %s in %d round(s)@." m.Turing.name
          (if Turing.accepts r then "ACCEPT" else "REJECT")
          r.Turing.stats.Turing.rounds;
        List.iter
          (fun u -> Format.printf "  node %d verdict %s@." u (Turing.verdict r u))
          (Graph.nodes g);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "decide" ~doc:"Run a distributed Turing machine as an LP-decider.")
    Term.(ret (const run $ machine_arg $ graph_term))

let verify_cmd =
  let colors_arg =
    Arg.(value & opt int 3 & info [ "k"; "colors" ] ~docv:"K" ~doc:"Number of colours.")
  in
  let run k g =
    let verifier = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier k) in
    let ids = Identifiers.make_global g in
    let universes = [ Candidates.color_universe k ] in
    let value = Game.sigma_accepts verifier g ~ids ~universes in
    Format.printf "%a@." Graph.pp g;
    Format.printf "%d-COLORABLE by the certificate game: %b (ground truth %b)@." k value
      (Properties.k_colorable k g);
    (match Game.eve_witness verifier g ~ids ~universes with
    | Some certs ->
        Format.printf "Eve's colours: %s@."
          (String.concat " " (Array.to_list (Array.map (fun c -> string_of_int (Bitstring.to_int c)) certs)))
    | None -> Format.printf "Eve has no winning certificate.@.");
    `Ok ()
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Play the NLP certificate game for k-colourability.")
    Term.(ret (const run $ colors_arg $ graph_term))

let logic_cmd =
  let formula_arg =
    Arg.(
      value
      & opt string "all-selected"
      & info [ "f"; "formula" ] ~docv:"NAME"
          ~doc:
            "One of: all-selected, not-all-selected, 2col, 3col, non-3col, hamiltonian, \
             non-hamiltonian.")
  in
  let run name g =
    let formula =
      match name with
      | "all-selected" -> Some Graph_formulas.all_selected
      | "not-all-selected" -> Some Graph_formulas.not_all_selected
      | "2col" -> Some Graph_formulas.two_colorable
      | "3col" -> Some Graph_formulas.three_colorable
      | "non-3col" -> Some Graph_formulas.non_3_colorable
      | "hamiltonian" -> Some Graph_formulas.hamiltonian
      | "non-hamiltonian" -> Some Graph_formulas.non_hamiltonian
      | _ -> None
    in
    match formula with
    | None -> `Error (false, "unknown formula " ^ name)
    | Some phi ->
        let level, first = Logic_syntax.level phi in
        Format.printf "%a@." Graph.pp g;
        Format.printf "sentence %s: level %d%s, size %d@." name level
          (match first with
          | Some Logic_syntax.Ex -> " (Σ)"
          | Some Logic_syntax.All -> " (Π)"
          | None -> "")
          (Formula.size phi);
        Format.printf "holds on $G: %b@." (Graph_formulas.holds g phi);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "logic" ~doc:"Model-check a §5.2 sentence on the graph's structural representation.")
    Term.(ret (const run $ formula_arg $ graph_term))

let reduce_cmd =
  let reduction_arg =
    Arg.(
      value
      & opt string "eulerian"
      & info [ "r"; "reduction" ] ~docv:"NAME"
          ~doc:"One of: eulerian, hamiltonian, co-hamiltonian, cook-levin-2col.")
  in
  let run name g =
    let pick =
      match name with
      | "eulerian" -> Some (Eulerian_red.reduction, ("ALL-SELECTED", Properties.all_selected), Properties.eulerian)
      | "hamiltonian" ->
          Some (Hamiltonian_red.reduction, ("ALL-SELECTED", Properties.all_selected), Properties.hamiltonian)
      | "co-hamiltonian" ->
          Some
            ( Hamiltonian_red.co_reduction,
              ("NOT-ALL-SELECTED", Properties.not_all_selected),
              Properties.hamiltonian )
      | "cook-levin-2col" ->
          Some
            ( Cook_levin.reduction Graph_formulas.two_colorable,
              ("2-COLORABLE", Properties.two_colorable),
              fun image -> Boolean_graph.satisfiable image )
      | _ -> None
    in
    match pick with
    | None -> `Error (false, "unknown reduction " ^ name)
    | Some (red, (src_name, src), tgt) ->
        let ids = Identifiers.make_global g in
        let image = Cluster.apply red g ~ids in
        Format.printf "%a@." Graph.pp g;
        Format.printf "reduction %s: %d nodes -> %d nodes, %d edges@." red.Cluster.name (Graph.card g)
          (Graph.card image) (Graph.num_edges image);
        Format.printf "G ∈ %s: %b;  f(G) ∈ target: %b;  equivalence: %s@." src_name (src g) (tgt image)
          (if src g = tgt image then "HOLDS" else "VIOLATED");
        `Ok ()
  in
  Cmd.v
    (Cmd.info "reduce" ~doc:"Apply a local-polynomial reduction and check the defining equivalence.")
    Term.(ret (const run $ reduction_arg $ graph_term))

let classes_cmd =
  let max_arg = Arg.(value & opt int 3 & info [ "max-level" ] ~docv:"L" ~doc:"Highest level.") in
  let run l =
    let classes = Classes.figure_one_levels l in
    Format.printf "%-10s %-8s %-22s@." "class" "level" "game (move order)";
    List.iter
      (fun c ->
        Format.printf "%-10s %-8d %-22s@." (Classes.name c) c.Classes.level
          (String.concat ""
             (List.map (function Game.Eve -> "∃" | Game.Adam -> "∀") (Classes.move_order c))))
      classes;
    `Ok ()
  in
  Cmd.v (Cmd.info "classes" ~doc:"List the classes of Figure 1/11.") Term.(ret (const run $ max_arg))

let () =
  let info = Cmd.info "lph" ~version:Lph_core.version ~doc:"A LOCAL view of the polynomial hierarchy." in
  exit (Cmd.eval (Cmd.group info [ decide_cmd; verify_cmd; logic_cmd; reduce_cmd; classes_cmd ]))
