(** Empirical verification of the two running-time dials of the paper:
    constant round time and polynomial step time. A machine "runs in
    step time p" when each node's computation in each round is bounded
    by p applied to the length of its initial tape contents in that
    round; we check the recorded per-node per-round measurements of
    {!Runner} / {!Turing} executions against a claimed polynomial. *)

val runner_samples : Runner.result -> (int * int) list
(** All [(local input size, charge)] pairs of an execution. *)

val turing_samples : Turing.result -> (int * int) list
(** All [(initial tape contents length, steps)] pairs. *)

val check_poly : bound:Lph_util.Poly.t -> (int * int) list -> bool
(** Every sample satisfies [cost <= bound input]. *)

val check_rounds : limit:int -> rounds:int list -> bool
(** Every execution used at most [limit] rounds (constant round
    time). *)

type report = {
  max_rounds : int;
  worst_ratio : float;  (** max over samples of cost / bound(input) *)
  samples : int;
}

val report : bound:Lph_util.Poly.t -> (int list * (int * int) list) -> report
(** Summarise rounds and samples from a batch of executions (first
    component: rounds per execution; second: merged samples). *)
