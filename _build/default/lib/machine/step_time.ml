let runner_samples (result : Runner.result) =
  let acc = ref [] in
  Array.iteri
    (fun r charges ->
      Array.iteri (fun u charge -> acc := (result.Runner.stats.input_sizes.(r).(u), charge) :: !acc) charges)
    result.Runner.stats.charges;
  !acc

let turing_samples (result : Turing.result) =
  let acc = ref [] in
  Array.iteri
    (fun r steps ->
      Array.iteri (fun u s -> acc := (result.Turing.stats.input_sizes.(r).(u), s) :: !acc) steps)
    result.Turing.stats.steps;
  !acc

let check_poly ~bound samples = Lph_util.Poly.fits ~bound samples

let check_rounds ~limit ~rounds = List.for_all (fun r -> r <= limit) rounds

type report = { max_rounds : int; worst_ratio : float; samples : int }

let report ~bound (rounds, samples) =
  let worst =
    List.fold_left
      (fun acc (input, cost) ->
        let b = Lph_util.Poly.eval bound input in
        if b = 0 then if cost = 0 then acc else infinity
        else max acc (float_of_int cost /. float_of_int b))
      0. samples
  in
  { max_rounds = List.fold_left max 0 rounds; worst_ratio = worst; samples = List.length samples }
