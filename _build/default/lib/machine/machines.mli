(** Concrete distributed Turing machines, written as raw transition
    tables. They exercise the faithful execution semantics of
    {!Turing} — message trains, identifier ordering, q_pause/q_stop —
    and serve as genuine LP-deciders for simple graph properties. *)

val all_selected : Turing.t
(** Decides ALL-SELECTED in one round: each node checks that its own
    label is exactly "1", erases its internal tape and writes its
    verdict. Linear step time. *)

val eulerian : Turing.t
(** Decides EULERIAN in one round using Euler's criterion: each node
    checks that its degree is even by counting the separators [#] on
    its (round-1) receiving tape. Connected graphs are Eulerian iff all
    degrees are even (Proposition 15). Linear step time. *)

val even_label_ones : Turing.t
(** Decides in one round whether every node's label contains an even
    number of 1s (the distributed counterpart of the classical parity
    language; its NODE restriction is exactly the word language of
    {!Lph_fagin.Tableau.even_ones}). Linear step time. *)

val constant_labelling : Turing.t
(** Decides in two rounds whether all nodes carry the same label: each
    node broadcasts its label, then compares every received message
    with its own label. Assumes all labels are non-empty (it
    distinguishes round 2 from round 1 by the presence of message
    bits). Quadratic step time. *)
