module G = Lph_graph.Labeled_graph

type symbol = Lend | Blank | Hash | Zero | One

type move = Left | Stay | Right

type state = int

let q_start = 0
let q_pause = 1
let q_stop = 2

type action = {
  next : state;
  write_internal : symbol;
  write_sending : symbol;
  moves : move * move * move;
}

type t = {
  name : string;
  delta : state -> symbol * symbol * symbol -> action;
}

exception Diverged of string

type stats = {
  rounds : int;
  steps : int array array;
  max_space : int array array;
  input_sizes : int array array;
}

type result = { output : G.t; stats : stats }

(* ------------------------------------------------------------------ *)
(* Tapes: a growable array of symbols; cell 0 holds ⊢.                 *)

module Tape = struct
  type t = { mutable cells : symbol array; mutable used : int; mutable head : int }

  let create () = { cells = Array.make 16 Blank; used = 1; head = 0 }

  let reset t =
    Array.fill t.cells 0 (Array.length t.cells) Blank;
    t.used <- 1;
    t.head <- 0

  let ensure t i =
    let n = Array.length t.cells in
    if i >= n then begin
      let cells = Array.make (max (2 * n) (i + 1)) Blank in
      Array.blit t.cells 0 cells 0 n;
      t.cells <- cells
    end;
    if i >= t.used then t.used <- i + 1

  let read t = if t.head = 0 then Lend else if t.head < t.used then t.cells.(t.head) else Blank

  let write t sym =
    if t.head > 0 then begin
      ensure t t.head;
      t.cells.(t.head) <- sym
    end
    (* cell 0 permanently holds ⊢; writes there are ignored, matching the
       convention that the left-end marker is never erased *)

  let move t = function
    | Left -> if t.head > 0 then t.head <- t.head - 1
    | Stay -> ()
    | Right ->
        t.head <- t.head + 1;
        ensure t t.head

  let load t symbols =
    (* set the content (cells 1..n) and rewind the head *)
    reset t;
    List.iteri
      (fun i sym ->
        ensure t (i + 1);
        t.cells.(i + 1) <- sym)
      symbols;
    t.head <- 0

  let content t =
    (* the sequence of symbols ignoring leading/trailing ⊢ and □ *)
    let buf = ref [] in
    for i = t.used - 1 downto 1 do
      buf := t.cells.(i) :: !buf
    done;
    let rec strip = function
      | (Blank | Lend) :: rest -> strip rest
      | l -> l
    in
    List.rev (strip (List.rev (strip !buf)))

  let space t = t.used
end

let symbol_of_char = function
  | '0' -> Zero
  | '1' -> One
  | '#' -> Hash
  | c -> invalid_arg (Printf.sprintf "Turing: illegal tape character %c" c)

let symbols_of_string s = List.map symbol_of_char (List.init (String.length s) (String.get s))

let bits_of_content content =
  String.concat ""
    (List.filter_map (function Zero -> Some "0" | One -> Some "1" | Lend | Blank | Hash -> None) content)

(* Split the sending-tape content into messages: bit strings separated by
   #, ignoring blanks ("the first d bit strings stored on the sending
   tape, using the symbol # as a separator and ignoring any □'s"). *)
let messages_of_content content d =
  let rec split acc current = function
    | [] -> List.rev (List.rev current :: acc)
    | Hash :: rest -> split (List.rev current :: acc) [] rest
    | (Zero as s) :: rest | (One as s) :: rest -> split acc (s :: current) rest
    | (Blank | Lend) :: rest -> split acc current rest
  in
  let parts = split [] [] content in
  let strings =
    List.map
      (fun part -> String.concat "" (List.map (function Zero -> "0" | One -> "1" | _ -> "") part))
      parts
  in
  List.init d (fun i -> match List.nth_opt strings i with Some s -> s | None -> "")

type node_state = {
  rcv : Tape.t;
  int_ : Tape.t;
  snd_ : Tape.t;
  mutable stopped : bool;
  neighbours : int array; (* sorted by identifier order *)
}

let run ?(round_limit = 1000) ?(step_limit = 100_000) m g ~ids ?certs () =
  let n = G.card g in
  let certs = match certs with Some c -> c | None -> Array.make n "" in
  let sorted_neighbours u =
    let ns = G.neighbours g u in
    let sorted = List.sort (fun a b -> Lph_graph.Identifiers.compare_id ids.(a) ids.(b)) ns in
    let rec check = function
      | a :: (b :: _ as rest) ->
          if ids.(a) = ids.(b) then
            invalid_arg
              (Printf.sprintf "Turing.run: neighbours %d and %d of node %d share identifier %s" a b u
                 ids.(a));
          check rest
      | _ -> ()
    in
    check sorted;
    Array.of_list sorted
  in
  let nodes =
    Array.init n (fun u ->
        let st =
          {
            rcv = Tape.create ();
            int_ = Tape.create ();
            snd_ = Tape.create ();
            stopped = false;
            neighbours = sorted_neighbours u;
          }
        in
        let initial = G.label g u ^ "#" ^ ids.(u) ^ "#" ^ certs.(u) in
        Tape.load st.int_ (symbols_of_string initial);
        st)
  in
  (* pending.(u) holds the messages u will receive next round, indexed in
     u's identifier order of neighbours *)
  let pending = Array.init n (fun u -> Array.make (Array.length nodes.(u).neighbours) "") in
  let steps_log = ref [] and space_log = ref [] and input_log = ref [] in
  let round = ref 0 in
  let all_stopped () = Array.for_all (fun st -> st.stopped) nodes in
  while not (all_stopped ()) do
    incr round;
    if !round > round_limit then
      raise (Diverged (Printf.sprintf "%s: exceeded %d rounds" m.name round_limit));
    let steps_r = Array.make n 0 and space_r = Array.make n 0 and input_r = Array.make n 0 in
    (* phase 1: deliver messages *)
    Array.iteri
      (fun u st ->
        let train =
          List.concat_map (fun msg -> symbols_of_string msg @ [ Hash ]) (Array.to_list pending.(u))
        in
        Tape.load st.rcv train;
        input_r.(u) <-
          List.length (Tape.content st.rcv) + List.length (Tape.content st.int_))
      nodes;
    (* phase 2: local computation *)
    Array.iteri
      (fun u st ->
        Tape.reset st.snd_;
        if not st.stopped then begin
          st.rcv.Tape.head <- 0;
          st.int_.Tape.head <- 0;
          st.snd_.Tape.head <- 0;
          let state = ref q_start in
          let steps = ref 0 in
          while !state <> q_pause && !state <> q_stop do
            incr steps;
            if !steps > step_limit then
              raise (Diverged (Printf.sprintf "%s: node %d exceeded %d steps in round %d" m.name u step_limit !round));
            let a = m.delta !state (Tape.read st.rcv, Tape.read st.int_, Tape.read st.snd_) in
            Tape.write st.int_ a.write_internal;
            Tape.write st.snd_ a.write_sending;
            let m1, m2, m3 = a.moves in
            Tape.move st.rcv m1;
            Tape.move st.int_ m2;
            Tape.move st.snd_ m3;
            state := a.next
          done;
          steps_r.(u) <- !steps;
          space_r.(u) <- Tape.space st.rcv + Tape.space st.int_ + Tape.space st.snd_;
          if !state = q_stop then st.stopped <- true
        end)
      nodes;
    (* phase 3: collect outgoing messages *)
    let outgoing =
      Array.mapi
        (fun _u st ->
          let d = Array.length st.neighbours in
          if st.stopped && Tape.content st.snd_ = [] then Array.make d ""
          else Array.of_list (messages_of_content (Tape.content st.snd_) d))
        nodes
    in
    Array.iteri
      (fun u st ->
        Array.iteri
          (fun i v ->
            (* the i-th neighbour of u receives u's i-th message; find u's
               slot in v's neighbour ordering *)
            let slot = ref (-1) in
            Array.iteri (fun j w -> if w = u then slot := j) nodes.(v).neighbours;
            assert (!slot >= 0);
            pending.(v).(!slot) <- outgoing.(u).(i))
          st.neighbours)
      nodes;
    steps_log := steps_r :: !steps_log;
    space_log := space_r :: !space_log;
    input_log := input_r :: !input_log
  done;
  let output =
    G.with_labels g
      (Array.map (fun st -> bits_of_content (Tape.content st.int_)) nodes)
  in
  let rev_array l = Array.of_list (List.rev l) in
  {
    output;
    stats =
      {
        rounds = !round;
        steps = rev_array !steps_log;
        max_space = rev_array !space_log;
        input_sizes = rev_array !input_log;
      };
  }

let verdict result u = G.label result.output u

let accepts result = G.all_labels_one result.output
