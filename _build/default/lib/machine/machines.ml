open Turing

(* Helpers to keep transition tables readable. [act] writes back the
   scanned symbols by default, so a transition that only moves or
   changes state stays a one-liner. *)

let act ?wi ?ws ~i ~s ?(mr = Stay) ?(mi = Stay) ?(ms = Stay) next =
  {
    next;
    write_internal = (match wi with Some sym -> sym | None -> i);
    write_sending = (match ws with Some sym -> sym | None -> s);
    moves = (mr, mi, ms);
  }

(* Shared state numbers for the erase-and-answer epilogue: rewind the
   internal head to ⊢, then sweep right erasing everything, and finally
   write the verdict on the first blank cell. *)

let rewind_accept = 30
let erase_accept = 31
let rewind_reject = 40
let erase_reject = 41

let epilogue state (r, i, s) =
  match state with
  | 30 -> begin
      match i with
      | Lend -> act ~i ~s ~mi:Right erase_accept
      | _ -> act ~i ~s ~mi:Left rewind_accept
    end
  | 31 -> begin
      match i with
      | Blank -> act ~wi:One ~i ~s q_stop
      | _ -> act ~wi:Blank ~i ~s ~mi:Right erase_accept
    end
  | 40 -> begin
      match i with
      | Lend -> act ~i ~s ~mi:Right erase_reject
      | _ -> act ~i ~s ~mi:Left rewind_reject
    end
  | 41 -> begin
      match i with
      | Blank -> act ~wi:Zero ~i ~s q_stop
      | _ -> act ~wi:Blank ~i ~s ~mi:Right erase_reject
    end
  | _ ->
      ignore r;
      invalid_arg "Machines.epilogue: unknown state"

let is_epilogue state = state >= 30 && state <= 41

(* ------------------------------------------------------------------ *)

let all_selected =
  let delta state ((r, i, s) as scan) =
    if is_epilogue state then epilogue state scan
    else
      match (state, i) with
      | 0, _ -> act ~i ~s ~mi:Right 3
      (* expect the single label bit to be 1 *)
      | 3, One -> act ~i ~s ~mi:Right 4
      | 3, _ -> act ~i ~s rewind_reject
      (* expect the separator ending the label; erasing is left to the
         epilogue sweep, which relies on the content being contiguous *)
      | 4, Hash -> act ~i ~s rewind_accept
      | 4, _ -> act ~i ~s rewind_reject
      | _ ->
          ignore r;
          invalid_arg "all_selected: stuck"
  in
  { name = "all-selected"; delta }

let eulerian =
  let delta state ((r, i, s) as scan) =
    if is_epilogue state then epilogue state scan
    else
      match (state, r) with
      | 0, _ -> act ~i ~s ~mr:Right 3
      (* parity of the number of # on the receiving tape: state 3 = even *)
      | 3, Hash -> act ~i ~s ~mr:Right 4
      | 3, Blank -> act ~i ~s rewind_accept
      | 4, Hash -> act ~i ~s ~mr:Right 3
      | 4, Blank -> act ~i ~s rewind_reject
      | (3 | 4), _ -> act ~i ~s rewind_reject
      | _ -> invalid_arg "eulerian: stuck"
  in
  { name = "eulerian"; delta }

let even_label_ones =
  (* states 5x: 10 = even so far, 11 = odd so far, scanning the label *)
  let delta state ((r, i, s) as scan) =
    if is_epilogue state then epilogue state scan
    else
      match (state, i) with
      | 0, _ -> act ~i ~s ~mi:Right 10
      | 10, One -> act ~i ~s ~mi:Right 11
      | 11, One -> act ~i ~s ~mi:Right 10
      | 10, Zero -> act ~i ~s ~mi:Right 10
      | 11, Zero -> act ~i ~s ~mi:Right 11
      | 10, (Hash | Blank) -> act ~i ~s rewind_accept
      | 11, (Hash | Blank) -> act ~i ~s rewind_reject
      | (10 | 11), Lend -> act ~i ~s rewind_reject
      | _ ->
          ignore r;
          invalid_arg "even_label_ones: stuck"
  in
  { name = "even-label-ones"; delta }

let constant_labelling =
  let delta state ((r, i, s) as scan) =
    if is_epilogue state then epilogue state scan
    else
      match (state, r, i) with
      | 0, _, _ -> act ~i ~s ~mr:Right ~mi:Right ~ms:Right 3
      (* dispatch on the first receiving cell: blank = no neighbours,
         # = round 1 (all messages empty), bit = round 2 *)
      | 3, Blank, _ -> act ~i ~s rewind_accept
      | 3, Hash, _ -> act ~i ~s 10
      | 3, (Zero | One), _ -> act ~i ~s 20
      | 3, Lend, _ -> act ~i ~s rewind_reject
      (* round 1: copy the label to the sending tape once per # *)
      | 10, _, (Zero | One) -> act ~ws:i ~i ~s ~mi:Right ~ms:Right 10
      | 10, _, Hash -> act ~ws:Hash ~i ~s ~mr:Right ~mi:Left ~ms:Right 11
      | 10, _, _ -> act ~i ~s rewind_reject
      | 11, _, Lend -> act ~i ~s ~mi:Right 12
      | 11, _, _ -> act ~i ~s ~mi:Left 11
      | 12, Hash, _ -> act ~i ~s 10
      | 12, Blank, _ -> act ~i ~s q_pause
      | 12, _, _ -> act ~i ~s rewind_reject
      (* round 2: compare each message with the label *)
      | 20, Zero, Zero | 20, One, One -> act ~i ~s ~mr:Right ~mi:Right 20
      | 20, Hash, Hash -> act ~i ~s ~mr:Right ~mi:Left 21
      | 20, Blank, _ -> act ~i ~s rewind_accept
      | 20, _, _ -> act ~i ~s rewind_reject
      | 21, _, Lend -> act ~i ~s ~mi:Right 20
      | 21, _, _ -> act ~i ~s ~mi:Left 21
      | _ -> invalid_arg "constant_labelling: stuck"
  in
  { name = "constant-labelling"; delta }
