lib/machine/gather.mli: Local_algo Lph_graph
