lib/machine/turing.ml: Array List Lph_graph Printf String
