lib/machine/local_algo.ml: List String
