lib/machine/machines.ml: Turing
