lib/machine/step_time.ml: Array List Lph_util Runner Turing
