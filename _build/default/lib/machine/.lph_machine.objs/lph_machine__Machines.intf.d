lib/machine/machines.mli: Turing
