lib/machine/runner.ml: Array List Local_algo Lph_graph Printf String
