lib/machine/step_time.mli: Lph_util Runner Turing
