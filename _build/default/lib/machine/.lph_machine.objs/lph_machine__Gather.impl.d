lib/machine/gather.ml: Array Hashtbl List Local_algo Lph_graph Lph_util Runner String
