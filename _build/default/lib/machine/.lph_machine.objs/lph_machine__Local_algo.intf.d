lib/machine/local_algo.mli:
