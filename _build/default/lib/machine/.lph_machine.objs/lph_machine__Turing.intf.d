lib/machine/turing.mli: Lph_graph
