lib/machine/runner.mli: Local_algo Lph_graph
