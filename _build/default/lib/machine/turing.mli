(** Distributed Turing machines (Section 4, Figure 6).

    A machine has three one-way infinite tapes over the alphabet
    {⊢, □, #, 0, 1}: a {e receiving} tape (read-only, reset with the
    incoming messages each round), an {e internal} tape (persistent
    across rounds), and a {e sending} tape (cleared each round; its
    content determines the outgoing messages).

    Executions proceed in synchronous rounds on a labelled graph under
    an identifier assignment (at least 1-locally unique) and a
    certificate-list assignment. Each round: (1) incoming messages are
    written to the receiving tape as [m1#...#md#], senders sorted by
    ascending identifier; (2) the machine runs from [q_start] (heads on
    the leftmost cells) until [q_pause] or [q_stop] — except that a
    node already in [q_stop] stays there; (3) the first [d] bit strings
    on the sending tape are delivered to the neighbours in identifier
    order, missing ones defaulting to the empty string.

    The machine accepts a graph when, upon termination, every node's
    internal tape spells the verdict "1" (symbols other than 0/1 are
    ignored). *)

type symbol = Lend  (** ⊢ *) | Blank  (** □ *) | Hash  (** # *) | Zero | One

type move = Left | Stay | Right

type state = int
(** Designated states: {!q_start} = 0, {!q_pause} = 1, {!q_stop} = 2. *)

val q_start : state
val q_pause : state
val q_stop : state

type action = {
  next : state;
  write_internal : symbol;  (** written at the internal head *)
  write_sending : symbol;  (** written at the sending head *)
  moves : move * move * move;  (** receiving, internal, sending *)
}
(** One entry of the transition function
    δ(q, a_rcv, a_int, a_snd) = (q', a'_int, a'_snd, m1, m2, m3).
    Following the paper's execution semantics ("the cell contents [of
    the receiving tape] remain the same at all steps"), the receiving
    tape is read-only. *)

type t = {
  name : string;
  delta : state -> symbol * symbol * symbol -> action;
}

exception Diverged of string
(** Raised when a node exceeds the step or round limit: the paper only
    considers machines whose executions always terminate. *)

type stats = {
  rounds : int;  (** round running time *)
  steps : int array array;  (** steps.(round - 1).(node): step running time *)
  max_space : int array array;  (** tape cells occupied, same indexing *)
  input_sizes : int array array;
      (** length of the initial receiving + internal tape contents of
          each node in each round: the quantity step time is measured
          against. *)
}

type result = { output : Lph_graph.Labeled_graph.t; stats : stats }

val run :
  ?round_limit:int ->
  ?step_limit:int ->
  t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  ?certs:string array ->
  unit ->
  result
(** Execute the machine. [certs] is the certificate-list assignment
    (default: empty strings). [step_limit] (default 100_000) bounds the
    local computation of one node in one round; [round_limit] (default
    1_000) bounds the number of rounds. Raises {!Diverged} when
    exceeded and [Invalid_argument] if two neighbours of some node
    share an identifier. *)

val accepts : result -> bool
(** Acceptance by unanimity: every node's verdict is "1". *)

val verdict : result -> int -> string
(** The individual verdict of a node (the 0/1 characters of its final
    internal tape). *)
