lib/structure/structure.ml: Array Format Fun List Printf Queue String
