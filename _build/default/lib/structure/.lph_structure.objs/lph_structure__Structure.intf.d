lib/structure/structure.mli: Format
