(** Relational structures of signature (m, n): a finite domain together
    with [m] unary relations and [n] binary relations (Section 3 of the
    paper). Graphs, pictures and words are all evaluated against logical
    formulas through their structural representations, which are values
    of this type.

    Elements are represented by integers [0 .. card - 1]; producers of
    structures (graphs, pictures, words) keep their own mapping from
    domain-specific entities to element indices. *)

type t

val create :
  card:int -> unary:int list array -> binary:(int * int) list array -> t
(** [create ~card ~unary ~binary] builds a structure with domain
    [0 .. card-1]. [unary.(i)] lists the elements in relation ⊙_{i+1};
    [binary.(i)] lists the pairs in relation ⇀_{i+1}. Raises
    [Invalid_argument] if [card < 1] or an element is out of range. *)

val card : t -> int
val signature : t -> int * int
(** [(m, n)]: number of unary and binary relations. *)

val mem_unary : t -> int -> int -> bool
(** [mem_unary s i e]: does element [e] belong to ⊙_i? (1-based [i].) *)

val mem_binary : t -> int -> int -> int -> bool
(** [mem_binary s i a b]: does [a ⇀_i b] hold? (1-based [i].) *)

val connected : t -> int -> int -> bool
(** [connected s a b]: the symmetric closure [a ⇌ b], i.e. [a ⇀_i b] or
    [b ⇀_i a] for some [i]. Used by bounded quantifiers. *)

val neighbours : t -> int -> int list
(** Elements connected (⇌) to the given element, sorted, without
    duplicates. The element itself is included only if it is related to
    itself by some relation. *)

val elements : t -> int list
val unary_members : t -> int -> int list
(** Elements of ⊙_i (1-based), sorted. *)

val binary_pairs : t -> int -> (int * int) list
(** Pairs of ⇀_i (1-based), sorted. *)

val distance : t -> int -> int -> int option
(** BFS distance in the Gaifman graph induced by ⇌;
    [None] if unreachable. *)

val ball : t -> radius:int -> int -> int list
(** Elements at ⇌-distance at most [radius] from the given element. *)

val equal : t -> t -> bool
(** Structural equality (same card, same relations extensionally). *)

val pp : Format.formatter -> t -> unit
