type t = {
  card : int;
  unary : bool array array; (* m x card *)
  binary : bool array array array; (* n x card x card *)
  sym_adj : int list array; (* Gaifman adjacency: symmetric closure of all binary relations *)
}

let create ~card ~unary ~binary =
  if card < 1 then invalid_arg "Structure.create: empty domain";
  let check e = if e < 0 || e >= card then invalid_arg "Structure.create: element out of range" in
  let m = Array.length unary and n = Array.length binary in
  let u = Array.init m (fun _ -> Array.make card false) in
  Array.iteri
    (fun i members ->
      List.iter
        (fun e ->
          check e;
          u.(i).(e) <- true)
        members)
    unary;
  let b = Array.init n (fun _ -> Array.make_matrix card card false) in
  Array.iteri
    (fun i pairs ->
      List.iter
        (fun (x, y) ->
          check x;
          check y;
          b.(i).(x).(y) <- true)
        pairs)
    binary;
  let sym = Array.make card [] in
  for e = 0 to card - 1 do
    let connected_to f =
      Array.exists (fun rel -> rel.(e).(f) || rel.(f).(e)) b
    in
    let acc = ref [] in
    for f = card - 1 downto 0 do
      if connected_to f then acc := f :: !acc
    done;
    sym.(e) <- !acc
  done;
  { card; unary = u; binary = b; sym_adj = sym }

let card s = s.card

let signature s = (Array.length s.unary, Array.length s.binary)

let check_index what count i =
  if i < 1 || i > count then invalid_arg (Printf.sprintf "Structure: %s relation index %d out of signature" what i)

let mem_unary s i e =
  check_index "unary" (Array.length s.unary) i;
  s.unary.(i - 1).(e)

let mem_binary s i a b =
  check_index "binary" (Array.length s.binary) i;
  s.binary.(i - 1).(a).(b)

let connected s a b = Array.exists (fun rel -> rel.(a).(b) || rel.(b).(a)) s.binary

let neighbours s e = s.sym_adj.(e)

let elements s = List.init s.card Fun.id

let unary_members s i =
  check_index "unary" (Array.length s.unary) i;
  List.filter (fun e -> s.unary.(i - 1).(e)) (elements s)

let binary_pairs s i =
  check_index "binary" (Array.length s.binary) i;
  let acc = ref [] in
  for a = s.card - 1 downto 0 do
    for b = s.card - 1 downto 0 do
      if s.binary.(i - 1).(a).(b) then acc := (a, b) :: !acc
    done
  done;
  !acc

let distance s a b =
  if a = b then Some 0
  else begin
    let dist = Array.make s.card (-1) in
    dist.(a) <- 0;
    let queue = Queue.create () in
    Queue.add a queue;
    let result = ref None in
    (try
       while not (Queue.is_empty queue) do
         let e = Queue.pop queue in
         List.iter
           (fun f ->
             if dist.(f) < 0 then begin
               dist.(f) <- dist.(e) + 1;
               if f = b then begin
                 result := Some dist.(f);
                 raise Exit
               end;
               Queue.add f queue
             end)
           s.sym_adj.(e)
       done
     with Exit -> ());
    !result
  end

let ball s ~radius e =
  let dist = Array.make s.card (-1) in
  dist.(e) <- 0;
  let queue = Queue.create () in
  Queue.add e queue;
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    if dist.(x) < radius then
      List.iter
        (fun y ->
          if dist.(y) < 0 then begin
            dist.(y) <- dist.(x) + 1;
            Queue.add y queue
          end)
        s.sym_adj.(x)
  done;
  List.filter (fun x -> dist.(x) >= 0) (elements s)

let equal s1 s2 =
  s1.card = s2.card
  && signature s1 = signature s2
  && s1.unary = s2.unary
  && s1.binary = s2.binary

let pp fmt s =
  let m, n = signature s in
  Format.fprintf fmt "@[<v>structure: card=%d signature=(%d,%d)" s.card m n;
  for i = 1 to m do
    Format.fprintf fmt "@,  unary %d: %s" i
      (String.concat " " (List.map string_of_int (unary_members s i)))
  done;
  for i = 1 to n do
    Format.fprintf fmt "@,  binary %d: %s" i
      (String.concat " " (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) (binary_pairs s i)))
  done;
  Format.fprintf fmt "@]"
