module G = Lph_graph.Labeled_graph
module C = Lph_util.Codec

type t = {
  nodes : (string * string) list;
  internal_edges : (string * string) list;
  boundary_edges : (string * string * string) list;
}

let codec : t C.t =
  C.map
    (fun (nodes, (internal_edges, boundary_edges)) -> { nodes; internal_edges; boundary_edges })
    (fun c -> (c.nodes, (c.internal_edges, c.boundary_edges)))
    (C.pair
       (C.list (C.pair C.string C.string))
       (C.pair (C.list (C.pair C.string C.string)) (C.list (C.triple C.string C.string C.string))))

let assemble g ~ids clusters =
  let n = G.card g in
  if Array.length clusters <> n then failwith "Cluster.assemble: wrong number of clusters";
  (* global index of every (owner, local name) *)
  let index = Hashtbl.create 64 in
  let owners = ref [] in
  let next = ref 0 in
  Array.iteri
    (fun u cluster ->
      if cluster.nodes = [] then failwith "Cluster.assemble: empty cluster";
      List.iter
        (fun (local, _) ->
          if Hashtbl.mem index (u, local) then
            failwith (Printf.sprintf "Cluster.assemble: duplicate local name %s in cluster %d" local u);
          Hashtbl.replace index (u, local) !next;
          owners := (u, local) :: !owners;
          incr next)
        cluster.nodes)
    clusters;
  let owners = Array.of_list (List.rev !owners) in
  let labels = Array.make !next "" in
  Array.iteri
    (fun u cluster ->
      List.iter (fun (local, label) -> labels.(Hashtbl.find index (u, local)) <- label) cluster.nodes)
    clusters;
  (* map identifiers back to node indices, per neighbourhood *)
  let node_of_ident u ident =
    match List.find_opt (fun v -> ids.(v) = ident) (G.neighbours g u) with
    | Some v -> v
    | None ->
        failwith
          (Printf.sprintf "Cluster.assemble: cluster %d references identifier %s of a non-neighbour" u
             ident)
  in
  let internal =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun u cluster ->
              List.map
                (fun (a, b) ->
                  let ia = Hashtbl.find index (u, a) and ib = Hashtbl.find index (u, b) in
                  (min ia ib, max ia ib))
                cluster.internal_edges)
            clusters))
  in
  (* boundary edges must be declared symmetrically *)
  let declared = Hashtbl.create 64 in
  Array.iteri
    (fun u cluster ->
      List.iter
        (fun (local, ident, remote) ->
          let v = node_of_ident u ident in
          let ia =
            match Hashtbl.find_opt index (u, local) with
            | Some i -> i
            | None -> failwith (Printf.sprintf "Cluster.assemble: unknown local name %s in cluster %d" local u)
          in
          let ib =
            match Hashtbl.find_opt index (v, remote) with
            | Some i -> i
            | None ->
                failwith
                  (Printf.sprintf "Cluster.assemble: cluster %d references unknown node %s of cluster %d"
                     u remote v)
          in
          Hashtbl.replace declared (ia, ib) ())
        cluster.boundary_edges)
    clusters;
  let boundary =
    Hashtbl.fold
      (fun (ia, ib) () acc ->
        if not (Hashtbl.mem declared (ib, ia)) then
          failwith "Cluster.assemble: inter-cluster edge declared by only one side";
        if ia < ib then (ia, ib) :: acc else acc)
      declared []
  in
  let edges = List.sort_uniq compare (internal @ boundary) in
  let graph =
    try G.make ~labels ~edges
    with G.Invalid msg -> failwith ("Cluster.assemble: invalid result graph: " ^ msg)
  in
  (graph, owners)

type reduction = {
  name : string;
  id_radius : int;
  gather_radius : int;
  compute : Lph_machine.Local_algo.ctx -> Lph_machine.Gather.ball -> t;
}

let algo_of reduction =
  Lph_machine.Gather.map_algo ~name:reduction.name ~radius:reduction.gather_radius ~levels:0
    ~f:(fun ctx ball -> C.encode_bits codec (reduction.compute ctx ball))

let run_reduction reduction g ~ids =
  Lph_machine.Runner.run (algo_of reduction) g ~ids ()

let apply reduction g ~ids =
  let result = run_reduction reduction g ~ids in
  let clusters =
    Array.init (G.card g) (fun u ->
        C.decode_bits codec (G.label result.Lph_machine.Runner.output u))
  in
  fst (assemble g ~ids clusters)

let stats reduction g ~ids = (run_reduction reduction g ~ids).Lph_machine.Runner.stats
