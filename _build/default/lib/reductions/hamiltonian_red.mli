(** The Hamiltonicity reductions of Section 8.

    {!reduction} (Proposition 16, Figures 2/8):
    ALL-SELECTED ≤ HAMILTONIAN via the Euler-tour technique — each node
    becomes a cycle of "ports" (two per incident edge, padded to length
    3), each original edge becomes two inter-port edges so a
    Hamiltonian cycle can traverse it twice, and each unselected node
    grows a degree-1 pendant that kills Hamiltonicity.

    {!co_reduction} (Proposition 17, Figure 9):
    NOT-ALL-SELECTED ≤ HAMILTONIAN — two copies ("top" and "bottom") of
    the Proposition 16 construction, each with three extra connector
    nodes; the copies can only be merged into one Hamiltonian cycle
    through the second vertical edge that unselected nodes provide. *)

val reduction : Cluster.reduction
val correct : Lph_graph.Labeled_graph.t -> ids:Lph_graph.Identifiers.t -> bool

val co_reduction : Cluster.reduction
val co_correct : Lph_graph.Labeled_graph.t -> ids:Lph_graph.Identifiers.t -> bool
