lib/reductions/to_all_selected.ml: Cluster List Lph_graph Lph_machine
