lib/reductions/eulerian_red.mli: Cluster Lph_graph
