lib/reductions/to_all_selected.mli: Cluster Lph_graph Lph_machine
