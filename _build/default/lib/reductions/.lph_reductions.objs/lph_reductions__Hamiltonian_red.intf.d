lib/reductions/hamiltonian_red.mli: Cluster Lph_graph
