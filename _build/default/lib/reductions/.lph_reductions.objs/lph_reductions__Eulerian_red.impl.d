lib/reductions/eulerian_red.ml: Cluster List Lph_graph Lph_hierarchy Lph_machine
