lib/reductions/cook_levin.ml: Array Cluster List Lph_boolean Lph_graph Lph_logic Lph_machine Lph_structure Printf String
