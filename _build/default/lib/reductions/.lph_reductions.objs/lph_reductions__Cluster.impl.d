lib/reductions/cluster.ml: Array Hashtbl List Lph_graph Lph_machine Lph_util Printf
