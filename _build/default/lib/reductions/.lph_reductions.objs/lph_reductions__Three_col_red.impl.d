lib/reductions/three_col_red.ml: Cluster List Lph_boolean Lph_graph Lph_hierarchy Lph_machine Printf
