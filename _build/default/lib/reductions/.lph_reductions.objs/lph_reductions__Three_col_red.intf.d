lib/reductions/three_col_red.mli: Cluster Lph_boolean Lph_graph
