lib/reductions/cook_levin.mli: Cluster Lph_boolean Lph_graph Lph_logic
