lib/reductions/simulate.ml: Array Cluster Hashtbl List Lph_graph Lph_machine Lph_util Printf String
