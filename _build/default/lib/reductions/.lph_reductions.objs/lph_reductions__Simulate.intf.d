lib/reductions/simulate.mli: Cluster Lph_graph Lph_machine Lph_util
