lib/reductions/hamiltonian_red.ml: Array Cluster List Lph_graph Lph_hierarchy Lph_machine Printf
