lib/reductions/cluster.mli: Lph_graph Lph_machine Lph_util
