module LA = Lph_machine.Local_algo
module Gather = Lph_machine.Gather
module G = Lph_graph.Labeled_graph

let neighbour_idents ball =
  List.sort Lph_graph.Identifiers.compare_id
    (List.filter_map
       (fun e -> if e.Gather.dist = 1 then Some e.Gather.ident else None)
       ball.Gather.entries)

let cycle_edges nodes =
  (* consecutive edges plus the closing edge; requires >= 3 nodes *)
  let arr = Array.of_list nodes in
  let n = Array.length arr in
  List.init n (fun i -> (arr.(i), arr.((i + 1) mod n)))

(* Port naming: cluster-local names derived from the neighbour's
   identifier, so that both endpoints of an inter-cluster edge can name
   each other's ports without further communication. *)
let to_port prefix w = prefix ^ "t:" ^ w

let from_port prefix w = prefix ^ "f:" ^ w

(* One port cycle (the Proposition 16 gadget): ports for each neighbour
   in identifier order, padded with dummies up to length 3. Returns the
   node names in cycle order. *)
let port_cycle prefix neighbours =
  let ports = List.concat_map (fun w -> [ to_port prefix w; from_port prefix w ]) neighbours in
  let dummies = List.init (max 0 (3 - List.length ports)) (fun i -> Printf.sprintf "%sd%d" prefix i) in
  ports @ dummies

let boundary_for prefix my_ident neighbours =
  List.concat_map
    (fun w ->
      [
        (to_port prefix w, w, from_port prefix my_ident);
        (from_port prefix w, w, to_port prefix my_ident);
      ])
    neighbours

let compute (ctx : LA.ctx) ball =
  ctx.LA.charge (List.length ball.Gather.entries);
  let selected = ctx.LA.label = "1" in
  let neighbours = neighbour_idents ball in
  let cycle = port_cycle "" neighbours in
  let bad_nodes, bad_edges =
    if selected then ([], []) else ([ "bad" ], [ ("bad", List.hd cycle) ])
  in
  {
    Cluster.nodes = List.map (fun name -> (name, "")) (cycle @ bad_nodes);
    internal_edges = cycle_edges cycle @ bad_edges;
    boundary_edges = boundary_for "" ctx.LA.ident neighbours;
  }

let reduction =
  { Cluster.name = "all-selected-to-hamiltonian"; id_radius = 2; gather_radius = 1; compute }

let correct g ~ids =
  let image = Cluster.apply reduction g ~ids in
  G.all_labels_one g = Lph_hierarchy.Properties.hamiltonian image

(* ------------------------------------------------------------------ *)
(* Proposition 17: two stacked copies with three connector nodes each. *)

let stacked_cycle prefix neighbours =
  let ports = List.concat_map (fun w -> [ to_port prefix w; from_port prefix w ]) neighbours in
  let connectors = List.init 3 (fun i -> Printf.sprintf "%sc%d" prefix (i + 1)) in
  ports @ connectors

let co_compute (ctx : LA.ctx) ball =
  ctx.LA.charge (List.length ball.Gather.entries);
  let selected = ctx.LA.label = "1" in
  let neighbours = neighbour_idents ball in
  let top = stacked_cycle "T" neighbours and bottom = stacked_cycle "B" neighbours in
  let verticals =
    (* Tc2-Bc2 keeps the result connected but cannot be used by a
       Hamiltonian cycle (its endpoints' cycle edges are forced by the
       degree-2 nodes Tc1/Tc3/Bc1/Bc3); Tc1-Bc1 exists only at
       unselected nodes and is what lets the two cycles merge. *)
    ("Tc2", "Bc2") :: (if selected then [] else [ ("Tc1", "Bc1") ])
  in
  {
    Cluster.nodes = List.map (fun name -> (name, "")) (top @ bottom);
    internal_edges = cycle_edges top @ cycle_edges bottom @ verticals;
    boundary_edges =
      boundary_for "T" ctx.LA.ident neighbours @ boundary_for "B" ctx.LA.ident neighbours;
  }

let co_reduction =
  { Cluster.name = "not-all-selected-to-hamiltonian"; id_radius = 2; gather_radius = 1; compute = co_compute }

let co_correct g ~ids =
  let image = Cluster.apply co_reduction g ~ids in
  (not (G.all_labels_one g)) = Lph_hierarchy.Properties.hamiltonian image
