module LA = Lph_machine.Local_algo
module Gather = Lph_machine.Gather

let neighbour_idents ball =
  List.filter_map
    (fun e -> if e.Gather.dist = 1 then Some e.Gather.ident else None)
    ball.Gather.entries

let compute (ctx : LA.ctx) ball =
  ctx.LA.charge (List.length ball.Gather.entries);
  let selected = ctx.LA.label = "1" in
  let neighbours = neighbour_idents ball in
  match neighbours with
  | [] ->
      (* single-node graph: K1 is Eulerian, P2 is not *)
      if selected then { Cluster.nodes = [ ("0", "") ]; internal_edges = []; boundary_edges = [] }
      else
        {
          Cluster.nodes = [ ("0", ""); ("1", "") ];
          internal_edges = [ ("0", "1") ];
          boundary_edges = [];
        }
  | _ ->
      {
        Cluster.nodes = [ ("0", ""); ("1", "") ];
        internal_edges = (if selected then [] else [ ("0", "1") ]);
        boundary_edges =
          List.concat_map
            (fun w -> [ ("0", w, "0"); ("0", w, "1"); ("1", w, "0"); ("1", w, "1") ])
            neighbours;
      }

let reduction =
  { Cluster.name = "all-selected-to-eulerian"; id_radius = 2; gather_radius = 1; compute }

let correct g ~ids =
  let image = Cluster.apply reduction g ~ids in
  Lph_graph.Labeled_graph.all_labels_one g = Lph_hierarchy.Properties.eulerian image
