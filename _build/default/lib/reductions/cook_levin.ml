module F = Lph_logic.Formula
module Syntax = Lph_logic.Syntax
module BF = Lph_boolean.Bool_formula
module S = Lph_structure.Structure
module Str = Lph_graph.Structural
module LA = Lph_machine.Local_algo
module Gather = Lph_machine.Gather

let node_element_name id = function
  | Str.Node _ -> "n" ^ id
  | Str.Bit (_, i) -> Printf.sprintf "b%s_%d" id i

let matrix_of sentence =
  if not (Syntax.in_sigma_lfo 1 sentence) then
    invalid_arg "Cook_levin: sentence must be in Sigma_1^LFO";
  let _, matrix = Syntax.so_prefix sentence in
  match matrix with
  | F.Forall (x, bf) -> (x, bf)
  | _ -> invalid_arg "Cook_levin: matrix must be of the form ∀x φ"

(* The translation τ_σ of Theorem 19: first-order structure queries are
   replaced by their truth values, relation atoms by Boolean variables
   named after the elements' identifiers, and bounded quantifiers by
   finite disjunctions/conjunctions over ⇌-neighbours. *)
let rec tau s ~name sigma (phi : F.t) : BF.t =
  let lookup y =
    match List.assoc_opt y sigma with
    | Some e -> e
    | None -> invalid_arg (Printf.sprintf "Cook_levin: unbound variable %s" y)
  in
  match phi with
  | F.True -> BF.Const true
  | F.False -> BF.Const false
  | F.Unary (i, y) -> BF.Const (S.mem_unary s i (lookup y))
  | F.Binary (i, y, z) -> BF.Const (S.mem_binary s i (lookup y) (lookup z))
  | F.Eq (y, z) -> BF.Const (lookup y = lookup z)
  | F.App (r, ys) ->
      BF.Var (Printf.sprintf "%s(%s)" r (String.concat "," (List.map (fun y -> name (lookup y)) ys)))
  | F.Not f -> BF.Not (tau s ~name sigma f)
  | F.Or (f, g) -> BF.Or (tau s ~name sigma f, tau s ~name sigma g)
  | F.And (f, g) -> BF.And (tau s ~name sigma f, tau s ~name sigma g)
  | F.Implies (f, g) -> BF.implies (tau s ~name sigma f) (tau s ~name sigma g)
  | F.Iff (f, g) -> BF.iff (tau s ~name sigma f) (tau s ~name sigma g)
  | F.Exists_near (z, y, f) ->
      BF.disj (List.map (fun a -> tau s ~name ((z, a) :: sigma) f) (S.neighbours s (lookup y)))
  | F.Forall_near (z, y, f) ->
      BF.conj (List.map (fun a -> tau s ~name ((z, a) :: sigma) f) (S.neighbours s (lookup y)))
  | F.Exists _ | F.Forall _ | F.Exists_so _ | F.Forall_so _ ->
      invalid_arg "Cook_levin: matrix is not in the bounded fragment"

let translate_with sentence ~repr ~ids u =
  let x, bf = matrix_of sentence in
  let s = Str.structure repr in
  let name e =
    match Str.of_index repr e with
    | Str.Node v as el -> node_element_name ids.(v) el
    | Str.Bit (v, _) as el -> node_element_name ids.(v) el
  in
  BF.conj (List.map (fun a -> tau s ~name [ (x, a) ] bf) (Str.node_elements repr u))

let translate_node sentence ~repr ~ids u = translate_with sentence ~repr ~ids u

let reduce sentence g ~ids =
  let repr = Str.of_graph g in
  let formulas =
    Array.init (Lph_graph.Labeled_graph.card g) (fun u -> translate_with sentence ~repr ~ids u)
  in
  Lph_boolean.Boolean_graph.make g formulas

let reduction sentence =
  let x, bf = matrix_of sentence in
  ignore x;
  let radius = Syntax.visibility_radius bf in
  let compute (ctx : LA.ctx) ball =
    let sub, ball_ids, _, centre = Gather.reconstruct ball in
    ctx.LA.charge (Lph_graph.Labeled_graph.card sub);
    let repr = Str.of_graph sub in
    let formula = translate_with sentence ~repr ~ids:ball_ids centre in
    ctx.LA.charge (BF.size formula);
    let neighbours =
      List.filter_map
        (fun e -> if e.Gather.dist = 1 then Some e.Gather.ident else None)
        ball.Gather.entries
    in
    {
      Cluster.nodes = [ ("0", BF.to_label formula) ];
      internal_edges = [];
      boundary_edges = List.map (fun w -> ("0", w, "0")) neighbours;
    }
  in
  {
    Cluster.name = "cook-levin";
    id_radius = radius + 2;
    gather_radius = radius + 1;
    compute;
  }

let image_graph sentence g ~ids = Cluster.apply (reduction sentence) g ~ids
