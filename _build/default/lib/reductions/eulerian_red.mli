(** The reduction ALL-SELECTED ≤ EULERIAN of Proposition 15
    (Figure 7): every node is doubled, every edge quadrupled, and each
    unselected node gets one extra "vertical" edge between its two
    copies — making its copies' degrees odd. The transformed graph is
    Eulerian iff all original labels are "1". *)

val reduction : Cluster.reduction

val correct : Lph_graph.Labeled_graph.t -> ids:Lph_graph.Identifiers.t -> bool
(** Check the defining equivalence
    [G ∈ ALL-SELECTED ⟺ f(G) ∈ EULERIAN] on an instance. *)
