(** The distributed Cook–Levin theorem (Theorem 19): every Σ1^LFO-
    definable graph property reduces to SAT-GRAPH by a
    topology-preserving local-polynomial reduction.

    Given a sentence ∃R̄ ∀x φ (φ in BF) and an input graph, each node u
    is relabelled with the Boolean formula
    [φ_u = ⋀ over u's elements a of τ(x↦a)(φ)], where the translation τ
    replaces relation-free atoms by their truth value in $G, turns each
    atom R(ā) into the Boolean variable P_{R(ā)} (elements named by
    identifiers), and expands bounded quantifiers into finite
    disjunctions/conjunctions over ⇌-neighbours.

    The identifier assignment must be (r+2)-locally unique, where r is
    the visibility radius of φ: the distributed transformation gathers
    radius r+1 and names elements by identifiers.

    Caveat carried over from the paper: SAT-GRAPH only enforces
    valuation consistency between {e adjacent} nodes, so the
    equivalence relies on each Boolean variable's mention set being
    connected — which holds for the formulas considered here (and is
    cross-checked against direct model checking by the tests). *)

val node_element_name : string -> Lph_graph.Structural.element -> string
(** Deterministic element naming from identifiers: [node_element_name
    id (Node _)] and [node_element_name id (Bit (_, i))]. *)

val translate_node :
  Lph_logic.Formula.t ->
  repr:Lph_graph.Structural.repr ->
  ids:Lph_graph.Identifiers.t ->
  int ->
  Lph_boolean.Bool_formula.t
(** [translate_node phi ~repr ~ids u] is φ_u: the matrix φ (a BF
    formula with one free variable) instantiated at every element of
    node [u]. *)

val reduce :
  Lph_logic.Formula.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  Lph_boolean.Boolean_graph.t
(** Centralised reference construction. The sentence must be in
    Σ1^LFO. *)

val reduction : Lph_logic.Formula.t -> Cluster.reduction
(** The same transformation as a distributed machine (each cluster is a
    single relabelled node: topology-preserving). *)

val image_graph :
  Lph_logic.Formula.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  Lph_boolean.Boolean_graph.t
(** Run the distributed reduction and assemble (should agree with
    {!reduce}; tests check it). *)
