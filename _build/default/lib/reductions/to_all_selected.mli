(** Remark 14: ALL-SELECTED is LP-complete under topology-preserving
    reductions — any decided property reduces to it by running the
    decider and relabelling every node with its verdict. *)

val reduction :
  name:string ->
  radius:int ->
  decide:(Lph_machine.Local_algo.ctx -> Lph_machine.Gather.ball -> bool) ->
  Cluster.reduction
(** The relabelling reduction for a ball-based decider: each cluster is
    a single node labelled "1"/"0", with the original edges. The
    defining property: G is accepted by the decider iff the image is in
    ALL-SELECTED. *)

val correct :
  Cluster.reduction ->
  decider:Lph_machine.Local_algo.packed ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  bool
(** Check the defining equivalence on an instance, against running the
    decider directly. *)
