(** The reductions behind Theorem 20: SAT-GRAPH ≤ 3-SAT-GRAPH (per-node
    Tseytin, with fresh variable names derived from identifiers) and
    3-SAT-GRAPH ≤ 3-COLORABLE (Figures 3/10).

    The colourability gadgets per cluster: a palette triangle
    (T, F, B), a literal triangle (P, ¬P, B) per variable, the standard
    two-stage OR gadget per clause with its output pinned to the colour
    of T, and — towards each neighbouring cluster — colour-equality
    connectors for F, B and every shared variable, so that adjacent
    clusters agree on the palette and on shared truth values. *)

val to_3sat : Cluster.reduction
(** SAT-GRAPH → 3-SAT-GRAPH (topology-preserving). *)

val to_3sat_correct : Lph_boolean.Boolean_graph.t -> ids:Lph_graph.Identifiers.t -> bool
(** Image is a 3-CNF graph and equisatisfiable with the input. *)

val to_three_col : Cluster.reduction
(** 3-SAT-GRAPH → 3-COLORABLE. Raises if a label is not 3-CNF-shaped. *)

val to_three_col_correct : Lph_boolean.Boolean_graph.t -> ids:Lph_graph.Identifiers.t -> bool
(** [G ∈ SAT-GRAPH ⟺ f(G) ∈ 3-COLORABLE] on this instance. *)

val full_chain :
  Lph_boolean.Boolean_graph.t -> ids:Lph_graph.Identifiers.t -> Lph_graph.Labeled_graph.t
(** SAT-GRAPH → 3-SAT-GRAPH → 3-COLORABLE, end to end (the second
    reduction runs on the image of the first, under the same
    identifiers). *)
