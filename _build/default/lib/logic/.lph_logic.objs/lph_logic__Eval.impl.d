lib/logic/eval.ml: Formula List Lph_graph Lph_structure Lph_util Printf Relation Seq Syntax
