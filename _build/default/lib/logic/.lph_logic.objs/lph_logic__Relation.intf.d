lib/logic/relation.mli:
