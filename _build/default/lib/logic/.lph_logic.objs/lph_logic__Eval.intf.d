lib/logic/eval.mli: Formula Lph_graph Lph_structure Relation
