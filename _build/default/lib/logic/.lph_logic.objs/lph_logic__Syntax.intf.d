lib/logic/syntax.mli: Formula
