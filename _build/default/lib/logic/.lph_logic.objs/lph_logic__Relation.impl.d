lib/logic/relation.ml: Set
