lib/logic/formula.ml: Format Hashtbl List Printf Set String
