lib/logic/graph_formulas.mli: Eval Formula Lph_graph
