lib/logic/syntax.ml: Formula List
