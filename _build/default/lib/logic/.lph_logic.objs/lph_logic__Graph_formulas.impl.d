lib/logic/graph_formulas.ml: Eval Formula List Lph_graph Lph_util Printf Relation Seq
