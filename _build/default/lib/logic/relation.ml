module S = Set.Make (struct
  type t = int list

  let compare = compare
end)

type t = S.t

let empty = S.empty
let of_list = S.of_list
let to_list = S.elements
let mem = S.mem
let add = S.add
let cardinal = S.cardinal
let equal = S.equal
let union = S.union
