type fo_var = string
type so_var = string

type t =
  | True
  | False
  | Unary of int * fo_var
  | Binary of int * fo_var * fo_var
  | Eq of fo_var * fo_var
  | App of so_var * fo_var list
  | Not of t
  | Or of t * t
  | And of t * t
  | Implies of t * t
  | Iff of t * t
  | Exists of fo_var * t
  | Forall of fo_var * t
  | Exists_near of fo_var * fo_var * t
  | Forall_near of fo_var * fo_var * t
  | Exists_so of so_var * int * t
  | Forall_so of so_var * int * t

let conj = function [] -> True | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let disj = function [] -> False | f :: fs -> List.fold_left (fun acc g -> Or (acc, g)) f fs

let exists_many xs phi = List.fold_right (fun x acc -> Exists (x, acc)) xs phi

let forall_many xs phi = List.fold_right (fun x acc -> Forall (x, acc)) xs phi

let exists_so_many rs phi = List.fold_right (fun (r, k) acc -> Exists_so (r, k, acc)) rs phi

let forall_so_many rs phi = List.fold_right (fun (r, k) acc -> Forall_so (r, k, acc)) rs phi

module Sset = Set.Make (String)

let rec vars_fo_all = function
  (* all first-order variables, free or bound *)
  | True | False -> Sset.empty
  | Unary (_, x) -> Sset.singleton x
  | Binary (_, x, y) | Eq (x, y) -> Sset.of_list [ x; y ]
  | App (_, xs) -> Sset.of_list xs
  | Not f -> vars_fo_all f
  | Or (f, g) | And (f, g) | Implies (f, g) | Iff (f, g) -> Sset.union (vars_fo_all f) (vars_fo_all g)
  | Exists (x, f) | Forall (x, f) -> Sset.add x (vars_fo_all f)
  | Exists_near (x, y, f) | Forall_near (x, y, f) -> Sset.add x (Sset.add y (vars_fo_all f))
  | Exists_so (_, _, f) | Forall_so (_, _, f) -> vars_fo_all f

let rec free_fo_set = function
  | True | False -> Sset.empty
  | Unary (_, x) -> Sset.singleton x
  | Binary (_, x, y) | Eq (x, y) -> Sset.of_list [ x; y ]
  | App (_, xs) -> Sset.of_list xs
  | Not f -> free_fo_set f
  | Or (f, g) | And (f, g) | Implies (f, g) | Iff (f, g) -> Sset.union (free_fo_set f) (free_fo_set g)
  | Exists (x, f) | Forall (x, f) -> Sset.remove x (free_fo_set f)
  | Exists_near (x, y, f) | Forall_near (x, y, f) -> Sset.add y (Sset.remove x (free_fo_set f))
  | Exists_so (_, _, f) | Forall_so (_, _, f) -> free_fo_set f

let free_fo f = Sset.elements (free_fo_set f)

let free_so f =
  let table = Hashtbl.create 8 in
  let bound = Hashtbl.create 8 in
  let note r k =
    if not (Hashtbl.mem bound r) then
      match Hashtbl.find_opt table r with
      | None -> Hashtbl.replace table r k
      | Some k' ->
          if k <> k' then invalid_arg (Printf.sprintf "Formula.free_so: %s used at arities %d and %d" r k' k)
  in
  let rec go = function
    | True | False | Unary _ | Binary _ | Eq _ -> ()
    | App (r, xs) -> note r (List.length xs)
    | Not f -> go f
    | Or (f, g) | And (f, g) | Implies (f, g) | Iff (f, g) ->
        go f;
        go g
    | Exists (_, f) | Forall (_, f) | Exists_near (_, _, f) | Forall_near (_, _, f) -> go f
    | Exists_so (r, _, f) | Forall_so (r, _, f) ->
        let was_bound = Hashtbl.mem bound r in
        Hashtbl.replace bound r ();
        go f;
        if not was_bound then Hashtbl.remove bound r
  in
  go f;
  List.sort compare (Hashtbl.fold (fun r k acc -> (r, k) :: acc) table [])

let rec subst_fo phi x y =
  let sub v = if v = x then y else v in
  match phi with
  | True | False -> phi
  | Unary (i, v) -> Unary (i, sub v)
  | Binary (i, v, w) -> Binary (i, sub v, sub w)
  | Eq (v, w) -> Eq (sub v, sub w)
  | App (r, vs) -> App (r, List.map sub vs)
  | Not f -> Not (subst_fo f x y)
  | Or (f, g) -> Or (subst_fo f x y, subst_fo g x y)
  | And (f, g) -> And (subst_fo f x y, subst_fo g x y)
  | Implies (f, g) -> Implies (subst_fo f x y, subst_fo g x y)
  | Iff (f, g) -> Iff (subst_fo f x y, subst_fo g x y)
  | Exists (v, f) -> quant_subst (fun v f -> Exists (v, f)) v f x y
  | Forall (v, f) -> quant_subst (fun v f -> Forall (v, f)) v f x y
  | Exists_near (v, w, f) ->
      if v = x then Exists_near (v, sub w, f)
      else begin
        check_capture v f x y;
        Exists_near (v, sub w, subst_fo f x y)
      end
  | Forall_near (v, w, f) ->
      if v = x then Forall_near (v, sub w, f)
      else begin
        check_capture v f x y;
        Forall_near (v, sub w, subst_fo f x y)
      end
  | Exists_so (r, k, f) -> Exists_so (r, k, subst_fo f x y)
  | Forall_so (r, k, f) -> Forall_so (r, k, subst_fo f x y)

and check_capture v f x y =
  if v = y && Sset.mem x (free_fo_set f) then
    invalid_arg (Printf.sprintf "Formula.subst_fo: substituting %s for %s captures under binder %s" y x v)

and quant_subst mk v f x y =
  if v = x then mk v f
  else begin
    check_capture v f x y;
    mk v (subst_fo f x y)
  end

let fresh_var prefix formulas =
  let used = List.fold_left (fun acc f -> Sset.union acc (vars_fo_all f)) Sset.empty formulas in
  let rec go i =
    let candidate = Printf.sprintf "%s%d" prefix i in
    if Sset.mem candidate used then go (i + 1) else candidate
  in
  if Sset.mem prefix used then go 0 else prefix

(* ∃x ⇌≤0 y φ  =  φ[x↦y]
   ∃x ⇌≤r+1 y φ  =  ∃x ⇌≤r y (φ ∨ ∃x' ⇌ x φ[x↦x'])   (Section 5.1) *)
let rec exists_within ~radius x y phi =
  if radius < 0 then invalid_arg "Formula.exists_within: negative radius"
  else if radius = 0 then subst_fo phi x y
  else begin
    let x' = fresh_var (x ^ "'") [ phi; Eq (x, y) ] in
    let hop = Exists_near (x', x, subst_fo phi x x') in
    exists_within ~radius:(radius - 1) x y (Or (phi, hop))
  end

let rec forall_within ~radius x y phi =
  if radius < 0 then invalid_arg "Formula.forall_within: negative radius"
  else if radius = 0 then subst_fo phi x y
  else begin
    let x' = fresh_var (x ^ "'") [ phi; Eq (x, y) ] in
    let hop = Forall_near (x', x, subst_fo phi x x') in
    forall_within ~radius:(radius - 1) x y (And (phi, hop))
  end

let rec negate = function
  | True -> False
  | False -> True
  | (Unary _ | Binary _ | Eq _ | App _) as atom -> Not atom
  | Not f -> f
  | Or (f, g) -> And (negate f, negate g)
  | And (f, g) -> Or (negate f, negate g)
  | Implies (f, g) -> And (f, negate g)
  | Iff (f, g) -> Iff (f, negate g)
  | Exists (x, f) -> Forall (x, negate f)
  | Forall (x, f) -> Exists (x, negate f)
  | Exists_near (x, y, f) -> Forall_near (x, y, negate f)
  | Forall_near (x, y, f) -> Exists_near (x, y, negate f)
  | Exists_so (r, k, f) -> Forall_so (r, k, negate f)
  | Forall_so (r, k, f) -> Exists_so (r, k, negate f)

let rec size = function
  | True | False | Unary _ | Binary _ | Eq _ | App _ -> 1
  | Not f | Exists (_, f) | Forall (_, f) | Exists_near (_, _, f) | Forall_near (_, _, f)
  | Exists_so (_, _, f) | Forall_so (_, _, f) ->
      1 + size f
  | Or (f, g) | And (f, g) | Implies (f, g) | Iff (f, g) -> 1 + size f + size g

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "⊤"
  | False -> Format.pp_print_string fmt "⊥"
  | Unary (i, x) -> Format.fprintf fmt "⊙%d %s" i x
  | Binary (i, x, y) -> Format.fprintf fmt "%s ⇀%d %s" x i y
  | Eq (x, y) -> Format.fprintf fmt "%s ≐ %s" x y
  | App (r, xs) -> Format.fprintf fmt "%s(%s)" r (String.concat "," xs)
  | Not f -> Format.fprintf fmt "¬%a" pp_atomish f
  | Or (f, g) -> Format.fprintf fmt "(%a ∨ %a)" pp f pp g
  | And (f, g) -> Format.fprintf fmt "(%a ∧ %a)" pp f pp g
  | Implies (f, g) -> Format.fprintf fmt "(%a → %a)" pp f pp g
  | Iff (f, g) -> Format.fprintf fmt "(%a ↔ %a)" pp f pp g
  | Exists (x, f) -> Format.fprintf fmt "∃%s %a" x pp_atomish f
  | Forall (x, f) -> Format.fprintf fmt "∀%s %a" x pp_atomish f
  | Exists_near (x, y, f) -> Format.fprintf fmt "∃%s⇌%s %a" x y pp_atomish f
  | Forall_near (x, y, f) -> Format.fprintf fmt "∀%s⇌%s %a" x y pp_atomish f
  | Exists_so (r, k, f) -> Format.fprintf fmt "∃%s:%d %a" r k pp_atomish f
  | Forall_so (r, k, f) -> Format.fprintf fmt "∀%s:%d %a" r k pp_atomish f

and pp_atomish fmt f =
  match f with
  | True | False | Unary _ | Binary _ | Eq _ | App _ | Not _ -> pp fmt f
  | _ -> Format.fprintf fmt "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f
