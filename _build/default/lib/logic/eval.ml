module S = Lph_structure.Structure

type relation = Relation.t

type env = { fo : (string * int) list; so : (string * Relation.t) list }

let empty_env = { fo = []; so = [] }

let bind_fo env x e = { env with fo = (x, e) :: env.fo }

let bind_so env r rel = { env with so = (r, rel) :: env.so }

let lookup_fo env x =
  match List.assoc_opt x env.fo with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Eval: unbound first-order variable %s" x)

let lookup_so env r =
  match List.assoc_opt r env.so with
  | Some rel -> rel
  | None -> invalid_arg (Printf.sprintf "Eval: unbound second-order variable %s" r)

type candidates = Subsets of int list list | Explicit of Relation.t list

type so_universe = S.t -> Formula.so_var -> int -> candidates

let full_universe s _ arity =
  Subsets (List.of_seq (Lph_util.Combinat.tuples (S.elements s) arity))

let local_universe ~radius s _ arity =
  if arity = 0 then Subsets [ [] ]
  else
    Subsets
      (List.concat_map
         (fun head ->
           let nearby = S.ball s ~radius head in
           List.of_seq
             (Seq.map (fun tail -> head :: tail) (Lph_util.Combinat.tuples nearby (arity - 1))))
         (S.elements s))

exception Universe_too_large of string * int

let rec eval_formula ~so_universe ~max_universe s env (phi : Formula.t) =
  let eval env phi = eval_formula ~so_universe ~max_universe s env phi in
  match phi with
  | True -> true
  | False -> false
  | Unary (i, x) -> S.mem_unary s i (lookup_fo env x)
  | Binary (i, x, y) -> S.mem_binary s i (lookup_fo env x) (lookup_fo env y)
  | Eq (x, y) -> lookup_fo env x = lookup_fo env y
  | App (r, xs) -> Relation.mem (List.map (lookup_fo env) xs) (lookup_so env r)
  | Not f -> not (eval env f)
  | Or (f, g) -> eval env f || eval env g
  | And (f, g) -> eval env f && eval env g
  | Implies (f, g) -> (not (eval env f)) || eval env g
  | Iff (f, g) -> eval env f = eval env g
  | Exists (x, f) -> List.exists (fun e -> eval (bind_fo env x e) f) (S.elements s)
  | Forall (x, f) -> List.for_all (fun e -> eval (bind_fo env x e) f) (S.elements s)
  | Exists_near (x, y, f) ->
      List.exists (fun e -> eval (bind_fo env x e) f) (S.neighbours s (lookup_fo env y))
  | Forall_near (x, y, f) ->
      List.for_all (fun e -> eval (bind_fo env x e) f) (S.neighbours s (lookup_fo env y))
  | Exists_so (r, k, f) ->
      Seq.exists (fun rel -> eval (bind_so env r rel) f) (interpretations ~so_universe ~max_universe s r k)
  | Forall_so (r, k, f) ->
      Seq.for_all (fun rel -> eval (bind_so env r rel) f) (interpretations ~so_universe ~max_universe s r k)

and interpretations ~so_universe ~max_universe s r k =
  match so_universe s r k with
  | Subsets tuples ->
      let size = List.length tuples in
      if size > max_universe then raise (Universe_too_large (r, size));
      Seq.map Relation.of_list (Lph_util.Combinat.subsets tuples)
  | Explicit relations ->
      let count = List.length relations in
      if count > 1 lsl (min 40 max_universe) then raise (Universe_too_large (r, count));
      List.to_seq relations

let eval ?(so_universe = full_universe) ?(max_universe = 24) s env phi =
  eval_formula ~so_universe ~max_universe s env phi

let holds ?so_universe ?max_universe s phi =
  if not (Syntax.is_sentence phi) then invalid_arg "Eval.holds: not a sentence";
  eval ?so_universe ?max_universe s empty_env phi

let holds_graph ?so_universe ?max_universe g phi =
  let repr = Lph_graph.Structural.of_graph g in
  holds ?so_universe ?max_universe (Lph_graph.Structural.structure repr) phi
