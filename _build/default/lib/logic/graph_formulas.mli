(** The example formulas of Section 5.2, expressed over structural
    representations of labelled graphs, together with the helper
    predicates (IsNode, IsBit, node-restricted quantifiers) and the
    PointsTo spanning-forest schema of Example 4.

    Conventions: second-order variable names are fixed per formula (P,
    X, Y, H, S, C, C0, C1, ...). All sentences here apply second-order
    variables to node-bound first-order variables only, so their truth
    values are invariant under restricting second-order quantification
    to tuples of node elements — which is what {!node_universe}
    provides and what makes the formulas practically checkable. *)

open Formula

(** {1 Basic predicates (Section 5.1)} *)

val is_node : fo_var -> t
(** IsNode(x): x has no ⇀2-predecessor. *)

val is_bit0 : fo_var -> t
val is_bit1 : fo_var -> t

val exists_node : fo_var -> t -> t
(** ∃°x φ = ∃x (IsNode(x) ∧ φ). *)

val forall_node : fo_var -> t -> t
val exists_node_near : fo_var -> fo_var -> t -> t
(** ∃°x ⇌ y φ. *)

val forall_node_near : fo_var -> fo_var -> t -> t
val exists_node_within : radius:int -> fo_var -> fo_var -> t -> t
(** ∃°x ⇌≤r y φ. *)

val forall_node_within : radius:int -> fo_var -> fo_var -> t -> t

(** {1 Section 5.2 example formulas} *)

val is_selected : fo_var -> t
(** The node is labelled with exactly the string "1" (Example 2). *)

val all_selected : t
(** LFO sentence defining ALL-SELECTED (Example 2). *)

val well_colored : colors:so_var list -> fo_var -> t
(** WellColored(x) of Example 3, generalised to any palette. *)

val k_colorable : int -> t
(** Σ1^LFO sentence defining k-COLORABLE (Example 3 uses k = 3);
    colour variables are named C0, C1, ... *)

val three_colorable : t
val two_colorable : t

val points_to : theta:(fo_var -> t) -> fo_var -> t
(** The formula schema PointsTo[θ](x) of Example 4 (free second-order
    variables P : 2, X : 1, Y : 1). *)

val not_all_selected : t
(** Σ3^LFO sentence defining NOT-ALL-SELECTED (Example 4). *)

val non_3_colorable : t
(** Π4^LFO sentence (Example 5). *)

val degree_two : fo_var -> t
val in_agreement_on : so_var -> fo_var -> t
val discontinuity_at : fo_var -> t

val hamiltonian : t
(** Σ5^LFO sentence defining HAMILTONIAN (Example 6). *)

val non_hamiltonian : t
(** Π4^LFO sentence defining NON-HAMILTONIAN (Example 7). *)

(** {1 Evaluation support} *)

val node_universe : ?radius:int -> Lph_graph.Labeled_graph.t -> Eval.so_universe
(** Second-order universe containing only tuples of node elements whose
    components lie within graph distance [radius] (default 1) of the
    first component. Sound for all sentences in this module (see module
    header); the radius-1 default suffices because P and H facts are
    only ever read between ⇌-adjacent nodes. *)

val parent_functions : Lph_graph.Labeled_graph.t -> Eval.relation list
(** All "parent pointer" relations: each node related to exactly one
    node of its closed 1-neighbourhood. Complete candidates for the
    existentially quantified variable P: a relation satisfying
    ∀°x UniqueParent(x) reads identically to its functional core. *)

val symmetric_edge_subsets : Lph_graph.Labeled_graph.t -> Eval.relation list
(** All symmetric subsets of the edge relation. Complete candidates for
    the existentially quantified variable H of Example 6: DegreeTwo
    forbids asymmetric readable pairs. *)

val smart_universe : Lph_graph.Labeled_graph.t -> Eval.so_universe
(** {!node_universe} refined with {!parent_functions} for P and
    {!symmetric_edge_subsets} for H. Tests cross-check it against
    {!node_universe} on tiny graphs. *)

val holds : Lph_graph.Labeled_graph.t -> t -> bool
(** Evaluate one of this module's sentences on a graph, with
    {!smart_universe}. *)
