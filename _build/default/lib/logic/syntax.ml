open Formula

type quantifier = Ex | All

let rec is_fo = function
  | True | False | Unary _ | Binary _ | Eq _ | App _ -> true
  | Not f -> is_fo f
  | Or (f, g) | And (f, g) | Implies (f, g) | Iff (f, g) -> is_fo f && is_fo g
  | Exists (_, f) | Forall (_, f) | Exists_near (_, _, f) | Forall_near (_, _, f) -> is_fo f
  | Exists_so _ | Forall_so _ -> false

let rec is_bf = function
  | True | False | Unary _ | Binary _ | Eq _ | App _ -> true
  | Not f -> is_bf f
  | Or (f, g) | And (f, g) | Implies (f, g) | Iff (f, g) -> is_bf f && is_bf g
  | Exists_near (x, y, f) | Forall_near (x, y, f) -> x <> y && is_bf f
  | Exists _ | Forall _ | Exists_so _ | Forall_so _ -> false

let is_lfo = function Forall (_, f) -> is_bf f | _ -> false

let so_prefix formula =
  let rec go acc = function
    | Exists_so (r, k, f) -> go ((Ex, r, k) :: acc) f
    | Forall_so (r, k, f) -> go ((All, r, k) :: acc) f
    | matrix -> (List.rev acc, matrix)
  in
  go [] formula

let so_blocks formula =
  let prefix, matrix = so_prefix formula in
  let rec collapse = function
    | [] -> []
    | (q, _, _) :: rest -> begin
        match collapse rest with
        | q' :: tail when q' = q -> q' :: tail
        | blocks -> q :: blocks
      end
  in
  (collapse prefix, matrix)

(* A block sequence of length k (alternating by construction) fits into an
   alternating template of length l starting with polarity [first] iff
   k <= l, and when k = l the first block must match [first]. *)
let fits_template ~first ~levels blocks =
  let k = List.length blocks in
  k <= levels
  && (k < levels || match blocks with [] -> true | b :: _ -> b = first)

let in_hierarchy ~matrix_ok ~first levels formula =
  if levels < 0 then invalid_arg "Syntax: negative hierarchy level";
  let blocks, matrix = so_blocks formula in
  fits_template ~first ~levels blocks && matrix_ok matrix

let in_sigma_lfo levels f = in_hierarchy ~matrix_ok:is_lfo ~first:Ex levels f

let in_pi_lfo levels f = in_hierarchy ~matrix_ok:is_lfo ~first:All levels f

let in_sigma_fo levels f = in_hierarchy ~matrix_ok:is_fo ~first:Ex levels f

let in_pi_fo levels f = in_hierarchy ~matrix_ok:is_fo ~first:All levels f

let rec is_monadic = function
  | True | False | Unary _ | Binary _ | Eq _ | App _ -> true
  | Not f -> is_monadic f
  | Or (f, g) | And (f, g) | Implies (f, g) | Iff (f, g) -> is_monadic f && is_monadic g
  | Exists (_, f) | Forall (_, f) | Exists_near (_, _, f) | Forall_near (_, _, f) -> is_monadic f
  | Exists_so (_, k, f) | Forall_so (_, k, f) -> k = 1 && is_monadic f

let is_sentence f = free_fo f = [] && free_so f = []

let rec visibility_radius = function
  | True | False | Unary _ | Binary _ | Eq _ | App _ -> 0
  | Not f | Exists (_, f) | Forall (_, f) | Exists_so (_, _, f) | Forall_so (_, _, f) ->
      visibility_radius f
  | Or (f, g) | And (f, g) | Implies (f, g) | Iff (f, g) ->
      max (visibility_radius f) (visibility_radius g)
  | Exists_near (_, _, f) | Forall_near (_, _, f) -> 1 + visibility_radius f

let level formula =
  let blocks, _ = so_blocks formula in
  (List.length blocks, match blocks with [] -> None | b :: _ -> Some b)
