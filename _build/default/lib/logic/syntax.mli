(** Syntactic classification of formulas into the paper's logics
    (Section 5.1): first-order logic FO, the bounded fragment BF, local
    first-order logic LFO, and the two second-order hierarchies
    {Σℓ^FO, Πℓ^FO} and {Σℓ^LFO, Πℓ^LFO}, plus their monadic variants. *)

type quantifier = Ex | All

val is_fo : Formula.t -> bool
(** No second-order quantifiers (free second-order variables and both
    bounded and unbounded first-order quantification are allowed: a
    bounded quantifier is FO-definable). *)

val is_bf : Formula.t -> bool
(** The bounded fragment: no second-order quantifiers and every
    first-order quantifier bounded ([Exists_near]/[Forall_near]). *)

val is_lfo : Formula.t -> bool
(** LFO: a single universal unbounded first-order quantifier applied to
    a BF formula ([Forall (x, bf)]). *)

val so_prefix : Formula.t -> (quantifier * Formula.so_var * int) list * Formula.t
(** Split off the maximal leading sequence of second-order quantifiers. *)

val so_blocks : Formula.t -> quantifier list * Formula.t
(** The leading second-order quantifier prefix collapsed into maximal
    alternating blocks (e.g. ∃R∃S∀T φ has blocks [[Ex; All]]). *)

val in_sigma_lfo : int -> Formula.t -> bool
(** Membership in Σℓ^LFO: at most ℓ alternating second-order blocks
    (starting existentially when exactly ℓ) followed by an LFO
    formula. *)

val in_pi_lfo : int -> Formula.t -> bool

val in_sigma_fo : int -> Formula.t -> bool
(** Same block conditions but with an FO matrix (the classical
    hierarchy Σℓ^FO; level 0 is FO itself). *)

val in_pi_fo : int -> Formula.t -> bool

val is_monadic : Formula.t -> bool
(** Every second-order quantifier binds a variable of arity 1. *)

val is_sentence : Formula.t -> bool

val visibility_radius : Formula.t -> int
(** Maximum nesting depth of bounded first-order quantifiers — the
    paper's "distance up to which the formula can see" (used as the
    gathering radius of compiled arbiters). Unbounded quantifiers
    contribute nothing. *)

val level : Formula.t -> int * quantifier option
(** [(l, first)] where [l] is the number of leading second-order blocks
    and [first] their initial polarity ([None] when [l = 0]). *)
