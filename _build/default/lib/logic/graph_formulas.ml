open Formula
module G = Lph_graph.Labeled_graph

let is_node x =
  let y = x ^ "$n" in
  Not (Exists_near (y, x, Binary (2, y, x)))

let is_bit0 x = And (Not (is_node x), Not (Unary (1, x)))

let is_bit1 x = And (Not (is_node x), Unary (1, x))

let exists_node x phi = Exists (x, And (is_node x, phi))

let forall_node x phi = Forall (x, Implies (is_node x, phi))

let exists_node_near x y phi = Exists_near (x, y, And (is_node x, phi))

let forall_node_near x y phi = Forall_near (x, y, Implies (is_node x, phi))

let exists_node_within ~radius x y phi = exists_within ~radius x y (And (is_node x, phi))

let forall_node_within ~radius x y phi = forall_within ~radius x y (Implies (is_node x, phi))

(* IsSelected(x) = ∃y ⇌ x (IsBit1(y) ∧ ¬∃z ⇌ y (z ⇀1 y ∨ y ⇀1 z)):
   x owns a 1-bit with no successor and no predecessor, hence its label
   is exactly "1" (Example 2). *)
let is_selected x =
  let y = x ^ "$sel" and z = x ^ "$nbr" in
  Exists_near
    (y, x, And (is_bit1 y, Not (Exists_near (z, y, Or (Binary (1, z, y), Binary (1, y, z))))))

let all_selected = forall_node "x" (is_selected "x")

let well_colored ~colors x =
  let some_color = disj (List.map (fun c -> App (c, [ x ])) colors) in
  let rec distinct_pairs = function
    | [] -> []
    | c :: rest -> List.map (fun c' -> (c, c')) rest @ distinct_pairs rest
  in
  let one_color =
    conj
      (List.map (fun (c, c') -> Not (And (App (c, [ x ]), App (c', [ x ])))) (distinct_pairs colors))
  in
  let y = x ^ "$adj" in
  let proper =
    forall_node_near y x (conj (List.map (fun c -> Not (And (App (c, [ x ]), App (c, [ y ])))) colors))
  in
  conj [ some_color; one_color; proper ]

let palette k = List.init k (fun i -> Printf.sprintf "C%d" i)

let k_colorable k =
  let colors = palette k in
  exists_so_many
    (List.map (fun c -> (c, 1)) colors)
    (forall_node "x" (well_colored ~colors "x"))

let three_colorable = k_colorable 3

let two_colorable = k_colorable 2

(* PointsTo[θ](x) = UniqueParent(x) ∧ RootCase[θ](x) ∧ ChildCase(x), with
   P : 2, X : 1, Y : 1 free (Example 4). *)
let points_to ~theta x =
  let yp = "yp" and zp = "zp" and yc = "yc" in
  let unique_parent =
    exists_node_within ~radius:1 yp x
      (And
         ( App ("P", [ x; yp ]),
           forall_node_within ~radius:1 zp x (Implies (App ("P", [ x; zp ]), Eq (zp, yp))) ))
  in
  let root_case = Implies (App ("P", [ x; x ]), And (theta x, App ("Y", [ x ]))) in
  let child_case =
    Implies
      ( Not (App ("P", [ x; x ])),
        exists_node_near yc x
          (And
             ( App ("P", [ x; yc ]),
               Iff (App ("Y", [ x ]), Not (Iff (App ("Y", [ yc ]), App ("X", [ x ])))) )) )
  in
  conj [ unique_parent; root_case; child_case ]

let exists_bad_node ~theta =
  Exists_so
    ( "P",
      2,
      Forall_so ("X", 1, Exists_so ("Y", 1, forall_node "x" (points_to ~theta "x"))) )

let not_all_selected = exists_bad_node ~theta:(fun v -> Not (is_selected v))

let non_3_colorable =
  forall_so_many
    (List.map (fun c -> (c, 1)) (palette 3))
    (exists_bad_node ~theta:(fun v -> Not (well_colored ~colors:(palette 3) v)))

let degree_two x =
  let y1 = "yd1" and y2 = "yd2" and z = "zd" in
  let h a b = And (App ("H", [ a; b ]), App ("H", [ b; a ])) in
  exists_node_near y1 x
    (exists_node_near y2 x
       (conj
          [
            Not (Eq (y1, y2));
            h x y1;
            h x y2;
            forall_node_near z x
              (Implies
                 ( Or (App ("H", [ x; z ]), App ("H", [ z; x ])),
                   Or (Eq (z, y1), Eq (z, y2)) ));
          ]))

let in_agreement_on r x =
  let y = "ya$" ^ r in
  forall_node_near y x (Iff (App (r, [ x ]), App (r, [ y ])))

let discontinuity_at x =
  let y = "ydc" in
  exists_node_near y x (And (App ("H", [ x; y ]), Iff (App ("S", [ x ]), Not (App ("S", [ y ])))))

let hamiltonian =
  let connectivity_test x =
    conj
      [
        in_agreement_on "C" x;
        Implies (Not (App ("C", [ x ])), in_agreement_on "S" x);
        Implies (App ("C", [ x ]), points_to ~theta:discontinuity_at x);
      ]
  in
  Exists_so
    ( "H",
      2,
      Forall_so
        ( "S",
          1,
          Exists_so
            ( "C",
              1,
              Exists_so
                ( "P",
                  2,
                  Forall_so
                    ( "X",
                      1,
                      Exists_so
                        ("Y", 1, forall_node "x" (And (degree_two "x", connectivity_test "x"))) ) )
            ) ) )

let non_hamiltonian =
  let invalid_case x = Implies (Not (App ("C", [ x ])), points_to ~theta:(fun v -> Not (degree_two v)) x) in
  let division_at v = Not (in_agreement_on "S" v) in
  let disjoint_case x =
    Implies (App ("C", [ x ]), And (Not (discontinuity_at x), points_to ~theta:division_at x))
  in
  Forall_so
    ( "H",
      2,
      Exists_so
        ( "C",
          1,
          Exists_so
            ( "S",
              1,
              Exists_so
                ( "P",
                  2,
                  Forall_so
                    ( "X",
                      1,
                      Exists_so
                        ( "Y",
                          1,
                          forall_node "x"
                            (conj [ in_agreement_on "C" "x"; invalid_case "x"; disjoint_case "x" ])
                        ) ) ) ) ) )

(* In the structural representation, node u is element u, so graph
   distances can be used directly for the head/tail restrictions of all
   universes below. *)

let node_tuples ?(radius = 1) g arity =
  let nodes = G.nodes g in
  if arity = 0 then [ [] ]
  else
    List.concat_map
      (fun head ->
        let nearby = Lph_graph.Neighborhood.ball g ~radius head in
        List.of_seq
          (Seq.map (fun tail -> head :: tail) (Lph_util.Combinat.tuples nearby (arity - 1))))
      nodes

let node_universe ?radius g : Eval.so_universe =
 fun _s _r arity -> Eval.Subsets (node_tuples ?radius g arity)

let parent_functions g =
  (* Candidates for an existentially quantified relation that
     ∀°x UniqueParent(x) forces to be functional into the closed
     1-neighbourhood: one parent choice (self or neighbour) per node. *)
  let choices = List.map (fun u -> List.map (fun v -> (u, v)) (u :: G.neighbours g u)) (G.nodes g) in
  List.of_seq
    (Seq.map
       (fun picks -> Relation.of_list (List.map (fun (u, v) -> [ u; v ]) picks))
       (Lph_util.Combinat.product choices))

let symmetric_edge_subsets g =
  (* Candidates for a relation that DegreeTwo forces to be a symmetric
     subset of the edge relation. *)
  List.of_seq
    (Seq.map
       (fun edge_subset ->
         Relation.of_list (List.concat_map (fun (u, v) -> [ [ u; v ]; [ v; u ] ]) edge_subset))
       (Lph_util.Combinat.subsets (G.edges g)))

let smart_universe g : Eval.so_universe =
 fun _s r arity ->
  match (r, arity) with
  | "P", 2 -> Eval.Explicit (parent_functions g)
  | "H", 2 -> Eval.Explicit (symmetric_edge_subsets g)
  | _ -> Eval.Subsets (node_tuples g arity)

let holds g phi =
  Eval.holds_graph ~so_universe:(smart_universe g) ~max_universe:64 g phi
