(** Model checking: evaluate formulas on relational structures
    (the semantics of Table 1).

    First-order quantifiers are evaluated by exhaustive search over the
    domain (or over ⇌-neighbours for bounded quantifiers). Second-order
    quantifiers enumerate relations as subsets of a {e tuple universe};
    by default this is the full set of k-tuples, which is doubly
    exponential and only usable on very small structures. For local
    formulas, {!local_universe} restricts enumeration to tuples whose
    components lie near their first component — faithful for matrices of
    visibility radius ≤ r by the locality argument in the proof of
    Theorem 12 (a BF formula can only ever inspect such tuples). *)

type relation = Relation.t

type env
(** A variable assignment σ. *)

val empty_env : env
val bind_fo : env -> Formula.fo_var -> int -> env
val bind_so : env -> Formula.so_var -> relation -> env
val lookup_fo : env -> Formula.fo_var -> int

type candidates =
  | Subsets of int list list
      (** Interpretations are all subsets of this tuple list. *)
  | Explicit of relation list
      (** Interpretations are exactly these relations (used to exploit
          formula-specific structure, e.g. "H must be symmetric",
          "P must be functional"; the caller is responsible for the
          semantic soundness of the restriction). *)

type so_universe = Lph_structure.Structure.t -> Formula.so_var -> int -> candidates
(** Given the structure, a second-order variable and its arity, the
    candidate interpretations it ranges over. *)

val full_universe : so_universe
(** All subsets of all [card^k] tuples. *)

val local_universe : radius:int -> so_universe
(** Subsets of the tuples whose components all lie within ⇌-distance
    [radius] of the first component. *)

exception Universe_too_large of string * int
(** Raised when a second-order quantifier would enumerate more than
    2^62 relations... practically: when the universe exceeds the safety
    cap below. *)

val eval :
  ?so_universe:so_universe ->
  ?max_universe:int ->
  Lph_structure.Structure.t ->
  env ->
  Formula.t ->
  bool
(** [max_universe] (default 24) caps the tuple-universe size (for
    [Subsets]) or the log2 of the candidate count (for [Explicit]) per
    second-order quantifier; beyond it {!Universe_too_large} is raised
    rather than silently looping for astronomical time. *)

val holds :
  ?so_universe:so_universe -> ?max_universe:int -> Lph_structure.Structure.t -> Formula.t -> bool
(** Evaluate a sentence (raises [Invalid_argument] if not a sentence). *)

val holds_graph :
  ?so_universe:so_universe -> ?max_universe:int -> Lph_graph.Labeled_graph.t -> Formula.t -> bool
(** Evaluate a sentence on the structural representation $G of a graph. *)
