(** Logical formulas over relational structures (Table 1 of the paper,
    plus the usual syntactic sugar of Section 5.1). The same AST hosts
    every logic considered in the paper — FO, the bounded fragment BF,
    local first-order logic LFO, and the (local) second-order
    hierarchies — which are carved out syntactically by {!Syntax}. *)

type fo_var = string
type so_var = string

type t =
  | True
  | False
  | Unary of int * fo_var  (** ⊙_i x *)
  | Binary of int * fo_var * fo_var  (** x ⇀_i y *)
  | Eq of fo_var * fo_var  (** x ≐ y *)
  | App of so_var * fo_var list  (** R(x1, ..., xk) *)
  | Not of t
  | Or of t * t
  | And of t * t
  | Implies of t * t
  | Iff of t * t
  | Exists of fo_var * t  (** unbounded ∃x φ *)
  | Forall of fo_var * t
  | Exists_near of fo_var * fo_var * t  (** bounded ∃x ⇌ y φ (x ≠ y) *)
  | Forall_near of fo_var * fo_var * t
  | Exists_so of so_var * int * t  (** ∃R φ, R of the given arity *)
  | Forall_so of so_var * int * t

(** {1 Convenience constructors} *)

val conj : t list -> t
(** Conjunction of a list ([True] for the empty list). *)

val disj : t list -> t

val exists_many : fo_var list -> t -> t
val forall_many : fo_var list -> t -> t
val exists_so_many : (so_var * int) list -> t -> t
val forall_so_many : (so_var * int) list -> t -> t

val exists_within : radius:int -> fo_var -> fo_var -> t -> t
(** The shorthand [∃x ⇌≤r y φ] of Section 5.1, expanded by its inductive
    definition (fresh variables are generated for the intermediate
    hops). [radius] must be non-negative. *)

val forall_within : radius:int -> fo_var -> fo_var -> t -> t
(** The dual shorthand [∀x ⇌≤r y φ], i.e. ¬∃x ⇌≤r y ¬φ, expanded into
    quantifiers directly. *)

(** {1 Variables and substitution} *)

val free_fo : t -> fo_var list
(** Free first-order variables, sorted, without duplicates. *)

val free_so : t -> (so_var * int) list
(** Free second-order variables with their arities (arity inferred from
    use; raises [Invalid_argument] if a variable is used at two
    arities). *)

val subst_fo : t -> fo_var -> fo_var -> t
(** [subst_fo phi x y]: substitute [y] for every free occurrence of [x].
    Raises [Invalid_argument] if the substitution would capture [y]. *)

val fresh_var : string -> t list -> fo_var
(** A first-order variable with the given prefix not occurring (free or
    bound) in any of the formulas. *)

val negate : t -> t
(** The negation in negation normal form: ¬ is pushed to the atoms,
    dualising every connective and quantifier (∃ ↔ ∀, including the
    bounded and second-order forms). Semantically equivalent to
    [Not phi]. Note the paper's asymmetry (Section 5.1): LFO is not
    closed under negation — negating a [∀x BF] sentence yields an
    unbounded existential, so the dual of a Σℓ^LFO sentence is
    generally not Πℓ^LFO (see Example 4's workaround). *)

val size : t -> int
(** Number of AST nodes. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
