(** Finite relations over a structure's domain: sets of integer tuples.
    Interpretations of second-order variables. *)

type t

val empty : t
val of_list : int list list -> t
val to_list : t -> int list list
val mem : int list -> t -> bool
val add : int list -> t -> t
val cardinal : t -> int
val equal : t -> t -> bool
val union : t -> t -> t
