lib/util/poly.mli: Format
