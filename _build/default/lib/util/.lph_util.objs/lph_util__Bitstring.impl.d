lib/util/bitstring.ml: Buffer List String
