lib/util/bitstring.mli:
