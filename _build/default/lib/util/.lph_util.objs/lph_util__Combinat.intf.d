lib/util/combinat.mli: Seq
