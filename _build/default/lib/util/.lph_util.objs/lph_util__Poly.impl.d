lib/util/poly.ml: Array Format List Printf String
