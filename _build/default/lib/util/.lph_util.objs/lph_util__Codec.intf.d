lib/util/codec.mli:
