lib/util/combinat.ml: List Seq
