(** Length-prefixed binary codecs.

    Messages exchanged by distributed machines are strings, so anything a
    node sends (neighbourhood tables, relation encodings, cluster
    descriptions) must round-trip through an explicit wire format. This
    module provides small composable encoders/decoders; all formats are
    self-delimiting so values can be concatenated. *)

type 'a t
(** A codec for values of type ['a]. *)

val encode : 'a t -> 'a -> string
val decode : 'a t -> string -> 'a
(** [decode c s] decodes a value and requires that [s] is consumed
    exactly. Raises [Failure] on malformed input. *)

val encode_bits : 'a t -> 'a -> string
(** Like {!encode} but the result is a genuine bit string (characters
    '0'/'1', 8 per byte): the paper's messages, labels and certificates
    are bit strings, so anything that travels as one goes through
    this. *)

val decode_bits : 'a t -> string -> 'a

(** {1 Primitives} *)

val int : int t
(** Non-negative integers (variable-length). *)

val string : string t
(** Arbitrary strings, length-prefixed. *)

val bool : bool t

(** {1 Combinators} *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val list : 'a t -> 'a list t
val option : 'a t -> 'a option t
val map : ('a -> 'b) -> ('b -> 'a) -> 'a t -> 'b t
(** [map of_wire to_wire c] transports a codec along an isomorphism. *)
