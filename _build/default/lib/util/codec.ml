(* Values are serialized into a Buffer; decoding threads an explicit cursor
   through the input string. All formats are self-delimiting. *)

type 'a t = {
  enc : Buffer.t -> 'a -> unit;
  dec : string -> int -> 'a * int; (* returns value and next cursor *)
}

let encode c v =
  let buf = Buffer.create 64 in
  c.enc buf v;
  Buffer.contents buf

let decode c s =
  let v, pos = c.dec s 0 in
  if pos <> String.length s then failwith "Codec.decode: trailing garbage";
  v

let encode_bits c v =
  let raw = encode c v in
  let buf = Buffer.create (8 * String.length raw) in
  String.iter
    (fun ch ->
      let b = Char.code ch in
      for i = 7 downto 0 do
        Buffer.add_char buf (if (b lsr i) land 1 = 1 then '1' else '0')
      done)
    raw;
  Buffer.contents buf

let decode_bits c s =
  let len = String.length s in
  if len mod 8 <> 0 then failwith "Codec.decode_bits: length not a multiple of 8";
  let raw =
    String.init (len / 8) (fun i ->
        let b = ref 0 in
        for j = 0 to 7 do
          b := (!b lsl 1) lor (match s.[(8 * i) + j] with '0' -> 0 | '1' -> 1 | _ -> failwith "Codec.decode_bits: non-bit character")
        done;
        Char.chr !b)
  in
  decode c raw

(* Integers are encoded in base 128 with a continuation bit (LEB128-style),
   so small values cost one byte. *)
let int =
  let enc buf n =
    if n < 0 then invalid_arg "Codec.int: negative";
    let rec go n =
      if n < 128 then Buffer.add_char buf (Char.chr n)
      else begin
        Buffer.add_char buf (Char.chr (128 lor (n land 127)));
        go (n lsr 7)
      end
    in
    go n
  in
  let dec s pos =
    let rec go pos shift acc =
      if pos >= String.length s then failwith "Codec.int: truncated";
      let b = Char.code s.[pos] in
      let acc = acc lor ((b land 127) lsl shift) in
      if b land 128 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
    in
    go pos 0 0
  in
  { enc; dec }

let string =
  let enc buf s =
    int.enc buf (String.length s);
    Buffer.add_string buf s
  in
  let dec s pos =
    let len, pos = int.dec s pos in
    if pos + len > String.length s then failwith "Codec.string: truncated";
    (String.sub s pos len, pos + len)
  in
  { enc; dec }

let bool =
  let enc buf b = Buffer.add_char buf (if b then '\001' else '\000') in
  let dec s pos =
    if pos >= String.length s then failwith "Codec.bool: truncated";
    (s.[pos] <> '\000', pos + 1)
  in
  { enc; dec }

let pair ca cb =
  let enc buf (a, b) =
    ca.enc buf a;
    cb.enc buf b
  in
  let dec s pos =
    let a, pos = ca.dec s pos in
    let b, pos = cb.dec s pos in
    ((a, b), pos)
  in
  { enc; dec }

let triple ca cb cc =
  let enc buf (a, b, c) =
    ca.enc buf a;
    cb.enc buf b;
    cc.enc buf c
  in
  let dec s pos =
    let a, pos = ca.dec s pos in
    let b, pos = cb.dec s pos in
    let c, pos = cc.dec s pos in
    ((a, b, c), pos)
  in
  { enc; dec }

let list c =
  let enc buf xs =
    int.enc buf (List.length xs);
    List.iter (c.enc buf) xs
  in
  let dec s pos =
    let n, pos = int.dec s pos in
    let rec go n pos acc =
      if n = 0 then (List.rev acc, pos)
      else
        let x, pos = c.dec s pos in
        go (n - 1) pos (x :: acc)
    in
    go n pos []
  in
  { enc; dec }

let option c =
  let enc buf = function
    | None -> bool.enc buf false
    | Some x ->
        bool.enc buf true;
        c.enc buf x
  in
  let dec s pos =
    let b, pos = bool.dec s pos in
    if b then
      let x, pos = c.dec s pos in
      (Some x, pos)
    else (None, pos)
  in
  { enc; dec }

let map of_wire to_wire c =
  let enc buf v = c.enc buf (to_wire v) in
  let dec s pos =
    let v, pos = c.dec s pos in
    (of_wire v, pos)
  in
  { enc; dec }
