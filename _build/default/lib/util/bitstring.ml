let is_bitstring s = String.for_all (fun c -> c = '0' || c = '1') s

let is_bitstring_hash s = String.for_all (fun c -> c = '0' || c = '1' || c = '#') s

let of_int n =
  if n < 0 then invalid_arg "Bitstring.of_int: negative"
  else if n = 0 then "0"
  else begin
    let buf = Buffer.create 8 in
    let rec go n = if n > 0 then begin go (n / 2); Buffer.add_char buf (if n land 1 = 1 then '1' else '0') end in
    go n;
    Buffer.contents buf
  end

let of_int_width ~width n =
  if n < 0 then invalid_arg "Bitstring.of_int_width: negative";
  let s = of_int n in
  let s = if n = 0 then "" else s in
  let pad = width - String.length s in
  if pad < 0 then invalid_arg "Bitstring.of_int_width: does not fit"
  else String.make pad '0' ^ s

let to_int s =
  let acc = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '0' -> acc := !acc * 2
      | '1' -> acc := (!acc * 2) + 1
      | _ -> invalid_arg "Bitstring.to_int: non-bit character")
    s;
  !acc

let all_of_length k =
  if k < 0 then invalid_arg "Bitstring.all_of_length: negative";
  let rec go k = if k = 0 then [ "" ] else List.concat_map (fun s -> [ s ^ "0"; s ^ "1" ]) (go (k - 1)) in
  go k

let all_up_to_length k =
  let rec go i = if i > k then [] else all_of_length i @ go (i + 1) in
  go 0

let split_hash s = String.split_on_char '#' s

let join_hash parts = String.concat "#" parts

let ones k = String.make k '1'

let zeros k = String.make k '0'
