(** Small combinatorial enumerations used throughout: exhaustive games,
    second-order quantification and brute-force property deciders all
    iterate over subsets, tuples and products. All enumerators are lazy
    ([Seq.t]) so callers can short-circuit. *)

val subsets : 'a list -> 'a list Seq.t
(** All [2^n] subsets of a list (as sublists, order preserved). *)

val tuples : 'a list -> int -> 'a list Seq.t
(** [tuples xs k]: all [n^k] tuples of length [k] over [xs]. *)

val product : 'a list list -> 'a list Seq.t
(** [product [xs1; ...; xsn]]: the cartesian product, one element per list. *)

val permutations : 'a list -> 'a list Seq.t
(** All permutations of a list (for small lists; used by isomorphism and
    Hamiltonicity search). *)

val choose : 'a list -> int -> 'a list Seq.t
(** [choose xs k]: all k-element sublists of [xs]. *)

val exists_seq : ('a -> bool) -> 'a Seq.t -> bool
val for_all_seq : ('a -> bool) -> 'a Seq.t -> bool
val find_seq : ('a -> bool) -> 'a Seq.t -> 'a option
