(** Polynomial bounds. The paper's complexity constraints (step time,
    certificate size) are always of the form "bounded by a polynomial [p]
    of a locally measured quantity". We represent these bounds
    symbolically so they can be evaluated, composed, and checked against
    empirical measurements. *)

type t
(** A univariate polynomial with non-negative integer coefficients,
    [c0 + c1*n + c2*n^2 + ...]. *)

val of_coeffs : int list -> t
(** [of_coeffs [c0; c1; ...]] with the constant term first. *)

val const : int -> t
val linear : ?offset:int -> int -> t
(** [linear ~offset a] is [offset + a*n]. *)

val monomial : coeff:int -> degree:int -> t

val eval : t -> int -> int
val degree : t -> int
val add : t -> t -> t
val mul : t -> t -> t
val compose : t -> t -> t
(** [compose p q] evaluates as [fun n -> eval p (eval q n)]. *)

val max_bound : t -> t -> t
(** A polynomial dominating both arguments pointwise on [n >= 0]
    (coefficient-wise maximum). *)

val pp : Format.formatter -> t -> unit

val fits : bound:t -> (int * int) list -> bool
(** [fits ~bound samples] checks that every measured [(input, cost)]
    sample satisfies [cost <= eval bound input]: the empirical check we
    use to validate "runs in step time p" claims. *)
