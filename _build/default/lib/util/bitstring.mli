(** Bit strings over the alphabet {0,1}, represented as OCaml strings of
    ['0'] and ['1'] characters. Labels, identifiers, certificates and
    messages in the paper are all bit strings (possibly extended with the
    separator ['#'] for certificate lists and message trains). *)

val is_bitstring : string -> bool
(** [is_bitstring s] holds iff every character of [s] is ['0'] or ['1']. *)

val is_bitstring_hash : string -> bool
(** Like {!is_bitstring} but also allows the separator ['#']. *)

val of_int : int -> string
(** [of_int n] is the shortest binary representation of [n >= 0]
    (["0"] for 0, no leading zeros otherwise). *)

val of_int_width : width:int -> int -> string
(** [of_int_width ~width n] is [n] in binary padded with leading zeros to
    exactly [width] characters. Raises [Invalid_argument] if [n] does not
    fit. *)

val to_int : string -> int
(** Inverse of {!of_int} on valid bit strings; the empty string decodes
    to [0]. Raises [Invalid_argument] on non-bit characters. *)

val all_of_length : int -> string list
(** [all_of_length k] enumerates the [2^k] bit strings of length exactly
    [k], in lexicographic order. *)

val all_up_to_length : int -> string list
(** [all_up_to_length k] enumerates all bit strings of length [<= k]
    (including the empty string), shortest first. *)

val split_hash : string -> string list
(** [split_hash "a#b#c"] is [["a"; "b"; "c"]]; the paper's certificate
    lists [k1#k2#...#kl] decode this way. [split_hash ""] is [[""]]. *)

val join_hash : string list -> string
(** Inverse of {!split_hash}: joins with ['#'] separators. *)

val ones : int -> string
(** [ones k] is the string of [k] ['1'] characters. *)

val zeros : int -> string
(** [zeros k] is the string of [k] ['0'] characters. *)
