type t = int array (* coefficients, constant term first; invariant: no trailing zeros unless [|0|] *)

let normalize a =
  let n = Array.length a in
  let rec last i = if i > 0 && a.(i) = 0 then last (i - 1) else i in
  let k = last (n - 1) in
  if k = n - 1 then a else Array.sub a 0 (k + 1)

let of_coeffs cs =
  List.iter (fun c -> if c < 0 then invalid_arg "Poly.of_coeffs: negative coefficient") cs;
  match cs with [] -> [| 0 |] | _ -> normalize (Array.of_list cs)

let const c = of_coeffs [ c ]

let linear ?(offset = 0) a = of_coeffs [ offset; a ]

let monomial ~coeff ~degree =
  if degree < 0 then invalid_arg "Poly.monomial: negative degree";
  let a = Array.make (degree + 1) 0 in
  a.(degree) <- coeff;
  normalize a

let eval p n =
  Array.fold_right (fun c acc -> (acc * n) + c) p 0

let degree p = Array.length p - 1

let add p q =
  let n = max (Array.length p) (Array.length q) in
  let get a i = if i < Array.length a then a.(i) else 0 in
  normalize (Array.init n (fun i -> get p i + get q i))

let mul p q =
  let n = Array.length p + Array.length q - 1 in
  let r = Array.make n 0 in
  Array.iteri (fun i pi -> Array.iteri (fun j qj -> r.(i + j) <- r.(i + j) + (pi * qj)) q) p;
  normalize r

let compose p q =
  (* Horner's scheme over polynomials *)
  Array.fold_right (fun c acc -> add (mul acc q) (const c)) p (const 0)

let max_bound p q =
  let n = max (Array.length p) (Array.length q) in
  let get a i = if i < Array.length a then a.(i) else 0 in
  normalize (Array.init n (fun i -> max (get p i) (get q i)))

let pp fmt p =
  let terms = ref [] in
  Array.iteri
    (fun i c ->
      if c <> 0 || (i = 0 && Array.length p = 1) then
        let t =
          if i = 0 then string_of_int c
          else if i = 1 then Printf.sprintf "%dn" c
          else Printf.sprintf "%dn^%d" c i
        in
        terms := t :: !terms)
    p;
  Format.pp_print_string fmt (String.concat " + " (List.rev !terms))

let fits ~bound samples = List.for_all (fun (input, cost) -> cost <= eval bound input) samples
