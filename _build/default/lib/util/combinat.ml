let rec subsets = function
  | [] -> Seq.return []
  | x :: rest ->
      fun () ->
        let tails = subsets rest in
        Seq.append tails (Seq.map (fun s -> x :: s) tails) ()

let rec tuples xs k =
  if k < 0 then invalid_arg "Combinat.tuples: negative arity"
  else if k = 0 then Seq.return []
  else
    Seq.concat_map (fun x -> Seq.map (fun t -> x :: t) (tuples xs (k - 1))) (List.to_seq xs)

let rec product = function
  | [] -> Seq.return []
  | xs :: rest ->
      Seq.concat_map (fun x -> Seq.map (fun t -> x :: t) (product rest)) (List.to_seq xs)

let rec permutations = function
  | [] -> Seq.return []
  | xs ->
      (* pick each element as head, permute the rest *)
      let rec picks pre = function
        | [] -> Seq.empty
        | x :: post ->
            fun () ->
              Seq.Cons
                ( (x, List.rev_append pre post),
                  picks (x :: pre) post )
      in
      Seq.concat_map
        (fun (x, rest) -> Seq.map (fun p -> x :: p) (permutations rest))
        (picks [] xs)

let rec choose xs k =
  if k = 0 then Seq.return []
  else
    match xs with
    | [] -> Seq.empty
    | x :: rest ->
        fun () ->
          Seq.append (Seq.map (fun c -> x :: c) (choose rest (k - 1))) (choose rest k) ()

let exists_seq p s = Seq.exists p s

let for_all_seq p s = Seq.for_all p s

let find_seq p s = Seq.find p s
