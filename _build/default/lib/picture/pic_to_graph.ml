module G = Lph_graph.Labeled_graph

let v_src = "010"
and v_dst = "011"
and h_src = "000"
and h_dst = "001"

let encode p =
  let rows = Picture.rows p and cols = Picture.cols p in
  let pixel i j = ((i - 1) * cols) + (j - 1) in
  let labels = ref [] and edges = ref [] in
  let next = ref (rows * cols) in
  let fresh label =
    let id = !next in
    incr next;
    labels := (id, label) :: !labels;
    id
  in
  for i = 1 to rows do
    for j = 1 to cols do
      labels := (pixel i j, "1" ^ Picture.get p i j) :: !labels;
      let connect src dst target =
        let a = fresh src and b = fresh dst in
        edges := (pixel i j, a) :: (a, b) :: (b, target) :: !edges
      in
      if i < rows then connect v_src v_dst (pixel (i + 1) j);
      if j < cols then connect h_src h_dst (pixel i (j + 1))
    done
  done;
  let label_array = Array.make !next "" in
  List.iter (fun (id, l) -> label_array.(id) <- l) !labels;
  G.make ~labels:label_array ~edges:!edges

exception Not_an_encoding

let decode g =
  try
    let is_pixel u = String.length (G.label g u) >= 1 && (G.label g u).[0] = '1' in
    let pixels = List.filter is_pixel (G.nodes g) in
    if pixels = [] then raise Not_an_encoding;
    let bits = String.length (G.label g (List.hd pixels)) - 1 in
    List.iter (fun u -> if String.length (G.label g u) <> bits + 1 then raise Not_an_encoding) pixels;
    (* recover the directed successor relations from the marker paths *)
    let vsucc = Hashtbl.create 16 and hsucc = Hashtbl.create 16 in
    let record table u v =
      if Hashtbl.mem table u then raise Not_an_encoding;
      Hashtbl.replace table u v
    in
    List.iter
      (fun a ->
        let label = G.label g a in
        if label = v_src || label = h_src then begin
          let dst_label = if label = v_src then v_dst else h_dst in
          match G.neighbours g a with
          | [ x; y ] ->
              let p, b =
                if is_pixel x && G.label g y = dst_label then (x, y)
                else if is_pixel y && G.label g x = dst_label then (y, x)
                else raise Not_an_encoding
              in
              begin
                match List.filter (fun w -> w <> a) (G.neighbours g b) with
                | [ q ] when is_pixel q && G.degree g b = 2 ->
                    record (if label = v_src then vsucc else hsucc) p q
                | _ -> raise Not_an_encoding
              end
          | _ -> raise Not_an_encoding
        end
        else if label = v_dst || label = h_dst then begin
          (* validated from the source side; just sanity-check the degree *)
          if G.degree g a <> 2 then raise Not_an_encoding
        end
        else if not (is_pixel a) then raise Not_an_encoding)
      (G.nodes g);
    (* injectivity of the successor maps *)
    let check_injective table =
      let seen = Hashtbl.create 16 in
      Hashtbl.iter
        (fun _ v ->
          if Hashtbl.mem seen v then raise Not_an_encoding;
          Hashtbl.replace seen v ())
        table
    in
    check_injective vsucc;
    check_injective hsucc;
    let has_pred table v = Hashtbl.fold (fun _ w acc -> acc || w = v) table false in
    let top_left =
      match List.filter (fun u -> not (has_pred vsucc u || has_pred hsucc u)) pixels with
      | [ u ] -> u
      | _ -> raise Not_an_encoding
    in
    let rec walk table u = u :: (match Hashtbl.find_opt table u with Some v -> walk table v | None -> []) in
    let first_row = walk hsucc top_left in
    let first_col = walk vsucc top_left in
    let rows = List.length first_col and cols = List.length first_row in
    if rows * cols + ((rows - 1) * cols + rows * (cols - 1)) * 2 <> G.card g then
      raise Not_an_encoding;
    let grid = Array.make_matrix rows cols (-1) in
    List.iteri
      (fun i row_start ->
        let row = walk hsucc row_start in
        if List.length row <> cols then raise Not_an_encoding;
        List.iteri (fun j u -> grid.(i).(j) <- u) row)
      first_col;
    (* the grid must commute: the vertical successor of cell (i, j) is
       cell (i+1, j) *)
    for i = 0 to rows - 2 do
      for j = 0 to cols - 1 do
        match Hashtbl.find_opt vsucc grid.(i).(j) with
        | Some v when v = grid.(i + 1).(j) -> ()
        | _ -> raise Not_an_encoding
      done
    done;
    Some
      (Picture.create ~bits ~rows ~cols (fun i j ->
           let l = G.label g grid.(i - 1).(j - 1) in
           String.sub l 1 bits))
  with Not_an_encoding | Invalid_argument _ -> None

let graph_property_of pred g = match decode g with Some p -> pred p | None -> false
