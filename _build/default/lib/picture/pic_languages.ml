module F = Lph_logic.Formula

let is_square p = Picture.rows p = Picture.cols p

let first_row_equals_last_row p =
  let top = List.init (Picture.cols p) (fun j -> Picture.get p 1 (j + 1)) in
  let bottom = List.init (Picture.cols p) (fun j -> Picture.get p (Picture.rows p) (j + 1)) in
  top = bottom

let every p f =
  List.for_all
    (fun i -> List.for_all (fun j -> f (i + 1) (j + 1)) (List.init (Picture.cols p) Fun.id))
    (List.init (Picture.rows p) Fun.id)

let all_ones p = every p (fun i j -> Picture.get p i j = "1")

let some_one p = not (every p (fun i j -> Picture.get p i j <> "1"))

(* ------------------------------------------------------------------ *)
(* Logical definitions. On $P: ⇀1 vertical successor, ⇀2 horizontal. *)

let fo_some_one = F.Exists ("x", F.Unary (1, "x"))

let fo_all_ones = F.Forall ("x", F.Unary (1, "x"))

let no_pred rel x =
  let y = x ^ "$p" in
  F.Not (F.Exists (y, F.Binary (rel, y, x)))

let no_succ rel x =
  let y = x ^ "$s" in
  F.Not (F.Exists (y, F.Binary (rel, x, y)))

let fo_top_row_ones = F.Forall ("x", F.Implies (no_pred 1 "x", F.Unary (1, "x")))

let mso_square =
  (* D is a diagonal: contains the top-left corner, is closed under
     diagonal steps (down then right), and every element of D that is
     not the bottom-right corner has a diagonal successor in D. The
     picture is square iff the bottom-right corner lies on such a
     diagonal. *)
  let is_tl x = F.conj [ no_pred 1 x; no_pred 2 x ] in
  let is_br x = F.conj [ no_succ 1 x; no_succ 2 x ] in
  let diag_step x z =
    (* z is the pixel one down and one right of x *)
    let y = x ^ "$m" in
    F.Exists (y, F.And (F.Binary (1, x, y), F.Binary (2, y, z)))
  in
  F.Exists_so
    ( "D",
      1,
      F.conj
        [
          F.Forall ("x", F.Implies (is_tl "x", F.App ("D", [ "x" ])));
          F.Forall
            ( "x",
              F.Implies
                ( F.And (F.App ("D", [ "x" ]), F.Not (is_br "x")),
                  F.Exists ("z", F.And (diag_step "x" "z", F.App ("D", [ "z" ]))) ) );
          F.Exists ("x", F.And (is_br "x", F.App ("D", [ "x" ])));
        ] )

let holds p phi = Lph_logic.Eval.holds ~max_universe:30 (Picture.structure p) phi

(* ------------------------------------------------------------------ *)

let rec tower k n =
  if k < 0 then invalid_arg "Pic_languages.tower: negative level"
  else if k = 0 then n
  else begin
    let t = tower (k - 1) n in
    if t > 30 then invalid_arg "Pic_languages.tower: value too large"
    else 1 lsl t
  end

let height_is_tower_of_width k p = Picture.rows p = tower k (Picture.cols p)

let first_column_equals_last_column p =
  let col j = List.init (Picture.rows p) (fun i -> Picture.get p (i + 1) j) in
  col 1 = col (Picture.cols p)

let some_row_all_ones p =
  List.exists
    (fun i -> List.for_all (fun j -> Picture.get p (i + 1) (j + 1) = "1") (List.init (Picture.cols p) Fun.id))
    (List.init (Picture.rows p) Fun.id)
