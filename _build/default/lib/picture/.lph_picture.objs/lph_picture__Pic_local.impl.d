lib/picture/pic_local.ml: List Lph_logic Lph_structure Lph_util Picture Seq
