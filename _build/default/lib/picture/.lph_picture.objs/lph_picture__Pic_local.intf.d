lib/picture/pic_local.mli: Lph_logic Picture
