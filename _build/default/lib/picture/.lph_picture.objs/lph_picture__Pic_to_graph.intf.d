lib/picture/pic_to_graph.mli: Lph_graph Picture
