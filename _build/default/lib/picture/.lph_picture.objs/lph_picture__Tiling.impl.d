lib/picture/tiling.ml: Array Fun List Option Picture Set
