lib/picture/pic_languages.mli: Lph_logic Picture
