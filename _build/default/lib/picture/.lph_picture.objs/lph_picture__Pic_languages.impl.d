lib/picture/pic_languages.ml: Fun List Lph_logic Picture
