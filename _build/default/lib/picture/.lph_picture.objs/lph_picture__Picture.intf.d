lib/picture/picture.mli: Format Lph_structure Seq
