lib/picture/tiling.mli: Picture
