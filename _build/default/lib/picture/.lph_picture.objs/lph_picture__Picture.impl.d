lib/picture/picture.ml: Array Format List Lph_structure Lph_util Seq String
