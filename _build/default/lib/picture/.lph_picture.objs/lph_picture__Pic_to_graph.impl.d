lib/picture/pic_to_graph.ml: Array Hashtbl List Lph_graph Picture String
