type cell = int option

type window = cell * cell * cell * cell

type t = {
  name : string;
  local_alphabet : int;
  bits : int;
  project : int -> string;
  tiles : window -> bool;
}

(* Recognition: assign local letters to pixels row-major, checking every
   2x2 window of the bordered grid as soon as all four of its cells are
   known. Window W(a, b) has its top-left at bordered position (a, b),
   for a in [0 .. rows] and b in [0 .. cols]. *)
let labelling ts p =
  if Picture.bits p <> ts.bits then invalid_arg "Tiling: bit-width mismatch";
  let rows = Picture.rows p and cols = Picture.cols p in
  let grid = Array.make_matrix (rows + 2) (cols + 2) None in
  let window a b = (grid.(a).(b), grid.(a).(b + 1), grid.(a + 1).(b), grid.(a + 1).(b + 1)) in
  let candidates =
    (* letters projecting to the pixel's entry *)
    Array.init rows (fun i ->
        Array.init cols (fun j ->
            List.filter
              (fun a -> ts.project a = Picture.get p (i + 1) (j + 1))
              (List.init ts.local_alphabet Fun.id)))
  in
  let checks_after i j =
    let base = [ (i - 1, j - 1) ] in
    let base = if j = cols then (i - 1, j) :: base else base in
    let base = if i = rows then (i, j - 1) :: base else base in
    if i = rows && j = cols then (i, j) :: base else base
  in
  let rec assign i j =
    if i > rows then true
    else begin
      let next_i, next_j = if j = cols then (i + 1, 1) else (i, j + 1) in
      let rec try_letters = function
        | [] -> false
        | a :: rest ->
            grid.(i).(j) <- Some a;
            if
              List.for_all (fun (wa, wb) -> ts.tiles (window wa wb)) (checks_after i j)
              && assign next_i next_j
            then true
            else begin
              grid.(i).(j) <- None;
              try_letters rest
            end
      in
      try_letters candidates.(i - 1).(j - 1)
    end
  in
  if assign 1 1 then
    Some (Array.init rows (fun i -> Array.init cols (fun j -> Option.get grid.(i + 1).(j + 1))))
  else None

let recognizes ts p = Option.is_some (labelling ts p)

let windows_of_labelling lab =
  let rows = Array.length lab and cols = Array.length lab.(0) in
  let get a b =
    if a >= 1 && a <= rows && b >= 1 && b <= cols then Some lab.(a - 1).(b - 1) else None
  in
  let acc = ref [] in
  for a = 0 to rows do
    for b = 0 to cols do
      acc := (get a b, get a (b + 1), get (a + 1) b, get (a + 1) (b + 1)) :: !acc
    done
  done;
  !acc

module Wset = Set.Make (struct
  type t = window

  let compare = compare
end)

let from_examples ~name ~local_alphabet ~bits ~project examples =
  let theta =
    List.fold_left
      (fun acc lab -> Wset.union acc (Wset.of_list (windows_of_labelling lab)))
      Wset.empty examples
  in
  { name; local_alphabet; bits; project; tiles = (fun w -> Wset.mem w theta) }

(* ------------------------------------------------------------------ *)

let squares =
  (* diagonal construction: 0 on the diagonal, 1 above, 2 below *)
  let canonical n =
    Array.init n (fun i -> Array.init n (fun j -> if i = j then 0 else if j > i then 1 else 2))
  in
  from_examples ~name:"squares" ~local_alphabet:3 ~bits:0
    ~project:(fun _ -> "")
    (List.init 8 (fun k -> canonical (k + 1)))

let some_row_all_ones =
  (* letter = 4 * bit + 2 * marked + seen, where [marked] flags the
     chosen all-ones row and [seen] means a chosen row lies at or above
     this cell *)
  let bit a = a / 4 and marked a = a / 2 mod 2 and seen a = a mod 2 in
  let ok a = marked a = 0 || bit a = 1 in
  let vertical_ok above below =
    match (above, below) with
    | Some x, Some y ->
        ok x && ok y && seen y = (if marked y = 1 then 1 else seen x)
    | None, Some y -> ok y && seen y = marked y (* top border: nothing above *)
    | Some x, None -> ok x && seen x = 1 (* bottom border: a row must have been chosen *)
    | None, None -> true
  in
  let horizontal_ok left right =
    match (left, right) with
    | Some x, Some y -> marked x = marked y && seen x = seen y
    | _ -> true
  in
  {
    name = "some-row-all-ones";
    local_alphabet = 8;
    bits = 1;
    project = (fun a -> string_of_int (a / 4));
    tiles =
      (fun (tl, tr, bl, br) ->
        vertical_ok tl bl && vertical_ok tr br && horizontal_ok tl tr && horizontal_ok bl br);
  }

let first_row_equals_last_row =
  (* letter = 2 * bit + carry, where the carry propagates the column's
     first bit downwards *)
  let bit a = a / 2 and carry a = a mod 2 in
  let vertical_ok above below =
    match (above, below) with
    | Some x, Some y -> carry x = carry y
    | None, Some y -> carry y = bit y (* top border: the carry starts as the bit *)
    | Some x, None -> bit x = carry x (* bottom border: the bit must equal the carry *)
    | None, None -> true
  in
  {
    name = "first-row-equals-last-row";
    local_alphabet = 4;
    bits = 1;
    project = (fun a -> string_of_int (a / 2));
    tiles = (fun (tl, tr, bl, br) -> vertical_ok tl bl && vertical_ok tr br);
  }

let first_column_equals_last_column =
  (* the transpose of first_row_equals_last_row: the carry travels
     rightward along rows *)
  let bit a = a / 2 and carry a = a mod 2 in
  let horizontal_ok left right =
    match (left, right) with
    | Some x, Some y -> carry x = carry y
    | None, Some y -> carry y = bit y
    | Some x, None -> bit x = carry x
    | None, None -> true
  in
  {
    name = "first-column-equals-last-column";
    local_alphabet = 4;
    bits = 1;
    project = (fun a -> string_of_int (a / 2));
    tiles = (fun (tl, tr, bl, br) -> horizontal_ok tl tr && horizontal_ok bl br);
  }
