(** t-bit pictures (Section 9.2.1): matrices of fixed-length bit
    strings. Pixels are indexed [(row, col)] from (1,1) (the paper's
    top-left corner) to (rows, cols). *)

type t

val create : bits:int -> rows:int -> cols:int -> (int -> int -> string) -> t
(** [create ~bits ~rows ~cols f]: [f i j] is the entry at 1-based pixel
    (i, j) and must be a bit string of length [bits]. *)

val of_rows : string list list -> t
(** Rows of equal length; all entries of equal bit-length. *)

val constant : bits:int -> rows:int -> cols:int -> string -> t

val bits : t -> int
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> string
(** 1-based. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val structure : t -> Lph_structure.Structure.t
(** The structural representation $P (Figure 5/12): one element per
    pixel, unary relation ⊙_j for the j-th bit, binary ⇀1 (vertical
    successor: towards larger row) and ⇀2 (horizontal successor:
    towards larger column). *)

val element_of_pixel : t -> int -> int -> int
(** Domain index of a pixel in {!structure} (row-major). *)

val all_pictures : bits:int -> rows:int -> cols:int -> t Seq.t
(** Exhaustive enumeration (2^(bits*rows*cols) pictures). *)
