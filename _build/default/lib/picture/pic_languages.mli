(** Picture properties used by the Section 9 experiments: direct
    predicates (ground truth), logical definitions over structural
    representations, and the fast-growing families witnessing the
    infiniteness of the monadic hierarchy (Matz–Schweikardt–Thomas). *)

val is_square : Picture.t -> bool
val first_row_equals_last_row : Picture.t -> bool
val all_ones : Picture.t -> bool
(** 1-bit pictures with every pixel 1. *)

val some_one : Picture.t -> bool

(** {1 Logical definitions (evaluated on $P via {!Lph_logic.Eval})} *)

val fo_some_one : Lph_logic.Formula.t
(** FO: ∃x ⊙1 x. *)

val fo_all_ones : Lph_logic.Formula.t
val fo_top_row_ones : Lph_logic.Formula.t
(** FO: every pixel without a vertical predecessor carries a 1. *)

val mso_square : Lph_logic.Formula.t
(** Monadic Σ1: there is a set containing the top-left corner, closed
    under diagonal steps, reaching the bottom-right corner — together
    with first-order constraints this defines squareness. *)

val holds : Picture.t -> Lph_logic.Formula.t -> bool

(** {1 The Matz witness family} *)

val tower : int -> int -> int
(** [tower k n]: the k-fold iterated exponential, [tower 0 n = n],
    [tower (k+1) n = 2^(tower k n)]. *)

val height_is_tower_of_width : int -> Picture.t -> bool
(** The k-th separating language L_k of Matz–Schweikardt–Thomas (up to
    inessential encoding details): pictures whose height equals
    [tower k] of their width. L_k needs k alternating blocks of
    monadic quantifiers; the family witnesses that the monadic —
    hence, by Sections 9.2.1–9.2.2, the local-polynomial — hierarchy
    is infinite. *)

val first_column_equals_last_column : Picture.t -> bool
val some_row_all_ones : Picture.t -> bool
