(** Tiling systems (Giammarresi–Restivo; Theorem 29 of the paper): the
    automaton model characterising existential monadic second-order
    logic on pictures, and the engine behind the infiniteness proof of
    Section 9.

    A tiling system consists of a finite local alphabet Γ, a projection
    Γ → Σ, and a set Θ of allowed 2×2 windows over Γ extended with the
    border symbol #. It recognises a picture p over Σ iff some
    Γ-picture q projecting to p has all 2×2 windows of its
    #-bordered extension in Θ. *)

type cell = int option
(** A bordered-grid cell: [None] is the border symbol #, [Some a] a
    local letter. *)

type window = cell * cell * cell * cell
(** Top-left, top-right, bottom-left, bottom-right. *)

type t = {
  name : string;
  local_alphabet : int;  (** Γ = 0 .. local_alphabet - 1 *)
  bits : int;  (** the projected alphabet: bit strings of this length *)
  project : int -> string;
  tiles : window -> bool;  (** membership in Θ *)
}

val recognizes : t -> Picture.t -> bool
(** Backtracking search for a valid Γ-labelling (exact; worst-case
    exponential). Raises [Invalid_argument] on a bit-width mismatch. *)

val labelling : t -> Picture.t -> int array array option
(** A witness Γ-labelling, if any. *)

val windows_of_labelling : int array array -> window list
(** All 2×2 windows of the #-bordered extension of a Γ-labelling (used
    to learn Θ from examples). *)

val from_examples :
  name:string -> local_alphabet:int -> bits:int -> project:(int -> string) ->
  int array array list -> t
(** Learn Θ as exactly the windows occurring in the given example
    labellings (the standard way to present a tiling system by its
    canonical tilings). *)

(** {1 Classic tiling systems} *)

val squares : t
(** Recognises exactly the square 0-bit pictures (via the diagonal
    construction, with Θ learned from canonical tilings of squares up
    to size 8 — saturating the window set). *)

val first_row_equals_last_row : t
(** Over 1-bit pictures: the first and last rows are equal (each column
    carries its first bit downward). *)

val first_column_equals_last_column : t
(** The transposed system: each row carries its first bit rightward. *)

val some_row_all_ones : t
(** Over 1-bit pictures: some row consists entirely of 1s. The local
    alphabet carries two flags per cell — "my row is the chosen one"
    (constant along rows, forcing the bit to 1) and "a chosen row lies
    at or above me" (accumulated down columns, required at the bottom
    border) — the existential bookkeeping typical of tiling systems. *)
