module F = Lph_logic.Formula
module S = Lph_structure.Structure

let no_vpred x =
  let p = x ^ "$p" in
  F.Not (F.Exists_near (p, x, F.Binary (1, p, x)))

let no_vsucc x =
  let s = x ^ "$s" in
  F.Not (F.Exists_near (s, x, F.Binary (1, x, s)))

let no_vpred_unbounded x =
  let p = x ^ "$p" in
  F.Not (F.Exists (p, F.Binary (1, p, x)))

let no_vsucc_unbounded x =
  let s = x ^ "$s" in
  F.Not (F.Exists (s, F.Binary (1, x, s)))

(* ------------------------------------------------------------------ *)
(* first row = last row: C marks "the top bit of my column is 1".      *)

let c x = F.App ("C", [ x ])

let first_equals_last_matrix ~top ~bottom ~step x =
  F.conj
    [
      F.Implies (top x, F.Iff (c x, F.Unary (1, x)));
      step x;
      F.Implies (bottom x, F.Iff (F.Unary (1, x), c x));
    ]

let local_first_equals_last =
  let step x =
    let y = x ^ "$v" in
    F.Forall_near (y, x, F.Implies (F.Binary (1, x, y), F.Iff (c x, c y)))
  in
  F.Exists_so
    ("C", 1, F.Forall ("x", first_equals_last_matrix ~top:no_vpred ~bottom:no_vsucc ~step "x"))

let monadic_first_equals_last =
  let step x =
    let y = x ^ "$v" in
    F.Forall (y, F.Implies (F.Binary (1, x, y), F.Iff (c x, c y)))
  in
  F.Exists_so
    ( "C",
      1,
      F.Forall
        ("x", first_equals_last_matrix ~top:no_vpred_unbounded ~bottom:no_vsucc_unbounded ~step "x")
    )

(* ------------------------------------------------------------------ *)
(* some pixel is 1: the spanning-forest schema of Example 4, without
   graph-specific node predicates (every picture element is a pixel). *)

let points_to_one x =
  let yp = "yp" and zp = "zp" and yc = "yc" in
  let unique_parent =
    F.exists_within ~radius:1 yp x
      (F.And
         ( F.App ("P", [ x; yp ]),
           F.forall_within ~radius:1 zp x (F.Implies (F.App ("P", [ x; zp ]), F.Eq (zp, yp))) ))
  in
  let root_case = F.Implies (F.App ("P", [ x; x ]), F.And (F.Unary (1, x), F.App ("Y", [ x ]))) in
  let child_case =
    F.Implies
      ( F.Not (F.App ("P", [ x; x ])),
        F.Exists_near
          ( yc,
            x,
            F.And
              ( F.App ("P", [ x; yc ]),
                F.Iff (F.App ("Y", [ x ]), F.Not (F.Iff (F.App ("Y", [ yc ]), F.App ("X", [ x ]))))
              ) ) )
  in
  F.conj [ unique_parent; root_case; child_case ]

let local_some_one =
  F.Exists_so ("P", 2, F.Forall_so ("X", 1, F.Exists_so ("Y", 1, F.Forall ("x", points_to_one "x"))))

let monadic_some_one = F.Exists ("x", F.Unary (1, "x"))

(* ------------------------------------------------------------------ *)

let parent_functions s =
  let choices =
    List.map (fun e -> List.map (fun f -> [ e; f ]) (e :: S.neighbours s e)) (S.elements s)
  in
  List.of_seq
    (Seq.map
       (fun picks -> Lph_logic.Relation.of_list picks)
       (Lph_util.Combinat.product choices))

let pic_universe s : Lph_logic.Eval.so_universe =
 fun _ r arity ->
  match (r, arity) with
  | "P", 2 -> Lph_logic.Eval.Explicit (parent_functions s)
  | _ -> Lph_logic.Eval.Subsets (List.map (fun e -> [ e ]) (S.elements s))

let holds p phi =
  let s = Picture.structure p in
  Lph_logic.Eval.eval ~so_universe:(pic_universe s) ~max_universe:64 s Lph_logic.Eval.empty_env phi
