(** Encoding pictures as labelled graphs (Section 9.2.2): the bridge
    that transfers the infiniteness of the hierarchy from pictures to
    graphs. Each pixel becomes a node labelled [1 ^ bits]; each
    vertical (resp. horizontal) successor edge becomes a length-3 path
    through two direction-marker nodes labelled ["010"]/["011"]
    (resp. ["000"]/["001"]), the first marker sitting on the
    predecessor side — so the grid, its orientation, and the pixel
    entries are all recoverable from the labelled graph alone, up to
    isomorphism. *)

val encode : Picture.t -> Lph_graph.Labeled_graph.t

val decode : Lph_graph.Labeled_graph.t -> Picture.t option
(** Inverse on encodings (up to isomorphism); [None] if the graph is
    not the encoding of any picture. *)

val graph_property_of : (Picture.t -> bool) -> Lph_graph.Labeled_graph.t -> bool
(** The transferred property: graphs that decode to a picture
    satisfying the given picture property. *)
