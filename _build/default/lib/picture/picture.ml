type t = { bits : int; rows : int; cols : int; data : string array array }

let create ~bits ~rows ~cols f =
  if rows < 1 || cols < 1 || bits < 0 then invalid_arg "Picture.create: bad dimensions";
  let data =
    Array.init rows (fun i ->
        Array.init cols (fun j ->
            let s = f (i + 1) (j + 1) in
            if String.length s <> bits || not (Lph_util.Bitstring.is_bitstring s) then
              invalid_arg "Picture.create: entry is not a bit string of the declared length";
            s))
  in
  { bits; rows; cols; data }

let of_rows = function
  | [] | [ [] ] -> invalid_arg "Picture.of_rows: empty picture"
  | first :: _ as rows_list ->
      let cols = List.length first in
      if cols = 0 || List.exists (fun r -> List.length r <> cols) rows_list then
        invalid_arg "Picture.of_rows: ragged rows";
      let bits = String.length (List.hd first) in
      let arr = Array.of_list (List.map Array.of_list rows_list) in
      create ~bits ~rows:(List.length rows_list) ~cols (fun i j -> arr.(i - 1).(j - 1))

let constant ~bits ~rows ~cols entry = create ~bits ~rows ~cols (fun _ _ -> entry)

let bits p = p.bits

let rows p = p.rows

let cols p = p.cols

let get p i j =
  if i < 1 || i > p.rows || j < 1 || j > p.cols then invalid_arg "Picture.get: out of range";
  p.data.(i - 1).(j - 1)

let equal p q = p.bits = q.bits && p.rows = q.rows && p.cols = q.cols && p.data = q.data

let pp fmt p =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun row ->
      Format.fprintf fmt "@,%s"
        (String.concat " " (Array.to_list (Array.map (fun s -> if s = "" then "." else s) row))))
    p.data;
  Format.fprintf fmt "@]"

let element_of_pixel p i j = ((i - 1) * p.cols) + (j - 1)

let structure p =
  let card = p.rows * p.cols in
  let unary =
    Array.init p.bits (fun b ->
        let members = ref [] in
        for i = 1 to p.rows do
          for j = 1 to p.cols do
            if (get p i j).[b] = '1' then members := element_of_pixel p i j :: !members
          done
        done;
        !members)
  in
  let vertical = ref [] and horizontal = ref [] in
  for i = 1 to p.rows do
    for j = 1 to p.cols do
      if i < p.rows then vertical := (element_of_pixel p i j, element_of_pixel p (i + 1) j) :: !vertical;
      if j < p.cols then
        horizontal := (element_of_pixel p i j, element_of_pixel p i (j + 1)) :: !horizontal
    done
  done;
  Lph_structure.Structure.create ~card ~unary ~binary:[| !vertical; !horizontal |]

let all_pictures ~bits ~rows ~cols =
  let entries = Lph_util.Bitstring.all_of_length bits in
  let cells = rows * cols in
  Seq.map
    (fun choice ->
      let arr = Array.of_list choice in
      create ~bits ~rows ~cols (fun i j -> arr.(((i - 1) * cols) + (j - 1))))
    (Lph_util.Combinat.product (List.init cells (fun _ -> entries)))
