(** Local second-order logic on pictures (Section 9.2.1).

    Proposition 28 and Theorem 31 of the paper relate, on pictures, the
    local second-order hierarchy to the monadic one: at every level
    ending in an existential block the two define the same properties,
    with tiling systems (Theorem 29) as the connecting automaton model.
    This module provides concrete picture properties written in both
    logics, so the equivalence triangle

      tiling system ≙ existential monadic SO ≙ existential local SO

    can be checked instance by instance. *)

val local_some_one : Lph_logic.Formula.t
(** Σ3^LFO-style local sentence for "some pixel carries a 1", using the
    spanning-forest PointsTo schema of Example 4 adapted to pictures
    (an unbounded ∃ is not available in local logic). *)

val monadic_some_one : Lph_logic.Formula.t
(** The same property in plain FO (hence mΣ1): ∃x ⊙1 x. *)

val local_first_equals_last : Lph_logic.Formula.t
(** Σ1^LFO sentence for "first row equals last row": an existential
    monadic variable C marks the pixels whose column-top bit is 1 — the
    carried bit of the tiling system {!Tiling.first_row_equals_last_row}
    — and an LFO matrix checks the three local conditions (top border:
    C ⟺ bit; vertical step: C propagates; bottom border: bit = C). *)

val monadic_first_equals_last : Lph_logic.Formula.t
(** The same property in monadic Σ1 with unbounded first-order
    quantification. *)

val holds : Picture.t -> Lph_logic.Formula.t -> bool
(** Evaluate on $P with monadic-friendly universes. *)
