lib/boolean/solver.ml: Cnf List Map Option String
