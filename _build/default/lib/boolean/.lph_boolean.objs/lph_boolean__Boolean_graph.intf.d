lib/boolean/boolean_graph.mli: Bool_formula Lph_graph
