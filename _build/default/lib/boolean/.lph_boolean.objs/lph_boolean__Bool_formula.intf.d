lib/boolean/bool_formula.mli: Format
