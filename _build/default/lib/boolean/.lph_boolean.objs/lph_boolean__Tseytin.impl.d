lib/boolean/tseytin.ml: Bool_formula Cnf List Printf String
