lib/boolean/cnf.mli: Bool_formula Format
