lib/boolean/solver.mli: Bool_formula Cnf
