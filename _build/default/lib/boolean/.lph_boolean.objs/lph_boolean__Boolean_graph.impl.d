lib/boolean/boolean_graph.ml: Array Bool_formula Fun Hashtbl List Lph_graph Printf Solver Tseytin
