lib/boolean/cnf.ml: Bool_formula Format List Option Set String
