lib/boolean/tseytin.mli: Bool_formula Cnf
