lib/boolean/bool_formula.ml: Buffer Char Format List Lph_util Printf Set String
