open Bool_formula

let transform ~fresh_prefix formula =
  let prefix = fresh_prefix ^ "." in
  List.iter
    (fun v ->
      if String.length v >= String.length prefix && String.sub v 0 (String.length prefix) = prefix
      then invalid_arg "Tseytin.transform: input uses a reserved fresh variable")
    (vars formula);
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  let clauses = ref [] in
  let emit c = clauses := c :: !clauses in
  (* returns a literal equivalent to the subformula *)
  let rec gate = function
    | Const true ->
        let v = fresh () in
        emit [ Cnf.pos v ];
        Cnf.pos v
    | Const false ->
        let v = fresh () in
        emit [ Cnf.neg v ];
        Cnf.pos v
    | Var v -> Cnf.pos v
    | Not f -> Cnf.negate (gate f)
    | And (f, g) ->
        let a = gate f and b = gate g in
        let v = fresh () in
        (* v <-> a ∧ b *)
        emit [ Cnf.neg v; a ];
        emit [ Cnf.neg v; b ];
        emit [ Cnf.pos v; Cnf.negate a; Cnf.negate b ];
        Cnf.pos v
    | Or (f, g) ->
        let a = gate f and b = gate g in
        let v = fresh () in
        (* v <-> a ∨ b *)
        emit [ Cnf.neg v; a; b ];
        emit [ Cnf.pos v; Cnf.negate a ];
        emit [ Cnf.pos v; Cnf.negate b ];
        Cnf.pos v
  in
  let root = gate formula in
  emit [ root ];
  List.rev !clauses
