(** A DPLL SAT solver with unit propagation and pure-literal
    elimination. Exact; used as the satisfiability backend for
    SAT-GRAPH and for cross-checking the Cook–Levin constructions. *)

val solve : Cnf.t -> (Bool_formula.var -> bool) option
(** A satisfying valuation (total on the CNF's variables), or [None]. *)

val satisfiable : Cnf.t -> bool
