(** Conjunctive normal form. A clause is a disjunction of literals; a
    CNF is a conjunction of clauses. 3-CNF (clauses of at most three
    literals) is the label format of 3-SAT-GRAPH instances. *)

type literal = { var : Bool_formula.var; positive : bool }

type clause = literal list

type t = clause list

val pos : Bool_formula.var -> literal
val neg : Bool_formula.var -> literal
val negate : literal -> literal

val vars : t -> Bool_formula.var list
val eval : (Bool_formula.var -> bool) -> t -> bool
val to_formula : t -> Bool_formula.t
val is_3cnf : t -> bool
(** Every clause has at most 3 literals. *)

val of_formula : Bool_formula.t -> t option
(** Recover the clause structure of a CNF-shaped formula (a conjunction
    tree of disjunction trees of literals); [None] if the formula is
    not in that shape. [Const true] reads as the empty CNF, [Const
    false] as an empty clause. *)

val pp : Format.formatter -> t -> unit
