module Smap = Map.Make (String)

(* Assignments are persistent maps, so backtracking simply drops the
   extended map. *)

let clause_status assignment clause =
  let rec go acc = function
    | [] -> `Clause (List.rev acc)
    | l :: rest -> begin
        match Smap.find_opt l.Cnf.var assignment with
        | Some b -> if b = l.Cnf.positive then `Satisfied else go acc rest
        | None -> go (l :: acc) rest
      end
  in
  go [] clause

(* Simplify under the assignment and propagate unit clauses to a
   fixpoint. Returns None on conflict. *)
let rec simplify assignment cnf =
  let rec scan acc units = function
    | [] -> `Done (List.rev acc, units)
    | clause :: rest -> begin
        match clause_status assignment clause with
        | `Satisfied -> scan acc units rest
        | `Clause [] -> `Conflict
        | `Clause [ l ] -> scan acc (l :: units) rest
        | `Clause c -> scan (c :: acc) units rest
      end
  in
  match scan [] [] cnf with
  | `Conflict -> None
  | `Done (remaining, []) -> Some (assignment, remaining)
  | `Done (remaining, units) ->
      let assignment, conflict =
        List.fold_left
          (fun (a, conflict) l ->
            match Smap.find_opt l.Cnf.var a with
            | Some b when b <> l.Cnf.positive -> (a, true)
            | _ -> (Smap.add l.Cnf.var l.Cnf.positive a, conflict))
          (assignment, false) units
      in
      if conflict then None else simplify assignment remaining

let rec dpll assignment cnf =
  match simplify assignment cnf with
  | None -> None
  | Some (assignment, []) -> Some assignment
  | Some (assignment, remaining) ->
      let l = List.hd (List.hd remaining) in
      let try_value b = dpll (Smap.add l.Cnf.var b assignment) remaining in
      begin
        match try_value l.Cnf.positive with
        | Some a -> Some a
        | None -> try_value (not l.Cnf.positive)
      end

let solve cnf =
  match dpll Smap.empty cnf with
  | None -> None
  | Some assignment ->
      let lookup v = match Smap.find_opt v assignment with Some b -> b | None -> false in
      Some lookup

let satisfiable cnf = Option.is_some (solve cnf)
