type literal = { var : Bool_formula.var; positive : bool }

type clause = literal list

type t = clause list

let pos var = { var; positive = true }

let neg var = { var; positive = false }

let negate l = { l with positive = not l.positive }

module Sset = Set.Make (String)

let vars cnf =
  Sset.elements
    (List.fold_left
       (fun acc clause -> List.fold_left (fun acc l -> Sset.add l.var acc) acc clause)
       Sset.empty cnf)

let eval env cnf =
  List.for_all (List.exists (fun l -> if l.positive then env l.var else not (env l.var))) cnf

let to_formula cnf =
  Bool_formula.conj
    (List.map
       (fun clause ->
         Bool_formula.disj
           (List.map
              (fun l ->
                if l.positive then Bool_formula.Var l.var else Bool_formula.Not (Var l.var))
              clause))
       cnf)

let is_3cnf cnf = List.for_all (fun clause -> List.length clause <= 3) cnf

let of_formula formula =
  let open Bool_formula in
  let rec clause = function
    | Var v -> Some [ pos v ]
    | Not (Var v) -> Some [ neg v ]
    | Const false -> Some []
    | Or (a, b) -> begin
        match (clause a, clause b) with Some x, Some y -> Some (x @ y) | _ -> None
      end
    | Const true | Not _ | And _ -> None
  in
  let rec clauses = function
    | And (a, b) -> begin
        match (clauses a, clauses b) with Some x, Some y -> Some (x @ y) | _ -> None
      end
    | Const true -> Some []
    | f -> Option.map (fun c -> [ c ]) (clause f)
  in
  clauses formula

let pp fmt cnf =
  let pp_lit fmt l = Format.fprintf fmt "%s%s" (if l.positive then "" else "¬") l.var in
  let pp_clause fmt c =
    Format.fprintf fmt "(%a)" (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ∨ ") pp_lit) c
  in
  Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ∧ ") pp_clause fmt cnf
