(** The Tseytin transformation: convert an arbitrary Boolean formula
    into an equisatisfiable 3-CNF by introducing one fresh variable per
    internal gate (used by the SAT-GRAPH → 3-SAT-GRAPH reduction of
    Theorem 20, where the fresh names are derived from the node's
    identifier so that adjacent nodes never share them). *)

val transform : fresh_prefix:string -> Bool_formula.t -> Cnf.t
(** Fresh variables are named [fresh_prefix ^ "." ^ i]. The result is
    3-CNF; every satisfying valuation of the input extends to one of
    the output, and every satisfying valuation of the output restricts
    to one of the input. Raises [Invalid_argument] if the input already
    contains a variable starting with [fresh_prefix ^ "."]. *)
