(** Boolean graphs and the SAT-GRAPH property (Section 8, Theorem 19).

    A Boolean graph is a labelled graph whose labels encode Boolean
    formulas. It is satisfiable when each node can be given a valuation
    of the variables of its own formula such that (a) every node's
    formula is satisfied and (b) valuations of {e adjacent} nodes agree
    on every variable they share. Non-adjacent nodes may disagree —
    variable scope is local, which is what lets a distributed machine
    produce these instances under merely locally unique identifiers. *)

type t = Lph_graph.Labeled_graph.t
(** A labelled graph whose labels decode as formulas. *)

val make : Lph_graph.Labeled_graph.t -> Bool_formula.t array -> t
(** Same topology, labels replaced by formula encodings. *)

val formula_of_node : t -> int -> Bool_formula.t

val satisfiable : t -> bool
(** The SAT-GRAPH property. Variable instances [(node, var)] are merged
    along edges with union–find, each node's formula is renamed to its
    instance classes and Tseytin-encoded, and the conjunction goes to
    the DPLL solver. *)

val satisfiable_brute : t -> bool
(** Reference implementation: brute force over the merged variable
    classes (for cross-checking on tiny instances). *)

val is_3cnf_graph : t -> bool
(** Every label decodes to a 3-CNF-shaped formula (a conjunction of
    clauses with at most three literals): membership in the
    3-SAT-GRAPH domain. *)

val sat : Bool_formula.t -> t
(** The single-node Boolean graph: SAT as the restriction of SAT-GRAPH
    to NODE. *)

val checkable_locally :
  t -> valuations:(int -> Bool_formula.var -> bool) -> bool
(** The NLP-verifier view: given per-node valuations, check that every
    node's formula is satisfied and consistent with its neighbours
    (what each node verifies in one round). *)
