(** Graph isomorphism for small graphs (backtracking with degree and
    label pruning). Graph properties are required to be closed under
    isomorphism; tests use this module to check that our deciders and
    reductions respect that closure. *)

val find : Labeled_graph.t -> Labeled_graph.t -> int array option
(** [find g h] returns a label- and edge-preserving bijection
    (as an array mapping nodes of [g] to nodes of [h]), if one exists. *)

val isomorphic : Labeled_graph.t -> Labeled_graph.t -> bool
