lib/graph/certificates.ml: Array Labeled_graph List Lph_util Neighborhood Seq String
