lib/graph/labeled_graph.ml: Array Format Fun List Lph_util Printf Queue String
