lib/graph/generators.ml: Array Labeled_graph List Random String
