lib/graph/neighborhood.mli: Labeled_graph
