lib/graph/isomorphism.ml: Array Labeled_graph List Neighborhood Option
