lib/graph/neighborhood.ml: Array Hashtbl Labeled_graph List Queue String
