lib/graph/structural.ml: Array Labeled_graph List Lph_structure String
