lib/graph/identifiers.ml: Array Labeled_graph List Lph_util Neighborhood String
