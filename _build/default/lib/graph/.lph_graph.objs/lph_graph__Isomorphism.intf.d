lib/graph/isomorphism.mli: Labeled_graph
