lib/graph/certificates.mli: Identifiers Labeled_graph Lph_util Seq
