lib/graph/identifiers.mli: Labeled_graph
