lib/graph/structural.mli: Labeled_graph Lph_structure
