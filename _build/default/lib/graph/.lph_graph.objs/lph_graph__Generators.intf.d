lib/graph/generators.mli: Labeled_graph Random
