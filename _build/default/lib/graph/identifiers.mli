(** Identifier assignments (Section 3). Identifiers are bit strings; the
    paper's correctness requirement is only that assignments be
    [r_id]-locally unique: distinct within the [2 r_id]-neighbourhood of
    every node. Lexicographic identifier order coincides with OCaml's
    [String.compare] on bit strings. *)

type t = string array
(** [t.(u)] is the identifier of node [u]. *)

val compare_id : string -> string -> int
(** The paper's identifier order: proper prefixes first, then first
    differing bit. *)

val is_locally_unique : Labeled_graph.t -> radius:int -> t -> bool
(** [radius] is the paper's [r_id]: any two distinct nodes within the
    [2 r_id]-neighbourhood of each other must have distinct identifiers. *)

val is_globally_unique : Labeled_graph.t -> t -> bool

val is_small : Labeled_graph.t -> radius:int -> t -> bool
(** Each identifier has length at most
    [ceil(log2 (card (N_{2 r_id}(u))))] (Remark 1). *)

val make_global : Labeled_graph.t -> t
(** Globally unique, small: node [u] gets [u] in binary, zero-padded to
    [ceil(log2 n)] bits. *)

val make_small : Labeled_graph.t -> radius:int -> t
(** A small [radius]-locally unique assignment, built greedily as in
    Remark 1 (colour the conflict graph where nodes within distance
    [2 radius] conflict). *)

val cyclic : Labeled_graph.t -> period:int -> t
(** Assign node [u] the binary encoding of [u mod period], zero-padded to
    a common width. On a cycle graph whose length is a multiple of
    [period], this is the Proposition 23 construction and is
    [r_id]-locally unique whenever [period > 4 * r_id]. *)

val duplicate : t -> t
(** [duplicate id] for the Proposition 21 lift: given an assignment for a
    graph on [n] nodes, the assignment for the doubled graph where node
    [n + i] receives [id.(i)]. *)
