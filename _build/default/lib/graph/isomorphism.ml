module G = Labeled_graph

let signature g u = (G.degree g u, G.label g u)

let find g h =
  let n = G.card g in
  if n <> G.card h || G.num_edges g <> G.num_edges h then None
  else begin
    let sorted sigs = List.sort compare sigs in
    if
      sorted (List.map (signature g) (G.nodes g))
      <> sorted (List.map (signature h) (G.nodes h))
    then None
    else begin
      let mapping = Array.make n (-1) in
      let used = Array.make n false in
      (* order g's nodes so that each node after the first is adjacent to an
         earlier one (BFS order): candidate sets stay small *)
      let order = Array.of_list (List.sort (fun u v -> compare (Neighborhood.distance g 0 u, u) (Neighborhood.distance g 0 v, v)) (G.nodes g)) in
      let compatible u v =
        signature g u = signature h v
        && List.for_all
             (fun w -> mapping.(w) < 0 || G.has_edge h mapping.(w) v)
             (G.neighbours g u)
        && List.for_all
             (fun w ->
               (* non-edges must also be preserved *)
               let mw = mapping.(w) in
               mw < 0 || G.has_edge g u w || not (G.has_edge h mw v))
             (G.nodes g)
      in
      let rec assign i =
        if i >= n then true
        else begin
          let u = order.(i) in
          let rec try_candidates v =
            if v >= n then false
            else if (not used.(v)) && compatible u v then begin
              mapping.(u) <- v;
              used.(v) <- true;
              if assign (i + 1) then true
              else begin
                mapping.(u) <- -1;
                used.(v) <- false;
                try_candidates (v + 1)
              end
            end
            else try_candidates (v + 1)
          in
          try_candidates 0
        end
      in
      if assign 0 then Some mapping else None
    end
  end

let isomorphic g h = Option.is_some (find g h)
