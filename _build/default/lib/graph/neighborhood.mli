(** Distances and r-neighbourhoods (Section 3). [N_r(u)] is the subgraph
    induced by all nodes at distance at most [r] from [u]; it is the unit
    of "locally available information" throughout the paper. *)

val distances : Labeled_graph.t -> int -> int array
(** BFS distances from a node; unreachable is impossible (graphs are
    connected). *)

val distance : Labeled_graph.t -> int -> int -> int

val ball : Labeled_graph.t -> radius:int -> int -> int list
(** Nodes at distance [<= radius], sorted by node index. *)

val eccentricity : Labeled_graph.t -> int -> int
val diameter : Labeled_graph.t -> int

type induced = {
  subgraph : Labeled_graph.t;
  to_sub : int -> int option;  (** original node -> subgraph node *)
  of_sub : int -> int;  (** subgraph node -> original node *)
}

val induced : Labeled_graph.t -> int list -> induced
(** Induced subgraph on a set of nodes (must be non-empty and induce a
    connected subgraph). *)

val r_neighbourhood : Labeled_graph.t -> radius:int -> int -> induced
(** [N_r(u)] with its node correspondence. The ball around a node always
    induces a connected subgraph. *)

val ball_information : Labeled_graph.t -> ids:string array -> radius:int -> int -> int
(** The quantity the paper's (r,p)-bounds are measured against:
    [sum over v in N_r(u) of 1 + len(label v) + len(id v)]. *)
