module G = Labeled_graph

let distances g src =
  let n = G.card g in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (G.neighbours g u)
  done;
  dist

let distance g u v = (distances g u).(v)

let ball g ~radius u =
  let dist = distances g u in
  List.filter (fun v -> dist.(v) >= 0 && dist.(v) <= radius) (G.nodes g)

let eccentricity g u =
  Array.fold_left max 0 (distances g u)

let diameter g =
  List.fold_left (fun acc u -> max acc (eccentricity g u)) 0 (G.nodes g)

type induced = {
  subgraph : G.t;
  to_sub : int -> int option;
  of_sub : int -> int;
}

let induced g nodes =
  let nodes = List.sort_uniq compare nodes in
  let index = Hashtbl.create 16 in
  List.iteri (fun i u -> Hashtbl.replace index u i) nodes;
  let arr = Array.of_list nodes in
  let labels = Array.map (G.label g) arr in
  let edges =
    List.filter_map
      (fun (u, v) ->
        match (Hashtbl.find_opt index u, Hashtbl.find_opt index v) with
        | Some i, Some j -> Some (i, j)
        | _ -> None)
      (G.edges g)
  in
  let subgraph = G.make ~labels ~edges in
  { subgraph; to_sub = Hashtbl.find_opt index; of_sub = (fun i -> arr.(i)) }

let r_neighbourhood g ~radius u = induced g (ball g ~radius u)

let ball_information g ~ids ~radius u =
  List.fold_left
    (fun acc v -> acc + 1 + String.length (G.label g v) + String.length ids.(v))
    0 (ball g ~radius u)
