(** Structural representations $G of labelled graphs (Section 3,
    Figure 4). The representation has one element per node and one per
    labelling bit; signature (1, 2):

    - ⊙1 marks the labelling bits of value 1;
    - ⇀1 holds the (symmetric) edge relation on nodes and the successor
      relation on each node's labelling bits;
    - ⇀2 points from each node to each of its labelling bits. *)

type element =
  | Node of int
  | Bit of int * int  (** [Bit (u, i)]: the i-th labelling bit of node [u], 1-based. *)

type repr

val of_graph : Labeled_graph.t -> repr

val structure : repr -> Lph_structure.Structure.t
val graph : repr -> Labeled_graph.t

val to_index : repr -> element -> int
(** Domain index of an element. Raises [Not_found] for invalid bits. *)

val of_index : repr -> int -> element

val node_elements : repr -> int -> int list
(** The domain indices representing node [u] and all its labelling bits
    (the elements a node "owns": where a Cook–Levin formula evaluates
    its matrix). *)

val card : Labeled_graph.t -> int
(** [card($G)]: number of nodes plus total label length. *)

val structural_degree : Labeled_graph.t -> int -> int
(** Degree plus label length of a node (Section 9). *)

val max_structural_degree : Labeled_graph.t -> int

val in_graph_delta : Labeled_graph.t -> int -> bool
(** Membership in GRAPH(Δ): every node has structural degree at most Δ. *)
