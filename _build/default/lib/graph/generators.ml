module G = Labeled_graph

let default_labels n = function
  | Some labels ->
      if Array.length labels <> n then raise (G.Invalid "generators: wrong number of labels");
      labels
  | None -> Array.make n "1"

let path ?labels n =
  let labels = default_labels n labels in
  G.make ~labels ~edges:(List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle ?labels n =
  if n < 3 then raise (G.Invalid "generators: cycle needs at least 3 nodes");
  let labels = default_labels n labels in
  let edges = (n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)) in
  G.make ~labels ~edges

let complete ?labels n =
  let labels = default_labels n labels in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  G.make ~labels ~edges:!edges

let star ?labels n =
  let labels = default_labels n labels in
  G.make ~labels ~edges:(List.init (n - 1) (fun i -> (0, i + 1)))

let grid ?(label = "1") ~rows ~cols () =
  if rows < 1 || cols < 1 then raise (G.Invalid "generators: empty grid");
  let labels = Array.make (rows * cols) label in
  let idx i j = (i * cols) + j in
  let edges = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if j + 1 < cols then edges := (idx i j, idx i (j + 1)) :: !edges;
      if i + 1 < rows then edges := (idx i j, idx (i + 1) j) :: !edges
    done
  done;
  G.make ~labels ~edges:!edges

let balanced_binary_tree ?(label = "1") ~depth () =
  if depth < 0 then raise (G.Invalid "generators: negative depth");
  let n = (1 lsl (depth + 1)) - 1 in
  let labels = Array.make n label in
  let edges = ref [] in
  for u = 1 to n - 1 do
    edges := ((u - 1) / 2, u) :: !edges
  done;
  G.make ~labels ~edges:!edges

let random_bitstring rng bits = String.init bits (fun _ -> if Random.State.bool rng then '1' else '0')

let random_connected ~rng ~n ~extra_edges ?(label_bits = 1) () =
  if n < 1 then raise (G.Invalid "generators: empty graph");
  (* random spanning tree: attach each node to a random earlier node *)
  let edges = ref [] in
  for u = 1 to n - 1 do
    edges := (Random.State.int rng u, u) :: !edges
  done;
  let has (u, v) = List.mem (min u v, max u v) !edges in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra_edges && !attempts < 50 * (extra_edges + 1) do
    incr attempts;
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v && not (has (min u v, max u v)) then begin
      edges := (min u v, max u v) :: !edges;
      incr added
    end
  done;
  let labels = Array.init n (fun _ -> random_bitstring rng label_bits) in
  G.make ~labels ~edges:!edges

let random_labels ~rng ~bits g =
  G.map_labels (fun _ _ -> random_bitstring rng bits) g

let glued_even_cycle n =
  if n < 3 || n mod 2 = 0 then raise (G.Invalid "glued_even_cycle: n must be odd and >= 3");
  let g = cycle ~labels:(Array.make n "") n in
  let g' = cycle ~labels:(Array.make (2 * n) "") (2 * n) in
  (g, g')
