(** The Eve/Adam certificate game (Section 4). Eve (existential) and
    Adam (universal) alternately choose certificate assignments; after
    ℓ moves the arbiter decides. A graph has the Σℓ-property arbitrated
    by M iff Eve wins the game in which she moves first; Πℓ when Adam
    moves first.

    The solver is exact over explicit finite certificate universes:
    either all (r,p)-bounded bit strings up to a cap, or a semantic
    per-node universe (the restrictive-arbiter view of Lemma 8, which
    licenses restricting quantifiers as long as the restrictors are
    locally repairable — the responsibility of the caller). Complexity
    is [Π_u |universe u|] raised to the number of levels: strictly a
    small-instance tool. *)

type player = Eve | Adam

val opponent : player -> player

type universe = int -> string list
(** Per-node certificate candidates (node index -> choices). *)

val bitstring_universe : max_len:int -> universe
(** All bit strings of length at most [max_len], for every node. *)

val bounded_universe :
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  Lph_graph.Certificates.bound ->
  cap:int ->
  universe
(** All (r,p)-bounded bit strings per node, additionally capped at
    length [cap]. *)

val of_choices : string list -> universe
(** The same candidate list for every node. *)

val assignments : n:int -> universe -> Lph_graph.Certificates.t Seq.t
(** All certificate assignments over [n] nodes. *)

val solve :
  first:player ->
  n:int ->
  universes:universe list ->
  arbiter:(Lph_graph.Certificates.t list -> bool) ->
  bool
(** Exact game value: [universes] has one entry per level, in move
    order. With [first = Eve] this computes
    ∃k1 ∀k2 ... : arbiter [k1; k2; ...]. *)

val sigma_accepts :
  Arbiter.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:universe list ->
  bool
(** Does the graph satisfy the Σℓ-condition of the given arbiter
    (ℓ = [Arbiter.levels], Eve first)? *)

val pi_accepts :
  Arbiter.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:universe list ->
  bool

val eve_witness :
  Arbiter.t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:universe list ->
  Lph_graph.Certificates.t option
(** For a 1-level arbiter: a certificate assignment making it accept,
    if one exists (the NLP witness). *)
