(** Locally checkable labellings (Naor–Stockmeyer), read as decision
    problems: the class LCL that the paper's LP generalises
    (Section 1.3: LCL ⊆ LP ⊆ LD, with LCL requiring bounded maximum
    degree and constant-size labels).

    An LCL is a radius-1 constraint on (centre label, neighbour
    labels); a graph has the property when every node's constraint is
    satisfied. Its decider gathers the 1-ball and checks — a
    constant-round, polynomial-step machine, witnessing LCL ⊆ LP. *)

type t = {
  name : string;
  max_degree : int;  (** the Δ bound of the LCL domain *)
  max_label_len : int;  (** the constant label-size bound *)
  allowed : centre:string -> neighbours:string list -> bool;
      (** the radius-1 checkability predicate; [neighbours] is sorted *)
}

val in_domain : t -> Lph_graph.Labeled_graph.t -> bool
(** The graph obeys the degree and label-size bounds. *)

val holds : t -> Lph_graph.Labeled_graph.t -> bool
(** Centralised ground truth: every node's constraint is satisfied
    (graphs outside the domain do not have the property). *)

val decider : t -> Lph_machine.Local_algo.packed
(** The LP decider: gather radius 1, check the domain bounds and the
    constraint locally. *)

(** {1 Classic LCLs} *)

val proper_coloring : delta:int -> colors:int -> t
(** Labels are binary colour encodings below [colors]; adjacent nodes
    must differ. *)

val maximal_independent_set : delta:int -> t
(** Labels 0/1; selected nodes have no selected neighbour, unselected
    nodes have at least one selected neighbour. *)

val at_most_one_selected_locally : delta:int -> t
(** Labels 0/1; no two adjacent nodes both selected (an "independent
    set" without the maximality condition). *)
