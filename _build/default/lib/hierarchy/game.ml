module G = Lph_graph.Labeled_graph
module Certs = Lph_graph.Certificates

type player = Eve | Adam

let opponent = function Eve -> Adam | Adam -> Eve

type universe = int -> string list

let bitstring_universe ~max_len _u = Lph_util.Bitstring.all_up_to_length max_len

let bounded_universe g ~ids bound ~cap u =
  Lph_util.Bitstring.all_up_to_length (min cap (Certs.max_length g ~ids bound u))

let of_choices choices _u = choices

let assignments ~n universe =
  let choices = List.init n universe in
  Seq.map Array.of_list (Lph_util.Combinat.product choices)

let solve ~first ~n ~universes ~arbiter =
  let rec go player universes chosen =
    match universes with
    | [] -> arbiter (List.rev chosen)
    | universe :: rest ->
        let options = assignments ~n universe in
        let continue k = go (opponent player) rest (k :: chosen) in
        begin
          match player with
          | Eve -> Seq.exists continue options
          | Adam -> Seq.for_all continue options
        end
  in
  go first universes []

let check_levels (a : Arbiter.t) universes =
  if List.length universes <> a.Arbiter.levels then
    invalid_arg
      (Printf.sprintf "Game: arbiter %s expects %d levels, got %d universes" a.Arbiter.name
         a.Arbiter.levels (List.length universes))

let sigma_accepts a g ~ids ~universes =
  check_levels a universes;
  solve ~first:Eve ~n:(G.card g) ~universes ~arbiter:(fun certs -> a.Arbiter.accepts g ~ids ~certs)

let pi_accepts a g ~ids ~universes =
  check_levels a universes;
  solve ~first:Adam ~n:(G.card g) ~universes ~arbiter:(fun certs -> a.Arbiter.accepts g ~ids ~certs)

let eve_witness a g ~ids ~universes =
  check_levels a universes;
  match universes with
  | [ universe ] ->
      Seq.find
        (fun k -> a.Arbiter.accepts g ~ids ~certs:[ k ])
        (assignments ~n:(G.card g) universe)
  | _ -> invalid_arg "Game.eve_witness: arbiter must have exactly one level"
