(** Arbiters (Section 4): the machines that determine the winner of the
    Eve/Adam certificate game. An arbiter is any machine that, given a
    graph, an identifier assignment and a list of certificate
    assignments (one per quantifier level), reaches a unanimous
    verdict. Local algorithms and distributed Turing machines both
    provide arbiters. *)

type t = {
  name : string;
  levels : int;  (** ℓ: number of certificate assignments expected *)
  id_radius : int;  (** r_id: required local uniqueness of identifiers *)
  cert_bound : Lph_graph.Certificates.bound option;
      (** the (r, p) bound the arbiter's quantifiers range over, when
          one is declared *)
  accepts :
    Lph_graph.Labeled_graph.t ->
    ids:Lph_graph.Identifiers.t ->
    certs:Lph_graph.Certificates.t list ->
    bool;
}

val of_local_algo :
  id_radius:int -> ?cert_bound:Lph_graph.Certificates.bound -> Lph_machine.Local_algo.packed -> t
(** Wrap a local algorithm; [levels] is taken from the algorithm. The
    certificate assignments are joined into a certificate-list
    assignment before running, as in the paper. *)

val of_turing :
  levels:int -> id_radius:int -> ?cert_bound:Lph_graph.Certificates.bound -> Lph_machine.Turing.t -> t

val decider_accepts : t -> Lph_graph.Labeled_graph.t -> ids:Lph_graph.Identifiers.t -> bool
(** Run a 0-level arbiter (an LP-decider candidate). *)
