(** Ground-truth deciders for the graph properties studied in the
    paper, computed centrally (no distributed machinery): the reference
    answers that arbiters, reductions and logical definitions are
    tested against. All are exact; the NP-hard ones use backtracking
    and are meant for small instances. *)

val all_selected : Lph_graph.Labeled_graph.t -> bool
(** Every node labelled "1" (ALL-SELECTED, trivially LP-complete). *)

val not_all_selected : Lph_graph.Labeled_graph.t -> bool

val constant_labelling : Lph_graph.Labeled_graph.t -> bool
(** All nodes carry the same label. *)

val eulerian : Lph_graph.Labeled_graph.t -> bool
(** Euler's criterion: all degrees even (graphs are connected by
    construction). A single node is Eulerian (empty cycle). *)

val hamiltonian : Lph_graph.Labeled_graph.t -> bool
(** Contains a cycle through every node exactly once (requires at least
    3 nodes). Backtracking search. *)

val k_colorable : int -> Lph_graph.Labeled_graph.t -> bool
(** Proper k-colourability, backtracking with the usual
    smallest-first symmetry breaking. *)

val two_colorable : Lph_graph.Labeled_graph.t -> bool
(** Via BFS bipartition (linear time). *)

val three_colorable : Lph_graph.Labeled_graph.t -> bool

val find_k_coloring : int -> Lph_graph.Labeled_graph.t -> int array option
(** A witness colouring, if one exists. *)

val find_hamiltonian_cycle : Lph_graph.Labeled_graph.t -> int list option
(** A witness cycle (as the list of nodes in visiting order). *)
