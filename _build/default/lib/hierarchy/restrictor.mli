(** Certificate restrictors and restrictive arbiters (Section 6).

    A restrictor judges, per node, whether the latest certificate
    assignment obeys some convention (e.g. "decodes to a colour below
    k", "encodes a relation fragment owned by this node"). Quantifiers
    of a {e restrictive} arbiter range only over assignments all of
    whose restrictors accept unanimously. Lemma 8 shows this adds no
    power as long as every restrictor is {e locally repairable}: a
    rejecting node can always fix its own certificate without changing
    anyone else's verdict. This module implements the restrictors, the
    repairability check, the restricted game, and the Lemma 8
    conversion back to a permissive arbiter. *)

type t = {
  name : string;
  verdicts :
    Lph_graph.Labeled_graph.t ->
    ids:Lph_graph.Identifiers.t ->
    prefix:Lph_graph.Certificates.t list ->
    candidate:Lph_graph.Certificates.t ->
    bool array;
      (** per-node verdicts of the restrictor machine on
          (G, id, prefix · candidate) *)
}

val trivial : t
(** Accepts everything. *)

val per_node : name:string -> (Lph_machine.Local_algo.ctx -> string -> bool) -> t
(** A restrictor whose verdict at each node depends only on that node's
    own data and candidate certificate — the common case, and locally
    repairable whenever at least one acceptable certificate exists per
    node (checked by {!locally_repairable}). *)

val accepts_all : t -> Lph_graph.Labeled_graph.t -> ids:Lph_graph.Identifiers.t ->
  prefix:Lph_graph.Certificates.t list -> candidate:Lph_graph.Certificates.t -> bool

val locally_repairable :
  t ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  prefix_universe:Lph_graph.Certificates.t list list ->
  universe:Game.universe ->
  bool
(** Empirically verify the local-repairability condition over the given
    finite prefix and candidate universes: whenever some node rejects,
    replacing only that node's certificate (searching the universe) can
    make it accept while every other node's verdict is unchanged. *)

val restricted_game :
  first:Game.player ->
  arbiter:Arbiter.t ->
  restrictors:t list ->
  Lph_graph.Labeled_graph.t ->
  ids:Lph_graph.Identifiers.t ->
  universes:Game.universe list ->
  bool
(** The restrictive-arbiter semantics: the game over the given
    universes with each level additionally filtered by its restrictor
    (assignments whose restrictor rejects are removed from that
    quantifier's range). *)

val lemma8_convert : restrictors:t list -> first:Game.player -> Arbiter.t -> Arbiter.t
(** The Lemma 8 construction: a {e permissive} arbiter equivalent to
    the restrictive one. Running on (G, id, k1 · ... · kl) it finds the
    first level whose restrictor is violated; if that level is
    quantified existentially the graph is rejected, if universally it
    is accepted; with no violation it defers to the original arbiter.
    [first] fixes the polarity of level 1 (Eve ⇒ odd levels are
    existential). *)
