module G = Lph_graph.Labeled_graph
module Certs = Lph_graph.Certificates

type t = {
  name : string;
  levels : int;
  id_radius : int;
  cert_bound : Certs.bound option;
  accepts : G.t -> ids:Lph_graph.Identifiers.t -> certs:Certs.t list -> bool;
}

let join_certs g certs =
  match certs with [] -> Certs.trivial g | _ -> Certs.list_assignment certs

let of_local_algo ~id_radius ?cert_bound packed =
  {
    name = Lph_machine.Local_algo.name packed;
    levels = Lph_machine.Local_algo.levels packed;
    id_radius;
    cert_bound;
    accepts =
      (fun g ~ids ~certs ->
        Lph_machine.Runner.decides packed g ~ids ~cert_list:(join_certs g certs) ());
  }

let of_turing ~levels ~id_radius ?cert_bound (m : Lph_machine.Turing.t) =
  {
    name = m.Lph_machine.Turing.name;
    levels;
    id_radius;
    cert_bound;
    accepts =
      (fun g ~ids ~certs ->
        Lph_machine.Turing.accepts
          (Lph_machine.Turing.run m g ~ids ~certs:(join_certs g certs) ()));
  }

let decider_accepts t g ~ids =
  if t.levels <> 0 then invalid_arg "Arbiter.decider_accepts: arbiter expects certificates";
  t.accepts g ~ids ~certs:[]
