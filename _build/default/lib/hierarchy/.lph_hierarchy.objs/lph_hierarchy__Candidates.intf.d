lib/hierarchy/candidates.mli: Game Lph_graph Lph_machine
