lib/hierarchy/separations.mli: Lph_graph Lph_machine
