lib/hierarchy/separations.ml: Arbiter Array Candidates Fun Game List Lph_graph Lph_machine Properties
