lib/hierarchy/classes.ml: Arbiter Fun Game List Printf
