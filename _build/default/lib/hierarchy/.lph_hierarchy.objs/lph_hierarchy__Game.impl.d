lib/hierarchy/game.ml: Arbiter Array List Lph_graph Lph_util Printf Seq
