lib/hierarchy/lcl.ml: List Lph_graph Lph_machine Lph_util Printf String
