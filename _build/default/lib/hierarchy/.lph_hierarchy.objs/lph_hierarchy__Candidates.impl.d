lib/hierarchy/candidates.ml: Array List Lph_graph Lph_machine Lph_util Printf Properties
