lib/hierarchy/restrictor.mli: Arbiter Game Lph_graph Lph_machine
