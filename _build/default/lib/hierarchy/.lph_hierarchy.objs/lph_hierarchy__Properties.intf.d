lib/hierarchy/properties.mli: Lph_graph
