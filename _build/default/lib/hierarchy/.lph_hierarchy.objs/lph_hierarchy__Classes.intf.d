lib/hierarchy/classes.mli: Arbiter Game Lph_graph
