lib/hierarchy/restrictor.ml: Arbiter Array Fun Game List Lph_graph Lph_machine Seq
