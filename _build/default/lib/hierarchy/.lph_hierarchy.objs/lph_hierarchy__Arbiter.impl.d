lib/hierarchy/arbiter.ml: Lph_graph Lph_machine
