lib/hierarchy/game.mli: Arbiter Lph_graph Seq
