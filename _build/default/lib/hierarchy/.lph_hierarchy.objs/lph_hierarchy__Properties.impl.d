lib/hierarchy/properties.ml: Array List Lph_graph Option Queue
