lib/hierarchy/arbiter.mli: Lph_graph Lph_machine
