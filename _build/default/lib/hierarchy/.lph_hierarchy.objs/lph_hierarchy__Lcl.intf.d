lib/hierarchy/lcl.mli: Lph_graph Lph_machine
