lib/fagin/tableau.ml: Hashtbl List Lph_boolean Printf String
