lib/fagin/compile.ml: Array Hashtbl List Lph_graph Lph_hierarchy Lph_logic Lph_machine Lph_util Option Printf Seq String
