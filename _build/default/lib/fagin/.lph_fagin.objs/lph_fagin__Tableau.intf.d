lib/fagin/tableau.mli: Lph_boolean
