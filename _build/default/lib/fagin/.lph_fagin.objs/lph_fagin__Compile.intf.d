lib/fagin/compile.mli: Lph_graph Lph_hierarchy Lph_logic
