module Cnf = Lph_boolean.Cnf

type symbol = S0 | S1 | Blank

type move = Left | Stay | Right

type machine = {
  name : string;
  states : int;
  accepting : int list;
  delta : int -> symbol -> int * symbol * move;
}

let symbols = [ S0; S1; Blank ]

let symbol_tag = function S0 -> "0" | S1 -> "1" | Blank -> "_"

let symbol_of_char = function
  | '0' -> S0
  | '1' -> S1
  | c -> invalid_arg (Printf.sprintf "Tableau: input character %c" c)

let accepts m ~input ~time =
  let tape = Hashtbl.create 16 in
  String.iteri (fun i c -> Hashtbl.replace tape i (symbol_of_char c)) input;
  let read p = match Hashtbl.find_opt tape p with Some s -> s | None -> Blank in
  let state = ref 0 and head = ref 0 in
  for _ = 1 to time do
    let q', a', mv = m.delta !state (read !head) in
    Hashtbl.replace tape !head a';
    state := q';
    head := (match mv with Left -> max 0 (!head - 1) | Stay -> !head | Right -> !head + 1)
  done;
  List.mem !state m.accepting

(* ------------------------------------------------------------------ *)

let tableau m ~input ~time =
  let positions = time + 1 in
  let q t s = Printf.sprintf "q_%d_%d" t s in
  let h t p = Printf.sprintf "h_%d_%d" t p in
  let c t p a = Printf.sprintf "c_%d_%d_%s" t p (symbol_tag a) in
  let clauses = ref [] in
  let emit cl = clauses := cl :: !clauses in
  let exactly_one vars =
    emit (List.map Cnf.pos vars);
    let rec pairs = function
      | [] -> ()
      | v :: rest ->
          List.iter (fun w -> emit [ Cnf.neg v; Cnf.neg w ]) rest;
          pairs rest
    in
    pairs vars
  in
  for t = 0 to time do
    exactly_one (List.init m.states (q t));
    exactly_one (List.init positions (h t));
    for p = 0 to positions - 1 do
      exactly_one (List.map (c t p) symbols)
    done
  done;
  (* initial configuration *)
  emit [ Cnf.pos (q 0 0) ];
  emit [ Cnf.pos (h 0 0) ];
  for p = 0 to positions - 1 do
    let sym = if p < String.length input then symbol_of_char input.[p] else Blank in
    emit [ Cnf.pos (c 0 p sym) ]
  done;
  (* transitions and frame conditions *)
  for t = 0 to time - 1 do
    for p = 0 to positions - 1 do
      (* cells away from the head are copied *)
      List.iter
        (fun a -> emit [ Cnf.neg (c t p a); Cnf.pos (h t p); Cnf.pos (c (t + 1) p a) ])
        symbols;
      for s = 0 to m.states - 1 do
        List.iter
          (fun a ->
            let s', a', mv = m.delta s a in
            let p' =
              match mv with Left -> max 0 (p - 1) | Stay -> p | Right -> min (positions - 1) (p + 1)
            in
            let guard = [ Cnf.neg (q t s); Cnf.neg (h t p); Cnf.neg (c t p a) ] in
            emit (guard @ [ Cnf.pos (q (t + 1) s') ]);
            emit (guard @ [ Cnf.pos (c (t + 1) p a') ]);
            emit (guard @ [ Cnf.pos (h (t + 1) p') ]))
          symbols
      done
    done
  done;
  (* acceptance at the final step *)
  emit (List.map (fun s -> Cnf.pos (q time s)) m.accepting);
  List.rev !clauses

(* ------------------------------------------------------------------ *)

let accept_state = 1

let reject_state = 2

let loop s a = (s, a, Stay)

let all_ones =
  {
    name = "all-ones";
    states = 3;
    accepting = [ accept_state ];
    delta =
      (fun s a ->
        match (s, a) with
        | 0, S1 -> (0, S1, Right)
        | 0, S0 -> (reject_state, S0, Stay)
        | 0, Blank -> (accept_state, Blank, Stay)
        | s, a -> loop s a);
  }

let even_ones =
  (* state 0: even so far; state 3: odd so far *)
  {
    name = "even-ones";
    states = 4;
    accepting = [ accept_state ];
    delta =
      (fun s a ->
        match (s, a) with
        | 0, S0 -> (0, S0, Right)
        | 0, S1 -> (3, S1, Right)
        | 0, Blank -> (accept_state, Blank, Stay)
        | 3, S0 -> (3, S0, Right)
        | 3, S1 -> (0, S1, Right)
        | 3, Blank -> (reject_state, Blank, Stay)
        | s, a -> loop s a);
  }

let default_time input = String.length input + 2
