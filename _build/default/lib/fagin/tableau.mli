(** The classical Cook–Levin tableau, i.e. Theorem 19 restricted to
    single-node graphs: a deterministic single-tape Turing machine that
    runs within a time bound is encoded as a CNF whose satisfying
    valuations are exactly the machine's accepting computations. This
    is the space-time-diagram-as-relations idea that also powers the
    forward direction of the generalized Fagin theorem. *)

type symbol = S0 | S1 | Blank

type move = Left | Stay | Right

type machine = {
  name : string;
  states : int;  (** states are [0 .. states - 1]; 0 is initial *)
  accepting : int list;
  delta : int -> symbol -> int * symbol * move;
      (** total; halting is modelled by looping in place *)
}

val accepts : machine -> input:string -> time:int -> bool
(** Direct simulation: is the machine in an accepting state after
    [time] steps on the given bit-string input? *)

val tableau : machine -> input:string -> time:int -> Lph_boolean.Cnf.t
(** The Cook–Levin CNF: satisfiable iff {!accepts}. Variables describe
    the space-time diagram: state, head position and cell contents at
    every step. *)

(** {1 Example machines} *)

val all_ones : machine
(** Accepts iff the input consists solely of 1s (the single-node
    ALL-SELECTED decider). *)

val even_ones : machine
(** Accepts iff the input contains an even number of 1s. *)

val default_time : string -> int
(** A sufficient time bound for the example machines:
    [length + 2]. *)
