(** Nondeterministic finite automata (no ε-transitions) and the subset
    construction — used by the MSO compiler to project quantified
    tracks away. *)

type t = {
  alphabet : int;
  states : int;
  starts : int list;
  accept : bool array;
  delta : int -> int -> int list;  (** state -> letter -> successors *)
}

val of_dfa : Dfa.t -> t

val determinize : t -> Dfa.t
(** Subset construction over reachable subsets. *)

val accepts : t -> int list -> bool
