(** The pumping lemma for regular languages, constructively: Section 9.3
    of the paper uses it (together with Büchi–Elgot–Trakhtenbrot) to
    exhibit graph properties outside the local-polynomial hierarchy. *)

type decomposition = { prefix : int list; loop : int list; suffix : int list }
(** [word = prefix @ loop @ suffix] with [loop] non-empty and
    [length (prefix @ loop) <= pumping constant]. *)

val decompose : Dfa.t -> int list -> decomposition option
(** A pumping decomposition of an accepted word of length at least the
    number of states; [None] if the word is rejected or too short. *)

val pump : decomposition -> int -> int list
(** [pump d i]: prefix · loop^i · suffix. *)

val verify : Dfa.t -> decomposition -> upto:int -> bool
(** All pumped variants up to exponent [upto] are accepted. *)
