(** Deterministic finite automata over integer alphabets
    [0 .. alphabet - 1]. The workhorse of the Büchi–Elgot–Trakhtenbrot
    pipeline (Section 9.3 uses its consequences — the pumping lemma and
    the regularity of MSO-definable word languages — to exhibit
    properties outside the local-polynomial hierarchy). *)

type t = {
  alphabet : int;
  states : int;  (** states are 0 .. states - 1 *)
  start : int;
  accept : bool array;
  delta : int array array;  (** delta.(state).(letter) *)
}

val create : alphabet:int -> states:int -> start:int -> accept:int list -> delta:(int -> int -> int) -> t

val step : t -> int -> int -> int
val run : t -> int list -> int
(** Final state on a word. *)

val accepts : t -> int list -> bool

val complement : t -> t

val product : t -> t -> both:(bool -> bool -> bool) -> t
(** Product automaton accepting via the boolean combination of the two
    acceptance verdicts (e.g. [(&&)] for intersection, [(||)] for
    union). Alphabets must agree. *)

val find_accepted : ?max_len:int -> t -> int list option
(** A shortest accepted word (BFS); [None] if the language is empty
    (or nothing accepted within [max_len], default unbounded by
    state count). *)

val is_empty : t -> bool

val equivalent : t -> t -> bool
(** Language equality (via emptiness of the symmetric difference). *)

val minimize : t -> t
(** Moore partition refinement; also drops unreachable states. *)

val enumerate : t -> max_len:int -> int list list
(** All accepted words of length at most [max_len] (for test
    comparisons). *)
