lib/automata/dfa.mli:
