lib/automata/mso_to_dfa.mli: Dfa Lph_logic
