lib/automata/word_graph.mli: Dfa Lph_graph Lph_hierarchy Lph_machine
