lib/automata/nonregular.mli: Dfa
