lib/automata/nonregular.ml: Dfa Hashtbl List Word
