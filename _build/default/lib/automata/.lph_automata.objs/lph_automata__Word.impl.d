lib/automata/word.ml: Array Fun List Lph_structure Lph_util Printf String
