lib/automata/word_graph.ml: Array Dfa List Lph_graph Lph_machine Lph_util Option
