lib/automata/nfa.ml: Array Dfa Fun Hashtbl Int List Queue Set
