lib/automata/dfa.ml: Array Hashtbl List Option Queue
