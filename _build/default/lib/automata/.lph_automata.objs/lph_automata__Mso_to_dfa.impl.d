lib/automata/mso_to_dfa.ml: Array Dfa Fun Hashtbl List Lph_logic Nfa Printf Word
