lib/automata/word.mli: Lph_structure
