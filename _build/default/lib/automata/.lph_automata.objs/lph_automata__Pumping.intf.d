lib/automata/pumping.mli: Dfa
