lib/automata/pumping.ml: Array Dfa Fun Hashtbl List
