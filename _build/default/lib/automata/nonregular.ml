let eq01 word =
  let zeros = List.length (List.filter (fun a -> a = 0) word) in
  2 * zeros = List.length word

let rec repeat k x = if k = 0 then [] else x :: repeat (k - 1) x

let refute_eq01 (d : Dfa.t) =
  if d.Dfa.alphabet <> 2 then invalid_arg "Nonregular.refute_eq01: alphabet must be {0,1}";
  let k = d.Dfa.states in
  let balanced = repeat k 0 @ repeat k 1 in
  if not (Dfa.accepts d balanced) then Some balanced
  else begin
    (* The run on 0^k visits k+1 states: some state repeats within the
       0-block. Pumping that loop changes the number of 0s only, so the
       pumped word is unbalanced; a candidate built from a real DFA
       still accepts it. *)
    let seen = Hashtbl.create 16 in
    let rec find_loop state pos =
      match Hashtbl.find_opt seen state with
      | Some first -> (first, pos)
      | None ->
          Hashtbl.replace seen state pos;
          find_loop (Dfa.step d state 0) (pos + 1)
    in
    let first, pos = find_loop d.Dfa.start 0 in
    let loop_len = pos - first in
    let pumped = repeat (k + loop_len) 0 @ repeat k 1 in
    if Dfa.accepts d pumped && not (eq01 pumped) then Some pumped
    else if not (Dfa.accepts d pumped) && eq01 pumped then Some pumped
    else
      (* For a genuine DFA the pumped word reaches the same final state
         as the balanced one, so one of the cases above must fire; as a
         backstop against degenerate candidates, search exhaustively. *)
      List.find_opt
        (fun w -> Dfa.accepts d w <> eq01 w)
        (Word.all_words ~alphabet:2 ~max_len:(min 12 ((2 * k) + 2)))
  end

let agrees_up_to d predicate ~max_len =
  List.for_all (fun w -> Dfa.accepts d w = predicate w) (Word.all_words ~alphabet:2 ~max_len)
