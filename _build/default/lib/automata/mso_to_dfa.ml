module F = Lph_logic.Formula

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* ------------------------------------------------------------------ *)
(* Variable collection: every variable gets a dedicated track, so all  *)
(* intermediate automata share one alphabet.                           *)

let collect_vars ~bits formula =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let declare v =
    if Hashtbl.mem seen v then unsupported "duplicate binder name %s" v;
    Hashtbl.replace seen v ();
    order := v :: !order
  in
  let rec go = function
    | F.True | F.False -> ()
    | F.Unary (i, _) -> if i > bits then unsupported "unary relation %d beyond bit width" i
    | F.Binary (i, _, _) -> if i <> 1 then unsupported "binary relation %d on words" i
    | F.Eq _ -> ()
    | F.App (_, xs) -> if List.length xs <> 1 then unsupported "non-monadic second-order variable"
    | F.Not f | F.Exists (_, f) | F.Forall (_, f) -> go_binder f
    | F.Or (f, g) | F.And (f, g) | F.Implies (f, g) | F.Iff (f, g) ->
        go f;
        go g
    | F.Exists_near (_, _, f) | F.Forall_near (_, _, f) -> go f
    | F.Exists_so (_, k, f) | F.Forall_so (_, k, f) ->
        if k <> 1 then unsupported "non-monadic second-order quantifier";
        go f
  and go_binder f = go f in
  let rec binders = function
    | F.True | F.False | F.Unary _ | F.Binary _ | F.Eq _ | F.App _ -> ()
    | F.Not f -> binders f
    | F.Or (f, g) | F.And (f, g) | F.Implies (f, g) | F.Iff (f, g) ->
        binders f;
        binders g
    | F.Exists (x, f) | F.Forall (x, f) ->
        declare x;
        binders f
    | F.Exists_near (x, _, f) | F.Forall_near (x, _, f) ->
        declare x;
        binders f
    | F.Exists_so (r, _, f) | F.Forall_so (r, _, f) ->
        declare r;
        binders f
  in
  go formula;
  binders formula;
  List.rev !order

(* ------------------------------------------------------------------ *)
(* Letters: low [bits] bits are the symbol, then one bit per track.    *)

type ctx = { bits : int; tracks : string array }

let alphabet ctx = 1 lsl (ctx.bits + Array.length ctx.tracks)

let track_index ctx v =
  let found = ref (-1) in
  Array.iteri (fun i w -> if w = v then found := i) ctx.tracks;
  if !found < 0 then unsupported "free variable %s (not a sentence?)" v;
  ctx.bits + !found

let bit letter i = (letter lsr i) land 1 = 1

let with_bit letter i b = if b then letter lor (1 lsl i) else letter land lnot (1 lsl i)

(* ------------------------------------------------------------------ *)
(* Building blocks.                                                    *)

let accept_all ctx =
  Dfa.create ~alphabet:(alphabet ctx) ~states:1 ~start:0 ~accept:[ 0 ] ~delta:(fun _ _ -> 0)

let reject_all ctx =
  Dfa.create ~alphabet:(alphabet ctx) ~states:1 ~start:0 ~accept:[] ~delta:(fun _ _ -> 0)

(* exactly one position carries the track of v *)
let singleton ctx v =
  let i = track_index ctx v in
  Dfa.create ~alphabet:(alphabet ctx) ~states:3 ~start:0 ~accept:[ 1 ] ~delta:(fun s a ->
      if not (bit a i) then s else match s with 0 -> 1 | _ -> 2)

let validity ctx fo_vars =
  List.fold_left
    (fun acc v -> Dfa.minimize (Dfa.product acc (singleton ctx v) ~both:( && )))
    (accept_all ctx) fo_vars

(* the position marked by x satisfies [test letter] (and x is marked
   exactly once) *)
let at_position ctx x test =
  let i = track_index ctx x in
  Dfa.create ~alphabet:(alphabet ctx) ~states:3 ~start:0 ~accept:[ 1 ] ~delta:(fun s a ->
      if not (bit a i) then s
      else match s with 0 -> if test a then 1 else 2 | _ -> 2)

let eq_dfa ctx x y =
  if x = y then singleton ctx x
  else begin
    let ix = track_index ctx x and iy = track_index ctx y in
    Dfa.create ~alphabet:(alphabet ctx) ~states:3 ~start:0 ~accept:[ 1 ] ~delta:(fun s a ->
        match (s, bit a ix, bit a iy) with
        | s, false, false -> s
        | 0, true, true -> 1
        | _ -> 2)
  end

let successor_dfa ctx x y =
  if x = y then reject_all ctx
  else begin
    let ix = track_index ctx x and iy = track_index ctx y in
    (* states: 0 = waiting for x, 1 = x seen at the previous position,
       2 = done, 3 = dead *)
    Dfa.create ~alphabet:(alphabet ctx) ~states:4 ~start:0 ~accept:[ 2 ] ~delta:(fun s a ->
        let mx = bit a ix and my = bit a iy in
        match s with
        | 0 -> if mx && my then 3 else if mx then 1 else if my then 3 else 0
        | 1 -> if my && not mx then 2 else 3
        | 2 -> if mx || my then 3 else 2
        | _ -> 3)
  end

(* project the track of v away: don't-care semantics on that track *)
let project ctx v dfa =
  let i = track_index ctx v in
  let nfa =
    {
      Nfa.alphabet = alphabet ctx;
      states = dfa.Dfa.states;
      starts = [ dfa.Dfa.start ];
      accept = dfa.Dfa.accept;
      delta =
        (fun s a ->
          List.sort_uniq compare
            [ dfa.Dfa.delta.(s).(with_bit a i false); dfa.Dfa.delta.(s).(with_bit a i true) ]);
    }
  in
  Dfa.minimize (Nfa.determinize nfa)

(* ------------------------------------------------------------------ *)

let free_fo = F.free_fo

let rec compile_formula ctx (formula : F.t) : Dfa.t =
  let m = Dfa.minimize in
  match formula with
  | F.True -> accept_all ctx
  | F.False -> reject_all ctx
  | F.Unary (i, x) -> at_position ctx x (fun a -> bit a (i - 1))
  | F.App (r, [ x ]) -> at_position ctx x (fun a -> bit a (track_index ctx r))
  | F.App _ -> unsupported "non-monadic application"
  | F.Eq (x, y) -> eq_dfa ctx x y
  | F.Binary (1, x, y) -> successor_dfa ctx x y
  | F.Binary (i, _, _) -> unsupported "binary relation %d" i
  | F.Not f ->
      m (Dfa.product (Dfa.complement (compile_formula ctx f)) (validity ctx (free_fo f)) ~both:( && ))
  | F.And (f, g) -> m (Dfa.product (compile_formula ctx f) (compile_formula ctx g) ~both:( && ))
  | F.Or (f, g) -> m (Dfa.product (compile_formula ctx f) (compile_formula ctx g) ~both:( || ))
  | F.Implies (f, g) -> compile_formula ctx (F.Or (F.Not f, g))
  | F.Iff (f, g) -> compile_formula ctx (F.And (F.Implies (f, g), F.Implies (g, f)))
  | F.Exists (x, f) -> project ctx x (compile_formula ctx f)
  | F.Forall (x, f) -> compile_formula ctx (F.Not (F.Exists (x, F.Not f)))
  | F.Exists_near (x, y, f) ->
      compile_formula ctx
        (F.Exists (x, F.And (F.Or (F.Binary (1, x, y), F.Binary (1, y, x)), f)))
  | F.Forall_near (x, y, f) ->
      compile_formula ctx
        (F.Not (F.Exists (x, F.And (F.Or (F.Binary (1, x, y), F.Binary (1, y, x)), F.Not f))))
  | F.Exists_so (r, 1, f) -> project ctx r (compile_formula ctx f)
  | F.Forall_so (r, 1, f) -> compile_formula ctx (F.Not (F.Exists_so (r, 1, F.Not f)))
  | F.Exists_so _ | F.Forall_so _ -> unsupported "non-monadic second-order quantifier"

let compile ~bits formula =
  if not (Lph_logic.Syntax.is_sentence formula) then invalid_arg "Mso_to_dfa.compile: not a sentence";
  let tracks = Array.of_list (collect_vars ~bits formula) in
  let ctx = { bits; tracks } in
  let full = compile_formula ctx formula in
  (* restrict to the pure word alphabet: all tracks zero *)
  Dfa.minimize
    (Dfa.create ~alphabet:(1 lsl bits) ~states:full.Dfa.states ~start:full.Dfa.start
       ~accept:(List.filteri (fun s _ -> full.Dfa.accept.(s)) (List.init full.Dfa.states Fun.id))
       ~delta:(fun s a -> full.Dfa.delta.(s).(a)))

let holds ~bits word formula = Lph_logic.Eval.holds (Word.structure ~bits word) formula
