(** Words as labelled path graphs — the bridge Section 9.3 uses to
    carry automata-theoretic lower bounds (pumping,
    Büchi–Elgot–Trakhtenbrot) into the LOCAL world.

    A path graph with 1-bit labels spells a word in two directions;
    since graph properties are closed under isomorphism, the induced
    property of a word language accepts a path iff the language
    contains the word read in {e either} direction.

    On the promise class of path graphs, every {e regular} language is
    NLP-verifiable with constant-size certificates: Eve certifies each
    node with its position's DFA state and predecessor, and one round
    of local checks validates the run ({!dfa_verifier},
    {!dfa_certificates}). The same verifier is unsound on cycles —
    paths and long cycles are locally indistinguishable, the recurring
    theme of Section 9.1 — and non-regular languages escape the
    construction entirely ({!Nonregular}). *)

val path_word : Lph_graph.Labeled_graph.t -> int list option
(** The word spelled by a path graph with 1-bit labels, read from its
    lexicographically-smaller endpoint (by identifier-free convention:
    the orientation yielding the smaller word); [None] if the graph is
    not a 1-bit-labelled path. Single nodes are length-1 words. *)

val property_of_language : (int list -> bool) -> Lph_graph.Labeled_graph.t -> bool
(** The induced graph property: the graph is a path and the language
    contains its word in at least one direction. *)

val dfa_verifier : Dfa.t -> Lph_machine.Local_algo.packed
(** The one-certificate verifier (levels = 1): each node's certificate
    encodes (predecessor identifier option, DFA state before reading
    this node's letter). Sound and complete on path graphs. *)

val dfa_certificates :
  Dfa.t -> Lph_graph.Labeled_graph.t -> ids:Lph_graph.Identifiers.t -> Lph_graph.Certificates.t option
(** The honest prover: certificates for an accepted path ([None] if the
    graph is not a path or the DFA rejects both directions). *)

val cert_universe : Dfa.t -> Lph_graph.Labeled_graph.t -> ids:Lph_graph.Identifiers.t -> Lph_hierarchy.Game.universe
(** All well-formed certificates per node (predecessor among the closed
    neighbourhood, any DFA state) — a restrictive universe in the sense
    of Lemma 8, for exact game solving. *)
