(** The Büchi–Elgot–Trakhtenbrot theorem, constructively: compile a
    sentence of monadic second-order logic over words into an
    equivalent DFA. Formulas use the word signature — ⊙_1 .. ⊙_bits for
    the letter bits and ⇀1 for the successor relation — with monadic
    second-order variables and (bounded or unbounded) first-order
    quantifiers; bounded quantifiers are desugared using the successor
    relation.

    The compilation follows the classical track construction: automata
    run over the alphabet 2^(bits + #variables); atoms enforce the
    singleton discipline of their first-order tracks, negation
    re-intersects with the validity automaton of the free variables,
    and quantifiers project their track away (subset construction,
    minimised at each step). *)

exception Unsupported of string
(** Raised for non-monadic second-order variables, binary relations
    other than ⇀1, unary relations beyond the bit width, or duplicate
    binder names. *)

val compile : bits:int -> Lph_logic.Formula.t -> Dfa.t
(** The DFA over the alphabet [2^bits] equivalent to the sentence on
    {e non-empty} words (the empty word has no structure; the DFA's
    verdict on it is the formula evaluated on the empty domain, which
    we fix by convention to the automaton's behaviour — tests compare
    only non-empty words). *)

val holds : bits:int -> int list -> Lph_logic.Formula.t -> bool
(** Reference semantics via {!Word.structure} and the model checker. *)
