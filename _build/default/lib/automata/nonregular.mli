(** Executable non-regularity arguments (Section 9.3 uses the pumping
    lemma to place properties outside the local-polynomial hierarchy;
    this module mechanises the refutation step).

    The canonical example: EQ01, the language of words with as many 0s
    as 1s. Given any candidate DFA, {!refute_eq01} produces a concrete
    word on which the candidate disagrees with EQ01 — either it rejects
    the balanced word 0^k 1^k, or pumping a loop inside the 0-block
    yields an unbalanced word the candidate still accepts. *)

val eq01 : int list -> bool
(** Membership in EQ01 over the alphabet {0, 1}. *)

val refute_eq01 : Dfa.t -> int list option
(** A witness word on which the candidate differs from EQ01
    ([None] would mean the refutation failed — impossible for a true
    DFA, so tests expect [Some]). The candidate's alphabet must be 2. *)

val agrees_up_to : Dfa.t -> (int list -> bool) -> max_len:int -> bool
(** Exhaustively compare a DFA with a predicate on all words up to the
    given length (how one checks that a refuted candidate was at least
    plausible). *)
