let of_bitstring s =
  List.init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> 0
      | '1' -> 1
      | c -> invalid_arg (Printf.sprintf "Word.of_bitstring: %c" c))

let to_bitstring w = String.concat "" (List.map (fun a -> if a = 1 then "1" else "0") w)

let structure ~bits word =
  let n = List.length word in
  if n = 0 then invalid_arg "Word.structure: empty word";
  let letters = Array.of_list word in
  let unary =
    Array.init bits (fun j ->
        List.filter (fun p -> (letters.(p) lsr j) land 1 = 1) (List.init n Fun.id))
  in
  let successor = List.init (n - 1) (fun p -> (p, p + 1)) in
  Lph_structure.Structure.create ~card:n ~unary ~binary:[| successor |]

let all_words ~alphabet ~max_len =
  let letters = List.init alphabet Fun.id in
  let rec go len =
    if len > max_len then []
    else
      List.of_seq (Lph_util.Combinat.product (List.init len (fun _ -> letters))) @ go (len + 1)
  in
  go 0
