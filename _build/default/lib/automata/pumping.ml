type decomposition = { prefix : int list; loop : int list; suffix : int list }

let decompose (d : Dfa.t) word =
  if not (Dfa.accepts d word) || List.length word < d.Dfa.states then None
  else begin
    (* find the first repeated state along the run *)
    let seen = Hashtbl.create 16 in
    let rec scan state pos rest =
      match Hashtbl.find_opt seen state with
      | Some first ->
          let arr = Array.of_list word in
          let slice a b = Array.to_list (Array.sub arr a (b - a)) in
          Some
            {
              prefix = slice 0 first;
              loop = slice first pos;
              suffix = slice pos (Array.length arr);
            }
      | None -> begin
          Hashtbl.replace seen state pos;
          match rest with
          | [] -> None
          | a :: rest -> scan d.Dfa.delta.(state).(a) (pos + 1) rest
        end
    in
    scan d.Dfa.start 0 word
  end

let pump d i =
  let rec repeat k = if k = 0 then [] else d.loop @ repeat (k - 1) in
  d.prefix @ repeat i @ d.suffix

let verify dfa d ~upto =
  List.for_all (fun i -> Dfa.accepts dfa (pump d i)) (List.init (upto + 1) Fun.id)
