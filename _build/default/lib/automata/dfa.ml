type t = {
  alphabet : int;
  states : int;
  start : int;
  accept : bool array;
  delta : int array array;
}

let create ~alphabet ~states ~start ~accept ~delta =
  if alphabet < 1 || states < 1 then invalid_arg "Dfa.create: empty automaton";
  let accept_arr = Array.make states false in
  List.iter
    (fun s ->
      if s < 0 || s >= states then invalid_arg "Dfa.create: accept state out of range";
      accept_arr.(s) <- true)
    accept;
  let table =
    Array.init states (fun s ->
        Array.init alphabet (fun a ->
            let s' = delta s a in
            if s' < 0 || s' >= states then invalid_arg "Dfa.create: transition out of range";
            s'))
  in
  { alphabet; states; start; accept = accept_arr; delta = table }

let step d s a =
  if a < 0 || a >= d.alphabet then invalid_arg "Dfa.step: letter out of range";
  d.delta.(s).(a)

let run d word = List.fold_left (fun s a -> step d s a) d.start word

let accepts d word = d.accept.(run d word)

let complement d = { d with accept = Array.map not d.accept }

let product d1 d2 ~both =
  if d1.alphabet <> d2.alphabet then invalid_arg "Dfa.product: alphabet mismatch";
  let states = d1.states * d2.states in
  let pair s1 s2 = (s1 * d2.states) + s2 in
  {
    alphabet = d1.alphabet;
    states;
    start = pair d1.start d2.start;
    accept =
      Array.init states (fun s -> both d1.accept.(s / d2.states) d2.accept.(s mod d2.states));
    delta =
      Array.init states (fun s ->
          let s1 = s / d2.states and s2 = s mod d2.states in
          Array.init d1.alphabet (fun a -> pair d1.delta.(s1).(a) d2.delta.(s2).(a)));
  }

let find_accepted ?max_len d =
  let limit = match max_len with Some l -> l | None -> d.states in
  let visited = Array.make d.states false in
  let queue = Queue.create () in
  visited.(d.start) <- true;
  Queue.add (d.start, []) queue;
  let result = ref None in
  (try
     while not (Queue.is_empty queue) do
       let s, path = Queue.pop queue in
       if d.accept.(s) then begin
         result := Some (List.rev path);
         raise Exit
       end;
       if List.length path < limit then
         for a = 0 to d.alphabet - 1 do
           let s' = d.delta.(s).(a) in
           if not visited.(s') then begin
             visited.(s') <- true;
             Queue.add (s', a :: path) queue
           end
         done
     done
   with Exit -> ());
  !result

let is_empty d = Option.is_none (find_accepted d)

let equivalent d1 d2 =
  is_empty (product d1 d2 ~both:(fun a b -> a <> b))

let reachable d =
  let seen = Array.make d.states false in
  let queue = Queue.create () in
  seen.(d.start) <- true;
  Queue.add d.start queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Array.iter
      (fun s' ->
        if not seen.(s') then begin
          seen.(s') <- true;
          Queue.add s' queue
        end)
      d.delta.(s)
  done;
  seen

let minimize d =
  let seen = reachable d in
  (* Moore refinement on reachable states *)
  let classes = Array.init d.states (fun s -> if d.accept.(s) then 1 else 0) in
  let changed = ref true in
  while !changed do
    changed := false;
    (* signature of a state: its class plus the classes of its successors *)
    let signatures = Hashtbl.create 16 in
    let next_class = ref 0 in
    let new_classes = Array.make d.states 0 in
    for s = 0 to d.states - 1 do
      if seen.(s) then begin
        let signature = (classes.(s), Array.to_list (Array.map (fun s' -> classes.(s')) d.delta.(s))) in
        let c =
          match Hashtbl.find_opt signatures signature with
          | Some c -> c
          | None ->
              let c = !next_class in
              incr next_class;
              Hashtbl.replace signatures signature c;
              c
        in
        new_classes.(s) <- c
      end
    done;
    let distinct_old =
      List.length
        (List.sort_uniq compare
           (List.filteri (fun s _ -> seen.(s)) (Array.to_list classes)))
    in
    if !next_class <> distinct_old then changed := true;
    Array.blit new_classes 0 classes 0 d.states
  done;
  let count = 1 + Array.fold_left max 0 (Array.mapi (fun s c -> if seen.(s) then c else 0) classes) in
  let repr = Array.make count (-1) in
  for s = d.states - 1 downto 0 do
    if seen.(s) then repr.(classes.(s)) <- s
  done;
  {
    alphabet = d.alphabet;
    states = count;
    start = classes.(d.start);
    accept = Array.init count (fun c -> d.accept.(repr.(c)));
    delta = Array.init count (fun c -> Array.map (fun s' -> classes.(s')) d.delta.(repr.(c)));
  }

let enumerate d ~max_len =
  let rec go len prefix_state prefix =
    let here = if d.accept.(prefix_state) then [ List.rev prefix ] else [] in
    if len = max_len then here
    else
      here
      @ List.concat
          (List.init d.alphabet (fun a -> go (len + 1) d.delta.(prefix_state).(a) (a :: prefix)))
  in
  go 0 d.start []
