type t = {
  alphabet : int;
  states : int;
  starts : int list;
  accept : bool array;
  delta : int -> int -> int list;
}

let of_dfa (d : Dfa.t) =
  {
    alphabet = d.Dfa.alphabet;
    states = d.Dfa.states;
    starts = [ d.Dfa.start ];
    accept = d.Dfa.accept;
    delta = (fun s a -> [ d.Dfa.delta.(s).(a) ]);
  }

module Iset = Set.Make (Int)

let determinize n =
  let index = Hashtbl.create 64 in
  let subsets = ref [] in
  let count = ref 0 in
  let intern set =
    match Hashtbl.find_opt index set with
    | Some i -> i
    | None ->
        let i = !count in
        incr count;
        Hashtbl.replace index set i;
        subsets := (i, set) :: !subsets;
        i
  in
  let start_set = Iset.of_list n.starts in
  let start = intern start_set in
  let transitions = Hashtbl.create 64 in
  let queue = Queue.create () in
  Queue.add (start, start_set) queue;
  let processed = Hashtbl.create 64 in
  while not (Queue.is_empty queue) do
    let i, set = Queue.pop queue in
    if not (Hashtbl.mem processed i) then begin
      Hashtbl.replace processed i ();
      for a = 0 to n.alphabet - 1 do
        let next =
          Iset.fold (fun s acc -> Iset.union acc (Iset.of_list (n.delta s a))) set Iset.empty
        in
        let was_known = Hashtbl.mem index next in
        let j = intern next in
        Hashtbl.replace transitions (i, a) j;
        if not was_known then Queue.add (j, next) queue
      done
    end
  done;
  let states = !count in
  let accept_of = Array.make states false in
  List.iter
    (fun (i, set) -> accept_of.(i) <- Iset.exists (fun s -> n.accept.(s)) set)
    !subsets;
  Dfa.create ~alphabet:n.alphabet ~states ~start
    ~accept:(List.filteri (fun i _ -> accept_of.(i)) (List.init states Fun.id))
    ~delta:(fun s a -> Hashtbl.find transitions (s, a))

let accepts n word =
  let module S = Iset in
  let final =
    List.fold_left
      (fun set a -> S.fold (fun s acc -> S.union acc (S.of_list (n.delta s a))) set S.empty)
      (S.of_list n.starts) word
  in
  Iset.exists (fun s -> n.accept.(s)) final
