(** Words over t-bit letters, and their structural representations.
    A letter is an integer in [0 .. 2^bits); bit j of a letter is
    [(letter lsr j) land 1]. Strings over {0,1} are 1-bit words. *)

val of_bitstring : string -> int list
(** Each character becomes a 1-bit letter. *)

val to_bitstring : int list -> string

val structure : bits:int -> int list -> Lph_structure.Structure.t
(** The word structure: one element per position, ⊙_(j+1) marks bit j,
    ⇀1 is the successor relation. Requires a non-empty word. *)

val all_words : alphabet:int -> max_len:int -> int list list
(** Every word of length at most [max_len]. *)
