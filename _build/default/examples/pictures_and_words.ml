(* Section 9's machinery: tiling systems on pictures, the
   picture-to-graph encoding behind the infiniteness proof, and the
   Büchi–Elgot–Trakhtenbrot compiler on words.

   Run with: dune exec examples/pictures_and_words.exe *)

open Lph_core
module F = Formula

let () =
  print_endline "=== Pictures, tiling systems and words (Section 9) ===\n";

  (* Tiling systems: the automaton model equivalent to existential
     monadic second-order logic on pictures (Theorem 29). *)
  print_endline "--- Tiling recognition ---";
  Format.printf "squares tiling system on blank pictures:@.";
  for r = 1 to 5 do
    Format.printf "  %dx1..%dx5: " r r;
    for c = 1 to 5 do
      Format.printf "%s"
        (if Tiling.recognizes Tiling.squares (Picture.constant ~bits:0 ~rows:r ~cols:c "") then "■"
         else "·")
    done;
    Format.printf "@."
  done;
  let p = Picture.of_rows [ [ "1"; "0"; "1" ]; [ "0"; "0"; "1" ]; [ "1"; "0"; "1" ] ] in
  Format.printf "@.first-row-equals-last-row on%a@." Picture.pp p;
  Format.printf "  recogniser: %b; predicate: %b@.@."
    (Tiling.recognizes Tiling.first_row_equals_last_row p)
    (Pic_languages.first_row_equals_last_row p);

  (* MSO on pictures. *)
  print_endline "--- Monadic second-order logic on pictures ---";
  List.iter
    (fun (r, c) ->
      let q = Picture.constant ~bits:1 ~rows:r ~cols:c "0" in
      Format.printf "  mso_square on %dx%d: %b@." r c (Pic_languages.holds q Pic_languages.mso_square))
    [ (2, 2); (2, 3); (3, 3) ];

  (* The Matz witness family: the languages that stratify the monadic
     hierarchy, and through Sections 9.2.1-9.2.2 the local-polynomial
     hierarchy itself. *)
  Format.printf "@.Matz witness languages L_k (height = k-fold exponential of width):@.";
  List.iter
    (fun k ->
      Format.printf "  L_%d with width 2 needs height %d@." k (Pic_languages.tower k 2))
    [ 0; 1; 2; 3 ];

  (* Picture-to-graph encoding (Section 9.2.2). *)
  print_endline "\n--- Pictures as labelled graphs ---";
  let p = Picture.of_rows [ [ "1"; "0" ]; [ "0"; "1" ] ] in
  let g = Pic_to_graph.encode p in
  Format.printf "2x2 picture encodes to a graph with %d nodes and %d edges@." (Graph.card g)
    (Graph.num_edges g);
  (match Pic_to_graph.decode g with
  | Some q -> Format.printf "decoding recovers the picture: %b@." (Picture.equal p q)
  | None -> print_endline "decode failed!");
  Format.printf "transferred squareness holds on the encoding: %b@."
    (Pic_to_graph.graph_property_of Pic_languages.is_square g);

  (* Words: the BET compiler. *)
  print_endline "\n--- MSO on words -> DFA (Büchi–Elgot–Trakhtenbrot) ---";
  let x_at v = F.App ("X", [ v ]) in
  let even_parity =
    F.Exists_so
      ( "X",
        1,
        F.conj
          [
            F.Forall
              ( "f",
                F.Implies
                  ( F.Not (F.Exists ("p", F.Binary (1, "p", "f"))),
                    F.Iff (x_at "f", F.Unary (1, "f")) ) );
            F.Forall
              ( "a",
                F.Forall
                  ( "b",
                    F.Implies
                      ( F.Binary (1, "a", "b"),
                        F.Iff (x_at "b", F.Iff (x_at "a", F.Not (F.Unary (1, "b")))) ) ) );
            F.Forall
              ("l", F.Implies (F.Not (F.Exists ("q", F.Binary (1, "l", "q"))), F.Not (x_at "l")));
          ] )
  in
  let dfa = Mso_to_dfa.compile ~bits:1 even_parity in
  Format.printf "'even number of 1s' (monadic Σ1 sentence) compiles to a DFA with %d states@."
    dfa.Dfa.states;
  List.iter
    (fun w ->
      Format.printf "  %-8s dfa: %-5b logic: %b@." w
        (Dfa.accepts dfa (Automata_word.of_bitstring w))
        (Mso_to_dfa.holds ~bits:1 (Automata_word.of_bitstring w) even_parity))
    [ "1"; "11"; "1010"; "111" ];

  (* Pumping: the classical tool Section 9.3 uses to push properties
     outside the hierarchy. *)
  print_endline "\n--- Pumping lemma ---";
  let w = Automata_word.of_bitstring "110110" in
  (match Pumping.decompose dfa w with
  | None -> print_endline "word too short"
  | Some d ->
      Format.printf "decomposition of 110110: x=%s y=%s z=%s@."
        (Automata_word.to_bitstring d.Pumping.prefix)
        (Automata_word.to_bitstring d.Pumping.loop)
        (Automata_word.to_bitstring d.Pumping.suffix);
      List.iter
        (fun i ->
          let pumped = Pumping.pump d i in
          Format.printf "  y^%d: %-12s accepted: %b@." i
            (Automata_word.to_bitstring pumped)
            (Dfa.accepts dfa pumped))
        [ 0; 1; 2; 3 ])
