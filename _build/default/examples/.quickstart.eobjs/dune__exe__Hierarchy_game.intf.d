examples/hierarchy_game.mli:
