examples/pictures_and_words.mli:
