examples/quickstart.ml: Arbiter Array Bitstring Candidates Format Game Generators Graph Graph_formulas Identifiers Lph_core Machines Properties String Turing
