examples/quickstart.mli:
