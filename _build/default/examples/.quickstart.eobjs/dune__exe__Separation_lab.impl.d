examples/separation_lab.ml: Arbiter Array Candidates Format Game Generators Graph Identifiers List Lph_core Separations String
