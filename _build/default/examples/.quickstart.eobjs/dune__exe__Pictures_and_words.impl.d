examples/pictures_and_words.ml: Automata_word Dfa Format Formula Graph List Lph_core Mso_to_dfa Pic_languages Pic_to_graph Picture Pumping Tiling
