examples/separation_lab.mli:
