examples/reductions_tour.mli:
