examples/hierarchy_game.ml: Fagin Format Generators Graph Graph_formulas Identifiers List Logic_syntax Lph_core Printf Properties String
