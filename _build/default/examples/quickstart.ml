(* Quickstart: build a labelled graph, run a genuine distributed Turing
   machine on it, and verify an NP-style property with the Eve/Adam
   certificate game.

   Run with: dune exec examples/quickstart.exe *)

open Lph_core

let () =
  print_endline "=== Quickstart: the LOCAL view of the polynomial hierarchy ===\n";

  (* A labelled graph: the 6-cycle with one unselected node. *)
  let labels = [| "1"; "1"; "0"; "1"; "1"; "1" |] in
  let g = Generators.cycle ~labels 6 in
  let ids = Identifiers.make_global g in
  Format.printf "Input graph:@.%a@.@." Graph.pp g;

  (* 1. LP: decide EULERIAN with a real three-tape distributed Turing
     machine (Proposition 15: all degrees even). *)
  let result = Turing.run Machines.eulerian g ~ids () in
  Format.printf "EULERIAN Turing machine: %s (rounds: %d, steps at node 0: %d)@."
    (if Turing.accepts result then "accept" else "reject")
    result.Turing.stats.Turing.rounds
    result.Turing.stats.Turing.steps.(0).(0);

  (* ... and ALL-SELECTED, which fails because of node 2. *)
  let result = Turing.run Machines.all_selected g ~ids () in
  Format.printf "ALL-SELECTED Turing machine: %s (node 2's verdict: %s)@.@."
    (if Turing.accepts result then "accept" else "reject")
    (Turing.verdict result 2);

  (* 2. NLP: verify 3-colourability. Eve proposes per-node colour
     certificates; the verifier checks them in one communication
     round. The exact game solver quantifies over all certificates. *)
  let verifier = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3) in
  let universes = [ Candidates.color_universe 3 ] in
  let accepted = Game.sigma_accepts verifier g ~ids ~universes in
  Format.printf "3-COLORABLE via the certificate game: %b (ground truth: %b)@." accepted
    (Properties.three_colorable g);

  (* Eve's winning move, explicitly: *)
  (match Game.eve_witness verifier g ~ids ~universes with
  | Some certs ->
      Format.printf "Eve's certificates (colours): %s@."
        (String.concat " " (Array.to_list (Array.map (fun c -> string_of_int (Bitstring.to_int c)) certs)))
  | None -> print_endline "no witness");

  (* 3. The same property through logic: the Σ1^LFO sentence of
     Example 3, model-checked on the structural representation $G. *)
  let by_logic = Graph_formulas.holds g Graph_formulas.three_colorable in
  Format.printf "3-COLORABLE via the Σ1^LFO sentence of Example 3: %b@.@." by_logic;

  (* 4. And the single-node restriction is classical complexity:
     ALL-SELECTED on a one-node graph is a P-language of strings. *)
  let word = Graph.singleton "1111" in
  Format.printf "Single node '1111' all-selected: %b (strings as graphs: P = LP|NODE)@."
    (Turing.accepts (Turing.run Machines.all_selected word ~ids:[| "" |] ()))
