(* A tour of the local-polynomial reductions of Section 8, reproducing
   the constructions of Figures 2, 3, 7, 9 on a concrete graph and
   driving the full Cook–Levin → 3-colourability pipeline.

   Run with: dune exec examples/reductions_tour.exe *)

open Lph_core

let show name g ~ids reduction property truth =
  let image = Cluster.apply reduction g ~ids in
  Format.printf "  %-34s |G|=%d -> |G'|=%d, |E'|=%d; G∈L: %-5b G'∈L': %-5b %s@." name
    (Graph.card g) (Graph.card image) (Graph.num_edges image) (truth g) (property image)
    (if truth g = property image then "✓" else "✗ MISMATCH");
  image

let () =
  print_endline "=== Local-polynomial reductions (Section 8) ===\n";

  (* the example graph of Figure 2: four nodes, one unselected *)
  let g = Graph.make ~labels:[| "1"; "0"; "1"; "1" |] ~edges:[ (0, 1); (1, 2); (1, 3); (2, 3) ] in
  let ids = Identifiers.make_global g in
  Format.printf "Input graph (one unselected node):@.%a@.@." Graph.pp g;

  print_endline "Figure 7 — ALL-SELECTED ≤ EULERIAN (Proposition 15):";
  ignore (show "all-selected → eulerian" g ~ids Eulerian_red.reduction Properties.eulerian Properties.all_selected);

  print_endline "\nFigure 2 — ALL-SELECTED ≤ HAMILTONIAN (Proposition 16, Euler tours):";
  ignore
    (show "all-selected → hamiltonian" g ~ids Hamiltonian_red.reduction Properties.hamiltonian
       Properties.all_selected);

  print_endline "\nFigure 9 — NOT-ALL-SELECTED ≤ HAMILTONIAN (Proposition 17, stacked cycles):";
  ignore
    (show "not-all-selected → hamiltonian" g ~ids Hamiltonian_red.co_reduction Properties.hamiltonian
       Properties.not_all_selected);

  (* The same with all nodes selected: every verdict flips. *)
  let g1 = Graph.map_labels (fun _ _ -> "1") g in
  print_endline "\nSame graph with every node selected:";
  ignore (show "all-selected → eulerian" g1 ~ids Eulerian_red.reduction Properties.eulerian Properties.all_selected);
  ignore
    (show "all-selected → hamiltonian" g1 ~ids Hamiltonian_red.reduction Properties.hamiltonian
       Properties.all_selected);
  ignore
    (show "not-all-selected → hamiltonian" g1 ~ids Hamiltonian_red.co_reduction Properties.hamiltonian
       Properties.not_all_selected);

  (* Theorem 19 + 20: Σ1^LFO property -> SAT-GRAPH -> 3-SAT-GRAPH -> 3-COLORABLE *)
  print_endline "\nThe Cook–Levin pipeline (Theorems 19 and 20):";
  let phi = Graph_formulas.two_colorable in
  let base = Generators.cycle 4 in
  let bids = Identifiers.make_global base in
  let sat_graph = Cook_levin.image_graph phi base ~ids:bids in
  Format.printf "  C4 ⊨ 2-COLORABLE: %b@." (Properties.two_colorable base);
  Format.printf "  Cook–Levin image: SAT-GRAPH instance with formulas of sizes %s; satisfiable: %b@."
    (String.concat ","
       (List.map
          (fun u -> string_of_int (Bool_formula.size (Boolean_graph.formula_of_node sat_graph u)))
          (Graph.nodes sat_graph)))
    (Boolean_graph.satisfiable sat_graph);
  let three_sat = Cluster.apply Three_col_red.to_3sat sat_graph ~ids:bids in
  Format.printf "  Tseytin step: 3-CNF graph: %b; still satisfiable: %b@."
    (Boolean_graph.is_3cnf_graph three_sat)
    (Boolean_graph.satisfiable three_sat);
  let colored = Cluster.apply Three_col_red.to_three_col three_sat ~ids:bids in
  Format.printf "  Gadget step: %d nodes, %d edges; 3-colourable: %b  (C4 is 2-colourable: ✓)@."
    (Graph.card colored) (Graph.num_edges colored)
    (Properties.three_colorable colored);

  (* And the odd cycle, which is NOT 2-colourable. *)
  let base = Generators.cycle 5 in
  let bids = Identifiers.make_global base in
  let image = Three_col_red.full_chain (Cook_levin.image_graph phi base ~ids:bids) ~ids:bids in
  Format.printf "  C5 ⊨ 2-COLORABLE: %b; final 3-colourability: %b (%d nodes)@."
    (Properties.two_colorable base)
    (Properties.three_colorable image) (Graph.card image);

  (* Reduction in the other direction: a decider for the target
     property yields a decider for the source, by cluster simulation. *)
  print_endline "\nSimulation through a reduction (the hardness-transfer lemma):";
  let sim = Simulate.through_reduction Eulerian_red.reduction ~inner:Candidates.eulerian_decider () in
  List.iter
    (fun (name, h) ->
      let hids = Identifiers.make_global h in
      Format.printf "  %-28s simulated verdict: %-5b ALL-SELECTED: %b@." name
        (Runner.decides sim h ~ids:hids ())
        (Properties.all_selected h))
    [ ("figure-2 graph", g); ("all-selected variant", g1); ("K4", Generators.complete 4) ]
