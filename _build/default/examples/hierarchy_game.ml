(* Climbing the local-polynomial hierarchy: the same property expressed
   at different alternation levels, decided by exact Eve/Adam games.

   NOT-ALL-SELECTED is the running example of the paper: it is
   coLP-complete but lies outside NLP (Proposition 23), and its natural
   logical definition needs three alternating second-order blocks
   (Example 4). We compile that Σ3^LFO sentence into an arbiter with
   the generalized Fagin theorem and play the 3-round game.

   Run with: dune exec examples/hierarchy_game.exe *)

open Lph_core

let show_game name compiled g =
  let ids = Identifiers.make_global g in
  let node_only t = List.for_all (fun e -> e < Graph.card g) t in
  let value = Fagin.game_accepts ~tuple_filter:node_only compiled g ~ids in
  Format.printf "  %-24s -> Eve %s@." name (if value then "wins" else "loses")

let () =
  print_endline "=== The Eve/Adam certificate game across hierarchy levels ===\n";

  (* Level 0 (LP): ALL-SELECTED, no certificates at all. *)
  let c0 = Fagin.compile Graph_formulas.all_selected in
  Format.printf "ALL-SELECTED compiles to a level-%d arbiter (matrix radius %d)@."
    (List.length c0.Fagin.blocks) c0.Fagin.radius;
  show_game "C3 all ones" c0 (Generators.cycle 3);
  show_game "C3 with a zero" c0 (Graph.with_labels (Generators.cycle 3) [| "1"; "0"; "1" |]);

  (* Level 1 (NLP): 2-COLORABLE, Eve provides colours. *)
  let c1 = Fagin.compile Graph_formulas.two_colorable in
  Format.printf "@.2-COLORABLE compiles to a level-%d arbiter@." (List.length c1.Fagin.blocks);
  show_game "P3 (bipartite)" c1 (Generators.path 3);
  show_game "C3 (odd cycle)" c1 (Generators.cycle 3);

  (* Level 3: NOT-ALL-SELECTED via the spanning-forest game of
     Example 4 — Eve claims a forest of parent pointers leading to an
     unselected root, Adam challenges a cycle with a set X, Eve answers
     with charges Y. *)
  let c3 = Fagin.compile Graph_formulas.not_all_selected in
  Format.printf "@.NOT-ALL-SELECTED (Example 4) compiles to a level-%d arbiter; blocks: %s@."
    (List.length c3.Fagin.blocks)
    (String.concat " "
       (List.map
          (fun (q, vars) ->
            Printf.sprintf "%s{%s}"
              (match q with Logic_syntax.Ex -> "∃" | Logic_syntax.All -> "∀")
              (String.concat "," (List.map fst vars)))
          c3.Fagin.blocks));
  show_game "P2 with a zero" c3 (Graph.with_labels (Generators.path 2) [| "0"; "1" |]);
  show_game "P2 all ones" c3 (Generators.path 2);

  (* The same property by direct model checking of the Σ3 sentence. *)
  print_endline "\nDirect model checking of the Σ3^LFO sentence:";
  List.iter
    (fun (name, g) ->
      Format.printf "  %-24s -> %b (ground truth %b)@." name
        (Graph_formulas.holds g Graph_formulas.not_all_selected)
        (Properties.not_all_selected g))
    [
      ("C3 all ones", Generators.cycle 3);
      ("C3 with a zero", Graph.with_labels (Generators.cycle 3) [| "1"; "0"; "1" |]);
      ("C4 with a zero", Graph.with_labels (Generators.cycle 4) [| "1"; "1"; "0"; "1" |]);
    ];

  (* Level 5: Example 6's HAMILTONIAN sentence — the most alternations
     of any formula in the paper. *)
  print_endline "\nHAMILTONIAN (Example 6, Σ5^LFO) by model checking:";
  List.iter
    (fun (name, g) ->
      Format.printf "  %-24s -> %b (ground truth %b)@." name
        (Graph_formulas.holds g Graph_formulas.hamiltonian)
        (Properties.hamiltonian g))
    [ ("C3", Generators.cycle 3); ("P3", Generators.path 3) ];

  print_endline "\nSyntactic levels (Section 5.2):";
  List.iter
    (fun (name, phi) ->
      let level, first = Logic_syntax.level phi in
      Format.printf "  %-20s level %d, starts with %s@." name level
        (match first with
        | Some Logic_syntax.Ex -> "∃ (Σ)"
        | Some Logic_syntax.All -> "∀ (Π)"
        | None -> "- (quantifier-free prefix)"))
    [
      ("ALL-SELECTED", Graph_formulas.all_selected);
      ("3-COLORABLE", Graph_formulas.three_colorable);
      ("NOT-ALL-SELECTED", Graph_formulas.not_all_selected);
      ("NON-3-COLORABLE", Graph_formulas.non_3_colorable);
      ("HAMILTONIAN", Graph_formulas.hamiltonian);
      ("NON-HAMILTONIAN", Graph_formulas.non_hamiltonian);
    ]
