open Lph_core
open Helpers
module F = Formula
module GF = Graph_formulas

let formula_tests =
  [
    quick "free variables" (fun () ->
        let f = F.Exists ("x", F.And (F.Unary (1, "x"), F.Binary (1, "x", "y"))) in
        Alcotest.(check (list string)) "fo" [ "y" ] (F.free_fo f);
        let g = F.Exists_so ("R", 2, F.App ("R", [ "x"; "y" ])) in
        Alcotest.(check (list string)) "so bound" [] (List.map fst (F.free_so g));
        let h = F.App ("S", [ "x" ]) in
        Alcotest.(check (list (pair string int))) "so free" [ ("S", 1) ] (F.free_so h));
    quick "free_so rejects mixed arities" (fun () ->
        Alcotest.check_raises "arity"
          (Invalid_argument "Formula.free_so: R used at arities 1 and 2") (fun () ->
            ignore (F.free_so (F.And (F.App ("R", [ "x" ]), F.App ("R", [ "x"; "y" ]))))));
    quick "substitution" (fun () ->
        let f = F.And (F.Unary (1, "x"), F.Exists_near ("z", "x", F.Eq ("z", "x"))) in
        let f' = F.subst_fo f "x" "y" in
        Alcotest.(check (list string)) "now y" [ "y" ] (F.free_fo f'));
    quick "substitution capture is refused" (fun () ->
        let f = F.Exists ("y", F.Eq ("x", "y")) in
        Alcotest.check_raises "capture"
          (Invalid_argument "Formula.subst_fo: substituting y for x captures under binder y")
          (fun () -> ignore (F.subst_fo f "x" "y")));
    quick "exists_within radius 0" (fun () ->
        let f = F.exists_within ~radius:0 "x" "y" (F.Unary (1, "x")) in
        check_bool "is substitution" true (f = F.Unary (1, "y")));
    quick "exists_within radius grows" (fun () ->
        let f1 = F.exists_within ~radius:1 "x" "y" (F.Unary (1, "x")) in
        let f2 = F.exists_within ~radius:2 "x" "y" (F.Unary (1, "x")) in
        check_bool "bigger" true (F.size f2 > F.size f1));
    quick "size and pp" (fun () ->
        let f = F.And (F.True, F.Not F.False) in
        check_int "size" 4 (F.size f);
        check_bool "prints" true (String.length (F.to_string GF.all_selected) > 10));
    quick "conj/disj" (fun () ->
        check_bool "empty conj" true (F.conj [] = F.True);
        check_bool "empty disj" true (F.disj [] = F.False));
  ]

let syntax_tests =
  [
    quick "classes of the section 5.2 formulas" (fun () ->
        check_bool "all_selected LFO" true (Logic_syntax.is_lfo GF.all_selected);
        check_bool "3col Σ1" true (Logic_syntax.in_sigma_lfo 1 GF.three_colorable);
        check_bool "3col not Σ0" false (Logic_syntax.in_sigma_lfo 0 GF.three_colorable);
        check_bool "3col not Π1" false (Logic_syntax.in_pi_lfo 1 GF.three_colorable);
        check_bool "3col Π2" true (Logic_syntax.in_pi_lfo 2 GF.three_colorable);
        check_bool "nas Σ3" true (Logic_syntax.in_sigma_lfo 3 GF.not_all_selected);
        check_bool "nas not Σ2" false (Logic_syntax.in_sigma_lfo 2 GF.not_all_selected);
        check_bool "nas Π4" true (Logic_syntax.in_pi_lfo 4 GF.not_all_selected);
        check_bool "non3col Π4" true (Logic_syntax.in_pi_lfo 4 GF.non_3_colorable);
        check_bool "ham Σ5" true (Logic_syntax.in_sigma_lfo 5 GF.hamiltonian);
        check_bool "ham not Σ4" false (Logic_syntax.in_sigma_lfo 4 GF.hamiltonian);
        check_bool "nonham Π4" true (Logic_syntax.in_pi_lfo 4 GF.non_hamiltonian));
    quick "monadicity" (fun () ->
        check_bool "3col monadic" true (Logic_syntax.is_monadic GF.three_colorable);
        check_bool "nas not monadic (binary P)" false (Logic_syntax.is_monadic GF.not_all_selected));
    quick "bf membership" (fun () ->
        check_bool "is_selected BF" true (Logic_syntax.is_bf (GF.is_selected "x"));
        check_bool "unbounded not BF" false (Logic_syntax.is_bf (F.Exists ("x", F.True)));
        check_bool "fo yes" true (Logic_syntax.is_fo (F.Exists ("x", F.True))));
    quick "so blocks" (fun () ->
        let blocks, _ = Logic_syntax.so_blocks GF.hamiltonian in
        check_int "5 blocks" 5 (List.length blocks);
        let level, first = Logic_syntax.level GF.non_hamiltonian in
        check_int "level 4" 4 level;
        check_bool "starts with forall" true (first = Some Logic_syntax.All));
    quick "visibility radius" (fun () ->
        check_int "atom" 0 (Logic_syntax.visibility_radius (F.Unary (1, "x")));
        check_int "one hop" 1 (Logic_syntax.visibility_radius (F.Exists_near ("y", "x", F.True)));
        check_bool "is_selected sees 2" true
          (Logic_syntax.visibility_radius (GF.is_selected "x") = 2));
    quick "sentences" (fun () ->
        check_bool "yes" true (Logic_syntax.is_sentence GF.all_selected);
        check_bool "no" false (Logic_syntax.is_sentence (GF.is_selected "x")));
  ]

let eval_tests =
  [
    quick "atomic evaluation" (fun () ->
        let s = Structure.create ~card:3 ~unary:[| [ 0 ] |] ~binary:[| [ (0, 1); (1, 2) ] |] in
        let env = Logic_eval.bind_fo Logic_eval.empty_env "x" 0 in
        check_bool "unary" true (Logic_eval.eval s env (F.Unary (1, "x")));
        let env = Logic_eval.bind_fo env "y" 1 in
        check_bool "binary" true (Logic_eval.eval s env (F.Binary (1, "x", "y")));
        check_bool "eq" false (Logic_eval.eval s env (F.Eq ("x", "y"))));
    quick "bounded quantifier semantics" (fun () ->
        let s = Structure.create ~card:3 ~unary:[| [ 2 ] |] ~binary:[| [ (0, 1); (1, 2) ] |] in
        let env = Logic_eval.bind_fo Logic_eval.empty_env "y" 0 in
        (* element 2 is not ⇌-adjacent to 0 *)
        check_bool "near miss" false
          (Logic_eval.eval s env (F.Exists_near ("x", "y", F.Unary (1, "x"))));
        check_bool "unbounded hit" true (Logic_eval.eval s env (F.Exists ("x", F.Unary (1, "x")))));
    quick "second order over explicit candidates" (fun () ->
        let s = Structure.create ~card:2 ~unary:[||] ~binary:[| [ (0, 1) ] |] in
        let universe _ _ _ = Logic_eval.Explicit [ Relation.of_list [ [ 0 ] ]; Relation.of_list [ [ 1 ] ] ] in
        let f = F.Exists_so ("X", 1, F.Forall ("x", F.Iff (F.App ("X", [ "x" ]), F.Eq ("x", "x")))) in
        (* no candidate contains both elements *)
        check_bool "no full set" false (Logic_eval.eval ~so_universe:universe s Logic_eval.empty_env f));
    quick "universe guard" (fun () ->
        let s = Structure.create ~card:6 ~unary:[||] ~binary:[| [ (0, 1) ] |] in
        Alcotest.check_raises "too large" (Logic_eval.Universe_too_large ("R", 36)) (fun () ->
            ignore
              (Logic_eval.eval ~max_universe:10 s Logic_eval.empty_env
                 (F.Exists_so ("R", 2, F.True)))));
    quick "holds requires sentences" (fun () ->
        Alcotest.check_raises "open" (Invalid_argument "Eval.holds: not a sentence") (fun () ->
            ignore (Logic_eval.holds (Structure.create ~card:1 ~unary:[||] ~binary:[||]) (F.Unary (1, "x")))));
  ]

(* the §5.2 formulas against ground truth, exhaustively on small graphs *)
let semantics_tests =
  let graphs_small =
    [
      Generators.cycle 3;
      Generators.cycle 4;
      Generators.path 2;
      Generators.path 3;
      Generators.complete 4;
      Generators.star 4;
      Graph.singleton "1";
      Graph.singleton "0";
    ]
  in
  let agree name formula truth graphs =
    quick name (fun () ->
        List.iter
          (fun g ->
            check_bool (graph_print g) (truth g) (GF.holds g formula))
          graphs)
  in
  [
    agree "all_selected ≡ ALL-SELECTED" GF.all_selected Properties.all_selected
      (graphs_small
      @ [ Graph.with_labels (Generators.cycle 3) [| "1"; "11"; "1" |] ]);
    agree "not_all_selected ≡ complement" GF.not_all_selected Properties.not_all_selected
      [
        Generators.cycle 3;
        Graph.with_labels (Generators.cycle 3) [| "1"; "0"; "1" |];
        Graph.with_labels (Generators.path 2) [| "0"; "0" |];
        Graph.singleton "1";
        Graph.singleton "0";
        Graph.with_labels (Generators.cycle 4) [| "1"; "1"; "1"; "0" |];
      ];
    agree "two_colorable ≡ bipartite" GF.two_colorable Properties.two_colorable graphs_small;
    agree "three_colorable ≡ 3COL" GF.three_colorable Properties.three_colorable graphs_small;
    agree "hamiltonian ≡ HAM" GF.hamiltonian Properties.hamiltonian
      [ Generators.cycle 3; Generators.path 3; Generators.complete 4; Generators.star 4 ];
    agree "non_hamiltonian ≡ complement" GF.non_hamiltonian
      (fun g -> not (Properties.hamiltonian g))
      [ Generators.cycle 3; Generators.path 3; Generators.star 4 ];
    agree "non_3_colorable ≡ complement" GF.non_3_colorable
      (fun g -> not (Properties.three_colorable g))
      [ Generators.cycle 3; Generators.path 2; Generators.complete 4 ];
    qcheck ~count:30 "all_selected agrees on random graphs" (arb_graph ~max_nodes:5 ()) (fun g ->
        GF.holds g GF.all_selected = Properties.all_selected g);
    qcheck ~count:15 "2-colourability agrees on random graphs" (arb_graph ~max_nodes:4 ())
      (fun g -> GF.holds g GF.two_colorable = Properties.two_colorable g);
    quick "smart universe agrees with node universe (Σ3, tiny)" (fun () ->
        (* cross-check the P/H universe optimisations against plain
           local-tuple enumeration *)
        List.iter
          (fun g ->
            let smart =
              Logic_eval.holds_graph ~so_universe:(GF.smart_universe g) ~max_universe:64 g
                GF.not_all_selected
            in
            let plain =
              Logic_eval.holds_graph ~so_universe:(GF.node_universe g) ~max_universe:64 g
                GF.not_all_selected
            in
            check_bool (graph_print g) plain smart)
          [
            Generators.path 2;
            Graph.with_labels (Generators.path 2) [| "0"; "1" |];
            Generators.cycle 3;
            Graph.with_labels (Generators.cycle 3) [| "1"; "0"; "1" |];
          ]);
  ]

let suites =
  [
    ("logic:formula", formula_tests);
    ("logic:syntax", syntax_tests);
    ("logic:eval", eval_tests);
    ("logic:semantics", semantics_tests);
  ]

(* negation normal form and the paper's LFO asymmetry *)
let negation_tests =
  [
    quick "negate is semantically the negation" (fun () ->
        let g = Graph.with_labels (Generators.cycle 3) [| "1"; "0"; "1" |] in
        List.iter
          (fun phi ->
            check_bool (F.to_string phi) (not (GF.holds g phi)) (GF.holds g (F.negate phi)))
          [ GF.all_selected; GF.two_colorable ]);
    quick "negate dualises quantifiers" (fun () ->
        let phi = F.Exists_so ("X", 1, F.Forall ("x", F.Exists_near ("y", "x", F.App ("X", [ "y" ])))) in
        match F.negate phi with
        | F.Forall_so ("X", 1, F.Exists ("x", F.Forall_near ("y", "x", F.Not (F.App ("X", [ "y" ]))))) -> ()
        | other -> Alcotest.failf "unexpected shape: %s" (F.to_string other));
    quick "negate is an involution up to double negation" (fun () ->
        let phi = GF.three_colorable in
        check_bool "same truth" true
          (GF.holds (Generators.cycle 3) (F.negate (F.negate phi))
          = GF.holds (Generators.cycle 3) phi));
    quick "LFO is not closed under negation (Section 5.1)" (fun () ->
        check_bool "all_selected is LFO" true (Logic_syntax.is_lfo GF.all_selected);
        check_bool "its NNF negation is not LFO" false (Logic_syntax.is_lfo (F.negate GF.all_selected));
        check_bool "nor in any Σl^LFO" false (Logic_syntax.in_sigma_lfo 5 (F.negate GF.all_selected));
        (* Example 4 instead re-expresses the complement as a Σ3 game *)
        check_bool "Example 4's workaround is Σ3" true (Logic_syntax.in_sigma_lfo 3 GF.not_all_selected));
    qcheck ~count:20 "negate agrees with Not on random graphs" (arb_graph ~max_nodes:4 ())
      (fun g ->
        GF.holds g (F.negate GF.all_selected) = not (GF.holds g GF.all_selected));
  ]

let suites = suites @ [ ("logic:negation", negation_tests) ]
