open Lph_core
open Helpers

(* A restrictor that only accepts certificates decoding to values below
   k — the convention the colour verifier relies on. *)
let below k =
  Restrictor.per_node ~name:(Printf.sprintf "below-%d" k) (fun _ctx cert ->
      Bitstring.to_int cert < k && String.length cert <= 2)

let restrictor_tests =
  [
    quick "trivial restrictor accepts everything" (fun () ->
        let g = Generators.cycle 3 in
        check_bool "all" true
          (Restrictor.accepts_all Restrictor.trivial g ~ids:(global_ids g) ~prefix:[]
             ~candidate:[| "0"; "111"; "" |]));
    quick "per-node verdicts" (fun () ->
        let g = Generators.path 3 in
        let v =
          (below 3).Restrictor.verdicts g ~ids:(global_ids g) ~prefix:[] ~candidate:[| "10"; "11"; "0" |]
        in
        Alcotest.(check (array bool)) "verdicts" [| true; false; true |] v);
    quick "local repairability of per-node restrictors" (fun () ->
        let g = Generators.path 2 in
        let universe = Game.of_choices [ ""; "0"; "1"; "10"; "11" ] in
        check_bool "repairable" true
          (Restrictor.locally_repairable (below 2) g ~ids:(global_ids g) ~prefix_universe:[ [] ]
             ~universe));
    quick "an unrepairable restrictor is detected" (fun () ->
        (* parity restrictor: node accepts iff its certificate equals its
           left neighbour's — fixing one node necessarily changes the
           other's verdict basis... we model a simpler failure: a
           restrictor with NO acceptable certificate at all *)
        let impossible = Restrictor.per_node ~name:"impossible" (fun _ _ -> false) in
        let g = Generators.path 2 in
        check_bool "not repairable" false
          (Restrictor.locally_repairable impossible g ~ids:(global_ids g) ~prefix_universe:[ [] ]
             ~universe:(Game.of_choices [ ""; "1" ])));
    quick "Lemma 8: restricted and converted games agree (3-COLORABLE)" (fun () ->
        (* The colour verifier, played (a) over the semantic universe of
           valid colour encodings, and (b) over ALL bit strings of
           length <= 2 with the Lemma 8 conversion of the "below 3"
           restrictor. The two game values must coincide. *)
        let verifier = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3) in
        let raw_universe = Game.bitstring_universe ~max_len:2 in
        List.iter
          (fun g ->
            let ids = global_ids g in
            let restricted =
              Restrictor.restricted_game ~first:Game.Eve ~arbiter:verifier
                ~restrictors:[ below 3 ] g ~ids ~universes:[ raw_universe ]
            in
            let converted = Restrictor.lemma8_convert ~restrictors:[ below 3 ] ~first:Game.Eve verifier in
            let permissive = Game.sigma_accepts converted g ~ids ~universes:[ raw_universe ] in
            check_bool (graph_print g) restricted permissive;
            (* and both agree with ground truth *)
            check_bool (graph_print g ^ " truth") (Properties.three_colorable g) permissive)
          [ Generators.path 3; Generators.cycle 3; Generators.complete 4 ]);
    quick "Lemma 8 polarity: invalid universal certificates accept" (fun () ->
        (* a 1-level Π arbiter whose restrictor always rejects: the
           converted permissive arbiter must accept every certificate *)
        let never = Restrictor.per_node ~name:"never" (fun _ _ -> false) in
        let reject_all =
          Arbiter.of_local_algo ~id_radius:1
            (Local_algo.pure_decider ~name:"reject" ~levels:1 (fun _ -> false))
        in
        let converted = Restrictor.lemma8_convert ~restrictors:[ never ] ~first:Game.Adam reject_all in
        let g = Generators.path 2 in
        check_bool "accepts" true
          (converted.Arbiter.accepts g ~ids:(global_ids g) ~certs:[ [| "1"; "0" |] ]));
    quick "Lemma 8 polarity: invalid existential certificates reject" (fun () ->
        let never = Restrictor.per_node ~name:"never" (fun _ _ -> false) in
        let accept_all =
          Arbiter.of_local_algo ~id_radius:1
            (Local_algo.pure_decider ~name:"accept" ~levels:1 (fun _ -> true))
        in
        let converted = Restrictor.lemma8_convert ~restrictors:[ never ] ~first:Game.Eve accept_all in
        let g = Generators.path 2 in
        check_bool "rejects" false
          (converted.Arbiter.accepts g ~ids:(global_ids g) ~certs:[ [| "1"; "0" |] ]));
  ]

let classes_tests =
  [
    quick "names" (fun () ->
        check_string "lp" "LP" (Classes.name Classes.lp);
        check_string "nlp" "NLP" (Classes.name Classes.nlp);
        check_string "colp" "coLP" (Classes.name Classes.colp);
        check_string "sigma2" "Σ2^LP" (Classes.name (Classes.sigma 2));
        check_string "copi3" "coΠ3^LP" (Classes.name (Classes.co (Classes.pi 3))));
    quick "move orders" (fun () ->
        check_bool "lp empty" true (Classes.move_order Classes.lp = []);
        check_bool "sigma3" true
          (Classes.move_order (Classes.sigma 3) = [ Game.Eve; Game.Adam; Game.Eve ]);
        check_bool "pi2" true (Classes.move_order (Classes.pi 2) = [ Game.Adam; Game.Eve ]));
    quick "definitional inclusions of Figure 1" (fun () ->
        check_bool "LP ⊆ NLP" true (Classes.includes Classes.nlp Classes.lp);
        check_bool "LP ⊆ Π1" true (Classes.includes (Classes.pi 1) Classes.lp);
        check_bool "NLP ⊆ Σ2" true (Classes.includes (Classes.sigma 2) Classes.nlp);
        check_bool "NLP ⊆ Π2" true (Classes.includes (Classes.pi 2) Classes.nlp);
        check_bool "NLP ⊄ Π1 definitionally" false (Classes.includes (Classes.pi 1) Classes.nlp);
        check_bool "Π1 ⊄ NLP definitionally" false (Classes.includes Classes.nlp (Classes.pi 1));
        check_bool "coLP ⊆ coNLP" true (Classes.includes Classes.conlp Classes.colp);
        check_bool "co vs plain incomparable here" false (Classes.includes Classes.nlp Classes.colp));
    quick "class membership via accepts" (fun () ->
        let verifier = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 2) in
        let g = Generators.cycle 5 in
        let ids = global_ids g in
        let universes = [ Candidates.color_universe 2 ] in
        check_bool "NLP condition on C5" false (Classes.accepts Classes.nlp verifier g ~ids ~universes);
        check_bool "complement flips" true
          (Classes.accepts (Classes.co Classes.nlp) verifier g ~ids ~universes));
    quick "figure levels listing" (fun () ->
        check_int "levels 0..2" 10 (List.length (Classes.figure_one_levels 2)));
  ]

let suites = [ ("hierarchy:restrictor", restrictor_tests); ("hierarchy:classes", classes_tests) ]

(* the complement hierarchy in action: coLP-complete NON-EULERIAN *)
let complement_tests =
  [
    quick "coLP membership via Classes.accepts" (fun () ->
        let eulerian_arbiter = Arbiter.of_local_algo ~id_radius:1 Candidates.eulerian_decider in
        List.iter
          (fun g ->
            let ids = global_ids g in
            check_bool (graph_print g)
              (not (Properties.eulerian g))
              (Classes.accepts Classes.colp eulerian_arbiter g ~ids ~universes:[]))
          [ Generators.cycle 4; Generators.path 3; Generators.complete 4; Generators.complete 5 ]);
    quick "a property and its complement are decided by the same machine" (fun () ->
        (* LP vs coLP differ only in which answer counts as membership *)
        let a = Arbiter.of_local_algo ~id_radius:1 Candidates.all_selected_decider in
        let g = Graph.with_labels (Generators.cycle 3) [| "1"; "0"; "1" |] in
        let ids = global_ids g in
        check_bool "LP view" false (Classes.accepts Classes.lp a g ~ids ~universes:[]);
        check_bool "coLP view" true (Classes.accepts Classes.colp a g ~ids ~universes:[]));
  ]

let suites = suites @ [ ("hierarchy:complement", complement_tests) ]
