open Lph_core
open Helpers
module F = Formula

let even_ones =
  Dfa.create ~alphabet:2 ~states:2 ~start:0 ~accept:[ 0 ] ~delta:(fun s a -> if a = 1 then 1 - s else s)

let contains_11 =
  Dfa.create ~alphabet:2 ~states:3 ~start:0 ~accept:[ 2 ] ~delta:(fun s a ->
      match (s, a) with 2, _ -> 2 | _, 0 -> 0 | 0, _ -> 1 | 1, _ -> 2 | _ -> 0)

let dfa_tests =
  [
    quick "run and accept" (fun () ->
        check_bool "even" true (Dfa.accepts even_ones [ 1; 1; 0 ]);
        check_bool "odd" false (Dfa.accepts even_ones [ 1; 0; 0 ]);
        check_bool "11" true (Dfa.accepts contains_11 [ 0; 1; 1; 0 ]);
        check_bool "no 11" false (Dfa.accepts contains_11 [ 1; 0; 1; 0 ]));
    quick "complement" (fun () ->
        let c = Dfa.complement even_ones in
        check_bool "flip" true (Dfa.accepts c [ 1 ]);
        check_bool "flip2" false (Dfa.accepts c []));
    quick "product union and intersection" (fun () ->
        let inter = Dfa.product even_ones contains_11 ~both:( && ) in
        check_bool "both" true (Dfa.accepts inter [ 1; 1 ]);
        check_bool "only even" false (Dfa.accepts inter [ 1; 0; 1 ]);
        let union = Dfa.product even_ones contains_11 ~both:( || ) in
        check_bool "either" true (Dfa.accepts union [ 1; 0; 1 ]));
    quick "emptiness and witness" (fun () ->
        check_bool "nonempty" false (Dfa.is_empty even_ones);
        let impossible = Dfa.product even_ones (Dfa.complement even_ones) ~both:( && ) in
        check_bool "empty" true (Dfa.is_empty impossible);
        match Dfa.find_accepted contains_11 with
        | Some w -> check_bool "witness accepted" true (Dfa.accepts contains_11 w)
        | None -> Alcotest.fail "11 language is nonempty");
    quick "equivalence" (fun () ->
        check_bool "self" true (Dfa.equivalent even_ones even_ones);
        check_bool "different" false (Dfa.equivalent even_ones contains_11));
    quick "minimize" (fun () ->
        (* blow up even_ones with unreachable and duplicate states *)
        let bloated =
          Dfa.create ~alphabet:2 ~states:6 ~start:0 ~accept:[ 0; 2 ] ~delta:(fun s a ->
              match (s, a) with
              | 0, 1 -> 1
              | 0, 0 -> 2
              | 2, 1 -> 1
              | 2, 0 -> 0
              | 1, 1 -> 2
              | 1, 0 -> 1
              | s, _ -> s)
        in
        let minimized = Dfa.minimize bloated in
        check_bool "equivalent" true (Dfa.equivalent bloated minimized);
        check_int "two states" 2 minimized.Dfa.states);
    quick "enumerate" (fun () ->
        let words = Dfa.enumerate even_ones ~max_len:3 in
        check_bool "all accepted" true (List.for_all (Dfa.accepts even_ones) words);
        (* even-weight words of length <= 3: eps,0,00,11,000,011,101,110 *)
        check_int "count" 8 (List.length words));
    qcheck ~count:100 "minimize preserves the language"
      (arb_word ~alphabet:2 ~max_len:8)
      (fun w -> Dfa.accepts contains_11 w = Dfa.accepts (Dfa.minimize contains_11) w);
    qcheck ~count:100 "de morgan on automata" (arb_word ~alphabet:2 ~max_len:7) (fun w ->
        let lhs = Dfa.complement (Dfa.product even_ones contains_11 ~both:( && )) in
        let rhs = Dfa.product (Dfa.complement even_ones) (Dfa.complement contains_11) ~both:( || ) in
        Dfa.accepts lhs w = Dfa.accepts rhs w);
  ]

let nfa_tests =
  [
    quick "determinize a nondeterministic guess" (fun () ->
        (* accepts words whose last letter is 1 *)
        let n =
          {
            Nfa.alphabet = 2;
            states = 2;
            starts = [ 0 ];
            accept = [| false; true |];
            delta = (fun s a -> if s = 0 then if a = 1 then [ 0; 1 ] else [ 0 ] else []);
          }
        in
        let d = Nfa.determinize n in
        List.iter
          (fun w -> check_bool "agrees" (Nfa.accepts n w) (Dfa.accepts d w))
          (Automata_word.all_words ~alphabet:2 ~max_len:6));
  ]

let word_tests =
  [
    quick "bitstring conversions" (fun () ->
        Alcotest.(check (list int)) "of" [ 1; 0; 1 ] (Automata_word.of_bitstring "101");
        check_string "to" "101" (Automata_word.to_bitstring [ 1; 0; 1 ]));
    quick "structure shape" (fun () ->
        let s = Automata_word.structure ~bits:1 [ 1; 0; 1; 1 ] in
        check_int "card" 4 (Structure.card s);
        check_int "succ pairs" 3 (List.length (Structure.binary_pairs s 1));
        Alcotest.(check (list int)) "ones" [ 0; 2; 3 ] (Structure.unary_members s 1));
  ]

let compare_mso name ~bits formula =
  quick name (fun () ->
      let dfa = Mso_to_dfa.compile ~bits formula in
      List.iter
        (fun w ->
          if w <> [] then
            check_bool
              (String.concat "" (List.map string_of_int w))
              (Mso_to_dfa.holds ~bits w formula)
              (Dfa.accepts dfa w))
        (Automata_word.all_words ~alphabet:(1 lsl bits) ~max_len:6))

let x_at v = F.App ("X", [ v ])

let even_parity_mso =
  F.Exists_so
    ( "X",
      1,
      F.conj
        [
          F.Forall
            ( "f",
              F.Implies
                ( F.Not (F.Exists ("p", F.Binary (1, "p", "f"))),
                  F.Iff (x_at "f", F.Unary (1, "f")) ) );
          F.Forall
            ( "a",
              F.Forall
                ( "b",
                  F.Implies
                    ( F.Binary (1, "a", "b"),
                      F.Iff (x_at "b", F.Iff (x_at "a", F.Not (F.Unary (1, "b")))) ) ) );
          F.Forall
            ("l", F.Implies (F.Not (F.Exists ("q", F.Binary (1, "l", "q"))), F.Not (x_at "l")));
        ] )

let mso_tests =
  [
    compare_mso "∃x ⊙1x" ~bits:1 (F.Exists ("x", F.Unary (1, "x")));
    compare_mso "∀x ⊙1x" ~bits:1 (F.Forall ("x", F.Unary (1, "x")));
    compare_mso "adjacent 1s" ~bits:1
      (F.Exists
         ("x", F.Exists ("y", F.conj [ F.Binary (1, "x", "y"); F.Unary (1, "x"); F.Unary (1, "y") ])));
    compare_mso "first letter 0" ~bits:1
      (F.Exists ("x", F.And (F.Not (F.Exists ("y", F.Binary (1, "y", "x"))), F.Not (F.Unary (1, "x")))));
    compare_mso "bounded quantifier: a 1 next to a 0" ~bits:1
      (F.Exists ("x", F.And (F.Unary (1, "x"), F.Exists_near ("y", "x", F.Not (F.Unary (1, "y"))))));
    compare_mso "even parity (monadic Σ1)" ~bits:1 even_parity_mso;
    compare_mso "2-bit letters" ~bits:2 (F.Exists ("x", F.And (F.Unary (1, "x"), F.Unary (2, "x"))));
    quick "compiled parity is the minimal 2-state dfa" (fun () ->
        let d = Mso_to_dfa.compile ~bits:1 even_parity_mso in
        check_int "states" 2 d.Dfa.states;
        check_bool "equivalent" true (Dfa.equivalent d even_ones));
    quick "unsupported features raise" (fun () ->
        Alcotest.check_raises "binary SO"
          (Mso_to_dfa.Unsupported "non-monadic second-order quantifier") (fun () ->
            ignore (Mso_to_dfa.compile ~bits:1 (F.Exists_so ("R", 2, F.True)))));
  ]

let pumping_tests =
  [
    quick "decompose and verify" (fun () ->
        match Pumping.decompose contains_11 [ 0; 1; 1; 0; 1 ] with
        | None -> Alcotest.fail "decomposable"
        | Some d ->
            check_bool "loop nonempty" true (d.Pumping.loop <> []);
            check_bool "pump 0..6" true (Pumping.verify contains_11 d ~upto:6);
            check_bool "pump 1 is original" true
              (Pumping.pump d 1 = [ 0; 1; 1; 0; 1 ]));
    quick "short words are not decomposed" (fun () ->
        check_bool "too short" true (Pumping.decompose contains_11 [ 1; 1 ] = None));
    qcheck ~count:60 "pumping on every long accepted word"
      (arb_word ~alphabet:2 ~max_len:10)
      (fun w ->
        match Pumping.decompose even_ones w with
        | None -> (not (Dfa.accepts even_ones w)) || List.length w < even_ones.Dfa.states
        | Some d -> Pumping.verify even_ones d ~upto:4);
  ]

let suites =
  [
    ("automata:dfa", dfa_tests);
    ("automata:nfa", nfa_tests);
    ("automata:word", word_tests);
    ("automata:mso", mso_tests);
    ("automata:pumping", pumping_tests);
  ]

(* Non-regularity refutation: EQ01 escapes every DFA *)
let nonregular_tests =
  [
    quick "eq01 predicate" (fun () ->
        check_bool "balanced" true (Nonregular.eq01 [ 0; 1; 1; 0 ]);
        check_bool "unbalanced" false (Nonregular.eq01 [ 0; 1; 1 ]);
        check_bool "empty" true (Nonregular.eq01 []));
    quick "every candidate DFA is refuted with a concrete witness" (fun () ->
        let candidates =
          [
            ("even-ones", even_ones);
            ("contains-11", contains_11);
            ("complement even-ones", Dfa.complement even_ones);
            ( "first-letter-0",
              Dfa.create ~alphabet:2 ~states:3 ~start:0 ~accept:[ 1 ] ~delta:(fun s a ->
                  match (s, a) with 0, 0 -> 1 | 0, 1 -> 2 | s, _ -> s) );
            ( "length-multiple-of-2",
              Dfa.create ~alphabet:2 ~states:2 ~start:0 ~accept:[ 0 ] ~delta:(fun s _ -> 1 - s) );
          ]
        in
        List.iter
          (fun (name, d) ->
            match Nonregular.refute_eq01 d with
            | None -> Alcotest.failf "%s not refuted" name
            | Some w ->
                check_bool (name ^ " witness differs") true (Dfa.accepts d w <> Nonregular.eq01 w))
          candidates);
    quick "a plausible candidate still falls" (fun () ->
        (* length-even DFA agrees with EQ01 on all words of length <= 1
           and on many longer ones, yet is refuted *)
        let parity_len =
          Dfa.create ~alphabet:2 ~states:2 ~start:0 ~accept:[ 0 ] ~delta:(fun s _ -> 1 - s)
        in
        check_bool "not equal to eq01 somewhere" false
          (Nonregular.agrees_up_to parity_len Nonregular.eq01 ~max_len:4);
        check_bool "refuted" true (Option.is_some (Nonregular.refute_eq01 parity_len)));
    qcheck ~count:30 "refutation witnesses are genuine"
      QCheck.(int_range 1 5)
      (fun states ->
        (* arbitrary DFAs built from a seed *)
        let d =
          Dfa.create ~alphabet:2 ~states ~start:0
            ~accept:(List.filteri (fun i _ -> i mod 2 = 0) (List.init states Fun.id))
            ~delta:(fun s a -> (s + a + 1) mod states)
        in
        match Nonregular.refute_eq01 d with
        | Some w -> Dfa.accepts d w <> Nonregular.eq01 w
        | None -> false);
  ]

let suites = suites @ [ ("automata:nonregular", nonregular_tests) ]

(* words as labelled path graphs: regular languages are NLP-verifiable
   on the promise class of paths, and unsound beyond it *)
let word_graph_tests =
  let labelled_path labels =
    Generators.path ~labels:(Array.of_list (List.map (String.make 1) labels)) (List.length labels)
  in
  [
    quick "path_word decodes paths in canonical orientation" (fun () ->
        let g = labelled_path [ '1'; '0'; '0' ] in
        (* word is min(100, 001) = 001 *)
        Alcotest.(check (option (list int))) "word" (Some [ 0; 0; 1 ]) (Word_graph.path_word g);
        Alcotest.(check (option (list int))) "single" (Some [ 1 ]) (Word_graph.path_word (Graph.singleton "1"));
        check_bool "cycle rejected" true (Word_graph.path_word (Generators.cycle 4) = None);
        check_bool "star rejected" true (Word_graph.path_word (Generators.star 4) = None);
        check_bool "long labels rejected" true (Word_graph.path_word (Graph.singleton "11") = None));
    quick "property_of_language is direction-closed" (fun () ->
        let starts_with_1 = function 1 :: _ -> true | _ -> false in
        check_bool "1 at front" true (Word_graph.property_of_language starts_with_1 (labelled_path [ '1'; '0'; '0' ]));
        check_bool "1 at back" true (Word_graph.property_of_language starts_with_1 (labelled_path [ '0'; '0'; '1' ]));
        check_bool "no 1 at ends" false (Word_graph.property_of_language starts_with_1 (labelled_path [ '0'; '1'; '0' ])));
    quick "honest certificates are accepted" (fun () ->
        List.iter
          (fun labels ->
            let g = labelled_path labels in
            let ids = global_ids g in
            let prop = Word_graph.property_of_language (Dfa.accepts even_ones) g in
            match Word_graph.dfa_certificates even_ones g ~ids with
            | Some certs ->
                check_bool "property holds" true prop;
                check_bool "verifier accepts" true
                  (Runner.decides (Word_graph.dfa_verifier even_ones) g ~ids ~cert_list:certs ())
            | None -> check_bool "property fails" false prop)
          [ [ '1'; '1' ]; [ '1'; '0'; '1' ]; [ '0' ]; [ '1' ]; [ '1'; '1'; '1' ] ]);
    quick "exact game value equals the path property" (fun () ->
        let verifier = Arbiter.of_local_algo ~id_radius:2 (Word_graph.dfa_verifier even_ones) in
        List.iter
          (fun labels ->
            let g = labelled_path labels in
            let ids = global_ids g in
            let universe = Word_graph.cert_universe even_ones g ~ids in
            check_bool
              (String.concat "" (List.map (String.make 1) labels))
              (Word_graph.property_of_language (Dfa.accepts even_ones) g)
              (Game.sigma_accepts verifier g ~ids ~universes:[ universe ]))
          [ [ '1'; '1' ]; [ '1'; '0' ]; [ '0'; '0' ]; [ '1'; '0'; '1' ]; [ '1' ]; [ '0' ] ]);
    quick "the verifier is unsound on cycles (locality strikes again)" (fun () ->
        (* C4 with all labels 1: not a path at all, but a state-consistent
           certificate loop exists for the parity DFA, and no node ever
           performs the acceptance check *)
        let g = Generators.cycle ~labels:[| "1"; "1"; "1"; "1" |] 4 in
        let ids = global_ids g in
        let verifier = Arbiter.of_local_algo ~id_radius:2 (Word_graph.dfa_verifier even_ones) in
        let universe = Word_graph.cert_universe even_ones g ~ids in
        check_bool "not a path property instance" false
          (Word_graph.property_of_language (Dfa.accepts even_ones) g);
        check_bool "yet the game accepts" true
          (Game.sigma_accepts verifier g ~ids ~universes:[ universe ]));
    qcheck ~count:40 "game ≡ property on random labelled paths"
      QCheck.(list_of_size (QCheck.Gen.int_range 1 4) (QCheck.make QCheck.Gen.(map (fun b -> if b then '1' else '0') bool)))
      (fun labels ->
        let g = labelled_path labels in
        let ids = global_ids g in
        let verifier = Arbiter.of_local_algo ~id_radius:2 (Word_graph.dfa_verifier contains_11) in
        let universe = Word_graph.cert_universe contains_11 g ~ids in
        Game.sigma_accepts verifier g ~ids ~universes:[ universe ]
        = Word_graph.property_of_language (Dfa.accepts contains_11) g);
  ]

let suites = suites @ [ ("automata:word-graph", word_graph_tests) ]

(* fuzzing the BET compiler: random MSO sentences vs the model checker *)
let gen_mso_sentence ~bits =
  let open QCheck.Gen in
  let fresh counter prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  let rec gen_formula counter fo so depth =
    let atoms =
      (if fo = [] then [ (1, return F.True); (1, return F.False) ]
       else
         [
           (3, map2 (fun i x -> F.Unary (i, x)) (int_range 1 bits) (oneofl fo));
           (2, map2 (fun x y -> F.Binary (1, x, y)) (oneofl fo) (oneofl fo));
           (1, map2 (fun x y -> F.Eq (x, y)) (oneofl fo) (oneofl fo));
         ]
         @ if so = [] then [] else [ (2, map2 (fun r x -> F.App (r, [ x ])) (oneofl so) (oneofl fo)) ])
    in
    if depth = 0 then frequency atoms
    else
      frequency
        (atoms
        @ [
            (2, map (fun f -> F.Not f) (gen_formula counter fo so (depth - 1)));
            (3, map2 (fun f g -> F.And (f, g)) (gen_formula counter fo so (depth - 1)) (gen_formula counter fo so (depth - 1)));
            (3, map2 (fun f g -> F.Or (f, g)) (gen_formula counter fo so (depth - 1)) (gen_formula counter fo so (depth - 1)));
            ( 3,
              let x = fresh counter "x" in
              map (fun f -> F.Exists (x, f)) (gen_formula counter (x :: fo) so (depth - 1)) );
            ( 2,
              let x = fresh counter "x" in
              map (fun f -> F.Forall (x, f)) (gen_formula counter (x :: fo) so (depth - 1)) );
            ( 1,
              let r = fresh counter "X" in
              map (fun f -> F.Exists_so (r, 1, f)) (gen_formula counter fo (r :: so) (depth - 1)) );
          ])
  in
  (* close the sentence with one outer quantifier so atoms always have a
     variable available *)
  int_bound 1_000_000 >>= fun _seed ->
  let counter = ref 0 in
  let x = fresh counter "x" in
  map (fun f -> F.Exists (x, f)) (gen_formula counter [ x ] [] 3)

let fuzz_tests =
  [
    qcheck ~count:60 "random MSO sentences compile correctly (bits=1)"
      (QCheck.make ~print:Formula.to_string (gen_mso_sentence ~bits:1))
      (fun phi ->
        let dfa = Mso_to_dfa.compile ~bits:1 phi in
        List.for_all
          (fun w -> w = [] || Dfa.accepts dfa w = Mso_to_dfa.holds ~bits:1 w phi)
          (Automata_word.all_words ~alphabet:2 ~max_len:4));
    qcheck ~count:25 "random MSO sentences compile correctly (bits=2)"
      (QCheck.make ~print:Formula.to_string (gen_mso_sentence ~bits:2))
      (fun phi ->
        let dfa = Mso_to_dfa.compile ~bits:2 phi in
        List.for_all
          (fun w -> w = [] || Dfa.accepts dfa w = Mso_to_dfa.holds ~bits:2 w phi)
          (Automata_word.all_words ~alphabet:4 ~max_len:3));
  ]

let suites = suites @ [ ("automata:fuzz", fuzz_tests) ]
