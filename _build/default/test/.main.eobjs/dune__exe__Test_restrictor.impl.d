test/test_restrictor.ml: Alcotest Arbiter Bitstring Candidates Classes Game Generators Graph Helpers List Local_algo Lph_core Printf Properties Restrictor String
