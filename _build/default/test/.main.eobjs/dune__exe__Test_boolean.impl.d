test/test_boolean.ml: Alcotest Bitstring Bool_formula Boolean_graph Cnf Generators Helpers List Lph_core Printf QCheck Sat_solver String Tseytin
