test/test_hierarchy.ml: Alcotest Arbiter Array Candidates Certificates Game Generators Graph Helpers Identifiers Lcl List Lph_core Machines Poly Printf Properties Runner Separations Step_time Turing
