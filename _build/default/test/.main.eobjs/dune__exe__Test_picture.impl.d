test/test_picture.ml: Alcotest Array Format Fun Generators Graph Helpers List Logic_syntax Lph_core Pic_languages Pic_local Pic_to_graph Picture Printf Seq Structure Tiling
