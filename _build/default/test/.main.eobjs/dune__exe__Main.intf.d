test/main.mli:
