test/helpers.ml: Alcotest Array Bool_formula Format Generators Graph Identifiers List Lph_core Picture QCheck QCheck_alcotest Random String
