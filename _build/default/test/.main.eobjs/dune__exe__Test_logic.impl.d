test/test_logic.ml: Alcotest Formula Generators Graph Graph_formulas Helpers List Logic_eval Logic_syntax Lph_core Properties Relation String Structure
