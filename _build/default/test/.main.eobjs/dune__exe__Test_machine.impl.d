test/test_machine.ml: Alcotest Array Bitstring Gather Generators Graph Helpers Isomorphism List Local_algo Lph_core Machines Neighborhood Poly Printf Properties Runner Step_time String Turing
