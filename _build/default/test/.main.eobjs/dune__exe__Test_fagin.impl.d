test/test_fagin.ml: Alcotest Arbiter Certificates Cnf Fagin Formula Game Generators Graph Graph_formulas Helpers List Logic_syntax Lph_core Printf Properties QCheck Sat_solver Seq Tableau
