test/test_util.ml: Alcotest Bitstring Codec Combinat Fun Helpers List Lph_core Poly QCheck Structure
