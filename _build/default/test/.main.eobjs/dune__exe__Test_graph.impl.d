test/test_graph.ml: Alcotest Array Bitstring Certificates Fun Generators Graph Helpers Identifiers Isomorphism List Lph_core Neighborhood Option Poly Seq String Structural Structure
