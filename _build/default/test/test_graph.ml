open Lph_core
open Helpers

let graph_tests =
  [
    quick "make validates connectivity" (fun () ->
        Alcotest.check_raises "disconnected"
          (Graph.Invalid "graph is not connected (1 of 2 nodes reachable)") (fun () ->
            ignore (Graph.make ~labels:[| "1"; "1" |] ~edges:[])));
    quick "make rejects self loops" (fun () ->
        Alcotest.check_raises "loop" (Graph.Invalid "self-loop at node 0") (fun () ->
            ignore (Graph.make ~labels:[| "1" |] ~edges:[ (0, 0) ])));
    quick "make rejects duplicate edges" (fun () ->
        Alcotest.check_raises "dup" (Graph.Invalid "duplicate edge") (fun () ->
            ignore (Graph.make ~labels:[| "1"; "1" |] ~edges:[ (0, 1); (1, 0) ])));
    quick "make rejects bad labels" (fun () ->
        Alcotest.check_raises "label" (Graph.Invalid "label of node 0 is not a bit string")
          (fun () -> ignore (Graph.make ~labels:[| "abc" |] ~edges:[])));
    quick "accessors" (fun () ->
        let g = Graph.make ~labels:[| "0"; "1"; "" |] ~edges:[ (0, 1); (1, 2) ] in
        check_int "card" 3 (Graph.card g);
        check_int "edges" 2 (Graph.num_edges g);
        check_int "degree" 2 (Graph.degree g 1);
        Alcotest.(check (list int)) "nbrs" [ 0; 2 ] (Graph.neighbours g 1);
        check_bool "has" true (Graph.has_edge g 2 1);
        check_bool "hasn't" false (Graph.has_edge g 0 2);
        check_string "label" "1" (Graph.label g 1);
        check_bool "single" false (Graph.is_node_graph g));
    quick "singleton" (fun () ->
        let g = Graph.singleton "101" in
        check_bool "node graph" true (Graph.is_node_graph g);
        check_int "card" 1 (Graph.card g));
    quick "with_labels and map_labels" (fun () ->
        let g = Generators.cycle 3 in
        let g' = Graph.map_labels (fun u _ -> Bitstring.of_int u) g in
        check_string "label 2" "10" (Graph.label g' 2);
        check_bool "all one" true (Graph.all_labels_one g);
        check_bool "not all one" false (Graph.all_labels_one g'));
    quick "union_disjoint" (fun () ->
        let g = Generators.path 2 and h = Generators.path 3 in
        let u = Graph.union_disjoint g h ~bridge:[ (1, 0) ] in
        check_int "card" 5 (Graph.card u);
        check_int "edges" 4 (Graph.num_edges u);
        check_bool "bridge" true (Graph.has_edge u 1 2));
    qcheck "edges are symmetric and within range" (arb_graph ()) (fun g ->
        List.for_all
          (fun (u, v) -> u < v && Graph.has_edge g u v && Graph.has_edge g v u)
          (Graph.edges g));
    qcheck "degree sums to twice the edges" (arb_graph ()) (fun g ->
        List.fold_left (fun acc u -> acc + Graph.degree g u) 0 (Graph.nodes g)
        = 2 * Graph.num_edges g);
  ]

let generator_tests =
  [
    quick "path" (fun () ->
        let g = Generators.path 5 in
        check_int "edges" 4 (Graph.num_edges g);
        check_int "max degree" 2 (Graph.max_degree g));
    quick "cycle" (fun () ->
        let g = Generators.cycle 6 in
        check_int "edges" 6 (Graph.num_edges g);
        check_bool "regular" true (List.for_all (fun u -> Graph.degree g u = 2) (Graph.nodes g)));
    quick "complete" (fun () ->
        check_int "K5 edges" 10 (Graph.num_edges (Generators.complete 5)));
    quick "star" (fun () ->
        let g = Generators.star 6 in
        check_int "centre degree" 5 (Graph.degree g 0);
        check_int "leaf degree" 1 (Graph.degree g 3));
    quick "grid" (fun () ->
        let g = Generators.grid ~rows:3 ~cols:4 () in
        check_int "card" 12 (Graph.card g);
        check_int "edges" ((2 * 4) + (3 * 3)) (Graph.num_edges g));
    quick "binary tree" (fun () ->
        let g = Generators.balanced_binary_tree ~depth:3 () in
        check_int "card" 15 (Graph.card g);
        check_int "edges" 14 (Graph.num_edges g));
    quick "glued cycle" (fun () ->
        let g, g' = Generators.glued_even_cycle 5 in
        check_int "odd" 5 (Graph.card g);
        check_int "even" 10 (Graph.card g'));
    qcheck "random graphs are valid" (arb_graph ~max_nodes:10 ()) (fun g -> Graph.card g >= 1);
  ]

let neighborhood_tests =
  [
    quick "distances on a path" (fun () ->
        let g = Generators.path 5 in
        check_int "0->4" 4 (Neighborhood.distance g 0 4);
        check_int "2->2" 0 (Neighborhood.distance g 2 2);
        check_int "ecc" 4 (Neighborhood.eccentricity g 0);
        check_int "diameter" 4 (Neighborhood.diameter g));
    quick "ball" (fun () ->
        let g = Generators.cycle 6 in
        Alcotest.(check (list int)) "radius 1" [ 0; 1; 5 ] (Neighborhood.ball g ~radius:1 0);
        check_int "radius 3 covers" 6 (List.length (Neighborhood.ball g ~radius:3 0)));
    quick "induced subgraph" (fun () ->
        let g = Generators.cycle 5 in
        let ind = Neighborhood.induced g [ 0; 1; 2 ] in
        check_int "card" 3 (Graph.card ind.Neighborhood.subgraph);
        check_int "edges" 2 (Graph.num_edges ind.Neighborhood.subgraph);
        check_int "back" 2 (ind.Neighborhood.of_sub (Option.get (ind.Neighborhood.to_sub 2))));
    quick "r_neighbourhood matches ball" (fun () ->
        let g = Generators.grid ~rows:3 ~cols:3 () in
        let ind = Neighborhood.r_neighbourhood g ~radius:1 4 in
        check_int "centre ball" 5 (Graph.card ind.Neighborhood.subgraph));
    quick "ball_information" (fun () ->
        let g = Generators.path 3 in
        let ids = [| "00"; "01"; "10" |] in
        (* node 1 ball radius 1 = all three nodes: each contributes 1 + 1 + 2 *)
        check_int "info" 12 (Neighborhood.ball_information g ~ids ~radius:1 1));
    qcheck "distance is a metric (triangle on random pairs)"
      (arb_graph ~max_nodes:7 ())
      (fun g ->
        let n = Graph.card g in
        List.for_all
          (fun u ->
            List.for_all
              (fun v ->
                List.for_all
                  (fun w ->
                    Neighborhood.distance g u w
                    <= Neighborhood.distance g u v + Neighborhood.distance g v w)
                  (List.init n Fun.id))
              (List.init n Fun.id))
          (List.init n Fun.id));
  ]

let identifier_tests =
  [
    quick "compare_id is the paper's order" (fun () ->
        check_bool "prefix" true (Identifiers.compare_id "0" "00" < 0);
        check_bool "bit" true (Identifiers.compare_id "01" "1" < 0);
        check_bool "equal" true (Identifiers.compare_id "10" "10" = 0));
    quick "make_global is globally unique and small" (fun () ->
        let g = Generators.cycle 6 in
        let ids = Identifiers.make_global g in
        check_bool "global" true (Identifiers.is_globally_unique g ids);
        check_bool "locally r=3" true (Identifiers.is_locally_unique g ~radius:3 ids));
    quick "cyclic local uniqueness" (fun () ->
        let g = Generators.cycle 20 in
        let ids = Identifiers.cyclic g ~period:5 in
        check_bool "r=1" true (Identifiers.is_locally_unique g ~radius:1 ids);
        check_bool "not r=5" false (Identifiers.is_locally_unique g ~radius:5 ids));
    quick "duplicate" (fun () ->
        let ids = [| "a0" |] in
        ignore ids;
        let ids = [| "00"; "01" |] in
        Alcotest.(check (array string)) "dup" [| "00"; "01"; "00"; "01" |] (Identifiers.duplicate ids));
    quick "single node gets the empty identifier" (fun () ->
        let g = Graph.singleton "1" in
        let ids = Identifiers.make_small g ~radius:1 in
        check_string "empty" "" ids.(0);
        check_bool "small" true (Identifiers.is_small g ~radius:1 ids));
    qcheck "make_small is locally unique and small (radius 1)"
      (arb_graph ~max_nodes:8 ())
      (fun g ->
        let ids = Identifiers.make_small g ~radius:1 in
        Identifiers.is_locally_unique g ~radius:1 ids && Identifiers.is_small g ~radius:1 ids);
    qcheck "make_small radius 2" (arb_graph ~max_nodes:8 ()) (fun g ->
        let ids = Identifiers.make_small g ~radius:2 in
        Identifiers.is_locally_unique g ~radius:2 ids && Identifiers.is_small g ~radius:2 ids);
  ]

let certificate_tests =
  [
    quick "trivial" (fun () ->
        let g = Generators.path 3 in
        Alcotest.(check (array string)) "empty" [| ""; ""; "" |] (Certificates.trivial g));
    quick "bounds" (fun () ->
        let g = Generators.path 3 in
        let ids = global_ids g in
        let bound = { Certificates.radius = 1; poly = Poly.linear 1 } in
        (* node 0's 1-ball = nodes 0,1: info = (1 + 1 + 2) * 2 = 8 *)
        check_int "max_length" 8 (Certificates.max_length g ~ids bound 0);
        check_bool "bounded" true (Certificates.is_bounded g ~ids bound [| "00000000"; ""; "1" |]);
        check_bool "unbounded" false (Certificates.is_bounded g ~ids bound [| "000000000"; ""; "1" |]));
    quick "list assignment and split" (fun () ->
        let k1 = [| "0"; "1" |] and k2 = [| ""; "11" |] in
        let l = Certificates.list_assignment [ k1; k2 ] in
        check_string "node0" "0#" l.(0);
        check_string "node1" "1#11" l.(1);
        Alcotest.(check (list string)) "split" [ "0"; "" ] (Certificates.split_list ~levels:2 l.(0));
        Alcotest.(check (list string)) "pad" [ "1"; "11"; "" ] (Certificates.split_list ~levels:3 l.(1));
        Alcotest.(check (list string)) "drop" [ "1" ] (Certificates.split_list ~levels:1 l.(1)));
    quick "all_assignments count" (fun () ->
        let g = Generators.path 2 in
        (* each node: bitstrings of length <= 1 -> 3 choices *)
        check_int "9" 9 (Seq.length (Certificates.all_assignments g ~max_len:1)));
  ]

let structural_tests =
  [
    quick "figure 4 shape" (fun () ->
        (* a triangle with labels of lengths 1, 2, 0 *)
        let g = Graph.make ~labels:[| "1"; "01"; "" |] ~edges:[ (0, 1); (1, 2); (0, 2) ] in
        let repr = Structural.of_graph g in
        let s = Structural.structure repr in
        check_int "card" 6 (Structure.card s);
        check_int "card fn" 6 (Structural.card g);
        (* edge relation is symmetric inside ⇀1, bit successors one-way *)
        let n0 = Structural.to_index repr (Structural.Node 0) in
        let n1 = Structural.to_index repr (Structural.Node 1) in
        let b11 = Structural.to_index repr (Structural.Bit (1, 1)) in
        let b12 = Structural.to_index repr (Structural.Bit (1, 2)) in
        check_bool "edge" true (Structure.mem_binary s 1 n0 n1);
        check_bool "edge sym" true (Structure.mem_binary s 1 n1 n0);
        check_bool "bit succ" true (Structure.mem_binary s 1 b11 b12);
        check_bool "bit succ oneway" false (Structure.mem_binary s 1 b12 b11);
        check_bool "ownership" true (Structure.mem_binary s 2 n1 b11);
        check_bool "bit value" true (Structure.mem_unary s 1 b12);
        check_bool "bit value 0" false (Structure.mem_unary s 1 b11));
    quick "structural degree" (fun () ->
        let g = Graph.make ~labels:[| "11"; "" |] ~edges:[ (0, 1) ] in
        check_int "deg+len" 3 (Structural.structural_degree g 0);
        check_int "deg only" 1 (Structural.structural_degree g 1);
        check_int "max" 3 (Structural.max_structural_degree g);
        check_bool "GRAPH(3)" true (Structural.in_graph_delta g 3);
        check_bool "not GRAPH(2)" false (Structural.in_graph_delta g 2));
    quick "node_elements" (fun () ->
        let g = Graph.make ~labels:[| "101" |] ~edges:[] in
        let repr = Structural.of_graph g in
        check_int "4 elements" 4 (List.length (Structural.node_elements repr 0)));
    qcheck "structural card = nodes + label bits" (arb_graph ~label_bits:2 ()) (fun g ->
        Structural.card g
        = Graph.card g
          + List.fold_left (fun acc u -> acc + String.length (Graph.label g u)) 0 (Graph.nodes g));
    qcheck "neighbourhood example of section 3" (arb_graph ()) (fun g ->
        (* N_0 structural card = 1 + |label| for every node *)
        List.for_all
          (fun u ->
            let ind = Neighborhood.r_neighbourhood g ~radius:0 u in
            Structural.card ind.Neighborhood.subgraph = 1 + String.length (Graph.label g u))
          (Graph.nodes g));
  ]

let isomorphism_tests =
  [
    quick "cycle relabelings are isomorphic" (fun () ->
        let g = Generators.cycle 5 in
        let h =
          Graph.make ~labels:(Array.make 5 "1")
            ~edges:[ (0, 2); (2, 4); (4, 1); (1, 3); (3, 0) ]
        in
        check_bool "iso" true (Isomorphism.isomorphic g h));
    quick "labels matter" (fun () ->
        let g = Generators.cycle 3 in
        let h = Graph.with_labels g [| "1"; "1"; "0" |] in
        check_bool "not iso" false (Isomorphism.isomorphic g h);
        check_bool "rotation iso" true
          (Isomorphism.isomorphic h (Graph.with_labels g [| "0"; "1"; "1" |])));
    quick "path vs star" (fun () ->
        check_bool "not iso" false (Isomorphism.isomorphic (Generators.path 4) (Generators.star 4)));
    quick "mapping preserves edges" (fun () ->
        let g = Generators.grid ~rows:2 ~cols:2 () in
        match Isomorphism.find g g with
        | None -> Alcotest.fail "self iso"
        | Some m ->
            check_bool "preserves" true
              (List.for_all (fun (u, v) -> Graph.has_edge g m.(u) m.(v)) (Graph.edges g)));
    qcheck "graphs are isomorphic to themselves" (arb_graph ~max_nodes:6 ()) (fun g ->
        Isomorphism.isomorphic g g);
  ]

let suites =
  [
    ("graph:core", graph_tests);
    ("graph:generators", generator_tests);
    ("graph:neighborhood", neighborhood_tests);
    ("graph:identifiers", identifier_tests);
    ("graph:certificates", certificate_tests);
    ("graph:structural", structural_tests);
    ("graph:isomorphism", isomorphism_tests);
  ]
