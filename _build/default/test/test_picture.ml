open Lph_core
open Helpers

let picture_tests =
  [
    quick "creation and access" (fun () ->
        let p = Picture.of_rows [ [ "10"; "01" ]; [ "11"; "00" ] ] in
        check_int "rows" 2 (Picture.rows p);
        check_int "cols" 2 (Picture.cols p);
        check_int "bits" 2 (Picture.bits p);
        check_string "get" "01" (Picture.get p 1 2);
        check_string "get2" "11" (Picture.get p 2 1));
    quick "validation" (fun () ->
        Alcotest.check_raises "ragged" (Invalid_argument "Picture.of_rows: ragged rows") (fun () ->
            ignore (Picture.of_rows [ [ "1" ]; [ "1"; "0" ] ]));
        Alcotest.check_raises "width"
          (Invalid_argument "Picture.create: entry is not a bit string of the declared length")
          (fun () -> ignore (Picture.create ~bits:2 ~rows:1 ~cols:1 (fun _ _ -> "1"))));
    quick "structure of figure 5" (fun () ->
        (* 2-bit picture of size (3,4): 12 elements, signature (2,2) *)
        let p = Picture.constant ~bits:2 ~rows:3 ~cols:4 "10" in
        let s = Picture.structure p in
        check_int "card" 12 (Structure.card s);
        Alcotest.(check (pair int int)) "signature" (2, 2) (Structure.signature s);
        (* vertical: 2*4 pairs; horizontal: 3*3 pairs *)
        check_int "vertical" 8 (List.length (Structure.binary_pairs s 1));
        check_int "horizontal" 9 (List.length (Structure.binary_pairs s 2));
        (* bit 1 of "10" is '1': all pixels in ⊙1, none in ⊙2 *)
        check_int "bit1" 12 (List.length (Structure.unary_members s 1));
        check_int "bit2" 0 (List.length (Structure.unary_members s 2)));
    quick "all_pictures enumerates" (fun () ->
        check_int "2^(1*2*1)" 4 (Seq.length (Picture.all_pictures ~bits:1 ~rows:2 ~cols:1)));
  ]

let tiling_tests =
  [
    quick "squares recognised exactly" (fun () ->
        for r = 1 to 7 do
          for c = 1 to 7 do
            check_bool
              (Printf.sprintf "%dx%d" r c)
              (r = c)
              (Tiling.recognizes Tiling.squares (Picture.constant ~bits:0 ~rows:r ~cols:c ""))
          done
        done);
    quick "square witness labelling is diagonal" (fun () ->
        match Tiling.labelling Tiling.squares (Picture.constant ~bits:0 ~rows:4 ~cols:4 "") with
        | None -> Alcotest.fail "4x4 is square"
        | Some lab ->
            check_bool "diagonal" true
              (Array.for_all Fun.id (Array.init 4 (fun i -> lab.(i).(i) = lab.(0).(0)))));
    quick "first-row-equals-last-row exhaustively" (fun () ->
        List.iter
          (fun (r, c) ->
            Seq.iter
              (fun p ->
                check_bool
                  (Format.asprintf "%a" Picture.pp p)
                  (Pic_languages.first_row_equals_last_row p)
                  (Tiling.recognizes Tiling.first_row_equals_last_row p))
              (Picture.all_pictures ~bits:1 ~rows:r ~cols:c))
          [ (1, 1); (1, 3); (2, 2); (3, 2); (2, 3) ]);
    quick "bit-width mismatch rejected" (fun () ->
        Alcotest.check_raises "bits" (Invalid_argument "Tiling: bit-width mismatch") (fun () ->
            ignore (Tiling.recognizes Tiling.squares (Picture.constant ~bits:1 ~rows:2 ~cols:2 "0"))));
    qcheck ~count:60 "first=last tiling agrees on random pictures" (arb_picture ~max_dim:3 ())
      (fun p ->
        Tiling.recognizes Tiling.first_row_equals_last_row p
        = Pic_languages.first_row_equals_last_row p);
  ]

let logic_tests =
  [
    quick "FO properties on pictures" (fun () ->
        let p = Picture.of_rows [ [ "1"; "0" ]; [ "0"; "1" ] ] in
        check_bool "some one" true (Pic_languages.holds p Pic_languages.fo_some_one);
        check_bool "all ones" false (Pic_languages.holds p Pic_languages.fo_all_ones);
        let ones = Picture.constant ~bits:1 ~rows:2 ~cols:2 "1" in
        check_bool "all ones yes" true (Pic_languages.holds ones Pic_languages.fo_all_ones));
    quick "top row ones" (fun () ->
        let p = Picture.of_rows [ [ "1"; "1"; "1" ]; [ "0"; "1"; "0" ] ] in
        check_bool "yes" true (Pic_languages.holds p Pic_languages.fo_top_row_ones);
        let q = Picture.of_rows [ [ "1"; "0"; "1" ]; [ "1"; "1"; "1" ] ] in
        check_bool "no" false (Pic_languages.holds q Pic_languages.fo_top_row_ones));
    quick "mso_square defines squareness" (fun () ->
        List.iter
          (fun (r, c) ->
            check_bool
              (Printf.sprintf "%dx%d" r c)
              (r = c)
              (Pic_languages.holds (Picture.constant ~bits:1 ~rows:r ~cols:c "0")
                 Pic_languages.mso_square))
          [ (1, 1); (1, 2); (2, 1); (2, 2); (3, 3); (3, 2); (2, 3) ]);
    quick "mso_square is in monadic Σ1 (not local)" (fun () ->
        check_bool "monadic" true (Logic_syntax.is_monadic Pic_languages.mso_square);
        check_bool "sigma1 FO" true (Logic_syntax.in_sigma_fo 1 Pic_languages.mso_square);
        check_bool "not LFO matrix" false (Logic_syntax.in_sigma_lfo 1 Pic_languages.mso_square));
    qcheck ~count:40 "fo_some_one agrees with predicate" (arb_picture ~max_dim:3 ()) (fun p ->
        Pic_languages.holds p Pic_languages.fo_some_one = Pic_languages.some_one p);
    quick "tower" (fun () ->
        check_int "t0" 3 (Pic_languages.tower 0 3);
        check_int "t1" 8 (Pic_languages.tower 1 3);
        check_int "t2" 16 (Pic_languages.tower 2 2);
        check_bool "L2 member" true
          (Pic_languages.height_is_tower_of_width 2 (Picture.constant ~bits:0 ~rows:16 ~cols:2 ""));
        check_bool "L2 non-member" false
          (Pic_languages.height_is_tower_of_width 2 (Picture.constant ~bits:0 ~rows:15 ~cols:2 "")));
  ]

let encoding_tests =
  [
    quick "encode node/edge counts" (fun () ->
        let p = Picture.constant ~bits:1 ~rows:2 ~cols:3 "1" in
        let g = Pic_to_graph.encode p in
        (* 6 pixels + 2 markers per grid edge (3 vertical + 4 horizontal) *)
        check_int "card" (6 + (2 * 7)) (Graph.card g);
        check_int "edges" (3 * 7) (Graph.num_edges g));
    qcheck ~count:60 "decode inverts encode" (arb_picture ~max_dim:3 ()) (fun p ->
        match Pic_to_graph.decode (Pic_to_graph.encode p) with
        | Some q -> Picture.equal p q
        | None -> false);
    quick "decode is isomorphism-invariant" (fun () ->
        let p = Picture.of_rows [ [ "1"; "0" ]; [ "0"; "1" ] ] in
        let g = Pic_to_graph.encode p in
        (* rebuild the same graph with rotated node indices *)
        let n = Graph.card g in
        let perm u = (u + 5) mod n in
        let g' =
          Graph.make
            ~labels:(Array.init n (fun u -> Graph.label g ((u - 5 + n) mod n)))
            ~edges:(List.map (fun (u, v) -> (perm u, perm v)) (Graph.edges g))
        in
        match Pic_to_graph.decode g' with
        | Some q -> check_bool "same picture" true (Picture.equal p q)
        | None -> Alcotest.fail "decode failed on isomorphic copy");
    quick "non-encodings rejected" (fun () ->
        check_bool "cycle" true (Pic_to_graph.decode (Generators.cycle 6) = None);
        check_bool "single pixel node alone is fine" true
          (Pic_to_graph.decode (Graph.singleton "11") <> None);
        check_bool "marker soup" true (Pic_to_graph.decode (Graph.singleton "010") = None));
    quick "transferred properties (Section 9.2.2)" (fun () ->
        let is_sq = Pic_to_graph.graph_property_of Pic_languages.is_square in
        check_bool "square" true (is_sq (Pic_to_graph.encode (Picture.constant ~bits:1 ~rows:2 ~cols:2 "0")));
        check_bool "not square" false
          (is_sq (Pic_to_graph.encode (Picture.constant ~bits:1 ~rows:2 ~cols:3 "0")));
        check_bool "non-encoding excluded" false (is_sq (Generators.cycle 4)));
    qcheck ~count:30 "transfer commutes with the tiling recogniser" (arb_picture ~max_dim:2 ())
      (fun p ->
        let transferred =
          Pic_to_graph.graph_property_of (Tiling.recognizes Tiling.first_row_equals_last_row)
        in
        transferred (Pic_to_graph.encode p) = Pic_languages.first_row_equals_last_row p);
  ]

let suites =
  [
    ("picture:core", picture_tests);
    ("picture:tiling", tiling_tests);
    ("picture:logic", logic_tests);
    ("picture:encoding", encoding_tests);
  ]

(* Section 9.2.1: the local/monadic equivalence triangle on pictures *)
let local_logic_tests =
  [
    quick "syntactic classes of the picture sentences" (fun () ->
        check_bool "local f=l is Σ1^LFO" true (Logic_syntax.in_sigma_lfo 1 Pic_local.local_first_equals_last);
        check_bool "monadic f=l is mΣ1" true
          (Logic_syntax.is_monadic Pic_local.monadic_first_equals_last
          && Logic_syntax.in_sigma_fo 1 Pic_local.monadic_first_equals_last);
        check_bool "monadic f=l is NOT local" false
          (Logic_syntax.in_sigma_lfo 1 Pic_local.monadic_first_equals_last);
        check_bool "local some-one is Σ3^LFO" true (Logic_syntax.in_sigma_lfo 3 Pic_local.local_some_one));
    quick "equivalence triangle: first row = last row" (fun () ->
        List.iter
          (fun (r, c) ->
            Seq.iter
              (fun p ->
                let truth = Pic_languages.first_row_equals_last_row p in
                let by_tiling = Tiling.recognizes Tiling.first_row_equals_last_row p in
                let by_monadic = Pic_local.holds p Pic_local.monadic_first_equals_last in
                let by_local = Pic_local.holds p Pic_local.local_first_equals_last in
                let tag = Format.asprintf "%a" Picture.pp p in
                check_bool (tag ^ " tiling") truth by_tiling;
                check_bool (tag ^ " monadic") truth by_monadic;
                check_bool (tag ^ " local") truth by_local)
              (Picture.all_pictures ~bits:1 ~rows:r ~cols:c))
          [ (1, 2); (2, 2); (3, 1) ]);
    quick "local some-one via the spanning-forest game" (fun () ->
        List.iter
          (fun p ->
            let truth = Pic_languages.some_one p in
            check_bool (Format.asprintf "%a" Picture.pp p) truth
              (Pic_local.holds p Pic_local.local_some_one))
          [
            Picture.of_rows [ [ "0"; "0" ]; [ "0"; "0" ] ];
            Picture.of_rows [ [ "0"; "0" ]; [ "1"; "0" ] ];
            Picture.of_rows [ [ "0" ] ];
            Picture.of_rows [ [ "1" ] ];
            Picture.of_rows [ [ "0"; "0"; "1" ] ];
          ]);
    qcheck ~count:25 "local ≡ monadic (first=last) on random pictures" (arb_picture ~max_dim:2 ())
      (fun p ->
        Pic_local.holds p Pic_local.local_first_equals_last
        = Pic_local.holds p Pic_local.monadic_first_equals_last);
  ]

let suites = suites @ [ ("picture:local-logic", local_logic_tests) ]

(* the additional tiling systems: transposition and existential rows *)
let more_tiling_tests =
  [
    quick "first-column=last-column exhaustively" (fun () ->
        List.iter
          (fun (r, c) ->
            Seq.iter
              (fun p ->
                check_bool
                  (Format.asprintf "%a" Picture.pp p)
                  (Pic_languages.first_column_equals_last_column p)
                  (Tiling.recognizes Tiling.first_column_equals_last_column p))
              (Picture.all_pictures ~bits:1 ~rows:r ~cols:c))
          [ (1, 2); (2, 2); (2, 3); (3, 2) ]);
    quick "some-row-all-ones exhaustively" (fun () ->
        List.iter
          (fun (r, c) ->
            Seq.iter
              (fun p ->
                check_bool
                  (Format.asprintf "%a" Picture.pp p)
                  (Pic_languages.some_row_all_ones p)
                  (Tiling.recognizes Tiling.some_row_all_ones p))
              (Picture.all_pictures ~bits:1 ~rows:r ~cols:c))
          [ (1, 1); (1, 3); (2, 2); (3, 2); (2, 3) ]);
    qcheck ~count:50 "some-row-all-ones on random pictures" (arb_picture ~max_dim:3 ())
      (fun p -> Tiling.recognizes Tiling.some_row_all_ones p = Pic_languages.some_row_all_ones p);
    qcheck ~count:50 "transposition duality" (arb_picture ~max_dim:3 ()) (fun p ->
        (* first-col=last-col of p equals first-row=last-row of pᵀ *)
        let transposed =
          Picture.create ~bits:1 ~rows:(Picture.cols p) ~cols:(Picture.rows p) (fun i j ->
              Picture.get p j i)
        in
        Tiling.recognizes Tiling.first_column_equals_last_column p
        = Tiling.recognizes Tiling.first_row_equals_last_row transposed);
  ]

let suites = suites @ [ ("picture:more-tiling", more_tiling_tests) ]
