(* Shared test utilities: QCheck generators for the domain types and
   small wrappers to register QCheck properties as alcotest cases. *)

open Lph_core

let quick name f = Alcotest.test_case name `Quick f

let slow name f = Alcotest.test_case name `Slow f

let check_bool name expected actual = Alcotest.(check bool) name expected actual

let check_int name expected actual = Alcotest.(check int) name expected actual

let check_string name expected actual = Alcotest.(check string) name expected actual

let qcheck ?(count = 100) name arbitrary property =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arbitrary property)

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_bitstring ?(max_len = 6) () =
  QCheck.Gen.(
    int_range 0 max_len >>= fun len ->
    string_size ~gen:(map (fun b -> if b then '1' else '0') bool) (return len))

let arb_bitstring =
  QCheck.make ~print:(fun s -> s) (gen_bitstring ())

(* a random connected labelled graph with n in [1, max_nodes] *)
let gen_graph ?(max_nodes = 7) ?(label_bits = 1) () =
  QCheck.Gen.(
    int_range 1 max_nodes >>= fun n ->
    int_range 0 (max 0 (n - 1)) >>= fun extra ->
    int_bound 1_000_000 >>= fun seed ->
    return
      (Generators.random_connected
         ~rng:(Random.State.make [| seed |])
         ~n ~extra_edges:extra ~label_bits ()))

let graph_print g = Format.asprintf "%a" Graph.pp g

let arb_graph ?max_nodes ?label_bits () =
  QCheck.make ~print:graph_print (gen_graph ?max_nodes ?label_bits ())

(* a random Boolean formula over the given variable pool *)
let gen_bool_formula ?(vars = [ "p"; "q"; "r" ]) ?(depth = 4) () =
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then
      oneof [ map (fun v -> Bool_formula.Var v) (oneofl vars); map (fun b -> Bool_formula.Const b) bool ]
    else
      frequency
        [
          (2, map (fun v -> Bool_formula.Var v) (oneofl vars));
          (1, map (fun f -> Bool_formula.Not f) (go (depth - 1)));
          (2, map2 (fun f g -> Bool_formula.And (f, g)) (go (depth - 1)) (go (depth - 1)));
          (2, map2 (fun f g -> Bool_formula.Or (f, g)) (go (depth - 1)) (go (depth - 1)));
        ]
  in
  go depth

let arb_bool_formula ?vars ?depth () =
  QCheck.make ~print:Bool_formula.to_string (gen_bool_formula ?vars ?depth ())

(* a random picture *)
let gen_picture ?(bits = 1) ?(max_dim = 3) () =
  QCheck.Gen.(
    int_range 1 max_dim >>= fun rows ->
    int_range 1 max_dim >>= fun cols ->
    list_size
      (return (rows * cols))
      (string_size ~gen:(map (fun b -> if b then '1' else '0') bool) (return bits))
    >>= fun entries ->
    let arr = Array.of_list entries in
    return (Picture.create ~bits ~rows ~cols (fun i j -> arr.(((i - 1) * cols) + (j - 1)))))

let arb_picture ?bits ?max_dim () =
  QCheck.make ~print:(Format.asprintf "%a" Picture.pp) (gen_picture ?bits ?max_dim ())

(* random words over a small alphabet *)
let gen_word ~alphabet ~max_len =
  QCheck.Gen.(int_range 0 max_len >>= fun len -> list_size (return len) (int_bound (alphabet - 1)))

let arb_word ~alphabet ~max_len =
  QCheck.make
    ~print:(fun w -> String.concat "," (List.map string_of_int w))
    (gen_word ~alphabet ~max_len)

let global_ids g = Identifiers.make_global g
