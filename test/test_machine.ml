open Lph_core
open Helpers

let run_tm ?certs m g =
  Turing.run m g ~ids:(global_ids g) ?certs ()

let turing_tests =
  [
    quick "all_selected accepts / rejects" (fun () ->
        let c4 = Generators.cycle 4 in
        check_bool "yes" true (Turing.accepts (run_tm Machines.all_selected c4));
        let bad = Graph.with_labels c4 [| "1"; "1"; "0"; "1" |] in
        let r = run_tm Machines.all_selected bad in
        check_bool "no" false (Turing.accepts r);
        (* the rejecting node is exactly the unselected one *)
        check_string "culprit" "0" (Turing.verdict r 2);
        check_string "other" "1" (Turing.verdict r 0));
    quick "all_selected rejects long labels" (fun () ->
        let g = Graph.singleton "11" in
        check_bool "11 is not 1" false (Turing.accepts (run_tm Machines.all_selected g)));
    quick "all_selected runs one round" (fun () ->
        let r = run_tm Machines.all_selected (Generators.cycle 5) in
        check_int "rounds" 1 r.Turing.stats.Turing.rounds);
    quick "eulerian matches euler's criterion" (fun () ->
        List.iter
          (fun g ->
            check_bool (graph_print g) (Properties.eulerian g)
              (Turing.accepts (run_tm Machines.eulerian g)))
          [
            Generators.cycle 4;
            Generators.path 3;
            Generators.complete 5;
            Generators.complete 4;
            Generators.star 4;
            Graph.singleton "1";
          ]);
    quick "constant_labelling over two rounds" (fun () ->
        let c4 = Generators.cycle 4 in
        check_bool "uniform" true (Turing.accepts (run_tm Machines.constant_labelling c4));
        let r = run_tm Machines.constant_labelling c4 in
        check_int "rounds" 2 r.Turing.stats.Turing.rounds;
        let mixed = Graph.with_labels c4 [| "10"; "10"; "11"; "10" |] in
        check_bool "mixed" false (Turing.accepts (run_tm Machines.constant_labelling mixed));
        let uniform = Graph.with_labels c4 (Array.make 4 "101") in
        check_bool "longer labels" true (Turing.accepts (run_tm Machines.constant_labelling uniform)));
    quick "certificates reach the tape" (fun () ->
        (* all_selected ignores certificates, but they must not break it *)
        let g = Generators.cycle 3 in
        let certs = [| "11#0"; "0#1"; "#" |] in
        check_bool "ok" true (Turing.accepts (run_tm ~certs Machines.all_selected g)));
    quick "neighbour identifier order is enforced" (fun () ->
        let g = Generators.path 3 in
        Alcotest.check_raises "duplicate ids"
          (Invalid_argument "Turing.run: neighbours 0 and 2 of node 1 share identifier 0")
          (fun () -> ignore (Turing.run Machines.constant_labelling g ~ids:[| "0"; "1"; "0" |] ())));
    quick "step time of all_selected is linear" (fun () ->
        let samples =
          List.concat_map
            (fun bits ->
              let g = Graph.singleton (Bitstring.ones bits) in
              Step_time.turing_samples (run_tm Machines.all_selected g))
            [ 1; 4; 16; 64 ]
        in
        check_bool "fits 3n+10" true
          (Step_time.check_poly ~bound:(Poly.linear ~offset:10 3) samples));
    quick "constant_labelling step time is polynomial" (fun () ->
        let results =
          List.map
            (fun n -> run_tm Machines.constant_labelling (Generators.cycle n))
            [ 4; 8; 16 ]
        in
        let samples = List.concat_map Step_time.turing_samples results in
        check_bool "fits quadratic" true
          (Step_time.check_poly ~bound:(Poly.add (Poly.monomial ~coeff:3 ~degree:2) (Poly.const 20)) samples);
        check_bool "rounds constant" true
          (Step_time.check_rounds ~limit:2
             ~rounds:(List.map (fun r -> r.Turing.stats.Turing.rounds) results)));
    qcheck ~count:40 "eulerian TM ≡ criterion on random graphs" (arb_graph ~max_nodes:7 ())
      (fun g -> Turing.accepts (run_tm Machines.eulerian g) = Properties.eulerian g);
  ]

let runner_tests =
  [
    quick "pure decider" (fun () ->
        let algo = Local_algo.pure_decider ~name:"label-is-1" ~levels:0 (fun ctx ->
            ctx.Local_algo.label = "1") in
        let g = Generators.cycle 3 in
        check_bool "yes" true (Runner.decides algo g ~ids:(global_ids g) ());
        let bad = Graph.with_labels g [| "1"; "0"; "1" |] in
        check_bool "no" false (Runner.decides algo bad ~ids:(global_ids bad) ()));
    quick "certificates split by level" (fun () ->
        let algo =
          Local_algo.pure_decider ~name:"cert-check" ~levels:2 (fun ctx ->
              ctx.Local_algo.certs = [ "01"; "1" ])
        in
        let g = Graph.singleton "1" in
        check_bool "match" true (Runner.decides algo g ~ids:[| "" |] ~cert_list:[| "01#1" |] ());
        check_bool "mismatch" false (Runner.decides algo g ~ids:[| "" |] ~cert_list:[| "01#0" |] ()));
    quick "message routing respects identifier order" (fun () ->
        (* node sends distinct messages to its neighbours; neighbours
           report which message they got; we check the id-sorted routing *)
        let algo =
          Local_algo.Packed
            {
              Local_algo.name = "router";
              levels = 0;
              radius = None;
              init = (fun ctx -> (ctx.Local_algo.ident, ref ""));
              round =
                (fun ctx round ((_, got) as st) ~inbox ->
                  if round = 1 then
                    ( st,
                      List.init ctx.Local_algo.degree (fun i ->
                          Local_algo.raw_msg (Bitstring.of_int_width ~width:4 i)),
                      false )
                  else begin
                    got := String.concat "" (List.map (fun m -> m.Local_algo.wire) inbox);
                    (st, [], true)
                  end);
              output = (fun (_, got) -> !got);
            }
        in
        let g = Generators.star 3 in
        (* ids: centre "10", leaves "00" and "01" -> centre is the second
           neighbour of each leaf... leaves have only the centre. Centre's
           neighbours sorted: leaf "00" gets message 0, leaf "01" message 1 *)
        let ids = [| "10"; "00"; "01" |] in
        let r = Runner.run algo g ~ids () in
        check_string "leaf 1" "0000" (Runner.verdict r 1);
        check_string "leaf 2" "0001" (Runner.verdict r 2));
    quick "diverging algorithms are caught" (fun () ->
        let algo =
          Local_algo.Packed
            {
              Local_algo.name = "loop";
              levels = 0;
              radius = None;
              init = (fun _ -> ());
              round = (fun _ _ () ~inbox:_ -> ((), [], false));
              output = (fun () -> "1");
            }
        in
        let g = Graph.singleton "" in
        Alcotest.check_raises "diverged"
          (Runner.Diverged { algo = "loop"; rounds = 10; reason = "round limit exceeded" })
          (fun () -> ignore (Runner.run ~round_limit:10 algo g ~ids:[| "" |] ())));
    quick "charges are recorded" (fun () ->
        let algo = Local_algo.pure_decider ~name:"charged" ~levels:0 (fun _ -> true) in
        let g = Graph.singleton "1111" in
        let r = Runner.run algo g ~ids:[| "" |] () in
        check_int "init charge counted" 4 r.Runner.stats.Runner.charges.(0).(0));
    quick "outboxes larger than the degree are rejected" (fun () ->
        let algo =
          Local_algo.Packed
            {
              Local_algo.name = "chatty";
              levels = 0;
              radius = None;
              init = (fun _ -> ());
              round =
                (fun ctx _ () ~inbox:_ ->
                  ( (),
                    List.init (ctx.Local_algo.degree + 1) (fun _ -> Local_algo.raw_msg "1"),
                    true ));
              output = (fun () -> "1");
            }
        in
        let g = Generators.cycle 3 in
        Alcotest.check_raises "rejected"
          (Error.Error
             (Error.Protocol_error
                {
                  what = "Runner.run";
                  detail = "algorithm chatty emits 3 messages at node 0 of degree 2";
                  round = Some 1;
                  node = Some 0;
                }))
          (fun () -> ignore (Runner.run algo g ~ids:(global_ids g) ())));
  ]

let gather_tests =
  [
    quick "balls equal BFS neighbourhoods" (fun () ->
        let g = Generators.grid ~rows:3 ~cols:3 () in
        let ids = global_ids g in
        List.iter
          (fun radius ->
            let balls = Gather.collect ~radius g ~ids () in
            List.iter
              (fun u ->
                let sub, _, _, centre = Gather.reconstruct balls.(u) in
                let expected = Neighborhood.r_neighbourhood g ~radius u in
                check_bool
                  (Printf.sprintf "iso r=%d u=%d" radius u)
                  true
                  (Isomorphism.isomorphic sub expected.Neighborhood.subgraph);
                check_int "centre has distance 0" 0
                  (Neighborhood.distance sub centre centre))
              (Graph.nodes g))
          [ 0; 1; 2 ]);
    quick "balls carry labels, identifiers and certificates" (fun () ->
        let g = Graph.with_labels (Generators.path 3) [| "0"; "10"; "1" |] in
        let ids = global_ids g in
        let certs = [| "0#"; "11#0"; "#1" |] in
        let balls = Gather.collect ~radius:1 g ~ids ~cert_list:certs () in
        let sub, bids, bcerts, centre = Gather.reconstruct balls.(1) in
        check_int "full graph" 3 (Graph.card sub);
        check_string "centre id" ids.(1) bids.(centre);
        check_string "centre cert" certs.(1) bcerts.(centre);
        check_string "centre label" "10" (Graph.label sub centre));
    quick "rounds_needed" (fun () ->
        check_int "r+2" 5 (Gather.rounds_needed 3));
    qcheck ~count:25 "gather ≡ BFS on random graphs (radius 1)" (arb_graph ~max_nodes:6 ())
      (fun g ->
        let ids = global_ids g in
        let balls = Gather.collect ~radius:1 g ~ids () in
        List.for_all
          (fun u ->
            let sub, _, _, _ = Gather.reconstruct balls.(u) in
            let expected = (Neighborhood.r_neighbourhood g ~radius:1 u).Neighborhood.subgraph in
            Isomorphism.isomorphic sub expected)
          (Graph.nodes g));
    quick "gathering step time is polynomial in local input" (fun () ->
        let algo = Gather.algo ~name:"g" ~radius:2 ~levels:0 ~decide:(fun _ _ -> true) in
        let results =
          List.map
            (fun n ->
              let g = Generators.cycle n in
              Runner.run algo g ~ids:(global_ids g) ())
            [ 5; 9; 17 ]
        in
        let samples = List.concat_map Step_time.runner_samples results in
        (* charges are bytes processed (bit-encoded, and outgoing
           broadcasts count too): linear in the local input size with a
           generous constant *)
        check_bool "fits linear" true
          (Step_time.check_poly ~bound:(Poly.linear ~offset:600 30) samples));
  ]

let suites =
  [ ("machine:turing", turing_tests); ("machine:runner", runner_tests); ("machine:gather", gather_tests) ]
